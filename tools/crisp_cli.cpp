// crisp_cli — command-line front end for the library.
//
//   crisp_cli prune    --model resnet50 --classes 10 --sparsity 0.9
//                      [--nm 2:4] [--block 16] [--dataset cifar100|imagenet]
//                      [--out pruned.bin]
//   crisp_cli pack     (prune flags) [--out packed.crisp]
//   crisp_cli info     --in pruned.bin
//   crisp_cli packinfo --in packed.crisp
//   crisp_cli simulate [--nm 2:4] [--block 64] [--sparsity 0.9]
//   crisp_cli dse      [--nm 2:4] [--block 64]
//   crisp_cli criteria
//   crisp_cli unlearn  --model vgg16 --classes 10 --forget 2 [--drop 1]
//   crisp_cli fleet save --out fleet.shard [--tenants 8] [--seed 11]
//   crisp_cli fleet load --in fleet.shard  [--seed 11]
//   crisp_cli fleet fsck --in fleet.shard  [--repair 1]
//
// `prune` runs the full pipeline (zoo pre-train -> user classes -> CRISP ->
// bake -> save); `pack` does the same but ships the CRISP packed artifact
// (hybrid format + carried dense state) and verifies it serves identically;
// `info`/`packinfo` inspect saved artifacts; `simulate` estimates CRISP-STC
// latency/energy on the true ResNet-50 shapes; `dse` sweeps the fabric
// knobs and prints the Pareto-efficient configurations. `criteria` lists
// the registered saliency criteria (prune/pack/sensitivity take
// --criterion NAME, including "auto" for the loss-aware per-layer
// selector); `unlearn` prunes the blocks salient for a forget-class split
// and reports forgotten vs retained accuracy. `fleet` exercises the
// durable-tenant path end to end: `save` registers a synthetic fleet of
// mask-delta personalizations and persists it to one CRSPSHRD shard,
// `load` re-derives the same base (the seed must match the save) and
// recovers the fleet from the shard, `fsck` scans a shard and reports its
// integrity (docs/persistence.md) — exit 1 when the scan is not clean.
// No command needs external data — everything runs on the synthetic
// substrate.
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>

#include "accel/dse.h"
#include "accel/report.h"
#include "core/block_pruning.h"
#include "core/pruner.h"
#include "core/sensitivity.h"
#include "core/unlearn.h"
#include "deploy/packed_exec.h"
#include "deploy/packed_model.h"
#include "nn/activations.h"
#include "nn/flops.h"
#include "nn/linear.h"
#include "nn/zoo.h"
#include "sparse/block.h"
#include "tenant/shard.h"
#include "tenant/store.h"

using namespace crisp;

namespace {

struct Args {
  std::map<std::string, std::string> kv;

  std::string get(const std::string& key, const std::string& fallback) const {
    auto it = kv.find(key);
    return it == kv.end() ? fallback : it->second;
  }
  double get_double(const std::string& key, double fallback) const {
    auto it = kv.find(key);
    return it == kv.end() ? fallback : std::stod(it->second);
  }
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const {
    auto it = kv.find(key);
    return it == kv.end() ? fallback : std::stoll(it->second);
  }
};

Args parse_args(int argc, char** argv, int first) {
  Args args;
  for (int i = first; i + 1 < argc; i += 2) {
    std::string key = argv[i];
    CRISP_CHECK(key.size() > 2 && key[0] == '-' && key[1] == '-',
                "expected --flag value pairs, got '" << key << "'");
    args.kv[key.substr(2)] = argv[i + 1];
  }
  return args;
}

void parse_nm(const std::string& s, std::int64_t& n, std::int64_t& m) {
  const auto colon = s.find(':');
  CRISP_CHECK(colon != std::string::npos, "--nm expects the form N:M");
  n = std::stoll(s.substr(0, colon));
  m = std::stoll(s.substr(colon + 1));
}

nn::ModelKind parse_model(const std::string& s) {
  if (s == "resnet50") return nn::ModelKind::kResNet50;
  if (s == "vgg16") return nn::ModelKind::kVgg16;
  if (s == "mobilenetv2") return nn::ModelKind::kMobileNetV2;
  CRISP_CHECK(false, "unknown model '" << s
                                       << "' (resnet50|vgg16|mobilenetv2)");
  return nn::ModelKind::kResNet50;
}

/// Shared prune pipeline for the `prune` and `pack` commands.
struct PruneOutcome {
  nn::ZooSpec spec;
  nn::PretrainedModel pm;
  std::vector<std::int64_t> classes;
  data::Dataset user_test;
  core::CrispConfig cfg;
  core::CrispPruner pruner;
  float accuracy = 0.0f;
};

PruneOutcome run_prune_pipeline(const Args& args) {
  nn::ZooSpec spec;
  spec.model = parse_model(args.get("model", "resnet50"));
  spec.dataset = args.get("dataset", "cifar100") == "imagenet"
                     ? nn::DatasetKind::kImageNetLike
                     : nn::DatasetKind::kCifar100Like;
  spec.width_mult = static_cast<float>(args.get_double("width", 0.125));
  spec.input_size = args.get_int("input", 16);
  spec.pretrain_epochs = args.get_int("pretrain-epochs", 12);
  spec.train_per_class = args.get_int("train-per-class", 16);
  nn::PretrainedModel pm = nn::zoo_pretrained(spec, /*verbose=*/true);

  Rng rng(args.get_int("seed", 2024));
  const auto classes = data::sample_user_classes(
      pm.data.train.num_classes, args.get_int("classes", 10), rng);
  const data::Dataset user_train = data::filter_classes(pm.data.train, classes);
  data::Dataset user_test = data::filter_classes(pm.data.test, classes);

  core::CrispConfig cfg;
  parse_nm(args.get("nm", "2:4"), cfg.n, cfg.m);
  cfg.block = args.get_int("block", 16);
  cfg.target_sparsity = args.get_double("sparsity", 0.9);
  cfg.iterations = args.get_int("iterations", 3);
  cfg.finetune_epochs = args.get_int("finetune-epochs", 2);
  cfg.recovery_epochs = args.get_int("recovery-epochs", 12);
  cfg.saliency.criterion = args.get("criterion", "cass");
  cfg.verbose = true;

  // The Sequential lives on the heap: moving the unique_ptr into the
  // outcome does not move the network, so the pruner's reference stays
  // valid as long as it is bound before the move.
  nn::Sequential& model = *pm.model;
  PruneOutcome out{std::move(spec),      std::move(pm),
                   classes,              std::move(user_test),
                   cfg,                  core::CrispPruner(model, cfg)};
  const core::PruneReport report = out.pruner.run(user_train, rng);
  out.accuracy = nn::evaluate(*out.pm.model, out.user_test, 64, classes);
  const double flops =
      nn::count_flops(*out.pm.model,
                      {1, 3, out.spec.input_size, out.spec.input_size})
          .ratio();
  std::printf("\npruned: %.1f%% sparsity, user-class accuracy %.1f%%, "
              "FLOPs ratio %.3f\n",
              100 * report.achieved_sparsity(), 100 * out.accuracy, flops);
  return out;
}

int cmd_prune(const Args& args) {
  PruneOutcome out = run_prune_pipeline(args);
  out.pruner.bake();
  const std::string path = args.get("out", "crisp_pruned.bin");
  save_tensors(out.pm.model->state_dict(), path);
  std::printf("saved state_dict (with masks) to %s\n", path.c_str());
  return 0;
}

int cmd_pack(const Args& args) {
  PruneOutcome out = run_prune_pipeline(args);
  const deploy::PackedModel packed = deploy::PackedModel::pack(
      *out.pm.model, out.cfg.block, out.cfg.n, out.cfg.m);
  const deploy::PackedStats stats = packed.stats();
  std::printf("packed: payload %.1f KiB + metadata %.1f KiB + dense %.1f KiB "
              "= %.2fx of the %.1f KiB dense model\n",
              static_cast<double>(stats.packed_payload_bits) / 8192.0,
              static_cast<double>(stats.packed_metadata_bits) / 8192.0,
              static_cast<double>(stats.carried_dense_bits) / 8192.0,
              stats.compression(),
              static_cast<double>(stats.model_dense_bits) / 8192.0);

  const std::string path = args.get("out", "crisp_packed.crisp");
  packed.save(path);

  // Round-trip check: reload, rebuild the architecture, serve packed.
  // The hooks co-own the reloaded artifact, so no caller-side handle has
  // to outlive them.
  auto shipped = std::make_shared<const deploy::PackedModel>(
      deploy::PackedModel::load(path));
  auto device = nn::make_model(out.spec.model, out.spec.model_config());
  shipped->unpack_into(*device);
  deploy::install_packed_hooks(*device, shipped);
  const float served =
      nn::evaluate(*device, out.user_test, 64, out.classes);
  std::printf("saved %s; served accuracy from packed artifact: %.1f%% "
              "(cloud-side %.1f%%)\n",
              path.c_str(), 100 * served, 100 * out.accuracy);
  return served == out.accuracy ? 0 : 1;
}

int cmd_packinfo(const Args& args) {
  const std::string path = args.get("in", "crisp_packed.crisp");
  const deploy::PackedModel packed = deploy::PackedModel::load(path);
  std::printf("%s: %lld:%lld sparsity, block %lldx%lld\n", path.c_str(),
              static_cast<long long>(packed.n()),
              static_cast<long long>(packed.m()),
              static_cast<long long>(packed.block()),
              static_cast<long long>(packed.block()));
  std::printf("\n%-34s %-16s %10s %12s\n", "packed entry", "matrix", "KiB",
              "metadata b");
  for (const auto& e : packed.entries()) {
    std::printf("%-34s %6lld x %-7lld %10.1f %12lld\n", e.name.c_str(),
                static_cast<long long>(e.matrix.rows()),
                static_cast<long long>(e.matrix.cols()),
                static_cast<double>(e.matrix.payload_bits()) / 8192.0,
                static_cast<long long>(e.matrix.metadata_bits()));
  }
  const deploy::PackedStats stats = packed.stats();
  std::printf("\n%zu dense tensors carried (%.1f KiB); total %.2fx of dense\n",
              packed.dense_state().size(),
              static_cast<double>(stats.carried_dense_bits) / 8192.0,
              stats.compression());
  return 0;
}

int cmd_info(const Args& args) {
  const std::string path = args.get("in", "crisp_pruned.bin");
  const TensorMap state = load_tensors(path);
  std::printf("%s: %zu tensors\n\n", path.c_str(), state.size());
  std::printf("%-34s %-14s %10s %10s\n", "name", "shape", "KiB", "zeros");
  double total_kib = 0;
  std::int64_t total = 0, zeros = 0;
  for (const auto& [name, t] : state) {
    const double kib = static_cast<double>(t.numel()) * 4.0 / 1024.0;
    total_kib += kib;
    if (name.find("#mask") == std::string::npos) {
      total += t.numel();
      zeros += t.numel() - t.count_nonzero();
    }
    std::printf("%-34s %-14s %10.1f %9.1f%%\n", name.c_str(),
                shape_to_string(t.shape()).c_str(), kib,
                100.0 * t.zero_fraction());
  }
  std::printf("\ntotal %.1f KiB; weight zero fraction %.1f%%\n", total_kib,
              100.0 * static_cast<double>(zeros) / static_cast<double>(total));
  return 0;
}

int cmd_simulate(const Args& args) {
  std::int64_t n = 2, m = 4;
  parse_nm(args.get("nm", "2:4"), n, m);
  const std::int64_t block = args.get_int("block", 64);
  const double kappa = args.get_double("sparsity", 0.9);

  const auto net = accel::resnet50_imagenet_workloads();
  const auto profiles = accel::ramp_profiles(
      static_cast<std::int64_t>(net.size()), n, m, block, kappa - 0.03,
      kappa + 0.03);
  const auto rows = accel::compare_accelerators(
      net, profiles, accel::AcceleratorConfig::edge_default(),
      accel::EnergyModel::edge_default());

  double dense_cy = 0, crisp_cy = 0, dense_e = 0, crisp_e = 0, nv_cy = 0,
         ds_cy = 0;
  for (const auto& row : rows) {
    dense_cy += row.dense.cycles;
    crisp_cy += row.crisp.cycles;
    dense_e += row.dense.energy_pj;
    crisp_e += row.crisp.energy_pj;
    nv_cy += row.nvidia.cycles;
    ds_cy += row.dstc.cycles;
  }
  std::printf("ResNet-50 @224, %lld:%lld, B=%lld, kappa=%.1f%%\n",
              static_cast<long long>(n), static_cast<long long>(m),
              static_cast<long long>(block), 100 * kappa);
  std::printf("  CRISP-STC:  %.2fx speedup, %.2fx energy efficiency\n",
              dense_cy / crisp_cy, dense_e / crisp_e);
  std::printf("  NVIDIA-STC: %.2fx speedup\n", dense_cy / nv_cy);
  std::printf("  DSTC:       %.2fx speedup\n", dense_cy / ds_cy);
  return 0;
}

int cmd_sensitivity(const Args& args) {
  nn::ZooSpec spec;
  spec.model = parse_model(args.get("model", "resnet50"));
  spec.dataset = args.get("dataset", "cifar100") == "imagenet"
                     ? nn::DatasetKind::kImageNetLike
                     : nn::DatasetKind::kCifar100Like;
  spec.width_mult = static_cast<float>(args.get_double("width", 0.125));
  spec.input_size = args.get_int("input", 16);
  spec.pretrain_epochs = args.get_int("pretrain-epochs", 12);
  spec.train_per_class = args.get_int("train-per-class", 16);
  nn::PretrainedModel pm = nn::zoo_pretrained(spec, /*verbose=*/true);

  Rng rng(args.get_int("seed", 2024));
  const auto classes = data::sample_user_classes(
      pm.data.train.num_classes, args.get_int("classes", 10), rng);
  const data::Dataset user_train = data::filter_classes(pm.data.train, classes);

  core::SensitivityConfig cfg;
  parse_nm(args.get("nm", "2:4"), cfg.n, cfg.m);
  cfg.block = args.get_int("block", 8);
  cfg.saliency.criterion = args.get("criterion", "cass");
  const auto profile = core::layer_sensitivity(*pm.model, user_train, cfg);
  const double budget = args.get_double("budget", 0.1);

  std::printf("\nper-layer sparsity sensitivity (class-aware, %zu classes); "
              "loss budget %.2f\n",
              classes.size(), budget);
  std::printf("%-30s %9s %9s %9s %9s | %10s\n", "layer", "d@50%", "d@75%",
              "d@90%", "d@99%", "tolerated");
  for (const core::LayerSensitivity& ls : profile) {
    std::printf("%-30s", ls.name.c_str());
    for (const double d : ls.loss_increase) std::printf(" %+9.3f", d);
    std::printf(" | %9.0f%%\n", 100.0 * ls.tolerated_sparsity(budget));
  }
  std::printf("\n(the Fig. 2 premise: tolerated sparsity varies widely "
              "across layers)\n");
  return 0;
}

int cmd_dse(const Args& args) {
  std::int64_t n = 2, m = 4;
  parse_nm(args.get("nm", "2:4"), n, m);
  const std::int64_t block = args.get_int("block", 64);

  const auto net = accel::resnet50_imagenet_workloads();
  const auto profiles = accel::ramp_kept_profiles(
      static_cast<std::int64_t>(net.size()), n, m, block, 0.5, 0.16);
  accel::DseKnobs knobs;
  knobs.tensor_cores = {2, 4, 8};
  knobs.macs_per_core = {32, 64, 128};
  knobs.smem_kbytes = {128, 256, 512};
  knobs.smem_bw_bytes_per_cycle = {32.0, 64.0, 128.0};
  const auto points = accel::sweep_configs(
      accel::AcceleratorConfig::edge_default(),
      accel::EnergyModel::edge_default(), knobs, net, profiles);
  const auto front = accel::pareto_front(points);

  std::printf("ResNet-50 @224, %lld:%lld B=%lld — %zu configs swept, "
              "%zu Pareto-efficient:\n\n",
              static_cast<long long>(n), static_cast<long long>(m),
              static_cast<long long>(block), points.size(), front.size());
  std::printf("%-46s %12s %12s\n", "config", "Mcycles", "energy uJ");
  for (const std::size_t i : front)
    std::printf("%-46s %12.2f %12.1f\n", points[i].label().c_str(),
                points[i].cycles / 1e6, points[i].energy_pj / 1e6);
  return 0;
}

int cmd_criteria(const Args&) {
  std::printf("registered saliency criteria (crisp_cli ... --criterion NAME):\n");
  for (const std::string& name : core::criterion_names())
    std::printf("  %s\n", name.c_str());
  std::printf("  auto  (loss-aware per-layer selection; prune/pack only)\n");
  return 0;
}

int cmd_unlearn(const Args& args) {
  nn::ZooSpec spec;
  spec.model = parse_model(args.get("model", "vgg16"));
  spec.dataset = args.get("dataset", "cifar100") == "imagenet"
                     ? nn::DatasetKind::kImageNetLike
                     : nn::DatasetKind::kCifar100Like;
  spec.width_mult = static_cast<float>(args.get_double("width", 0.125));
  spec.input_size = args.get_int("input", 16);
  spec.pretrain_epochs = args.get_int("pretrain-epochs", 12);
  spec.train_per_class = args.get_int("train-per-class", 16);
  nn::PretrainedModel pm = nn::zoo_pretrained(spec, /*verbose=*/true);

  Rng rng(args.get_int("seed", 2024));
  const auto classes = data::sample_user_classes(
      pm.data.train.num_classes, args.get_int("classes", 10), rng);
  const std::int64_t nforget = args.get_int("forget", 2);
  CRISP_CHECK(nforget >= 1 &&
                  nforget < static_cast<std::int64_t>(classes.size()),
              "--forget must leave at least one retained class");
  const std::vector<std::int64_t> forget_classes(
      classes.begin(), classes.begin() + nforget);
  const std::vector<std::int64_t> retain_classes(
      classes.begin() + nforget, classes.end());

  const data::Dataset forget_train =
      data::filter_classes(pm.data.train, forget_classes);
  const data::Dataset retain_train =
      data::filter_classes(pm.data.train, retain_classes);
  const data::Dataset forget_test =
      data::filter_classes(pm.data.test, forget_classes);
  const data::Dataset retain_test =
      data::filter_classes(pm.data.test, retain_classes);

  const float forget_before =
      nn::evaluate(*pm.model, forget_test, 64, forget_classes);
  const float retain_before =
      nn::evaluate(*pm.model, retain_test, 64, retain_classes);

  core::UnlearnConfig cfg;
  cfg.criterion = args.get("criterion", "cass");
  cfg.drop_per_row = args.get_int("drop", 1);
  cfg.block = args.get_int("block", 16);
  cfg.retain_weight = args.get_double("retain-weight", 1.0);
  cfg.finetune_epochs = args.get_int("finetune-epochs", 4);
  const core::UnlearnReport report =
      core::unlearn_classes(*pm.model, forget_train, retain_train, cfg, rng);

  const float forget_after =
      nn::evaluate(*pm.model, forget_test, 64, forget_classes);
  const float retain_after =
      nn::evaluate(*pm.model, retain_test, 64, retain_classes);
  std::printf("\nunlearned %lld of %zu classes (criterion %s, drop %lld "
              "block/row): sparsity %.1f%% -> %.1f%%\n",
              static_cast<long long>(nforget), classes.size(),
              cfg.criterion.c_str(), static_cast<long long>(cfg.drop_per_row),
              100 * report.sparsity_before, 100 * report.sparsity_after);
  std::printf("  forgotten classes: %.1f%% -> %.1f%% accuracy\n",
              100 * forget_before, 100 * forget_after);
  std::printf("  retained classes:  %.1f%% -> %.1f%% accuracy\n",
              100 * retain_before, 100 * retain_after);
  return 0;
}

// ---- fleet: durable tenant shards ------------------------------------------
// The synthetic fleet mirrors bench/tenants.cpp: one small MLP base under
// the hybrid pattern, each tenant dropping one more surviving block per
// block-row. The shard carries only the deltas — both `save` and `load`
// re-derive the base from --seed, so the seeds must match (load_shard
// quarantines structurally incompatible deltas, but a same-architecture
// base from another seed is on the operator to avoid, exactly as a real
// deployment must pair a shard with its base artifact).

constexpr std::int64_t kFleetBlock = 8, kFleetN = 2, kFleetM = 4;
constexpr std::int64_t kFleetPrunedRanks = 2;

std::shared_ptr<nn::Sequential> fleet_model(std::uint64_t seed) {
  Rng rng(seed);
  auto model = std::make_shared<nn::Sequential>("fleet_mlp");
  model->emplace<nn::Linear>("fc1", 128, 96, rng);
  model->emplace<nn::ReLU>("relu1");
  model->emplace<nn::Linear>("fc2", 96, 64, rng);
  model->emplace<nn::ReLU>("relu2");
  model->emplace<nn::Linear>("head", 64, 16, rng);
  return model;
}

struct Fleet {
  std::shared_ptr<const tenant::BaseArtifact> base;
  tenant::ModelFactory factory;
};

Fleet fleet_base(std::uint64_t seed) {
  const tenant::ModelFactory factory = [seed] { return fleet_model(seed); };
  auto model = factory();
  core::install_random_hybrid_masks(*model, kFleetBlock, kFleetN, kFleetM,
                                    kFleetPrunedRanks, seed);
  auto base = tenant::BaseArtifact::create(
      std::make_shared<const deploy::PackedModel>(
          deploy::PackedModel::pack(*model, kFleetBlock, kFleetN, kFleetM)));
  return Fleet{std::move(base), factory};
}

/// Zeroes one surviving block per block-row of every masked parameter,
/// selected by `salt` — the same per-tenant restriction the bench uses.
void fleet_drop_blocks(nn::Sequential& model, std::uint64_t salt) {
  for (nn::Parameter* p : model.prunable_parameters()) {
    if (!p->has_mask()) continue;
    const std::int64_t rows = p->matrix_rows, cols = p->matrix_cols;
    const std::int64_t grid_rows = (rows + kFleetBlock - 1) / kFleetBlock;
    const std::int64_t grid_cols = (cols + kFleetBlock - 1) / kFleetBlock;
    float* mask = p->mask.data();
    for (std::int64_t br = 0; br < grid_rows; ++br) {
      const std::int64_t r0 = br * kFleetBlock;
      const std::int64_t r1 = std::min(rows, r0 + kFleetBlock);
      std::vector<std::int64_t> survivors;
      for (std::int64_t bc = 0; bc < grid_cols; ++bc) {
        const std::int64_t c0 = bc * kFleetBlock;
        const std::int64_t c1 = std::min(cols, c0 + kFleetBlock);
        bool live = false;
        for (std::int64_t r = r0; r < r1 && !live; ++r)
          for (std::int64_t c = c0; c < c1; ++c)
            if (mask[r * cols + c] != 0.0f) {
              live = true;
              break;
            }
        if (live) survivors.push_back(bc);
      }
      if (survivors.empty()) continue;
      const std::int64_t bc = survivors[static_cast<std::size_t>(
          (salt + static_cast<std::uint64_t>(br)) % survivors.size())];
      const std::int64_t c0 = bc * kFleetBlock;
      const std::int64_t c1 = std::min(cols, c0 + kFleetBlock);
      for (std::int64_t r = r0; r < r1; ++r)
        for (std::int64_t c = c0; c < c1; ++c) mask[r * cols + c] = 0.0f;
    }
  }
}

int cmd_fleet_save(const Args& args) {
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 11));
  const std::int64_t tenants = args.get_int("tenants", 8);
  const std::string path = args.get("out", "fleet.shard");

  Fleet fleet = fleet_base(seed);
  tenant::Store store(fleet.base, fleet.factory);
  for (std::int64_t i = 0; i < tenants; ++i) {
    auto model = fleet.factory();
    core::install_random_hybrid_masks(*model, kFleetBlock, kFleetN, kFleetM,
                                      kFleetPrunedRanks, seed);
    fleet_drop_blocks(*model, static_cast<std::uint64_t>(i));
    store.register_tenant("tenant-" + std::to_string(i),
                          tenant::MaskDelta::from_model(*fleet.base, *model));
  }
  const std::int64_t saved = store.save_shard(path);
  const tenant::ResidentBytes rb = store.resident_bytes();
  std::printf("saved %lld tenants to %s (base %.1f KiB shared once, "
              "deltas %.2f KiB total)\n",
              static_cast<long long>(saved), path.c_str(),
              static_cast<double>(rb.base) / 1024.0,
              static_cast<double>(rb.deltas) / 1024.0);
  return 0;
}

int cmd_fleet_load(const Args& args) {
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 11));
  const std::string path = args.get("in", "fleet.shard");

  Fleet fleet = fleet_base(seed);
  tenant::Store store(fleet.base, fleet.factory);
  const tenant::ShardLoadReport rep = store.load_shard(path);
  std::printf("%s: recovered %lld tenants (%lld quarantined, scan %s)\n",
              path.c_str(), static_cast<long long>(rep.loaded),
              static_cast<long long>(rep.quarantined),
              rep.scan.clean() ? "clean" : "NOT clean");
  if (rep.loaded > 0) {
    // Prove one recovered personalization actually serves.
    const auto compiled = store.acquire("tenant-0");
    Rng rng(7);
    const Tensor out = compiled->run(Tensor::rand({1, 128}, rng, -1.0f, 1.0f));
    std::printf("tenant-0 serves: output [1 x %lld] OK\n",
                static_cast<long long>(out.shape().back()));
  }
  return rep.scan.clean() && rep.quarantined == 0 ? 0 : 1;
}

int cmd_fleet_fsck(const Args& args) {
  const std::string path = args.get("in", "fleet.shard");
  const bool repair = args.get_int("repair", 0) != 0;
  const tenant::ShardScanResult scan = tenant::scan_shard(path, repair);
  std::printf("%s: %lld intact records, %lld crc failures, %lld malformed, "
              "%lld bytes dropped -> %s\n",
              path.c_str(), static_cast<long long>(scan.report.records),
              static_cast<long long>(scan.report.crc_failures),
              static_cast<long long>(scan.report.malformed),
              static_cast<long long>(scan.report.dropped_bytes),
              scan.report.clean() ? "clean" : "NOT clean");
  for (const tenant::ShardRecord& r : scan.records)
    std::printf("  %-24s %6lld delta bytes\n", r.tenant_id.c_str(),
                static_cast<long long>(r.delta.delta_bytes()));
  if (!scan.report.clean() && repair)
    std::printf("repaired: truncated to the last intact record (%lld "
                "bytes)\n",
                static_cast<long long>(scan.good_bytes));
  return scan.report.clean() ? 0 : 1;
}

void usage() {
  std::printf(
      "usage:\n"
      "  crisp_cli prune    --model resnet50 --classes 10 --sparsity 0.9\n"
      "                     [--nm 2:4] [--block 16] [--dataset cifar100]\n"
      "                     [--out pruned.bin] [--seed 2024]\n"
      "  crisp_cli pack     (prune flags) [--out packed.crisp]\n"
      "  crisp_cli info     --in pruned.bin\n"
      "  crisp_cli packinfo --in packed.crisp\n"
      "  crisp_cli simulate [--nm 2:4] [--block 64] [--sparsity 0.9]\n"
      "  crisp_cli dse      [--nm 2:4] [--block 64]\n"
      "  crisp_cli sensitivity --model resnet50 --classes 10 [--budget 0.1]\n"
      "  crisp_cli criteria\n"
      "  crisp_cli unlearn  --model vgg16 --classes 10 --forget 2 [--drop 1]\n"
      "                     [--criterion cass] [--retain-weight 1.0]\n"
      "  crisp_cli fleet save --out fleet.shard [--tenants 8] [--seed 11]\n"
      "  crisp_cli fleet load --in fleet.shard  [--seed 11]\n"
      "  crisp_cli fleet fsck --in fleet.shard  [--repair 1]\n"
      "(prune, pack, and sensitivity also take --criterion NAME; prune and\n"
      " pack accept --criterion auto for loss-aware per-layer selection;\n"
      " fleet load must use the save's --seed to re-derive the same base)\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 1;
  }
  const std::string cmd = argv[1];
  try {
    if (cmd == "fleet") {
      if (argc < 3) {
        usage();
        return 1;
      }
      const std::string sub = argv[2];
      const Args args = parse_args(argc, argv, 3);
      if (sub == "save") return cmd_fleet_save(args);
      if (sub == "load") return cmd_fleet_load(args);
      if (sub == "fsck") return cmd_fleet_fsck(args);
      usage();
      return 1;
    }
    const Args args = parse_args(argc, argv, 2);
    if (cmd == "prune") return cmd_prune(args);
    if (cmd == "pack") return cmd_pack(args);
    if (cmd == "info") return cmd_info(args);
    if (cmd == "packinfo") return cmd_packinfo(args);
    if (cmd == "simulate") return cmd_simulate(args);
    if (cmd == "dse") return cmd_dse(args);
    if (cmd == "sensitivity") return cmd_sensitivity(args);
    if (cmd == "criteria") return cmd_criteria(args);
    if (cmd == "unlearn") return cmd_unlearn(args);
    usage();
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
