#!/usr/bin/env python3
"""Fail when docs reference repo paths that no longer exist.

Scans docs/*.md and README.md for references to files under the repo's
source roots (src/, tests/, bench/, examples/, tools/, docs/, .github/)
and exits 1 listing every reference whose target is missing — the CI docs
job runs this so documentation cannot silently rot as code moves.

A "reference" is any token that looks like <root>/<path>.<ext> wherever it
appears (backticks, tables, link targets, prose). Directories referenced
with a trailing slash (e.g. `src/kernels/`) are checked as directories.

Usage:
  tools/check_docs_refs.py [--repo-root PATH]
"""

import argparse
import pathlib
import re
import sys

ROOTS = ("src", "tests", "bench", "examples", "tools", "docs", ".github")
_ROOTS_ALT = "|".join(re.escape(r) for r in ROOTS)
# File reference: <root>/<path> where the last component has an extension;
# permissive on the middle so nested paths and dashes work.
FILE_RE = re.compile(
    r"(?<![\w/.-])"
    r"((?:" + _ROOTS_ALT + r")(?:/[\w.-]+)+\.[A-Za-z0-9]{1,8})"
)
# Directory reference: <root>/<segments>/ with a trailing slash (so prose
# like "tests pass" never matches — only deliberate path spellings).
DIR_RE = re.compile(
    r"(?<![\w/.-])"
    r"((?:" + _ROOTS_ALT + r")(?:/[\w.-]+)+)/(?![\w.-])"
)


def extract_refs(text):
    """Returns the set of path-looking references in a markdown text."""
    refs = set()
    for match in FILE_RE.finditer(text):
        refs.add(match.group(1).rstrip("."))
    for match in DIR_RE.finditer(text):
        ref = match.group(1)
        # A token like `src/kernels/gemm.h/` already matched FILE_RE; keep
        # only true directory spellings.
        if not FILE_RE.fullmatch(ref):
            refs.add(ref + "/")
    return refs


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--repo-root", default=None,
                    help="repo root (default: parent of this script's dir)")
    args = ap.parse_args()

    root = (pathlib.Path(args.repo_root) if args.repo_root
            else pathlib.Path(__file__).resolve().parent.parent)
    sources = sorted(root.glob("docs/*.md")) + [root / "README.md"]
    sources = [p for p in sources if p.exists()]
    if not any(p.parent.name == "docs" for p in sources):
        print("error: no docs/*.md found — nothing to check")
        return 2

    checked = 0
    dangling = []
    for doc in sources:
        text = doc.read_text(encoding="utf-8")
        for ref in sorted(extract_refs(text)):
            checked += 1
            if not (root / ref).exists():
                dangling.append((doc.relative_to(root), ref))

    if dangling:
        print(f"FAIL: {len(dangling)} dangling code reference(s):")
        for doc, ref in dangling:
            print(f"  {doc}: {ref}")
        print("Fix the path in the document (or restore the file).")
        return 1
    print(f"OK: {checked} reference(s) across {len(sources)} document(s) "
          "all resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
