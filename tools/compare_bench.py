#!/usr/bin/env python3
"""Compare a google-benchmark JSON run against a committed baseline.

CI's bench regression gate: fails (exit 1) when any benchmark present in
both files got slower than --max-slowdown times its baseline. Comparisons
use the `_median` aggregate entries when a file was recorded with
--benchmark_repetitions (recommended), falling back to the raw iteration
entries otherwise, and always compare real_time (wall clock — the thread
pool makes cpu_time meaningless for threaded kernels).

The baseline and the run usually come from different machines, so the
default tolerance is generous: the gate exists to catch "the SIMD dispatch
silently fell back to scalar" (a 4-6x cliff on the dense GEMM), not 10%
noise. Use --filter to restrict the gate to stable entries (CI gates on
threads:1 — thread-sweep entries depend on the runner's core count).

A baseline entry recorded as 0 is an exact gate: the current value must
also be 0 or the gate fails regardless of --max-slowdown. Counter-valued
entries (bench_loadgen's Loadgen/*/gate_shed_total) use this to assert
"no shedding at sub-saturation load".

Usage:
  tools/compare_bench.py BASELINE.json CURRENT.json \
      [--max-slowdown 3.0] [--filter SUBSTRING]
"""

import argparse
import json
import sys


def load_times(path):
    """Returns {benchmark name: real_time ns}, preferring median aggregates."""
    with open(path) as f:
        data = json.load(f)
    raw, medians = {}, {}
    for entry in data.get("benchmarks", []):
        name = entry["run_name"] if "run_name" in entry else entry["name"]
        if entry.get("run_type") == "aggregate":
            if entry.get("aggregate_name") == "median":
                medians[name] = float(entry["real_time"])
        else:
            raw.setdefault(name, float(entry["real_time"]))
    return {**raw, **medians}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--max-slowdown", type=float, default=3.0,
                    help="fail when current > baseline * this (default 3.0)")
    ap.add_argument("--filter", default="",
                    help="only gate benchmarks whose name contains this")
    args = ap.parse_args()

    base = load_times(args.baseline)
    cur = load_times(args.current)
    gated_base = sorted(n for n in base if not args.filter or args.filter in n)
    shared = [n for n in gated_base if n in cur]
    missing = [n for n in gated_base if n not in cur]
    if not shared:
        print(f"error: no shared benchmarks between {args.baseline} and "
              f"{args.current} (filter: {args.filter!r})")
        return 2
    if missing:
        # A gated benchmark that disappears is itself a gate failure —
        # otherwise a rename/deletion silently erodes coverage.
        print(f"FAIL: {len(missing)} gated baseline benchmark(s) missing "
              "from the current run: " + ", ".join(missing))
        print("If the rename/removal is intentional, re-record "
              "BENCH_kernels.json (see bench/kernels.cpp header).")
        return 1

    regressions = []
    width = max(len(n) for n in shared)
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  ratio")
    for name in shared:
        if base[name] > 0:
            ratio = cur[name] / base[name]
        else:
            # A zero baseline is an exact gate: the entry must stay 0.
            # Used by counter-valued entries (bench_loadgen's
            # Loadgen/subsat/gate_shed_total) where "any nonzero value is
            # a regression" — a ratio can't express that.
            ratio = 1.0 if cur[name] <= 0 else float("inf")
        flag = "  <-- REGRESSION" if ratio > args.max_slowdown else ""
        print(f"{name:<{width}}  {base[name]:>10.0f}ns  {cur[name]:>10.0f}ns"
              f"  {ratio:5.2f}x{flag}")
        if ratio > args.max_slowdown:
            regressions.append(name)

    skipped = sorted(set(cur) - set(base))
    if skipped:
        print(f"\n{len(skipped)} benchmark(s) not in the baseline (ungated): "
              + ", ".join(skipped))
    if regressions:
        print(f"\nFAIL: {len(regressions)} benchmark(s) slower than "
              f"{args.max_slowdown}x baseline: " + ", ".join(regressions))
        print("If intentional, re-record BENCH_kernels.json (see "
              "bench/kernels.cpp header) and commit it with the change.")
        return 1
    print(f"\nOK: {len(shared)} benchmark(s) within {args.max_slowdown}x "
          "of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
