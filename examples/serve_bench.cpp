// serve_bench — the serving story end to end: one-at-a-time nn::predict
// versus the batched serve::Engine on the same host, dense and packed.
//
// The engine's job is throughput under a single-sample request stream (the
// paper's deployment setting): coalesce requests into real batches so the
// batch-parallel kernels stream each weight matrix once per batch instead
// of once per request. This program submits the same request stream three
// ways and prints requests/s plus the engine's latency percentiles and
// batch occupancy — the measurable version of the paper's latency story
// (Fig. 9).
//
// Scenario (model shape, mask recipe, engine options) deliberately mirrors
// the CI-gated bench/serve.cpp — keep the two in lockstep so this demo
// prints the same comparison the gate tracks. The mask recipe itself is
// shared via core::install_random_hybrid_masks.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <future>
#include <memory>
#include <vector>

#include "core/block_pruning.h"
#include "deploy/packed_model.h"
#include "nn/activations.h"
#include "nn/linear.h"
#include "serve/engine.h"

using namespace crisp;

namespace {

constexpr std::int64_t kIn = 256, kHidden = 512, kClasses = 100;
constexpr int kRequests = 512;

std::shared_ptr<nn::Sequential> make_mlp() {
  Rng rng(7);  // fixed seed: every scenario serves identical weights
  auto model = std::make_shared<nn::Sequential>("servemlp");
  model->emplace<nn::Linear>("fc1", kIn, kHidden, rng);
  model->emplace<nn::ReLU>("relu1");
  model->emplace<nn::Linear>("fc2", kHidden, kHidden, rng);
  model->emplace<nn::ReLU>("relu2");
  model->emplace<nn::Linear>("fc3", kHidden, kClasses, rng);
  return model;
}

void install_hybrid_masks(nn::Sequential& model) {
  core::install_random_hybrid_masks(model, /*block=*/16, /*n=*/2, /*m=*/4,
                                    /*pruned_ranks=*/4);
}

std::vector<Tensor> request_stream() {
  Rng rng(11);
  std::vector<Tensor> samples;
  samples.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i)
    samples.push_back(Tensor::randn({kIn}, rng));
  return samples;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Sequential baseline: one nn::predict per request, batch size 1 forever.
double run_sequential(nn::Sequential& model, const std::vector<Tensor>& reqs) {
  const auto t0 = std::chrono::steady_clock::now();
  float sink = 0.0f;
  for (const Tensor& r : reqs)
    sink += nn::predict(model, r.reshaped({1, kIn}))[0];
  const double dt = seconds_since(t0);
  (void)sink;
  return static_cast<double>(kRequests) / dt;
}

struct EngineRun {
  double rps = 0.0;
  double p50_us = 0.0, p95_us = 0.0;
  serve::EngineStats stats;
};

EngineRun run_engine(std::shared_ptr<const serve::CompiledModel> compiled,
                     const std::vector<Tensor>& reqs) {
  serve::EngineOptions opts;
  opts.max_batch = 16;
  opts.queue_depth = 256;
  opts.flush_timeout = std::chrono::microseconds(200);
  serve::Engine engine(std::move(compiled), opts);

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::future<serve::Response>> futures;
  futures.reserve(reqs.size());
  for (const Tensor& r : reqs) futures.push_back(engine.submit(r));
  std::vector<double> latency_us;
  latency_us.reserve(reqs.size());
  for (auto& f : futures) {
    const serve::Response r = f.get();
    latency_us.push_back(static_cast<double>(
        (r.stats.queue_time + r.stats.run_time).count()));
  }
  EngineRun out;
  out.rps = static_cast<double>(kRequests) / seconds_since(t0);
  std::sort(latency_us.begin(), latency_us.end());
  out.p50_us = latency_us[latency_us.size() / 2];
  out.p95_us = latency_us[latency_us.size() * 95 / 100];
  out.stats = engine.stats();
  return out;
}

void print_engine(const char* label, const EngineRun& r, double baseline_rps) {
  std::printf("%-28s %9.0f req/s  (%.2fx)   p50 %6.0f us   p95 %6.0f us   "
              "occupancy %.1f\n",
              label, r.rps, r.rps / baseline_rps, r.p50_us, r.p95_us,
              r.stats.occupancy());
}

}  // namespace

int main() {
  std::printf("=== serve_bench: sequential predict vs batched engine ===\n\n");
  std::printf("model: %lld -> %lld -> %lld -> %lld MLP, %d single-sample "
              "requests\n\n",
              static_cast<long long>(kIn), static_cast<long long>(kHidden),
              static_cast<long long>(kHidden),
              static_cast<long long>(kClasses), kRequests);

  const std::vector<Tensor> reqs = request_stream();

  // Dense: baseline loop vs engine on the same weights.
  auto dense_model = make_mlp();
  const double seq_rps = run_sequential(*dense_model, reqs);
  std::printf("%-28s %9.0f req/s  (1.00x)\n", "sequential predict (dense)",
              seq_rps);
  const EngineRun dense = run_engine(
      serve::CompiledModel::compile(dense_model), reqs);
  print_engine("engine, batch<=16 (dense)", dense, seq_rps);

  // Packed: the same comparison from the CRISP format. Compiling first
  // installs the packed hooks, so the sequential loop also serves packed —
  // the engine's win is batching, not a different kernel.
  auto packed_model = make_mlp();
  install_hybrid_masks(*packed_model);
  auto artifact = std::make_shared<const deploy::PackedModel>(
      deploy::PackedModel::pack(*packed_model, 16, 2, 4));
  auto packed_compiled = serve::CompiledModel::compile(packed_model, artifact);
  const double packed_seq_rps = run_sequential(*packed_model, reqs);
  std::printf("%-28s %9.0f req/s  (%.2fx)\n", "sequential predict (packed)",
              packed_seq_rps, packed_seq_rps / seq_rps);
  const EngineRun packed = run_engine(packed_compiled, reqs);
  print_engine("engine, batch<=16 (packed)", packed, seq_rps);

  // Quantized: the packed engine served from the int8 payload — a quarter
  // of the weight-value bytes, outputs within the per-block-row scale
  // bound of the fp32 rows above (docs/formats.md).
  auto quant_model = make_mlp();
  install_hybrid_masks(*quant_model);
  serve::CompileOptions copts;
  copts.quantize_payload = true;
  auto quant_compiled =
      serve::CompiledModel::compile(quant_model, artifact, copts);
  const EngineRun quant = run_engine(quant_compiled, reqs);
  print_engine("engine, batch<=16 (int8)", quant, seq_rps);
  std::printf("%-28s %9.1f KiB fp32 -> %.1f KiB int8 payload\n",
              "quantized artifact",
              static_cast<double>(artifact->stats().packed_payload_bits) /
                  8192.0,
              static_cast<double>(
                  quant_compiled->packed()->stats().packed_payload_bits) /
                  8192.0);

  std::printf("\nbatching wins when the weight stream amortizes across the "
              "batch; the engine\nadds the queue that makes that happen for "
              "single-sample traffic.\n");
  return 0;
}
