// format_inspector — visualise the hybrid pattern and its metadata.
//
// Builds a small weight matrix, prunes it to the CRISP hybrid pattern
// (2:4 inside 4x4 blocks, one block pruned per block-row), prints the
// pattern as ASCII, then encodes it in all four storage formats and breaks
// down payload vs metadata — a readable, runnable version of the paper's
// Fig. 4 and Fig. 5 step 5.
#include <cstdio>

#include "sparse/mask.h"
#include "sparse/metadata.h"
#include "sparse/nm.h"
#include "sparse/spmm.h"

using namespace crisp;

namespace {

void print_pattern(const Tensor& w, std::int64_t rows, std::int64_t cols,
                   std::int64_t block) {
  for (std::int64_t r = 0; r < rows; ++r) {
    if (r > 0 && r % block == 0) {
      for (std::int64_t c = 0; c < cols + cols / block - 1; ++c)
        std::printf("-");
      std::printf("\n");
    }
    for (std::int64_t c = 0; c < cols; ++c) {
      if (c > 0 && c % block == 0) std::printf("|");
      std::printf("%c", w[r * cols + c] != 0.0f ? '#' : '.');
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  std::printf("=== CRISP hybrid sparsity pattern inspector ===\n\n");

  const std::int64_t rows = 8, cols = 16, block = 4, n = 2, m = 4;
  Rng rng(42);
  Tensor w = Tensor::randn({rows, cols}, rng);
  Tensor scores = Tensor::rand({rows, cols}, rng, 0.01f, 1.0f);

  // Step 1: fine-grained N:M inside every row.
  Tensor nm = sparse::nm_mask(as_matrix(scores, rows, cols), n, m);
  // Step 2: uniform block pruning — 1 of 4 block columns leaves each row.
  sparse::BlockGrid grid{rows, cols, block};
  Tensor bscores = sparse::block_scores(as_matrix(scores, rows, cols), grid);
  std::vector<std::int64_t> prune(
      static_cast<std::size_t>(grid.grid_rows()), 1);
  Tensor bmask = sparse::expand_block_mask(
      sparse::uniform_row_block_mask(bscores, grid, prune), grid);
  w.mul_(nm);
  w.mul_(bmask);

  std::printf("%lldx%lld weights, %lld:%lld fine-grained + %lldx%lld blocks "
              "(1 block pruned per block-row):\n\n",
              static_cast<long long>(rows), static_cast<long long>(cols),
              static_cast<long long>(n), static_cast<long long>(m),
              static_cast<long long>(block), static_cast<long long>(block));
  print_pattern(w, rows, cols, block);

  const auto mat = as_matrix(w, rows, cols);
  std::printf("\noverall sparsity: %.1f%% (paper identity 1-(K'/K)(N/M) = "
              "%.1f%%)\n",
              100 * sparse::mask_sparsity(mat),
              100 * sparse::paper_average_sparsity(cols, 12, n, m));

  // Encode in every format.
  const auto cm = sparse::CrispMatrix::encode(mat, block, n, m);
  const auto bell = sparse::BlockedEllMatrix::encode(mat, block);
  const auto csr = sparse::CsrMatrix::encode(mat);
  const auto ell = sparse::EllpackMatrix::encode(mat);

  std::printf("\n%-14s %14s %14s %10s\n", "format", "payload bits",
              "metadata bits", "vs CRISP");
  const double crisp_meta = static_cast<double>(cm.metadata_bits());
  std::printf("%-14s %14lld %14lld %9.2fx\n", "CRISP",
              static_cast<long long>(cm.payload_bits()),
              static_cast<long long>(cm.metadata_bits()), 1.0);
  std::printf("%-14s %14lld %14lld %9.2fx\n", "Blocked-ELL",
              static_cast<long long>(bell.payload_bits()),
              static_cast<long long>(bell.metadata_bits()),
              static_cast<double>(bell.metadata_bits()) / crisp_meta);
  std::printf("%-14s %14lld %14lld %9.2fx\n", "CSR",
              static_cast<long long>(csr.payload_bits()),
              static_cast<long long>(csr.metadata_bits()),
              static_cast<double>(csr.metadata_bits()) / crisp_meta);
  std::printf("%-14s %14lld %14lld %9.2fx\n", "ELLPACK",
              static_cast<long long>(ell.payload_bits()),
              static_cast<long long>(ell.metadata_bits()),
              static_cast<double>(ell.metadata_bits()) / crisp_meta);

  // Execute: all four kernels agree with the dense reference.
  Rng xrng(7);
  Tensor x = Tensor::randn({cols, 5}, xrng);
  const Tensor ref = sparse::dense_matmul(w, x);
  std::printf("\nSpMM agreement with dense GEMM (max |diff|):\n");
  std::printf("  CRISP       %.2e\n", max_abs_diff(sparse::spmm(cm, x), ref));
  std::printf("  Blocked-ELL %.2e\n", max_abs_diff(sparse::spmm(bell, x), ref));
  std::printf("  CSR         %.2e\n", max_abs_diff(sparse::spmm(csr, x), ref));
  std::printf("  ELLPACK     %.2e\n", max_abs_diff(sparse::spmm(ell, x), ref));

  std::printf("\nCRISP metadata = block-column ids (%lld bits each) + 2-bit "
              "intra-group offsets per kept value — the Fig. 6 MUX inputs.\n",
              static_cast<long long>(
                  sparse::bits_for_index(grid.grid_cols())));
  return 0;
}
