// accelerator_explorer — design-space exploration for CRISP-STC.
//
// Sweeps N:M ratio, block size, and global sparsity over the full 54-layer
// ImageNet ResNet-50 workload and reports end-to-end latency and energy on
// the edge fabric, against the NVIDIA-STC and DSTC baselines. No training —
// pure analytical simulation, a few milliseconds.
#include <cstdio>
#include <string>
#include <vector>

#include "accel/report.h"

using namespace crisp::accel;

namespace {

struct Totals {
  double cycles = 0;
  double energy = 0;
};

Totals run_network(const AcceleratorModel& model,
                   const std::vector<GemmWorkload>& net,
                   const std::vector<SparsityProfile>& profiles) {
  Totals t;
  for (std::size_t i = 0; i < net.size(); ++i) {
    const SimResult r = model.simulate(net[i], profiles[i]);
    t.cycles += r.cycles;
    t.energy += r.energy_pj;
  }
  return t;
}

}  // namespace

int main() {
  std::printf("=== CRISP-STC design-space explorer (full ResNet-50 @224) ===\n");

  const AcceleratorConfig config = AcceleratorConfig::edge_default();
  const EnergyModel energy = EnergyModel::edge_default();
  const auto net = resnet50_imagenet_workloads();

  const DenseModel dense(config, energy);
  const NvidiaStc nvidia(config, energy);
  const Dstc dstc(config, energy);
  const CrispStc crisp(config, energy);

  std::vector<SparsityProfile> dense_profiles(
      net.size(), SparsityProfile::dense());
  const Totals dense_t = run_network(dense, net, dense_profiles);
  std::printf("\ndense baseline: %.1f Mcycles, %.1f mJ per frame\n",
              dense_t.cycles / 1e6, dense_t.energy / 1e9);

  std::printf("\n%-8s %-6s %-7s | %13s %13s | %11s %11s\n", "N:M", "block",
              "kappa", "latency (Mcy)", "speedup", "energy (mJ)", "efficiency");

  struct Best {
    double speedup = 0;
    std::string label;
  } best_latency, best_energy;

  for (const std::int64_t n : {1LL, 2LL, 3LL}) {
    for (const std::int64_t block : {16LL, 32LL, 64LL}) {
      for (const double kappa : {0.80, 0.875, 0.92}) {
        const auto profiles = ramp_profiles(
            static_cast<std::int64_t>(net.size()), n, 4, block,
            kappa - 0.03, kappa + 0.03);
        const Totals t = run_network(crisp, net, profiles);
        const double speedup = dense_t.cycles / t.cycles;
        const double eff = dense_t.energy / t.energy;
        char label[64];
        std::snprintf(label, sizeof label, "%lld:4 B=%lld kappa=%.3f",
                      static_cast<long long>(n),
                      static_cast<long long>(block), kappa);
        std::printf("%lld:4     %-6lld %-7.3f | %13.2f %12.2fx | %11.2f %10.2fx\n",
                    static_cast<long long>(n), static_cast<long long>(block),
                    kappa, t.cycles / 1e6, speedup, t.energy / 1e9, eff);
        if (speedup > best_latency.speedup)
          best_latency = {speedup, label};
        if (eff > best_energy.speedup) best_energy = {eff, label};
      }
    }
  }

  // Baselines at a representative 2:4, 87.5 % point.
  const auto base_profiles =
      ramp_profiles(static_cast<std::int64_t>(net.size()), 2, 4, 32, 0.845,
                    0.905);
  const Totals nv = run_network(nvidia, net, base_profiles);
  const Totals ds = run_network(dstc, net, base_profiles);
  std::printf("\nbaselines at 2:4 / 84.5-90.5%% sparsity:\n");
  std::printf("  NVIDIA-STC: %.2fx speedup, %.2fx energy efficiency\n",
              dense_t.cycles / nv.cycles, dense_t.energy / nv.energy);
  std::printf("  DSTC:       %.2fx speedup, %.2fx energy efficiency\n",
              dense_t.cycles / ds.cycles, dense_t.energy / ds.energy);

  std::printf("\nbest latency config: %s (%.2fx)\n", best_latency.label.c_str(),
              best_latency.speedup);
  std::printf("best energy config:  %s (%.2fx)\n", best_energy.label.c_str(),
              best_energy.speedup);
  return 0;
}
