// Quickstart: the 60-second tour of the CRISP library.
//
// 1. Generate a synthetic class-pattern dataset (CIFAR-100 stand-in).
// 2. Train a small universal ResNet-50-style model on all classes.
// 3. Pick the user's preferred classes and CRISP-prune to 90 % sparsity
//    (2:4 fine-grained + 16x16 blocks, class-aware saliency).
// 4. Report accuracy, sparsity, FLOPs ratio, and export one layer to the
//    CRISP storage format to show the metadata footprint.
#include <chrono>
#include <cstdio>

#include "core/pruner.h"
#include "data/class_pattern.h"
#include "nn/flops.h"
#include "nn/models/common.h"
#include "sparse/formats/crisp_format.h"

using namespace crisp;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  auto t0 = std::chrono::steady_clock::now();

  // --- dataset: 20 classes keeps the quickstart quick ---------------------
  data::ClassPatternConfig dcfg = data::ClassPatternConfig::cifar100_like();
  dcfg.num_classes = 20;
  dcfg.train_per_class = 24;
  dcfg.test_per_class = 8;
  const data::TrainTest split = data::make_class_pattern_dataset(dcfg);
  std::printf("[%.1fs] dataset: %lld train / %lld test samples, %lld classes\n",
              seconds_since(t0), static_cast<long long>(split.train.size()),
              static_cast<long long>(split.test.size()),
              static_cast<long long>(dcfg.num_classes));

  // --- universal model -----------------------------------------------------
  nn::ModelConfig mcfg;
  mcfg.num_classes = dcfg.num_classes;
  mcfg.input_size = dcfg.image_size;
  mcfg.width_mult = 0.25f;
  auto model = nn::make_resnet50(mcfg);

  nn::TrainConfig tc;
  tc.epochs = 6;
  tc.batch_size = 32;
  tc.sgd.lr = 0.05f;
  tc.lr_decay = 0.85f;
  tc.verbose = true;
  Rng rng(1);
  nn::train(*model, split.train, tc, rng);
  const float dense_acc = nn::evaluate(*model, split.test);
  std::printf("[%.1fs] dense test accuracy (all classes): %.3f\n",
              seconds_since(t0), dense_acc);

  // --- personalize: the user cares about 5 classes -------------------------
  Rng user_rng(7);
  const auto user_classes =
      data::sample_user_classes(dcfg.num_classes, 5, user_rng);
  const data::Dataset user_train = data::filter_classes(split.train, user_classes);
  const data::Dataset user_test = data::filter_classes(split.test, user_classes);

  core::CrispConfig pcfg;
  pcfg.n = 2;
  pcfg.m = 4;
  pcfg.block = 16;
  pcfg.target_sparsity = 0.90;
  pcfg.iterations = 3;
  pcfg.finetune_epochs = 2;
  pcfg.verbose = true;
  core::CrispPruner pruner(*model, pcfg);
  const core::PruneReport report = pruner.run(user_train, rng);

  const float pruned_acc =
      nn::evaluate(*model, user_test, 64, user_classes);
  std::printf("[%.1fs] CRISP-pruned accuracy on user classes: %.3f "
              "(global sparsity %.1f%%)\n",
              seconds_since(t0), pruned_acc,
              100.0 * report.achieved_sparsity());

  const nn::FlopsReport flops =
      nn::count_flops(*model, {1, 3, mcfg.input_size, mcfg.input_size});
  std::printf("normalized FLOPs ratio: %.3f (1.0 = dense)\n", flops.ratio());

  // --- export one pruned layer to the CRISP storage format -----------------
  for (nn::Parameter* p : model->prunable_parameters()) {
    if (p->matrix_cols < pcfg.block || p->matrix_rows < pcfg.block) continue;
    Tensor packed = p->effective_value();
    const auto mat = as_matrix(packed, p->matrix_rows, p->matrix_cols);
    const auto encoded =
        sparse::CrispMatrix::encode(mat, pcfg.block, pcfg.n, pcfg.m);
    std::printf("layer %s encoded: %lldx%lld, %lld blocks/row, "
                "metadata %.1f KiB, payload %.1f KiB\n",
                p->name.c_str(), static_cast<long long>(p->matrix_rows),
                static_cast<long long>(p->matrix_cols),
                static_cast<long long>(encoded.blocks_per_row()),
                static_cast<double>(encoded.metadata_bits()) / 8192.0,
                static_cast<double>(encoded.payload_bits()) / 8192.0);
    break;
  }

  std::printf("[%.1fs] quickstart done\n", seconds_since(t0));
  return 0;
}
