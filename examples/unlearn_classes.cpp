// unlearn_classes — forget classes with masks, deploy with a hot swap.
//
// The scenario: a deployment serving live traffic must stop recognizing
// some of its classes (right-to-be-forgotten, an expired content pack,
// tenant class churn) without a retrain-and-redeploy cycle and without
// dropping a single in-flight request. The CRISP machinery already has
// both halves:
//  1. core::unlearn_classes runs the saliency registry in reverse — it
//     scores the forget set and the retain set separately, ranks blocks by
//     forget-specificity, and prunes the same count per block-row, so the
//     unlearned mask keeps the uniform-rows invariant (docs/criteria.md),
//  2. serve::Engine::swap_model lands the recompiled artifact between
//     batches on a live engine — old batches finish on the old model, new
//     batches serve the new one, nothing fails or tears
//     (tests/test_serve_swap.cpp).
//
// The serving clone trick below matters: CompiledModel::compile freezes a
// *live reference* to its Sequential, so the engine must never serve the
// model the unlearning pass is mutating. Sequential::state_dict round-trips
// values, masks, and BatchNorm buffers, so a fresh make_vgg16 +
// load_state_dict is an exact, independently-owned snapshot.
#include <cstdio>
#include <future>
#include <memory>
#include <utility>
#include <vector>

#include "core/unlearn.h"
#include "data/class_pattern.h"
#include "nn/models/common.h"
#include "nn/trainer.h"
#include "serve/engine.h"

using namespace crisp;

namespace {

/// Exact serving snapshot of `model`: same architecture, independent
/// storage, values + masks + BatchNorm statistics copied over.
std::shared_ptr<nn::Sequential> freeze_snapshot(const nn::ModelConfig& mcfg,
                                                nn::Sequential& model) {
  std::shared_ptr<nn::Sequential> clone = nn::make_vgg16(mcfg);
  clone->load_state_dict(model.state_dict());
  return clone;
}

/// Submits every sample of `split` to the live engine and scores argmax
/// over the FULL class menu — a forgotten class must lose to retained
/// classes outright, not merely drop within a restricted menu.
double served_accuracy(serve::Engine& engine, const data::Dataset& split) {
  const std::int64_t c = split.channels(), h = split.height(),
                     w = split.width();
  std::vector<std::future<serve::Response>> futures;
  futures.reserve(static_cast<std::size_t>(split.size()));
  for (std::int64_t i = 0; i < split.size(); ++i) {
    serve::Request req;
    req.sample = split.sample(i).reshaped({c, h, w});
    futures.push_back(engine.submit(std::move(req)));
  }
  std::int64_t correct = 0;
  for (std::int64_t i = 0; i < split.size(); ++i) {
    const serve::Response r = futures[static_cast<std::size_t>(i)].get();
    if (r.status != serve::Response::Status::kOk) continue;
    std::int64_t best = 0;
    for (std::int64_t k = 1; k < r.output.numel(); ++k)
      if (r.output[k] > r.output[best]) best = k;
    if (best == split.labels[static_cast<std::size_t>(i)]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(split.size());
}

}  // namespace

int main() {
  std::printf("=== CRISP class unlearning + hot swap walkthrough ===\n\n");

  // -- 1. a small trained deployment ----------------------------------------
  data::ClassPatternConfig dcfg = data::ClassPatternConfig::cifar100_like();
  dcfg.num_classes = 6;
  dcfg.image_size = 8;
  dcfg.train_per_class = 24;
  dcfg.test_per_class = 12;
  // Mild difficulty (same settings as tests/test_integration.cpp): the
  // walkthrough shows the mechanics, not bench-scale robustness.
  dcfg.noise_std = 0.15f;
  dcfg.max_shift = 1;
  dcfg.gain_jitter = 0.15f;
  const data::TrainTest split = data::make_class_pattern_dataset(dcfg);

  nn::ModelConfig mcfg;
  mcfg.num_classes = dcfg.num_classes;
  mcfg.input_size = dcfg.image_size;
  mcfg.width_mult = 0.125f;
  std::unique_ptr<nn::Sequential> model = nn::make_vgg16(mcfg);

  nn::TrainConfig tc;
  tc.epochs = 8;
  tc.batch_size = 16;
  tc.sgd.lr = 0.05f;
  Rng rng(1);
  std::printf("training vgg16 (width %.3f) on %lld classes...\n",
              static_cast<double>(mcfg.width_mult),
              static_cast<long long>(dcfg.num_classes));
  nn::train(*model, split.train, tc, rng);

  const std::vector<std::int64_t> forget_classes{0, 1};
  const std::vector<std::int64_t> retain_classes{2, 3, 4, 5};
  const data::Dataset forget_train =
      data::filter_classes(split.train, forget_classes);
  const data::Dataset retain_train =
      data::filter_classes(split.train, retain_classes);
  const data::Dataset forget_test =
      data::filter_classes(split.test, forget_classes);
  const data::Dataset retain_test =
      data::filter_classes(split.test, retain_classes);

  // -- 2. put the model into live service -----------------------------------
  serve::EngineOptions eopts;
  eopts.max_batch = 8;
  serve::Engine engine(
      serve::CompiledModel::compile(freeze_snapshot(mcfg, *model)), eopts);

  const double forget_before = served_accuracy(engine, forget_test);
  const double retain_before = served_accuracy(engine, retain_test);
  std::printf("live engine, before unlearning: forget-class accuracy "
              "%.1f%%, retained %.1f%%\n",
              100 * forget_before, 100 * retain_before);

  // -- 3. unlearn on the training copy while the engine keeps serving -------
  core::UnlearnConfig ucfg;
  ucfg.block = 8;  // match the tiny layer widths of this walkthrough
  ucfg.drop_per_row = 1;
  ucfg.finetune_epochs = 4;
  ucfg.batch_size = 16;
  const core::UnlearnReport rep =
      core::unlearn_classes(*model, forget_train, retain_train, ucfg, rng);
  std::int64_t layers_touched = 0;
  for (const std::int64_t d : rep.dropped_per_row) layers_touched += d > 0;
  std::printf("unlearned %zu classes: dropped %lld block/row in %lld of %zu "
              "layers, sparsity %.1f%% -> %.1f%%\n",
              forget_classes.size(), static_cast<long long>(ucfg.drop_per_row),
              static_cast<long long>(layers_touched),
              rep.dropped_per_row.size(), 100 * rep.sparsity_before,
              100 * rep.sparsity_after);

  // -- 4. deploy with one call — no restart, no failed requests -------------
  engine.swap_model(serve::CompiledModel::compile(freeze_snapshot(mcfg, *model)));

  const double forget_after = served_accuracy(engine, forget_test);
  const double retain_after = served_accuracy(engine, retain_test);
  const serve::EngineStats stats = engine.stats();
  engine.shutdown();

  std::printf("live engine, after the swap:    forget-class accuracy "
              "%.1f%% (chance is %.1f%%), retained %.1f%%\n",
              100 * forget_after, 100.0 / dcfg.num_classes,
              100 * retain_after);
  std::printf("engine: %lld requests, %lld swap(s), %lld failed\n",
              static_cast<long long>(stats.requests),
              static_cast<long long>(stats.swaps),
              static_cast<long long>(stats.shed + stats.expired +
                                     stats.cancelled + stats.rejected +
                                     stats.infeasible));

  // The contract (pinned by tests/test_integration.cpp): forgotten classes
  // fall to chance under the full menu, retained classes hold.
  const bool ok =
      forget_after <= 1.0 / dcfg.num_classes + 0.05 &&
      retain_after >= retain_before - 0.02 &&
      stats.shed + stats.expired + stats.cancelled + stats.rejected +
              stats.infeasible ==
          0;
  std::printf("\n%s — the deployment forgot classes 0 and 1 without a "
              "restart.\n", ok ? "done" : "CONTRACT VIOLATED");
  return ok ? 0 : 1;
}
