// deploy_packed — ship a CRISP-pruned model and serve it from the packed
// format.
//
// The cloud side prunes a universal model for the user's classes and writes
// a single artifact (CRISP hybrid format + carried dense state). The device
// side loads the artifact, reconstructs the network, compiles it into an
// immutable serving artifact (serve::CompiledModel — the packed GEMM hooks
// ride inside, no attach/detach lifecycle), and answers a request stream
// through a batched serve::Engine. Predictions never touch a dense weight
// matrix — the software analogue of the CRISP-STC datapath. Along the way
// the program prints the storage breakdown the hybrid format was designed
// for (paper §III-A).
#include <cstdio>
#include <future>
#include <memory>
#include <utility>
#include <vector>

#include "core/pruner.h"
#include "deploy/packed_model.h"
#include "nn/trainer.h"
#include "nn/zoo.h"
#include "serve/engine.h"

using namespace crisp;

int main() {
  std::printf("=== deploy_packed: prune -> pack -> ship -> serve ===\n\n");

  // --- cloud side -----------------------------------------------------------
  nn::ZooSpec spec;
  spec.model = nn::ModelKind::kVgg16;
  spec.dataset = nn::DatasetKind::kCifar100Like;
  spec.width_mult = 0.125f;
  spec.input_size = 16;
  spec.pretrain_epochs = 6;
  spec.train_per_class = 16;
  spec.test_per_class = 8;
  nn::PretrainedModel pm = nn::zoo_pretrained(spec, /*verbose=*/true);

  Rng rng(11);
  const auto classes = data::sample_user_classes(pm.data.train.num_classes, 5,
                                                 rng);
  const data::Dataset user_train = data::filter_classes(pm.data.train, classes);
  const data::Dataset user_test = data::filter_classes(pm.data.test, classes);

  core::CrispConfig cfg;
  cfg.n = 2;
  cfg.m = 4;
  cfg.block = 8;
  cfg.target_sparsity = 0.90;
  cfg.iterations = 3;
  cfg.finetune_epochs = 2;
  cfg.recovery_epochs = 8;
  core::CrispPruner pruner(*pm.model, cfg);
  const core::PruneReport report = pruner.run(user_train, rng);
  const float acc = nn::evaluate(*pm.model, user_test, 64, classes);
  std::printf("\npruned to %.1f%% sparsity, user-class accuracy %.1f%%\n",
              100 * report.achieved_sparsity(), 100 * acc);

  const deploy::PackedModel packed =
      deploy::PackedModel::pack(*pm.model, cfg.block, cfg.n, cfg.m);
  const deploy::PackedStats stats = packed.stats();
  std::printf("\nartifact breakdown:\n");
  std::printf("  dense model        %8.1f KiB\n",
              static_cast<double>(stats.model_dense_bits) / 8.0 / 1024.0);
  std::printf("  packed payload     %8.1f KiB\n",
              static_cast<double>(stats.packed_payload_bits) / 8.0 / 1024.0);
  std::printf("  packed metadata    %8.1f KiB\n",
              static_cast<double>(stats.packed_metadata_bits) / 8.0 / 1024.0);
  std::printf("  carried dense      %8.1f KiB\n",
              static_cast<double>(stats.carried_dense_bits) / 8.0 / 1024.0);
  std::printf("  shipped total      %8.1f KiB  (%.2fx of dense)\n",
              static_cast<double>(stats.total_bits()) / 8.0 / 1024.0,
              stats.compression());

  const std::string path = "/tmp/crisp_packed_model.bin";
  packed.save(path);
  std::printf("\nsaved artifact to %s\n", path.c_str());

  // --- device side ----------------------------------------------------------
  auto shipped = std::make_shared<const deploy::PackedModel>(
      deploy::PackedModel::load(path));
  nn::ModelConfig mcfg = spec.model_config();
  std::shared_ptr<nn::Sequential> device_model =
      nn::make_model(spec.model, mcfg);
  shipped->unpack_into(*device_model);
  const auto compiled = serve::CompiledModel::compile(device_model, shipped);
  std::printf("device: compiled model serves %zu layers from the packed "
              "format\n",
              compiled->packed_layers().size());

  const float served = nn::evaluate(*device_model, user_test, 64, classes);
  std::printf("device: served accuracy %.1f%% (cloud-side was %.1f%%)\n",
              100 * served, 100 * acc);
  std::printf("\n%s\n", served == acc ? "bit-exact deployment round trip"
                                      : "deployment drifted — investigate!");

  // --- serving: a request stream through the batched engine ----------------
  serve::EngineOptions eopts;
  eopts.max_batch = 16;
  eopts.flush_timeout = std::chrono::microseconds(500);
  serve::Engine engine(compiled, eopts);

  const std::int64_t c = user_test.channels(), h = user_test.height(),
                     w = user_test.width();
  std::vector<std::future<serve::Response>> futures;
  futures.reserve(static_cast<std::size_t>(user_test.size()));
  for (std::int64_t i = 0; i < user_test.size(); ++i)
    futures.push_back(engine.submit(user_test.sample(i).reshaped({c, h, w})));

  std::int64_t correct = 0;
  for (std::int64_t i = 0; i < user_test.size(); ++i) {
    const serve::Response r =
        futures[static_cast<std::size_t>(i)].get();
    // Argmax over the user's classes, like nn::evaluate does.
    std::int64_t best = classes.front();
    for (const std::int64_t cls : classes)
      if (r.output[cls] > r.output[best]) best = cls;
    if (best == user_test.labels[static_cast<std::size_t>(i)]) ++correct;
  }
  const serve::EngineStats es = engine.stats();
  std::printf("\nengine: served %lld single-sample requests in %lld batched "
              "forwards (mean occupancy %.1f, mean queue wait %.0f us)\n",
              static_cast<long long>(es.requests),
              static_cast<long long>(es.batches), es.occupancy(),
              es.mean_queue_us());
  std::printf("engine: streaming accuracy %.1f%% — same model, now a "
              "concurrency-safe service\n",
              100.0 * static_cast<double>(correct) /
                  static_cast<double>(user_test.size()));
  return 0;
}
