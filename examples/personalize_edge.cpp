// personalize_edge — the paper's end-to-end story, fleet edition.
//
// A provider ships one universal 100-class model to a fleet of users, each
// of whom only ever sees a handful of classes (the paper's motivating
// scenario, §I). The provider:
//  1. CRISP-prunes the universal model once (class-aware saliency, hybrid
//     2:4 + block sparsity) — this becomes the one shared base artifact,
//  2. observes each user's traffic and derives their frequently-occurring
//     classes (§III-B),
//  3. personalizes per user by *restricting* the base — class-aware
//     saliency ranks the base's surviving blocks on the user's classes and
//     the least useful ones are dropped, uniformly per block-row, so the
//     personalization is a tens-of-bytes tenant::MaskDelta instead of a
//     model copy,
//  4. estimates on-device latency/energy on the CRISP-STC edge accelerator,
//  5. and serves the whole fleet from one process through tenant::Store
//     (LRU-compiled overlays aliasing the one base arena) and
//     tenant::Router (tenant-affine engines). docs/tenants.md is the
//     subsystem guide.
#include <algorithm>
#include <cstdio>
#include <future>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "accel/report.h"
#include "core/pruner.h"
#include "core/saliency.h"
#include "nn/flops.h"
#include "nn/zoo.h"
#include "sparse/block.h"
#include "sparse/formats/crisp_format.h"
#include "tenant/router.h"

using namespace crisp;

namespace {

/// Simulates the observation window: the device sees a stream of samples
/// heavily skewed toward the user's actual interests, and keeps the classes
/// above a frequency threshold (§III-B "frequently occurring classes").
std::vector<std::int64_t> observe_user_classes(const data::Dataset& stream,
                                               Rng& rng,
                                               std::int64_t window = 400,
                                               double threshold = 0.04) {
  // The "true" user interests: 6 classes the stream is biased toward.
  const auto interests = data::sample_user_classes(stream.num_classes, 6, rng);
  std::map<std::int64_t, std::int64_t> counts;
  for (std::int64_t i = 0; i < window; ++i) {
    std::int64_t label;
    if (rng.bernoulli(0.9)) {  // 90 % of observations hit user interests
      label = interests[static_cast<std::size_t>(
          rng.randint(0, static_cast<std::int64_t>(interests.size()) - 1))];
    } else {
      label = rng.randint(0, stream.num_classes - 1);
    }
    ++counts[label];
  }
  std::vector<std::int64_t> uc;
  for (const auto& [cls, n] : counts)
    if (static_cast<double>(n) >= threshold * static_cast<double>(window))
      uc.push_back(cls);
  return uc;
}

/// Restricts the model's masks in place: in every layer where each
/// block-row keeps at least eight of the base's surviving blocks, drop
/// the one with the lowest class-aware saliency per block-row (ties
/// toward lower column). The >= 8 floor keeps the restriction gentle — a
/// tenant gives up at most an eighth of a row's surviving weights, and
/// only in the wide layers where its calibration data says they matter
/// least
/// (there is no per-tenant fine-tune to recover from an aggressive cut:
/// the overlay serves the base's weights as-is). Uniform per-row drops
/// keep the result a valid CRISP pattern — exactly what
/// tenant::MaskDelta::from_model requires.
void restrict_masks_by_saliency(nn::Sequential& model,
                                const core::SaliencyMap& saliency,
                                std::int64_t block) {
  const auto params = model.prunable_parameters();
  for (std::size_t pi = 0; pi < params.size(); ++pi) {
    nn::Parameter* p = params[pi];
    if (!p->has_mask()) continue;
    const sparse::BlockGrid grid{p->matrix_rows, p->matrix_cols, block};
    const Tensor scores = sparse::block_scores(
        as_matrix(saliency[pi], p->matrix_rows, p->matrix_cols), grid);
    const std::int64_t gr = grid.grid_rows(), gc = grid.grid_cols();
    const std::int64_t cols = p->matrix_cols;
    float* mask = p->mask.data();
    const float* sc = scores.data();

    // Survivors per block-row (uniform across rows by the CRISP
    // invariant, but verify the minimum so the drop stays legal).
    auto block_live = [&](std::int64_t br, std::int64_t bc) {
      const std::int64_t r0 = br * block, r1 = r0 + grid.row_extent(br);
      const std::int64_t c0 = bc * block, c1 = c0 + grid.col_extent(bc);
      for (std::int64_t r = r0; r < r1; ++r)
        for (std::int64_t c = c0; c < c1; ++c)
          if (mask[r * cols + c] != 0.0f) return true;
      return false;
    };
    std::int64_t min_survivors = std::numeric_limits<std::int64_t>::max();
    for (std::int64_t br = 0; br < gr; ++br) {
      std::int64_t live = 0;
      for (std::int64_t bc = 0; bc < gc; ++bc) live += block_live(br, bc);
      min_survivors = std::min(min_survivors, live);
    }
    if (min_survivors < 8) continue;  // too lean to give anything up

    for (std::int64_t br = 0; br < gr; ++br) {
      std::int64_t worst = -1;
      for (std::int64_t bc = 0; bc < gc; ++bc) {
        if (!block_live(br, bc)) continue;
        if (worst < 0 || sc[br * gc + bc] < sc[br * gc + worst]) worst = bc;
      }
      const std::int64_t r0 = br * block, r1 = r0 + grid.row_extent(br);
      const std::int64_t c0 = worst * block,
                         c1 = c0 + grid.col_extent(worst);
      for (std::int64_t r = r0; r < r1; ++r)
        for (std::int64_t c = c0; c < c1; ++c) mask[r * cols + c] = 0.0f;
    }
  }
}

struct Tenant {
  std::string id;
  std::vector<std::int64_t> classes;
  data::Dataset test;
  std::int64_t delta_bytes = 0;
};

}  // namespace

int main() {
  std::printf("=== CRISP fleet personalization walkthrough ===\n\n");

  // -- 1. the universal model (from the zoo cache; trains on first run) ----
  nn::ZooSpec spec;
  spec.model = nn::ModelKind::kResNet50;
  spec.dataset = nn::DatasetKind::kCifar100Like;
  spec.width_mult = 0.125f;
  spec.input_size = 16;
  spec.pretrain_epochs = 12;
  spec.train_per_class = 16;
  spec.test_per_class = 8;
  nn::PretrainedModel pm = nn::zoo_pretrained(spec, /*verbose=*/true);
  std::printf("universal model: %s, %zu prunable layers, dense accuracy "
              "%.1f%% over %lld classes\n",
              nn::model_kind_name(spec.model),
              pm.model->prunable_parameters().size(), 100 * pm.test_accuracy,
              static_cast<long long>(pm.data.train.num_classes));

  // -- 2. CRISP-prune once: the shared base artifact ------------------------
  // The provider prunes the universal model over the full class mix; every
  // tenant's personalization will be a restriction of this one pattern.
  Rng rng(2024);
  core::CrispConfig cfg;
  cfg.n = 2;
  cfg.m = 4;
  cfg.block = 16;
  cfg.target_sparsity = 0.80;
  cfg.iterations = 3;
  cfg.finetune_epochs = 2;
  cfg.recovery_epochs = 10;
  cfg.verbose = true;
  core::CrispPruner pruner(*pm.model, cfg);
  const core::PruneReport report = pruner.run(pm.data.train, rng);
  const float base_acc = nn::evaluate(*pm.model, pm.data.test);
  pruner.bake();
  const double flops =
      nn::count_flops(*pm.model, {1, 3, spec.input_size, spec.input_size})
          .ratio();
  std::printf("\nbase artifact: sparsity %.1f%%, accuracy %.1f%% "
              "(dense was %.1f%%), FLOPs ratio %.3f\n",
              100 * report.achieved_sparsity(), 100 * base_acc,
              100 * pm.test_accuracy, flops);

  auto base = tenant::BaseArtifact::create(
      std::make_shared<const deploy::PackedModel>(
          deploy::PackedModel::pack(*pm.model, cfg.block, cfg.n, cfg.m)));
  double payload_kib = 0, metadata_kib = 0, dense_kib = 0;
  for (nn::Parameter* p : pm.model->prunable_parameters()) {
    const auto mat = as_matrix(p->value, p->matrix_rows, p->matrix_cols);
    const auto cm = sparse::CrispMatrix::encode(mat, cfg.block, cfg.n, cfg.m);
    payload_kib += static_cast<double>(cm.payload_bits()) / 8192.0;
    metadata_kib += static_cast<double>(cm.metadata_bits()) / 8192.0;
    dense_kib += static_cast<double>(p->value.numel()) * 4.0 / 1024.0;
  }
  std::printf("CRISP-format weights: %.0f KiB payload + %.0f KiB metadata "
              "(dense fp32 was %.0f KiB) -> %.1fx smaller\n",
              payload_kib, metadata_kib, dense_kib,
              dense_kib / (payload_kib + metadata_kib));

  // -- 3. personalize the fleet: masks, not models --------------------------
  // Per tenant: observe the user's classes, score the base's surviving
  // blocks with class-aware saliency on those classes (Eq. 1 restricted to
  // the user's calibration data), and register the restriction as a
  // MaskDelta. The model's base masks are restored after each derivation —
  // nothing about the shared artifact changes per tenant.
  constexpr int kTenants = 6;
  const tenant::ModelFactory factory = [spec] {
    return std::shared_ptr<nn::Sequential>(
        nn::make_model(spec.model, spec.model_config()));
  };
  auto store = std::make_shared<tenant::Store>(base, factory);

  std::vector<Tensor> base_masks;
  for (nn::Parameter* p : pm.model->prunable_parameters())
    base_masks.push_back(p->mask);

  std::vector<Tenant> tenants;
  std::int64_t delta_bytes_total = 0;
  for (int t = 0; t < kTenants; ++t) {
    Rng trng(static_cast<std::uint64_t>(100 + t));
    Tenant tn;
    tn.id = "tenant-" + std::to_string(t);
    tn.classes = observe_user_classes(pm.data.train, trng);
    tn.test = data::filter_classes(pm.data.test, tn.classes);

    core::SaliencyConfig scfg;
    scfg.seed = static_cast<std::uint64_t>(t);
    const core::SaliencyMap sal = core::estimate_saliency(
        *pm.model, data::filter_classes(pm.data.train, tn.classes), scfg);
    restrict_masks_by_saliency(*pm.model, sal, cfg.block);
    tenant::MaskDelta delta = tenant::MaskDelta::from_model(*base, *pm.model);
    tn.delta_bytes = delta.delta_bytes();
    delta_bytes_total += tn.delta_bytes;
    store->register_tenant(tn.id, std::move(delta));

    const auto params = pm.model->prunable_parameters();
    for (std::size_t i = 0; i < params.size(); ++i)
      params[i]->mask = base_masks[i];  // restore the base pattern

    std::printf("%s: %zu classes, personalization = %lld bytes\n",
                tn.id.c_str(), tn.classes.size(),
                static_cast<long long>(tn.delta_bytes));
    tenants.push_back(std::move(tn));
  }
  const double base_kib = static_cast<double>(base->base_bytes()) / 1024.0;
  std::printf("fleet residency: one %.0f KiB base + %lld bytes of deltas, "
              "vs %.0f KiB for %d model copies (%.0fx smaller)\n",
              base_kib, static_cast<long long>(delta_bytes_total),
              base_kib * kTenants, kTenants,
              base_kib * kTenants /
                  (base_kib + static_cast<double>(delta_bytes_total) / 1024.0));

  // -- 4. on-device latency/energy estimate (true ResNet-50 shapes) --------
  const auto workloads = accel::resnet50_representative_workloads();
  std::vector<accel::SparsityProfile> profiles;
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    accel::SparsityProfile p;
    p.n = cfg.n;
    p.m = cfg.m;
    p.block = cfg.block;
    p.kept_cols_fraction = std::min(
        1.0, (1.0 - report.achieved_sparsity()) * static_cast<double>(cfg.m) /
                 static_cast<double>(cfg.n));
    profiles.push_back(p);
  }
  const auto rows = accel::compare_accelerators(
      workloads, profiles, accel::AcceleratorConfig::edge_default(),
      accel::EnergyModel::edge_default());
  double total_dense_cycles = 0, total_crisp_cycles = 0;
  double total_dense_energy = 0, total_crisp_energy = 0;
  for (const auto& row : rows) {
    total_dense_cycles += row.dense.cycles;
    total_crisp_cycles += row.crisp.cycles;
    total_dense_energy += row.dense.energy_pj;
    total_crisp_energy += row.crisp.energy_pj;
  }
  std::printf("\nCRISP-STC estimate over representative ResNet-50 layers:\n");
  std::printf("  latency: %.2fx faster than the dense edge baseline\n",
              total_dense_cycles / total_crisp_cycles);
  std::printf("  energy:  %.2fx more efficient\n",
              total_dense_energy / total_crisp_energy);

  // -- 5. serve the fleet from one process ----------------------------------
  // The router fronts the store with tenant-affine engines: a cold tenant
  // costs one overlay compile (zero payload copies — the overlay aliases
  // the base arena), a hot tenant is a map lookup into its own batching
  // engine. The pool is smaller than the fleet, so LRU retirement runs too.
  tenant::RouterOptions ropts;
  ropts.max_engines = 3;
  ropts.engine.max_batch = 16;
  ropts.engine.flush_timeout = std::chrono::microseconds(500);
  ropts.engine.thread_budget = 2;  // share cores with the rest of the box
  tenant::Router router(store, ropts);

  std::printf("\nserving %d tenants through %lld engines:\n", kTenants,
              static_cast<long long>(ropts.max_engines));
  const std::int64_t c = pm.data.test.channels(), h = pm.data.test.height(),
                     w = pm.data.test.width();
  for (const Tenant& tn : tenants) {
    std::vector<std::future<serve::Response>> futures;
    for (std::int64_t i = 0; i < tn.test.size(); ++i) {
      serve::Request req;
      req.sample = tn.test.sample(i).reshaped({c, h, w});
      futures.push_back(router.submit(tn.id, std::move(req)));
      // Wait out the first (cold) response so the rest of this tenant's
      // burst rides the hot path into its freshly-built engine.
      if (i == 0) futures.front().wait();
    }
    std::int64_t correct = 0;
    for (std::int64_t i = 0; i < tn.test.size(); ++i) {
      const serve::Response r = futures[static_cast<std::size_t>(i)].get();
      std::int64_t best = tn.classes.front();
      for (const std::int64_t cls : tn.classes)
        if (r.output[cls] > r.output[best]) best = cls;
      if (best == tn.test.labels[static_cast<std::size_t>(i)]) ++correct;
    }
    std::printf("  %s: %lld requests, accuracy %.1f%% on its %zu classes\n",
                tn.id.c_str(), static_cast<long long>(tn.test.size()),
                100.0 * static_cast<double>(correct) /
                    static_cast<double>(tn.test.size()),
                tn.classes.size());
  }
  const tenant::RouterStats rs = router.stats();
  const tenant::ResidentBytes res = store->resident_bytes();
  router.shutdown();
  std::printf("router: %lld requests (%lld hot, %lld cold), %lld engines "
              "built, %lld retired\n",
              static_cast<long long>(rs.submitted),
              static_cast<long long>(rs.hot),
              static_cast<long long>(rs.cold_misses),
              static_cast<long long>(rs.engines_built),
              static_cast<long long>(rs.engines_retired));
  std::printf("resident: %.0f KiB base + %.1f KiB deltas + %.0f KiB "
              "compiled cache\n",
              static_cast<double>(res.base) / 1024.0,
              static_cast<double>(res.deltas) / 1024.0,
              static_cast<double>(res.compiled) / 1024.0);

  // -- 6. durability: the fleet survives a restart --------------------------
  // The whole registry goes to one CRSPSHRD shard (atomic temp+rename
  // write, every record CRC-framed — docs/persistence.md), comes back into
  // a *fresh* store as if the process had restarted, and every tenant must
  // serve bit-identically to its pre-save personalization.
  const std::string shard_path = "/tmp/personalize_edge_fleet.shard";
  const std::int64_t saved = store->save_shard(shard_path);
  tenant::Store restored(base, factory);
  const tenant::ShardLoadReport lrep = restored.load_shard(shard_path);
  std::printf("\npersisted %lld tenants to %s; recovered %lld "
              "(quarantined %lld, scan clean: %s)\n",
              static_cast<long long>(saved), shard_path.c_str(),
              static_cast<long long>(lrep.loaded),
              static_cast<long long>(lrep.quarantined),
              lrep.scan.clean() ? "yes" : "no");

  bool identical = true;
  for (const Tenant& tn : tenants) {
    const auto before = store->acquire(tn.id);
    const auto after = restored.acquire(tn.id);
    std::int64_t correct_before = 0, correct_after = 0;
    float worst = 0.0f;
    for (std::int64_t i = 0; i < tn.test.size(); ++i) {
      const Tensor x = tn.test.sample(i).reshaped({1, c, h, w});
      const Tensor ob = before->run(x);
      const Tensor oa = after->run(x);
      worst = std::max(worst, max_abs_diff(ob, oa));
      const auto top = [&](const Tensor& out) {
        std::int64_t best = tn.classes.front();
        for (const std::int64_t cls : tn.classes)
          if (out[cls] > out[best]) best = cls;
        return best;
      };
      if (top(ob) == tn.test.labels[static_cast<std::size_t>(i)])
        ++correct_before;
      if (top(oa) == tn.test.labels[static_cast<std::size_t>(i)])
        ++correct_after;
    }
    if (worst != 0.0f || correct_before != correct_after) identical = false;
    std::printf("  %s: pre-save accuracy %.1f%%, recovered %.1f%%, max "
                "output delta %g\n",
                tn.id.c_str(),
                100.0 * static_cast<double>(correct_before) /
                    static_cast<double>(tn.test.size()),
                100.0 * static_cast<double>(correct_after) /
                    static_cast<double>(tn.test.size()),
                static_cast<double>(worst));
  }
  std::remove(shard_path.c_str());
  if (!identical || !lrep.scan.clean() || lrep.loaded != kTenants) {
    std::printf("ERROR: recovered fleet is not bit-identical to the "
                "pre-save fleet\n");
    return 1;
  }

  std::printf("\ndone — one base model, %d personalizations of a few KiB "
              "each, served from one process and restored bit-identically "
              "from one shard.\n",
              kTenants);
  return 0;
}
