// personalize_edge — the paper's end-to-end story in one program.
//
// A universal 100-class model ships to a user who only ever sees a handful
// of classes (the paper's motivating scenario, §I). The device:
//  1. identifies the frequently-occurring classes in an observation window,
//  2. CRISP-prunes the model for those classes (class-aware saliency,
//     hybrid 2:4 + block sparsity, iterative fine-tuning),
//  3. exports the pruned weights to the CRISP storage format,
//  4. estimates on-device latency/energy on the CRISP-STC edge accelerator,
//  5. and stands the personalized model up behind a batched serve::Engine —
//     the shape the device actually answers requests in.
#include <cstdio>
#include <future>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "accel/report.h"
#include "core/pruner.h"
#include "deploy/packed_model.h"
#include "nn/flops.h"
#include "nn/zoo.h"
#include "serve/engine.h"
#include "sparse/formats/crisp_format.h"

using namespace crisp;

namespace {

/// Simulates the observation window: the device sees a stream of samples
/// heavily skewed toward the user's actual interests, and keeps the classes
/// above a frequency threshold (§III-B "frequently occurring classes").
std::vector<std::int64_t> observe_user_classes(const data::Dataset& stream,
                                               Rng& rng,
                                               std::int64_t window = 400,
                                               double threshold = 0.04) {
  // The "true" user interests: 6 classes the stream is biased toward.
  const auto interests = data::sample_user_classes(stream.num_classes, 6, rng);
  std::map<std::int64_t, std::int64_t> counts;
  for (std::int64_t i = 0; i < window; ++i) {
    std::int64_t label;
    if (rng.bernoulli(0.9)) {  // 90 % of observations hit user interests
      label = interests[static_cast<std::size_t>(
          rng.randint(0, static_cast<std::int64_t>(interests.size()) - 1))];
    } else {
      label = rng.randint(0, stream.num_classes - 1);
    }
    ++counts[label];
  }
  std::vector<std::int64_t> uc;
  for (const auto& [cls, n] : counts)
    if (static_cast<double>(n) >= threshold * static_cast<double>(window))
      uc.push_back(cls);
  return uc;
}

}  // namespace

int main() {
  std::printf("=== CRISP edge personalization walkthrough ===\n\n");

  // -- 1. the universal model (from the zoo cache; trains on first run) ----
  nn::ZooSpec spec;
  spec.model = nn::ModelKind::kResNet50;
  spec.dataset = nn::DatasetKind::kCifar100Like;
  spec.width_mult = 0.125f;
  spec.input_size = 16;
  spec.pretrain_epochs = 12;
  spec.train_per_class = 16;
  spec.test_per_class = 8;
  nn::PretrainedModel pm = nn::zoo_pretrained(spec, /*verbose=*/true);
  std::printf("universal model: %s, %zu prunable layers, dense accuracy "
              "%.1f%% over %lld classes\n",
              nn::model_kind_name(spec.model),
              pm.model->prunable_parameters().size(), 100 * pm.test_accuracy,
              static_cast<long long>(pm.data.train.num_classes));

  // -- 2. observe the user, derive preferred classes ------------------------
  Rng rng(2024);
  const auto user_classes = observe_user_classes(pm.data.train, rng);
  std::printf("\nobservation window found %zu user-preferred classes:",
              user_classes.size());
  for (auto c : user_classes) std::printf(" %lld", static_cast<long long>(c));
  std::printf("\n");

  const data::Dataset user_train =
      data::filter_classes(pm.data.train, user_classes);
  const data::Dataset user_test =
      data::filter_classes(pm.data.test, user_classes);
  const float before =
      nn::evaluate(*pm.model, user_test, 64, user_classes);

  // -- 3. CRISP pruning ------------------------------------------------------
  core::CrispConfig cfg;
  cfg.n = 2;
  cfg.m = 4;
  cfg.block = 16;
  cfg.target_sparsity = 0.92;
  cfg.iterations = 3;
  cfg.finetune_epochs = 2;
  cfg.recovery_epochs = 12;
  cfg.verbose = true;
  core::CrispPruner pruner(*pm.model, cfg);
  const core::PruneReport report = pruner.run(user_train, rng);
  const float after = nn::evaluate(*pm.model, user_test, 64, user_classes);
  const double flops =
      nn::count_flops(*pm.model, {1, 3, spec.input_size, spec.input_size})
          .ratio();

  std::printf("\npersonalization: accuracy %.1f%% -> %.1f%% on user classes, "
              "sparsity %.1f%%, FLOPs ratio %.3f\n",
              100 * before, 100 * after, 100 * report.achieved_sparsity(),
              flops);

  // -- 4. deployment artefacts ----------------------------------------------
  pruner.bake();
  double payload_kib = 0, metadata_kib = 0, dense_kib = 0;
  for (nn::Parameter* p : pm.model->prunable_parameters()) {
    const auto mat = as_matrix(p->value, p->matrix_rows, p->matrix_cols);
    const auto cm = sparse::CrispMatrix::encode(mat, cfg.block, cfg.n, cfg.m);
    payload_kib += static_cast<double>(cm.payload_bits()) / 8192.0;
    metadata_kib += static_cast<double>(cm.metadata_bits()) / 8192.0;
    dense_kib += static_cast<double>(p->value.numel()) * 4.0 / 1024.0;
  }
  std::printf("CRISP-format weights: %.0f KiB payload + %.0f KiB metadata "
              "(dense fp32 was %.0f KiB) -> %.1fx smaller\n",
              payload_kib, metadata_kib, dense_kib,
              dense_kib / (payload_kib + metadata_kib));

  // -- 5. on-device latency/energy estimate (true ResNet-50 shapes) --------
  const auto workloads = accel::resnet50_representative_workloads();
  std::vector<accel::SparsityProfile> profiles;
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    accel::SparsityProfile p;
    p.n = cfg.n;
    p.m = cfg.m;
    p.block = cfg.block;
    p.kept_cols_fraction = std::min(
        1.0, (1.0 - report.achieved_sparsity()) * static_cast<double>(cfg.m) /
                 static_cast<double>(cfg.n));
    profiles.push_back(p);
  }
  const auto rows = accel::compare_accelerators(
      workloads, profiles, accel::AcceleratorConfig::edge_default(),
      accel::EnergyModel::edge_default());
  double total_dense_cycles = 0, total_crisp_cycles = 0;
  double total_dense_energy = 0, total_crisp_energy = 0;
  for (const auto& row : rows) {
    total_dense_cycles += row.dense.cycles;
    total_crisp_cycles += row.crisp.cycles;
    total_dense_energy += row.dense.energy_pj;
    total_crisp_energy += row.crisp.energy_pj;
  }
  std::printf("\nCRISP-STC estimate over representative ResNet-50 layers:\n");
  std::printf("  latency: %.2fx faster than the dense edge baseline\n",
              total_dense_cycles / total_crisp_cycles);
  std::printf("  energy:  %.2fx more efficient\n",
              total_dense_energy / total_crisp_energy);

  // -- 6. stand the personalized model up as a service ----------------------
  // The packed artifact and the model move into an immutable CompiledModel;
  // the Engine batches the device's request stream through it with a pinned
  // kernel-pool budget (an edge device shares its cores with everything
  // else).
  auto artifact = std::make_shared<const deploy::PackedModel>(
      deploy::PackedModel::pack(*pm.model, cfg.block, cfg.n, cfg.m));
  std::shared_ptr<nn::Sequential> served_model = std::move(pm.model);
  const auto compiled = serve::CompiledModel::compile(served_model, artifact);

  serve::EngineOptions eopts;
  eopts.max_batch = 16;
  eopts.flush_timeout = std::chrono::microseconds(500);
  eopts.thread_budget = 2;  // leave cores for the rest of the device
  serve::Engine engine(compiled, eopts);

  const std::int64_t c = user_test.channels(), h = user_test.height(),
                     w = user_test.width();
  std::vector<std::future<serve::Response>> futures;
  for (std::int64_t i = 0; i < user_test.size(); ++i)
    futures.push_back(engine.submit(user_test.sample(i).reshaped({c, h, w})));
  std::int64_t correct = 0;
  for (std::int64_t i = 0; i < user_test.size(); ++i) {
    const serve::Response r = futures[static_cast<std::size_t>(i)].get();
    std::int64_t best = user_classes.front();
    for (const std::int64_t cls : user_classes)
      if (r.output[cls] > r.output[best]) best = cls;
    if (best == user_test.labels[static_cast<std::size_t>(i)]) ++correct;
  }
  const serve::EngineStats es = engine.stats();
  std::printf("\nserving: %lld requests in %lld batched forwards "
              "(occupancy %.1f, thread budget %d), accuracy %.1f%%\n",
              static_cast<long long>(es.requests),
              static_cast<long long>(es.batches), es.occupancy(),
              eopts.thread_budget,
              100.0 * static_cast<double>(correct) /
                  static_cast<double>(user_test.size()));

  std::printf("\ndone — the pruned model answers the user's %zu classes at "
              "%.1f%% accuracy on a fraction of the compute.\n",
              user_classes.size(), 100 * after);
  return 0;
}
