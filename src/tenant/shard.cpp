#include "tenant/shard.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "tensor/crc32.h"
#include "tensor/pod_stream.h"
#include "testing/fault_injection.h"

namespace crisp::tenant {

namespace {

constexpr std::uint64_t kMagic = 0x4352535053485244ull;  // "CRSPSHRD"
constexpr std::uint32_t kVersion = 1;
constexpr std::int64_t kHeaderBytes = 12;
// Frames above this are treated as corrupt, not allocated: a flipped bit
// in a length field must end the scan, never exhaust memory.
constexpr std::uint32_t kMaxRecordBytes = 1u << 30;

constexpr const char* kCtx = "tenant::scan_shard";

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

/// Writes all of data[0..len) to fd, honoring an armed torn-write budget:
/// when `torn_site` fires, only fault_arg(torn_site) bytes reach the file
/// before the injected crash (a throw). EINTR-safe.
void write_all(int fd, const char* data, std::size_t len,
               const char* torn_site) {
  std::size_t budget = len;
  bool torn = false;
  if (torn_site != nullptr && testing::should_fail(torn_site)) {
    const std::int64_t arg = testing::fault_arg(torn_site);
    budget = arg < 0 ? 0 : std::min(len, static_cast<std::size_t>(arg));
    torn = true;
  }
  std::size_t off = 0;
  while (off < budget) {
    const ssize_t n = ::write(fd, data + off, budget - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("tenant shard: write failed");
    }
    off += static_cast<std::size_t>(n);
  }
  if (torn) {
    ::fsync(fd);  // make the torn prefix durable, like a real crash would
    throw std::runtime_error(std::string("fault injected: ") + torn_site);
  }
}

void fsync_or_throw(int fd, const char* what) {
  if (::fsync(fd) != 0) throw_errno(what);
}

/// fsyncs the directory containing `path` so a fresh rename/creat is
/// durable, not just the file bytes.
void fsync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? std::string(".")
                                                     : path.substr(0, slash);
  const int fd = ::open(dir.empty() ? "/" : dir.c_str(),
                        O_RDONLY | O_DIRECTORY);
  if (fd < 0) throw_errno("tenant shard: cannot open directory " + dir);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) throw_errno("tenant shard: directory fsync failed for " + dir);
}

struct FdCloser {
  int fd;
  ~FdCloser() {
    if (fd >= 0) ::close(fd);
  }
};

std::string header_bytes() {
  std::ostringstream os(std::ios::binary);
  io::write_pod(os, kMagic);
  io::write_pod(os, kVersion);
  return os.str();
}

/// u32 length | u32 crc32c(body) | body, body = u64 id len | id | delta.
std::string frame_record(const std::string& tenant_id, const MaskDelta& delta) {
  std::ostringstream body(std::ios::binary);
  io::write_pod(body, static_cast<std::uint64_t>(tenant_id.size()));
  body.write(tenant_id.data(),
             static_cast<std::streamsize>(tenant_id.size()));
  delta.write(body);
  const std::string b = body.str();
  CRISP_CHECK(b.size() < kMaxRecordBytes,
              "tenant shard: record for " << tenant_id << " implausibly large");
  std::ostringstream frame(std::ios::binary);
  io::write_pod(frame, static_cast<std::uint32_t>(b.size()));
  io::write_pod(frame, io::crc32c(b.data(), b.size()));
  frame.write(b.data(), static_cast<std::streamsize>(b.size()));
  return frame.str();
}

}  // namespace

void write_shard(
    const std::string& path,
    const std::vector<std::pair<std::string, std::shared_ptr<const MaskDelta>>>&
        records) {
  std::string image = header_bytes();
  for (const auto& [id, delta] : records) {
    CRISP_CHECK(delta != nullptr, "tenant::write_shard: null delta for " << id);
    image += frame_record(id, *delta);
  }

  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw_errno("tenant::write_shard: cannot open " + tmp);
  {
    FdCloser closer{fd};
    write_all(fd, image.data(), image.size(), "shard.save.torn");
    fsync_or_throw(fd, "tenant::write_shard: fsync failed");
  }
  testing::maybe_fail("shard.save.before_rename");
  if (::rename(tmp.c_str(), path.c_str()) != 0)
    throw_errno("tenant::write_shard: rename to " + path + " failed");
  fsync_parent_dir(path);
}

void append_shard(const std::string& path, const std::string& tenant_id,
                  const MaskDelta& delta) {
  const std::string frame = frame_record(tenant_id, delta);
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) throw_errno("tenant::append_shard: cannot open " + path);
  FdCloser closer{fd};
  struct stat st{};
  if (::fstat(fd, &st) != 0)
    throw_errno("tenant::append_shard: fstat failed for " + path);
  if (st.st_size == 0) {
    const std::string header = header_bytes();
    write_all(fd, header.data(), header.size(), nullptr);
    fsync_parent_dir(path);  // the file itself may be freshly created
  }
  write_all(fd, frame.data(), frame.size(), "shard.append.torn");
  fsync_or_throw(fd, "tenant::append_shard: fsync failed");
}

ShardScanResult scan_shard(const std::string& path, bool repair) {
  std::ifstream is(path, std::ios::binary);
  CRISP_CHECK(is.is_open(), kCtx << ": cannot open " << path);
  std::ostringstream buf(std::ios::binary);
  buf << is.rdbuf();
  const std::string file = buf.str();
  const std::int64_t size = static_cast<std::int64_t>(file.size());

  ShardScanResult out;
  if (size < kHeaderBytes) {
    // A crash before the header committed: nothing was ever recorded.
    out.report.dropped_bytes = size;
    out.good_bytes = 0;
  } else {
    std::uint64_t magic;
    std::uint32_t version;
    std::memcpy(&magic, file.data(), sizeof(magic));
    std::memcpy(&version, file.data() + sizeof(magic), sizeof(version));
    CRISP_CHECK(magic == kMagic,
                kCtx << ": " << path << " is not a tenant shard (bad magic)");
    CRISP_CHECK(version == kVersion,
                kCtx << ": unsupported shard version " << version << " in "
                     << path);
    std::int64_t off = kHeaderBytes;
    out.good_bytes = off;
    while (off < size) {
      if (size - off < 8) break;  // torn frame header
      std::uint32_t len, crc;
      std::memcpy(&len, file.data() + off, sizeof(len));
      std::memcpy(&crc, file.data() + off + 4, sizeof(crc));
      if (len > kMaxRecordBytes) break;        // corrupt length field
      if (size - off - 8 < static_cast<std::int64_t>(len)) break;  // torn body
      const char* body = file.data() + off + 8;
      if (io::crc32c(body, len) != crc) {
        // A failed checksum poisons everything under this frame, including
        // the length that would locate the next one — stop, don't skip.
        out.report.crc_failures = 1;
        break;
      }
      ShardRecord rec;
      bool ok = true;
      try {
        std::istringstream body_is(std::string(body, len), std::ios::binary);
        const auto id_len = io::read_pod<std::uint64_t>(body_is, kCtx);
        CRISP_CHECK(id_len < (1u << 20), kCtx << ": implausible id length");
        rec.tenant_id.resize(static_cast<std::size_t>(id_len));
        body_is.read(rec.tenant_id.data(),
                     static_cast<std::streamsize>(id_len));
        CRISP_CHECK(body_is.good(), kCtx << ": truncated tenant id");
        rec.delta = MaskDelta::read(body_is);
        CRISP_CHECK(body_is.peek() == std::char_traits<char>::eof(),
                    kCtx << ": trailing bytes inside record body");
      } catch (const std::exception&) {
        // The checksum held, so this is writer-shaped corruption, not bit
        // rot; still nothing to trust past it.
        out.report.malformed = 1;
        ok = false;
      }
      if (!ok) break;
      out.records.push_back(std::move(rec));
      ++out.report.records;
      off += 8 + static_cast<std::int64_t>(len);
      out.good_bytes = off;
    }
    out.report.dropped_bytes = size - out.good_bytes;
  }

  // The report always describes what the scan *found*; repair only changes
  // what is left on disk afterwards.
  if (repair && out.report.dropped_bytes > 0) {
    is.close();
    if (::truncate(path.c_str(), out.good_bytes) != 0)
      throw_errno("tenant::scan_shard: repair truncate failed for " + path);
  }
  return out;
}

}  // namespace crisp::tenant
