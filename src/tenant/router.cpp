#include "tenant/router.h"

#include <stdexcept>
#include <utility>

namespace crisp::tenant {

Router::Router(std::shared_ptr<Store> store, RouterOptions options)
    : store_(std::move(store)), options_(options) {
  CRISP_CHECK(store_ != nullptr, "tenant::Router: null store");
  CRISP_CHECK(options_.max_engines >= 1,
              "tenant::Router: max_engines must be >= 1, got "
                  << options_.max_engines);
  CRISP_CHECK(options_.cold_queue_depth >= 1,
              "tenant::Router: cold_queue_depth must be >= 1, got "
                  << options_.cold_queue_depth);
  compiler_ = std::thread([this] { compiler_main(); });
  forwarder_ = std::thread([this] { forwarder_main(); });
}

Router::~Router() { shutdown(); }

std::future<serve::Response> Router::submit(const std::string& tenant_id,
                                            serve::Request request) {
  CRISP_CHECK(!request.sample.empty(), "tenant::Router::submit: empty sample");
  const int pr = static_cast<int>(request.priority);
  CRISP_CHECK(pr >= 0 && pr < serve::kPriorityCount,
              "tenant::Router::submit: invalid priority " << pr);

  // Hot path: one map lookup under the router lock, the engine submit
  // itself outside it (it may block under Overflow::kBlock; the router
  // must stay routable meanwhile). The shared_ptr copy keeps the engine
  // alive across a concurrent retirement — retiring only drops the pool's
  // reference, and an engine drains on destruction, so a request that got
  // its engine always gets its response.
  std::shared_ptr<serve::Engine> engine;
  std::shared_ptr<serve::Engine> fallback;
  bool quarantined = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopping_)
      throw std::runtime_error("tenant::Router: submit after shutdown");
    auto it = engines_.find(tenant_id);
    if (it != engines_.end()) {
      engine_lru_.splice(engine_lru_.begin(), engine_lru_, it->second.lru_it);
      ++stats_.submitted;
      ++stats_.hot;
      engine = it->second.engine;
    } else if (quarantined_.count(tenant_id) != 0) {
      // Compile already failed twice for this tenant: no point parking
      // behind another doomed attempt — serve the shared base directly.
      quarantined = true;
      fallback = fallback_;
      if (fallback != nullptr) ++stats_.submitted;
    }
  }
  if (engine) return engine->submit(std::move(request));
  if (quarantined) {
    std::promise<serve::Response> to;
    std::future<serve::Response> fut = to.get_future();
    if (fallback == nullptr) {
      // Even the base model failed to compile — refuse rather than crash.
      serve::Response r;
      r.status = serve::Response::Status::kRejected;
      to.set_value(std::move(r));
      return fut;
    }
    Bridge b;
    b.degraded = true;
    b.from = fallback->submit(std::move(request));
    b.to = std::move(to);
    {
      std::lock_guard<std::mutex> blk(bridge_mu_);
      bridges_.push_back(std::move(b));
    }
    cv_bridge_.notify_all();
    return fut;
  }

  CRISP_CHECK(store_->has_tenant(tenant_id),
              "tenant::Router::submit: unknown tenant " << tenant_id);

  // Cold miss: park behind the compile. The deadline stays relative in
  // the parked request; the compiler ages it by the wait when flushing,
  // so "1 ms from submit" means 1 ms from *submit*, not from engine birth.
  ColdRequest cr;
  cr.request = std::move(request);
  cr.submitted = Clock::now();
  std::future<serve::Response> fut = cr.promise.get_future();
  bool rejected = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopping_)
      throw std::runtime_error("tenant::Router: submit after shutdown");
    auto [pit, fresh] = pending_.try_emplace(tenant_id);
    if (static_cast<std::int64_t>(pit->second.size()) >=
        options_.cold_queue_depth) {
      ++stats_.cold_rejected;
      rejected = true;
    } else {
      ++stats_.submitted;
      ++stats_.cold_misses;
      pit->second.push_back(std::move(cr));
      // A fresh pending entry means no compile job covers this tenant yet
      // (the compiler erases the entry in the same critical section it
      // takes the requests, so entry-present == job-covered).
      if (fresh) compile_queue_.push_back(tenant_id);
    }
  }
  if (rejected) {
    serve::Response r;
    r.status = serve::Response::Status::kRejected;
    cr.promise.set_value(std::move(r));
    return fut;
  }
  cv_compile_.notify_one();
  return fut;
}

void Router::compiler_main() {
  for (;;) {
    std::unique_lock<std::mutex> lk(mu_);
    cv_compile_.wait(lk,
                     [&] { return stopping_ || !compile_queue_.empty(); });
    if (compile_queue_.empty()) return;  // stopping and drained
    const std::string id = std::move(compile_queue_.front());
    compile_queue_.pop_front();
    std::shared_ptr<serve::Engine> engine;
    auto eit = engines_.find(id);
    if (eit != engines_.end()) engine = eit->second.engine;
    lk.unlock();

    // Build the engine outside the lock — this is the slow part (model
    // clone + overlay compile via Store::acquire), and hot routing must
    // not stall behind it. Any exception out of the delta apply / overlay
    // compile (corrupt stream, allocation failure, an injected fault) is
    // contained here: one bounded-backoff retry, then quarantine + the
    // base-model fallback. The worker thread itself never dies, and no
    // parked future is ever left broken.
    std::shared_ptr<serve::Engine> retired;
    std::shared_ptr<serve::Engine> fallback;
    if (engine == nullptr) {
      try {
        engine = std::make_shared<serve::Engine>(store_->acquire(id),
                                                 options_.engine);
      } catch (...) {
        // Transient failures (allocation pressure, a delta replaced
        // mid-compile) deserve one more attempt before the tenant
        // degrades. The backoff waits on cv_compile_ so shutdown can
        // interrupt it.
        {
          std::unique_lock<std::mutex> blk(mu_);
          ++stats_.compile_retries;
          cv_compile_.wait_for(blk, options_.compile_retry_backoff,
                               [&] { return stopping_; });
        }
        try {
          engine = std::make_shared<serve::Engine>(store_->acquire(id),
                                                   options_.engine);
        } catch (...) {
          // Second failure: quarantine. Parked and future requests serve
          // from the shared base model as kDegraded.
          fallback = ensure_fallback();
          std::lock_guard<std::mutex> qlk(mu_);
          if (quarantined_.insert(id).second) ++stats_.quarantined;
        }
      }
      if (engine != nullptr) {
        lk.lock();
        if (stopping_) {
          // Shutdown won the race: nothing is pending (shutdown cancels
          // all parked work when it sets stopping_), so the engine just
          // drains empty when the local ref drops.
          lk.unlock();
          engine.reset();
          return;
        }
        ++stats_.engines_built;
        engine_lru_.push_front(id);
        engines_[id] = EngineSlot{engine, engine_lru_.begin()};
        retired = enforce_engine_cap_locked();
        lk.unlock();
      }
    }
    // The retired engine drains (Drain::kServe) on destruction, outside
    // the lock; a hot submitter holding its own reference defers that
    // drain until its submit returns.
    retired.reset();

    std::vector<ColdRequest> flush;
    lk.lock();
    auto pit = pending_.find(id);
    if (pit != pending_.end()) {
      flush = std::move(pit->second);
      pending_.erase(pit);
    }
    lk.unlock();

    const Clock::time_point now = Clock::now();
    std::int64_t expired = 0;
    std::vector<Bridge> built;
    built.reserve(flush.size());
    serve::Engine* target = engine ? engine.get() : fallback.get();
    for (ColdRequest& cr : flush) {
      if (target == nullptr) {
        // Compile failed twice and even the base model would not build:
        // complete the future with a refusal — never an exception.
        serve::Response r;
        r.status = serve::Response::Status::kRejected;
        cr.promise.set_value(std::move(r));
        continue;
      }
      if (cr.request.deadline.count() > 0) {
        const auto waited = std::chrono::duration_cast<std::chrono::microseconds>(
            now - cr.submitted);
        if (waited >= cr.request.deadline) {
          // The deadline lapsed before an engine existed — same contract
          // as the engine's own queue expiry: never served late.
          serve::Response r;
          r.status = serve::Response::Status::kExpired;
          r.stats.queue_time = waited;
          cr.promise.set_value(std::move(r));
          ++expired;
          continue;
        }
        cr.request.deadline -= waited;
      }
      Bridge b;
      b.degraded = engine == nullptr;
      b.from = target->submit(std::move(cr.request));
      b.to = std::move(cr.promise);
      built.push_back(std::move(b));
    }
    if (expired > 0) {
      std::lock_guard<std::mutex> slk(mu_);
      stats_.cold_expired += expired;
    }
    if (!built.empty()) {
      std::lock_guard<std::mutex> blk(bridge_mu_);
      for (Bridge& b : built) bridges_.push_back(std::move(b));
      cv_bridge_.notify_all();
    }
  }
}

void Router::forwarder_main() {
  for (;;) {
    std::unique_lock<std::mutex> lk(bridge_mu_);
    cv_bridge_.wait(lk, [&] { return bridge_stopping_ || !bridges_.empty(); });
    if (bridges_.empty()) return;  // stopping and drained
    Bridge b = std::move(bridges_.front());
    bridges_.pop_front();
    lk.unlock();
    try {
      serve::Response r = b.from.get();
      if (b.degraded && r.status == serve::Response::Status::kOk) {
        // Served, but from the shared base instead of the tenant's
        // personalization — the caller must be able to tell.
        r.status = serve::Response::Status::kDegraded;
        std::lock_guard<std::mutex> slk(mu_);
        ++stats_.degraded;
      }
      b.to.set_value(std::move(r));
    } catch (...) {
      b.to.set_exception(std::current_exception());
    }
  }
}

std::shared_ptr<serve::Engine> Router::ensure_fallback() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (fallback_ != nullptr) return fallback_;
    if (stopping_) return nullptr;
  }
  std::shared_ptr<serve::Engine> built;
  try {
    built = std::make_shared<serve::Engine>(store_->acquire_base(),
                                            options_.engine);
  } catch (...) {
    return nullptr;  // even the base failed; callers refuse with kRejected
  }
  std::lock_guard<std::mutex> lk(mu_);
  if (fallback_ == nullptr) fallback_ = built;
  return fallback_;
}

std::shared_ptr<serve::Engine> Router::enforce_engine_cap_locked() {
  if (static_cast<std::int64_t>(engines_.size()) <= options_.max_engines)
    return nullptr;
  const std::string victim = engine_lru_.back();
  auto it = engines_.find(victim);
  std::shared_ptr<serve::Engine> retired = std::move(it->second.engine);
  engine_lru_.erase(it->second.lru_it);
  engines_.erase(it);
  ++stats_.engines_retired;
  return retired;
}

void Router::shutdown() {
  std::lock_guard<std::mutex> serialized(shutdown_mu_);
  std::vector<ColdRequest> parked;
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
    for (auto& [id, vec] : pending_)
      for (ColdRequest& cr : vec) parked.push_back(std::move(cr));
    pending_.clear();
    stats_.cancelled += static_cast<std::int64_t>(parked.size());
    cv_compile_.notify_all();
  }
  const Clock::time_point now = Clock::now();
  for (ColdRequest& cr : parked) {
    serve::Response r;
    r.status = serve::Response::Status::kCancelled;
    r.stats.queue_time =
        std::chrono::duration_cast<std::chrono::microseconds>(now -
                                                              cr.submitted);
    cr.promise.set_value(std::move(r));
  }
  if (compiler_.joinable()) compiler_.join();

  // Retire every engine — the fallback included: drop the pool's
  // references and let the destructors drain accepted work
  // (Drain::kServe). Done before the forwarder join so every bridged
  // future completes.
  std::unordered_map<std::string, EngineSlot> engines;
  std::shared_ptr<serve::Engine> fallback;
  {
    std::lock_guard<std::mutex> lk(mu_);
    engines = std::move(engines_);
    engines_.clear();
    engine_lru_.clear();
    fallback = std::move(fallback_);
    fallback_.reset();
  }
  engines.clear();
  fallback.reset();

  {
    std::lock_guard<std::mutex> lk(bridge_mu_);
    bridge_stopping_ = true;
    cv_bridge_.notify_all();
  }
  if (forwarder_.joinable()) forwarder_.join();
}

bool Router::refresh_tenant(const std::string& tenant_id) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    CRISP_CHECK(!stopping_, "tenant::Router: refresh after shutdown");
  }
  // Compile the refreshed artifact outside the router lock (the Store's
  // cache was invalidated when the new delta registered, so this builds
  // the new personalization; an unregistered tenant throws here).
  std::shared_ptr<const serve::CompiledModel> artifact =
      store_->acquire(tenant_id);

  std::shared_ptr<serve::Engine> engine;
  {
    std::lock_guard<std::mutex> lk(mu_);
    // The artifact compiled, so whatever quarantined this tenant is fixed:
    // normal (cold-compile) service resumes with the next submit.
    quarantined_.erase(tenant_id);
    auto it = engines_.find(tenant_id);
    if (it == engines_.end()) return false;  // not resident; nothing to swap
    engine = it->second.engine;
    stats_.refreshed += 1;
  }
  engine->swap_model(std::move(artifact));
  return true;
}

RouterStats Router::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

std::int64_t Router::resident_engines() const {
  std::lock_guard<std::mutex> lk(mu_);
  return static_cast<std::int64_t>(engines_.size());
}

}  // namespace crisp::tenant
