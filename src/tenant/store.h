// Tenant store: thousands of resident personalizations, one base model.
//
// The store owns the fleet's memory story (docs/tenants.md):
//   * the shared BaseArtifact is accounted once, no matter how many
//     tenants register;
//   * each registered tenant costs its MaskDelta's serialized size —
//     tens of kilobytes, so thousands of tenants fit where a handful of
//     full PackedModel copies would;
//   * only *compiled* tenants (model clone + overlay hooks, built by
//     acquire() on a miss) cost real per-tenant memory, and those live in
//     an LRU cache under an explicit byte budget.
// resident_bytes() reports exactly those three components, and the
// accounting test (tests/test_tenant.cpp) pins total ≈ base + N·delta +
// K·compiled for N ≥ 2000 registered tenants and K cache residents.
//
// Compilation happens *outside* the store lock — registration lookups and
// cache hits never wait behind a miss — and a lost insert race just serves
// the winner's artifact. excess_base_copies() audits the masks-not-models
// invariant: every cached overlay must execute the base arena by pointer
// identity (bench/tenants.cpp gates it at exactly zero in CI).
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "tenant/overlay.h"
#include "tenant/shard.h"

namespace crisp::tenant {

/// What Store::load_shard did with a scanned shard: `scan` is the file's
/// integrity story, `loaded` the records registered (duplicates re-register
/// — last write wins, so tenant_count() can be lower), `quarantined` the
/// intact records whose delta failed validate() against this store's base
/// (wrong geometry, foreign entry — contained, never fatal).
struct ShardLoadReport {
  ShardReport scan;
  std::int64_t loaded = 0;
  std::int64_t quarantined = 0;
};

struct StoreOptions {
  /// LRU budget over compiled tenants, in bytes (model clone + bookkeeping
  /// per resident — see Store::compiled_overhead_bytes()). When an insert
  /// pushes past it, least-recently-acquired tenants are evicted; the
  /// just-compiled tenant itself is never evicted, so one oversized model
  /// still serves.
  std::int64_t compiled_budget_bytes = 256ll << 20;
};

struct StoreStats {
  std::int64_t hits = 0;       ///< acquire() served from the compiled cache
  std::int64_t misses = 0;     ///< acquire() had to compile
  std::int64_t compiles = 0;   ///< compiled artifacts actually built & cached
  std::int64_t evictions = 0;  ///< compiled tenants dropped for the budget
};

/// resident_bytes() breakdown. The accounting identity:
///   total() = 1 x base + sum(registered deltas) + sum(cached compiled)
struct ResidentBytes {
  std::int64_t base = 0;
  std::int64_t deltas = 0;
  std::int64_t compiled = 0;
  std::int64_t total() const { return base + deltas + compiled; }
};

/// Builds a fresh instance of the served architecture (weights are then
/// loaded from the store's shared unpacked template). Must be thread-safe
/// to call concurrently — acquire() compiles outside the store lock.
using ModelFactory = std::function<std::shared_ptr<nn::Sequential>()>;

class Store {
 public:
  /// `factory` must produce the architecture the base artifact was packed
  /// from; the constructor unpacks the base through it once to build the
  /// dense template every compiled tenant loads.
  Store(std::shared_ptr<const BaseArtifact> base, ModelFactory factory,
        StoreOptions options = {});

  /// Registers (or replaces) tenant `id`. The delta is validated against
  /// the base; replacing invalidates any cached compiled artifact so the
  /// next acquire() serves the new personalization.
  void register_tenant(const std::string& id, MaskDelta delta);
  /// Unregisters `id` (and drops its compiled artifact). Throws when
  /// unknown.
  void remove_tenant(const std::string& id);
  bool has_tenant(const std::string& id) const;
  std::int64_t tenant_count() const;

  /// The tenant's serving artifact: cache hit, or compile-and-insert (the
  /// compile runs outside the store lock; concurrent acquires of the same
  /// tenant may both compile, one result wins the cache). Throws for an
  /// unregistered id. The returned artifact stays valid for as long as the
  /// caller holds it, eviction notwithstanding — eviction only drops the
  /// cache's reference.
  std::shared_ptr<const serve::CompiledModel> acquire(const std::string& id);

  /// Compiles the shared base model itself — no personalization. This is
  /// the graceful-degradation artifact tenant::Router serves when a
  /// tenant's delta is quarantined. Deliberately uncached and not counted
  /// in resident_bytes(): the caller owns it, and the fleet accounting
  /// identity stays exactly base + deltas + compiled.
  std::shared_ptr<const serve::CompiledModel> acquire_base() const;

  /// Atomically persists every registered tenant (id + delta) to a
  /// CRSPSHRD shard at `path` (tenant/shard.h: temp file + fsync + atomic
  /// rename — a crash mid-save leaves the previous generation intact).
  /// Records are written in sorted id order so equal fleets produce
  /// byte-identical shards. Returns the record count. Thread-safe; the
  /// snapshot is taken under the lock, the I/O runs outside it.
  std::int64_t save_shard(const std::string& path) const;

  /// Recovers a shard into this store: every intact record is registered
  /// in file order (duplicate ids — last write wins), records that fail
  /// validation against this base are skipped and counted, and with
  /// `repair` (the default) a torn tail is truncated off the file so the
  /// log is clean for future appends. Throws only when the file is
  /// missing or not a shard — corruption is reported, never thrown.
  ShardLoadReport load_shard(const std::string& path, bool repair = true);

  std::int64_t compiled_count() const;
  ResidentBytes resident_bytes() const;
  StoreStats stats() const;
  /// Cached tenants whose overlays do NOT execute the base arena by
  /// pointer identity. Always 0 by construction today; gated at exactly
  /// zero in CI so a regression to copy-per-tenant cannot land silently.
  std::int64_t excess_base_copies() const;

  /// Bytes one compiled resident is accounted at: the dense template
  /// clone (the dominant term) + a fixed allowance for hooks, overlay
  /// objects, and engine-side bookkeeping.
  std::int64_t compiled_overhead_bytes() const {
    return template_bytes_ + kCompiledFixedBytes;
  }
  const BaseArtifact& base() const { return *base_; }
  const StoreOptions& options() const { return options_; }

 private:
  static constexpr std::int64_t kCompiledFixedBytes = 4096;

  struct Tenant {
    std::shared_ptr<const MaskDelta> delta;
    std::int64_t delta_bytes = 0;
  };
  struct Compiled {
    std::shared_ptr<const serve::CompiledModel> model;
    std::vector<std::shared_ptr<const OverlayMatrix>> overlays;
    std::shared_ptr<const MaskDelta> delta;  ///< what the model was built from
    std::int64_t bytes = 0;
    std::list<std::string>::iterator lru_it;
  };

  /// Requires mu_ held. Drops `id` from the compiled cache if present.
  void drop_compiled_locked(const std::string& id,
                            std::vector<Compiled>& reap);

  std::shared_ptr<const BaseArtifact> base_;
  ModelFactory factory_;
  StoreOptions options_;
  TensorMap template_state_;     ///< base unpacked once, shared by clones
  std::int64_t template_bytes_ = 0;

  mutable std::mutex mu_;
  std::unordered_map<std::string, Tenant> tenants_;
  std::unordered_map<std::string, Compiled> compiled_;
  std::list<std::string> lru_;  ///< front = most recently acquired
  std::int64_t delta_bytes_total_ = 0;
  std::int64_t compiled_bytes_total_ = 0;
  StoreStats stats_;
};

}  // namespace crisp::tenant
