#include "tenant/mask_delta.h"

#include <cmath>
#include <istream>
#include <ostream>
#include <utility>

#include "tensor/crc32.h"
#include "tensor/pod_stream.h"
#include "testing/fault_injection.h"

namespace crisp::tenant {

namespace {

constexpr std::uint64_t kMagic = 0x4352535044454C54ull;  // "CRSPDELT"
// v2: a CRC32C trailer over everything after the version field. v1 files
// (no trailer, same body layout) still read, without integrity cover.
constexpr std::uint32_t kVersion = 2;

constexpr const char* kCtx = "MaskDelta::read";

bool bit_set(const std::vector<std::uint8_t>& bits, std::int64_t pos) {
  return (bits[static_cast<std::size_t>(pos >> 3)] >> (pos & 7)) & 1u;
}

void set_bit(std::vector<std::uint8_t>& bits, std::int64_t pos) {
  bits[static_cast<std::size_t>(pos >> 3)] |=
      static_cast<std::uint8_t>(1u << (pos & 7));
}

/// Structural invariants every EntryDelta must satisfy regardless of which
/// base it binds to: bitmap sized to the block list, uniform per-row
/// popcounts, trailing padding bits clear, override length fits the grid.
void check_entry(const EntryDelta& d, const char* ctx) {
  CRISP_CHECK(d.grid_rows >= 1 && d.base_blocks_per_row >= 0,
              ctx << ": entry " << d.name << " has degenerate grid");
  CRISP_CHECK(d.kept_per_row >= 0 && d.kept_per_row <= d.base_blocks_per_row,
              ctx << ": entry " << d.name << " keeps " << d.kept_per_row
                  << " of " << d.base_blocks_per_row << " blocks per row");
  const std::int64_t total = d.grid_rows * d.base_blocks_per_row;
  CRISP_CHECK(static_cast<std::int64_t>(d.kept_bits.size()) == (total + 7) / 8,
              ctx << ": entry " << d.name << " bitmap holds "
                  << d.kept_bits.size() * 8 << " bits for " << total
                  << " blocks");
  for (std::int64_t pos = total;
       pos < static_cast<std::int64_t>(d.kept_bits.size()) * 8; ++pos)
    CRISP_CHECK(!bit_set(d.kept_bits, pos),
                ctx << ": entry " << d.name << " has padding bits set");
  for (std::int64_t br = 0; br < d.grid_rows; ++br) {
    std::int64_t kept = 0;
    for (std::int64_t i = 0; i < d.base_blocks_per_row; ++i)
      kept += bit_set(d.kept_bits, br * d.base_blocks_per_row + i) ? 1 : 0;
    CRISP_CHECK(kept == d.kept_per_row,
                ctx << ": entry " << d.name << " block-row " << br << " keeps "
                    << kept << " blocks, header says " << d.kept_per_row
                    << " (CRISP requires uniform surviving blocks per row)");
  }
  CRISP_CHECK(d.scale_overrides.empty() ||
                  static_cast<std::int64_t>(d.scale_overrides.size()) ==
                      d.grid_rows,
              ctx << ": entry " << d.name << " carries "
                  << d.scale_overrides.size() << " scale overrides for "
                  << d.grid_rows << " block-rows");
  for (const float s : d.scale_overrides)
    CRISP_CHECK(std::isfinite(s),
                ctx << ": entry " << d.name << " has a non-finite scale");
}

void write_string(std::ostream& os, const std::string& s) {
  io::write_pod(os, static_cast<std::uint64_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& is) {
  const auto len = io::read_pod<std::uint64_t>(is, kCtx);
  CRISP_CHECK(len < (1u << 20), kCtx << ": implausible string length");
  std::string s(static_cast<std::size_t>(len), '\0');
  is.read(s.data(), static_cast<std::streamsize>(len));
  CRISP_CHECK(is.good(), kCtx << ": truncated string");
  return s;
}

}  // namespace

MaskDelta MaskDelta::from_model(const BaseArtifact& base,
                                nn::Sequential& model) {
  const deploy::PackedModel& packed = base.packed();
  MaskDelta out;
  out.n_ = packed.n();
  out.m_ = packed.m();
  out.block_ = packed.block();

  for (nn::Parameter* p : model.prunable_parameters()) {
    const deploy::PackedEntry* e = packed.find(p->name);
    if (e == nullptr || !p->has_mask()) continue;
    const sparse::CrispMatrix& bm = e->matrix;
    CRISP_CHECK(bm.rows() == p->matrix_rows && bm.cols() == p->matrix_cols,
                "MaskDelta::from_model: " << p->name << " is "
                    << p->matrix_rows << "x" << p->matrix_cols
                    << ", base entry holds " << bm.rows() << "x" << bm.cols());
    const ConstMatrixView mask =
        as_matrix(p->mask, p->matrix_rows, p->matrix_cols);
    const sparse::BlockGrid& grid = bm.grid();
    const std::int64_t gr = grid.grid_rows(), gc = grid.grid_cols();
    const std::int64_t bpr = bm.blocks_per_row(), block = grid.block;

    EntryDelta d;
    d.name = p->name;
    d.grid_rows = gr;
    d.base_blocks_per_row = bpr;
    d.kept_bits.assign(static_cast<std::size_t>((gr * bpr + 7) / 8), 0);

    std::int64_t kept_per_row = -1;
    std::vector<char> occ(static_cast<std::size_t>(gc));
    for (std::int64_t br = 0; br < gr; ++br) {
      // Block occupancy of the tenant mask in this block-row.
      std::fill(occ.begin(), occ.end(), 0);
      for (std::int64_t bc = 0; bc < gc; ++bc) {
        for (std::int64_t r = br * block;
             occ[static_cast<std::size_t>(bc)] == 0 &&
             r < br * block + grid.row_extent(br);
             ++r)
          for (std::int64_t c = bc * block;
               c < bc * block + grid.col_extent(bc); ++c)
            if (mask(r, c) != 0.0f) {
              occ[static_cast<std::size_t>(bc)] = 1;
              break;
            }
      }
      // Occupied blocks must be a subset of the base's surviving list;
      // record each as a kept bit at its base list position.
      std::int64_t kept = 0;
      for (std::int64_t i = 0; i < bpr; ++i) {
        const std::int32_t bc = bm.block_cols()[static_cast<std::size_t>(
            br * bpr + i)];
        if (occ[static_cast<std::size_t>(bc)] != 1) continue;
        occ[static_cast<std::size_t>(bc)] = 2;
        set_bit(d.kept_bits, br * bpr + i);
        ++kept;
      }
      for (std::int64_t bc = 0; bc < gc; ++bc)
        CRISP_CHECK(occ[static_cast<std::size_t>(bc)] != 1,
                    "MaskDelta::from_model: " << p->name << " mask keeps "
                        "weight in block (" << br << ", " << bc << "), which "
                        "the base pruned — not representable as a restriction "
                        "of the base");
      if (kept_per_row < 0)
        kept_per_row = kept;
      else
        CRISP_CHECK(kept == kept_per_row,
                    "MaskDelta::from_model: " << p->name << " block-row " << br
                        << " keeps " << kept << " blocks, previous rows keep "
                        << kept_per_row
                        << " (CRISP requires uniform surviving blocks)");
    }
    d.kept_per_row = kept_per_row < 0 ? 0 : kept_per_row;
    out.entries_.push_back(std::move(d));
  }
  return out;
}

deploy::PackedModel MaskDelta::apply(const BaseArtifact& base) const {
  validate(base);
  const deploy::PackedModel& packed = base.packed();
  std::vector<deploy::PackedEntry> entries;
  entries.reserve(packed.entries().size());
  for (const deploy::PackedEntry& e : packed.entries()) {
    const EntryDelta* d = find(e.name);
    deploy::PackedEntry out;
    out.name = e.name;
    out.shape = e.shape;
    if (d == nullptr) {
      out.matrix = e.matrix;  // no delta — carried verbatim
    } else {
      out.matrix =
          e.matrix.restricted_to_blocks(d->kept_bits, d->kept_per_row);
      if (!d->scale_overrides.empty() && out.matrix.has_quantized())
        out.matrix.override_row_scales(d->scale_overrides);
    }
    entries.push_back(std::move(out));
  }
  return deploy::PackedModel::assemble(block_, n_, m_, std::move(entries),
                                       packed.dense_state());
}

void MaskDelta::validate(const BaseArtifact& base) const {
  const deploy::PackedModel& packed = base.packed();
  CRISP_CHECK(n_ == packed.n() && m_ == packed.m() && block_ == packed.block(),
              "MaskDelta::validate: delta is " << n_ << ":" << m_ << "/block "
                  << block_ << ", base is " << packed.n() << ":" << packed.m()
                  << "/block " << packed.block());
  for (const EntryDelta& d : entries_) {
    const deploy::PackedEntry* e = packed.find(d.name);
    CRISP_CHECK(e != nullptr,
                "MaskDelta::validate: base has no packed entry " << d.name);
    CRISP_CHECK(d.grid_rows == e->matrix.grid().grid_rows() &&
                    d.base_blocks_per_row == e->matrix.blocks_per_row(),
                "MaskDelta::validate: entry " << d.name << " binds a "
                    << d.grid_rows << "x" << d.base_blocks_per_row
                    << " block list, base stores "
                    << e->matrix.grid().grid_rows() << "x"
                    << e->matrix.blocks_per_row());
    check_entry(d, "MaskDelta::validate");
  }
}

void MaskDelta::write(std::ostream& os) const {
  testing::maybe_fail("maskdelta.write");
  io::write_pod(os, kMagic);
  io::write_pod(os, kVersion);
  // Everything after the version field is covered by the trailer CRC, so a
  // bit flip anywhere in the body fails loudly at read time.
  io::Crc32Ostream co(os);
  io::write_pod(co, block_);
  io::write_pod(co, n_);
  io::write_pod(co, m_);
  io::write_pod(co, static_cast<std::uint64_t>(entries_.size()));
  for (const EntryDelta& d : entries_) {
    write_string(co, d.name);
    io::write_pod(co, d.grid_rows);
    io::write_pod(co, d.base_blocks_per_row);
    io::write_pod(co, d.kept_per_row);
    io::write_array(co, d.kept_bits);
    io::write_array(co, d.scale_overrides);
  }
  io::write_pod(os, co.crc());
}

MaskDelta MaskDelta::read(std::istream& is) {
  testing::maybe_fail("maskdelta.read");
  CRISP_CHECK(io::read_pod<std::uint64_t>(is, kCtx) == kMagic,
              kCtx << ": not a tenant mask delta (bad magic)");
  const auto version = io::read_pod<std::uint32_t>(is, kCtx);
  CRISP_CHECK(version == 1 || version == kVersion,
              kCtx << ": unsupported tenant delta version " << version);
  io::Crc32Istream ci(is);
  MaskDelta out;
  out.block_ = io::read_pod<std::int64_t>(ci, kCtx);
  out.n_ = io::read_pod<std::int64_t>(ci, kCtx);
  out.m_ = io::read_pod<std::int64_t>(ci, kCtx);
  CRISP_CHECK(out.block_ >= 1 && out.m_ >= 1 && out.n_ >= 1 &&
                  out.n_ <= out.m_ && out.block_ % out.m_ == 0,
              kCtx << ": inconsistent geometry header");
  const auto count = io::read_pod<std::uint64_t>(ci, kCtx);
  CRISP_CHECK(count < (1u << 20), kCtx << ": implausible entry count");
  out.entries_.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    EntryDelta d;
    d.name = read_string(ci);
    d.grid_rows = io::read_pod<std::int64_t>(ci, kCtx);
    d.base_blocks_per_row = io::read_pod<std::int64_t>(ci, kCtx);
    d.kept_per_row = io::read_pod<std::int64_t>(ci, kCtx);
    d.kept_bits = io::read_array<std::uint8_t>(ci, kCtx);
    d.scale_overrides = io::read_array<float>(ci, kCtx);
    check_entry(d, kCtx);
    out.entries_.push_back(std::move(d));
  }
  if (version >= 2) {
    const std::uint32_t want = ci.crc();
    const auto got = io::read_pod<std::uint32_t>(is, kCtx);
    CRISP_CHECK(got == want, kCtx << ": checksum mismatch (delta corrupt)");
  }
  return out;
}

std::int64_t MaskDelta::delta_bytes() const {
  // Mirrors write(): magic + version + geometry + entry count, then each
  // entry's fields with their u64 length prefixes, then the CRC32C
  // trailer. test_tenant.cpp pins this to the actual stream size.
  std::int64_t bytes = 8 + 4 + 3 * 8 + 8;
  for (const EntryDelta& d : entries_) {
    bytes += 8 + static_cast<std::int64_t>(d.name.size());
    bytes += 3 * 8;
    bytes += 8 + static_cast<std::int64_t>(d.kept_bits.size());
    bytes += 8 + 4 * static_cast<std::int64_t>(d.scale_overrides.size());
  }
  return bytes + 4;
}

void MaskDelta::set_scale_overrides(const std::string& name,
                                    std::vector<float> scales) {
  for (EntryDelta& d : entries_) {
    if (d.name != name) continue;
    CRISP_CHECK(scales.empty() ||
                    static_cast<std::int64_t>(scales.size()) == d.grid_rows,
                "MaskDelta::set_scale_overrides: " << name << " needs "
                    << d.grid_rows << " scales, got " << scales.size());
    for (const float s : scales)
      CRISP_CHECK(std::isfinite(s),
                  "MaskDelta::set_scale_overrides: non-finite scale");
    d.scale_overrides = std::move(scales);
    return;
  }
  CRISP_CHECK(false, "MaskDelta::set_scale_overrides: no entry " << name);
}

const EntryDelta* MaskDelta::find(const std::string& name) const {
  for (const EntryDelta& d : entries_)
    if (d.name == name) return &d;
  return nullptr;
}

}  // namespace crisp::tenant
