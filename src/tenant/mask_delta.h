// Per-tenant personalization as a delta against the shared base.
//
// A CRISP personalization keeps, per block-row of each packed weight, a
// subset of the base's surviving blocks (the class-aware block pruning of
// paper Fig. 5 step 4 applied on top of the universal model's pattern);
// the N:M content *inside* a kept block is the base's verbatim. That makes
// a tenant exactly:
//   * one bit per base block ("is this block kept") — the kept_bits
//     bitmap, indexed by position in the base's stored block list;
//   * optionally one fp32 per block-row — a dequantization-scale override
//     for the int8 execution path (cheap per-tenant re-calibration without
//     touching the payload).
// Tens of kilobytes per tenant where a standalone PackedModel is
// megabytes; docs/tenants.md has the byte layout.
//
// Deltas are block-granular by design: from_model() records block-level
// survivorship of the parameter masks, so differences *inside* a kept
// block (finer element pruning than the base pattern) are not
// representable and are served as the base stores them. A mask that keeps
// anything in a block the base pruned is an error — the delta could not
// reproduce it.
//
// Two ways to execute a delta, bit-identical to each other (fp32 and
// int8 paths both — kept slots alias or copy the same encoded values and,
// for int8, the same per-block-row scales):
//   * overlay — tenant::OverlayMatrix walks the base arena in place
//     (zero copy; what tenant::Store serves);
//   * standalone — apply() materializes a self-contained PackedModel
//     (what you'd ship to an edge device).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "tenant/base_artifact.h"

namespace crisp::tenant {

/// Survivorship of one packed entry. kept_bits holds grid_rows *
/// base_blocks_per_row bits, row-major over the base's stored block list
/// (LSB-first within each byte); bit positions address list slots, not
/// block columns. Every block-row keeps exactly kept_per_row blocks — the
/// CRISP format's uniformity invariant, preserved under restriction.
struct EntryDelta {
  std::string name;
  std::int64_t grid_rows = 0;
  std::int64_t base_blocks_per_row = 0;
  std::int64_t kept_per_row = 0;
  std::vector<std::uint8_t> kept_bits;
  /// Empty, or one dequantization scale per block-row replacing the
  /// base's on the int8 path (ignored by fp32 execution).
  std::vector<float> scale_overrides;
};

class MaskDelta {
 public:
  /// Derives a delta from `model`'s parameter masks against `base`: a base
  /// block is kept iff the mask keeps anything inside it. Throws when a
  /// mask keeps weight in a block the base pruned (not representable as a
  /// restriction), or when a parameter's kept-block counts differ across
  /// block-rows (violates CRISP uniformity). Parameters without a mask or
  /// without a base entry contribute no delta entry and serve the base
  /// verbatim.
  static MaskDelta from_model(const BaseArtifact& base, nn::Sequential& model);

  /// Materializes the personalization as a self-contained PackedModel:
  /// every delta entry becomes the base matrix restricted to its kept
  /// blocks (payloads copied verbatim, scale overrides applied to the int8
  /// scales), every other base entry and all dense state carry over
  /// unchanged. Output executes bit-identically to the overlay path.
  deploy::PackedModel apply(const BaseArtifact& base) const;

  /// Checks this delta is executable against `base`: geometry matches,
  /// every entry exists with the same grid, bitmaps are well-formed with
  /// uniform per-row popcounts, override lengths fit. Throws on violation.
  void validate(const BaseArtifact& base) const;

  /// Versioned binary stream (host-endian, like the formats). v2 carries a
  /// CRC32C trailer over everything after the version field; v1 files (no
  /// trailer) still read, without integrity cover. `read` throws on bad
  /// magic, unsupported version, truncation, a checksum mismatch, or an
  /// internally inconsistent bitmap.
  void write(std::ostream& os) const;
  static MaskDelta read(std::istream& is);

  /// Exact serialized size of write()'s output — what tenant::Store
  /// accounts per registered tenant.
  std::int64_t delta_bytes() const;

  /// Installs per-block-row dequantization-scale overrides for `name`
  /// (one per block-row; pass empty to clear). The entry must exist.
  void set_scale_overrides(const std::string& name,
                           std::vector<float> scales);

  const std::vector<EntryDelta>& entries() const { return entries_; }
  /// nullptr when `name` has no delta entry (served as base).
  const EntryDelta* find(const std::string& name) const;

  std::int64_t block() const { return block_; }
  std::int64_t n() const { return n_; }
  std::int64_t m() const { return m_; }

 private:
  std::int64_t n_ = 0, m_ = 0, block_ = 0;
  std::vector<EntryDelta> entries_;
};

}  // namespace crisp::tenant
