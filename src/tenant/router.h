// Tenant router: fleet traffic onto a budgeted pool of engines.
//
// submit(tenant_id, Request) is the fleet's front door. Behind it:
//   * tenant-affine engines — each resident serve::Engine serves exactly
//     one tenant's compiled artifact, so a request never crosses models
//     and per-engine batching coalesces same-tenant traffic naturally;
//   * a hot path that never blocks on a miss: a resident tenant's request
//     goes straight to its engine (one map lookup under the router lock,
//     the engine submit itself outside it);
//   * cold-miss compile on a side thread: the first request for a
//     non-resident tenant parks in a bounded pending list, the compiler
//     thread acquires the artifact from the Store, spins up an engine,
//     retires the least-recently-used engine past the pool cap, and
//     flushes the parked requests — with their deadlines aged by the time
//     spent waiting, so serve::Engine's admission control (priorities,
//     deadline expiry/infeasibility — serve/engine.h) stays honest
//     end-to-end;
//   * a forwarder thread that bridges engine futures back to the futures
//     handed out at submit time, so callers see one uniform
//     std::future<serve::Response> whether they hit hot or cold;
//   * graceful degradation instead of crashes: a cold compile that throws
//     (corrupt delta, allocation failure — anything) is retried once with
//     bounded backoff, and if it fails again the tenant is *quarantined* —
//     its parked and future requests serve from the shared base model
//     (Store::acquire_base) and complete with Status::kDegraded, never a
//     broken future. refresh_tenant() lifts the quarantine once the delta
//     is fixed. docs/tenants.md § durability covers the contract.
// Statuses carry through unchanged: kOk/kExpired/kRejected/etc. mean the
// same thing they mean at the engine, plus the router-level cases (cold
// queue overflow → kRejected, deadline lapsed during compile → kExpired,
// shutdown with work parked → kCancelled, quarantined tenant served from
// base → kDegraded). docs/tenants.md covers tuning.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "serve/engine.h"
#include "tenant/store.h"

namespace crisp::tenant {

struct RouterOptions {
  /// Resident engine cap. Past it, the least-recently-submitted tenant's
  /// engine is retired (drains its queue, then stops). Size it with
  /// engine.thread_budget in mind: total worker threads ≈ max_engines x
  /// per-engine budget.
  std::int64_t max_engines = 4;
  /// Options every per-tenant engine is constructed with.
  serve::EngineOptions engine;
  /// Bound on requests parked behind one tenant's cold compile; beyond
  /// it, submits complete immediately with Status::kRejected.
  std::int64_t cold_queue_depth = 256;
  /// Pause before the single retry of a failed cold compile. Bounded and
  /// interruptible — shutdown never waits on it.
  std::chrono::milliseconds compile_retry_backoff{10};
};

struct RouterStats {
  std::int64_t submitted = 0;       ///< accepted into routing (hot + cold)
  std::int64_t hot = 0;             ///< served by an already-resident engine
  std::int64_t cold_misses = 0;     ///< parked behind an engine build
  std::int64_t cold_rejected = 0;   ///< cold queue overflow (kRejected)
  std::int64_t cold_expired = 0;    ///< deadline lapsed before the engine
                                    ///< existed (kExpired)
  std::int64_t cancelled = 0;       ///< parked at shutdown (kCancelled)
  std::int64_t engines_built = 0;
  std::int64_t engines_retired = 0;
  std::int64_t refreshed = 0;       ///< live engines hot-swapped by
                                    ///< refresh_tenant()
  std::int64_t compile_retries = 0; ///< failed cold compiles retried after
                                    ///< the bounded backoff
  std::int64_t quarantined = 0;     ///< tenants degraded to base-model
                                    ///< service after the retry also failed
  std::int64_t degraded = 0;        ///< responses served from the shared
                                    ///< base model (Status::kDegraded)
};

class Router {
 public:
  explicit Router(std::shared_ptr<Store> store, RouterOptions options = {});
  ~Router();  ///< shutdown()

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Routes one request to `tenant_id`'s engine, building it first when
  /// non-resident. A quarantined tenant's request goes straight to the
  /// shared base-model fallback and completes with Status::kDegraded.
  /// Throws for an unregistered tenant or after shutdown; every other
  /// outcome is a status on the returned future. Thread-safe.
  std::future<serve::Response> submit(const std::string& tenant_id,
                                      serve::Request request);

  /// Pushes a changed personalization to a live engine without a restart:
  /// re-acquires `tenant_id`'s artifact from the Store (register_tenant
  /// with a new delta already invalidated the compiled cache, so this
  /// compiles the new personalization) and hot-swaps it into the resident
  /// engine via serve::Engine::swap_model — in-flight batches finish on
  /// the old artifact, everything after serves the new one, zero failed
  /// requests. Returns false when the tenant has no resident engine (the
  /// next cold miss compiles the new delta anyway). A successful acquire
  /// also lifts the tenant's quarantine — this is the documented way back
  /// to personalized service after a delta was repaired and re-registered.
  /// Throws for an unregistered tenant or after shutdown. Thread-safe.
  bool refresh_tenant(const std::string& tenant_id);

  /// Stops accepting submissions, cancels parked cold requests
  /// (kCancelled), drains and retires every resident engine
  /// (Drain::kServe — already-accepted work completes), and joins the
  /// router threads. Idempotent.
  void shutdown();

  RouterStats stats() const;
  std::int64_t resident_engines() const;
  const RouterOptions& options() const { return options_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct EngineSlot {
    std::shared_ptr<serve::Engine> engine;
    std::list<std::string>::iterator lru_it;
  };
  /// One request parked behind a cold compile.
  struct ColdRequest {
    serve::Request request;
    std::promise<serve::Response> promise;
    Clock::time_point submitted;
  };
  /// An engine future bridged back to a cold submit's promise. `degraded`
  /// marks a base-model fallback serve: the forwarder rewrites kOk to
  /// kDegraded so the caller knows the personalization was bypassed.
  struct Bridge {
    std::future<serve::Response> from;
    std::promise<serve::Response> to;
    bool degraded = false;
  };

  void compiler_main();
  void forwarder_main();
  /// Retires the coldest engine past the cap. Requires mu_; returns the
  /// retired engine so the caller drains it outside the lock.
  std::shared_ptr<serve::Engine> enforce_engine_cap_locked();
  /// Returns the shared base-model fallback engine, building it on first
  /// use (outside the lock). nullptr when even the base fails to compile.
  std::shared_ptr<serve::Engine> ensure_fallback();

  std::shared_ptr<Store> store_;
  RouterOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_compile_;
  std::unordered_map<std::string, EngineSlot> engines_;
  std::list<std::string> engine_lru_;  ///< front = most recently submitted
  std::unordered_map<std::string, std::vector<ColdRequest>> pending_;
  std::deque<std::string> compile_queue_;
  /// Tenants whose compile failed twice: served from fallback_ until
  /// refresh_tenant() succeeds for them. Never counted in engines_.
  std::unordered_set<std::string> quarantined_;
  /// Base-model engine shared by every quarantined tenant; built lazily
  /// by the first degradation and retired at shutdown like the rest.
  std::shared_ptr<serve::Engine> fallback_;
  bool stopping_ = false;
  RouterStats stats_;

  std::mutex bridge_mu_;
  std::condition_variable cv_bridge_;
  std::deque<Bridge> bridges_;
  bool bridge_stopping_ = false;

  std::mutex shutdown_mu_;  ///< serializes shutdown() callers (joins)

  std::thread compiler_;
  std::thread forwarder_;
};

}  // namespace crisp::tenant
