#include "tenant/overlay.h"

#include <cstring>
#include <utility>

#include "kernels/parallel_for.h"
#include "kernels/prefetch.h"
#include "kernels/simd_dispatch.h"

namespace crisp::tenant {

namespace {

bool bit_set(const std::vector<std::uint8_t>& bits, std::int64_t pos) {
  return (bits[static_cast<std::size_t>(pos >> 3)] >> (pos & 7)) & 1u;
}

}  // namespace

OverlayMatrix::OverlayMatrix(std::shared_ptr<const BaseArtifact> base,
                             std::shared_ptr<const MaskDelta> delta,
                             const std::string& name)
    : base_(std::move(base)), delta_(std::move(delta)) {
  CRISP_CHECK(base_ != nullptr && delta_ != nullptr,
              "OverlayMatrix: null base or delta");
  delta_->validate(*base_);
  entry_ = base_->find(name);
  CRISP_CHECK(entry_ != nullptr,
              "OverlayMatrix: base has no packed entry " << name);
  edelta_ = delta_->find(name);
  CRISP_CHECK(edelta_ != nullptr,
              "OverlayMatrix: delta has no entry " << name
                  << " — hook the base matrix directly instead");
}

std::int64_t OverlayMatrix::rows() const { return entry_->matrix.rows(); }
std::int64_t OverlayMatrix::cols() const { return entry_->matrix.cols(); }

bool OverlayMatrix::aliases_base_payload() const {
  // The kernel owns no slot storage; everything it multiplies with lives
  // in the base entry it points at. Both legs are pointer identity — if a
  // future change makes overlays copy (or rebind) payloads, this goes
  // false and the Store/bench zero-gate catches it.
  return entry_ == base_->find(entry_->name) &&
         edelta_ == delta_->find(entry_->name);
}

void OverlayMatrix::spmm(ConstMatrixView x, MatrixView y) const {
  const sparse::CrispMatrix& bm = entry_->matrix;
  if (!bm.has_fp32() && bm.has_quantized()) {
    spmm_int8(x, y);
    return;
  }
  spmm_fp32(x, y);
}

void OverlayMatrix::spmm_fp32(ConstMatrixView x, MatrixView y) const {
  const sparse::CrispMatrix& bm = entry_->matrix;
  CRISP_CHECK(x.rows == bm.cols(), "overlay spmm: inner dimension mismatch");
  CRISP_CHECK(y.rows == bm.rows() && y.cols == x.cols,
              "overlay spmm: output shape");
  const sparse::BlockGrid& grid = bm.grid();
  const std::int64_t block = grid.block, groups = block / bm.m(),
                     n = bm.n(), p = x.cols;
  const std::int64_t bpr = bm.blocks_per_row();
  const std::vector<std::uint8_t>& kept = edelta_->kept_bits;
  const std::int32_t* bcols = bm.block_cols().data();
  const float* values = bm.fp32_values().data();
  const std::uint8_t* offsets = bm.slot_offsets().data();
  // Kept blocks in stored order: the identical axpy sequence the
  // standalone restriction runs, so outputs match it bitwise. Dropped
  // blocks cost one bit test — no payload is touched.
  const std::int64_t grain =
      kernels::rows_grain(edelta_->kept_per_row * block * groups * n * p);
  const auto axpy = kernels::simd::active().axpy;
  kernels::parallel_for(grid.grid_rows(), [&](std::int64_t br0,
                                              std::int64_t br1) {
    for (std::int64_t br = br0; br < br1; ++br) {
      std::memset(y.data + br * block * p, 0,
                  static_cast<std::size_t>(grid.row_extent(br) * p) *
                      sizeof(float));
      for (std::int64_t i = 0; i < bpr; ++i) {
        const std::int64_t blk = br * bpr + i;
        if (!bit_set(kept, blk)) continue;
        const std::int64_t bc = bcols[blk];
        kernels::prefetch_read(x.data + bc * block * p);
        for (std::int64_t r = 0; r < grid.row_extent(br); ++r) {
          float* yrow = y.data + (br * block + r) * p;
          for (std::int64_t g = 0; g < groups; ++g) {
            const std::int64_t base = ((blk * block + r) * groups + g) * n;
            const std::int64_t col0 = bc * block + g * bm.m();
            for (std::int64_t s = 0; s < n; ++s) {
              const float v = values[static_cast<std::size_t>(base + s)];
              if (v == 0.0f) continue;
              axpy(v,
                   x.data +
                       (col0 + offsets[static_cast<std::size_t>(base + s)]) *
                           p,
                   yrow, p);
            }
          }
        }
      }
    }
  }, grain);
}

void OverlayMatrix::spmm_int8(ConstMatrixView x, MatrixView y) const {
  const sparse::CrispMatrix& bm = entry_->matrix;
  CRISP_CHECK(bm.has_quantized(), "overlay spmm_int8: no int8 payload");
  CRISP_CHECK(x.rows == bm.cols(),
              "overlay spmm_int8: inner dimension mismatch");
  CRISP_CHECK(y.rows == bm.rows() && y.cols == x.cols,
              "overlay spmm_int8: output shape");
  const sparse::BlockGrid& grid = bm.grid();
  const std::int64_t block = grid.block, groups = block / bm.m(),
                     n = bm.n(), p = x.cols;
  const std::int64_t bpr = bm.blocks_per_row();
  const std::vector<std::uint8_t>& kept = edelta_->kept_bits;
  const std::int32_t* bcols = bm.block_cols().data();
  const std::int8_t* qv = bm.quantized_payload().values.data();
  const std::uint8_t* offsets = bm.slot_offsets().data();
  const std::vector<float>& overrides = edelta_->scale_overrides;
  const std::int64_t grain =
      kernels::rows_grain(edelta_->kept_per_row * block * groups * n * p);
  const auto axpy_i8 = kernels::simd::active().axpy_i8;
  kernels::parallel_for(grid.grid_rows(), [&](std::int64_t br0,
                                              std::int64_t br1) {
    for (std::int64_t br = br0; br < br1; ++br) {
      std::memset(y.data + br * block * p, 0,
                  static_cast<std::size_t>(grid.row_extent(br) * p) *
                      sizeof(float));
      // Per-block-row scale: the tenant's override when set, else the
      // base's band scale — the same value the standalone restriction
      // carries, keeping the two paths bit-identical.
      const float scale =
          overrides.empty()
              ? bm.quantized_payload().scale_for(br * bm.slots_per_block_row())
              : overrides[static_cast<std::size_t>(br)];
      for (std::int64_t i = 0; i < bpr; ++i) {
        const std::int64_t blk = br * bpr + i;
        if (!bit_set(kept, blk)) continue;
        const std::int64_t bc = bcols[blk];
        kernels::prefetch_read(x.data + bc * block * p);
        for (std::int64_t r = 0; r < grid.row_extent(br); ++r) {
          float* yrow = y.data + (br * block + r) * p;
          for (std::int64_t g = 0; g < groups; ++g) {
            const std::int64_t base = ((blk * block + r) * groups + g) * n;
            const std::int64_t col0 = bc * block + g * bm.m();
            for (std::int64_t s = 0; s < n; ++s) {
              const std::int8_t q = qv[static_cast<std::size_t>(base + s)];
              if (q == 0) continue;
              axpy_i8(q, scale,
                      x.data +
                          (col0 +
                           offsets[static_cast<std::size_t>(base + s)]) *
                              p,
                      yrow, p);
            }
          }
        }
      }
    }
  }, grain);
}

OverlayCompile compile_overlay(std::shared_ptr<nn::Sequential> model,
                               std::shared_ptr<const BaseArtifact> base,
                               std::shared_ptr<const MaskDelta> delta) {
  CRISP_CHECK(model != nullptr, "compile_overlay: null model");
  CRISP_CHECK(base != nullptr && delta != nullptr,
              "compile_overlay: null base or delta");
  delta->validate(*base);

  OverlayCompile out;
  std::vector<deploy::NamedKernel> kernels;
  kernels.reserve(base->packed().entries().size());
  for (const deploy::PackedEntry& e : base->packed().entries()) {
    if (delta->find(e.name) != nullptr) {
      auto overlay = std::make_shared<const OverlayMatrix>(base, delta, e.name);
      out.overlays.push_back(overlay);
      kernels.push_back({e.name, overlay});
    } else {
      // No delta for this entry: the base matrix serves it, aliased out of
      // the shared artifact like any install_packed_hooks() compile.
      kernels.push_back({e.name, std::shared_ptr<const kernels::SpmmKernel>(
                                     base->packed_ptr(), &e.matrix)});
    }
  }
  out.model =
      serve::CompiledModel::compile_with_kernels(std::move(model), kernels);
  return out;
}

}  // namespace crisp::tenant
