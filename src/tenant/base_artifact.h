// Shared immutable base for fleet-scale personalized serving.
//
// CRISP's premise is one universal model pruned differently per user
// (paper §III-B; the edge-personalization story of §V). Serving a fleet
// that way must NOT mean one PackedModel copy per user: the base weights —
// value slots (fp32 and/or int8), block-column indices, N:M offsets, and
// the carried dense state — are identical across tenants; only *which
// blocks survive* differs. BaseArtifact freezes one PackedModel as that
// shared arena. Tenants reference it three ways, none of which copy it:
//   * tenant::MaskDelta validates against it and stores only the per-row
//     block survivorship (a bitmap) + optional per-block-row scales;
//   * tenant::OverlayMatrix executes a delta by walking the base's slot
//     arena directly (aliased via shared_ptr, refcounted lifetime);
//   * tenant::Store accounts the base once, no matter how many thousands
//     of tenants are registered against it (docs/tenants.md).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "deploy/packed_model.h"

namespace crisp::tenant {

class BaseArtifact {
 public:
  /// Freezes `packed` as the fleet's shared base. The artifact must hold
  /// at least one packed entry (a dense-only model has nothing for deltas
  /// to mask). The PackedModel must not be mutated afterwards — every
  /// overlay in the fleet executes straight out of its arena.
  static std::shared_ptr<const BaseArtifact> create(
      std::shared_ptr<const deploy::PackedModel> packed);

  const deploy::PackedModel& packed() const { return *packed_; }
  std::shared_ptr<const deploy::PackedModel> packed_ptr() const {
    return packed_;
  }
  /// nullptr when `name` is not a packed entry.
  const deploy::PackedEntry* find(const std::string& name) const {
    return packed_->find(name);
  }

  /// Bytes this base occupies once, fleet-wide: packed payload + metadata
  /// + carried dense state (PackedStats::total_bits / 8).
  std::int64_t base_bytes() const { return base_bytes_; }

 private:
  explicit BaseArtifact(std::shared_ptr<const deploy::PackedModel> packed);

  std::shared_ptr<const deploy::PackedModel> packed_;
  std::int64_t base_bytes_ = 0;
};

}  // namespace crisp::tenant
