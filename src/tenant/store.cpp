#include "tenant/store.h"

#include <algorithm>
#include <utility>

#include "testing/fault_injection.h"

namespace crisp::tenant {

Store::Store(std::shared_ptr<const BaseArtifact> base, ModelFactory factory,
             StoreOptions options)
    : base_(std::move(base)), factory_(std::move(factory)), options_(options) {
  CRISP_CHECK(base_ != nullptr, "tenant::Store: null base artifact");
  CRISP_CHECK(factory_ != nullptr, "tenant::Store: null model factory");
  CRISP_CHECK(options_.compiled_budget_bytes >= 0,
              "tenant::Store: negative compiled budget");
  // One unpack for the whole fleet: every compiled tenant loads this dense
  // template (decoded effective base weights + carried dense state)
  // instead of decoding the artifact again per compile.
  std::shared_ptr<nn::Sequential> probe = factory_();
  CRISP_CHECK(probe != nullptr, "tenant::Store: factory returned null model");
  base_->packed().unpack_into(*probe);
  template_state_ = probe->state_dict();
  for (const auto& [name, tensor] : template_state_)
    template_bytes_ += tensor.numel() * static_cast<std::int64_t>(sizeof(float));
}

void Store::register_tenant(const std::string& id, MaskDelta delta) {
  delta.validate(*base_);
  Tenant t;
  t.delta_bytes = delta.delta_bytes();
  t.delta = std::make_shared<const MaskDelta>(std::move(delta));
  std::vector<Compiled> reap;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = tenants_.find(id);
    if (it != tenants_.end()) {
      delta_bytes_total_ -= it->second.delta_bytes;
      // Replacement invalidates the compiled artifact — the cache must
      // never serve a personalization the registry no longer holds.
      drop_compiled_locked(id, reap);
      it->second = std::move(t);
      delta_bytes_total_ += it->second.delta_bytes;
    } else {
      delta_bytes_total_ += t.delta_bytes;
      tenants_.emplace(id, std::move(t));
    }
  }
  // Evicted models (and their overlay kernels) are destroyed here, outside
  // the lock.
}

void Store::remove_tenant(const std::string& id) {
  std::vector<Compiled> reap;
  std::lock_guard<std::mutex> lk(mu_);
  auto it = tenants_.find(id);
  CRISP_CHECK(it != tenants_.end(),
              "tenant::Store::remove_tenant: unknown tenant " << id);
  delta_bytes_total_ -= it->second.delta_bytes;
  tenants_.erase(it);
  drop_compiled_locked(id, reap);
}

bool Store::has_tenant(const std::string& id) const {
  std::lock_guard<std::mutex> lk(mu_);
  return tenants_.count(id) != 0;
}

std::int64_t Store::tenant_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return static_cast<std::int64_t>(tenants_.size());
}

std::shared_ptr<const serve::CompiledModel> Store::acquire(
    const std::string& id) {
  std::shared_ptr<const MaskDelta> delta;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto ct = compiled_.find(id);
    if (ct != compiled_.end()) {
      ++stats_.hits;
      lru_.splice(lru_.begin(), lru_, ct->second.lru_it);
      return ct->second.model;
    }
    auto tt = tenants_.find(id);
    CRISP_CHECK(tt != tenants_.end(),
                "tenant::Store::acquire: unknown tenant " << id);
    ++stats_.misses;
    delta = tt->second.delta;
  }

  // The slow part — clone, template load, overlay hooks — runs unlocked,
  // so hot acquires and registrations never stall behind a miss.
  testing::maybe_fail("store.compile");
  std::shared_ptr<nn::Sequential> clone = factory_();
  CRISP_CHECK(clone != nullptr, "tenant::Store: factory returned null model");
  clone->load_state_dict(template_state_);
  OverlayCompile oc = compile_overlay(std::move(clone), base_, delta);

  std::vector<Compiled> reap;
  std::shared_ptr<const serve::CompiledModel> result;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto ct = compiled_.find(id);
    if (ct != compiled_.end()) {
      // Lost a compile race; the winner's artifact is the cache's truth.
      lru_.splice(lru_.begin(), lru_, ct->second.lru_it);
      return ct->second.model;
    }
    auto tt = tenants_.find(id);
    if (tt == tenants_.end() || tt->second.delta != delta) {
      // Removed or re-registered while compiling: serve what was asked
      // for, but do not cache a personalization the registry dropped.
      return oc.model;
    }
    ++stats_.compiles;
    Compiled c;
    c.model = oc.model;
    c.overlays = std::move(oc.overlays);
    c.delta = delta;
    c.bytes = compiled_overhead_bytes();
    lru_.push_front(id);
    c.lru_it = lru_.begin();
    compiled_bytes_total_ += c.bytes;
    result = c.model;
    compiled_.emplace(id, std::move(c));
    // Evict from the cold end until the budget holds — but never the
    // artifact just inserted, so an oversized model still serves.
    while (compiled_bytes_total_ > options_.compiled_budget_bytes &&
           compiled_.size() > 1) {
      const std::string victim = lru_.back();
      drop_compiled_locked(victim, reap);
      ++stats_.evictions;
    }
  }
  return result;
}

void Store::drop_compiled_locked(const std::string& id,
                                 std::vector<Compiled>& reap) {
  auto it = compiled_.find(id);
  if (it == compiled_.end()) return;
  compiled_bytes_total_ -= it->second.bytes;
  lru_.erase(it->second.lru_it);
  reap.push_back(std::move(it->second));
  compiled_.erase(it);
}

std::int64_t Store::compiled_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return static_cast<std::int64_t>(compiled_.size());
}

ResidentBytes Store::resident_bytes() const {
  std::lock_guard<std::mutex> lk(mu_);
  ResidentBytes r;
  r.base = base_->base_bytes();
  r.deltas = delta_bytes_total_;
  r.compiled = compiled_bytes_total_;
  return r;
}

StoreStats Store::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

std::shared_ptr<const serve::CompiledModel> Store::acquire_base() const {
  testing::maybe_fail("store.compile_base");
  std::shared_ptr<nn::Sequential> clone = factory_();
  CRISP_CHECK(clone != nullptr, "tenant::Store: factory returned null model");
  clone->load_state_dict(template_state_);
  return serve::CompiledModel::compile(std::move(clone), base_->packed_ptr());
}

std::int64_t Store::save_shard(const std::string& path) const {
  std::vector<std::pair<std::string, std::shared_ptr<const MaskDelta>>> recs;
  {
    std::lock_guard<std::mutex> lk(mu_);
    recs.reserve(tenants_.size());
    for (const auto& [id, t] : tenants_) recs.emplace_back(id, t.delta);
  }
  std::sort(recs.begin(), recs.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  write_shard(path, recs);
  return static_cast<std::int64_t>(recs.size());
}

ShardLoadReport Store::load_shard(const std::string& path, bool repair) {
  ShardScanResult scan = scan_shard(path, repair);
  ShardLoadReport rep;
  rep.scan = scan.report;
  for (ShardRecord& r : scan.records) {
    try {
      register_tenant(r.tenant_id, std::move(r.delta));
      ++rep.loaded;
    } catch (const std::exception&) {
      // An intact record for the wrong base (or a base that since moved
      // on) is contained: skipped, counted, never fatal to the fleet.
      ++rep.quarantined;
    }
  }
  return rep;
}

std::int64_t Store::excess_base_copies() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::int64_t excess = 0;
  for (const auto& [id, c] : compiled_) {
    for (const auto& overlay : c.overlays) {
      if (!overlay->aliases_base_payload()) {
        ++excess;
        break;
      }
    }
  }
  return excess;
}

}  // namespace crisp::tenant
