// Delta shard: crash-safe persistence for a tenant fleet.
//
// A shard is one append-able "CRSPSHRD" file holding many
// (tenant_id, MaskDelta) records — the durable form of tenant::Store's
// registry, so a fleet survives restart without re-deriving masks
// (docs/persistence.md has the byte layout and recovery rules).
//
// Durability model, WAL-style:
//   * write_shard() is atomic: the whole image is serialized, written to
//     `path`.tmp, fsynced, renamed over `path`, and the directory is
//     fsynced — a crash at any byte leaves the previous generation intact.
//   * append_shard() is the incremental path: one length+CRC-framed record
//     appended in place. A crash mid-append leaves a torn tail that
//     scan_shard() detects and (with repair) truncates cleanly — every
//     previously committed record survives.
//   * scan_shard() is recovery and fsck in one: it walks records forward,
//     keeps every frame whose CRC32C verifies, and stops at the first bad
//     frame. It never trusts bytes past a failed checksum — the length
//     that frames the next record lives under the same corruption — so
//     "stop and truncate" is the only boundary that provably preserves
//     exactly the committed prefix.
//
// Record framing: u32 body length | u32 crc32c(body) | body, where body is
// u64 id length | id bytes | the delta's own versioned CRSPDELT stream.
// Duplicate tenant ids are legal — the shard is an append log, and readers
// apply records in order, so the last write wins.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "tenant/mask_delta.h"

namespace crisp::tenant {

/// One intact record recovered by scan_shard().
struct ShardRecord {
  std::string tenant_id;
  MaskDelta delta;
};

/// What a scan found wrong (all zero on a clean shard). The scan stops at
/// the first bad frame, so crc_failures and malformed are 0 or 1; the
/// bytes from that frame to end-of-file are dropped_bytes.
struct ShardReport {
  std::int64_t records = 0;       ///< intact records recovered
  std::int64_t crc_failures = 0;  ///< complete frame, checksum mismatch
  std::int64_t malformed = 0;     ///< checksum fine, body failed to parse
  std::int64_t dropped_bytes = 0; ///< torn/corrupt tail discarded
  bool clean() const {
    return crc_failures == 0 && malformed == 0 && dropped_bytes == 0;
  }
};

struct ShardScanResult {
  std::vector<ShardRecord> records;
  ShardReport report;
  /// Offset one past the last intact record — what repair truncates to.
  std::int64_t good_bytes = 0;
};

/// Atomically replaces `path` with a shard holding `records` in order
/// (temp file + fsync + rename + directory fsync). Throws on I/O failure;
/// on any throw the previous file generation is untouched.
void write_shard(
    const std::string& path,
    const std::vector<std::pair<std::string, std::shared_ptr<const MaskDelta>>>&
        records);

/// Appends one framed record in place, creating the shard (header
/// included) when `path` is absent or empty. Not atomic: a crash
/// mid-append leaves a torn tail for scan_shard() to truncate.
void append_shard(const std::string& path, const std::string& tenant_id,
                  const MaskDelta& delta);

/// Scans `path` forward, recovering every intact record. Throws when the
/// file is missing or its (complete) header is not a CRSPSHRD header —
/// refusing to "repair" a file that was never a shard. A torn header
/// (file shorter than the header) reads as an empty shard with the stub
/// counted in dropped_bytes. With `repair`, the file is truncated to
/// good_bytes so subsequent appends extend a clean log.
ShardScanResult scan_shard(const std::string& path, bool repair = false);

}  // namespace crisp::tenant
