#include "tenant/base_artifact.h"

#include <utility>

namespace crisp::tenant {

BaseArtifact::BaseArtifact(std::shared_ptr<const deploy::PackedModel> packed)
    : packed_(std::move(packed)) {
  base_bytes_ = packed_->stats().total_bits() / 8;
}

std::shared_ptr<const BaseArtifact> BaseArtifact::create(
    std::shared_ptr<const deploy::PackedModel> packed) {
  CRISP_CHECK(packed != nullptr, "BaseArtifact::create: null artifact");
  CRISP_CHECK(!packed->entries().empty(),
              "BaseArtifact::create: artifact has no packed entries — "
              "nothing for tenant deltas to personalize");
  return std::shared_ptr<const BaseArtifact>(
      new BaseArtifact(std::move(packed)));
}

}  // namespace crisp::tenant
