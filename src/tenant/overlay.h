// Zero-copy tenant execution: a delta overlaid on the shared base arena.
//
// OverlayMatrix is an SpmmKernel that executes one packed entry restricted
// to a tenant's kept blocks *in place*: it walks the base CrispMatrix's
// block list, skips blocks the delta dropped, and multiplies with the
// base's own value slots and offsets — nothing is copied, the per-tenant
// state is the delta's bitmap (and optional per-block-row scales). The
// shared_ptrs to the BaseArtifact and MaskDelta ride in the kernel, so a
// compiled tenant keeps exactly what it executes from alive.
//
// Equivalence contract (locked in by tests/test_tenant.cpp): an overlay
// issues the identical per-slot multiply sequence as the standalone
// restriction MaskDelta::apply() builds — kept blocks in stored order,
// same accumulation order, same per-block-row scales on the int8 path —
// so both produce bit-identical outputs, at any thread count (the usual
// block-row single-writer argument of the CRISP kernels).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "serve/compiled_model.h"
#include "tenant/mask_delta.h"

namespace crisp::tenant {

class OverlayMatrix final : public kernels::SpmmKernel {
 public:
  /// Builds the overlay for packed entry `name`. The delta must validate
  /// against the base and carry an entry for `name` (use the base matrix
  /// directly — no overlay needed — when a parameter has no delta entry).
  OverlayMatrix(std::shared_ptr<const BaseArtifact> base,
                std::shared_ptr<const MaskDelta> delta,
                const std::string& name);

  /// Same block-row partitioning (and thread-count-independence argument)
  /// as CrispMatrix::spmm; runs the base's fp32 slots when present,
  /// otherwise the int8 payload with the delta's scale overrides (when
  /// set) replacing the base's per-block-row scales.
  void spmm(ConstMatrixView x, MatrixView y) const override;

  std::int64_t rows() const override;
  std::int64_t cols() const override;
  const char* format_name() const override { return "crisp-overlay"; }

  std::int64_t kept_per_row() const { return edelta_->kept_per_row; }
  /// True when this kernel executes the base's payload storage itself
  /// (pointer identity with the base entry) — the masks-not-models
  /// invariant. tenant::Store sums the failures as excess_base_copies(),
  /// which bench/tenants.cpp gates at exactly zero; if overlay compilation
  /// ever regresses to copying payloads, that gate trips.
  bool aliases_base_payload() const;

 private:
  void spmm_fp32(ConstMatrixView x, MatrixView y) const;
  void spmm_int8(ConstMatrixView x, MatrixView y) const;

  std::shared_ptr<const BaseArtifact> base_;
  std::shared_ptr<const MaskDelta> delta_;
  const deploy::PackedEntry* entry_ = nullptr;  ///< into base_'s artifact
  const EntryDelta* edelta_ = nullptr;          ///< into delta_
};

/// A compiled tenant: the serving artifact plus the overlay kernels it
/// executes through (kept so tenant::Store can audit aliasing).
struct OverlayCompile {
  std::shared_ptr<const serve::CompiledModel> model;
  std::vector<std::shared_ptr<const OverlayMatrix>> overlays;
};

/// Freezes `model` for serving tenant `delta` against `base`: every packed
/// entry with a delta entry is hooked through an OverlayMatrix, every
/// other packed entry through the base's CrispMatrix (aliased, not
/// copied). `model` must already hold the base's unpacked dense state
/// (tenant::Store feeds it from one shared template); layers that refuse
/// hooks (grouped convs) fall back to that dense state, exactly as
/// CompiledModel::compile does.
OverlayCompile compile_overlay(std::shared_ptr<nn::Sequential> model,
                               std::shared_ptr<const BaseArtifact> base,
                               std::shared_ptr<const MaskDelta> delta);

}  // namespace crisp::tenant
