#include "tensor/im2col.h"

namespace crisp {

void im2col(const float* image, const ConvGeometry& g, float* cols) {
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  const std::int64_t p_total = oh * ow;
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < g.in_channels; ++c) {
    const float* plane = image + c * g.in_h * g.in_w;
    for (std::int64_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::int64_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        float* out_row = cols + row * p_total;
        for (std::int64_t oy = 0; oy < oh; ++oy) {
          const std::int64_t iy = oy * g.stride - g.padding + kh;
          if (iy < 0 || iy >= g.in_h) {
            for (std::int64_t ox = 0; ox < ow; ++ox) out_row[oy * ow + ox] = 0.0f;
            continue;
          }
          const float* irow = plane + iy * g.in_w;
          for (std::int64_t ox = 0; ox < ow; ++ox) {
            const std::int64_t ix = ox * g.stride - g.padding + kw;
            out_row[oy * ow + ox] =
                (ix >= 0 && ix < g.in_w) ? irow[ix] : 0.0f;
          }
        }
      }
    }
  }
}

void col2im(const float* cols, const ConvGeometry& g, float* image) {
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  const std::int64_t p_total = oh * ow;
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < g.in_channels; ++c) {
    float* plane = image + c * g.in_h * g.in_w;
    for (std::int64_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::int64_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        const float* in_row = cols + row * p_total;
        for (std::int64_t oy = 0; oy < oh; ++oy) {
          const std::int64_t iy = oy * g.stride - g.padding + kh;
          if (iy < 0 || iy >= g.in_h) continue;
          float* irow = plane + iy * g.in_w;
          for (std::int64_t ox = 0; ox < ow; ++ox) {
            const std::int64_t ix = ox * g.stride - g.padding + kw;
            if (ix >= 0 && ix < g.in_w) irow[ix] += in_row[oy * ow + ox];
          }
        }
      }
    }
  }
}

}  // namespace crisp
