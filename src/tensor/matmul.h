// Dense GEMM entry points used by the NN substrate and as the reference for
// the sparse kernels. Shape checking lives here; execution is delegated to
// the cache-blocked, multi-threaded microkernels in kernels/gemm.h, which
// keep a fixed per-row accumulation order so results are bit-exactly
// deterministic at any thread count (the tests rely on this).
#pragma once

#include <cstdint>

#include "tensor/tensor.h"

namespace crisp {

/// C[M,N] = A[M,K] * B[K,N]; C is overwritten.
void matmul(ConstMatrixView a, ConstMatrixView b, MatrixView c);

/// C[M,N] += A[M,K] * B[K,N].
void matmul_accumulate(ConstMatrixView a, ConstMatrixView b, MatrixView c);

/// C[M,N] = A^T[K,M]^T * B[K,N]   (i.e. A stored K x M, result M x N).
void matmul_tn(ConstMatrixView a, ConstMatrixView b, MatrixView c);

/// C[M,N] = A[M,K] * B^T where B is stored N x K.
void matmul_nt(ConstMatrixView a, ConstMatrixView b, MatrixView c);

/// Convenience wrappers allocating the output.
Tensor matmul(const Tensor& a, const Tensor& b);

}  // namespace crisp
