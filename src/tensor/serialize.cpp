#include "tensor/serialize.h"

#include <cstdint>
#include <fstream>

#include "tensor/pod_stream.h"

namespace crisp {

namespace {

constexpr std::uint32_t kMagic = 0x43525350;  // "CRSP"
constexpr std::uint32_t kVersion = 1;

using io::write_pod;

template <typename T>
T read_pod(std::istream& is) {
  return io::read_pod<T>(is, "tensor file");
}

}  // namespace

void save_tensors(const TensorMap& tensors, const std::string& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  CRISP_CHECK(os.good(), "cannot open for writing: " << path);
  write_pod(os, kMagic);
  write_pod(os, kVersion);
  write_pod(os, static_cast<std::uint64_t>(tensors.size()));
  for (const auto& [name, tensor] : tensors) {
    write_pod(os, static_cast<std::uint64_t>(name.size()));
    os.write(name.data(), static_cast<std::streamsize>(name.size()));
    write_pod(os, static_cast<std::uint64_t>(tensor.dim()));
    for (std::int64_t a = 0; a < tensor.dim(); ++a)
      write_pod(os, static_cast<std::int64_t>(tensor.size(a)));
    os.write(reinterpret_cast<const char*>(tensor.data()),
             static_cast<std::streamsize>(tensor.numel() * sizeof(float)));
  }
  CRISP_CHECK(os.good(), "write failure on " << path);
}

TensorMap load_tensors(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  CRISP_CHECK(is.good(), "cannot open for reading: " << path);
  CRISP_CHECK(read_pod<std::uint32_t>(is) == kMagic,
              "bad magic in tensor file " << path);
  const auto version = read_pod<std::uint32_t>(is);
  CRISP_CHECK(version == kVersion, "unsupported tensor-file version " << version);
  const auto count = read_pod<std::uint64_t>(is);
  TensorMap out;
  for (std::uint64_t e = 0; e < count; ++e) {
    const auto name_len = read_pod<std::uint64_t>(is);
    std::string name(name_len, '\0');
    is.read(name.data(), static_cast<std::streamsize>(name_len));
    CRISP_CHECK(is.good(), "truncated name in tensor file");
    const auto rank = read_pod<std::uint64_t>(is);
    Shape shape(rank);
    for (auto& d : shape) d = read_pod<std::int64_t>(is);
    Tensor t(shape);
    is.read(reinterpret_cast<char*>(t.data()),
            static_cast<std::streamsize>(t.numel() * sizeof(float)));
    CRISP_CHECK(is.good(), "truncated payload for tensor " << name);
    out.emplace(std::move(name), std::move(t));
  }
  return out;
}

bool is_tensor_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) return false;
  std::uint32_t magic = 0;
  is.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  return is.good() && magic == kMagic;
}

}  // namespace crisp
