#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

namespace crisp {

std::int64_t shape_numel(const Shape& shape) {
  std::int64_t n = 1;
  for (std::int64_t d : shape) {
    CRISP_CHECK(d >= 0, "negative dimension in shape " << shape_to_string(shape));
    n *= d;
  }
  return n;
}

std::string shape_to_string(const Shape& shape) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i != 0) os << ", ";
    os << shape[i];
  }
  os << ']';
  return os.str();
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(shape_numel(shape_)), 0.0f) {}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  CRISP_CHECK(static_cast<std::int64_t>(data_.size()) == shape_numel(shape_),
              "data size " << data_.size() << " does not match shape "
                           << shape_to_string(shape_));
}

Tensor Tensor::zeros(Shape shape) { return Tensor(std::move(shape)); }

Tensor Tensor::ones(Shape shape) { return full(std::move(shape), 1.0f); }

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::randn(Shape shape, Rng& rng, float mean, float stddev) {
  Tensor t(std::move(shape));
  for (float& v : t.data_) v = rng.normal(mean, stddev);
  return t;
}

Tensor Tensor::rand(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (float& v : t.data_) v = rng.uniform(lo, hi);
  return t;
}

Tensor Tensor::arange(std::int64_t n) {
  Tensor t({n});
  std::iota(t.data_.begin(), t.data_.end(), 0.0f);
  return t;
}

std::int64_t Tensor::size(std::int64_t axis) const {
  if (axis < 0) axis += dim();
  CRISP_CHECK(axis >= 0 && axis < dim(),
              "axis " << axis << " out of range for shape "
                      << shape_to_string(shape_));
  return shape_[static_cast<std::size_t>(axis)];
}

Tensor Tensor::reshaped(Shape new_shape) const {
  Tensor t = *this;
  t.reshape_inplace(std::move(new_shape));
  return t;
}

void Tensor::reshape_inplace(Shape new_shape) {
  std::int64_t inferred_axis = -1;
  std::int64_t known = 1;
  for (std::size_t i = 0; i < new_shape.size(); ++i) {
    if (new_shape[i] == -1) {
      CRISP_CHECK(inferred_axis == -1, "more than one -1 in reshape target");
      inferred_axis = static_cast<std::int64_t>(i);
    } else {
      known *= new_shape[i];
    }
  }
  if (inferred_axis >= 0) {
    CRISP_CHECK(known > 0 && numel() % known == 0,
                "cannot infer axis: numel " << numel() << " vs " << known);
    new_shape[static_cast<std::size_t>(inferred_axis)] = numel() / known;
  }
  CRISP_CHECK(shape_numel(new_shape) == numel(),
              "reshape " << shape_to_string(shape_) << " -> "
                         << shape_to_string(new_shape) << " changes numel");
  shape_ = std::move(new_shape);
}

std::int64_t Tensor::flat_index(std::initializer_list<std::int64_t> idx) const {
  CRISP_CHECK(static_cast<std::int64_t>(idx.size()) == dim(),
              "index rank " << idx.size() << " vs tensor rank " << dim());
  std::int64_t flat = 0;
  std::size_t axis = 0;
  for (std::int64_t i : idx) {
    const std::int64_t extent = shape_[axis];
    CRISP_CHECK(i >= 0 && i < extent,
                "index " << i << " out of range [0," << extent << ") at axis "
                         << axis);
    flat = flat * extent + i;
    ++axis;
  }
  return flat;
}

float& Tensor::at(std::initializer_list<std::int64_t> idx) {
  return data_[static_cast<std::size_t>(flat_index(idx))];
}

float Tensor::at(std::initializer_list<std::int64_t> idx) const {
  return data_[static_cast<std::size_t>(flat_index(idx))];
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Tensor::add_(const Tensor& other) {
  CRISP_CHECK(same_shape(other), "add_: shape mismatch "
                                     << shape_to_string(shape_) << " vs "
                                     << shape_to_string(other.shape_));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Tensor::sub_(const Tensor& other) {
  CRISP_CHECK(same_shape(other), "sub_: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
}

void Tensor::mul_(const Tensor& other) {
  CRISP_CHECK(same_shape(other), "mul_: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
}

void Tensor::scale_(float s) {
  for (float& v : data_) v *= s;
}

void Tensor::axpy_(float alpha, const Tensor& x) {
  CRISP_CHECK(same_shape(x), "axpy_: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * x.data_[i];
}

void Tensor::clamp_min_(float lo) {
  for (float& v : data_) v = std::max(v, lo);
}

Tensor Tensor::add(const Tensor& other) const {
  Tensor t = *this;
  t.add_(other);
  return t;
}

Tensor Tensor::sub(const Tensor& other) const {
  Tensor t = *this;
  t.sub_(other);
  return t;
}

Tensor Tensor::mul(const Tensor& other) const {
  Tensor t = *this;
  t.mul_(other);
  return t;
}

Tensor Tensor::scaled(float s) const {
  Tensor t = *this;
  t.scale_(s);
  return t;
}

Tensor Tensor::abs() const {
  Tensor t = *this;
  for (float& v : t.data_) v = std::fabs(v);
  return t;
}

float Tensor::sum() const {
  double acc = 0.0;  // double accumulator: keeps reductions stable
  for (float v : data_) acc += v;
  return static_cast<float>(acc);
}

float Tensor::mean() const {
  CRISP_CHECK(!data_.empty(), "mean of empty tensor");
  return sum() / static_cast<float>(data_.size());
}

float Tensor::min() const {
  CRISP_CHECK(!data_.empty(), "min of empty tensor");
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::max() const {
  CRISP_CHECK(!data_.empty(), "max of empty tensor");
  return *std::max_element(data_.begin(), data_.end());
}

float Tensor::abs_max() const {
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::fabs(v));
  return m;
}

std::int64_t Tensor::argmax() const {
  CRISP_CHECK(!data_.empty(), "argmax of empty tensor");
  return static_cast<std::int64_t>(
      std::max_element(data_.begin(), data_.end()) - data_.begin());
}

double Tensor::zero_fraction() const {
  if (data_.empty()) return 0.0;
  return static_cast<double>(numel() - count_nonzero()) /
         static_cast<double>(numel());
}

std::int64_t Tensor::count_nonzero() const {
  return static_cast<std::int64_t>(
      std::count_if(data_.begin(), data_.end(),
                    [](float v) { return v != 0.0f; }));
}

MatrixView as_matrix(Tensor& t, std::int64_t rows, std::int64_t cols) {
  CRISP_CHECK(rows * cols == t.numel(),
              "matrix view " << rows << "x" << cols << " over tensor of numel "
                             << t.numel());
  return MatrixView{t.data(), rows, cols};
}

ConstMatrixView as_matrix(const Tensor& t, std::int64_t rows,
                          std::int64_t cols) {
  CRISP_CHECK(rows * cols == t.numel(),
              "matrix view " << rows << "x" << cols << " over tensor of numel "
                             << t.numel());
  return ConstMatrixView{t.data(), rows, cols};
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  CRISP_CHECK(a.same_shape(b), "max_abs_diff: shape mismatch");
  float m = 0.0f;
  for (std::int64_t i = 0; i < a.numel(); ++i)
    m = std::max(m, std::fabs(a[i] - b[i]));
  return m;
}

bool allclose(const Tensor& a, const Tensor& b, float rtol, float atol) {
  if (!a.same_shape(b)) return false;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    const float tol = atol + rtol * std::fabs(b[i]);
    if (std::fabs(a[i] - b[i]) > tol) return false;
  }
  return true;
}

}  // namespace crisp
