// Error-checking macro used across the library.
//
// CRISP_CHECK(cond, msg) throws std::runtime_error with file/line context
// when `cond` is false. We use exceptions (not abort) so library users can
// recover, and so tests can assert on failure paths.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace crisp {

[[noreturn]] inline void check_failed(const char* file, int line,
                                      const std::string& message) {
  std::ostringstream os;
  os << file << ':' << line << ": check failed: " << message;
  throw std::runtime_error(os.str());
}

}  // namespace crisp

#define CRISP_CHECK(cond, msg)                                       \
  do {                                                               \
    if (!(cond)) {                                                   \
      std::ostringstream crisp_check_os_;                            \
      crisp_check_os_ << #cond << " — " << msg; /* NOLINT */         \
      ::crisp::check_failed(__FILE__, __LINE__, crisp_check_os_.str()); \
    }                                                                \
  } while (false)
