// Shared POD binary-stream helpers for every artifact writer/reader in the
// repo (tensor files, CrispMatrix, QuantizedPayload, PackedModel).
//
// Conventions: host-endian, byte-packed, arrays prefixed with a u64
// element count — artifacts are not portable across endianness. Readers
// take a `context` string ("CrispMatrix::read") that prefixes the error
// thrown on a truncated stream, so every format reports failures the same
// way without duplicating these templates per translation unit.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <vector>

#include "tensor/check.h"

namespace crisp::io {

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is, const char* context) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  CRISP_CHECK(is.good(), context << ": truncated stream");
  return v;
}

template <typename T>
void write_array(std::ostream& os, const std::vector<T>& v) {
  write_pod(os, static_cast<std::uint64_t>(v.size()));
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
std::vector<T> read_array(std::istream& is, const char* context) {
  const auto count = read_pod<std::uint64_t>(is, context);
  // Plausibility cap: a corrupt count must throw the documented
  // runtime_error, not std::length_error/bad_alloc out of vector.
  CRISP_CHECK(count <= (std::uint64_t{1} << 30),
              context << ": implausible array length " << count);
  std::vector<T> v(static_cast<std::size_t>(count));
  is.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(v.size() * sizeof(T)));
  CRISP_CHECK(is.good(), context << ": truncated array");
  return v;
}

}  // namespace crisp::io
