// Dense row-major float tensor.
//
// The whole reproduction runs on this one concrete value type: contiguous
// float32 storage plus a shape. Views into weight matrices (for pruning and
// sparse encoding) are expressed with the non-owning MatrixView /
// ConstMatrixView types below rather than stride tricks, which keeps the
// Tensor itself trivially copyable/movable value semantics.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "tensor/check.h"
#include "tensor/rng.h"

namespace crisp {

using Shape = std::vector<std::int64_t>;

/// Number of elements described by a shape (empty shape -> 0-d scalar = 1).
std::int64_t shape_numel(const Shape& shape);

/// "[2, 3, 4]" — for error messages and debugging.
std::string shape_to_string(const Shape& shape);

class Tensor {
 public:
  Tensor() = default;

  /// Allocates zero-initialised storage of the given shape.
  explicit Tensor(Shape shape);

  /// Wraps explicit data; data.size() must equal shape_numel(shape).
  Tensor(Shape shape, std::vector<float> data);

  // -- factories ------------------------------------------------------------
  static Tensor zeros(Shape shape);
  static Tensor ones(Shape shape);
  static Tensor full(Shape shape, float value);
  /// i.i.d. N(mean, stddev^2).
  static Tensor randn(Shape shape, Rng& rng, float mean = 0.0f,
                      float stddev = 1.0f);
  /// i.i.d. U[lo, hi).
  static Tensor rand(Shape shape, Rng& rng, float lo = 0.0f, float hi = 1.0f);
  /// 0, 1, 2, ... numel-1 (useful in tests).
  static Tensor arange(std::int64_t n);

  // -- shape ----------------------------------------------------------------
  const Shape& shape() const { return shape_; }
  std::int64_t dim() const { return static_cast<std::int64_t>(shape_.size()); }
  std::int64_t size(std::int64_t axis) const;
  std::int64_t numel() const { return static_cast<std::int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  /// Reinterprets the flat buffer with a new shape (same numel). One axis may
  /// be -1 to be inferred.
  Tensor reshaped(Shape new_shape) const;
  void reshape_inplace(Shape new_shape);

  // -- element access -------------------------------------------------------
  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& vec() { return data_; }
  const std::vector<float>& vec() const { return data_; }

  float& operator[](std::int64_t i) { return data_[static_cast<std::size_t>(i)]; }
  float operator[](std::int64_t i) const { return data_[static_cast<std::size_t>(i)]; }

  float& at(std::initializer_list<std::int64_t> idx);
  float at(std::initializer_list<std::int64_t> idx) const;

  // -- mutating ops ---------------------------------------------------------
  void fill(float value);
  void zero() { fill(0.0f); }
  void add_(const Tensor& other);                 ///< this += other
  void sub_(const Tensor& other);                 ///< this -= other
  void mul_(const Tensor& other);                 ///< this *= other (Hadamard)
  void scale_(float s);                           ///< this *= s
  void axpy_(float alpha, const Tensor& x);       ///< this += alpha * x
  void clamp_min_(float lo);

  // -- non-mutating ops -----------------------------------------------------
  Tensor add(const Tensor& other) const;
  Tensor sub(const Tensor& other) const;
  Tensor mul(const Tensor& other) const;          ///< Hadamard product
  Tensor scaled(float s) const;
  Tensor abs() const;

  // -- reductions -----------------------------------------------------------
  float sum() const;
  float mean() const;
  float min() const;
  float max() const;
  float abs_max() const;
  std::int64_t argmax() const;
  /// Fraction of exactly-zero entries.
  double zero_fraction() const;
  std::int64_t count_nonzero() const;

  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

 private:
  std::int64_t flat_index(std::initializer_list<std::int64_t> idx) const;

  Shape shape_;
  std::vector<float> data_;
};

/// Non-owning mutable 2-D view over contiguous row-major memory. Used to
/// treat a conv weight (S,R,H,W) as the paper's reshaped S x K matrix
/// (K = H*W*R) without copying.
struct MatrixView {
  float* data = nullptr;
  std::int64_t rows = 0;
  std::int64_t cols = 0;

  float& operator()(std::int64_t r, std::int64_t c) {
    return data[r * cols + c];
  }
  float operator()(std::int64_t r, std::int64_t c) const {
    return data[r * cols + c];
  }
  std::int64_t numel() const { return rows * cols; }
};

struct ConstMatrixView {
  const float* data = nullptr;
  std::int64_t rows = 0;
  std::int64_t cols = 0;

  ConstMatrixView() = default;
  ConstMatrixView(const float* d, std::int64_t r, std::int64_t c)
      : data(d), rows(r), cols(c) {}
  ConstMatrixView(const MatrixView& m)  // NOLINT implicit by design
      : data(m.data), rows(m.rows), cols(m.cols) {}

  float operator()(std::int64_t r, std::int64_t c) const {
    return data[r * cols + c];
  }
  std::int64_t numel() const { return rows * cols; }
};

/// View a 2-D-interpretable tensor as a matrix of the given dimensions.
MatrixView as_matrix(Tensor& t, std::int64_t rows, std::int64_t cols);
ConstMatrixView as_matrix(const Tensor& t, std::int64_t rows,
                          std::int64_t cols);

/// Max |a-b| over all elements; shapes must match.
float max_abs_diff(const Tensor& a, const Tensor& b);

/// True when all elements differ by at most atol + rtol*|b|.
bool allclose(const Tensor& a, const Tensor& b, float rtol = 1e-5f,
              float atol = 1e-6f);

}  // namespace crisp
