#include "tensor/crc32.h"

#include <array>

namespace crisp::io {

namespace {

// Slicing-by-4 tables for the reflected Castagnoli polynomial 0x82F63B78.
// Built once at first use; ~4 KiB, fast enough for the cold persistence
// paths this repo checksums (artifact save/load, shard scan).
struct Tables {
  std::array<std::array<std::uint32_t, 256>, 4> t;
  Tables() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) ? 0x82F63B78u ^ (c >> 1) : c >> 1;
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i)
      for (std::size_t s = 1; s < 4; ++s)
        t[s][i] = t[0][t[s - 1][i] & 0xFFu] ^ (t[s - 1][i] >> 8);
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

}  // namespace

std::uint32_t crc32c(const void* data, std::size_t len, std::uint32_t seed) {
  const auto& t = tables().t;
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = ~seed;
  while (len >= 4) {
    crc ^= static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
    crc = t[3][crc & 0xFFu] ^ t[2][(crc >> 8) & 0xFFu] ^
          t[1][(crc >> 16) & 0xFFu] ^ t[0][crc >> 24];
    p += 4;
    len -= 4;
  }
  while (len-- > 0) crc = t[0][(crc ^ *p++) & 0xFFu] ^ (crc >> 8);
  return ~crc;
}

}  // namespace crisp::io
