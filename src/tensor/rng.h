// Deterministic random number generation.
//
// All stochastic behaviour in the library (weight init, data synthesis,
// batch shuffling, class sampling) flows through `Rng` so experiments are
// exactly reproducible from a single seed.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

namespace crisp {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0) : engine_(seed) {}

  /// Uniform float in [lo, hi).
  float uniform(float lo = 0.0f, float hi = 1.0f) {
    std::uniform_real_distribution<float> d(lo, hi);
    return d(engine_);
  }

  /// Standard normal scaled by `stddev` around `mean`.
  float normal(float mean = 0.0f, float stddev = 1.0f) {
    std::normal_distribution<float> d(mean, stddev);
    return d(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t randint(std::int64_t lo, std::int64_t hi) {
    std::uniform_int_distribution<std::int64_t> d(lo, hi);
    return d(engine_);
  }

  /// Bernoulli draw with probability `p` of true.
  bool bernoulli(double p) {
    std::bernoulli_distribution d(p);
    return d(engine_);
  }

  template <typename T>
  void shuffle(std::vector<T>& v) {
    std::shuffle(v.begin(), v.end(), engine_);
  }

  /// Sample `k` distinct values from [0, n) in random order.
  std::vector<std::int64_t> sample_without_replacement(std::int64_t n,
                                                       std::int64_t k) {
    std::vector<std::int64_t> all(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) all[static_cast<std::size_t>(i)] = i;
    shuffle(all);
    all.resize(static_cast<std::size_t>(std::min(n, k)));
    return all;
  }

  /// Derive an independent child generator (for per-worker determinism).
  Rng fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace crisp
