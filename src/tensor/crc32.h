// CRC32C (Castagnoli) for artifact integrity.
//
// Every binary stream in the repo (PackedModel, MaskDelta, QuantizedPayload,
// tenant shards — docs/persistence.md) frames or trails its payload with
// this checksum so a flipped bit or torn write is *detected* at read time
// instead of silently served. CRC32C is the iSCSI/ext4 polynomial — cheap
// in software, and hardware-accelerated everywhere if we ever need it.
//
// Chaining convention: crc32c(b, n2, crc32c(a, n1)) == crc32c(a+b) — the
// seed is the running checksum of everything already hashed, so streaming
// writers never buffer.
//
// The stream wrappers are unbuffered tees: Crc32Ostream forwards every
// byte to the wrapped stream's buffer while folding it into the running
// checksum (and vice versa for Crc32Istream), so existing write()/read()
// code gains integrity by swapping the stream argument — no format code
// changes. Positions stay in sync with the underlying stream, which lets a
// reader pull a trailing checksum from the *raw* stream right after the
// checksummed body.
#pragma once

#include <cstddef>
#include <cstdint>
#include <istream>
#include <ostream>
#include <streambuf>

namespace crisp::io {

/// CRC32C of `len` bytes at `data`, continuing from `seed` (0 to start).
std::uint32_t crc32c(const void* data, std::size_t len, std::uint32_t seed = 0);

namespace detail {

class Crc32OutBuf final : public std::streambuf {
 public:
  explicit Crc32OutBuf(std::streambuf* sink) : sink_(sink) {}
  std::uint32_t crc() const { return crc_; }

 protected:
  int overflow(int ch) override {
    if (traits_type::eq_int_type(ch, traits_type::eof()))
      return traits_type::not_eof(ch);
    const char c = traits_type::to_char_type(ch);
    if (traits_type::eq_int_type(sink_->sputc(c), traits_type::eof()))
      return traits_type::eof();
    crc_ = crc32c(&c, 1, crc_);
    return ch;
  }
  std::streamsize xsputn(const char* s, std::streamsize n) override {
    const std::streamsize put = sink_->sputn(s, n);
    if (put > 0) crc_ = crc32c(s, static_cast<std::size_t>(put), crc_);
    return put;
  }

 private:
  std::streambuf* sink_;
  std::uint32_t crc_ = 0;
};

class Crc32InBuf final : public std::streambuf {
 public:
  explicit Crc32InBuf(std::streambuf* src) : src_(src) {}
  std::uint32_t crc() const { return crc_; }

 protected:
  // Peek without consuming — the byte is hashed when actually extracted.
  int underflow() override { return src_->sgetc(); }
  int uflow() override {
    const int ch = src_->sbumpc();
    if (!traits_type::eq_int_type(ch, traits_type::eof())) {
      const char c = traits_type::to_char_type(ch);
      crc_ = crc32c(&c, 1, crc_);
    }
    return ch;
  }
  std::streamsize xsgetn(char* s, std::streamsize n) override {
    const std::streamsize got = src_->sgetn(s, n);
    if (got > 0) crc_ = crc32c(s, static_cast<std::size_t>(got), crc_);
    return got;
  }

 private:
  std::streambuf* src_;
  std::uint32_t crc_ = 0;
};

}  // namespace detail

/// Writes pass through to `sink` while accumulating crc() over every byte.
class Crc32Ostream : public std::ostream {
 public:
  explicit Crc32Ostream(std::ostream& sink)
      : std::ostream(nullptr), buf_(sink.rdbuf()) {
    rdbuf(&buf_);
  }
  std::uint32_t crc() const { return buf_.crc(); }

 private:
  detail::Crc32OutBuf buf_;
};

/// Reads pull from `src` while accumulating crc() over every consumed byte.
class Crc32Istream : public std::istream {
 public:
  explicit Crc32Istream(std::istream& src)
      : std::istream(nullptr), buf_(src.rdbuf()) {
    rdbuf(&buf_);
  }
  std::uint32_t crc() const { return buf_.crc(); }

 private:
  detail::Crc32InBuf buf_;
};

}  // namespace crisp::io
