// Minimal binary serialization for named tensor collections.
//
// Purpose: the model zoo caches pre-trained weights on disk so each bench
// binary does not re-train the universal model. Format: magic, version,
// entry count, then per entry {name, rank, dims..., float payload}. All
// little-endian (we target a single host; the magic guards mismatches).
#pragma once

#include <map>
#include <string>

#include "tensor/tensor.h"

namespace crisp {

using TensorMap = std::map<std::string, Tensor>;

/// Writes the collection to `path`, overwriting. Throws on I/O failure.
void save_tensors(const TensorMap& tensors, const std::string& path);

/// Reads a collection previously written by save_tensors. Throws on missing
/// file, bad magic, or truncation.
TensorMap load_tensors(const std::string& path);

/// True when `path` exists and carries the tensor-file magic.
bool is_tensor_file(const std::string& path);

}  // namespace crisp
