#include "tensor/matmul.h"

#include "kernels/gemm.h"

namespace crisp {

namespace {

// Validates the full C[M,N] = op(A) · op(B) contract. M and K come from A's
// storage, N from the output buffer, and B's stored shape is checked against
// what the variant expects — malformed operands fail loudly instead of
// reading out of bounds.
void check_gemm(ConstMatrixView a, ConstMatrixView b, const MatrixView& c,
                std::int64_t m, std::int64_t n, std::int64_t k,
                std::int64_t want_b_rows, std::int64_t want_b_cols) {
  CRISP_CHECK(a.rows * a.cols > 0 || m * k == 0, "empty A operand");
  CRISP_CHECK(b.rows == want_b_rows && b.cols == want_b_cols,
              "GEMM B operand is " << b.rows << "x" << b.cols << ", expected "
                                   << want_b_rows << "x" << want_b_cols
                                   << " for m=" << m << " n=" << n
                                   << " k=" << k);
  CRISP_CHECK(c.rows == m && c.cols == n,
              "GEMM output is " << c.rows << "x" << c.cols << ", expected " << m
                                << "x" << n);
}

}  // namespace

void matmul(ConstMatrixView a, ConstMatrixView b, MatrixView c) {
  const std::int64_t m = a.rows, k = a.cols, n = c.cols;
  check_gemm(a, b, c, m, n, k, /*want_b_rows=*/k, /*want_b_cols=*/n);
  kernels::gemm(a, b, c, /*accumulate=*/false);
}

void matmul_accumulate(ConstMatrixView a, ConstMatrixView b, MatrixView c) {
  const std::int64_t m = a.rows, k = a.cols, n = c.cols;
  check_gemm(a, b, c, m, n, k, /*want_b_rows=*/k, /*want_b_cols=*/n);
  kernels::gemm(a, b, c, /*accumulate=*/true);
}

void matmul_tn(ConstMatrixView a, ConstMatrixView b, MatrixView c) {
  // A stored K x M; logical op: C[M,N] = sum_p A[p,i] * B[p,j].
  const std::int64_t k = a.rows, m = a.cols, n = c.cols;
  check_gemm(a, b, c, m, n, k, /*want_b_rows=*/k, /*want_b_cols=*/n);
  kernels::gemm_tn(a, b, c);
}

void matmul_nt(ConstMatrixView a, ConstMatrixView b, MatrixView c) {
  // B stored N x K; logical op: C[i,j] = sum_p A[i,p] * B[j,p].
  const std::int64_t m = a.rows, k = a.cols, n = c.cols;
  check_gemm(a, b, c, m, n, k, /*want_b_rows=*/n, /*want_b_cols=*/k);
  kernels::gemm_nt(a, b, c);
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  CRISP_CHECK(a.dim() == 2 && b.dim() == 2, "matmul expects 2-D tensors");
  Tensor c({a.size(0), b.size(1)});
  matmul(as_matrix(a, a.size(0), a.size(1)), as_matrix(b, b.size(0), b.size(1)),
         as_matrix(c, c.size(0), c.size(1)));
  return c;
}

}  // namespace crisp
