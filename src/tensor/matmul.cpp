#include "tensor/matmul.h"

#include <cstring>

namespace crisp {

namespace {

void check_gemm(ConstMatrixView a, ConstMatrixView b, const MatrixView& c,
                std::int64_t m, std::int64_t n, std::int64_t k) {
  CRISP_CHECK(a.rows * a.cols > 0 || m * k == 0, "empty A operand");
  CRISP_CHECK(c.rows == m && c.cols == n,
              "GEMM output is " << c.rows << "x" << c.cols << ", expected " << m
                                << "x" << n);
  (void)b;
  (void)k;
}

}  // namespace

void matmul(ConstMatrixView a, ConstMatrixView b, MatrixView c) {
  std::memset(c.data, 0,
              static_cast<std::size_t>(c.rows * c.cols) * sizeof(float));
  matmul_accumulate(a, b, c);
}

void matmul_accumulate(ConstMatrixView a, ConstMatrixView b, MatrixView c) {
  CRISP_CHECK(a.cols == b.rows,
              "GEMM inner-dimension mismatch: " << a.cols << " vs " << b.rows);
  check_gemm(a, b, c, a.rows, b.cols, a.cols);
  const std::int64_t m = a.rows, k = a.cols, n = b.cols;
  for (std::int64_t i = 0; i < m; ++i) {
    float* crow = c.data + i * n;
    const float* arow = a.data + i * k;
    for (std::int64_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;  // free win on masked weights
      const float* brow = b.data + p * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void matmul_tn(ConstMatrixView a, ConstMatrixView b, MatrixView c) {
  // A stored K x M; logical op: C[M,N] = sum_p A[p,i] * B[p,j].
  CRISP_CHECK(a.rows == b.rows,
              "GEMM^T inner-dimension mismatch: " << a.rows << " vs " << b.rows);
  check_gemm(a, b, c, a.cols, b.cols, a.rows);
  const std::int64_t k = a.rows, m = a.cols, n = b.cols;
  std::memset(c.data, 0, static_cast<std::size_t>(m * n) * sizeof(float));
  for (std::int64_t p = 0; p < k; ++p) {
    const float* arow = a.data + p * m;
    const float* brow = b.data + p * n;
    for (std::int64_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c.data + i * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void matmul_nt(ConstMatrixView a, ConstMatrixView b, MatrixView c) {
  // B stored N x K; logical op: C[i,j] = sum_p A[i,p] * B[j,p].
  CRISP_CHECK(a.cols == b.cols,
              "GEMM-NT inner-dimension mismatch: " << a.cols << " vs "
                                                   << b.cols);
  check_gemm(a, b, c, a.rows, b.rows, a.cols);
  const std::int64_t m = a.rows, k = a.cols, n = b.rows;
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = a.data + i * k;
    float* crow = c.data + i * n;
    for (std::int64_t j = 0; j < n; ++j) {
      const float* brow = b.data + j * k;
      float acc = 0.0f;  // float + -ffast-math → vectorized reduction
      for (std::int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] = acc;
    }
  }
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  CRISP_CHECK(a.dim() == 2 && b.dim() == 2, "matmul expects 2-D tensors");
  Tensor c({a.size(0), b.size(1)});
  matmul(as_matrix(a, a.size(0), a.size(1)), as_matrix(b, b.size(0), b.size(1)),
         as_matrix(c, c.size(0), c.size(1)));
  return c;
}

}  // namespace crisp
