// im2col / col2im transforms.
//
// Convolutions in this library are lowered to GEMM exactly as the paper's
// Fig. 5 step (1) describes: the weight tensor (S,R,H,W) flattens row-major
// into the S x K matrix (K = R*H*W) and the input image unfolds into a
// K x P column matrix (P = Hout*Wout). col2im is the adjoint, needed for the
// convolution backward pass.
#pragma once

#include <cstdint>

#include "tensor/tensor.h"

namespace crisp {

struct ConvGeometry {
  std::int64_t in_channels = 0;
  std::int64_t in_h = 0;
  std::int64_t in_w = 0;
  std::int64_t kernel_h = 0;
  std::int64_t kernel_w = 0;
  std::int64_t stride = 1;
  std::int64_t padding = 0;

  std::int64_t out_h() const {
    return (in_h + 2 * padding - kernel_h) / stride + 1;
  }
  std::int64_t out_w() const {
    return (in_w + 2 * padding - kernel_w) / stride + 1;
  }
  /// Rows of the column matrix: reduction length K = C*kh*kw.
  std::int64_t col_rows() const { return in_channels * kernel_h * kernel_w; }
  /// Columns of the column matrix: output positions P.
  std::int64_t col_cols() const { return out_h() * out_w(); }
};

/// `image` is one sample, contiguous (C, H, W); writes the (K, P) matrix into
/// `cols` which must already have col_rows()*col_cols() elements.
void im2col(const float* image, const ConvGeometry& g, float* cols);

/// Adjoint of im2col: scatters (K, P) columns back into a (C, H, W) image
/// buffer, *accumulating* into it (caller zeroes it first).
void col2im(const float* cols, const ConvGeometry& g, float* image);

}  // namespace crisp
