#include "testing/fault_injection.h"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

namespace crisp::testing {

namespace {

struct Site {
  bool armed = false;
  std::int64_t nth = 0;
  std::int64_t times = 1;
  std::int64_t arg = 0;
  std::int64_t hits = 0;
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, Site> sites;
  // Fast-path gate: should_fail() takes the mutex only when something is
  // (or was) armed. Monotonic per arm/reset epoch — disarming one site
  // keeps the gate up until reset_faults(), which is fine: failpoints live
  // on cold paths.
  std::atomic<bool> any_armed{false};
};

Registry& registry() {
  static Registry r;
  return r;
}

void parse_env_once() {
  static std::once_flag flag;
  std::call_once(flag, [] {
    const char* env = std::getenv("CRISP_FAULT");
    if (env == nullptr || *env == '\0') return;
    std::string all(env);
    std::size_t begin = 0;
    while (begin <= all.size()) {
      const std::size_t end = all.find(',', begin);
      const std::string spec =
          all.substr(begin, end == std::string::npos ? end : end - begin);
      if (!spec.empty()) arm_fault_spec(spec);
      if (end == std::string::npos) break;
      begin = end + 1;
    }
  });
}

}  // namespace

void arm_fault(const std::string& site, std::int64_t nth, std::int64_t times,
               std::int64_t arg) {
  if (site.empty()) throw std::runtime_error("arm_fault: empty site name");
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  Site& s = r.sites[site];
  s.armed = true;
  s.nth = nth;
  s.times = times;
  s.arg = arg;
  s.hits = 0;
  r.any_armed.store(true, std::memory_order_relaxed);
}

void arm_fault_spec(const std::string& spec) {
  // site:nth[:times[:arg]]
  std::size_t pos = spec.find(':');
  if (pos == std::string::npos || pos == 0)
    throw std::runtime_error("arm_fault_spec: malformed spec \"" + spec +
                             "\" (want site:nth[:times[:arg]])");
  const std::string site = spec.substr(0, pos);
  std::int64_t fields[3] = {0, 1, 0};
  for (int i = 0; i < 3 && pos != std::string::npos; ++i) {
    const std::size_t next = spec.find(':', pos + 1);
    const std::string tok =
        spec.substr(pos + 1, next == std::string::npos ? next : next - pos - 1);
    try {
      fields[i] = std::stoll(tok);
    } catch (const std::exception&) {
      throw std::runtime_error("arm_fault_spec: bad number \"" + tok +
                               "\" in \"" + spec + "\"");
    }
    pos = next;
  }
  if (pos != std::string::npos)
    throw std::runtime_error("arm_fault_spec: too many fields in \"" + spec +
                             "\"");
  arm_fault(site, fields[0], fields[1], fields[2]);
}

void disarm_fault(const std::string& site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  auto it = r.sites.find(site);
  if (it != r.sites.end()) it->second.armed = false;
}

void reset_faults() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  r.sites.clear();
  r.any_armed.store(false, std::memory_order_relaxed);
}

bool should_fail(const char* site) {
  parse_env_once();
  Registry& r = registry();
  if (!r.any_armed.load(std::memory_order_relaxed)) return false;
  std::lock_guard<std::mutex> lk(r.mu);
  auto it = r.sites.find(site);
  if (it == r.sites.end() || !it->second.armed) return false;
  Site& s = it->second;
  const std::int64_t hit = s.hits++;
  if (hit < s.nth) return false;
  return s.times < 0 || hit < s.nth + s.times;
}

void maybe_fail(const char* site) {
  if (should_fail(site))
    throw std::runtime_error(std::string("fault injected: ") + site);
}

std::int64_t fault_arg(const char* site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  auto it = r.sites.find(site);
  return it == r.sites.end() ? 0 : it->second.arg;
}

std::int64_t fault_hits(const char* site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  auto it = r.sites.find(site);
  return it == r.sites.end() ? 0 : it->second.hits;
}

}  // namespace crisp::testing
