// Deterministic failpoint registry for fault-injection tests.
//
// Robustness code is only as good as the failures it has actually seen.
// This registry lets a test (or an operator, via the CRISP_FAULT
// environment variable) force a failure at an exact, named site inside
// the persistence and serving paths — a torn shard write after byte k, a
// compile that throws on its first attempt but not its retry — so the
// recovery and degradation machinery is exercised on demand instead of
// waiting for real corruption.
//
// Sites are plain string names compiled into the code under test
// (grep for should_fail / maybe_fail; docs/persistence.md lists them):
//   store.compile            tenant::Store::acquire, before the overlay
//                            compile (arg unused)
//   store.compile_base       tenant::Store::acquire_base (arg unused)
//   maskdelta.read           MaskDelta::read entry (arg unused)
//   maskdelta.write          MaskDelta::write entry (arg unused)
//   packedmodel.load         PackedModel::load entry (arg unused)
//   packedmodel.save         PackedModel::save entry (arg unused)
//   shard.save.torn          write_shard: write only `arg` bytes of the
//                            new image to the temp file, then throw (the
//                            rename never happens)
//   shard.save.before_rename write_shard: full temp written + fsynced,
//                            throw just before the atomic rename
//   shard.append.torn        append_shard: write only `arg` bytes of the
//                            record frame, then throw (torn tail)
//
// Semantics: arm_fault(site, nth, times, arg) makes the site fire on hit
// numbers [nth, nth + times) — hits are 0-based and counted from the
// arm() call; times < 0 fires forever. The environment form
// CRISP_FAULT="site:nth[:times[:arg]][,site:...]" is parsed once, at the
// first registry use. When nothing is armed, should_fail() is a single
// relaxed atomic load — the production cost of a failpoint is nil.
//
// Everything here throws/returns deterministically: no clocks, no
// randomness, so a fault schedule replays exactly.
#pragma once

#include <cstdint>
#include <string>

namespace crisp::testing {

/// Arms `site` to fire on hit numbers [nth, nth + times) (times < 0 =
/// forever). `arg` is a site-specific payload (e.g. a byte budget).
/// Re-arming a site resets its hit counter.
void arm_fault(const std::string& site, std::int64_t nth = 0,
               std::int64_t times = 1, std::int64_t arg = 0);

/// Arms one "site:nth[:times[:arg]]" spec — the CRISP_FAULT grammar, one
/// entry at a time. Throws on a malformed spec.
void arm_fault_spec(const std::string& spec);

/// Disarms `site` (keeps its hit counter readable).
void disarm_fault(const std::string& site);

/// Disarms every site and zeroes every hit counter.
void reset_faults();

/// True when `site` fires this hit. Advances the site's hit counter
/// whenever any fault is armed; free (one relaxed load) otherwise.
bool should_fail(const char* site);

/// should_fail(), throwing std::runtime_error("fault injected: <site>")
/// when the site fires.
void maybe_fail(const char* site);

/// Payload of the most recent arm of `site` (0 when never armed).
std::int64_t fault_arg(const char* site);

/// Hits observed at `site` since it was last armed (0 when never armed).
std::int64_t fault_hits(const char* site);

}  // namespace crisp::testing
