// Labelled image dataset containers and batching.
//
// A Dataset owns a contiguous (N, C, H, W) image tensor plus integer labels
// over [0, num_classes). Class-aware personalization (the paper's setting)
// works on *subsets* of the label space: `filter_classes` carves out the
// samples of the user-preferred classes while keeping the original label
// ids, because the personalized model still has the universal output head.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace crisp::data {

struct Dataset {
  Tensor images;                     ///< (N, C, H, W)
  std::vector<std::int64_t> labels;  ///< size N, values in [0, num_classes)
  std::int64_t num_classes = 0;

  std::int64_t size() const { return static_cast<std::int64_t>(labels.size()); }
  std::int64_t channels() const { return images.size(1); }
  std::int64_t height() const { return images.size(2); }
  std::int64_t width() const { return images.size(3); }

  /// Copies sample `i` into a (1, C, H, W) tensor.
  Tensor sample(std::int64_t i) const;
};

struct Batch {
  Tensor images;                     ///< (B, C, H, W)
  std::vector<std::int64_t> labels;  ///< size B

  std::int64_t size() const { return static_cast<std::int64_t>(labels.size()); }
};

/// Keep only samples whose label is in `classes` (original labels retained).
Dataset filter_classes(const Dataset& d, const std::vector<std::int64_t>& classes);

/// Keep at most `per_class` samples of every class (in dataset order).
Dataset take_per_class(const Dataset& d, std::int64_t per_class);

/// Draw `k` distinct class ids from [0, num_classes) — the user preference uc.
std::vector<std::int64_t> sample_user_classes(std::int64_t num_classes,
                                              std::int64_t k, Rng& rng);

/// Splits d into batches of `batch_size` (last may be smaller); when
/// `shuffle`, sample order is permuted with `rng` first.
std::vector<Batch> make_batches(const Dataset& d, std::int64_t batch_size,
                                Rng& rng, bool shuffle = true);

/// Gathers an explicit list of sample indices into one batch.
Batch gather(const Dataset& d, const std::vector<std::int64_t>& indices);

}  // namespace crisp::data
