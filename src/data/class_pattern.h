// Synthetic class-pattern image generator — the stand-in for CIFAR-100 /
// ImageNet (see DESIGN.md §2 for the substitution rationale).
//
// Every class owns a deterministic procedural prototype: a sum of oriented
// sinusoidal gratings plus a class-positioned colored blob, all derived from
// (dataset seed, class id). A sample is the prototype under a random cyclic
// shift, per-channel gain jitter, and additive Gaussian noise. This yields a
// distribution that (a) small CNNs learn quickly, (b) has genuine
// class-conditional structure, so restricting to a class subset really does
// need less model capacity — the property class-aware pruning exploits.
#pragma once

#include <cstdint>

#include "data/dataset.h"
#include "tensor/rng.h"

namespace crisp::data {

struct ClassPatternConfig {
  std::int64_t num_classes = 100;
  std::int64_t image_size = 16;   ///< square images, image_size x image_size
  std::int64_t channels = 3;
  std::int64_t train_per_class = 32;
  std::int64_t test_per_class = 10;
  std::int64_t gratings_per_class = 3;
  float noise_std = 0.20f;        ///< additive Gaussian noise on samples
  float gain_jitter = 0.15f;      ///< per-channel multiplicative jitter
  std::int64_t max_shift = 3;     ///< cyclic shift range in pixels
  std::uint64_t seed = 0x5eed;

  /// CIFAR-100 stand-in: 100 classes, moderate noise.
  static ClassPatternConfig cifar100_like();
  /// ImageNet stand-in: same class count, harder samples (more noise,
  /// larger shifts, more gratings) so models separate less easily.
  static ClassPatternConfig imagenet_like();
};

struct TrainTest {
  Dataset train;
  Dataset test;
};

/// Generates train+test splits. Deterministic in cfg.seed; the test split
/// uses an independent RNG stream so changing train_per_class does not
/// perturb test samples.
TrainTest make_class_pattern_dataset(const ClassPatternConfig& cfg);

/// The noiseless prototype image of `class_id` as (1, C, S, S) — exposed for
/// tests (nearest-prototype separability) and for visual inspection.
Tensor class_prototype(const ClassPatternConfig& cfg, std::int64_t class_id);

}  // namespace crisp::data
