#include "data/dataset.h"

#include <algorithm>
#include <cstring>
#include <map>

namespace crisp::data {

Tensor Dataset::sample(std::int64_t i) const {
  CRISP_CHECK(i >= 0 && i < size(), "sample index " << i << " out of range");
  const std::int64_t chw = channels() * height() * width();
  Tensor out({1, channels(), height(), width()});
  std::memcpy(out.data(), images.data() + i * chw,
              static_cast<std::size_t>(chw) * sizeof(float));
  return out;
}

Dataset filter_classes(const Dataset& d,
                       const std::vector<std::int64_t>& classes) {
  std::vector<bool> keep(static_cast<std::size_t>(d.num_classes), false);
  for (std::int64_t c : classes) {
    CRISP_CHECK(c >= 0 && c < d.num_classes, "class id " << c << " out of range");
    keep[static_cast<std::size_t>(c)] = true;
  }
  std::vector<std::int64_t> indices;
  for (std::int64_t i = 0; i < d.size(); ++i)
    if (keep[static_cast<std::size_t>(d.labels[static_cast<std::size_t>(i)])])
      indices.push_back(i);

  Batch b = gather(d, indices);
  return Dataset{std::move(b.images), std::move(b.labels), d.num_classes};
}

Dataset take_per_class(const Dataset& d, std::int64_t per_class) {
  std::map<std::int64_t, std::int64_t> seen;
  std::vector<std::int64_t> indices;
  for (std::int64_t i = 0; i < d.size(); ++i) {
    const std::int64_t label = d.labels[static_cast<std::size_t>(i)];
    if (seen[label] < per_class) {
      ++seen[label];
      indices.push_back(i);
    }
  }
  Batch b = gather(d, indices);
  return Dataset{std::move(b.images), std::move(b.labels), d.num_classes};
}

std::vector<std::int64_t> sample_user_classes(std::int64_t num_classes,
                                              std::int64_t k, Rng& rng) {
  CRISP_CHECK(k >= 1 && k <= num_classes,
              "cannot sample " << k << " classes from " << num_classes);
  auto classes = rng.sample_without_replacement(num_classes, k);
  std::sort(classes.begin(), classes.end());
  return classes;
}

std::vector<Batch> make_batches(const Dataset& d, std::int64_t batch_size,
                                Rng& rng, bool shuffle) {
  CRISP_CHECK(batch_size >= 1, "batch_size must be positive");
  std::vector<std::int64_t> order(static_cast<std::size_t>(d.size()));
  for (std::int64_t i = 0; i < d.size(); ++i)
    order[static_cast<std::size_t>(i)] = i;
  if (shuffle) rng.shuffle(order);

  std::vector<Batch> batches;
  for (std::int64_t start = 0; start < d.size(); start += batch_size) {
    const std::int64_t end = std::min(d.size(), start + batch_size);
    std::vector<std::int64_t> idx(order.begin() + start, order.begin() + end);
    batches.push_back(gather(d, idx));
  }
  return batches;
}

Batch gather(const Dataset& d, const std::vector<std::int64_t>& indices) {
  const std::int64_t n = static_cast<std::int64_t>(indices.size());
  const std::int64_t chw = d.channels() * d.height() * d.width();
  Batch b;
  b.images = Tensor({n, d.channels(), d.height(), d.width()});
  b.labels.resize(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t src = indices[static_cast<std::size_t>(i)];
    CRISP_CHECK(src >= 0 && src < d.size(), "gather index out of range");
    std::memcpy(b.images.data() + i * chw, d.images.data() + src * chw,
                static_cast<std::size_t>(chw) * sizeof(float));
    b.labels[static_cast<std::size_t>(i)] =
        d.labels[static_cast<std::size_t>(src)];
  }
  return b;
}

}  // namespace crisp::data
