#include "data/class_pattern.h"

#include <cmath>
#include <numbers>

namespace crisp::data {

namespace {

struct Grating {
  float fx = 0, fy = 0, phase = 0;
  float amp[3] = {0, 0, 0};
};

struct Blob {
  float cx = 0, cy = 0, sigma = 1;
  float amp[3] = {0, 0, 0};
};

struct Prototype {
  std::vector<Grating> gratings;
  Blob blob;
};

/// Class prototypes must be decorrelated across classes but stable across
/// calls, so each class derives its own RNG from (seed, class id).
Prototype make_prototype(const ClassPatternConfig& cfg, std::int64_t class_id) {
  Rng rng(cfg.seed * 0x9E3779B97F4A7C15ull + static_cast<std::uint64_t>(class_id) + 1);
  Prototype p;
  p.gratings.resize(static_cast<std::size_t>(cfg.gratings_per_class));
  for (auto& g : p.gratings) {
    // Integer cycle counts keep gratings periodic under cyclic shifts, so
    // shift augmentation never changes class identity. Low frequencies keep
    // the phase jitter induced by pixel shifts learnable.
    g.fx = static_cast<float>(rng.randint(0, 3));
    g.fy = static_cast<float>(rng.randint(0, 3));
    if (g.fx == 0.0f && g.fy == 0.0f) g.fx = 1.0f;
    g.phase = rng.uniform(0.0f, 2.0f * std::numbers::pi_v<float>);
    for (float& a : g.amp) a = rng.uniform(-1.0f, 1.0f);
  }
  p.blob.cx = rng.uniform(0.2f, 0.8f);
  p.blob.cy = rng.uniform(0.2f, 0.8f);
  p.blob.sigma = rng.uniform(0.10f, 0.25f);
  for (float& a : p.blob.amp) a = rng.uniform(-1.0f, 1.0f);
  return p;
}

/// Renders a prototype with cyclic shift (dx, dy) and per-channel gain.
void render(const ClassPatternConfig& cfg, const Prototype& p, std::int64_t dx,
            std::int64_t dy, const float* gain, float* out) {
  const std::int64_t s = cfg.image_size;
  const float inv = 1.0f / static_cast<float>(s);
  constexpr float two_pi = 2.0f * std::numbers::pi_v<float>;
  for (std::int64_t c = 0; c < cfg.channels; ++c) {
    float* plane = out + c * s * s;
    for (std::int64_t y = 0; y < s; ++y) {
      for (std::int64_t x = 0; x < s; ++x) {
        // Cyclic shift of the sampling point.
        const float u = static_cast<float>((x + dx % s + s) % s) * inv;
        const float v = static_cast<float>((y + dy % s + s) % s) * inv;
        float val = 0.0f;
        for (const auto& g : p.gratings)
          val += g.amp[c] * std::sin(two_pi * (g.fx * u + g.fy * v) + g.phase);
        const float du = u - p.blob.cx;
        const float dv = v - p.blob.cy;
        val += p.blob.amp[c] *
               std::exp(-(du * du + dv * dv) / (2.0f * p.blob.sigma * p.blob.sigma));
        plane[y * s + x] = gain[c] * val;
      }
    }
  }
}

Dataset make_split(const ClassPatternConfig& cfg,
                   const std::vector<Prototype>& prototypes,
                   std::int64_t per_class, Rng rng) {
  const std::int64_t n = cfg.num_classes * per_class;
  const std::int64_t s = cfg.image_size;
  const std::int64_t chw = cfg.channels * s * s;
  Dataset d;
  d.images = Tensor({n, cfg.channels, s, s});
  d.labels.resize(static_cast<std::size_t>(n));
  d.num_classes = cfg.num_classes;

  std::int64_t i = 0;
  for (std::int64_t c = 0; c < cfg.num_classes; ++c) {
    for (std::int64_t k = 0; k < per_class; ++k, ++i) {
      const std::int64_t dx = rng.randint(-cfg.max_shift, cfg.max_shift);
      const std::int64_t dy = rng.randint(-cfg.max_shift, cfg.max_shift);
      float gain[3];
      for (std::int64_t ch = 0; ch < 3; ++ch)
        gain[ch] = 1.0f + rng.normal(0.0f, cfg.gain_jitter);
      float* out = d.images.data() + i * chw;
      render(cfg, prototypes[static_cast<std::size_t>(c)], dx, dy, gain, out);
      for (std::int64_t e = 0; e < chw; ++e)
        out[e] += rng.normal(0.0f, cfg.noise_std);
      d.labels[static_cast<std::size_t>(i)] = c;
    }
  }
  return d;
}

}  // namespace

ClassPatternConfig ClassPatternConfig::cifar100_like() {
  ClassPatternConfig cfg;
  cfg.num_classes = 100;
  // Calibrated so a width-scaled ResNet-50 lands in the high 80s after the
  // bench pretrain budget — mirroring CIFAR-100, where capacity genuinely
  // limits accuracy — rather than saturating near 100 %.
  cfg.noise_std = 0.35f;
  cfg.max_shift = 3;
  cfg.gratings_per_class = 3;
  cfg.gain_jitter = 0.20f;
  cfg.seed = 0xC1FA;
  return cfg;
}

ClassPatternConfig ClassPatternConfig::imagenet_like() {
  ClassPatternConfig cfg;
  cfg.num_classes = 100;
  // Harder still (the ImageNet regime): strong noise, large cyclic shifts
  // (position invariance demands capacity) and busier prototypes —
  // calibrated so a pruned-then-fine-tuned user model can still recover
  // (noise 0.55/shift 6 pushed the whole κ sweep to chance level).
  cfg.noise_std = 0.45f;
  cfg.max_shift = 4;
  cfg.gratings_per_class = 5;
  cfg.gain_jitter = 0.30f;
  cfg.seed = 0x1A9E;
  return cfg;
}

TrainTest make_class_pattern_dataset(const ClassPatternConfig& cfg) {
  CRISP_CHECK(cfg.num_classes >= 1, "need at least one class");
  CRISP_CHECK(cfg.channels == 3, "generator renders 3-channel images");
  std::vector<Prototype> prototypes;
  prototypes.reserve(static_cast<std::size_t>(cfg.num_classes));
  for (std::int64_t c = 0; c < cfg.num_classes; ++c)
    prototypes.push_back(make_prototype(cfg, c));

  Rng base(cfg.seed);
  Rng train_rng = base.fork();
  Rng test_rng = base.fork();
  TrainTest tt;
  tt.train = make_split(cfg, prototypes, cfg.train_per_class, train_rng);
  tt.test = make_split(cfg, prototypes, cfg.test_per_class, test_rng);
  return tt;
}

Tensor class_prototype(const ClassPatternConfig& cfg, std::int64_t class_id) {
  CRISP_CHECK(class_id >= 0 && class_id < cfg.num_classes,
              "class id out of range");
  const Prototype p = make_prototype(cfg, class_id);
  Tensor out({1, cfg.channels, cfg.image_size, cfg.image_size});
  const float gain[3] = {1.0f, 1.0f, 1.0f};
  render(cfg, p, 0, 0, gain, out.data());
  return out;
}

}  // namespace crisp::data
