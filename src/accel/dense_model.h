// Dense baseline: the same edge fabric running the unpruned model.
#pragma once

#include "accel/model.h"

namespace crisp::accel {

class DenseModel final : public AcceleratorModel {
 public:
  using AcceleratorModel::AcceleratorModel;

  SimResult simulate(const GemmWorkload& workload,
                     const SparsityProfile& profile) const override;
  std::string name() const override { return "Dense"; }
};

}  // namespace crisp::accel
