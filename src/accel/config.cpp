#include "accel/config.h"

namespace crisp::accel {

AcceleratorConfig AcceleratorConfig::edge_default() {
  return AcceleratorConfig{};  // defaults mirror §III-E
}

}  // namespace crisp::accel
