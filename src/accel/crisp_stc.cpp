#include "accel/crisp_stc.h"

#include <algorithm>
#include <cmath>

#include "sparse/metadata.h"

namespace crisp::accel {

SimResult CrispStc::simulate(const GemmWorkload& w,
                             const SparsityProfile& profile) const {
  const double e = static_cast<double>(config_.bytes_per_element);
  const double macs = static_cast<double>(w.macs());
  const double nm_density =
      static_cast<double>(profile.n) / static_cast<double>(profile.m);

  // Surviving columns quantize to whole blocks: a layer whose reduction is
  // narrower than a few blocks cannot be block-pruned to an arbitrary
  // fraction (K = 64 at B = 64 is a single block — nothing to remove).
  const std::int64_t b_cols = std::max<std::int64_t>(
      1, (w.k + profile.block - 1) / profile.block);
  const std::int64_t kept_blocks = std::min(
      b_cols,
      std::max<std::int64_t>(
          1, static_cast<std::int64_t>(std::llround(
                 profile.kept_cols_fraction * static_cast<double>(b_cols)))));
  const std::int64_t k_prime =
      std::min(w.k, kept_blocks * profile.block);
  const double kc = static_cast<double>(k_prime) / static_cast<double>(w.k);

  SimResult r;
  const double useful = macs * kc * nm_density;
  r.executed_macs = useful;
  r.utilization = 1.0;  // uniform rows: no imbalance, no padded slots
  r.compute_cycles = useful / static_cast<double>(config_.total_macs());

  // Activation-selection throughput (Fig. 6): every useful MAC requires its
  // MUX network to scan M/N candidate operands, at
  // config.mux_selects_per_mac_cycle scans per cycle. Ratios tighter than
  // the selector can feed become selector-bound — which is what keeps the
  // 1:4 fabric from realising its full 4x MAC reduction (paper Fig. 8:
  // 14x vs 12x, not 2x apart).
  const double selector_cycles =
      useful *
      (static_cast<double>(profile.m) / static_cast<double>(profile.n) /
       config_.mux_selects_per_mac_cycle) /
      static_cast<double>(config_.total_macs());
  if (selector_cycles > r.compute_cycles) {
    r.utilization = r.compute_cycles / selector_cycles;
    r.compute_cycles = selector_cycles;
  }

  // Per-block dispatch: descriptor fetch + index decode for every surviving
  // weight block, re-issued per 64-wide output-position tile.
  const double b = static_cast<double>(profile.block);
  const double num_blocks = std::ceil(static_cast<double>(w.s) / b) *
                            std::ceil(static_cast<double>(k_prime) / b);
  const double p_tiles = std::ceil(static_cast<double>(w.p) / 64.0);
  const double dispatch_cycles =
      num_blocks * config_.cycles_per_block_dispatch * p_tiles;

  // Weights: N:M-compressed values inside surviving blocks + the paper's
  // two metadata structures (§III-A formulas).
  const double value_bytes = static_cast<double>(w.s) *
                             static_cast<double>(k_prime) * nm_density * e;
  const double metadata_bytes =
      (static_cast<double>(sparse::paper_block_metadata_bits(
           w.s, std::max<std::int64_t>(k_prime, profile.block),
           profile.block)) +
       static_cast<double>(sparse::paper_nm_metadata_bits(
           w.s, std::max<std::int64_t>(k_prime, 1), profile.n, profile.m))) /
      8.0;
  // Block skipping shrinks the live activation set to the K' rows.
  const double act_spill = activation_spill_bytes(w, kc);
  r.dram_bytes = value_bytes + metadata_bytes + act_spill;
  r.dram_cycles = r.dram_bytes / config_.dram_bw_bytes_per_cycle;

  const double act_reuse = static_cast<double>(
      std::min<std::int64_t>(w.s, config_.macs_per_core));
  // The Fig. 6 activation-selection unit streams all M candidate rows of
  // every group into the MUXes and keeps N — operand fetch is M/N x the
  // useful traffic. This is what caps very tight ratios (1:4) on
  // bandwidth-starved layers.
  const double select_ratio =
      static_cast<double>(profile.m) / static_cast<double>(profile.n);
  r.smem_bytes = useful * select_ratio * e / act_reuse + metadata_bytes +
                 static_cast<double>(w.s * w.p) * e;
  r.smem_cycles = r.smem_bytes / config_.smem_bw_bytes_per_cycle;

  r.overhead_cycles = dispatch_cycles;
  r.cycles = std::max(
      {r.compute_cycles + dispatch_cycles, r.dram_cycles, r.smem_cycles});
  r.energy_pj = useful * energy_.mac_pj + rf_energy_pj(useful) +
                useful * energy_.mux_pj_per_select +
                smem_energy_pj(r.smem_bytes) +
                r.dram_bytes * energy_.dram_pj_per_byte + leakage_pj(r.cycles);
  return r;
}

}  // namespace crisp::accel
