#include "accel/nvidia_stc.h"

#include <algorithm>

namespace crisp::accel {

SimResult NvidiaStc::simulate(const GemmWorkload& w,
                              const SparsityProfile& profile) const {
  const double e = static_cast<double>(config_.bytes_per_element);
  const double macs = static_cast<double>(w.macs());
  const double nm_density =
      static_cast<double>(profile.n) / static_cast<double>(profile.m);

  // The 2:4 pipeline issues half the dense slots whenever the pattern is
  // representable inside 2:4 (n/m <= 1/2); otherwise it runs dense.
  const bool sparse_path = nm_density <= 0.5;
  const double issued = sparse_path ? macs * 0.5 : macs;
  // Of the issued slots, only the true non-zeros do useful work — 1:4 wastes
  // half of them.
  const double useful = macs * std::min(nm_density, 1.0);

  SimResult r;
  r.executed_macs = issued;
  r.utilization = sparse_path ? useful / issued : 1.0;
  r.compute_cycles = issued / static_cast<double>(config_.total_macs());

  // Weights: compressed values at the issued density + 2-bit offsets per
  // kept value. No block skipping: the full activation set stays live.
  const double kept_fraction = sparse_path ? 0.5 : 1.0;
  const double weight_dram =
      static_cast<double>(w.s * w.k) * e * kept_fraction +
      (sparse_path ? static_cast<double>(w.s * w.k) * 0.5 * 2.0 / 8.0 : 0.0);
  const double act_spill = activation_spill_bytes(w, /*input_fraction=*/1.0);
  r.dram_bytes = weight_dram + act_spill;
  r.dram_cycles = r.dram_bytes / config_.dram_bw_bytes_per_cycle;

  const double act_reuse = static_cast<double>(
      std::min<std::int64_t>(w.s, config_.macs_per_core));
  r.smem_bytes = issued * e / act_reuse + static_cast<double>(w.s * w.p) * e;
  r.smem_cycles = r.smem_bytes / config_.smem_bw_bytes_per_cycle;

  r.cycles = std::max({r.compute_cycles, r.dram_cycles, r.smem_cycles});
  r.energy_pj = issued * energy_.mac_pj + rf_energy_pj(issued) +
                issued * energy_.mux_pj_per_select +  // 4:2 selection MUXes
                smem_energy_pj(r.smem_bytes) +
                r.dram_bytes * energy_.dram_pj_per_byte + leakage_pj(r.cycles);
  return r;
}

}  // namespace crisp::accel
