// Architectural parameters shared by all accelerator models (paper §III-E).
//
// CRISP-STC is an edge-scaled Sparse-Tensor-Core-like design: SMEM → RF →
// compute topology, 4 tensor cores x 64 MACs, 256 KB shared memory, 1 KB
// register file per core, and "only a fraction of the SMEM bandwidth" of a
// datacenter STC. All baselines are evaluated on the same resource budget,
// as the paper does via Sparseloop.
#pragma once

#include <cstdint>

namespace crisp::accel {

struct AcceleratorConfig {
  std::int64_t tensor_cores = 4;
  std::int64_t macs_per_core = 64;
  std::int64_t smem_kbytes = 256;
  std::int64_t rf_bytes_per_core = 1024;

  /// Operand width. Edge inference runs reduced precision (fp16).
  std::int64_t bytes_per_element = 2;

  /// On-chip (SMEM) bandwidth in bytes/cycle — deliberately a fraction of a
  /// datacenter STC's, per the paper's edge-centric setup.
  double smem_bw_bytes_per_cycle = 64.0;
  /// Off-chip bandwidth in bytes/cycle (LPDDR-class edge memory).
  double dram_bw_bytes_per_cycle = 16.0;

  /// Fixed pipeline set-up cost charged once per scheduled weight block
  /// (tile descriptor fetch, index decode). Penalises very small blocks.
  double cycles_per_block_dispatch = 4.0;

  /// Activation-selection throughput of the N:M datapath (Fig. 6): how many
  /// candidate operands each MAC lane's MUX network can scan per cycle. The
  /// base 2:4 design has a 4:2 MUX pair (= 2); the paper's adapted 1:4/3:4
  /// fabrics add "an appropriate number of MUXs" (§IV-A) — modelled as a
  /// modest over-provisioning. Ratios tighter than selects/(M/N) become
  /// selector-bound.
  double mux_selects_per_mac_cycle = 2.5;

  std::int64_t total_macs() const { return tensor_cores * macs_per_core; }

  /// The configuration described in §III-E.
  static AcceleratorConfig edge_default();
};

}  // namespace crisp::accel
