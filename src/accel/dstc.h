// Dual-side Sparse Tensor Core baseline (Wang et al., ISCA'21) at the
// shared edge resource budget.
//
// DSTC exploits *unstructured* sparsity on both operands: compute shrinks
// with weight-density x activation-density (the paper reserves 40 %
// activation sparsity for it). The costs that come with the dual-side
// outer-product dataflow, and that Fig. 8 shows dominating late layers:
//  * bitmap metadata for the whole weight matrix plus gather-unfriendly
//    compressed values — streamed from DRAM at poor burst efficiency, a
//    cost that scales with S·K and therefore bites exactly where ResNet's
//    late layers live;
//  * a partial-sum merge pipeline whose throughput bounds effective MACs;
//  * activation gathers whose SMEM efficiency drops when the output tile
//    P is narrow (late layers again).
#pragma once

#include "accel/model.h"

namespace crisp::accel {

class Dstc final : public AcceleratorModel {
 public:
  using AcceleratorModel::AcceleratorModel;

  SimResult simulate(const GemmWorkload& workload,
                     const SparsityProfile& profile) const override;
  std::string name() const override { return "DSTC"; }

  /// Merge-pipeline lanes (psums merged per cycle).
  static constexpr double kMergeLanes = 128.0;
  /// DRAM burst efficiency of gather-style unstructured accesses.
  static constexpr double kDramGatherEfficiency = 0.25;
};

}  // namespace crisp::accel
