#include "accel/dse.h"

#include <algorithm>

#include "tensor/check.h"

namespace crisp::accel {

std::string DsePoint::label() const {
  return std::to_string(config.tensor_cores) + "c x " +
         std::to_string(config.macs_per_core) + "m, " +
         std::to_string(config.smem_kbytes) + "KB, smem " +
         std::to_string(static_cast<std::int64_t>(
             config.smem_bw_bytes_per_cycle)) +
         "B/c, dram " +
         std::to_string(static_cast<std::int64_t>(
             config.dram_bw_bytes_per_cycle)) +
         "B/c";
}

std::vector<DsePoint> sweep_configs(
    const AcceleratorConfig& base, const EnergyModel& energy,
    const DseKnobs& knobs, const std::vector<GemmWorkload>& workloads,
    const std::vector<SparsityProfile>& profiles) {
  CRISP_CHECK(workloads.size() == profiles.size(),
              "workload/profile count mismatch");
  const auto or_base = [](auto candidates, auto base_value) {
    if (candidates.empty()) candidates.push_back(base_value);
    return candidates;
  };
  const auto cores = or_base(knobs.tensor_cores, base.tensor_cores);
  const auto macs = or_base(knobs.macs_per_core, base.macs_per_core);
  const auto smem = or_base(knobs.smem_kbytes, base.smem_kbytes);
  const auto smem_bw =
      or_base(knobs.smem_bw_bytes_per_cycle, base.smem_bw_bytes_per_cycle);
  const auto dram_bw =
      or_base(knobs.dram_bw_bytes_per_cycle, base.dram_bw_bytes_per_cycle);

  std::vector<DsePoint> points;
  for (const std::int64_t c : cores)
    for (const std::int64_t m : macs)
      for (const std::int64_t s : smem)
        for (const double sb : smem_bw)
          for (const double db : dram_bw) {
            DsePoint pt;
            pt.config = base;
            pt.config.tensor_cores = c;
            pt.config.macs_per_core = m;
            pt.config.smem_kbytes = s;
            pt.config.smem_bw_bytes_per_cycle = sb;
            pt.config.dram_bw_bytes_per_cycle = db;
            const CrispStc model(pt.config, energy);
            for (std::size_t i = 0; i < workloads.size(); ++i) {
              const SimResult r = model.simulate(workloads[i], profiles[i]);
              pt.cycles += r.cycles;
              pt.energy_pj += r.energy_pj;
            }
            points.push_back(pt);
          }
  return points;
}

std::vector<std::size_t> pareto_front(const std::vector<DsePoint>& points) {
  std::vector<std::size_t> order(points.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (points[a].cycles != points[b].cycles)
      return points[a].cycles < points[b].cycles;
    return points[a].energy_pj < points[b].energy_pj;
  });

  std::vector<std::size_t> front;
  double best_energy = 0.0;
  for (const std::size_t i : order) {
    if (front.empty() || points[i].energy_pj < best_energy) {
      front.push_back(i);
      best_energy = points[i].energy_pj;
    }
  }
  return front;
}

}  // namespace crisp::accel
