// GEMM workloads for the accelerator models.
//
// Every convolution lowers (im2col) to C[S,P] = W[S,K] · X[K,P] with
// S = output channels, K = reduction (R·kh·kw), P = output positions.
// Hardware results depend only on these shapes plus the sparsity profile,
// so Fig. 8 runs on the *true* ImageNet-resolution ResNet-50 shapes even
// though training used width-scaled models (DESIGN.md §2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace crisp::accel {

struct GemmWorkload {
  std::string name;
  std::int64_t s = 0;  ///< rows of W (output channels)
  std::int64_t k = 0;  ///< reduction length
  std::int64_t p = 0;  ///< output positions (columns of X)

  std::int64_t macs() const { return s * k * p; }
};

/// Per-layer sparsity description handed to the models.
struct SparsityProfile {
  std::int64_t n = 2;                ///< N of N:M
  std::int64_t m = 4;                ///< M of N:M
  std::int64_t block = 32;           ///< block side B
  double kept_cols_fraction = 1.0;   ///< K'/K from block pruning
  double activation_density = 1.0;   ///< for dual-side designs (DSTC)

  /// Non-zero weight fraction: (K'/K)·(N/M).
  double weight_density() const {
    return kept_cols_fraction * static_cast<double>(n) /
           static_cast<double>(m);
  }
  /// Overall weight sparsity 1 − density (the paper's κ).
  double weight_sparsity() const { return 1.0 - weight_density(); }

  static SparsityProfile dense() {
    SparsityProfile p;
    p.n = p.m = 1;
    return p;
  }
};

/// All 53 convolutions + the classifier of ImageNet ResNet-50 (224x224,
/// v1.5 stride placement: the 3x3 carries the stage stride).
std::vector<GemmWorkload> resnet50_imagenet_workloads();

/// The representative layer subset plotted in Fig. 8: early / middle / late
/// stage convolutions of each kernel type plus the classifier.
std::vector<GemmWorkload> resnet50_representative_workloads();

}  // namespace crisp::accel
