// NVIDIA Sparse Tensor Core baseline (Ampere, 2:4 only) at the shared edge
// resource budget.
//
// The fabric skips at most half of the MAC slots: a 2:4 workload maps
// perfectly (2x); a 1:4 workload still occupies the 2:4 pipeline with one
// zero per selected pair — the "poor utilization" that caps it at 2x in
// Fig. 8; 3:4 and dense cannot use the sparse path at all. Block sparsity
// is invisible to it: all K activation rows stay live.
#pragma once

#include "accel/model.h"

namespace crisp::accel {

class NvidiaStc final : public AcceleratorModel {
 public:
  using AcceleratorModel::AcceleratorModel;

  SimResult simulate(const GemmWorkload& workload,
                     const SparsityProfile& profile) const override;
  std::string name() const override { return "NVIDIA-STC"; }
};

}  // namespace crisp::accel
