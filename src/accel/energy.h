// Per-access energy table (CACTI-class numbers, as the paper's CACTI-P
// plugin provides).
//
// Values are picojoules at a 45 nm-class edge node, anchored on Horowitz,
// "Computing's energy problem" (ISSCC'14) and CACTI-P SRAM fits: a 16-bit
// MAC ≈ 1 pJ, KB-scale register files ≈ 0.1 pJ/B, 100s-of-KB SRAM ≈ 1 pJ/B,
// off-chip DRAM ≈ 80 pJ/B (two orders above SRAM). Absolute joules are not
// the reproduction target — the ratios between models are.
#pragma once

namespace crisp::accel {

struct EnergyModel {
  double mac_pj = 1.0;              ///< one fp16 multiply-accumulate
  double rf_pj_per_byte = 0.1;      ///< 1 KB register file access
  double smem_pj_per_byte = 1.0;    ///< 256 KB shared memory access
  double dram_pj_per_byte = 80.0;   ///< off-chip access
  double mux_pj_per_select = 0.05;  ///< N:M activation-select MUX (Fig. 6)

  /// Static (leakage) power, the part CACTI-P exists to model: charged per
  /// cycle, scaling with array area. Roughly 20 % of a busy edge fabric's
  /// dynamic power at the default 4x64 / 256 KB point — enough that
  /// oversized fabrics pay for idle silicon when a layer is
  /// bandwidth-bound.
  double leakage_pj_per_cycle_per_mac = 0.05;
  double leakage_pj_per_cycle_per_smem_kb = 0.2;

  /// CACTI size scaling: per-access energies above are calibrated at these
  /// reference sizes; effective cost scales with sqrt(size/ref) (bitline /
  /// broadcast wire length grows with the array's linear dimension).
  double smem_ref_kbytes = 256.0;
  double rf_ref_macs_per_core = 64.0;

  static EnergyModel edge_default();
};

}  // namespace crisp::accel
