// Design-space exploration over the CRISP-STC fabric.
//
// The paper fixes one edge configuration (§III-E: 4 cores x 64 MACs,
// 256 KB SMEM, a fraction of datacenter SMEM bandwidth) and motivates it
// qualitatively. This module makes that choice reproducible: sweep the
// architectural knobs over a workload, collect end-to-end cycles/energy,
// and report the Pareto-efficient configurations. bench/ablation_bandwidth
// uses it to show where the fabric turns bandwidth-bound — the regime the
// paper's DSTC discussion lives in.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "accel/crisp_stc.h"
#include "accel/workload.h"

namespace crisp::accel {

/// Candidate values per knob; the sweep is their cross product. Empty
/// vectors mean "hold at the base config's value".
struct DseKnobs {
  std::vector<std::int64_t> tensor_cores;
  std::vector<std::int64_t> macs_per_core;
  std::vector<std::int64_t> smem_kbytes;
  std::vector<double> smem_bw_bytes_per_cycle;
  std::vector<double> dram_bw_bytes_per_cycle;
};

struct DsePoint {
  AcceleratorConfig config;
  double cycles = 0.0;     ///< end-to-end over the workload list
  double energy_pj = 0.0;

  /// Energy-delay product — the usual single-number edge figure of merit.
  double edp() const { return cycles * energy_pj; }
  std::string label() const;
};

/// Simulates every knob combination on a CRISP-STC model over the given
/// (workload, profile) pairs. `profiles` must align with `workloads`.
std::vector<DsePoint> sweep_configs(const AcceleratorConfig& base,
                                    const EnergyModel& energy,
                                    const DseKnobs& knobs,
                                    const std::vector<GemmWorkload>& workloads,
                                    const std::vector<SparsityProfile>& profiles);

/// Indices of the (cycles, energy) non-dominated points, sorted by cycles.
/// A point dominates another when it is no worse on both axes and strictly
/// better on one.
std::vector<std::size_t> pareto_front(const std::vector<DsePoint>& points);

}  // namespace crisp::accel
