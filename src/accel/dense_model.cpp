#include "accel/dense_model.h"

#include <algorithm>

namespace crisp::accel {

SimResult DenseModel::simulate(const GemmWorkload& w,
                               const SparsityProfile& /*profile*/) const {
  const double e = static_cast<double>(config_.bytes_per_element);
  const double macs = static_cast<double>(w.macs());

  SimResult r;
  r.executed_macs = macs;
  r.utilization = 1.0;
  r.compute_cycles = macs / static_cast<double>(config_.total_macs());

  // Weights stream from DRAM once; activations spill when oversized.
  const double weight_dram = static_cast<double>(w.s * w.k) * e;
  const double act_spill = activation_spill_bytes(w, /*input_fraction=*/1.0);
  r.dram_bytes = weight_dram + act_spill;
  r.dram_cycles = r.dram_bytes / config_.dram_bw_bytes_per_cycle;

  // SMEM feeds the MAC array; activation reuse across an output-channel
  // tile (RF broadcast) divides the per-MAC traffic.
  const double act_reuse = static_cast<double>(
      std::min<std::int64_t>(w.s, config_.macs_per_core));
  r.smem_bytes = macs * e / act_reuse +
                 static_cast<double>(w.s * w.p) * e;  // output writeback
  r.smem_cycles = r.smem_bytes / config_.smem_bw_bytes_per_cycle;

  r.cycles = std::max({r.compute_cycles, r.dram_cycles, r.smem_cycles});
  r.energy_pj = macs * energy_.mac_pj + rf_energy_pj(macs) +
                smem_energy_pj(r.smem_bytes) +
                r.dram_bytes * energy_.dram_pj_per_byte + leakage_pj(r.cycles);
  return r;
}

}  // namespace crisp::accel
