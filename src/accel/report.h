// Cross-accelerator comparison harness — produces the rows of Fig. 8.
#pragma once

#include <vector>

#include "accel/crisp_stc.h"
#include "accel/dense_model.h"
#include "accel/dstc.h"
#include "accel/nvidia_stc.h"

namespace crisp::accel {

struct LayerComparison {
  GemmWorkload workload;
  SparsityProfile profile;
  SimResult dense;
  SimResult nvidia;
  SimResult dstc;
  SimResult crisp;

  double crisp_speedup() const { return dense.cycles / crisp.cycles; }
  double nvidia_speedup() const { return dense.cycles / nvidia.cycles; }
  double dstc_speedup() const { return dense.cycles / dstc.cycles; }
  double crisp_energy_eff() const { return dense.energy_pj / crisp.energy_pj; }
  double nvidia_energy_eff() const {
    return dense.energy_pj / nvidia.energy_pj;
  }
  double dstc_energy_eff() const { return dense.energy_pj / dstc.energy_pj; }
};

/// Simulates every (workload, profile) pair on all four designs.
/// `profiles` must align with `workloads`.
std::vector<LayerComparison> compare_accelerators(
    const std::vector<GemmWorkload>& workloads,
    const std::vector<SparsityProfile>& profiles,
    const AcceleratorConfig& config, const EnergyModel& energy);

/// Per-layer sparsity profiles in the paper's Fig. 8 regime: global
/// sparsity ramping `kappa_first` → `kappa_last` from the first to the last
/// layer (later layers prune harder, cf. Fig. 2), at fixed N:M and block.
std::vector<SparsityProfile> ramp_profiles(std::int64_t layer_count,
                                           std::int64_t n, std::int64_t m,
                                           std::int64_t block,
                                           double kappa_first,
                                           double kappa_last,
                                           double activation_density = 0.6);

/// Fig. 8's actual sweep variable: the *block-level* kept-column fraction
/// K'/K is set by class-aware pruning (ramping down over depth, cf. Fig. 2)
/// and the N:M ratio varies on top — so tighter N:M genuinely removes MACs
/// and the three N:M series separate, as in the paper. Global κ follows as
/// 1 − (K'/K)·(N/M).
std::vector<SparsityProfile> ramp_kept_profiles(std::int64_t layer_count,
                                                std::int64_t n, std::int64_t m,
                                                std::int64_t block,
                                                double kept_first,
                                                double kept_last,
                                                double activation_density = 0.6);

/// Prints a paper-style table: per-layer speedup and energy efficiency of
/// each design relative to dense.
void print_comparison(const std::vector<LayerComparison>& rows);

}  // namespace crisp::accel
