// Accelerator model interface — the reproduction of the paper's
// Sparseloop + CACTI evaluation (§IV-A "Hardware Setup").
//
// Each model is an analytical cycle + energy estimator for one GEMM layer
// under a sparsity profile, on the shared edge resource budget
// (AcceleratorConfig). Cycles follow a roofline: the maximum of compute,
// DRAM streaming, and SMEM streaming, plus model-specific overheads.
//
// Shared modelling assumptions (applied consistently to every design):
//  * Weights and their metadata stream from DRAM once per layer.
//  * Activations live on-chip when the layer's activation working set fits
//    SMEM; the excess spills to DRAM (read + write). Sparsity that shrinks
//    the working set (CRISP's block-skipped input rows, DSTC's compressed
//    activations) shrinks the spill — exactly the effect the paper credits
//    block indices for in Fig. 6 ("input activations corresponding to
//    non-zero blocks are loaded ... into SMEM").
//  * Register-file traffic is charged per executed MAC (2 operand reads +
//    1 accumulator write).
#pragma once

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>

#include "accel/config.h"
#include "accel/energy.h"
#include "accel/workload.h"

namespace crisp::accel {

struct SimResult {
  double cycles = 0.0;
  double energy_pj = 0.0;

  // Breakdown (diagnostics; cycles = max of the cycle components + extras).
  double compute_cycles = 0.0;
  double dram_cycles = 0.0;
  double smem_cycles = 0.0;
  double overhead_cycles = 0.0;  ///< dispatch / merge / scan, model-specific
  double dram_bytes = 0.0;
  double smem_bytes = 0.0;
  double executed_macs = 0.0;    ///< MACs actually issued
  double utilization = 1.0;      ///< fraction of issued MAC slots doing work
};

class AcceleratorModel {
 public:
  AcceleratorModel(const AcceleratorConfig& config, const EnergyModel& energy)
      : config_(config), energy_(energy) {}
  virtual ~AcceleratorModel() = default;

  AcceleratorModel(const AcceleratorModel&) = delete;
  AcceleratorModel& operator=(const AcceleratorModel&) = delete;

  virtual SimResult simulate(const GemmWorkload& workload,
                             const SparsityProfile& profile) const = 0;
  virtual std::string name() const = 0;

  const AcceleratorConfig& config() const { return config_; }
  const EnergyModel& energy() const { return energy_; }

 protected:
  /// Activation working set of a layer: unique input pixels (the im2col
  /// matrix re-reads each pixel ~kernel-area times; 4 is the ResNet-50
  /// average) plus the resident partial-sum tile. Outputs complete per
  /// position under weight-stationary dataflow, so only a 64-position tile
  /// of them needs residency — finished outputs become the *next* layer's
  /// inputs and are charged there.
  double activation_working_set_bytes(const GemmWorkload& w,
                                      double input_fraction) const {
    const double e = static_cast<double>(config_.bytes_per_element);
    const double unique_in =
        static_cast<double>(w.k) * static_cast<double>(w.p) * e / 4.0;
    const double psum_tile =
        static_cast<double>(w.s) *
        static_cast<double>(std::min<std::int64_t>(w.p, 64)) * e;
    return unique_in * input_fraction + psum_tile;
  }

  /// Bytes spilled to DRAM (read + write) when the working set exceeds SMEM.
  double activation_spill_bytes(const GemmWorkload& w,
                                double input_fraction) const {
    const double smem = static_cast<double>(config_.smem_kbytes) * 1024.0;
    const double ws = activation_working_set_bytes(w, input_fraction);
    return ws > smem ? 2.0 * (ws - smem) : 0.0;
  }

  /// Register-file energy for `macs` executed MACs. Operand broadcast wire
  /// length grows with the compute array's linear dimension (CACTI
  /// scaling), so the per-access cost rises as sqrt(array width).
  double rf_energy_pj(double macs) const {
    const double e = static_cast<double>(config_.bytes_per_element);
    const double width_factor =
        std::sqrt(static_cast<double>(config_.macs_per_core) /
                  energy_.rf_ref_macs_per_core);
    return macs * 3.0 * e * energy_.rf_pj_per_byte * width_factor;
  }

  /// SMEM access energy for `bytes`, with CACTI sqrt-capacity scaling.
  double smem_energy_pj(double bytes) const {
    const double size_factor = std::sqrt(
        static_cast<double>(config_.smem_kbytes) / energy_.smem_ref_kbytes);
    return bytes * energy_.smem_pj_per_byte * size_factor;
  }

  /// Static (leakage) energy over a layer's runtime: area x time. Charged
  /// by every model so slow-but-wide designs pay for their idle silicon.
  double leakage_pj(double cycles) const {
    const double rate =
        static_cast<double>(config_.total_macs()) *
            energy_.leakage_pj_per_cycle_per_mac +
        static_cast<double>(config_.smem_kbytes) *
            energy_.leakage_pj_per_cycle_per_smem_kb;
    return cycles * rate;
  }

  AcceleratorConfig config_;
  EnergyModel energy_;
};

using AcceleratorModelPtr = std::unique_ptr<AcceleratorModel>;

}  // namespace crisp::accel
