#include "accel/report.h"

#include <algorithm>
#include <cstdio>

#include "tensor/check.h"

namespace crisp::accel {

std::vector<LayerComparison> compare_accelerators(
    const std::vector<GemmWorkload>& workloads,
    const std::vector<SparsityProfile>& profiles,
    const AcceleratorConfig& config, const EnergyModel& energy) {
  CRISP_CHECK(workloads.size() == profiles.size(),
              "workload/profile count mismatch");
  const DenseModel dense(config, energy);
  const NvidiaStc nvidia(config, energy);
  const Dstc dstc(config, energy);
  const CrispStc crisp(config, energy);

  std::vector<LayerComparison> rows;
  rows.reserve(workloads.size());
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    LayerComparison row;
    row.workload = workloads[i];
    row.profile = profiles[i];
    row.dense = dense.simulate(row.workload, SparsityProfile::dense());
    row.nvidia = nvidia.simulate(row.workload, row.profile);
    row.dstc = dstc.simulate(row.workload, row.profile);
    row.crisp = crisp.simulate(row.workload, row.profile);
    rows.push_back(row);
  }
  return rows;
}

std::vector<SparsityProfile> ramp_profiles(std::int64_t layer_count,
                                           std::int64_t n, std::int64_t m,
                                           std::int64_t block,
                                           double kappa_first,
                                           double kappa_last,
                                           double activation_density) {
  CRISP_CHECK(layer_count >= 1, "need at least one layer");
  std::vector<SparsityProfile> profiles;
  profiles.reserve(static_cast<std::size_t>(layer_count));
  for (std::int64_t i = 0; i < layer_count; ++i) {
    const double t = layer_count == 1
                         ? 0.0
                         : static_cast<double>(i) /
                               static_cast<double>(layer_count - 1);
    const double kappa = kappa_first + (kappa_last - kappa_first) * t;
    SparsityProfile p;
    p.n = n;
    p.m = m;
    p.block = block;
    p.activation_density = activation_density;
    // K'/K from κ = 1 − (K'/K)(N/M), clamped to a representable fraction.
    p.kept_cols_fraction = std::clamp(
        (1.0 - kappa) * static_cast<double>(m) / static_cast<double>(n), 0.01,
        1.0);
    profiles.push_back(p);
  }
  return profiles;
}

std::vector<SparsityProfile> ramp_kept_profiles(std::int64_t layer_count,
                                                std::int64_t n, std::int64_t m,
                                                std::int64_t block,
                                                double kept_first,
                                                double kept_last,
                                                double activation_density) {
  CRISP_CHECK(layer_count >= 1, "need at least one layer");
  std::vector<SparsityProfile> profiles;
  profiles.reserve(static_cast<std::size_t>(layer_count));
  for (std::int64_t i = 0; i < layer_count; ++i) {
    const double t = layer_count == 1
                         ? 0.0
                         : static_cast<double>(i) /
                               static_cast<double>(layer_count - 1);
    SparsityProfile p;
    p.n = n;
    p.m = m;
    p.block = block;
    p.activation_density = activation_density;
    p.kept_cols_fraction =
        std::clamp(kept_first + (kept_last - kept_first) * t, 0.01, 1.0);
    profiles.push_back(p);
  }
  return profiles;
}

void print_comparison(const std::vector<LayerComparison>& rows) {
  std::printf(
      "%-16s %7s | %9s %9s %9s | %9s %9s %9s\n", "layer", "kappa",
      "STC spd", "DSTC spd", "CRISP spd", "STC eff", "DSTC eff", "CRISP eff");
  for (const auto& row : rows) {
    std::printf(
        "%-16s %6.2f%% | %8.2fx %8.2fx %8.2fx | %8.2fx %8.2fx %8.2fx\n",
        row.workload.name.c_str(), 100.0 * row.profile.weight_sparsity(),
        row.nvidia_speedup(), row.dstc_speedup(), row.crisp_speedup(),
        row.nvidia_energy_eff(), row.dstc_energy_eff(),
        row.crisp_energy_eff());
  }
}

}  // namespace crisp::accel
