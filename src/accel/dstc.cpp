#include "accel/dstc.h"

#include <algorithm>

namespace crisp::accel {

SimResult Dstc::simulate(const GemmWorkload& w,
                         const SparsityProfile& profile) const {
  const double e = static_cast<double>(config_.bytes_per_element);
  const double macs = static_cast<double>(w.macs());
  // Unstructured view of the hybrid mask: DSTC sees the overall density.
  const double wd = profile.weight_density();
  const double ad = profile.activation_density;

  SimResult r;
  const double useful = macs * wd * ad;
  r.executed_macs = useful;
  r.utilization = 1.0;  // dual-side skipping wastes no slots...
  r.compute_cycles = useful / static_cast<double>(config_.total_macs());
  // ...but every surviving product passes the psum merge pipeline.
  const double merge_cycles = useful / kMergeLanes;

  // Whole-matrix bitmap + compressed values, gather-limited DRAM bursts.
  // Activation spills stream sequentially and pay no gather penalty.
  const double weight_bytes =
      static_cast<double>(w.s * w.k) * (e * wd + 1.0 / 8.0);
  const double act_spill = activation_spill_bytes(w, ad);
  r.dram_bytes = weight_bytes / kDramGatherEfficiency + act_spill;
  r.dram_cycles = r.dram_bytes / config_.dram_bw_bytes_per_cycle;

  // SMEM activation gathers lose efficiency when output rows are short.
  const double gather_efficiency =
      std::min(1.0, static_cast<double>(w.p) / 256.0);
  const double act_reuse = static_cast<double>(
      std::min<std::int64_t>(w.s, config_.macs_per_core));
  r.smem_bytes = useful * e / act_reuse / gather_efficiency +
                 static_cast<double>(w.s * w.p) * e;
  r.smem_cycles = r.smem_bytes / config_.smem_bw_bytes_per_cycle;

  r.overhead_cycles = merge_cycles;
  r.cycles = std::max(
      {r.compute_cycles + merge_cycles, r.dram_cycles, r.smem_cycles});
  // The merge network and dual-side index intersection make DSTC's
  // per-product energy heavier than a plain MAC ("complex dataflow").
  r.energy_pj = useful * (energy_.mac_pj * 1.5) + rf_energy_pj(useful) +
                smem_energy_pj(r.smem_bytes) +
                r.dram_bytes * energy_.dram_pj_per_byte + leakage_pj(r.cycles);
  return r;
}

}  // namespace crisp::accel
