#include "accel/workload.h"

#include <array>

#include "tensor/check.h"

namespace crisp::accel {

namespace {

struct StageSpec {
  std::int64_t planes;  ///< bottleneck width
  std::int64_t blocks;
  std::int64_t in_spatial;  ///< input feature-map side for the stage
};

void push_conv(std::vector<GemmWorkload>& out, std::string name,
               std::int64_t out_ch, std::int64_t in_ch, std::int64_t kernel,
               std::int64_t spatial_out) {
  out.push_back(GemmWorkload{std::move(name), out_ch, in_ch * kernel * kernel,
                             spatial_out * spatial_out});
}

}  // namespace

std::vector<GemmWorkload> resnet50_imagenet_workloads() {
  std::vector<GemmWorkload> w;
  // Stem: 7x7/2, 3->64, 224 -> 112; maxpool brings 112 -> 56.
  push_conv(w, "conv1", 64, 3, 7, 112);

  const std::array<StageSpec, 4> stages{{{64, 3, 56},
                                         {128, 4, 56},
                                         {256, 6, 28},
                                         {512, 3, 14}}};
  std::int64_t in_ch = 64;
  for (std::size_t si = 0; si < stages.size(); ++si) {
    const StageSpec& st = stages[si];
    const bool downsamples = si > 0;  // stage 2..4 halve the spatial size
    const std::int64_t sp_out = downsamples ? st.in_spatial / 2 : st.in_spatial;
    for (std::int64_t b = 0; b < st.blocks; ++b) {
      const std::string prefix =
          "conv" + std::to_string(si + 2) + "_" + std::to_string(b + 1);
      const std::int64_t sp_in = (b == 0) ? st.in_spatial : sp_out;
      const std::int64_t out_ch = st.planes * 4;
      // v1.5: 1x1 at input spatial, stride on the 3x3.
      push_conv(w, prefix + ".conv1", st.planes, in_ch, 1, sp_in);
      push_conv(w, prefix + ".conv2", st.planes, st.planes, 3, sp_out);
      push_conv(w, prefix + ".conv3", out_ch, st.planes, 1, sp_out);
      if (b == 0) push_conv(w, prefix + ".proj", out_ch, in_ch, 1, sp_out);
      in_ch = out_ch;
    }
  }
  // Classifier: 2048 -> 1000, a single output position.
  w.push_back(GemmWorkload{"fc", 1000, 2048, 1});
  CRISP_CHECK(w.size() == 54, "expected 53 convs + fc, got " << w.size());
  return w;
}

std::vector<GemmWorkload> resnet50_representative_workloads() {
  const auto all = resnet50_imagenet_workloads();
  const char* names[] = {
      "conv2_1.conv2",  // early 3x3, 56x56 — DSTC's favourite shape
      "conv2_3.conv3",  // early 1x1 expanding
      "conv3_1.proj",   // stage-2 projection
      "conv3_2.conv2",  // middle 3x3, 28x28
      "conv4_3.conv2",  // middle-late 3x3, 14x14
      "conv4_6.conv1",  // late 1x1 reducing
      "conv5_1.conv2",  // late 3x3, 7x7 — data-movement stress
      "conv5_3.conv3",  // last 1x1, widest output
      "fc",             // classifier GEMV
  };
  std::vector<GemmWorkload> out;
  for (const char* n : names) {
    bool found = false;
    for (const auto& wl : all)
      if (wl.name == n) {
        out.push_back(wl);
        found = true;
        break;
      }
    CRISP_CHECK(found, "representative layer " << n << " not in table");
  }
  return out;
}

}  // namespace crisp::accel
