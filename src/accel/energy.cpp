#include "accel/energy.h"

namespace crisp::accel {

EnergyModel EnergyModel::edge_default() { return EnergyModel{}; }

}  // namespace crisp::accel
