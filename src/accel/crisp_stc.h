// CRISP-STC — the paper's accelerator (§III-E, Fig. 6).
//
// An edge-scaled sparse tensor core extended beyond 2:4 to 1:4 and 3:4,
// plus block-sparsity awareness:
//  * uniform blocks-per-row ⇒ every N non-zeros map onto N parallel MACs
//    with no load imbalance — full utilization by construction;
//  * block indices skip whole K-columns: only K' activation rows are
//    loaded into SMEM (shrinking both streaming and the spill working set);
//  * 2-bit intra-M offsets drive the activation-select MUXes;
//  * the only structural overhead is per-block dispatch, which is why
//    larger blocks (64) win in Fig. 8.
#pragma once

#include "accel/model.h"

namespace crisp::accel {

class CrispStc final : public AcceleratorModel {
 public:
  using AcceleratorModel::AcceleratorModel;

  SimResult simulate(const GemmWorkload& workload,
                     const SparsityProfile& profile) const override;
  std::string name() const override { return "CRISP-STC"; }
};

}  // namespace crisp::accel
