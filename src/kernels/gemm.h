// Cache-blocked, multi-threaded dense GEMM drivers.
//
// These are the execution engines behind tensor/matmul.h (which owns the
// shape checking). All three variants partition the M output rows across
// the parallel_for pool; every output row is produced start-to-finish by a
// single thread with a fixed k-ascending accumulation order, so results are
// bit-identical at any thread count within one SIMD dispatch tier (see
// kernels/simd_dispatch.h for the tier contract).
//
// The reduction dimension is processed in panels of kKc columns so the
// active slice of B stays cache-resident. Inside a panel, row blocks of A
// (up to simd::kMr rows) are packed into a p-major sliver — contiguous
// reads for the register-blocked inner kernel, and the fix for gemm_tn's
// column-strided access — and handed to the runtime-dispatched gemm_panel
// microkernel (scalar / AVX2 / NEON). The zero-skip on A entries is kept
// from the naive kernels: pruned weight rows get their "free win" before
// any sparse format is involved.
#pragma once

#include <cstdint>

#include "tensor/tensor.h"

namespace crisp::kernels {

/// Reduction-panel width shared by the blocked kernels (exposed so the
/// tests can pick shapes that straddle a panel boundary).
constexpr std::int64_t kKc = 256;

/// C[M,N] = A[M,K] · B[K,N], overwriting C; accumulates when `accumulate`.
void gemm(ConstMatrixView a, ConstMatrixView b, MatrixView c, bool accumulate);

/// C[M,N] = Aᵀ · B with A stored K x M (transposed-A GEMM); C overwritten.
void gemm_tn(ConstMatrixView a, ConstMatrixView b, MatrixView c);

/// C[M,N] = A · Bᵀ with B stored N x K (transposed-B GEMM); C overwritten.
void gemm_nt(ConstMatrixView a, ConstMatrixView b, MatrixView c);

}  // namespace crisp::kernels
