#include "kernels/gemm.h"

#include <algorithm>
#include <cstring>

#include "kernels/parallel_for.h"
#include "kernels/simd_dispatch.h"

namespace crisp::kernels {

namespace {

/// Packs rows [i, i+mr) x reduction columns [kk, kend) of row-major A
/// (lda = stride between rows) into the p-major sliver the gemm_panel
/// microkernel consumes: apack[(p-kk)*mr + r] = A[i+r, p].
inline void pack_a_rows(const float* a, std::int64_t lda, std::int64_t i,
                        std::int64_t mr, std::int64_t kk, std::int64_t kend,
                        float* apack) {
  for (std::int64_t r = 0; r < mr; ++r) {
    const float* arow = a + (i + r) * lda + kk;
    for (std::int64_t p = 0; p < kend - kk; ++p) apack[p * mr + r] = arow[p];
  }
}

/// Same sliver from a K x M (transposed) A: apack[(p-kk)*mr + r] = A[p, i+r].
/// Each reduction step reads mr contiguous floats — this packing is what
/// turns gemm_tn's column-strided loads into unit-stride microkernel reads.
inline void pack_a_cols(const float* a, std::int64_t ldm, std::int64_t i,
                        std::int64_t mr, std::int64_t kk, std::int64_t kend,
                        float* apack) {
  for (std::int64_t p = kk; p < kend; ++p) {
    const float* asrc = a + p * ldm + i;
    float* adst = apack + (p - kk) * mr;
    for (std::int64_t r = 0; r < mr; ++r) adst[r] = asrc[r];
  }
}

}  // namespace

void gemm(ConstMatrixView a, ConstMatrixView b, MatrixView c,
          bool accumulate) {
  const std::int64_t m = a.rows, k = a.cols, n = b.cols;
  const auto& mk = simd::active();
  const std::int64_t grain = rows_grain(k * n);
  parallel_for(m, [&](std::int64_t i0, std::int64_t i1) {
    if (!accumulate)
      std::memset(c.data + i0 * n, 0,
                  static_cast<std::size_t>((i1 - i0) * n) * sizeof(float));
    // Panel over k: rows [kk, kend) of B stay hot while row blocks of A are
    // packed and streamed through the microkernel. Per output element the
    // additions still happen in ascending k order, so within one dispatch
    // tier the result is bit-identical at any thread count.
    alignas(64) float apack[simd::kMr * kKc];
    for (std::int64_t kk = 0; kk < k; kk += kKc) {
      const std::int64_t kend = std::min(k, kk + kKc);
      for (std::int64_t i = i0; i < i1;) {
        // Row blocks are aligned to absolute multiples of kMr (not to the
        // chunk start), so block membership — and with it the microkernel's
        // all-rows-zero skip — is a pure function of the row index,
        // independent of how parallel_for partitioned the rows.
        const std::int64_t aligned = (i / simd::kMr + 1) * simd::kMr;
        const std::int64_t mr = std::min(aligned, i1) - i;
        pack_a_rows(a.data, k, i, mr, kk, kend, apack);
        mk.gemm_panel(apack, mr, kend - kk, b.data + kk * n, n,
                      c.data + i * n, n, n);
        i += mr;
      }
    }
  }, grain);
}

void gemm_tn(ConstMatrixView a, ConstMatrixView b, MatrixView c) {
  // A stored K x M; logical op: C[i,j] = sum_p A[p,i] * B[p,j].
  const std::int64_t k = a.rows, m = a.cols, n = b.cols;
  const auto& mk = simd::active();
  const std::int64_t grain = rows_grain(k * n);
  parallel_for(m, [&](std::int64_t i0, std::int64_t i1) {
    std::memset(c.data + i0 * n, 0,
                static_cast<std::size_t>((i1 - i0) * n) * sizeof(float));
    alignas(64) float apack[simd::kMr * kKc];
    for (std::int64_t kk = 0; kk < k; kk += kKc) {
      const std::int64_t kend = std::min(k, kk + kKc);
      for (std::int64_t i = i0; i < i1;) {
        const std::int64_t aligned = (i / simd::kMr + 1) * simd::kMr;
        const std::int64_t mr = std::min(aligned, i1) - i;
        pack_a_cols(a.data, m, i, mr, kk, kend, apack);
        mk.gemm_panel(apack, mr, kend - kk, b.data + kk * n, n,
                      c.data + i * n, n, n);
        i += mr;
      }
    }
  }, grain);
}

void gemm_nt(ConstMatrixView a, ConstMatrixView b, MatrixView c) {
  // B stored N x K; logical op: C[i,j] = sum_p A[i,p] * B[j,p]. Both
  // operand rows are contiguous, so this is a pure dot-product kernel and
  // needs no packing.
  const std::int64_t m = a.rows, k = a.cols, n = b.rows;
  const auto& mk = simd::active();
  const std::int64_t grain = rows_grain(k * n);
  parallel_for(m, [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      const float* arow = a.data + i * k;
      float* crow = c.data + i * n;
      for (std::int64_t j = 0; j < n; ++j)
        crow[j] = mk.dot(arow, b.data + j * k, k);
    }
  }, grain);
}

}  // namespace crisp::kernels
