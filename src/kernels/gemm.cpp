#include "kernels/gemm.h"

#include <algorithm>
#include <cstring>

#include "kernels/parallel_for.h"

namespace crisp::kernels {

void gemm(ConstMatrixView a, ConstMatrixView b, MatrixView c,
          bool accumulate) {
  const std::int64_t m = a.rows, k = a.cols, n = b.cols;
  const std::int64_t grain = rows_grain(k * n);
  parallel_for(m, [&](std::int64_t i0, std::int64_t i1) {
    if (!accumulate)
      std::memset(c.data + i0 * n, 0,
                  static_cast<std::size_t>((i1 - i0) * n) * sizeof(float));
    // Panel over k: rows [kk, kend) of B stay hot while the row tile of A
    // streams. Per output element the additions still happen in ascending
    // k order, so the result matches the unblocked serial loop bit-exactly.
    for (std::int64_t kk = 0; kk < k; kk += kKc) {
      const std::int64_t kend = std::min(k, kk + kKc);
      for (std::int64_t i = i0; i < i1; ++i) {
        const float* arow = a.data + i * k;
        float* crow = c.data + i * n;
        for (std::int64_t p = kk; p < kend; ++p) {
          const float av = arow[p];
          if (av == 0.0f) continue;  // free win on masked weights
          const float* brow = b.data + p * n;
          for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
        }
      }
    }
  }, grain);
}

void gemm_tn(ConstMatrixView a, ConstMatrixView b, MatrixView c) {
  // A stored K x M; logical op: C[i,j] = sum_p A[p,i] * B[p,j].
  const std::int64_t k = a.rows, m = a.cols, n = b.cols;
  const std::int64_t grain = rows_grain(k * n);
  parallel_for(m, [&](std::int64_t i0, std::int64_t i1) {
    std::memset(c.data + i0 * n, 0,
                static_cast<std::size_t>((i1 - i0) * n) * sizeof(float));
    for (std::int64_t kk = 0; kk < k; kk += kKc) {
      const std::int64_t kend = std::min(k, kk + kKc);
      for (std::int64_t i = i0; i < i1; ++i) {
        float* crow = c.data + i * n;
        for (std::int64_t p = kk; p < kend; ++p) {
          const float av = a.data[p * m + i];
          if (av == 0.0f) continue;
          const float* brow = b.data + p * n;
          for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
        }
      }
    }
  }, grain);
}

void gemm_nt(ConstMatrixView a, ConstMatrixView b, MatrixView c) {
  // B stored N x K; logical op: C[i,j] = sum_p A[i,p] * B[j,p].
  const std::int64_t m = a.rows, k = a.cols, n = b.rows;
  const std::int64_t grain = rows_grain(k * n);
  parallel_for(m, [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      const float* arow = a.data + i * k;
      float* crow = c.data + i * n;
      for (std::int64_t j = 0; j < n; ++j) {
        const float* brow = b.data + j * k;
        float acc = 0.0f;  // float + -ffast-math → vectorized reduction
        for (std::int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
        crow[j] = acc;
      }
    }
  }, grain);
}

}  // namespace crisp::kernels
