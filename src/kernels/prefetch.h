// Software prefetch hint for the sparse gather loops.
//
// The SpmmKernel inner loops read activation rows through an indirection
// (column index / MUX offset), so the hardware prefetcher cannot follow
// them. Issuing a read-prefetch for the *next* slot's activation row while
// the current axpy runs hides part of that gather latency. A hint never
// changes results — kernels stay bit-identical with or without it — and it
// compiles to nothing on toolchains without __builtin_prefetch.
#pragma once

namespace crisp::kernels {

/// Read-prefetch `addr` with low temporal locality (the gathered row is
/// consumed once per slot). Safe for any address, including out-of-range
/// speculation: prefetching never faults.
inline void prefetch_read(const void* addr) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(addr, /*rw=*/0, /*locality=*/1);
#else
  (void)addr;
#endif
}

}  // namespace crisp::kernels
