// Format-polymorphic sparse-times-dense kernel interface.
//
// Every sparse storage format (CSR, ELLPACK, Blocked-ELL, CRISP) implements
// this interface, so higher layers — sparse/spmm.h dispatch, the deploy
// GEMM hooks, the kernel bench — can run any encoding through one code
// path without templates or RTTI. Implementations must be:
//   * const-thread-safe: spmm() may be called concurrently (the batched
//     conv forward does exactly that);
//   * deterministic in the thread count: the contract is row-partitioned
//     parallelism where each output row is written by exactly one thread
//     in a fixed accumulation order (see kernels/parallel_for.h).
#pragma once

#include <cstdint>

#include "tensor/tensor.h"

namespace crisp::kernels {

class SpmmKernel {
 public:
  virtual ~SpmmKernel() = default;

  /// Logical dense dimensions of the encoded weight matrix W.
  virtual std::int64_t rows() const = 0;
  virtual std::int64_t cols() const = 0;

  /// y[rows, P] = W · x[cols, P]; y is overwritten. Throws on shape
  /// mismatch. Must be bit-identical for any kernels::num_threads().
  virtual void spmm(ConstMatrixView x, MatrixView y) const = 0;

  /// Short lowercase identifier ("csr", "crisp", ...) for logs and benches.
  virtual const char* format_name() const = 0;
};

}  // namespace crisp::kernels
