// Runtime-dispatched SIMD microkernels behind the dense GEMM and every
// SpmmKernel inner loop.
//
// The kernel layer is ISA-agnostic: gemm.cpp and the four sparse formats
// drive blocking, packing and parallel partitioning, then call the three
// primitives below through the Microkernels table returned by active().
// Three implementations exist:
//   * scalar  — the always-correct fallback, bit-identical to the pre-SIMD
//               kernels (same loop structure, same zero-skips);
//   * avx2    — 8-lane float FMA (compiled only on x86-64, used only when
//               the CPU reports AVX2+FMA at startup);
//   * neon    — 4-lane float FMA (aarch64, where NEON is baseline).
//
// The tier is resolved once at first use: compile-time availability ∩
// runtime CPU features, minus the CRISP_DISABLE_SIMD override (environment
// variable, or baked in with -DCRISP_DISABLE_SIMD=ON at configure time).
// set_tier() lets tests and benches force the scalar path in-process to
// measure and verify both sides of the dispatch.
//
// Determinism contract: every implementation is a pure function of its
// arguments with a fixed accumulation order, so kernels stay bit-identical
// across thread counts *within* a tier. Across tiers results may differ by
// rounding only (FMA contraction, vectorized reduction trees); the parity
// tests in tests/test_kernels.cpp bound that to a tight tolerance.
#pragma once

#include <cstdint>

namespace crisp::kernels::simd {

enum class Tier { kScalar = 0, kAvx2 = 1, kNeon = 2 };

/// Row-block height of the packed-A panel fed to gemm_panel. Packing
/// buffers are sized kMr * kKc; tests pick shapes straddling this.
constexpr std::int64_t kMr = 4;

/// The three primitives every kernel in the layer is built from. One table
/// per tier; all function pointers are non-null.
struct Microkernels {
  /// y[0..n) += a * x[0..n).
  void (*axpy)(float a, const float* x, float* y, std::int64_t n);

  /// y[0..n) += (scale * q) * x[0..n) — the dequantize-on-the-fly
  /// accumulate behind the int8 spmm path (sparse/quantized.h). The
  /// coefficient scale * float(q) is a single IEEE multiply, formed
  /// identically in every tier; the accumulate then runs the tier's axpy
  /// body, so cross-tier differences are bounded exactly like axpy's.
  void (*axpy_i8)(std::int8_t q, float scale, const float* x, float* y,
                  std::int64_t n);

  /// Returns sum_i a[i] * b[i] over [0..n).
  float (*dot)(const float* a, const float* b, std::int64_t n);

  /// Register-blocked GEMM inner kernel over one reduction panel:
  ///   c[r*ldc + j] += sum_p apack[p*mr + r] * b[p*ldb + j]
  /// for r in [0, mr), j in [0, n), p in [0, kc). `apack` is the packed A
  /// sliver in p-major order (mr in [1, kMr]); `b` points at the first row
  /// of the panel. Skips reduction steps where all mr A values are zero,
  /// so pruned weights keep their free win.
  void (*gemm_panel)(const float* apack, std::int64_t mr, std::int64_t kc,
                     const float* b, std::int64_t ldb, float* c,
                     std::int64_t ldc, std::int64_t n);

  Tier tier;
  const char* name;
};

/// Microkernel table for the active tier. Resolved once (thread-safe);
/// kernels fetch it before entering parallel_for so a concurrent set_tier
/// cannot split one operation across tiers.
const Microkernels& active();

/// The tier active() currently dispatches to.
Tier active_tier();

/// Best tier this build + this CPU can run, ignoring CRISP_DISABLE_SIMD.
Tier supported_tier();

/// "scalar", "avx2", or "neon".
const char* tier_name(Tier t);

/// Forces dispatch to `t` for the whole process (tests/benches). Throws if
/// the build or CPU cannot run it; Tier::kScalar always succeeds.
void set_tier(Tier t);

/// Restores the startup default (supported tier unless CRISP_DISABLE_SIMD).
void reset_tier();

/// RAII tier override for tests and benches: forces `t` on construction,
/// restores the startup default on destruction. Not meant to nest.
class TierScope {
 public:
  explicit TierScope(Tier t) { set_tier(t); }
  ~TierScope() { reset_tier(); }
  TierScope(const TierScope&) = delete;
  TierScope& operator=(const TierScope&) = delete;
};

}  // namespace crisp::kernels::simd
