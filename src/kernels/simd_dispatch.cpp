#include "kernels/simd_dispatch.h"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <string>

#include "kernels/simd_internal.h"
#include "tensor/check.h"

namespace crisp::kernels::simd {

namespace {

// ---- scalar tier ------------------------------------------------------------
// Loop structure deliberately mirrors the pre-SIMD kernels (r outer, p inner,
// per-element zero-skip) so the scalar tier stays bit-identical to them.

void scalar_axpy(float a, const float* x, float* y, std::int64_t n) {
  for (std::int64_t j = 0; j < n; ++j) y[j] += a * x[j];
}

void scalar_axpy_i8(std::int8_t q, float scale, const float* x, float* y,
                    std::int64_t n) {
  const float a = scale * static_cast<float>(q);
  for (std::int64_t j = 0; j < n; ++j) y[j] += a * x[j];
}

float scalar_dot(const float* a, const float* b, std::int64_t n) {
  float acc = 0.0f;
  for (std::int64_t p = 0; p < n; ++p) acc += a[p] * b[p];
  return acc;
}

void scalar_gemm_panel(const float* apack, std::int64_t mr, std::int64_t kc,
                       const float* b, std::int64_t ldb, float* c,
                       std::int64_t ldc, std::int64_t n) {
  for (std::int64_t r = 0; r < mr; ++r) {
    float* crow = c + r * ldc;
    for (std::int64_t p = 0; p < kc; ++p) {
      const float av = apack[p * mr + r];
      if (av == 0.0f) continue;  // free win on masked weights
      const float* brow = b + p * ldb;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

constexpr Microkernels kScalarKernels{scalar_axpy, scalar_axpy_i8, scalar_dot,
                                      scalar_gemm_panel, Tier::kScalar,
                                      "scalar"};

// ---- tier resolution --------------------------------------------------------

bool env_disables_simd() {
  const char* e = std::getenv("CRISP_DISABLE_SIMD");
  if (e == nullptr) return false;
  // Any value other than an explicit case-insensitive "off" disables;
  // CRISP_DISABLE_SIMD=1 and CRISP_DISABLE_SIMD=on both read naturally.
  std::string v(e);
  for (char& c : v) c = static_cast<char>(std::tolower(c));
  return !(v.empty() || v == "0" || v == "off" || v == "false" || v == "no");
}

const Microkernels* table_for(Tier t) {
  switch (t) {
#if CRISP_HAVE_AVX2
    case Tier::kAvx2:
      return &detail_avx2_kernels();
#endif
#if CRISP_HAVE_NEON
    case Tier::kNeon:
      return &detail_neon_kernels();
#endif
    default:
      return &kScalarKernels;
  }
}

std::atomic<const Microkernels*> g_active{nullptr};

const Microkernels* resolve_default() {
  if (env_disables_simd()) return &kScalarKernels;
  return table_for(supported_tier());
}

}  // namespace

Tier supported_tier() {
#if CRISP_HAVE_AVX2
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma"))
    return Tier::kAvx2;
#endif
#if CRISP_HAVE_NEON
  return Tier::kNeon;
#endif
  return Tier::kScalar;
}

const Microkernels& active() {
  const Microkernels* mk = g_active.load(std::memory_order_acquire);
  if (mk == nullptr) {
    mk = resolve_default();
    g_active.store(mk, std::memory_order_release);
  }
  return *mk;
}

Tier active_tier() { return active().tier; }

const char* tier_name(Tier t) {
  switch (t) {
    case Tier::kAvx2:
      return "avx2";
    case Tier::kNeon:
      return "neon";
    default:
      return "scalar";
  }
}

void set_tier(Tier t) {
  CRISP_CHECK(t == Tier::kScalar || t == supported_tier(),
              "SIMD tier '" << tier_name(t)
                            << "' is not available in this build/CPU"
                               " (supported: "
                            << tier_name(supported_tier()) << ")");
  g_active.store(table_for(t), std::memory_order_release);
}

void reset_tier() {
  g_active.store(resolve_default(), std::memory_order_release);
}

}  // namespace crisp::kernels::simd
