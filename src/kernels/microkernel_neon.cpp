// NEON microkernels (4-lane float) for aarch64, where Advanced SIMD is part
// of the baseline ISA — no special compile flags, only the CRISP_HAVE_NEON
// gate from CMakeLists.txt. Mirrors microkernel_avx2.cpp with half the lane
// width; see that file and simd_dispatch.h for the determinism contract.
#include "kernels/simd_internal.h"

#if CRISP_HAVE_NEON

#include <arm_neon.h>

namespace crisp::kernels::simd {

namespace {

void neon_axpy(float a, const float* x, float* y, std::int64_t n) {
  std::int64_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const float32x4_t y0 = vfmaq_n_f32(vld1q_f32(y + j), vld1q_f32(x + j), a);
    const float32x4_t y1 =
        vfmaq_n_f32(vld1q_f32(y + j + 4), vld1q_f32(x + j + 4), a);
    vst1q_f32(y + j, y0);
    vst1q_f32(y + j + 4, y1);
  }
  for (; j + 4 <= n; j += 4)
    vst1q_f32(y + j, vfmaq_n_f32(vld1q_f32(y + j), vld1q_f32(x + j), a));
  for (; j < n; ++j) y[j] += a * x[j];
}

void neon_axpy_i8(std::int8_t q, float scale, const float* x, float* y,
                  std::int64_t n) {
  // Coefficient formed as one IEEE multiply (matches the scalar tier bit
  // for bit); the accumulate reuses the FMA axpy body above.
  neon_axpy(scale * static_cast<float>(q), x, y, n);
}

float neon_dot(const float* a, const float* b, std::int64_t n) {
  float32x4_t acc0 = vdupq_n_f32(0.0f), acc1 = vdupq_n_f32(0.0f);
  float32x4_t acc2 = vdupq_n_f32(0.0f), acc3 = vdupq_n_f32(0.0f);
  std::int64_t p = 0;
  for (; p + 16 <= n; p += 16) {
    acc0 = vfmaq_f32(acc0, vld1q_f32(a + p), vld1q_f32(b + p));
    acc1 = vfmaq_f32(acc1, vld1q_f32(a + p + 4), vld1q_f32(b + p + 4));
    acc2 = vfmaq_f32(acc2, vld1q_f32(a + p + 8), vld1q_f32(b + p + 8));
    acc3 = vfmaq_f32(acc3, vld1q_f32(a + p + 12), vld1q_f32(b + p + 12));
  }
  for (; p + 4 <= n; p += 4)
    acc0 = vfmaq_f32(acc0, vld1q_f32(a + p), vld1q_f32(b + p));
  acc0 = vaddq_f32(vaddq_f32(acc0, acc1), vaddq_f32(acc2, acc3));
  float acc = vaddvq_f32(acc0);
  for (; p < n; ++p) acc += a[p] * b[p];
  return acc;
}

inline bool all_zero(const float* ap, std::int64_t mr) {
  switch (mr) {
    case 4: {
      const uint32x4_t nz =
          vceqq_f32(vld1q_f32(ap), vdupq_n_f32(0.0f));
      return vminvq_u32(nz) == 0xffffffffu;
    }
    case 3:
      return ap[0] == 0.0f && ap[1] == 0.0f && ap[2] == 0.0f;
    case 2:
      return ap[0] == 0.0f && ap[1] == 0.0f;
    default:
      return ap[0] == 0.0f;
  }
}

template <int MR>
inline void tile8(const float* apack, std::int64_t kc, const float* b,
                  std::int64_t ldb, float* c, std::int64_t ldc,
                  std::int64_t j) {
  float32x4_t acc0[MR], acc1[MR];
  for (int r = 0; r < MR; ++r) {
    acc0[r] = vld1q_f32(c + r * ldc + j);
    acc1[r] = vld1q_f32(c + r * ldc + j + 4);
  }
  for (std::int64_t p = 0; p < kc; ++p) {
    const float* ap = apack + p * MR;
    if (all_zero(ap, MR)) continue;
    const float32x4_t b0 = vld1q_f32(b + p * ldb + j);
    const float32x4_t b1 = vld1q_f32(b + p * ldb + j + 4);
    for (int r = 0; r < MR; ++r) {
      acc0[r] = vfmaq_n_f32(acc0[r], b0, ap[r]);
      acc1[r] = vfmaq_n_f32(acc1[r], b1, ap[r]);
    }
  }
  for (int r = 0; r < MR; ++r) {
    vst1q_f32(c + r * ldc + j, acc0[r]);
    vst1q_f32(c + r * ldc + j + 4, acc1[r]);
  }
}

template <int MR>
inline void tile4(const float* apack, std::int64_t kc, const float* b,
                  std::int64_t ldb, float* c, std::int64_t ldc,
                  std::int64_t j) {
  float32x4_t acc[MR];
  for (int r = 0; r < MR; ++r) acc[r] = vld1q_f32(c + r * ldc + j);
  for (std::int64_t p = 0; p < kc; ++p) {
    const float* ap = apack + p * MR;
    if (all_zero(ap, MR)) continue;
    const float32x4_t b0 = vld1q_f32(b + p * ldb + j);
    for (int r = 0; r < MR; ++r) acc[r] = vfmaq_n_f32(acc[r], b0, ap[r]);
  }
  for (int r = 0; r < MR; ++r) vst1q_f32(c + r * ldc + j, acc[r]);
}

template <int MR>
void panel_impl(const float* apack, std::int64_t kc, const float* b,
                std::int64_t ldb, float* c, std::int64_t ldc,
                std::int64_t n) {
  std::int64_t j = 0;
  for (; j + 8 <= n; j += 8) tile8<MR>(apack, kc, b, ldb, c, ldc, j);
  if (j + 4 <= n) {
    tile4<MR>(apack, kc, b, ldb, c, ldc, j);
    j += 4;
  }
  if (j < n) {
    for (std::int64_t p = 0; p < kc; ++p) {
      const float* ap = apack + p * MR;
      const float* brow = b + p * ldb;
      for (int r = 0; r < MR; ++r) {
        const float av = ap[r];
        if (av == 0.0f) continue;
        float* crow = c + r * ldc;
        for (std::int64_t jj = j; jj < n; ++jj) crow[jj] += av * brow[jj];
      }
    }
  }
}

void neon_gemm_panel(const float* apack, std::int64_t mr, std::int64_t kc,
                     const float* b, std::int64_t ldb, float* c,
                     std::int64_t ldc, std::int64_t n) {
  switch (mr) {
    case 4:
      panel_impl<4>(apack, kc, b, ldb, c, ldc, n);
      break;
    case 3:
      panel_impl<3>(apack, kc, b, ldb, c, ldc, n);
      break;
    case 2:
      panel_impl<2>(apack, kc, b, ldb, c, ldc, n);
      break;
    default:
      panel_impl<1>(apack, kc, b, ldb, c, ldc, n);
      break;
  }
}

constexpr Microkernels kNeonKernels{neon_axpy, neon_axpy_i8, neon_dot,
                                    neon_gemm_panel, Tier::kNeon, "neon"};

}  // namespace

const Microkernels& detail_neon_kernels() { return kNeonKernels; }

}  // namespace crisp::kernels::simd

#endif  // CRISP_HAVE_NEON
