// Internal glue between simd_dispatch.cpp and the per-ISA translation
// units. Each microkernel_*.cpp defines its accessor only when the build
// enables that ISA (CRISP_HAVE_AVX2 / CRISP_HAVE_NEON), and the dispatcher
// only references it under the same guard, so disabled tiers never link.
#pragma once

#include "kernels/simd_dispatch.h"

namespace crisp::kernels::simd {

const Microkernels& detail_avx2_kernels();
const Microkernels& detail_neon_kernels();

}  // namespace crisp::kernels::simd
