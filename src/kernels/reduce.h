// Deterministic parallel accumulation — the backward-pass counterpart of
// parallel_for.
//
// Forward kernels thread by giving every output element exactly one writer,
// so no accumulation ever crosses a chunk boundary. Gradient work is the
// opposite shape: many samples contribute to the *same* parameter gradient,
// so a naive batch-parallel backward would race (or, with atomics, pick up a
// thread-count-dependent summation order). parallel_accumulate restores the
// forward path's contract for reductions:
//
//   * [0, total) is cut into chunks whose boundaries are a pure function of
//     (total, grain) — never the thread count (same rule as parallel_for);
//   * every chunk accumulates into its own private buffer;
//   * buffers are merged by a fixed-order pairwise tree (deterministic_reduce)
//     whose shape depends only on the chunk count.
//
// The summation order is therefore frozen by (total, grain) alone, and
// gradients come out bit-identical at any kernels::num_threads() — the
// property tests/test_backward_threading.cpp locks in for every layer type.
#pragma once

#include <cstdint>
#include <functional>

namespace crisp::kernels {

/// Cap on the per-chunk scratch buffers parallel_accumulate allocates. Lower
/// than parallel_for's internal chunk cap because each chunk here costs a
/// full gradient-sized buffer, not just a dispatch: a Conv2d weight gradient
/// is megabytes, and 16 chunks already load-balance any realistic pool.
constexpr std::int64_t kMaxReduceChunks = 16;

/// Number of chunks parallel_accumulate partitions [0, total) into. A pure
/// function of (total, grain) — callers that hand-roll reductions over other
/// element types (e.g. double accumulators) use this to size their per-chunk
/// state so the partition stays thread-count independent.
std::int64_t reduce_chunk_count(std::int64_t total, std::int64_t grain);

/// Width of each chunk in the reduce_chunk_count partition; chunk c covers
/// [c * width, min(total, (c+1) * width)).
std::int64_t reduce_chunk_width(std::int64_t total, std::int64_t grain);

/// out[j] += Σ_p parts[p * len + j], merged in a fixed pairwise-tree order
/// over the part index (stride-doubling: p += p+1, p+2 += p+3, ...). `parts`
/// is part-major — nparts contiguous slices of `len` floats. The tree shape
/// depends only on nparts, so the float summation order is frozen no matter
/// how many threads execute the (element-parallel, write-disjoint) merges.
/// Parts are consumed (mutated) by the merge.
void deterministic_reduce(float* parts, std::int64_t nparts, std::int64_t len,
                          float* out);

/// Chunk body of a parallel reduction: accumulates the half-open index range
/// [begin, end) into `acc` (a zeroed buffer of the caller's declared length).
using AccumulateFn =
    std::function<void(float* acc, std::int64_t begin, std::int64_t end)>;

/// Runs `fn` over [0, total) partitioned into reduce_chunk_count chunks, each
/// with a private zero-initialised accumulator of `len` floats, then merges
/// the accumulators into `out` (out[j] += sum) via deterministic_reduce.
/// When the partition collapses to a single chunk the body accumulates
/// straight into `out` — the serial fast path, still consistent at any
/// thread count because the chunk count never depends on it. `grain` has the
/// same meaning as in parallel_for (minimum indices per chunk; size it with
/// rows_grain so tiny batches skip the scratch buffers entirely).
void parallel_accumulate(std::int64_t total, std::int64_t grain,
                         std::int64_t len, const AccumulateFn& fn, float* out);

}  // namespace crisp::kernels
