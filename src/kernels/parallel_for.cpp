#include "kernels/parallel_for.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

namespace crisp::kernels {

namespace {

// Chunk count is capped at a fixed constant so boundaries stay a pure
// function of (total, grain): more chunks than threads gives dynamic load
// balance, while the cap bounds per-chunk dispatch overhead.
constexpr std::int64_t kMaxChunks = 64;

thread_local bool tl_in_parallel = false;

// Per-thread pool-width cap installed by ScopedThreadBudget (0 = uncapped).
thread_local int tl_thread_budget = 0;

int hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(std::min<unsigned>(hw, kMaxThreads));
}

int resolve_default_threads() {
  if (const char* env = std::getenv("CRISP_NUM_THREADS")) {
    const int v = parse_thread_count(env);
    if (v >= 1) return v;
    // An invalid value used to silently fall through to the hardware
    // default; keep the fallback (killing the process over an env typo is
    // worse) but say so once per resolution.
    std::fprintf(stderr,
                 "crisp: ignoring invalid CRISP_NUM_THREADS=\"%s\""
                 " (want an integer in [1, %d]); using %d hardware threads\n",
                 env, kMaxThreads, hardware_threads());
  }
  return hardware_threads();
}

std::atomic<int> g_num_threads{0};  // 0 = not yet resolved

struct Pool {
  // Serializes top-level parallel_for submissions; nested calls never reach
  // the pool (they run inline), so this cannot self-deadlock.
  std::mutex submit;

  std::mutex m;
  std::condition_variable cv_start;
  std::condition_variable cv_done;
  std::vector<std::thread> workers;  // detached; pool is never destroyed

  // Shared state of the in-flight loop, guarded by m (except `next`).
  std::uint64_t generation = 0;
  int active_target = 0;  // workers [0, active_target) join this generation
  int remaining = 0;      // participating workers not yet finished
  const RangeFn* fn = nullptr;
  std::int64_t total = 0;
  std::int64_t chunk = 1;
  std::int64_t nchunks = 0;
  std::atomic<std::int64_t> next{0};
  std::exception_ptr error;
};

Pool& pool() {
  // Leaky singleton: workers block on cv_start forever and die with the
  // process, which sidesteps static-destruction-order hazards.
  static Pool* p = new Pool;
  return *p;
}

void run_chunks(Pool& p) {
  const bool was_in_parallel = tl_in_parallel;
  tl_in_parallel = true;
  for (std::int64_t c = p.next.fetch_add(1, std::memory_order_relaxed);
       c < p.nchunks; c = p.next.fetch_add(1, std::memory_order_relaxed)) {
    const std::int64_t begin = c * p.chunk;
    const std::int64_t end = std::min(p.total, begin + p.chunk);
    try {
      (*p.fn)(begin, end);
    } catch (...) {
      std::lock_guard<std::mutex> lk(p.m);
      if (!p.error) p.error = std::current_exception();
    }
  }
  tl_in_parallel = was_in_parallel;
}

void worker_main(int index) {
  Pool& p = pool();
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(p.m);
      p.cv_start.wait(lk, [&] {
        return p.generation != seen && index < p.active_target;
      });
      seen = p.generation;
    }
    run_chunks(p);
    {
      std::lock_guard<std::mutex> lk(p.m);
      if (--p.remaining == 0) p.cv_done.notify_all();
    }
  }
}

void ensure_workers(Pool& p, int count) {
  while (static_cast<int>(p.workers.size()) < count) {
    p.workers.emplace_back(worker_main, static_cast<int>(p.workers.size()));
    p.workers.back().detach();
  }
}

}  // namespace

int parse_thread_count(const char* text) {
  if (text == nullptr) return 0;
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(text, &end, 10);
  if (end == text) return 0;  // no digits at all
  while (*end == ' ' || *end == '\t') ++end;
  if (*end != '\0') return 0;  // trailing garbage ("4x", "2.5", ...)
  if (errno == ERANGE || v < 1) return 0;
  return static_cast<int>(std::min<long>(v, kMaxThreads));
}

int num_threads() {
  int n = g_num_threads.load(std::memory_order_relaxed);
  if (n == 0) {
    n = resolve_default_threads();
    g_num_threads.store(n, std::memory_order_relaxed);
  }
  if (tl_thread_budget >= 1) n = std::min(n, tl_thread_budget);
  return n;
}

ScopedThreadBudget::ScopedThreadBudget(int max_threads)
    : previous_(tl_thread_budget) {
  if (max_threads >= 1) {
    const int cap = std::min(max_threads, kMaxThreads);
    tl_thread_budget = previous_ >= 1 ? std::min(previous_, cap) : cap;
  }
}

ScopedThreadBudget::~ScopedThreadBudget() { tl_thread_budget = previous_; }

int thread_budget() { return tl_thread_budget; }

void set_num_threads(int n) {
  g_num_threads.store(n >= 1 ? std::min(n, kMaxThreads)
                             : resolve_default_threads(),
                      std::memory_order_relaxed);
}

bool in_parallel_region() { return tl_in_parallel; }

void parallel_for(std::int64_t total, const RangeFn& fn, std::int64_t grain) {
  if (total <= 0) return;
  if (grain < 1) grain = 1;
  const std::int64_t chunk =
      std::max(grain, (total + kMaxChunks - 1) / kMaxChunks);
  const std::int64_t nchunks = (total + chunk - 1) / chunk;
  const int threads = num_threads();
  if (threads == 1 || nchunks == 1 || tl_in_parallel) {
    // Serial fallback. Deliberately does not set tl_in_parallel when run
    // from the top level, so a coarse loop that degenerates to one chunk
    // (e.g. batch == 1) still lets finer-grained kernels below it thread.
    fn(0, total);
    return;
  }

  Pool& p = pool();
  std::lock_guard<std::mutex> submit_lk(p.submit);
  const int participants = static_cast<int>(
      std::min<std::int64_t>(threads - 1, nchunks - 1));
  ensure_workers(p, participants);
  {
    std::lock_guard<std::mutex> lk(p.m);
    p.fn = &fn;
    p.total = total;
    p.chunk = chunk;
    p.nchunks = nchunks;
    p.next.store(0, std::memory_order_relaxed);
    p.error = nullptr;
    p.active_target = participants;
    p.remaining = participants;
    ++p.generation;
  }
  p.cv_start.notify_all();
  run_chunks(p);  // the caller works too
  std::unique_lock<std::mutex> lk(p.m);
  p.cv_done.wait(lk, [&] { return p.remaining == 0; });
  p.fn = nullptr;
  p.active_target = 0;
  if (p.error) {
    std::exception_ptr err = p.error;
    p.error = nullptr;
    lk.unlock();
    std::rethrow_exception(err);
  }
}

}  // namespace crisp::kernels
