// AVX2+FMA microkernels (8-lane float). This translation unit is the only
// one compiled with -mavx2 -mfma (see CMakeLists.txt), so every intrinsic
// stays behind the runtime dispatch in simd_dispatch.cpp — the rest of the
// library keeps the portable baseline ISA and a pre-AVX2 CPU never executes
// a byte of this file.
//
// Accumulation orders are fixed (j-tiles left to right, p ascending inside
// a tile, reduction lanes combined the same way every call), so results are
// deterministic and thread-count independent within this tier.
#include "kernels/simd_internal.h"

#if CRISP_HAVE_AVX2

#include <immintrin.h>

namespace crisp::kernels::simd {

namespace {

void avx2_axpy(float a, const float* x, float* y, std::int64_t n) {
  const __m256 av = _mm256_set1_ps(a);
  std::int64_t j = 0;
  for (; j + 16 <= n; j += 16) {
    const __m256 y0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(x + j),
                                      _mm256_loadu_ps(y + j));
    const __m256 y1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(x + j + 8),
                                      _mm256_loadu_ps(y + j + 8));
    _mm256_storeu_ps(y + j, y0);
    _mm256_storeu_ps(y + j + 8, y1);
  }
  for (; j + 8 <= n; j += 8)
    _mm256_storeu_ps(y + j, _mm256_fmadd_ps(av, _mm256_loadu_ps(x + j),
                                            _mm256_loadu_ps(y + j)));
  for (; j < n; ++j) y[j] += a * x[j];
}

void avx2_axpy_i8(std::int8_t q, float scale, const float* x, float* y,
                  std::int64_t n) {
  // int8 -> fp32 is exact, and the product is one IEEE multiply, so the
  // coefficient matches the scalar tier bit for bit; the accumulate reuses
  // the FMA axpy body above.
  avx2_axpy(scale * static_cast<float>(q), x, y, n);
}

float avx2_dot(const float* a, const float* b, std::int64_t n) {
  // Four independent 8-lane chains for ILP; combined pairwise at the end so
  // the reduction tree is the same for every call with the same n.
  __m256 acc0 = _mm256_setzero_ps(), acc1 = _mm256_setzero_ps();
  __m256 acc2 = _mm256_setzero_ps(), acc3 = _mm256_setzero_ps();
  std::int64_t p = 0;
  for (; p + 32 <= n; p += 32) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + p), _mm256_loadu_ps(b + p), acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + p + 8),
                           _mm256_loadu_ps(b + p + 8), acc1);
    acc2 = _mm256_fmadd_ps(_mm256_loadu_ps(a + p + 16),
                           _mm256_loadu_ps(b + p + 16), acc2);
    acc3 = _mm256_fmadd_ps(_mm256_loadu_ps(a + p + 24),
                           _mm256_loadu_ps(b + p + 24), acc3);
  }
  for (; p + 8 <= n; p += 8)
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + p), _mm256_loadu_ps(b + p), acc0);
  acc0 = _mm256_add_ps(_mm256_add_ps(acc0, acc1), _mm256_add_ps(acc2, acc3));
  const __m128 lo = _mm256_castps256_ps128(acc0);
  const __m128 hi = _mm256_extractf128_ps(acc0, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
  float acc = _mm_cvtss_f32(s);
  for (; p < n; ++p) acc += a[p] * b[p];
  return acc;
}

/// True when all mr packed A values at reduction step p are zero — the
/// vector version of the scalar kernels' per-element zero-skip. Hybrid
/// pruning zeroes whole column blocks across neighbouring rows, so this
/// fires often on CRISP-masked weights and never hurts dense ones much.
inline bool all_zero(const float* ap, std::int64_t mr) {
  switch (mr) {
    case 4: {
      const __m128 v = _mm_loadu_ps(ap);
      return _mm_movemask_ps(_mm_cmpneq_ps(v, _mm_setzero_ps())) == 0;
    }
    case 3:
      return ap[0] == 0.0f && ap[1] == 0.0f && ap[2] == 0.0f;
    case 2:
      return ap[0] == 0.0f && ap[1] == 0.0f;
    default:
      return ap[0] == 0.0f;
  }
}

/// One mr x 16 C tile: accumulators live in registers across the whole
/// reduction panel, then merge into memory once.
template <int MR>
inline void tile16(const float* apack, std::int64_t kc, const float* b,
                   std::int64_t ldb, float* c, std::int64_t ldc,
                   std::int64_t j) {
  __m256 acc0[MR], acc1[MR];
  for (int r = 0; r < MR; ++r) {
    acc0[r] = _mm256_loadu_ps(c + r * ldc + j);
    acc1[r] = _mm256_loadu_ps(c + r * ldc + j + 8);
  }
  for (std::int64_t p = 0; p < kc; ++p) {
    const float* ap = apack + p * MR;
    if (all_zero(ap, MR)) continue;
    const __m256 b0 = _mm256_loadu_ps(b + p * ldb + j);
    const __m256 b1 = _mm256_loadu_ps(b + p * ldb + j + 8);
    for (int r = 0; r < MR; ++r) {
      const __m256 av = _mm256_set1_ps(ap[r]);
      acc0[r] = _mm256_fmadd_ps(av, b0, acc0[r]);
      acc1[r] = _mm256_fmadd_ps(av, b1, acc1[r]);
    }
  }
  for (int r = 0; r < MR; ++r) {
    _mm256_storeu_ps(c + r * ldc + j, acc0[r]);
    _mm256_storeu_ps(c + r * ldc + j + 8, acc1[r]);
  }
}

template <int MR>
inline void tile8(const float* apack, std::int64_t kc, const float* b,
                  std::int64_t ldb, float* c, std::int64_t ldc,
                  std::int64_t j) {
  __m256 acc[MR];
  for (int r = 0; r < MR; ++r) acc[r] = _mm256_loadu_ps(c + r * ldc + j);
  for (std::int64_t p = 0; p < kc; ++p) {
    const float* ap = apack + p * MR;
    if (all_zero(ap, MR)) continue;
    const __m256 b0 = _mm256_loadu_ps(b + p * ldb + j);
    for (int r = 0; r < MR; ++r)
      acc[r] = _mm256_fmadd_ps(_mm256_set1_ps(ap[r]), b0, acc[r]);
  }
  for (int r = 0; r < MR; ++r) _mm256_storeu_ps(c + r * ldc + j, acc[r]);
}

template <int MR>
void panel_impl(const float* apack, std::int64_t kc, const float* b,
                std::int64_t ldb, float* c, std::int64_t ldc,
                std::int64_t n) {
  std::int64_t j = 0;
  for (; j + 16 <= n; j += 16) tile16<MR>(apack, kc, b, ldb, c, ldc, j);
  if (j + 8 <= n) {
    tile8<MR>(apack, kc, b, ldb, c, ldc, j);
    j += 8;
  }
  if (j < n) {
    // Scalar column tail (< 8 lanes), same p-ascending order.
    for (std::int64_t p = 0; p < kc; ++p) {
      const float* ap = apack + p * MR;
      const float* brow = b + p * ldb;
      for (int r = 0; r < MR; ++r) {
        const float av = ap[r];
        if (av == 0.0f) continue;
        float* crow = c + r * ldc;
        for (std::int64_t jj = j; jj < n; ++jj) crow[jj] += av * brow[jj];
      }
    }
  }
}

void avx2_gemm_panel(const float* apack, std::int64_t mr, std::int64_t kc,
                     const float* b, std::int64_t ldb, float* c,
                     std::int64_t ldc, std::int64_t n) {
  switch (mr) {
    case 4:
      panel_impl<4>(apack, kc, b, ldb, c, ldc, n);
      break;
    case 3:
      panel_impl<3>(apack, kc, b, ldb, c, ldc, n);
      break;
    case 2:
      panel_impl<2>(apack, kc, b, ldb, c, ldc, n);
      break;
    default:
      panel_impl<1>(apack, kc, b, ldb, c, ldc, n);
      break;
  }
}

constexpr Microkernels kAvx2Kernels{avx2_axpy, avx2_axpy_i8, avx2_dot,
                                    avx2_gemm_panel, Tier::kAvx2, "avx2"};

}  // namespace

const Microkernels& detail_avx2_kernels() { return kAvx2Kernels; }

}  // namespace crisp::kernels::simd

#endif  // CRISP_HAVE_AVX2
