#include "kernels/reduce.h"

#include <algorithm>
#include <memory>

#include "kernels/parallel_for.h"

namespace crisp::kernels {

std::int64_t reduce_chunk_width(std::int64_t total, std::int64_t grain) {
  if (total <= 0) return 0;
  if (grain < 1) grain = 1;
  return std::max(grain, (total + kMaxReduceChunks - 1) / kMaxReduceChunks);
}

std::int64_t reduce_chunk_count(std::int64_t total, std::int64_t grain) {
  if (total <= 0) return 0;
  const std::int64_t width = reduce_chunk_width(total, grain);
  return (total + width - 1) / width;
}

void deterministic_reduce(float* parts, std::int64_t nparts, std::int64_t len,
                          float* out) {
  if (nparts <= 0 || len <= 0) return;
  // Stride-doubling pairwise tree: each level halves the live part count.
  // Every merge is element-parallel with disjoint writes, so the threads
  // only change who executes a merge, never the order values combine in.
  for (std::int64_t stride = 1; stride < nparts; stride *= 2) {
    for (std::int64_t i = 0; i + stride < nparts; i += 2 * stride) {
      float* dst = parts + i * len;
      const float* src = parts + (i + stride) * len;
      parallel_for(
          len,
          [&](std::int64_t j0, std::int64_t j1) {
            for (std::int64_t j = j0; j < j1; ++j) dst[j] += src[j];
          },
          rows_grain(1));
    }
  }
  const float* sum = parts;
  parallel_for(
      len,
      [&](std::int64_t j0, std::int64_t j1) {
        for (std::int64_t j = j0; j < j1; ++j) out[j] += sum[j];
      },
      rows_grain(1));
}

void parallel_accumulate(std::int64_t total, std::int64_t grain,
                         std::int64_t len, const AccumulateFn& fn, float* out) {
  if (total <= 0 || len <= 0) return;
  const std::int64_t nchunks = reduce_chunk_count(total, grain);
  if (nchunks <= 1) {
    // One chunk ⇒ no scratch: accumulate straight into the destination.
    // Still thread-count independent — the chunk count is a pure function
    // of (total, grain).
    fn(out, 0, total);
    return;
  }
  const std::int64_t width = reduce_chunk_width(total, grain);
  // Scratch is allocated uninitialised (new[] without value-init): each
  // chunk zeroes its own slice inside the parallel region, so the
  // gradient-sized clears run on the workers instead of serially on the
  // caller.
  std::unique_ptr<float[]> scratch(
      new float[static_cast<std::size_t>(nchunks * len)]);
  float* parts = scratch.get();
  parallel_for(
      nchunks,
      [&](std::int64_t c0, std::int64_t c1) {
        for (std::int64_t c = c0; c < c1; ++c) {
          float* acc = parts + c * len;
          std::fill(acc, acc + len, 0.0f);
          fn(acc, c * width, std::min(total, (c + 1) * width));
        }
      },
      /*grain=*/1);
  deterministic_reduce(parts, nchunks, len, out);
}

}  // namespace crisp::kernels
