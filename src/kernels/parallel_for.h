// Persistent worker pool behind every parallel kernel in crisp::kernels.
//
// parallel_for partitions [0, total) into contiguous chunks and hands each
// chunk to exactly one thread. Chunk boundaries depend only on `total` and
// `grain` — never on the thread count — and every output element is written
// by the thread that owns its chunk, so kernels built on this primitive
// produce bit-identical results at any thread count (the property
// tests/test_kernels.cpp locks in).
//
// Thread count resolution order:
//   1. set_num_threads(n) with n >= 1 — programmatic override;
//   2. the CRISP_NUM_THREADS environment variable, read once at first use;
//   3. std::thread::hardware_concurrency().
// A count of 1 (or a nested call from inside a parallel region) runs the
// body inline on the calling thread — the safe serial fallback.
#pragma once

#include <cstdint>
#include <functional>

namespace crisp::kernels {

/// Body of a parallel loop: processes the half-open index range [begin, end).
using RangeFn = std::function<void(std::int64_t begin, std::int64_t end)>;

/// Hard cap on the worker pool size (and on CRISP_NUM_THREADS values).
constexpr int kMaxThreads = 256;

/// Strict parser for CRISP_NUM_THREADS-style values: returns the thread
/// count clamped to [1, kMaxThreads] when `text` is a positive integer
/// (surrounding whitespace allowed), and 0 for anything else — empty,
/// non-numeric, trailing garbage, zero, or negative. Callers treat 0 as
/// "invalid, warn and fall back to the hardware default".
int parse_thread_count(const char* text);

/// Threads the next parallel_for will use (>= 1, after env resolution).
int num_threads();

/// Overrides the thread count. n >= 1 pins it; n == 0 resets to the
/// CRISP_NUM_THREADS / hardware default. Growing the pool is lazy; shrinking
/// only idles workers (they are reused if the count grows again).
void set_num_threads(int n);

/// True while the calling thread is executing inside a parallel_for body.
/// Nested parallel_for calls detect this and degrade to serial execution.
bool in_parallel_region();

/// Caps the pool width of every parallel_for issued from the *current
/// thread* while the scope is alive, without touching the process-wide
/// set_num_threads state. num_threads() reports the capped value, so a
/// serving engine pinned to a budget of 2 wakes at most one pool worker per
/// loop while another engine (or the trainer) keeps its own budget — the
/// knob that lets several tenants share one process without
/// oversubscribing the pool. Budgets nest (the tightest cap wins while
/// inner scopes live, and each scope restores what it found); a budget of
/// 0 means "no cap from this scope". Results never change — chunk
/// boundaries stay a pure function of (total, grain) — only how many
/// workers participate does.
class ScopedThreadBudget {
 public:
  explicit ScopedThreadBudget(int max_threads);
  ~ScopedThreadBudget();
  ScopedThreadBudget(const ScopedThreadBudget&) = delete;
  ScopedThreadBudget& operator=(const ScopedThreadBudget&) = delete;

 private:
  int previous_;
};

/// The calling thread's active budget cap (0 when uncapped).
int thread_budget();

/// Runs fn over disjoint chunks covering [0, total). Chunks are at least
/// `grain` indices wide; ranges arrive in unspecified temporal order but
/// their boundaries are a pure function of (total, grain), independent of
/// the thread count. Exceptions thrown by fn are rethrown on the caller
/// after all chunks finish. total <= 0 is a no-op.
void parallel_for(std::int64_t total, const RangeFn& fn, std::int64_t grain = 1);

/// Minimum per-chunk work (in MACs or comparable scalar ops) that amortizes
/// one pool dispatch. Kernels size their grain with rows_grain so tiny
/// operations — bench-scale layers, single-sample inference — collapse to a
/// single chunk and run inline instead of waking the pool.
constexpr std::int64_t kMinChunkWork = 32768;

/// Rows per chunk such that a chunk carries at least kMinChunkWork given
/// the (approximate) cost of one row. Results never depend on this — every
/// row is self-contained — only dispatch overhead does.
inline std::int64_t rows_grain(std::int64_t work_per_row) {
  if (work_per_row < 1) work_per_row = 1;
  return (kMinChunkWork + work_per_row - 1) / work_per_row;
}

}  // namespace crisp::kernels
