#include "deploy/packed_model.h"

#include <fstream>
#include <utility>

#include "tensor/crc32.h"
#include "tensor/pod_stream.h"
#include "testing/fault_injection.h"

namespace crisp::deploy {

namespace {

constexpr std::uint64_t kMagic = 0x4352535050414B44ull;  // "CRSPPAKD"
// v2: CrispMatrix entries carry an optional int8 payload (and may omit the
// fp32 slots). v1 files lack the payload flag and are rejected.
// v3: a CRC32C trailer over everything after the version field, and every
// embedded QuantizedPayload carries its own trailer. v2 files still load
// (crc_verified() == false); both versions reject trailing bytes.
constexpr std::uint32_t kVersion = 3;

constexpr const char* kCtx = "PackedModel::load";

using io::write_pod;

template <typename T>
T read_pod(std::istream& is) {
  return io::read_pod<T>(is, kCtx);
}

void write_string(std::ostream& os, const std::string& s) {
  write_pod(os, static_cast<std::uint64_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& is) {
  const auto len = read_pod<std::uint64_t>(is);
  CRISP_CHECK(len < (1u << 20), "PackedModel::load: implausible string length");
  std::string s(static_cast<std::size_t>(len), '\0');
  is.read(s.data(), static_cast<std::streamsize>(len));
  CRISP_CHECK(is.good(), "PackedModel::load: truncated string");
  return s;
}

void write_shape(std::ostream& os, const Shape& shape) {
  write_pod(os, static_cast<std::uint64_t>(shape.size()));
  for (const std::int64_t d : shape) write_pod(os, d);
}

Shape read_shape(std::istream& is) {
  const auto rank = read_pod<std::uint64_t>(is);
  CRISP_CHECK(rank <= 8, "PackedModel::load: implausible tensor rank");
  Shape shape(static_cast<std::size_t>(rank));
  for (auto& d : shape) {
    d = read_pod<std::int64_t>(is);
    CRISP_CHECK(d >= 0, "PackedModel::load: negative dimension");
  }
  return shape;
}

void write_tensor(std::ostream& os, const Tensor& t) {
  write_shape(os, t.shape());
  os.write(reinterpret_cast<const char*>(t.data()),
           static_cast<std::streamsize>(t.numel()) *
               static_cast<std::streamsize>(sizeof(float)));
}

Tensor read_tensor(std::istream& is) {
  Tensor t(read_shape(is));
  is.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(t.numel()) *
              static_cast<std::streamsize>(sizeof(float)));
  CRISP_CHECK(is.good(), "PackedModel::load: truncated tensor payload");
  return t;
}

}  // namespace

PackedModel PackedModel::pack(nn::Sequential& model, std::int64_t block,
                              std::int64_t n, std::int64_t m) {
  PackedModel out;
  out.n_ = n;
  out.m_ = m;
  out.block_ = block;
  TensorMap state = model.state_dict();
  for (nn::Parameter* p : model.prunable_parameters()) {
    if (!p->has_mask()) continue;  // never pruned — carried dense
    const Tensor eff = p->effective_value();
    PackedEntry entry;
    entry.name = p->name;
    entry.shape = p->value.shape();
    entry.matrix = sparse::CrispMatrix::encode(
        as_matrix(eff, p->matrix_rows, p->matrix_cols), block, n, m);
    state.erase(p->name);
    out.entries_.push_back(std::move(entry));
  }
  out.dense_ = std::move(state);
  return out;
}

PackedModel PackedModel::assemble(std::int64_t block, std::int64_t n,
                                  std::int64_t m,
                                  std::vector<PackedEntry> entries,
                                  TensorMap dense_state) {
  PackedModel out;
  out.n_ = n;
  out.m_ = m;
  out.block_ = block;
  for (const PackedEntry& e : entries) {
    CRISP_CHECK(e.matrix.n() == n && e.matrix.m() == m &&
                    e.matrix.grid().block == block,
                "PackedModel::assemble: entry " << e.name << " is "
                    << e.matrix.n() << ":" << e.matrix.m() << "/block "
                    << e.matrix.grid().block << ", artifact is " << n << ":"
                    << m << "/block " << block);
    CRISP_CHECK(shape_numel(e.shape) == e.matrix.rows() * e.matrix.cols(),
                "PackedModel::assemble: entry " << e.name
                                                << " shape/matrix mismatch");
  }
  out.entries_ = std::move(entries);
  out.dense_ = std::move(dense_state);
  return out;
}

void PackedModel::save(const std::string& path, std::uint32_t version) const {
  testing::maybe_fail("packedmodel.save");
  CRISP_CHECK(version == 2 || version == kVersion,
              "PackedModel::save: cannot write version " << version);
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  CRISP_CHECK(os.is_open(), "PackedModel::save: cannot open " << path);
  write_pod(os, kMagic);
  write_pod(os, version);
  io::Crc32Ostream co(os);
  write_pod(co, n_);
  write_pod(co, m_);
  write_pod(co, block_);
  write_pod(co, static_cast<std::uint64_t>(entries_.size()));
  for (const PackedEntry& e : entries_) {
    write_string(co, e.name);
    write_shape(co, e.shape);
    e.matrix.write(co, /*payload_crc=*/version >= 3);
  }
  write_pod(co, static_cast<std::uint64_t>(dense_.size()));
  for (const auto& [name, tensor] : dense_) {
    write_string(co, name);
    write_tensor(co, tensor);
  }
  if (version >= 3) write_pod(os, co.crc());
  CRISP_CHECK(os.good(), "PackedModel::save: write failed for " << path);
}

PackedModel PackedModel::load(const std::string& path) {
  testing::maybe_fail("packedmodel.load");
  std::ifstream is(path, std::ios::binary);
  CRISP_CHECK(is.is_open(), "PackedModel::load: cannot open " << path);
  CRISP_CHECK(read_pod<std::uint64_t>(is) == kMagic,
              path << " is not a packed CRISP model");
  const auto version = read_pod<std::uint32_t>(is);
  CRISP_CHECK(version == 2 || version == kVersion,
              "unsupported packed-model version in " << path);
  io::Crc32Istream ci(is);
  PackedModel out;
  out.n_ = io::read_pod<std::int64_t>(ci, kCtx);
  out.m_ = io::read_pod<std::int64_t>(ci, kCtx);
  out.block_ = io::read_pod<std::int64_t>(ci, kCtx);
  const auto entry_count = io::read_pod<std::uint64_t>(ci, kCtx);
  out.entries_.reserve(static_cast<std::size_t>(entry_count));
  for (std::uint64_t i = 0; i < entry_count; ++i) {
    PackedEntry e;
    e.name = read_string(ci);
    e.shape = read_shape(ci);
    e.matrix = sparse::CrispMatrix::read(ci, /*payload_crc=*/version >= 3);
    CRISP_CHECK(shape_numel(e.shape) ==
                    e.matrix.rows() * e.matrix.cols(),
                "PackedModel::load: entry " << e.name
                                            << " shape/matrix mismatch");
    out.entries_.push_back(std::move(e));
  }
  const auto dense_count = io::read_pod<std::uint64_t>(ci, kCtx);
  for (std::uint64_t i = 0; i < dense_count; ++i) {
    std::string name = read_string(ci);
    out.dense_.emplace(std::move(name), read_tensor(ci));
  }
  if (version >= 3) {
    const std::uint32_t want = ci.crc();
    const auto got = io::read_pod<std::uint32_t>(is, kCtx);
    CRISP_CHECK(got == want,
                kCtx << ": checksum mismatch (artifact corrupt) in " << path);
    out.crc_verified_ = true;
  }
  // Either version must end exactly here: trailing bytes mean the file is
  // not what the writer produced (appended garbage, a concatenated file).
  CRISP_CHECK(is.peek() == std::char_traits<char>::eof(),
              kCtx << ": trailing bytes after artifact in " << path);
  return out;
}

void PackedModel::unpack_into(nn::Sequential& model) const {
  TensorMap full = dense_;
  for (const PackedEntry& e : entries_)
    full.emplace(e.name, e.matrix.decode().reshaped(e.shape));
  model.load_state_dict(full);

  // Re-install masks so MAC accounting and any later fine-tuning see the
  // sparsity. A weight that trained to exactly 0.0 is indistinguishable
  // from a pruned one here — functionally identical in forward, and it
  // merely stays frozen under STE updates.
  for (nn::Parameter* p : model.prunable_parameters()) {
    const PackedEntry* e = find(p->name);
    if (e == nullptr) continue;
    p->ensure_mask();
    for (std::int64_t i = 0; i < p->value.numel(); ++i)
      p->mask[i] = p->value[i] != 0.0f ? 1.0f : 0.0f;
  }
}

void PackedModel::quantize_payloads(bool keep_fp32) {
  for (PackedEntry& e : entries_) {
    if (!e.matrix.has_quantized()) e.matrix.quantize_payload();
    if (!keep_fp32) e.matrix.release_fp32_payload();
  }
}

bool PackedModel::quantized() const {
  for (const PackedEntry& e : entries_) {
    // A fully-pruned entry has no slots — nothing to quantize, and it must
    // not pin the whole artifact's predicates to false.
    if (e.matrix.slot_count() == 0) continue;
    if (!e.matrix.has_quantized()) return false;
  }
  return !entries_.empty();
}

bool PackedModel::serves_int8() const {
  for (const PackedEntry& e : entries_) {
    if (e.matrix.slot_count() == 0) continue;
    if (!e.matrix.has_quantized() || e.matrix.has_fp32()) return false;
  }
  return !entries_.empty();
}

const PackedEntry* PackedModel::find(const std::string& name) const {
  for (const PackedEntry& e : entries_)
    if (e.name == name) return &e;
  return nullptr;
}

PackedStats PackedModel::stats() const {
  PackedStats s;
  for (const PackedEntry& e : entries_) {
    s.model_dense_bits += shape_numel(e.shape) * 32;
    s.packed_payload_bits += e.matrix.payload_bits();
    s.packed_metadata_bits += e.matrix.metadata_bits();
  }
  for (const auto& [name, tensor] : dense_) {
    s.model_dense_bits += tensor.numel() * 32;
    s.carried_dense_bits += tensor.numel() * 32;
  }
  return s;
}

}  // namespace crisp::deploy
