#include "deploy/packed_exec.h"

#include <utility>

namespace crisp::deploy {

namespace {

void walk(nn::Layer* layer, std::vector<nn::Layer*>& out) {
  out.push_back(layer);
  for (nn::Layer* child : layer->children()) walk(child, out);
}

}  // namespace

std::vector<std::string> install_kernel_hooks(
    nn::Sequential& model, const std::vector<NamedKernel>& kernels) {
  std::vector<nn::Layer*> layers;
  walk(&model, layers);

  std::vector<std::string> attached;
  for (nn::Layer* layer : layers) {
    for (nn::Parameter* p : layer->parameters()) {
      if (!p->prunable) continue;
      const NamedKernel* named = nullptr;
      for (const NamedKernel& k : kernels) {
        if (k.name == p->name) {
          named = &k;
          break;
        }
      }
      if (named == nullptr) continue;
      CRISP_CHECK(named->kernel != nullptr,
                  "install_kernel_hooks: null kernel for " << named->name);
      CRISP_CHECK(named->kernel->rows() == p->matrix_rows &&
                      named->kernel->cols() == p->matrix_cols,
                  "install_kernel_hooks: "
                      << p->name << " expects " << p->matrix_rows << "x"
                      << p->matrix_cols << ", kernel holds "
                      << named->kernel->rows() << "x" << named->kernel->cols());
      // Hooked through the SpmmKernel interface: packed inference runs the
      // same threaded, block-row-partitioned kernels as everything else,
      // and the hook stays format-agnostic across CrispMatrix, tenant
      // overlays, and whatever encodings come later. The shared_ptr rides
      // in the closure, so the kernel stays valid as long as the hook does.
      if (layer->set_gemm_hook(
              [kernel = named->kernel](ConstMatrixView x, MatrixView y) {
                kernel->spmm(x, y);
              })) {
        attached.push_back(p->name);
      }
    }
  }
  return attached;
}

std::vector<std::string> install_packed_hooks(
    nn::Sequential& model, std::shared_ptr<const PackedModel> packed) {
  CRISP_CHECK(packed != nullptr, "install_packed_hooks: null artifact");
  std::vector<NamedKernel> named;
  named.reserve(packed->entries().size());
  for (const PackedEntry& entry : packed->entries())
    // Aliasing shared_ptr: each kernel pointer is the entry's CrispMatrix,
    // but the refcount (and lifetime) is the whole artifact's.
    named.push_back({entry.name, std::shared_ptr<const kernels::SpmmKernel>(
                                     packed, &entry.matrix)});
  return install_kernel_hooks(model, named);
}

}  // namespace crisp::deploy
