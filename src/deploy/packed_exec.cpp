#include "deploy/packed_exec.h"

#include <utility>

#include "kernels/spmm_kernel.h"

namespace crisp::deploy {

namespace {

void walk(nn::Layer* layer, std::vector<nn::Layer*>& out) {
  out.push_back(layer);
  for (nn::Layer* child : layer->children()) walk(child, out);
}

}  // namespace

std::vector<std::string> install_packed_hooks(
    nn::Sequential& model, std::shared_ptr<const PackedModel> packed) {
  CRISP_CHECK(packed != nullptr, "install_packed_hooks: null artifact");
  std::vector<nn::Layer*> layers;
  walk(&model, layers);

  std::vector<std::string> attached;
  for (nn::Layer* layer : layers) {
    for (nn::Parameter* p : layer->parameters()) {
      if (!p->prunable) continue;
      const PackedEntry* entry = packed->find(p->name);
      if (entry == nullptr) continue;
      CRISP_CHECK(entry->matrix.rows() == p->matrix_rows &&
                      entry->matrix.cols() == p->matrix_cols,
                  "install_packed_hooks: "
                      << p->name << " expects " << p->matrix_rows << "x"
                      << p->matrix_cols << ", artifact holds "
                      << entry->matrix.rows() << "x" << entry->matrix.cols());
      // Hooked through the SpmmKernel interface: packed inference runs the
      // same threaded, block-row-partitioned CRISP kernel as everything
      // else, and the hook stays format-agnostic if the artifact ever
      // carries other encodings. The shared_ptr rides in the closure, so
      // the kernel pointer stays valid for as long as the hook exists.
      const kernels::SpmmKernel* kernel = &entry->matrix;
      if (layer->set_gemm_hook(
              [owner = packed, kernel](ConstMatrixView x, MatrixView y) {
                kernel->spmm(x, y);
              })) {
        attached.push_back(p->name);
      }
    }
  }
  return attached;
}

std::vector<std::string> attach_packed(nn::Sequential& model,
                                       const PackedModel& packed) {
  return install_packed_hooks(model,
                              std::make_shared<const PackedModel>(packed));
}

void detach_packed(nn::Sequential& model) {
  std::vector<nn::Layer*> layers;
  walk(&model, layers);
  for (nn::Layer* layer : layers) layer->set_gemm_hook(nullptr);
}

}  // namespace crisp::deploy
