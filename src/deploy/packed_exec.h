// Packed sparse execution — inference straight from the CRISP format.
//
// attach_packed() pairs every GEMM layer whose prunable weight has an entry
// in a PackedModel with that entry's CrispMatrix, installing an eval-mode
// GEMM hook (nn::GemmHook). Subsequent predict() calls then multiply with
// the compressed representation — block-column gather + offset-MUX
// activation selection, the software analogue of the CRISP-STC datapath
// (paper Fig. 6) — instead of the dense weights. Training forwards are
// unaffected.
#pragma once

#include <string>
#include <vector>

#include "deploy/packed_model.h"
#include "nn/sequential.h"

namespace crisp::deploy {

/// Installs hooks on every layer whose prunable parameter name appears in
/// `packed`. Returns the names attached. `packed` must outlive every
/// eval-mode forward of `model` until detach_packed (the hooks hold
/// pointers into it). Layers that refuse hooks (grouped convs) are skipped.
std::vector<std::string> attach_packed(nn::Sequential& model,
                                       const PackedModel& packed);

/// Removes every packed-execution hook from the model.
void detach_packed(nn::Sequential& model);

}  // namespace crisp::deploy
