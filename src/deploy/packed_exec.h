// Packed sparse execution — inference straight from the CRISP format.
//
// install_packed_hooks() pairs every GEMM layer whose prunable weight has
// an entry in a PackedModel with that entry's CrispMatrix, installing an
// eval-mode GEMM hook (nn::GemmHook). Subsequent eval forwards then
// multiply with the compressed representation — block-column gather +
// offset-MUX activation selection, the software analogue of the CRISP-STC
// datapath (paper Fig. 6) — instead of the dense weights. Training
// forwards are unaffected. Every hook shares ownership of the artifact, so
// there is no use-after-free window no matter when the caller's PackedModel
// goes out of scope.
//
// This header is the low-level surface; services should serve through
// serve::CompiledModel + serve::Engine (serve/engine.h), which add an
// immutable compiled artifact and a batched, thread-budgeted front end.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "deploy/packed_model.h"
#include "nn/sequential.h"

namespace crisp::deploy {

/// Installs hooks on every layer whose prunable parameter name appears in
/// `packed`; each hook keeps `packed` alive via shared ownership. Returns
/// the names attached. Layers that refuse hooks (grouped convs) are
/// skipped.
std::vector<std::string> install_packed_hooks(
    nn::Sequential& model, std::shared_ptr<const PackedModel> packed);

/// DEPRECATED thin wrapper: copies `packed` into a shared artifact and
/// installs hooks on it, so the historical "`packed` must outlive every
/// eval-mode forward" contract no longer applies — the hooks own the copy.
/// New code should build a serve::CompiledModel (or call
/// install_packed_hooks with a shared_ptr to avoid the copy).
std::vector<std::string> attach_packed(nn::Sequential& model,
                                       const PackedModel& packed);

/// Removes every packed-execution hook from the model (and with it the
/// hooks' shared ownership of the artifact).
void detach_packed(nn::Sequential& model);

}  // namespace crisp::deploy
