// Packed sparse execution — inference straight from the CRISP format.
//
// install_kernel_hooks() pairs every GEMM layer whose prunable weight has
// a named SpmmKernel with that kernel, installing an eval-mode GEMM hook
// (nn::GemmHook). Subsequent eval forwards then multiply with the
// compressed representation — block-column gather + offset-MUX activation
// selection, the software analogue of the CRISP-STC datapath (paper
// Fig. 6) — instead of the dense weights. Training forwards are
// unaffected. Every hook shares ownership of its kernel, so there is no
// use-after-free window no matter when the caller's artifact goes out of
// scope.
//
// Two producers feed this surface today: install_packed_hooks() wires a
// whole PackedModel (each entry's CrispMatrix aliased out of the shared
// artifact), and the tenant overlay path (tenant/overlay.h) wires
// per-tenant OverlayMatrix kernels that execute against a shared base
// arena. Both end up here because a hook does not care what owns the
// kernel — only that the shared_ptr in its closure keeps it alive.
//
// This header is the low-level surface; services should serve through
// serve::CompiledModel + serve::Engine (serve/engine.h), which add an
// immutable compiled artifact and a batched, thread-budgeted front end.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "deploy/packed_model.h"
#include "kernels/spmm_kernel.h"
#include "nn/sequential.h"

namespace crisp::deploy {

/// One kernel destined for the layer whose prunable parameter carries
/// `name`. The shared_ptr may alias into a larger owner (a PackedModel, a
/// tenant base arena) — the hook only needs it to keep the kernel alive.
struct NamedKernel {
  std::string name;
  std::shared_ptr<const kernels::SpmmKernel> kernel;
};

/// Installs hooks on every layer whose prunable parameter name appears in
/// `kernels` (shape-checked against the parameter's matrix view); each
/// hook keeps its kernel alive via shared ownership. Returns the names
/// attached. Layers that refuse hooks (grouped convs) are skipped.
std::vector<std::string> install_kernel_hooks(
    nn::Sequential& model, const std::vector<NamedKernel>& kernels);

/// Installs hooks on every layer whose prunable parameter name appears in
/// `packed`; each hook keeps `packed` alive via shared ownership (the
/// per-entry kernels alias into the artifact). Returns the names attached.
std::vector<std::string> install_packed_hooks(
    nn::Sequential& model, std::shared_ptr<const PackedModel> packed);

}  // namespace crisp::deploy
