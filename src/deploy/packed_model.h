// Packed deployment artifact — Fig. 5 step 5 applied to a whole model.
//
// After CRISP pruning, every prunable weight matrix satisfies the hybrid
// pattern and compresses into the CRISP storage format (block-column
// indices + N:M offset metadata, sparse/formats/crisp_format.h). A
// PackedModel bundles those compressed matrices with the model's remaining
// dense state (biases, BatchNorm parameters and running statistics,
// non-prunable weights) into a single artifact that can be saved, shipped
// to the edge device, and either decoded back into a model or executed
// directly through the packed GEMM kernels (deploy/packed_exec.h).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/sequential.h"
#include "sparse/formats/crisp_format.h"

namespace crisp::deploy {

struct PackedEntry {
  std::string name;                 ///< parameter name ("stage3.conv2.weight")
  std::vector<std::int64_t> shape;  ///< original tensor shape (S,R,kh,kw)
  sparse::CrispMatrix matrix;       ///< hybrid-encoded effective weight
};

/// Storage breakdown in bits. "dense" sizes assume 32-bit floats; payload
/// bits reflect what each entry actually stores (fp32 slots, int8 slots +
/// scales after quantize_payloads, or both).
struct PackedStats {
  std::int64_t model_dense_bits = 0;    ///< every parameter + buffer, dense
  std::int64_t packed_payload_bits = 0; ///< stored value slots (fp32/int8)
  std::int64_t packed_metadata_bits = 0;///< block indices + intra-M offsets
  std::int64_t carried_dense_bits = 0;  ///< state that stays dense
  std::int64_t total_bits() const {
    return packed_payload_bits + packed_metadata_bits + carried_dense_bits;
  }
  /// total packed size / dense size — the shipping-size reduction.
  double compression() const {
    return model_dense_bits == 0
               ? 1.0
               : static_cast<double>(total_bits()) /
                     static_cast<double>(model_dense_bits);
  }
};

class PackedModel {
 public:
  /// Compresses `model`. Every prunable parameter that carries a mask is
  /// encoded as a CrispMatrix over its effective (masked) values; `block`,
  /// `n`, `m` must match the pruner configuration or encoding throws
  /// (pattern violation). Unmasked parameters and all buffers are carried
  /// dense.
  static PackedModel pack(nn::Sequential& model, std::int64_t block,
                          std::int64_t n, std::int64_t m);

  /// Assembles an artifact from already-encoded entries plus the dense
  /// state they ride with — the tenant delta-apply path
  /// (tenant::MaskDelta::apply), which restricts a base artifact's
  /// matrices without round-tripping through a model. Every entry must
  /// match the stated N:M geometry and its own declared shape.
  static PackedModel assemble(std::int64_t block, std::int64_t n,
                              std::int64_t m,
                              std::vector<PackedEntry> entries,
                              TensorMap dense_state);

  /// Binary round-trip. `load` throws on missing file, bad magic/version,
  /// truncation, trailing bytes after the artifact, or (v3) a CRC32C
  /// mismatch. Format v3 trails the whole stream — and every embedded
  /// quantized payload — with a CRC32C; v2 files (no checksums) still
  /// load, with crc_verified() == false. v1 files lack the int8 payload
  /// flag and are rejected; re-pack from the source model. The `version`
  /// parameter exists so compatibility tests can write the legacy v2
  /// layout — production callers always write the default.
  void save(const std::string& path, std::uint32_t version = 3) const;
  static PackedModel load(const std::string& path);

  /// True when load() verified a CRC32C trailer (v3 files). False for a
  /// legacy v2 load and for artifacts built in-process (pack/assemble) —
  /// there was no stream whose integrity could be checked.
  bool crc_verified() const { return crc_verified_; }

  /// Re-encodes every entry's value payload as symmetric int8 with one
  /// scale per block-row (sparse/quantized.h). With keep_fp32 the fp32
  /// slots stay too (the artifact serves bit-exact fp32 and can still ship
  /// int8 sizes); without it they are dropped, shrinking the artifact to
  /// roughly a quarter of its payload bytes — execution, decode, and
  /// unpack_into then run from int8 within the per-scale error bound.
  void quantize_payloads(bool keep_fp32 = false);

  /// True when every packed entry carries an int8 payload (false for an
  /// artifact with no packed entries — there is nothing quantized to serve).
  bool quantized() const;

  /// True when every packed entry *executes* from int8: it carries a
  /// quantized payload and its fp32 slots are released (spmm() prefers
  /// fp32 whenever present, so a keep_fp32 artifact is quantized() but not
  /// serves_int8()).
  bool serves_int8() const;

  /// Decodes the artifact back into `model`: packed entries become masked
  /// weights (mask = surviving pattern, so sparse MAC accounting and
  /// further fine-tuning keep working), dense state restores verbatim.
  /// Throws if `model`'s architecture does not match the artifact.
  void unpack_into(nn::Sequential& model) const;

  const std::vector<PackedEntry>& entries() const { return entries_; }
  const TensorMap& dense_state() const { return dense_; }
  /// nullptr when `name` is not packed.
  const PackedEntry* find(const std::string& name) const;

  PackedStats stats() const;

  std::int64_t n() const { return n_; }
  std::int64_t m() const { return m_; }
  std::int64_t block() const { return block_; }

 private:
  std::int64_t n_ = 0, m_ = 0, block_ = 0;
  std::vector<PackedEntry> entries_;
  TensorMap dense_;
  bool crc_verified_ = false;
};

}  // namespace crisp::deploy
