#include "serve/engine.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

#include "kernels/parallel_for.h"

namespace crisp::serve {

namespace {

using Clock = std::chrono::steady_clock;

std::chrono::microseconds elapsed_us(Clock::time_point from,
                                     Clock::time_point to) {
  return std::chrono::duration_cast<std::chrono::microseconds>(to - from);
}

/// Smoothing factor of the batch-run-time EMA. Light smoothing: admission
/// control wants to track load shifts within a few batches, and the
/// estimate is advisory (a lower bound), not a latency promise.
constexpr double kEmaAlpha = 0.2;

}  // namespace

Engine::Engine(std::shared_ptr<const CompiledModel> model,
               EngineOptions options)
    : model_(std::move(model)), options_(options) {
  CRISP_CHECK(model_ != nullptr, "serve::Engine: null compiled model");
  CRISP_CHECK(options_.max_batch >= 1,
              "serve::Engine: max_batch must be >= 1, got "
                  << options_.max_batch);
  CRISP_CHECK(options_.queue_depth >= 1,
              "serve::Engine: queue_depth must be >= 1, got "
                  << options_.queue_depth);
  for (double& w : options_.admission_watermark)
    w = std::min(1.0, std::max(0.0, w));
  worker_ = std::thread([this] { worker_main(); });
}

Engine::~Engine() { shutdown(Drain::kServe); }

std::future<Response> Engine::submit(Tensor sample) {
  Request request;
  request.sample = std::move(sample);
  return submit_impl(std::move(request), /*legacy_throw=*/true);
}

std::future<Response> Engine::submit(Request request) {
  return submit_impl(std::move(request), /*legacy_throw=*/false);
}

std::future<Response> Engine::submit_impl(Request request, bool legacy_throw) {
  CRISP_CHECK(!request.sample.empty(), "serve::Engine::submit: empty sample");
  const int pr = static_cast<int>(request.priority);
  CRISP_CHECK(pr >= 0 && pr < kPriorityCount,
              "serve::Engine::submit: invalid priority " << pr);

  Pending p;
  p.sample = std::move(request.sample);
  p.priority = request.priority;
  p.enqueued = Clock::now();
  if (request.deadline.count() > 0) p.deadline = p.enqueued + request.deadline;
  std::future<Response> fut = p.promise.get_future();

  // A displaced victim is completed outside the lock; the decision to
  // displace is made under it.
  Pending victim;
  bool have_victim = false;

  {
    std::unique_lock<std::mutex> lk(mu_);
    if (stopping_)
      throw std::runtime_error("serve::Engine: submit after shutdown");

    // Admission: deadline feasibility. An already-passed deadline is
    // always refused; beyond that the estimate only exists once a batch
    // has completed (ema > 0).
    if (p.deadline != Clock::time_point::max()) {
      const Clock::time_point now = p.enqueued;
      bool refuse = p.deadline <= now;
      if (!refuse && options_.reject_infeasible) {
        const double est_us = estimated_completion_us_locked(p.priority);
        refuse = est_us > 0.0 &&
                 p.deadline < now + std::chrono::microseconds(
                                        static_cast<std::int64_t>(est_us));
      }
      if (refuse) {
        ++stats_.infeasible;
        lk.unlock();
        fulfill_terminal(p, Response::Status::kInfeasible, Clock::now());
        return fut;
      }
    }

    // Admission: per-class watermark band. A watermark of 1.0 (wm ==
    // queue_depth) defers entirely to the full-queue policy below.
    const std::int64_t wm = static_cast<std::int64_t>(
        options_.admission_watermark[static_cast<std::size_t>(pr)] *
        static_cast<double>(options_.queue_depth));
    if (wm < options_.queue_depth && queued_total_locked() >= wm) {
      ++stats_.rejected;
      lk.unlock();
      fulfill_terminal(p, Response::Status::kRejected, Clock::now());
      return fut;
    }

    if (queued_total_locked() >= options_.queue_depth && !stopping_) {
      // Displacement: a more urgent arrival sheds the youngest request of
      // the least urgent queued class rather than waiting behind it.
      int victim_class = -1;
      for (int c = kPriorityCount - 1; c > pr; --c) {
        if (!queues_[static_cast<std::size_t>(c)].empty()) {
          victim_class = c;
          break;
        }
      }
      if (victim_class >= 0) {
        auto& q = queues_[static_cast<std::size_t>(victim_class)];
        victim = std::move(q.back());
        q.pop_back();
        have_victim = true;
        ++stats_.shed;
      } else if (options_.overflow == EngineOptions::Overflow::kReject) {
        ++stats_.rejected;
        if (legacy_throw)
          throw std::runtime_error(
              "serve::Engine: queue full (queue_depth = " +
              std::to_string(options_.queue_depth) + ")");
        lk.unlock();
        fulfill_terminal(p, Response::Status::kRejected, Clock::now());
        return fut;
      } else {
        // Parked submitters are counted so shutdown() can wait for them to
        // leave before the engine's mutex/condvars are torn down.
        ++blocked_submitters_;
        cv_space_.wait(lk, [&] {
          return stopping_ || queued_total_locked() < options_.queue_depth;
        });
        if (--blocked_submitters_ == 0 && stopping_)
          cv_submit_drained_.notify_all();
      }
    }
    if (stopping_)
      throw std::runtime_error("serve::Engine: submit after shutdown");

    ++stats_.accepted;
    queues_[static_cast<std::size_t>(pr)].push_back(std::move(p));
  }
  cv_submitted_.notify_one();
  if (have_victim)
    fulfill_terminal(victim, Response::Status::kShed, Clock::now());
  return fut;
}

void Engine::shutdown(Drain drain) {
  {
    std::unique_lock<std::mutex> lk(mu_);
    stopping_ = true;
    if (drain == Drain::kCancel) cancel_pending_ = true;
    cv_submitted_.notify_all();
    cv_space_.notify_all();
    // Producers parked in submit() under kBlock hold references to this
    // engine's mutex and condvars; let them wake and leave before the
    // worker join (and, for the destructor, before members are freed).
    cv_submit_drained_.wait(lk, [&] { return blocked_submitters_ == 0; });
  }
  if (worker_.joinable()) worker_.join();
}

EngineStats Engine::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

void Engine::swap_model(std::shared_ptr<const CompiledModel> model) {
  CRISP_CHECK(model != nullptr, "serve::Engine: null model in swap_model");
  std::shared_ptr<const CompiledModel> old;
  {
    std::lock_guard<std::mutex> lk(mu_);
    old = std::move(model_);  // release the old artifact outside the lock
    model_ = std::move(model);
    stats_.swaps += 1;
  }
}

std::shared_ptr<const CompiledModel> Engine::model() const {
  std::lock_guard<std::mutex> lk(mu_);
  return model_;
}

void Engine::fulfill_terminal(Pending& p, Response::Status status,
                              Clock::time_point now) {
  Response r;
  r.status = status;
  // Admission refusals never queued; everything else reports how long the
  // request sat before the scheduler dropped it.
  if (status != Response::Status::kRejected &&
      status != Response::Status::kInfeasible)
    r.stats.queue_time = elapsed_us(p.enqueued, now);
  p.promise.set_value(std::move(r));
}

void Engine::take_expired_locked(Clock::time_point now,
                                 std::vector<Pending>& out) {
  for (auto& q : queues_) {
    for (auto it = q.begin(); it != q.end();) {
      if (it->deadline <= now) {
        out.push_back(std::move(*it));
        it = q.erase(it);
      } else {
        ++it;
      }
    }
  }
}

void Engine::collect_matching_locked(const Shape& shape, std::int64_t target,
                                     std::vector<Pending>& batch) {
  // EDF within each class: among shape-matching requests, the earliest
  // absolute deadline fills the next slot. Undeadlined requests carry
  // time_point::max(), so they order FIFO behind every deadlined one (the
  // strict < keeps the scan stable). Linear scans are fine here — the
  // queue is bounded by queue_depth.
  for (auto& q : queues_) {
    while (static_cast<std::int64_t>(batch.size()) < target) {
      auto best = q.end();
      for (auto it = q.begin(); it != q.end(); ++it) {
        if (it->sample.shape() != shape) continue;
        if (best == q.end() || it->deadline < best->deadline) best = it;
      }
      if (best == q.end()) break;
      batch.push_back(std::move(*best));
      q.erase(best);
    }
    if (static_cast<std::int64_t>(batch.size()) >= target) return;
  }
}

double Engine::estimated_completion_us_locked(Priority p) const {
  if (ema_run_us_ == 0.0) return 0.0;
  // Work queued at or above this request's urgency runs first; it drains
  // in batches of up to max_batch, each costing ~one EMA batch time, and
  // the request's own batch costs one more. Optimistic on purpose: it
  // ignores shape fragmentation and flush waits, so it only refuses
  // deadlines that even a perfectly packed queue could not meet.
  std::int64_t ahead = 0;
  for (int c = 0; c <= static_cast<int>(p); ++c)
    ahead += static_cast<std::int64_t>(queues_[static_cast<std::size_t>(c)].size());
  const double batches_ahead =
      static_cast<double>(ahead) / static_cast<double>(options_.max_batch);
  return ema_run_us_ * (1.0 + batches_ahead);
}

std::int64_t Engine::queued_total_locked() const {
  std::int64_t total = 0;
  for (const auto& q : queues_) total += static_cast<std::int64_t>(q.size());
  return total;
}

void Engine::worker_main() {
  // The engine's pool pinning: every parallel_for issued by forwards on
  // this thread sees at most thread_budget threads.
  kernels::ScopedThreadBudget budget(options_.thread_budget);

  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    cv_submitted_.wait(lk, [&] { return stopping_ || queued_total_locked() > 0; });
    if (queued_total_locked() == 0) return;  // stopping and fully drained

    if (stopping_ && cancel_pending_) {
      // shutdown(Drain::kCancel): everything still queued gets a terminal
      // kCancelled status instead of a forward.
      std::vector<Pending> dropped;
      for (auto& q : queues_) {
        for (auto& p : q) dropped.push_back(std::move(p));
        q.clear();
      }
      stats_.cancelled += static_cast<std::int64_t>(dropped.size());
      lk.unlock();
      const Clock::time_point now = Clock::now();
      for (auto& p : dropped)
        fulfill_terminal(p, Response::Status::kCancelled, now);
      return;
    }

    // Shed deadline-expired work before it can anchor or join a batch.
    std::vector<Pending> expired;
    take_expired_locked(Clock::now(), expired);
    if (!expired.empty()) {
      stats_.expired += static_cast<std::int64_t>(expired.size());
      lk.unlock();
      cv_space_.notify_all();
      const Clock::time_point now = Clock::now();
      for (auto& p : expired) fulfill_terminal(p, Response::Status::kExpired, now);
      expired.clear();
      lk.lock();
      if (queued_total_locked() == 0) continue;
    }

    // Lead request: earliest deadline in the most urgent non-empty class
    // (EDF within the class; undeadlined requests sort last and FIFO among
    // themselves via the strict <). Its shape defines the batch;
    // everything coalesced below stacks behind it.
    std::vector<Pending> batch;
    for (auto& q : queues_) {
      if (q.empty()) continue;
      auto lead = q.begin();
      for (auto it = std::next(q.begin()); it != q.end(); ++it)
        if (it->deadline < lead->deadline) lead = it;
      batch.push_back(std::move(*lead));
      q.erase(lead);
      break;
    }
    const Shape shape = batch.front().sample.shape();
    const std::int64_t target = options_.max_batch;

    // Continuous coalescing: keep folding shape-compatible arrivals (most
    // urgent first) into the open slots until the batch is full, the
    // flush window closes, the queue itself fills (blocked producers need
    // the flush), or shutdown begins.
    const Clock::time_point flush_at = Clock::now() + options_.flush_timeout;
    for (;;) {
      collect_matching_locked(shape, target, batch);
      // Popping the lead / coalescing freed queue space; wake producers
      // parked in a kBlock submit before settling into the flush wait.
      cv_space_.notify_all();
      if (stopping_ || static_cast<std::int64_t>(batch.size()) >= target ||
          queued_total_locked() >= options_.queue_depth)
        break;
      if (cv_submitted_.wait_until(lk, flush_at) == std::cv_status::timeout) {
        collect_matching_locked(shape, target, batch);
        break;
      }
    }

    // A batch member whose deadline lapsed during the flush wait is shed,
    // not served late.
    const Clock::time_point formed = Clock::now();
    std::vector<Pending> late;
    for (auto it = batch.begin(); it != batch.end();) {
      if (it->deadline <= formed) {
        late.push_back(std::move(*it));
        it = batch.erase(it);
      } else {
        ++it;
      }
    }
    stats_.expired += static_cast<std::int64_t>(late.size());

    lk.unlock();
    cv_space_.notify_all();
    for (auto& p : late) fulfill_terminal(p, Response::Status::kExpired, formed);
    if (!batch.empty()) run_batch(batch);
    lk.lock();
  }
}

void Engine::run_batch(std::vector<Pending>& batch) {
  const std::int64_t n = static_cast<std::int64_t>(batch.size());
  const Clock::time_point formed = Clock::now();
  // Snapshot the served model under the lock: a concurrent swap_model may
  // replace model_ at any moment, and this batch must run start-to-finish
  // on ONE coherent artifact (the shared_ptr keeps it alive even if the
  // swap drops the last other reference mid-forward).
  std::shared_ptr<const CompiledModel> model;
  {
    std::lock_guard<std::mutex> lk(mu_);
    model = model_;
  }
  try {
    // Stack the batch into (n, sample dims...).
    const Shape& sshape = batch.front().sample.shape();
    Shape bshape;
    bshape.reserve(sshape.size() + 1);
    bshape.push_back(n);
    bshape.insert(bshape.end(), sshape.begin(), sshape.end());
    Tensor stacked(bshape);
    const std::int64_t stride = batch.front().sample.numel();
    for (std::int64_t i = 0; i < n; ++i)
      std::memcpy(stacked.data() + i * stride,
                  batch[static_cast<std::size_t>(i)].sample.data(),
                  static_cast<std::size_t>(stride) * sizeof(float));

    Tensor out = model->run(stacked);
    const Clock::time_point done = Clock::now();
    CRISP_CHECK(out.dim() >= 1 && out.size(0) == n,
                "serve::Engine: model returned leading dimension "
                    << (out.dim() >= 1 ? out.size(0) : -1) << " for a batch of "
                    << n);

    Shape oshape(out.shape().begin() + 1, out.shape().end());
    const std::int64_t ostride = out.numel() / n;
    const std::chrono::microseconds run_us = elapsed_us(formed, done);
    std::int64_t seq = 0;
    // Aggregate counters first, so a caller observing a fulfilled future
    // already sees its request counted in stats().
    {
      std::lock_guard<std::mutex> lk(mu_);
      seq = stats_.batches;
      stats_.requests += n;
      stats_.batches += 1;
      stats_.max_batch = std::max(stats_.max_batch, n);
      stats_.total_run_us +=
          static_cast<double>(run_us.count()) * static_cast<double>(n);
      for (std::int64_t i = 0; i < n; ++i)
        stats_.total_queue_us += static_cast<double>(
            elapsed_us(batch[static_cast<std::size_t>(i)].enqueued, formed)
                .count());
      const double run = static_cast<double>(run_us.count());
      ema_run_us_ =
          ema_run_us_ == 0.0 ? run
                             : (1.0 - kEmaAlpha) * ema_run_us_ + kEmaAlpha * run;
    }
    for (std::int64_t i = 0; i < n; ++i) {
      Pending& p = batch[static_cast<std::size_t>(i)];
      Response r;
      r.output = Tensor(oshape,
                        std::vector<float>(out.data() + i * ostride,
                                           out.data() + (i + 1) * ostride));
      r.stats.queue_time = elapsed_us(p.enqueued, formed);
      r.stats.run_time = run_us;
      r.stats.batch_size = n;
      r.stats.batch_seq = seq;
      p.promise.set_value(std::move(r));
    }
  } catch (...) {
    const std::exception_ptr err = std::current_exception();
    {
      // Errored requests still waited in the queue; counting them into
      // requests without their queue time would bias mean_queue_us low.
      std::lock_guard<std::mutex> lk(mu_);
      stats_.requests += n;
      stats_.batches += 1;
      for (const Pending& p : batch)
        stats_.total_queue_us += static_cast<double>(
            elapsed_us(p.enqueued, formed).count());
    }
    for (Pending& p : batch) p.promise.set_exception(err);
  }
}

}  // namespace crisp::serve
