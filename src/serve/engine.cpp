#include "serve/engine.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "kernels/parallel_for.h"

namespace crisp::serve {

namespace {

using Clock = std::chrono::steady_clock;

std::chrono::microseconds elapsed_us(Clock::time_point from,
                                     Clock::time_point to) {
  return std::chrono::duration_cast<std::chrono::microseconds>(to - from);
}

}  // namespace

Engine::Engine(std::shared_ptr<const CompiledModel> model,
               EngineOptions options)
    : model_(std::move(model)), options_(options) {
  CRISP_CHECK(model_ != nullptr, "serve::Engine: null compiled model");
  CRISP_CHECK(options_.max_batch >= 1,
              "serve::Engine: max_batch must be >= 1, got "
                  << options_.max_batch);
  CRISP_CHECK(options_.queue_depth >= 1,
              "serve::Engine: queue_depth must be >= 1, got "
                  << options_.queue_depth);
  worker_ = std::thread([this] { worker_main(); });
}

Engine::~Engine() { shutdown(); }

std::future<Response> Engine::submit(Tensor sample) {
  CRISP_CHECK(!sample.empty(), "serve::Engine::submit: empty sample");
  std::unique_lock<std::mutex> lk(mu_);
  if (static_cast<std::int64_t>(queue_.size()) >= options_.queue_depth &&
      !stopping_) {
    if (options_.overflow == EngineOptions::Overflow::kReject) {
      ++stats_.rejected;
      throw std::runtime_error(
          "serve::Engine: queue full (queue_depth = " +
          std::to_string(options_.queue_depth) + ")");
    }
    // Parked submitters are counted so shutdown() can wait for them to
    // leave before the engine's mutex/condvars are torn down.
    ++blocked_submitters_;
    cv_space_.wait(lk, [&] {
      return stopping_ ||
             static_cast<std::int64_t>(queue_.size()) < options_.queue_depth;
    });
    if (--blocked_submitters_ == 0 && stopping_) cv_submit_drained_.notify_all();
  }
  if (stopping_)
    throw std::runtime_error("serve::Engine: submit after shutdown");

  Pending p;
  p.sample = std::move(sample);
  p.enqueued = Clock::now();
  std::future<Response> fut = p.promise.get_future();
  queue_.push_back(std::move(p));
  lk.unlock();
  cv_submitted_.notify_one();
  return fut;
}

void Engine::shutdown() {
  {
    std::unique_lock<std::mutex> lk(mu_);
    stopping_ = true;
    cv_submitted_.notify_all();
    cv_space_.notify_all();
    // Producers parked in submit() under kBlock hold references to this
    // engine's mutex and condvars; let them wake and leave before the
    // worker join (and, for the destructor, before members are freed).
    cv_submit_drained_.wait(lk, [&] { return blocked_submitters_ == 0; });
  }
  if (worker_.joinable()) worker_.join();
}

EngineStats Engine::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

void Engine::worker_main() {
  // The engine's pool pinning: every parallel_for issued by forwards on
  // this thread sees at most thread_budget threads.
  kernels::ScopedThreadBudget budget(options_.thread_budget);

  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    cv_submitted_.wait(lk, [&] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stopping and fully drained

    // Let the batch fill: after the first request lands, give stragglers
    // up to flush_timeout to join before flushing a partial batch. The
    // batch cannot grow past the queue's own capacity, so a full queue
    // flushes immediately even when queue_depth < max_batch — otherwise
    // blocked producers would sit out the whole timeout for nothing.
    const std::int64_t fill_target =
        std::min(options_.max_batch, options_.queue_depth);
    if (!stopping_ &&
        static_cast<std::int64_t>(queue_.size()) < fill_target &&
        options_.flush_timeout.count() > 0) {
      cv_submitted_.wait_for(lk, options_.flush_timeout, [&] {
        return stopping_ ||
               static_cast<std::int64_t>(queue_.size()) >= fill_target;
      });
    }

    std::vector<Pending> batch;
    const std::int64_t take =
        std::min<std::int64_t>(options_.max_batch,
                               static_cast<std::int64_t>(queue_.size()));
    batch.reserve(static_cast<std::size_t>(take));
    for (std::int64_t i = 0; i < take; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    lk.unlock();
    cv_space_.notify_all();

    run_batches(batch);
    lk.lock();
  }
}

void Engine::run_batches(std::vector<Pending>& batch) {
  // Group by sample shape, preserving arrival order inside each group; a
  // mixed-shape drain becomes one forward per distinct shape.
  std::vector<std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    bool placed = false;
    for (auto& g : groups) {
      if (batch[g.front()].sample.shape() == batch[i].sample.shape()) {
        g.push_back(i);
        placed = true;
        break;
      }
    }
    if (!placed) groups.push_back({i});
  }

  for (const auto& g : groups) {
    const std::int64_t n = static_cast<std::int64_t>(g.size());
    const Clock::time_point formed = Clock::now();
    try {
      // Stack the group into (n, sample dims...).
      const Shape& sshape = batch[g.front()].sample.shape();
      Shape bshape;
      bshape.reserve(sshape.size() + 1);
      bshape.push_back(n);
      bshape.insert(bshape.end(), sshape.begin(), sshape.end());
      Tensor stacked(bshape);
      const std::int64_t stride = batch[g.front()].sample.numel();
      for (std::int64_t i = 0; i < n; ++i)
        std::memcpy(stacked.data() + i * stride,
                    batch[g[static_cast<std::size_t>(i)]].sample.data(),
                    static_cast<std::size_t>(stride) * sizeof(float));

      Tensor out = model_->run(stacked);
      const Clock::time_point done = Clock::now();
      CRISP_CHECK(out.dim() >= 1 && out.size(0) == n,
                  "serve::Engine: model returned leading dimension "
                      << (out.dim() >= 1 ? out.size(0) : -1) << " for a batch of "
                      << n);

      Shape oshape(out.shape().begin() + 1, out.shape().end());
      const std::int64_t ostride = out.numel() / n;
      const std::chrono::microseconds run_us = elapsed_us(formed, done);
      // Aggregate counters first, so a caller observing a fulfilled future
      // already sees its request counted in stats().
      {
        std::lock_guard<std::mutex> lk(mu_);
        stats_.requests += n;
        stats_.batches += 1;
        stats_.max_batch = std::max(stats_.max_batch, n);
        stats_.total_run_us +=
            static_cast<double>(run_us.count()) * static_cast<double>(n);
        for (std::int64_t i = 0; i < n; ++i)
          stats_.total_queue_us += static_cast<double>(
              elapsed_us(batch[g[static_cast<std::size_t>(i)]].enqueued, formed)
                  .count());
      }
      for (std::int64_t i = 0; i < n; ++i) {
        Pending& p = batch[g[static_cast<std::size_t>(i)]];
        Response r;
        r.output = Tensor(oshape,
                          std::vector<float>(out.data() + i * ostride,
                                             out.data() + (i + 1) * ostride));
        r.stats.queue_time = elapsed_us(p.enqueued, formed);
        r.stats.run_time = run_us;
        r.stats.batch_size = n;
        p.promise.set_value(std::move(r));
      }
    } catch (...) {
      const std::exception_ptr err = std::current_exception();
      {
        // Errored requests still waited in the queue; counting them into
        // requests without their queue time would bias mean_queue_us low.
        std::lock_guard<std::mutex> lk(mu_);
        stats_.requests += n;
        stats_.batches += 1;
        for (const std::size_t idx : g)
          stats_.total_queue_us += static_cast<double>(
              elapsed_us(batch[idx].enqueued, formed).count());
      }
      for (const std::size_t idx : g) batch[idx].promise.set_exception(err);
    }
  }
}

}  // namespace crisp::serve
