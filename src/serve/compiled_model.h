// Immutable inference artifact — the serving layer's unit of deployment.
//
// A CompiledModel freezes a trained (optionally CRISP-pruned-and-packed)
// network into an eval-only form that many threads can run concurrently:
//   * shared ownership of the nn::Sequential and of the PackedModel, so
//     there is no attach/detach lifecycle and no dangling-hook window —
//     whatever the compiled model references, it keeps alive;
//   * execution through the const forward_eval path (nn/layer.h), which
//     touches no training caches, no MAC counters, and no statistics;
//   * packed entries hooked in at compile time via the shared-ownership
//     GEMM hooks (deploy/packed_exec.h), so eval forwards multiply with
//     the CRISP format directly.
//
// serve::Engine (serve/engine.h) schedules, batches, and admission-
// controls requests on top of this artifact (docs/serving.md);
// CompiledModel itself is the synchronous core — and the unit of
// capacity: one full-batch run() is what the load harness calibrates
// saturation from (bench/loadgen.cpp).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "deploy/packed_exec.h"
#include "deploy/packed_model.h"
#include "nn/sequential.h"

namespace crisp::serve {

/// Knobs resolved once at compile time — a CompiledModel never changes how
/// it executes after compile() returns.
struct CompileOptions {
  /// Serve the packed entries from an int8 value payload (symmetric,
  /// per-block-row scales — sparse/quantized.h). When the supplied
  /// artifact is not already quantized, compile() builds a private
  /// quantized copy and hooks that, so the caller's artifact is untouched
  /// and fp32 and int8 engines can share one source PackedModel. Outputs
  /// differ from the fp32 compile by at most the propagated per-scale
  /// quantization error; they stay bit-identical across thread counts.
  /// Requires `packed` != nullptr.
  bool quantize_payload = false;
};

class CompiledModel {
 public:
  /// Freezes `model` for serving. When `packed` is given, its entries are
  /// hooked into the matching layers (shape-checked; grouped convs fall
  /// back to dense eval) and the artifact is co-owned by the hooks and the
  /// compiled model. The caller must stop mutating `model` (training,
  /// re-masking, re-hooking) for as long as the CompiledModel serves —
  /// shared ownership covers lifetime, the const run() surface covers the
  /// serving side.
  static std::shared_ptr<const CompiledModel> compile(
      std::shared_ptr<nn::Sequential> model,
      std::shared_ptr<const deploy::PackedModel> packed = nullptr,
      CompileOptions options = {});

  /// Freezes `model` with explicitly supplied kernels instead of a whole
  /// PackedModel — the tenant overlay path (tenant/overlay.h), where each
  /// kernel executes against a shared base arena its shared_ptr co-owns.
  /// Same contract as compile(): the hooks and the compiled model keep
  /// every kernel alive, the caller must stop mutating `model`, and the
  /// const run() surface is what serves. has_packed()/quantized() are
  /// false for this form — the kernels themselves decide what they execute.
  static std::shared_ptr<const CompiledModel> compile_with_kernels(
      std::shared_ptr<nn::Sequential> model,
      const std::vector<deploy::NamedKernel>& kernels);

  /// Eval forward of a batch whose leading dimension is the batch axis.
  /// Const-thread-safe: any number of threads may run concurrently.
  Tensor run(const Tensor& batch) const { return model_->forward_eval(batch); }

  /// Parameter names served from the packed representation (empty for a
  /// dense compile).
  const std::vector<std::string>& packed_layers() const {
    return packed_layers_;
  }
  bool has_packed() const { return packed_ != nullptr; }
  /// True when the packed layers actually execute from the int8 payload
  /// (either the caller's artifact was int8-only already or CompileOptions
  /// asked for it). False for a dense compile, and false for a keep_fp32
  /// artifact — its hooks run the fp32 slots.
  bool quantized() const {
    return packed_ != nullptr && packed_->serves_int8();
  }
  const nn::Sequential& model() const { return *model_; }
  /// The artifact the hooks execute from — the compile-time quantized copy
  /// when CompileOptions::quantize_payload built one. Null for a dense
  /// compile.
  const deploy::PackedModel* packed() const { return packed_.get(); }

 private:
  CompiledModel(std::shared_ptr<nn::Sequential> model,
                std::shared_ptr<const deploy::PackedModel> packed,
                std::vector<std::string> packed_layers)
      : model_(std::move(model)),
        packed_(std::move(packed)),
        packed_layers_(std::move(packed_layers)) {}

  std::shared_ptr<nn::Sequential> model_;
  std::shared_ptr<const deploy::PackedModel> packed_;
  std::vector<std::string> packed_layers_;
};

}  // namespace crisp::serve
