#include "serve/compiled_model.h"

#include <utility>

#include "deploy/packed_exec.h"

namespace crisp::serve {

std::shared_ptr<const CompiledModel> CompiledModel::compile(
    std::shared_ptr<nn::Sequential> model,
    std::shared_ptr<const deploy::PackedModel> packed) {
  CRISP_CHECK(model != nullptr, "CompiledModel::compile: null model");
  std::vector<std::string> packed_layers;
  if (packed != nullptr)
    packed_layers = deploy::install_packed_hooks(*model, packed);
  return std::shared_ptr<const CompiledModel>(new CompiledModel(
      std::move(model), std::move(packed), std::move(packed_layers)));
}

}  // namespace crisp::serve
