#include "serve/compiled_model.h"

#include <utility>

namespace crisp::serve {

std::shared_ptr<const CompiledModel> CompiledModel::compile(
    std::shared_ptr<nn::Sequential> model,
    std::shared_ptr<const deploy::PackedModel> packed, CompileOptions options) {
  CRISP_CHECK(model != nullptr, "CompiledModel::compile: null model");
  if (options.quantize_payload) {
    CRISP_CHECK(packed != nullptr,
                "CompiledModel::compile: quantize_payload needs a packed "
                "artifact");
    if (!packed->serves_int8()) {
      // Private int8 copy: the caller's artifact stays fp32, and the hooks
      // co-own the quantized one like any other compile. serves_int8 (not
      // quantized) is the gate — a keep_fp32 artifact carries int8 slots
      // but spmm() would still execute its fp32 payload.
      auto q = std::make_shared<deploy::PackedModel>(*packed);
      q->quantize_payloads(/*keep_fp32=*/false);
      packed = std::move(q);
    }
  }
  std::vector<std::string> packed_layers;
  if (packed != nullptr)
    packed_layers = deploy::install_packed_hooks(*model, packed);
  return std::shared_ptr<const CompiledModel>(new CompiledModel(
      std::move(model), std::move(packed), std::move(packed_layers)));
}

std::shared_ptr<const CompiledModel> CompiledModel::compile_with_kernels(
    std::shared_ptr<nn::Sequential> model,
    const std::vector<deploy::NamedKernel>& kernels) {
  CRISP_CHECK(model != nullptr, "CompiledModel::compile_with_kernels: null model");
  std::vector<std::string> packed_layers =
      deploy::install_kernel_hooks(*model, kernels);
  return std::shared_ptr<const CompiledModel>(new CompiledModel(
      std::move(model), nullptr, std::move(packed_layers)));
}

}  // namespace crisp::serve
