// Batched, thread-budgeted inference engine — the serving front end.
//
// The paper's deployment target is a packed, class-personalized model
// answering a stream of single-sample requests on a shared device (CRISP
// §V, Fig. 9's latency story). Engine turns that stream into efficient
// batched execution:
//   * submit() enqueues one sample and returns a std::future<Response> —
//     any number of producer threads may call it concurrently;
//   * a worker thread coalesces queued requests (up to max_batch, waiting
//     at most flush_timeout after the first arrival) and runs them as one
//     batched forward through the CompiledModel, so the batch-parallel
//     kernels see real batches instead of B=1 slivers;
//   * mixed-shape requests are grouped by shape inside a drain, never
//     dropped;
//   * a per-engine thread budget (kernels::ScopedThreadBudget) pins how
//     much of the crisp::kernels pool this engine's forwards may use, so
//     two engines — say a dense baseline and a packed model — share one
//     process without oversubscription;
//   * the queue is bounded (queue_depth): when it is full, submit either
//     blocks for space or rejects, per EngineOptions::overflow;
//   * every response carries queue/run timings and the batch it rode in,
//     and stats() aggregates them engine-wide (occupancy, totals).
//
// Determinism: batching never changes the math. Each sample's output is
// computed by the same per-row kernels as a serial nn::predict of that
// sample; the engine concurrency test locks this in.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/compiled_model.h"

namespace crisp::serve {

struct EngineOptions {
  /// Most requests one batched forward may coalesce (>= 1). Larger batches
  /// amortize kernel dispatch and feed the batch-parallel kernels real
  /// work; the trade is tail latency for the first request in the batch.
  std::int64_t max_batch = 8;
  /// Bounded queue capacity (>= 1); beyond it, `overflow` decides. The
  /// worker flushes a partial batch as soon as the queue itself is full,
  /// so queue_depth < max_batch never deadlocks blocked producers.
  std::int64_t queue_depth = 128;
  /// How long the worker waits after the first queued request for the
  /// batch to fill. Zero flushes immediately (lowest latency, smallest
  /// batches).
  std::chrono::microseconds flush_timeout{200};
  /// Cap on kernels-pool threads the engine's forwards may occupy. Applied
  /// as a kernels::ScopedThreadBudget on the worker thread, so it is
  /// per-engine, not process-global: budgets are thread-local, the
  /// *tightest* enclosing cap wins when scopes nest, and each scope
  /// restores what it found on exit. 0 leaves the pool uncapped. Budgets
  /// never change numerics — chunk boundaries stay a pure function of the
  /// loop size — only how many workers participate. Size it roughly as
  /// cores / co-resident engines to avoid oversubscribing the shared pool.
  int thread_budget = 0;
  /// Full-queue policy.
  ///   kBlock:  submit() parks the producer until the worker frees space;
  ///            a shutdown() while parked wakes it and it throws
  ///            std::runtime_error (the engine waits for parked producers
  ///            to leave before tearing down, so destruction is safe).
  ///   kReject: submit() throws std::runtime_error immediately and the
  ///            attempt is counted in EngineStats::rejected; nothing is
  ///            enqueued.
  /// Accepted requests are served under either policy — overflow only
  /// governs what happens at the admission edge.
  enum class Overflow { kBlock, kReject };
  Overflow overflow = Overflow::kBlock;
};

/// Timings of one served request, measured on the worker's clock.
struct RequestStats {
  /// submit() accepting the request -> its batch being formed (includes
  /// any flush_timeout spent waiting for stragglers).
  std::chrono::microseconds queue_time{0};
  /// Wall time of the batched forward the request rode in. Shared by every
  /// request of that batch — it is the batch's time, not a per-sample
  /// slice.
  std::chrono::microseconds run_time{0};
  /// Requests coalesced into that forward (1 when served alone).
  std::int64_t batch_size = 0;
};

struct Response {
  /// This sample's output with the batch axis stripped: submitting (C,H,W)
  /// yields the same shape a B=1 forward would, minus the leading 1.
  Tensor output;
  RequestStats stats;
};

/// Aggregate counters since construction (see Engine::stats()). Counters
/// are updated before a request's future is fulfilled, so a caller that
/// observed its response already sees itself counted.
struct EngineStats {
  /// Completed requests — fulfilled *or* errored (a bad-shape request that
  /// fails its future still counts; it queued and ran). Rejected submits
  /// are NOT included: they never entered the queue.
  std::int64_t requests = 0;
  std::int64_t batches = 0;    ///< batched forwards run
  std::int64_t rejected = 0;   ///< kReject submits refused at a full queue
  std::int64_t max_batch = 0;  ///< largest batch coalesced so far
  /// Sum of per-request queue_time in microseconds.
  double total_queue_us = 0.0;
  /// Sum over requests of the run_time of the batch each rode in (a batch
  /// of n contributes n * its wall time), so mean run time per request is
  /// total_run_us / requests.
  double total_run_us = 0.0;

  /// Mean requests per forward — the batching win the engine exists for.
  double occupancy() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(requests) /
                              static_cast<double>(batches);
  }
  double mean_queue_us() const {
    return requests == 0 ? 0.0 : total_queue_us / static_cast<double>(requests);
  }
};

class Engine {
 public:
  explicit Engine(std::shared_ptr<const CompiledModel> model,
                  EngineOptions options = {});
  ~Engine();  ///< shutdown(): drains in-flight work, then joins the worker

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Enqueues one unbatched sample (e.g. (C,H,W) or (features,)) and
  /// returns a future that yields its output and timings. Throws when the
  /// engine is shut down, when the sample is empty, or — under
  /// Overflow::kReject — when the queue is full. Thread-safe.
  std::future<Response> submit(Tensor sample);

  /// Stops accepting submissions, wakes producers parked in a kBlock
  /// submit (they throw), waits for them to leave, serves everything
  /// already queued, and joins the worker. Idempotent; the destructor
  /// calls it, so destroying an engine under concurrent blocked submitters
  /// is safe.
  void shutdown();

  EngineStats stats() const;
  const EngineOptions& options() const { return options_; }
  const CompiledModel& model() const { return *model_; }

 private:
  struct Pending {
    Tensor sample;
    std::promise<Response> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  void worker_main();
  /// Groups `batch` by sample shape, runs one forward per group, and
  /// fulfills every promise (value or exception).
  void run_batches(std::vector<Pending>& batch);

  std::shared_ptr<const CompiledModel> model_;
  EngineOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_submitted_;  ///< queue gained work / stopping
  std::condition_variable cv_space_;      ///< queue freed capacity
  std::condition_variable cv_submit_drained_;  ///< blocked submitters left
  std::deque<Pending> queue_;
  bool stopping_ = false;
  std::int64_t blocked_submitters_ = 0;  ///< producers parked in submit()
  EngineStats stats_;

  std::thread worker_;  ///< started last, so it sees a fully-built engine
};

}  // namespace crisp::serve
