// Batched, thread-budgeted inference engine — the serving front end.
//
// The paper's deployment target is a packed, class-personalized model
// answering a stream of single-sample requests on a shared device (CRISP
// §V, Fig. 9's latency story). Engine turns that stream into efficient
// batched execution:
//   * submit() enqueues one sample and returns a std::future<Response> —
//     any number of producer threads may call it concurrently;
//   * a worker thread coalesces queued requests (up to max_batch, waiting
//     at most flush_timeout after the first arrival) and runs them as one
//     batched forward through the CompiledModel, so the batch-parallel
//     kernels see real batches instead of B=1 slivers;
//   * mixed-shape requests are grouped by shape inside a drain, never
//     dropped;
//   * a per-engine thread budget (kernels::ScopedThreadBudget) pins how
//     much of the crisp::kernels pool this engine's forwards may use, so
//     two engines — say a dense baseline and a packed model — share one
//     process without oversubscription;
//   * the queue is bounded (queue_depth): when it is full, submit either
//     blocks for space or rejects, per EngineOptions::overflow;
//   * every response carries queue/run timings and the batch it rode in,
//     and stats() aggregates them engine-wide (occupancy, totals).
//
// Determinism: batching never changes the math. Each sample's output is
// computed by the same per-row kernels as a serial nn::predict of that
// sample; the engine concurrency test locks this in.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/compiled_model.h"

namespace crisp::serve {

struct EngineOptions {
  /// Most requests one batched forward may coalesce.
  std::int64_t max_batch = 8;
  /// Bounded queue capacity; beyond it, `overflow` decides.
  std::int64_t queue_depth = 128;
  /// How long the worker waits after the first queued request for the
  /// batch to fill. Zero flushes immediately (lowest latency, smallest
  /// batches).
  std::chrono::microseconds flush_timeout{200};
  /// Cap on kernels-pool threads the engine's forwards may occupy
  /// (kernels::ScopedThreadBudget); 0 leaves the pool uncapped.
  int thread_budget = 0;
  /// Full-queue policy: block the submitter until space frees, or throw.
  enum class Overflow { kBlock, kReject };
  Overflow overflow = Overflow::kBlock;
};

/// Timings of one served request.
struct RequestStats {
  std::chrono::microseconds queue_time{0};  ///< submit -> batch formed
  std::chrono::microseconds run_time{0};    ///< the batched forward's wall time
  std::int64_t batch_size = 0;              ///< requests in that forward
};

struct Response {
  Tensor output;  ///< per-sample output, batch axis stripped
  RequestStats stats;
};

/// Aggregate counters since construction (see Engine::stats()).
struct EngineStats {
  std::int64_t requests = 0;   ///< completed (fulfilled or errored)
  std::int64_t batches = 0;    ///< batched forwards run
  std::int64_t rejected = 0;   ///< submits refused at a full queue
  std::int64_t max_batch = 0;  ///< largest batch coalesced so far
  double total_queue_us = 0.0;
  double total_run_us = 0.0;

  /// Mean requests per forward — the batching win the engine exists for.
  double occupancy() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(requests) /
                              static_cast<double>(batches);
  }
  double mean_queue_us() const {
    return requests == 0 ? 0.0 : total_queue_us / static_cast<double>(requests);
  }
};

class Engine {
 public:
  explicit Engine(std::shared_ptr<const CompiledModel> model,
                  EngineOptions options = {});
  ~Engine();  ///< shutdown(): drains in-flight work, then joins the worker

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Enqueues one unbatched sample (e.g. (C,H,W) or (features,)) and
  /// returns a future that yields its output and timings. Throws when the
  /// engine is shut down, when the sample is empty, or — under
  /// Overflow::kReject — when the queue is full. Thread-safe.
  std::future<Response> submit(Tensor sample);

  /// Stops accepting submissions, wakes producers parked in a kBlock
  /// submit (they throw), waits for them to leave, serves everything
  /// already queued, and joins the worker. Idempotent; the destructor
  /// calls it, so destroying an engine under concurrent blocked submitters
  /// is safe.
  void shutdown();

  EngineStats stats() const;
  const EngineOptions& options() const { return options_; }
  const CompiledModel& model() const { return *model_; }

 private:
  struct Pending {
    Tensor sample;
    std::promise<Response> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  void worker_main();
  /// Groups `batch` by sample shape, runs one forward per group, and
  /// fulfills every promise (value or exception).
  void run_batches(std::vector<Pending>& batch);

  std::shared_ptr<const CompiledModel> model_;
  EngineOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_submitted_;  ///< queue gained work / stopping
  std::condition_variable cv_space_;      ///< queue freed capacity
  std::condition_variable cv_submit_drained_;  ///< blocked submitters left
  std::deque<Pending> queue_;
  bool stopping_ = false;
  std::int64_t blocked_submitters_ = 0;  ///< producers parked in submit()
  EngineStats stats_;

  std::thread worker_;  ///< started last, so it sees a fully-built engine
};

}  // namespace crisp::serve
