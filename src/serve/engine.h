// Traffic-aware batched inference engine — the serving front end.
//
// The paper's deployment target is a packed, class-personalized model
// answering a stream of latency-sensitive requests on a shared device
// (CRISP §V, Fig. 9's latency story). Engine turns that stream into
// efficient batched execution *and* keeps it schedulable under load:
//   * submit() enqueues one sample and returns a std::future<Response> —
//     any number of producer threads may call it concurrently. The richer
//     submit(Request) overload carries a priority class and an optional
//     deadline;
//   * a worker thread picks the earliest-deadline request of the most
//     urgent non-empty class (EDF within a class; requests without a
//     deadline order FIFO behind deadlined ones), then keeps coalescing
//     shape-compatible arrivals — from any class, most urgent and
//     earliest-deadline first — into the open batch slots for up to
//     flush_timeout, so the batch-parallel kernels see real batches and
//     late arrivals ride the batch that is already forming;
//   * admission control refuses work the engine should not accept: a
//     per-class queue-occupancy watermark (EngineOptions), and
//     reject-on-deadline-infeasible against a running estimate of
//     completion time. Refusals complete the future with an explicit
//     Response::Status instead of growing the queue;
//   * load shedding keeps overload from becoming silent latency blowup:
//     deadline-expired work is shed (kExpired) instead of served late, and
//     a more urgent arrival at a full queue displaces the youngest request
//     of the least urgent class (kShed) instead of waiting behind it;
//   * the queue is bounded (queue_depth): when it is full and no
//     displacement applies, submit either blocks for space or rejects,
//     per EngineOptions::overflow;
//   * every response carries a status, queue/run timings, and the batch it
//     rode in; stats() aggregates the outcome counters engine-wide, and
//     the counters reconcile: every accepted request ends exactly one of
//     served / shed / expired / cancelled.
//
// Determinism: scheduling never changes the math. Each served sample's
// output is computed by the same per-row kernels as a serial nn::predict
// of that sample — priorities, deadlines, and thread budgets only decide
// *whether and when* a request runs, never what it computes. The engine
// concurrency tests (tests/test_serve.cpp, tests/test_serve_sched.cpp)
// lock this in. docs/serving.md is the operator's guide to these knobs.
#pragma once

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/compiled_model.h"

namespace crisp::serve {

/// Scheduling class of a request. Lower values are more urgent; the worker
/// always serves the most urgent non-empty class first (strict priority,
/// earliest-deadline-first within a class — undeadlined requests run FIFO
/// behind deadlined ones). Strict priority means a saturated stream of
/// urgent work can starve kBatch indefinitely — that is deliberate: under
/// overload the admission watermarks and displacement shedding, not the
/// scheduler, are the pressure valve (see docs/serving.md).
enum class Priority : int {
  kInteractive = 0,  ///< user-facing, latency-sensitive; served first
  kStandard = 1,     ///< the default class; what submit(Tensor) uses
  kBatch = 2,        ///< throughput work; first to be shed under load
};
/// Number of priority classes (size of per-class option arrays).
inline constexpr int kPriorityCount = 3;

struct EngineOptions {
  /// Most requests one batched forward may coalesce (>= 1). Larger batches
  /// amortize kernel dispatch and feed the batch-parallel kernels real
  /// work; the trade is tail latency for the first request in the batch.
  std::int64_t max_batch = 8;
  /// Bounded queue capacity (>= 1), summed across the priority classes;
  /// beyond it, displacement and then `overflow` decide. The worker
  /// flushes a partial batch as soon as the queue itself is full, so
  /// queue_depth < max_batch never deadlocks blocked producers.
  std::int64_t queue_depth = 128;
  /// How long the worker keeps the forming batch open after its lead
  /// request is picked, coalescing shape-compatible arrivals into the
  /// remaining slots. Zero flushes immediately (lowest latency, smallest
  /// batches).
  std::chrono::microseconds flush_timeout{200};
  /// Cap on kernels-pool threads the engine's forwards may occupy. Applied
  /// as a kernels::ScopedThreadBudget on the worker thread, so it is
  /// per-engine, not process-global: budgets are thread-local, the
  /// *tightest* enclosing cap wins when scopes nest, and each scope
  /// restores what it found on exit. 0 leaves the pool uncapped. Budgets
  /// never change numerics — chunk boundaries stay a pure function of the
  /// loop size — only how many workers participate. Size it roughly as
  /// cores / co-resident engines to avoid oversubscribing the shared pool.
  int thread_budget = 0;
  /// Full-queue policy once admission control and displacement have not
  /// resolved the submit.
  ///   kBlock:  submit() parks the producer until the worker frees space;
  ///            a shutdown() while parked wakes it and it throws
  ///            std::runtime_error (the engine waits for parked producers
  ///            to leave before tearing down, so destruction is safe).
  ///   kReject: the submit is refused and counted in EngineStats::rejected
  ///            — submit(Tensor) throws std::runtime_error (its historical
  ///            contract), submit(Request) completes the future with
  ///            Response::Status::kRejected. Nothing is enqueued.
  /// Accepted requests are served under either policy — overflow only
  /// governs what happens at the admission edge. Open-loop producers
  /// (bench/loadgen.cpp) want kReject: kBlock turns them closed-loop.
  enum class Overflow { kBlock, kReject };
  Overflow overflow = Overflow::kBlock;
  /// Per-class admission watermark as a fraction of queue_depth, indexed
  /// by Priority. When admitting a request of class p would hold with the
  /// queue already at or beyond watermark[p] * queue_depth, the submit is
  /// refused (Status::kRejected) even though absolute capacity remains —
  /// the headroom above a class's watermark is reserved for more urgent
  /// classes. 1.0 (the default) disables the band for that class: it is
  /// then governed only by the full-queue `overflow` policy. Values are
  /// clamped to [0, 1]; the floor of watermark * queue_depth is compared
  /// against the current total queue length.
  std::array<double, kPriorityCount> admission_watermark{{1.0, 1.0, 1.0}};
  /// Reject a deadlined request at submit when its deadline cannot
  /// plausibly be met: the engine estimates completion as
  ///   ema_batch_run * (1 + queued_at_or_above_urgency / max_batch),
  /// an optimistic lower bound from the running average batch time (no
  /// estimate is made — and nothing rejected — until the first batch has
  /// completed). Refused submits complete with Status::kInfeasible and
  /// count in EngineStats::infeasible. A deadline that has *already*
  /// passed at submit is always refused, even with this off. Rejecting at
  /// admission is kinder than accepting work that will only be shed after
  /// consuming queue space — callers get the failure at submit time, while
  /// they can still retry elsewhere.
  bool reject_infeasible = true;
};

/// One unit of serving work for submit(Request). The sample is unbatched
/// (e.g. (C,H,W) or (features,)); the engine adds and strips the batch
/// axis.
struct Request {
  Tensor sample;
  /// Scheduling class; see Priority. submit(Tensor) uses kStandard.
  Priority priority = Priority::kStandard;
  /// Completion deadline relative to the submit call; zero (the default)
  /// means none. A deadlined request is refused at admission when already
  /// infeasible (see EngineOptions::reject_infeasible) and shed with
  /// Status::kExpired if the deadline passes while it is still queued —
  /// it is never served late. A deadline does not abort a forward already
  /// in flight: expiry is checked when batches form.
  std::chrono::microseconds deadline{0};
};

/// Timings of one request, measured on the worker's clock.
struct RequestStats {
  /// submit() accepting the request -> its batch being formed (includes
  /// any flush_timeout spent waiting for stragglers). For terminal
  /// non-served outcomes this is the time from submit to the shed /
  /// expiry / cancellation decision (0 for admission refusals, which
  /// never queued).
  std::chrono::microseconds queue_time{0};
  /// Wall time of the batched forward the request rode in. Shared by every
  /// request of that batch — it is the batch's time, not a per-sample
  /// slice. 0 for non-served outcomes.
  std::chrono::microseconds run_time{0};
  /// Requests coalesced into that forward (1 when served alone; 0 for
  /// non-served outcomes).
  std::int64_t batch_size = 0;
  /// Monotone id of the batched forward this request rode in (the engine's
  /// n-th forward, counting from 0) — -1 for non-served outcomes. Two
  /// served requests compare scheduling order by comparing batch_seq.
  std::int64_t batch_seq = -1;
};

struct Response {
  /// Terminal outcome of the request. Only kOk and kDegraded carry an
  /// output; every other status is the scheduler saying *why* it refused
  /// or dropped the work instead of hiding the drop inside unbounded
  /// latency.
  enum class Status {
    kOk = 0,      ///< served; `output` is valid
    kRejected,    ///< refused at admission: full queue under
                  ///< Overflow::kReject, or the class's watermark band
    kInfeasible,  ///< refused at admission: the deadline had already
                  ///< passed, or could not be met per the completion
                  ///< estimate (EngineOptions::reject_infeasible)
    kExpired,     ///< accepted, but the deadline passed while queued —
                  ///< shed at batch formation instead of served late
    kShed,        ///< accepted, then displaced from a full queue by a
                  ///< more urgent arrival (youngest-of-least-urgent-class
                  ///< victim selection)
    kCancelled,   ///< accepted, then drained unserved by
                  ///< shutdown(Drain::kCancel)
    kDegraded,    ///< served, but from the shared base model instead of
                  ///< the tenant's personalization — tenant::Router's
                  ///< quarantine path for a delta that failed to load or
                  ///< compile; `output` is valid. The engine itself never
                  ///< emits this; the router rewrites kOk on its fallback
                  ///< bridge.
  };
  Status status = Status::kOk;
  /// This sample's output with the batch axis stripped: submitting (C,H,W)
  /// yields the same shape a B=1 forward would, minus the leading 1.
  /// Empty unless status == kOk or kDegraded.
  Tensor output;
  RequestStats stats;
};

/// Aggregate counters since construction (see Engine::stats()). Counters
/// are updated before a request's future is fulfilled, so a caller that
/// observed its response already sees itself counted. The books balance:
///   submit attempts = accepted + rejected + infeasible
///   accepted        = requests + shed + expired + cancelled + still-queued
/// (tests/test_serve_sched.cpp reconciles them after a drain).
struct EngineStats {
  /// Requests admitted into the queue (every future that was not refused
  /// at the admission edge).
  std::int64_t accepted = 0;
  /// Served requests — fulfilled *or* errored (a bad-shape request that
  /// fails its future still counts; it queued and ran). Non-served
  /// terminal outcomes (shed/expired/cancelled) are NOT included.
  std::int64_t requests = 0;
  std::int64_t batches = 0;    ///< batched forwards run
  /// Submits refused at the admission edge for capacity: full queue under
  /// Overflow::kReject (both submit overloads) or a class watermark band.
  std::int64_t rejected = 0;
  /// Submits refused at the admission edge because the deadline had
  /// already passed or was estimated unmeetable (Status::kInfeasible).
  std::int64_t infeasible = 0;
  /// Accepted requests whose deadline passed in the queue (Status::kExpired).
  std::int64_t expired = 0;
  /// Accepted requests displaced from a full queue by a more urgent
  /// arrival (Status::kShed).
  std::int64_t shed = 0;
  /// Accepted requests drained unserved by shutdown(Drain::kCancel).
  std::int64_t cancelled = 0;
  std::int64_t max_batch = 0;  ///< largest batch coalesced so far
  /// Completed swap_model() calls (hot mask/model swaps on a live engine).
  std::int64_t swaps = 0;
  /// Sum of per-request queue_time in microseconds, served requests only
  /// (shed/expired/cancelled queue time would bias the serving picture).
  double total_queue_us = 0.0;
  /// Sum over served requests of the run_time of the batch each rode in (a
  /// batch of n contributes n * its wall time), so mean run time per
  /// request is total_run_us / requests.
  double total_run_us = 0.0;

  /// Mean requests per forward — the batching win the engine exists for.
  double occupancy() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(requests) /
                              static_cast<double>(batches);
  }
  double mean_queue_us() const {
    return requests == 0 ? 0.0 : total_queue_us / static_cast<double>(requests);
  }
};

class Engine {
 public:
  explicit Engine(std::shared_ptr<const CompiledModel> model,
                  EngineOptions options = {});
  ~Engine();  ///< shutdown(Drain::kServe), then joins the worker

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Enqueues one unbatched sample (e.g. (C,H,W) or (features,)) at
  /// Priority::kStandard with no deadline and returns a future that yields
  /// its output and timings. Throws when the engine is shut down, when the
  /// sample is empty, or — under Overflow::kReject — when the queue is
  /// full (the historical contract; the Request overload reports the same
  /// refusal as Status::kRejected instead). Thread-safe.
  std::future<Response> submit(Tensor sample);

  /// Enqueues one prioritized, optionally deadlined request. Admission
  /// refusals (watermark band, full queue under kReject, infeasible
  /// deadline) complete the returned future immediately with the
  /// corresponding non-kOk status — the only throws are misuse (empty
  /// sample, submit after shutdown). Under Overflow::kBlock a full queue
  /// with no displacement victim still parks the caller. Thread-safe.
  std::future<Response> submit(Request request);

  /// What shutdown() does with requests still queued when it is called.
  enum class Drain {
    kServe,   ///< run every queued request to completion (Status::kOk)
    kCancel,  ///< complete queued requests with Status::kCancelled,
              ///< unserved — bounded-time teardown for operators who
              ///< would rather drop work than wait out a deep queue
  };

  /// Stops accepting submissions, wakes producers parked in a kBlock
  /// submit (they throw), waits for them to leave, disposes of everything
  /// already queued per `drain` (a batch already executing always
  /// completes), and joins the worker. Idempotent — but only the first
  /// call's drain policy applies. The destructor calls
  /// shutdown(Drain::kServe), so destroying an engine under concurrent
  /// blocked submitters is safe.
  void shutdown(Drain drain = Drain::kServe);

  /// Atomically replaces the served model on a live engine — the hot mask
  /// swap behind class-set switching and unlearning rollout (docs/criteria.md).
  /// Every request batched after the swap runs on the new model; a batch
  /// already in flight completes on the old one (its shared_ptr keeps the
  /// artifact alive), so no in-flight request ever fails or sees a torn
  /// model. Queued-but-unbatched requests serve on the new model: the swap
  /// point sits between batches, never inside one
  /// (tests/test_serve_swap.cpp drives this under mixed-priority load and
  /// the TSan job). The new model must accept the same input shapes.
  /// Thread-safe; throws only on a null model.
  void swap_model(std::shared_ptr<const CompiledModel> model);

  EngineStats stats() const;
  const EngineOptions& options() const { return options_; }
  /// Snapshot of the currently served model (the swap target may replace
  /// it at any time; the returned pointer stays valid regardless).
  std::shared_ptr<const CompiledModel> model() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    Tensor sample;
    Priority priority = Priority::kStandard;
    std::promise<Response> promise;
    Clock::time_point enqueued;
    /// Absolute deadline; time_point::max() when the request has none.
    Clock::time_point deadline = Clock::time_point::max();
  };

  std::future<Response> submit_impl(Request request, bool legacy_throw);
  void worker_main();
  /// Runs `batch` (uniform shape, already removed from the queues) as one
  /// forward and fulfills every promise (value or exception).
  void run_batch(std::vector<Pending>& batch);
  /// Completes a non-served request with `status` (no output). Called
  /// outside mu_ — the promise is already detached from the queues.
  static void fulfill_terminal(Pending& p, Response::Status status,
                               Clock::time_point now);

  /// The following helpers require mu_ to be held.
  /// Moves every queued request whose deadline has passed into `out`.
  void take_expired_locked(Clock::time_point now, std::vector<Pending>& out);
  /// Moves shape-matching requests into `batch` (most urgent class first,
  /// earliest deadline first within a class, FIFO among undeadlined) until
  /// it holds `target` requests.
  void collect_matching_locked(const Shape& shape, std::int64_t target,
                               std::vector<Pending>& batch);
  /// Optimistic completion-time estimate (µs) for a request of class `p`:
  /// 0 until the first batch has completed.
  double estimated_completion_us_locked(Priority p) const;
  std::int64_t queued_total_locked() const;

  /// Currently served model. Guarded by mu_: run_batch snapshots it under
  /// the lock before each forward, swap_model replaces it under the lock.
  std::shared_ptr<const CompiledModel> model_;
  EngineOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_submitted_;  ///< queue gained work / stopping
  std::condition_variable cv_space_;      ///< queue freed capacity
  std::condition_variable cv_submit_drained_;  ///< blocked submitters left
  /// One queue per priority class; the worker drains the lowest non-empty
  /// index first, earliest deadline first within it (arrival order is
  /// kept, selection scans for the minimum deadline).
  std::array<std::deque<Pending>, kPriorityCount> queues_;
  bool stopping_ = false;
  bool cancel_pending_ = false;  ///< shutdown(kCancel): drop, don't serve
  std::int64_t blocked_submitters_ = 0;  ///< producers parked in submit()
  EngineStats stats_;
  /// Exponential moving average of batched-forward wall time (µs); feeds
  /// the deadline-infeasibility estimate. 0 until the first batch.
  double ema_run_us_ = 0.0;

  std::thread worker_;  ///< started last, so it sees a fully-built engine
};

}  // namespace crisp::serve
