// Iterative sparsity schedule (Algorithm 1, line 3).
//
// κ_p = (1 − N/M) + Δ_p: the N:M ratio sets the sparsity floor and the block
// component Δ grows over iterations until the global target κ is reached.
// Gradual growth is the paper's defence against layer collapse (§III-C).
#pragma once

#include <cstdint>

namespace crisp::core {

struct SparsitySchedule {
  double target = 0.9;         ///< final global sparsity κ
  std::int64_t iterations = 3; ///< Algorithm 1's n
  std::int64_t n = 2;          ///< N of N:M
  std::int64_t m = 4;          ///< M of N:M

  /// Freeze policy: once a layer's installed mask already reaches the
  /// final κ (within `freeze_tolerance`), later iterations skip its
  /// saliency estimation and leave its mask untouched. Off by default —
  /// the paper's schedule re-scores everything every iteration (dense STE
  /// gradients can revive pruned weights), and the default output must
  /// stay bit-identical to it.
  bool freeze_at_target = false;
  double freeze_tolerance = 1e-9;

  /// Sparsity floor (1 − N/M) enforced by the N:M component alone.
  double floor() const {
    return 1.0 - static_cast<double>(n) / static_cast<double>(m);
  }

  /// κ_p for iteration p in [1, iterations]: linear ramp of Δ from
  /// floor → target. When target ≤ floor, every iteration returns target
  /// (no block pruning needed; N:M alone overshoots it).
  double kappa_at(std::int64_t p) const;

  /// Fraction of weight elements block pruning must remove at κ_p, i.e.
  /// 1 − (1−κ_p)·M/N clamped to [0, 1).
  double block_fraction_at(std::int64_t p) const;

  /// True when iteration p may skip a layer whose current mask sparsity is
  /// `achieved`: freeze_at_target is on, this is not the first iteration
  /// (iteration 1 always scores — there is no installed mask yet), and the
  /// layer already sits at the final κ. CrispPruner consults this before
  /// estimating saliency (see estimate_saliency's `active` overload).
  bool layer_frozen(double achieved, std::int64_t p) const;
};

}  // namespace crisp::core
