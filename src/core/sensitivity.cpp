#include "core/sensitivity.h"

#include <algorithm>

#include "core/block_pruning.h"
#include "kernels/parallel_for.h"
#include "nn/trainer.h"
#include "sparse/block.h"
#include "sparse/mask.h"
#include "sparse/nm.h"

namespace crisp::core {

double LayerSensitivity::tolerated_sparsity(double budget) const {
  double best = 0.0;
  for (std::size_t i = 0; i < levels.size(); ++i)
    if (loss_increase[i] <= budget) best = std::max(best, levels[i]);
  return best;
}

std::vector<LayerSensitivity> layer_sensitivity(
    nn::Sequential& model, const data::Dataset& calibration,
    const SensitivityConfig& cfg) {
  CRISP_CHECK(!cfg.levels.empty(), "no sensitivity levels requested");
  CRISP_CHECK(cfg.block % cfg.m == 0, "block must be a multiple of M");
  auto params = model.prunable_parameters();

  // Saliency estimation runs train-mode forwards, which advance BatchNorm
  // running statistics — snapshot and restore so the probes (and the
  // caller) see the exact pre-call model.
  const TensorMap snapshot = model.state_dict();
  const SaliencyMap saliency =
      estimate_saliency(model, calibration, cfg.saliency);
  model.load_state_dict(snapshot);
  const double base =
      nn::evaluate_loss(model, calibration, cfg.batch_size);
  const double nm_density =
      static_cast<double>(cfg.n) / static_cast<double>(cfg.m);

  std::vector<LayerSensitivity> out;
  out.reserve(params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    nn::Parameter& p = *params[i];
    LayerSensitivity ls;
    ls.name = p.name;
    ls.base_loss = base;

    const Tensor saved_mask = p.mask;  // empty when dense
    const sparse::BlockGrid grid{p.matrix_rows, p.matrix_cols, cfg.block};

    LayerBlockInfo info;
    info.grid = grid;
    info.scores = sparse::block_scores(
        as_matrix(saliency[i], p.matrix_rows, p.matrix_cols), grid);
    const Tensor nm = sparse::nm_mask(
        as_matrix(saliency[i], p.matrix_rows, p.matrix_cols), cfg.n, cfg.m);

    for (const double level : cfg.levels) {
      // Element sparsity = 1 − (K'/K)·(N/M): solve for the rank count.
      const double kc =
          std::clamp((1.0 - level) / nm_density, 0.0, 1.0);
      const auto pruned = std::clamp<std::int64_t>(
          static_cast<std::int64_t>(
              std::llround((1.0 - kc) * static_cast<double>(grid.grid_cols()))),
          0, grid.grid_cols() - 1);
      Tensor mask =
          sparse::mask_and(nm, rank_pruned_block_mask(info, pruned));

      p.ensure_mask();
      const double achieved =
          sparse::mask_sparsity(as_matrix(mask, p.matrix_rows, p.matrix_cols));
      kernels::parallel_for(
          mask.numel(),
          [&](std::int64_t e0, std::int64_t e1) {
            for (std::int64_t e = e0; e < e1; ++e) p.mask[e] = mask[e];
          },
          kernels::rows_grain(1));

      const double loss =
          nn::evaluate_loss(model, calibration, cfg.batch_size);
      ls.levels.push_back(achieved);
      ls.loss_increase.push_back(loss - base);

      p.mask = saved_mask;  // restore before the next probe
    }
    out.push_back(std::move(ls));
  }
  return out;
}

}  // namespace crisp::core
