#include "core/schedule.h"

#include <algorithm>

#include "tensor/check.h"

namespace crisp::core {

double SparsitySchedule::kappa_at(std::int64_t p) const {
  CRISP_CHECK(p >= 1 && p <= iterations, "iteration " << p << " out of range");
  CRISP_CHECK(target >= 0.0 && target < 1.0, "target sparsity out of [0,1)");
  const double f = floor();
  if (target <= f) return target;
  const double step = static_cast<double>(p) / static_cast<double>(iterations);
  return f + (target - f) * step;
}

double SparsitySchedule::block_fraction_at(std::int64_t p) const {
  const double kappa = kappa_at(p);
  const double keep_cols = (1.0 - kappa) * static_cast<double>(m) /
                           static_cast<double>(n);
  return std::clamp(1.0 - keep_cols, 0.0, 1.0);
}

bool SparsitySchedule::layer_frozen(double achieved, std::int64_t p) const {
  if (!freeze_at_target || p <= 1) return false;
  return achieved >= kappa_at(iterations) - freeze_tolerance;
}

}  // namespace crisp::core
