// Class unlearning by saliency-targeted mask pruning — the CRISP machinery
// run in reverse.
//
// CRISP keeps the blocks salient for the classes a user *sees*; unlearning
// removes the blocks salient for classes the deployment must *forget*
// (right-to-be-forgotten, expired content packs, tenant class churn). The
// same criterion registry scores the forget set and the retain set
// separately; the forget-specificity score
//
//   spec = normalize(S_forget) − retain_weight · normalize(S_retain)
//
// ranks blocks by how exclusively the forget classes rely on them
// (per-layer normalization keeps layers comparable; compare the TF-IDF
// channel scoring of wangjunxiao/unlearning in SNIPPETS.md). The top
// `drop_per_row` blocks of every block-row are pruned — dropping the SAME
// count per row keeps the CRISP uniform-rows invariant, so the unlearned
// mask stays packable AND expressible as a tenant::MaskDelta against the
// pre-unlearning model (a strict restriction of it). A short retain-set
// fine-tune then repairs retained accuracy while deepening the forgetting
// (gradients only flow from retain batches; masked forget-blocks stay 0).
//
// serve::Engine::swap_model is the deployment half: compile the unlearned
// model and swap it into a live engine with zero failed in-flight requests
// (tests/test_serve_swap.cpp), or ship it fleet-wide as a refreshed mask
// delta through tenant::Router::refresh_tenant.
#pragma once

#include <string>
#include <vector>

#include "core/saliency.h"
#include "nn/sequential.h"
#include "nn/trainer.h"

namespace crisp::core {

struct UnlearnConfig {
  /// Registry criterion scoring both the forget and retain sets ("auto" is
  /// not meaningful here — the two sweeps must be comparable).
  std::string criterion = "cass";
  /// Blocks pruned from every block-row of every prunable layer. The
  /// element sparsity added is drop_per_row / grid_cols per layer.
  std::int64_t drop_per_row = 1;
  std::int64_t block = 16;  ///< block side (match the serving artifact's)
  /// Penalty weight on retain-set saliency when ranking forget blocks:
  /// 0 forgets hardest, larger values protect shared features first.
  double retain_weight = 1.0;
  SaliencyConfig saliency;  ///< estimation settings (criterion overridden)
  /// Retain-set recovery epochs after mask install (0 = mask-only).
  std::int64_t finetune_epochs = 4;
  nn::SgdConfig finetune_sgd{/*lr=*/0.02f, /*momentum=*/0.9f,
                             /*weight_decay=*/4e-5f};
  std::int64_t batch_size = 32;
};

struct UnlearnReport {
  /// Blocks pruned per block-row, per prunable parameter (0 where the grid
  /// is too narrow to drop without emptying the row).
  std::vector<std::int64_t> dropped_per_row;
  double sparsity_before = 0.0;  ///< global mask sparsity pre-unlearning
  double sparsity_after = 0.0;
  float finetune_loss = 0.0f;  ///< last retain fine-tune epoch's loss
};

/// Computes the forget-specificity masks WITHOUT installing them: for each
/// prunable parameter, a mask that zeroes the `drop_per_row` most
/// forget-specific *surviving* blocks of every block-row (already-pruned
/// blocks are never selected, so the result ANDs into the current mask).
/// Parameters whose grid cannot give up a block (≤ drop_per_row surviving
/// blocks in some row) come back as empty tensors (left untouched).
std::vector<Tensor> derive_forget_masks(nn::Sequential& model,
                                        const data::Dataset& forget,
                                        const data::Dataset& retain,
                                        const UnlearnConfig& cfg);

/// Full unlearning pass: derive forget masks, AND them into the installed
/// masks, fine-tune on the retain set. The model keeps STE semantics —
/// masked weights stay resident, so unlearning is reversible by mask swap
/// until bake().
UnlearnReport unlearn_classes(nn::Sequential& model,
                              const data::Dataset& forget,
                              const data::Dataset& retain,
                              const UnlearnConfig& cfg, Rng& rng);

}  // namespace crisp::core
