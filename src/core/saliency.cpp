#include "core/saliency.h"

#include <cmath>

#include "kernels/parallel_for.h"
#include "nn/loss.h"

namespace crisp::core {

const char* saliency_kind_name(SaliencyKind kind) {
  switch (kind) {
    case SaliencyKind::kClassAwareGradient: return "cass";
    case SaliencyKind::kMagnitude: return "magnitude";
    case SaliencyKind::kRandom: return "random";
  }
  return "unknown";
}

SaliencyMap estimate_saliency(nn::Sequential& model,
                              const data::Dataset& calibration,
                              const SaliencyConfig& cfg) {
  auto params = model.prunable_parameters();
  SaliencyMap scores;
  scores.reserve(params.size());

  switch (cfg.kind) {
    case SaliencyKind::kMagnitude: {
      for (nn::Parameter* p : params) {
        Tensor s(p->value.shape());
        kernels::parallel_for(
            s.numel(),
            [&](std::int64_t i0, std::int64_t i1) {
              for (std::int64_t i = i0; i < i1; ++i)
                s[i] = std::fabs(p->value[i]);
            },
            kernels::rows_grain(1));
        scores.push_back(std::move(s));
      }
      return scores;
    }
    case SaliencyKind::kRandom: {
      Rng rng(cfg.seed);
      for (nn::Parameter* p : params)
        scores.push_back(Tensor::rand(p->value.shape(), rng, 1e-3f, 1.0f));
      return scores;
    }
    case SaliencyKind::kClassAwareGradient:
      break;
  }

  CRISP_CHECK(calibration.size() > 0,
              "CASS needs calibration samples of the user classes");
  model.zero_grad();
  Rng rng(cfg.seed);
  std::int64_t batches = 0;
  for (const auto& batch :
       data::make_batches(calibration, cfg.batch_size, rng, /*shuffle=*/true)) {
    if (cfg.max_batches >= 0 && batches >= cfg.max_batches) break;
    Tensor logits = model.forward(batch.images, /*train=*/true);
    nn::LossResult loss = nn::cross_entropy(logits, batch.labels);
    model.backward(loss.grad);  // gradients accumulate across batches
    ++batches;
  }
  CRISP_CHECK(batches > 0, "no calibration batches were processed");

  const float inv = 1.0f / static_cast<float>(batches);
  for (nn::Parameter* p : params) {
    // T_w = |(1/H) Σ ∂L/∂W| ⊙ |W| — elementwise over the (already
    // batch-accumulated, thread-count-invariant) gradient, so the sweep
    // threads with disjoint writes.
    Tensor s(p->value.shape());
    kernels::parallel_for(
        s.numel(),
        [&](std::int64_t i0, std::int64_t i1) {
          for (std::int64_t i = i0; i < i1; ++i)
            s[i] = std::fabs(p->grad[i] * inv) * std::fabs(p->value[i]);
        },
        kernels::rows_grain(1));
    scores.push_back(std::move(s));
  }
  model.zero_grad();  // leave no stale gradients for the next training phase
  return scores;
}

}  // namespace crisp::core
