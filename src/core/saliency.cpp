#include "core/saliency.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>

#include "kernels/parallel_for.h"
#include "nn/loss.h"

namespace crisp::core {

namespace {

/// Resolves the active bitmask: empty means "all active".
bool is_active(const std::vector<std::uint8_t>& active, std::size_t i) {
  return active.empty() || active[i] != 0;
}

void check_active_size(const std::vector<std::uint8_t>& active,
                       std::size_t nparams) {
  CRISP_CHECK(active.empty() || active.size() == nparams,
              "active bitmask size " << active.size() << " does not match "
                                     << nparams << " prunable parameters");
}

// ---- built-in criteria ------------------------------------------------------

class MagnitudeCriterion final : public SaliencyCriterion {
 public:
  const char* name() const override { return "magnitude"; }
  bool needs_gradients() const override { return false; }

  SaliencyMap compute(nn::Sequential& model, const data::Dataset&,
                      const SaliencyConfig&,
                      const std::vector<std::uint8_t>& active) override {
    auto params = model.prunable_parameters();
    check_active_size(active, params.size());
    SaliencyMap scores(params.size());
    for (std::size_t i = 0; i < params.size(); ++i) {
      if (!is_active(active, i)) continue;
      const nn::Parameter& p = *params[i];
      Tensor s(p.value.shape());
      kernels::parallel_for(
          s.numel(),
          [&](std::int64_t i0, std::int64_t i1) {
            for (std::int64_t e = i0; e < i1; ++e)
              s[e] = std::fabs(p.value[e]);
          },
          kernels::rows_grain(1));
      scores[i] = std::move(s);
    }
    return scores;
  }
};

class RandomCriterion final : public SaliencyCriterion {
 public:
  const char* name() const override { return "random"; }
  bool needs_gradients() const override { return false; }

  SaliencyMap compute(nn::Sequential& model, const data::Dataset&,
                      const SaliencyConfig& cfg,
                      const std::vector<std::uint8_t>& active) override {
    auto params = model.prunable_parameters();
    check_active_size(active, params.size());
    SaliencyMap scores(params.size());
    for (std::size_t i = 0; i < params.size(); ++i) {
      if (!is_active(active, i)) continue;
      // Per-parameter seeding keeps each score a function of (seed, index)
      // alone, so freezing one layer never shifts another layer's draw.
      Rng rng(cfg.seed + 0x9E3779B9u * static_cast<std::uint64_t>(i + 1));
      scores[i] = Tensor::rand(params[i]->value.shape(), rng, 1e-3f, 1.0f);
    }
    return scores;
  }
};

/// CASS — the paper's metric: |(1/H) Σ ∂L/∂W| ⊙ |W|. Gradients accumulate
/// across batches in p->grad (no zeroing between batches), preserving the
/// original implementation's float summation order bit-for-bit.
class CassCriterion final : public SaliencyCriterion {
 public:
  const char* name() const override { return "cass"; }
  bool needs_gradients() const override { return true; }

  SaliencyMap compute(nn::Sequential& model, const data::Dataset& calibration,
                      const SaliencyConfig& cfg,
                      const std::vector<std::uint8_t>& active) override {
    auto params = model.prunable_parameters();
    check_active_size(active, params.size());
    const std::int64_t batches = for_each_calibration_batch(
        model, calibration, cfg, /*zero_between_batches=*/false, nullptr);
    // Accumulated total sits in p->grad after the sweep; the elementwise
    // sweep threads with disjoint writes.
    const float inv = 1.0f / static_cast<float>(batches);
    SaliencyMap scores(params.size());
    for (std::size_t i = 0; i < params.size(); ++i) {
      if (!is_active(active, i)) continue;
      const nn::Parameter& p = *params[i];
      Tensor s(p.value.shape());
      kernels::parallel_for(
          s.numel(),
          [&](std::int64_t i0, std::int64_t i1) {
            for (std::int64_t e = i0; e < i1; ++e)
              s[e] = std::fabs(p.grad[e] * inv) * std::fabs(p.value[e]);
          },
          kernels::rows_grain(1));
      scores[i] = std::move(s);
    }
    model.zero_grad();  // leave no stale gradients for the next phase
    return scores;
  }
};

/// Diagonal-Fisher loss-change estimate: mean over batches of grad² ⊙ W².
/// ΔL from zeroing w ≈ ½ g² w² under the Fisher approximation of the loss
/// curvature — a second-order flavour that, unlike cass, squares the
/// gradient *per batch*, so high-variance weights score high even when
/// their mean gradient cancels to ~0 across batches.
class TaylorCriterion final : public SaliencyCriterion {
 public:
  const char* name() const override { return "taylor"; }
  bool needs_gradients() const override { return true; }

  SaliencyMap compute(nn::Sequential& model, const data::Dataset& calibration,
                      const SaliencyConfig& cfg,
                      const std::vector<std::uint8_t>& active) override {
    auto params = model.prunable_parameters();
    check_active_size(active, params.size());
    // Per-parameter grad² accumulators, filled batch-by-batch in a fixed
    // order (elementwise, disjoint writes — thread-count independent).
    std::vector<Tensor> sq(params.size());
    for (std::size_t i = 0; i < params.size(); ++i)
      if (is_active(active, i)) sq[i] = Tensor::zeros(params[i]->value.shape());

    const std::int64_t batches = for_each_calibration_batch(
        model, calibration, cfg, /*zero_between_batches=*/true,
        [&](std::int64_t) {
          for (std::size_t i = 0; i < params.size(); ++i) {
            if (!is_active(active, i)) continue;
            const nn::Parameter& p = *params[i];
            Tensor& acc = sq[i];
            kernels::parallel_for(
                acc.numel(),
                [&](std::int64_t i0, std::int64_t i1) {
                  for (std::int64_t e = i0; e < i1; ++e)
                    acc[e] += p.grad[e] * p.grad[e];
                },
                kernels::rows_grain(1));
          }
        });

    const float inv = 1.0f / static_cast<float>(batches);
    SaliencyMap scores(params.size());
    for (std::size_t i = 0; i < params.size(); ++i) {
      if (!is_active(active, i)) continue;
      const nn::Parameter& p = *params[i];
      Tensor s(p.value.shape());
      const Tensor& acc = sq[i];
      kernels::parallel_for(
          s.numel(),
          [&](std::int64_t i0, std::int64_t i1) {
            for (std::int64_t e = i0; e < i1; ++e)
              s[e] = (acc[e] * inv) * (p.value[e] * p.value[e]);
          },
          kernels::rows_grain(1));
      scores[i] = std::move(s);
    }
    model.zero_grad();  // last batch's gradients are still resident
    return scores;
  }
};

/// Class-wise structured lasso (arXiv:2502.09125 flavour): the group is the
/// output-channel row of the reshaped S x K matrix, and every element's
/// score is |W| weighted by its group's L2 gradient energy —
///   s[r, c] = |W[r, c]| * sqrt(Σ_j (mean grad[r, j])²).
/// Rows whose class-aware gradient energy is concentrated protect all their
/// weights; rows the user classes never excite score near zero as a group,
/// which is exactly the structured-sparsity prior.
class LassoCriterion final : public SaliencyCriterion {
 public:
  const char* name() const override { return "lasso"; }
  bool needs_gradients() const override { return true; }

  SaliencyMap compute(nn::Sequential& model, const data::Dataset& calibration,
                      const SaliencyConfig& cfg,
                      const std::vector<std::uint8_t>& active) override {
    auto params = model.prunable_parameters();
    check_active_size(active, params.size());
    SaliencyMap scores(params.size());
    std::int64_t last = -1;
    for_each_calibration_batch(
        model, calibration, cfg, /*zero_between_batches=*/false,
        [&](std::int64_t b) { last = b; });
    const float inv = 1.0f / static_cast<float>(last + 1);

    for (std::size_t i = 0; i < params.size(); ++i) {
      if (!is_active(active, i)) continue;
      const nn::Parameter& p = *params[i];
      const std::int64_t rows = p.matrix_rows, cols = p.matrix_cols;
      Tensor s(p.value.shape());
      // One owner per row: the serial in-row sum fixes the float order, so
      // the group norm never depends on the thread count.
      kernels::parallel_for(
          rows,
          [&](std::int64_t r0, std::int64_t r1) {
            for (std::int64_t r = r0; r < r1; ++r) {
              float energy = 0.0f;
              for (std::int64_t c = 0; c < cols; ++c) {
                const float g = p.grad[r * cols + c] * inv;
                energy += g * g;
              }
              const float group = std::sqrt(energy);
              for (std::int64_t c = 0; c < cols; ++c)
                s[r * cols + c] =
                    std::fabs(p.value[r * cols + c]) * group;
            }
          },
          kernels::rows_grain(cols));
      scores[i] = std::move(s);
    }
    model.zero_grad();  // leave no stale gradients for the next phase
    return scores;
  }
};

// ---- registry ---------------------------------------------------------------

struct Registry {
  std::mutex mu;
  std::map<std::string, CriterionFactory> factories;
};

Registry& registry() {
  static Registry* r = [] {
    auto* reg = new Registry();
    reg->factories["cass"] = [] {
      return std::unique_ptr<SaliencyCriterion>(new CassCriterion());
    };
    reg->factories["taylor"] = [] {
      return std::unique_ptr<SaliencyCriterion>(new TaylorCriterion());
    };
    reg->factories["lasso"] = [] {
      return std::unique_ptr<SaliencyCriterion>(new LassoCriterion());
    };
    reg->factories["magnitude"] = [] {
      return std::unique_ptr<SaliencyCriterion>(new MagnitudeCriterion());
    };
    reg->factories["random"] = [] {
      return std::unique_ptr<SaliencyCriterion>(new RandomCriterion());
    };
    return reg;
  }();
  return *r;
}

}  // namespace

void register_criterion(const std::string& name, CriterionFactory factory) {
  CRISP_CHECK(!name.empty() && name != "auto",
              "invalid criterion name '" << name << "'");
  CRISP_CHECK(factory != nullptr, "null factory for criterion '" << name << "'");
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  r.factories[name] = std::move(factory);
}

bool has_criterion(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  return r.factories.count(name) != 0;
}

std::vector<std::string> criterion_names() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  std::vector<std::string> names;
  names.reserve(r.factories.size());
  for (const auto& [name, _] : r.factories) names.push_back(name);
  return names;  // std::map iterates sorted
}

std::unique_ptr<SaliencyCriterion> make_criterion(const std::string& name) {
  CRISP_CHECK(name != "auto",
              "'auto' is the per-layer selector, not a criterion — resolve it "
              "via core/criterion_select.h (CrispPruner does this for you)");
  CriterionFactory factory;
  {
    Registry& r = registry();
    std::lock_guard<std::mutex> lk(r.mu);
    auto it = r.factories.find(name);
    if (it != r.factories.end()) factory = it->second;
  }
  if (!factory) {
    std::string known;
    for (const std::string& n : criterion_names()) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    CRISP_CHECK(false, "unknown saliency criterion '"
                           << name << "' (registered: " << known << ")");
  }
  auto criterion = factory();
  CRISP_CHECK(criterion != nullptr,
              "criterion factory for '" << name << "' returned null");
  return criterion;
}

std::int64_t for_each_calibration_batch(
    nn::Sequential& model, const data::Dataset& calibration,
    const SaliencyConfig& cfg, bool zero_between_batches,
    const std::function<void(std::int64_t)>& on_batch) {
  CRISP_CHECK(calibration.size() > 0,
              "gradient-based saliency needs calibration samples of the user "
              "classes");
  model.zero_grad();
  Rng rng(cfg.seed);
  std::int64_t batches = 0;
  for (const auto& batch :
       data::make_batches(calibration, cfg.batch_size, rng, /*shuffle=*/true)) {
    if (cfg.max_batches >= 0 && batches >= cfg.max_batches) break;
    if (zero_between_batches && batches > 0) model.zero_grad();
    Tensor logits = model.forward(batch.images, /*train=*/true);
    nn::LossResult loss = nn::cross_entropy(logits, batch.labels);
    model.backward(loss.grad);  // gradients accumulate within the batch
    if (on_batch) on_batch(batches);
    ++batches;
  }
  CRISP_CHECK(batches > 0, "no calibration batches were processed");
  // Gradients are deliberately NOT zeroed here: without zero_between_batches
  // the accumulated total in p->grad IS the result the caller reads next.
  // Criteria zero them once the scores are computed.
  return batches;
}

SaliencyMap estimate_saliency(nn::Sequential& model,
                              const data::Dataset& calibration,
                              const SaliencyConfig& cfg) {
  return estimate_saliency(model, calibration, cfg, {});
}

SaliencyMap estimate_saliency(nn::Sequential& model,
                              const data::Dataset& calibration,
                              const SaliencyConfig& cfg,
                              const std::vector<std::uint8_t>& active) {
  auto criterion = make_criterion(cfg.criterion);
  SaliencyMap scores = criterion->compute(model, calibration, cfg, active);
  CRISP_CHECK(scores.size() == model.prunable_parameters().size(),
              "criterion '" << cfg.criterion << "' returned "
                            << scores.size() << " score tensors");
  return scores;
}

SaliencyMap estimate_saliency_selected(
    nn::Sequential& model, const data::Dataset& calibration,
    const SaliencyConfig& cfg, const std::vector<std::string>& per_layer) {
  auto params = model.prunable_parameters();
  CRISP_CHECK(per_layer.size() == params.size(),
              "per-layer criterion list size " << per_layer.size()
                                               << " != " << params.size()
                                               << " prunable parameters");
  SaliencyMap merged(params.size());
  // First-appearance order keeps the calibration sweeps deterministic. An
  // empty name marks a frozen layer: no sweep, empty tensor in the result.
  std::vector<std::string> order;
  for (const std::string& name : per_layer)
    if (!name.empty() &&
        std::find(order.begin(), order.end(), name) == order.end())
      order.push_back(name);

  for (const std::string& name : order) {
    std::vector<std::uint8_t> active(params.size(), 0);
    for (std::size_t i = 0; i < params.size(); ++i)
      if (per_layer[i] == name) active[i] = 1;
    SaliencyConfig sub = cfg;
    sub.criterion = name;
    SaliencyMap part = estimate_saliency(model, calibration, sub, active);
    for (std::size_t i = 0; i < params.size(); ++i)
      if (active[i] != 0) merged[i] = std::move(part[i]);
  }
  return merged;
}

}  // namespace crisp::core
