// Uniform coarse-grained block pruning with global rank-column selection
// (Algorithm 1, lines 4-10).
//
// Per layer: block scores are sorted ascending inside each block-row
// (line 6), turning the grid into *rank columns* — rank o holds every row's
// o-th least-salient block. Column aggregation (line 7) sums each rank
// column; because sums of order statistics are non-decreasing in o, the
// globally-sorted selection (lines 8-9) always takes a per-layer *prefix*
// of ranks. Pruning rank o therefore removes exactly one block from every
// block-row — the equal-blocks-per-row invariant hardware needs — while
// different layers lose different numbers of ranks, which is what produces
// the non-uniform layer sparsity of Fig. 2.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/sequential.h"
#include "sparse/block.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace crisp::core {

struct LayerBlockInfo {
  Tensor scores;           ///< block-score grid (grid_rows x grid_cols)
  sparse::BlockGrid grid;  ///< geometry of the layer's weight matrix
};

/// Cross-layer comparability of rank-column scores. The paper sorts C_o
/// "globally across the network" without specifying a scale; raw sums let
/// wide layers dominate and per-element means let high-gradient layers
/// starve everyone else (both verified in bench/ablation_normalization).
enum class BlockScoreNorm {
  kNone,             ///< raw aggregate C_o
  kMeanPerElement,   ///< C_o / elements in the rank column
  kLayerFraction,    ///< C_o / Σ layer saliency — fraction of the layer's
                     ///< information the column holds (default; small layers
                     ///< self-protect, concentrated layers still reach ~99 %)
};

struct BlockPruningConfig {
  BlockScoreNorm norm = BlockScoreNorm::kLayerFraction;
  /// Layer-collapse guard: every layer keeps at least this many rank
  /// columns (paper §III-C cites SynFlow's collapse phenomenon).
  std::int64_t min_kept_ranks = 1;
};

/// Decides how many rank columns each layer prunes so that the weight
/// elements removed by block pruning reach `element_fraction` of all
/// prunable elements. Returns per-layer pruned-rank counts, aligned with
/// `layers`.
std::vector<std::int64_t> plan_rank_column_pruning(
    const std::vector<LayerBlockInfo>& layers, double element_fraction,
    const BlockPruningConfig& cfg);

/// Expands a layer's pruned-rank count into its element-level block mask:
/// each block-row zeroes its `pruned_ranks` lowest-scoring blocks.
Tensor rank_pruned_block_mask(const LayerBlockInfo& layer,
                              std::int64_t pruned_ranks);

/// Builds a hybrid-pattern mask (N:M ∧ uniform-row block pruning) from
/// random scores — the exact invariant the CRISP pruner guarantees, without
/// running the pruner. Tests, benches, and demos share this one recipe so
/// they all exercise the pattern the packed format encodes.
Tensor random_hybrid_mask(Rng& rng, std::int64_t rows, std::int64_t cols,
                          std::int64_t block, std::int64_t n, std::int64_t m,
                          std::int64_t pruned_ranks);

/// Installs a random_hybrid_mask on every prunable parameter of `model`.
void install_random_hybrid_masks(nn::Sequential& model, std::int64_t block,
                                 std::int64_t n, std::int64_t m,
                                 std::int64_t pruned_ranks,
                                 std::uint64_t seed = 3);

}  // namespace crisp::core
