// CRISP iterative pruning framework — Algorithm 1 of the paper.
//
// Per iteration p = 1..n:
//   (2)  re-select N:M masks from class-aware saliency of the dense weights
//   (3)  raise the sparsity target κ_p along the schedule
//   (4-10) class-aware block scores → per-row rank sort → global rank-column
//        selection → uniform block masks
//   (11) fine-tune δ epochs on the user-class data (masked forward, STE
//        updates on dense weights)
// Masks stay installed on the model afterwards; call bake() for deployment.
#pragma once

#include "core/accounting.h"
#include "core/block_pruning.h"
#include "core/saliency.h"
#include "core/schedule.h"
#include "nn/trainer.h"

namespace crisp::core {

struct CrispConfig {
  std::int64_t n = 2;             ///< N of N:M
  std::int64_t m = 4;             ///< M of N:M
  std::int64_t block = 16;        ///< block side B (paper: 16..64)
  double target_sparsity = 0.90;  ///< global κ
  std::int64_t iterations = 3;    ///< Algorithm 1's n
  std::int64_t finetune_epochs = 2;  ///< δ per iteration
  /// Extra fine-tune epochs after the last iteration — the tail of the
  /// paper's 50-epoch budget that runs at the final sparsity, where the
  /// accuracy recovery happens.
  std::int64_t recovery_epochs = 16;
  nn::SgdConfig finetune_sgd{/*lr=*/0.02f, /*momentum=*/0.9f,
                             /*weight_decay=*/4e-5f};
  std::int64_t batch_size = 32;
  /// saliency.criterion names any registered criterion, or "auto" — the
  /// loss-aware per-layer selector (core/criterion_select.h), resolved once
  /// before iteration 1 and reused for every iteration.
  SaliencyConfig saliency;
  /// Candidates the "auto" criterion chooses between (ignored otherwise).
  std::vector<std::string> auto_candidates{"cass", "lasso", "taylor"};
  BlockPruningConfig block_pruning;
  /// Skip saliency estimation and mask re-selection for layers whose mask
  /// already sits at the final κ (SparsitySchedule::freeze_at_target). Off
  /// by default: the paper's schedule re-scores every layer each iteration.
  bool freeze_at_target = false;
  /// Disable the N:M component (pure block pruning — the Fig. 3 baseline).
  bool enable_nm = true;
  /// Disable the block component (pure N:M — the Fig. 1 configuration).
  bool enable_block = true;
  bool verbose = false;
};

struct IterationStats {
  std::int64_t iteration = 0;
  double kappa_target = 0.0;
  double achieved_sparsity = 0.0;
  float finetune_loss = 0.0f;  ///< last fine-tune epoch's training loss
};

struct PruneReport {
  std::vector<IterationStats> iterations;
  ModelCensus census;  ///< final per-layer state
  /// Criterion that scored each prunable parameter. All identical for a
  /// fixed criterion; the per-layer winners when saliency.criterion=="auto".
  std::vector<std::string> criterion_per_layer;
  /// Per-iteration count of layers skipped by the freeze policy.
  std::vector<std::int64_t> frozen_per_iteration;

  double achieved_sparsity() const { return census.global_sparsity; }
};

class CrispPruner {
 public:
  CrispPruner(nn::Sequential& model, const CrispConfig& cfg);

  /// Runs the full iterative loop. `user_data` is the fine-tuning/
  /// calibration split restricted to the user-preferred classes.
  PruneReport run(const data::Dataset& user_data, Rng& rng);

  /// Permanently zeroes masked weights (deployment artifact).
  void bake();

  const CrispConfig& config() const { return cfg_; }

 private:
  std::vector<Tensor> select_block_masks(const SaliencyMap& saliency,
                                         double element_fraction);

  nn::Sequential& model_;
  CrispConfig cfg_;
};

}  // namespace crisp::core
