#include "core/criterion_select.h"

#include <algorithm>
#include <set>

#include "core/block_pruning.h"
#include "kernels/parallel_for.h"
#include "nn/trainer.h"
#include "sparse/block.h"
#include "sparse/mask.h"
#include "sparse/nm.h"

namespace crisp::core {

std::int64_t AutoSelection::distinct_chosen() const {
  std::set<std::string> seen;
  for (const std::string& name : per_layer)
    if (!name.empty()) seen.insert(name);
  return static_cast<std::int64_t>(seen.size());
}

AutoSelection auto_select_criteria(nn::Sequential& model,
                                   const data::Dataset& validation,
                                   const AutoSelectConfig& cfg) {
  CRISP_CHECK(!cfg.candidates.empty(), "no candidate criteria to select from");
  CRISP_CHECK(cfg.probe_sparsity > 0.0 && cfg.probe_sparsity < 1.0,
              "probe sparsity out of (0, 1)");
  CRISP_CHECK(cfg.block % cfg.m == 0, "block must be a multiple of M");
  auto params = model.prunable_parameters();

  // One saliency map per candidate. Estimation runs train-mode forwards
  // (BatchNorm statistics advance), so snapshot/restore around each sweep —
  // every candidate then scores the identical model, and the probes below
  // measure the identical base.
  const TensorMap snapshot = model.state_dict();
  std::vector<SaliencyMap> maps;
  maps.reserve(cfg.candidates.size());
  for (const std::string& name : cfg.candidates) {
    SaliencyConfig sub = cfg.saliency;
    sub.criterion = name;
    maps.push_back(estimate_saliency(model, validation, sub));
    model.load_state_dict(snapshot);
  }

  const double base = nn::evaluate_loss(model, validation, cfg.batch_size);
  const double nm_density =
      static_cast<double>(cfg.n) / static_cast<double>(cfg.m);

  AutoSelection sel;
  sel.candidates = cfg.candidates;
  sel.per_layer.resize(params.size());
  sel.loss_increase.assign(cfg.candidates.size(),
                           std::vector<double>(params.size(), 0.0));

  for (std::size_t i = 0; i < params.size(); ++i) {
    nn::Parameter& p = *params[i];
    const Tensor saved_mask = p.mask;  // empty when dense
    const sparse::BlockGrid grid{p.matrix_rows, p.matrix_cols, cfg.block};

    std::size_t best = 0;
    for (std::size_t c = 0; c < cfg.candidates.size(); ++c) {
      // Probe mask from THIS candidate's scores: N:M ∧ rank-pruned blocks
      // at the requested element sparsity (sensitivity.cpp's recipe).
      const auto sal = as_matrix(maps[c][i], p.matrix_rows, p.matrix_cols);
      LayerBlockInfo info;
      info.grid = grid;
      info.scores = sparse::block_scores(sal, grid);
      const double kc =
          std::clamp((1.0 - cfg.probe_sparsity) / nm_density, 0.0, 1.0);
      const auto pruned = std::clamp<std::int64_t>(
          static_cast<std::int64_t>(std::llround(
              (1.0 - kc) * static_cast<double>(grid.grid_cols()))),
          0, grid.grid_cols() - 1);
      Tensor mask = sparse::mask_and(sparse::nm_mask(sal, cfg.n, cfg.m),
                                     rank_pruned_block_mask(info, pruned));

      p.ensure_mask();
      kernels::parallel_for(
          mask.numel(),
          [&](std::int64_t e0, std::int64_t e1) {
            for (std::int64_t e = e0; e < e1; ++e) p.mask[e] = mask[e];
          },
          kernels::rows_grain(1));
      const double loss = nn::evaluate_loss(model, validation, cfg.batch_size);
      p.mask = saved_mask;  // restore before the next probe

      sel.loss_increase[c][i] = loss - base;
      if (sel.loss_increase[c][i] < sel.loss_increase[best][i]) best = c;
    }
    sel.per_layer[i] = cfg.candidates[best];
  }
  return sel;
}

}  // namespace crisp::core
