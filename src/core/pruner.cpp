#include "core/pruner.h"

#include <cstdio>

#include "core/criterion_select.h"
#include "core/nm_pruning.h"

namespace crisp::core {

CrispPruner::CrispPruner(nn::Sequential& model, const CrispConfig& cfg)
    : model_(model), cfg_(cfg) {
  CRISP_CHECK(cfg_.m >= 1 && cfg_.n >= 1 && cfg_.n <= cfg_.m,
              "invalid N:M = " << cfg_.n << ":" << cfg_.m);
  CRISP_CHECK(cfg_.block >= 1 && cfg_.block % cfg_.m == 0,
              "block size must be a positive multiple of M");
  CRISP_CHECK(cfg_.iterations >= 1, "need at least one iteration");
  CRISP_CHECK(cfg_.target_sparsity >= 0.0 && cfg_.target_sparsity < 1.0,
              "target sparsity out of [0, 1)");
  CRISP_CHECK(!model_.prunable_parameters().empty(),
              "model has no prunable parameters");
}

std::vector<Tensor> CrispPruner::select_block_masks(const SaliencyMap& saliency,
                                                    double element_fraction) {
  auto params = model_.prunable_parameters();
  // Frozen layers (empty saliency) sit out of the global rank-column plan
  // entirely: they neither receive a new mask nor distort the budget the
  // active layers share.
  std::vector<LayerBlockInfo> infos;
  std::vector<std::size_t> active_idx;
  infos.reserve(params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (saliency[i].numel() == 0) continue;
    const nn::Parameter& p = *params[i];
    LayerBlockInfo info;
    info.grid = sparse::BlockGrid{p.matrix_rows, p.matrix_cols, cfg_.block};
    info.scores = sparse::block_scores(
        as_matrix(saliency[i], p.matrix_rows, p.matrix_cols), info.grid);
    infos.push_back(std::move(info));
    active_idx.push_back(i);
  }

  const auto pruned_ranks =
      plan_rank_column_pruning(infos, element_fraction, cfg_.block_pruning);

  std::vector<Tensor> masks(params.size());
  for (std::size_t a = 0; a < active_idx.size(); ++a) {
    const std::size_t i = active_idx[a];
    Tensor mask = rank_pruned_block_mask(infos[a], pruned_ranks[a]);
    mask.reshape_inplace(params[i]->value.shape());
    masks[i] = std::move(mask);
  }
  return masks;
}

PruneReport CrispPruner::run(const data::Dataset& user_data, Rng& rng) {
  PruneReport report;
  SparsitySchedule schedule{cfg_.target_sparsity, cfg_.iterations, cfg_.n,
                            cfg_.m};
  schedule.freeze_at_target = cfg_.freeze_at_target;
  if (!cfg_.enable_nm) {
    // Pure block pruning has no N:M floor: the whole κ must come from
    // blocks, so treat the floor as zero by using 1:1 "N:M".
    schedule.n = schedule.m = 1;
  }

  auto params = model_.prunable_parameters();
  const bool use_auto = cfg_.saliency.criterion == "auto";
  if (use_auto) {
    // Resolve the per-layer assignment once on the pre-pruning model; every
    // iteration reuses it (core/criterion_select.h).
    AutoSelectConfig ac;
    ac.candidates = cfg_.auto_candidates;
    ac.n = cfg_.n;
    ac.m = cfg_.m;
    ac.block = cfg_.block;
    ac.batch_size = cfg_.batch_size;
    ac.saliency = cfg_.saliency;
    const AutoSelection sel = auto_select_criteria(model_, user_data, ac);
    report.criterion_per_layer = sel.per_layer;
    if (cfg_.verbose)
      for (std::size_t i = 0; i < sel.per_layer.size(); ++i)
        std::printf("[crisp] auto-criterion %-24s -> %s\n",
                    params[i]->name.c_str(), sel.per_layer[i].c_str());
  } else {
    report.criterion_per_layer.assign(params.size(), cfg_.saliency.criterion);
  }

  for (std::int64_t p = 1; p <= cfg_.iterations; ++p) {
    // Freeze policy: layers already at the final κ sit this iteration out —
    // their bit clears in `active`, their saliency slot stays empty, and
    // install_masks leaves their mask alone.
    std::vector<std::uint8_t> active(params.size(), 1);
    std::int64_t frozen = 0;
    for (std::size_t i = 0; i < params.size(); ++i) {
      if (schedule.layer_frozen(params[i]->mask_sparsity(), p)) {
        active[i] = 0;
        ++frozen;
      }
    }
    report.frozen_per_iteration.push_back(frozen);

    // Class-aware saliency of the current dense weights (Alg. 1 lines 4-5).
    SaliencyMap saliency;
    if (use_auto) {
      std::vector<std::string> per_layer = report.criterion_per_layer;
      for (std::size_t i = 0; i < params.size(); ++i)
        if (active[i] == 0) per_layer[i].clear();
      saliency = estimate_saliency_selected(model_, user_data, cfg_.saliency,
                                            per_layer);
    } else {
      saliency = estimate_saliency(model_, user_data, cfg_.saliency, active);
    }

    // Line 2: fine-grained N:M re-selection (revival via STE).
    std::vector<Tensor> nm_masks;
    if (cfg_.enable_nm)
      nm_masks = select_nm_masks(model_, saliency, cfg_.n, cfg_.m);

    // Lines 3-10: schedule κ_p and uniform rank-column block pruning.
    // Algorithm 1 applies the N:M pruning (line 2) *before* computing the
    // block scores (lines 4-5), so an element removed by N:M has W = 0 and
    // contributes nothing to its block's score: blocks are ranked by the
    // saliency they will actually retain, not by elements already gone.
    std::vector<Tensor> block_masks;
    if (cfg_.enable_block) {
      const double fraction = schedule.block_fraction_at(p);
      if (fraction > 0.0) {
        if (nm_masks.empty()) {
          block_masks = select_block_masks(saliency, fraction);
        } else {
          SaliencyMap surviving = saliency;
          for (std::size_t i = 0; i < surviving.size(); ++i)
            if (surviving[i].numel() > 0) surviving[i].mul_(nm_masks[i]);
          block_masks = select_block_masks(surviving, fraction);
        }
      }
    }

    install_masks(model_, nm_masks, block_masks);

    // Line 11: recover accuracy for δ epochs (STE keeps dense weights live).
    nn::TrainConfig tc;
    tc.epochs = cfg_.finetune_epochs;
    tc.batch_size = cfg_.batch_size;
    tc.sgd = cfg_.finetune_sgd;
    const auto stats = nn::train(model_, user_data, tc, rng);

    IterationStats is;
    is.iteration = p;
    is.kappa_target = schedule.kappa_at(p);
    is.achieved_sparsity = take_census(model_, cfg_.block).global_sparsity;
    is.finetune_loss = stats.empty() ? 0.0f : stats.back().loss;
    if (cfg_.verbose)
      std::printf("[crisp] iter %lld/%lld  kappa %.3f  achieved %.3f  loss %.4f\n",
                  static_cast<long long>(p),
                  static_cast<long long>(cfg_.iterations), is.kappa_target,
                  is.achieved_sparsity, is.finetune_loss);
    report.iterations.push_back(is);
  }

  if (cfg_.recovery_epochs > 0) {
    nn::TrainConfig tc;
    tc.epochs = cfg_.recovery_epochs;
    tc.batch_size = cfg_.batch_size;
    tc.sgd = cfg_.finetune_sgd;
    tc.lr_decay = 0.92f;
    nn::train(model_, user_data, tc, rng);
  }

  report.census = take_census(model_, cfg_.block);
  return report;
}

void CrispPruner::bake() {
  for (nn::Parameter* p : model_.prunable_parameters()) p->bake_mask();
}

}  // namespace crisp::core
