// Class-Aware Saliency Score — CASS (paper §III-D, Eq. 1).
//
//   T_w = | (1/H_uc) Σ ∂L/∂W | ⊙ |W|
//
// The gradient is averaged over a calibration set H_uc drawn from the
// user-preferred classes, then multiplied elementwise by the weight — the
// first-order Taylor estimate of the loss change from removing each weight,
// specialised to the classes the user actually sees. Gradients flow through
// the masked forward but are dense (STE), so previously pruned weights keep
// meaningful scores and can be revived (§III-C).
#pragma once

#include <vector>

#include "data/dataset.h"
#include "nn/sequential.h"

namespace crisp::core {

enum class SaliencyKind {
  kClassAwareGradient,  ///< CASS — the paper's metric
  kMagnitude,           ///< |W| (ablation baseline)
  kRandom,              ///< uniform random (ablation baseline)
};

const char* saliency_kind_name(SaliencyKind kind);

struct SaliencyConfig {
  SaliencyKind kind = SaliencyKind::kClassAwareGradient;
  std::int64_t batch_size = 32;
  /// Cap on calibration batches per estimation (-1 = use all).
  std::int64_t max_batches = 8;
  std::uint64_t seed = 7;  ///< for kRandom and batch order
};

/// One score tensor per prunable parameter, aligned with
/// model.prunable_parameters() order. Scores are non-negative.
using SaliencyMap = std::vector<Tensor>;

/// Estimates saliency for every prunable parameter. For CASS this runs
/// forward/backward passes over `calibration` (user-class samples) without
/// optimizer steps; for the ablation kinds no data pass is needed.
SaliencyMap estimate_saliency(nn::Sequential& model,
                              const data::Dataset& calibration,
                              const SaliencyConfig& cfg);

}  // namespace crisp::core
