// Pluggable saliency-criterion registry.
//
// CRISP's original metric is CASS (paper §III-D, Eq. 1):
//
//   T_w = | (1/H_uc) Σ ∂L/∂W | ⊙ |W|
//
// — the first-order Taylor estimate of the loss change from removing each
// weight, specialised to the classes the user actually sees. Related work
// shows the criterion itself is a design axis (class-wise structured lasso
// scoring, arXiv:2502.09125; loss-aware automatic per-layer criterion
// selection, arXiv:2506.20152), so the scorer is an interface: a
// SaliencyCriterion computes one non-negative score tensor per prunable
// parameter, and criteria are registered by name. Built-ins:
//
//   cass       |mean grad| ⊙ |W|            (the paper's metric; default)
//   taylor     mean(grad²) ⊙ W²             (diagonal-Fisher loss-change
//                                            estimate — second-order flavour,
//                                            distinct from cass because the
//                                            square is taken per batch)
//   lasso      |W| ⊙ group-L2(mean grad)    (class-wise structured lasso:
//                                            the group is the output-channel
//                                            row of the reshaped S x K matrix)
//   magnitude  |W|                          (ablation baseline)
//   random     uniform random               (ablation baseline)
//
// Gradients flow through the masked forward but are dense (STE), so
// previously pruned weights keep meaningful scores and can be revived
// (§III-C). Every criterion runs its sweeps on the parallel_for /
// deterministic-partition substrate, so scores are bit-identical at any
// thread count (tests/test_criteria.cpp locks this in for every registered
// name).
//
// core/criterion_select.h builds the loss-aware per-layer auto-selector on
// top of this registry; core/unlearn.h inverts the machinery into class
// unlearning. docs/criteria.md is the guide.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "nn/sequential.h"

namespace crisp::core {

struct SaliencyConfig {
  /// Registry name of the criterion ("cass", "taylor", "lasso",
  /// "magnitude", "random", or anything registered at runtime). The
  /// loss-aware per-layer auto-selector is spelled "auto" and resolved by
  /// CrispPruner via core/criterion_select.h — estimate_saliency itself
  /// rejects it.
  std::string criterion = "cass";
  std::int64_t batch_size = 32;
  /// Cap on calibration batches per estimation (-1 = use all).
  std::int64_t max_batches = 8;
  std::uint64_t seed = 7;  ///< for "random" and batch order
};

/// One score tensor per prunable parameter, aligned with
/// model.prunable_parameters() order. Scores are non-negative. An *empty*
/// tensor marks a parameter whose score was skipped (its layer is frozen —
/// see SparsitySchedule::freeze_at_target); downstream mask selection
/// leaves such layers' masks untouched.
using SaliencyMap = std::vector<Tensor>;

/// Scores every prunable parameter of a model. Implementations must
///   * write scores only for parameters whose `active` bit is set, leaving
///     the rest as empty tensors;
///   * produce bit-identical results at any kernels::num_threads() —
///     elementwise sweeps thread with disjoint writes, and any
///     accumulation must use a thread-count-independent order
///     (kernels/reduce.h, or per-row serial sums owned by one thread).
class SaliencyCriterion {
 public:
  virtual ~SaliencyCriterion() = default;

  virtual const char* name() const = 0;

  /// True when compute() runs calibration forward/backward passes (and
  /// therefore needs calibration samples and mutates BatchNorm running
  /// statistics in train-mode forwards).
  virtual bool needs_gradients() const = 0;

  virtual SaliencyMap compute(nn::Sequential& model,
                              const data::Dataset& calibration,
                              const SaliencyConfig& cfg,
                              const std::vector<std::uint8_t>& active) = 0;
};

/// Factory registered under a criterion name; must be callable from any
/// thread (a fresh instance is built per estimation).
using CriterionFactory = std::function<std::unique_ptr<SaliencyCriterion>()>;

/// Registers (or replaces) `factory` under `name`. Built-ins are
/// pre-registered; tests register instrumented criteria through this.
void register_criterion(const std::string& name, CriterionFactory factory);

/// True when `name` resolves (built-in or runtime-registered).
bool has_criterion(const std::string& name);

/// All registered names, sorted (deterministic iteration for benches).
std::vector<std::string> criterion_names();

/// Builds a fresh instance of the named criterion; throws on unknown names
/// (listing what is registered) and on the "auto" pseudo-name.
std::unique_ptr<SaliencyCriterion> make_criterion(const std::string& name);

/// Estimates saliency for every prunable parameter with the configured
/// criterion. For gradient-based criteria this runs forward/backward passes
/// over `calibration` (user-class samples) without optimizer steps; for the
/// data-free kinds no pass is needed.
SaliencyMap estimate_saliency(nn::Sequential& model,
                              const data::Dataset& calibration,
                              const SaliencyConfig& cfg);

/// Same, but scores only parameters with a set `active` bit (empty tensors
/// elsewhere) — the frozen-layer skip. `active` must be empty (= all
/// active) or sized to prunable_parameters().
SaliencyMap estimate_saliency(nn::Sequential& model,
                              const data::Dataset& calibration,
                              const SaliencyConfig& cfg,
                              const std::vector<std::uint8_t>& active);

/// Composes a SaliencyMap whose layer i is scored by `per_layer[i]` — the
/// output of the auto-selector (core/criterion_select.h). Each distinct
/// criterion runs once, over exactly the layers assigned to it. An empty
/// string skips that layer (frozen): its slot stays an empty tensor.
SaliencyMap estimate_saliency_selected(nn::Sequential& model,
                                       const data::Dataset& calibration,
                                       const SaliencyConfig& cfg,
                                       const std::vector<std::string>& per_layer);

/// Shared calibration sweep for gradient-based criteria: runs
/// forward/backward over up to cfg.max_batches batches of `calibration`,
/// invoking `on_batch` after each batch's backward. With
/// `zero_between_batches` the callback sees that batch's gradients alone in
/// p->grad (what per-batch accumulators — taylor — need); without it,
/// gradients accumulate across batches exactly as the original CASS sweep
/// did, preserving its float summation order bit-for-bit, and the
/// accumulated total is still resident in p->grad when the call returns.
/// The *caller* zeroes gradients once it has read them (every built-in
/// criterion does). Returns the number of batches processed (throws when
/// calibration is empty). Batching (shuffle order, sizes) depends only on
/// cfg, so two criteria with the same cfg see the same batch sequence.
std::int64_t for_each_calibration_batch(
    nn::Sequential& model, const data::Dataset& calibration,
    const SaliencyConfig& cfg, bool zero_between_batches,
    const std::function<void(std::int64_t batch_index)>& on_batch);

}  // namespace crisp::core
