#include "core/baselines/block_pruner.h"

namespace crisp::core {

CrispConfig block_pruning_config(std::int64_t block, double target_sparsity,
                                 std::int64_t iterations,
                                 std::int64_t finetune_epochs) {
  CrispConfig cfg;
  cfg.enable_nm = false;
  cfg.block = block;
  cfg.target_sparsity = target_sparsity;
  cfg.iterations = iterations;
  cfg.finetune_epochs = finetune_epochs;
  return cfg;
}

}  // namespace crisp::core
