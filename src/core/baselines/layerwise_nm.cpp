#include "core/baselines/layerwise_nm.h"

#include <algorithm>
#include <cstdio>

#include "core/nm_pruning.h"
#include "kernels/parallel_for.h"
#include "kernels/reduce.h"
#include "sparse/nm.h"

namespace crisp::core {

namespace {

/// Per-layer tightening schedule from the current saliency: sorting each
/// length-M group descending, step j (N = M-j -> M-j-1) removes the
/// (M-j)-th largest element of every group that still has one.
struct LayerSteps {
  std::vector<double> losses;         ///< saliency lost per step
  std::vector<std::int64_t> removals; ///< elements zeroed per step
};

LayerSteps layer_steps(const Tensor& saliency, std::int64_t rows,
                       std::int64_t cols, std::int64_t m) {
  LayerSteps out;
  out.losses.assign(static_cast<std::size_t>(m - 1), 0.0);
  out.removals.assign(static_cast<std::size_t>(m - 1), 0);
  // Row-parallel sweep with double accumulators: kernels::parallel_accumulate
  // only carries floats, so this hand-rolls the same recipe — the row range
  // is cut with the reduce_chunk_count partition (pure in rows/grain, never
  // the thread count), every chunk owns a private LayerSteps, and chunks
  // merge in ascending order afterwards.
  const std::int64_t grain = kernels::rows_grain(8 * cols);
  const std::int64_t nchunks = kernels::reduce_chunk_count(rows, grain);
  const std::int64_t width = kernels::reduce_chunk_width(rows, grain);
  std::vector<LayerSteps> parts(static_cast<std::size_t>(nchunks));
  for (auto& part : parts) {
    part.losses.assign(static_cast<std::size_t>(m - 1), 0.0);
    part.removals.assign(static_cast<std::size_t>(m - 1), 0);
  }
  kernels::parallel_for(
      nchunks,
      [&](std::int64_t k0, std::int64_t k1) {
        std::vector<float> group;
        for (std::int64_t k = k0; k < k1; ++k) {
          LayerSteps& part = parts[static_cast<std::size_t>(k)];
          const std::int64_t r1 = std::min(rows, (k + 1) * width);
          for (std::int64_t r = k * width; r < r1; ++r) {
            const float* srow = saliency.data() + r * cols;
            for (std::int64_t c0 = 0; c0 < cols; c0 += m) {
              const std::int64_t g = std::min(m, cols - c0);
              group.assign(srow + c0, srow + c0 + g);
              std::sort(group.begin(), group.end(), std::greater<float>());
              for (std::int64_t j = 0; j < m - 1; ++j) {
                const std::int64_t kept_after = m - j - 1;  // min(n', g)
                if (g >= m - j) {  // group loses an element at step j
                  part.losses[static_cast<std::size_t>(j)] +=
                      static_cast<double>(
                          group[static_cast<std::size_t>(kept_after)]);
                  part.removals[static_cast<std::size_t>(j)] += 1;
                }
              }
            }
          }
        }
      },
      /*grain=*/1);
  for (const LayerSteps& part : parts) {
    for (std::int64_t j = 0; j < m - 1; ++j) {
      out.losses[static_cast<std::size_t>(j)] +=
          part.losses[static_cast<std::size_t>(j)];
      out.removals[static_cast<std::size_t>(j)] +=
          part.removals[static_cast<std::size_t>(j)];
    }
  }
  return out;
}

}  // namespace

std::vector<std::int64_t> allocate_layer_n(
    const std::vector<std::vector<double>>& step_losses,
    const std::vector<std::vector<std::int64_t>>& step_removals,
    std::int64_t total_elements, std::int64_t m, std::int64_t min_n,
    double target_sparsity) {
  CRISP_CHECK(step_losses.size() == step_removals.size(),
              "losses/removals disagree on layer count");
  CRISP_CHECK(min_n >= 1 && min_n <= m, "min_n out of [1, M]");
  const std::size_t layers = step_losses.size();
  const auto target_zeros = static_cast<std::int64_t>(
      target_sparsity * static_cast<double>(total_elements));

  std::vector<std::size_t> next(layers, 0);  // per-layer next step index
  const auto max_steps = static_cast<std::size_t>(m - min_n);
  std::int64_t zeroed = 0;
  while (zeroed < target_zeros) {
    std::size_t best = layers;
    double best_rate = 0.0;
    for (std::size_t l = 0; l < layers; ++l) {
      const std::size_t j = next[l];
      if (j >= max_steps || j >= step_losses[l].size()) continue;
      if (step_removals[l][j] == 0) continue;  // degenerate (narrow) layer
      const double rate = step_losses[l][j] /
                          static_cast<double>(step_removals[l][j]);
      if (best == layers || rate < best_rate) {
        best = l;
        best_rate = rate;
      }
    }
    if (best == layers) break;  // every layer at the collapse guard
    zeroed += step_removals[best][next[best]];
    ++next[best];
  }

  std::vector<std::int64_t> n(layers);
  for (std::size_t l = 0; l < layers; ++l)
    n[l] = m - static_cast<std::int64_t>(next[l]);
  return n;
}

LayerwiseNmPruner::LayerwiseNmPruner(nn::Sequential& model,
                                     const LayerwiseNmConfig& cfg)
    : model_(model), cfg_(cfg) {
  CRISP_CHECK(cfg_.m >= 2, "layer-wise N:M needs M >= 2");
  CRISP_CHECK(cfg_.min_n >= 1 && cfg_.min_n <= cfg_.m, "min_n out of range");
  CRISP_CHECK(cfg_.target_sparsity >= 0.0 && cfg_.target_sparsity < 1.0,
              "target sparsity out of [0, 1)");
  CRISP_CHECK(cfg_.iterations >= 1, "need at least one iteration");
  CRISP_CHECK(!model_.prunable_parameters().empty(),
              "model has no prunable parameters");
}

LayerwiseNmReport LayerwiseNmPruner::run(const data::Dataset& user_data,
                                         Rng& rng) {
  auto params = model_.prunable_parameters();
  LayerwiseNmReport report;

  for (std::int64_t p = 1; p <= cfg_.iterations; ++p) {
    const double step_target = cfg_.target_sparsity *
                               static_cast<double>(p) /
                               static_cast<double>(cfg_.iterations);

    const SaliencyMap saliency =
        estimate_saliency(model_, user_data, cfg_.saliency);

    std::vector<std::vector<double>> losses;
    std::vector<std::vector<std::int64_t>> removals;
    std::int64_t total = 0;
    for (std::size_t i = 0; i < params.size(); ++i) {
      const nn::Parameter& prm = *params[i];
      LayerSteps steps = layer_steps(saliency[i], prm.matrix_rows,
                                     prm.matrix_cols, cfg_.m);
      losses.push_back(std::move(steps.losses));
      removals.push_back(std::move(steps.removals));
      total += prm.value.numel();
    }

    const std::vector<std::int64_t> chosen = allocate_layer_n(
        losses, removals, total, cfg_.m, cfg_.min_n, step_target);

    std::vector<Tensor> masks;
    masks.reserve(params.size());
    report.choices.clear();
    for (std::size_t i = 0; i < params.size(); ++i) {
      const nn::Parameter& prm = *params[i];
      Tensor mask = sparse::nm_mask(
          as_matrix(saliency[i], prm.matrix_rows, prm.matrix_cols),
          chosen[i], cfg_.m);
      mask.reshape_inplace(prm.value.shape());
      masks.push_back(std::move(mask));
      report.choices.push_back({prm.name, chosen[i], cfg_.m});
    }
    install_masks(model_, masks, {});

    nn::TrainConfig tc;
    tc.epochs = cfg_.finetune_epochs;
    tc.batch_size = cfg_.batch_size;
    tc.sgd = cfg_.finetune_sgd;
    nn::train(model_, user_data, tc, rng);

    if (cfg_.verbose) {
      std::printf("[layerwise-nm] iter %lld/%lld  target %.3f  N_l:",
                  static_cast<long long>(p),
                  static_cast<long long>(cfg_.iterations), step_target);
      for (const LayerNmChoice& c : report.choices)
        std::printf(" %lld", static_cast<long long>(c.n));
      std::printf("\n");
    }
  }

  if (cfg_.recovery_epochs > 0) {
    nn::TrainConfig tc;
    tc.epochs = cfg_.recovery_epochs;
    tc.batch_size = cfg_.batch_size;
    tc.sgd = cfg_.finetune_sgd;
    tc.lr_decay = 0.92f;
    nn::train(model_, user_data, tc, rng);
  }

  std::int64_t zeros = 0, total = 0;
  for (const nn::Parameter* prm : params) {
    total += prm->value.numel();
    zeros += prm->has_mask()
                 ? prm->value.numel() - prm->mask.count_nonzero()
                 : 0;
  }
  report.achieved_sparsity =
      total == 0 ? 0.0
                 : static_cast<double>(zeros) / static_cast<double>(total);
  return report;
}

}  // namespace crisp::core
