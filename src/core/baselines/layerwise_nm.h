// Layer-wise N:M search — the "increased algorithmic complexity"
// alternative the paper argues against (§I, citing DominoSearch [9]).
//
// Instead of CRISP's single global (N:M, block) pair, every layer gets its
// own N_l:M ratio chosen under a global parameter budget. The search is a
// greedy marginal-saliency descent: all layers start dense (N_l = M);
// repeatedly tighten the layer whose next step (N_l -> N_l - 1) sacrifices
// the least class-aware saliency per element removed, until the budget is
// met. This faithfully reproduces the cost CRISP avoids — per-layer sparsity
// hyperparameters, a search over them, and hardware that must reconfigure
// its MUX fabric per layer — while reusing the same saliency and STE
// fine-tuning machinery, so bench/ablation_patterns compares patterns, not
// training pipelines.
#pragma once

#include "core/saliency.h"
#include "nn/trainer.h"

namespace crisp::core {

struct LayerwiseNmConfig {
  std::int64_t m = 4;            ///< group size, shared by all layers
  double target_sparsity = 0.6;  ///< global element zero-fraction budget
  std::int64_t min_n = 1;        ///< collapse guard: N_l never below this
  std::int64_t iterations = 3;
  std::int64_t finetune_epochs = 2;
  std::int64_t recovery_epochs = 8;
  nn::SgdConfig finetune_sgd{/*lr=*/0.02f, /*momentum=*/0.9f,
                             /*weight_decay=*/4e-5f};
  std::int64_t batch_size = 32;
  SaliencyConfig saliency;
  bool verbose = false;
};

struct LayerNmChoice {
  std::string name;     ///< parameter name
  std::int64_t n = 0;   ///< chosen N of N_l:M
  std::int64_t m = 0;
};

struct LayerwiseNmReport {
  std::vector<LayerNmChoice> choices;  ///< final per-layer ratios
  double achieved_sparsity = 0.0;
  /// Count of per-layer hyperparameters the search had to set — the
  /// complexity cost the paper's §I weighs against CRISP's two knobs.
  std::int64_t searched_hyperparameters() const {
    return static_cast<std::int64_t>(choices.size());
  }
};

class LayerwiseNmPruner {
 public:
  LayerwiseNmPruner(nn::Sequential& model, const LayerwiseNmConfig& cfg);

  LayerwiseNmReport run(const data::Dataset& user_data, Rng& rng);

 private:
  nn::Sequential& model_;
  LayerwiseNmConfig cfg_;
};

/// The budget-allocation core, exposed for unit tests: step j of layer l
/// tightens it from N = M - j to M - j - 1, losing step_losses[l][j]
/// saliency and zeroing step_removals[l][j] elements. Returns the chosen
/// N_l ≥ min_n whose cumulative removals reach target_sparsity x
/// total_elements at minimal loss (greedy by loss-per-element; steps within
/// a layer are taken in order, and their marginal losses are
/// non-decreasing by construction).
std::vector<std::int64_t> allocate_layer_n(
    const std::vector<std::vector<double>>& step_losses,
    const std::vector<std::vector<std::int64_t>>& step_removals,
    std::int64_t total_elements, std::int64_t m, std::int64_t min_n,
    double target_sparsity);

}  // namespace crisp::core
