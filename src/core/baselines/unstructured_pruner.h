// Unstructured class-aware pruning — the "naive approach" of the paper's
// introduction (§I).
//
// Weights are removed individually by global class-aware saliency ranking,
// with no structural constraint at all. Accuracy at a given sparsity is the
// best any pattern can do (this baseline upper-bounds CRISP), but the
// resulting random non-zero placement defeats hardware acceleration: STC
// fabrics cannot skip it (the paper cites SIGMA [4] — irregular patterns
// need ~99 % sparsity before they pay). bench/ablation_patterns puts both
// halves of that statement on one table.
#pragma once

#include "core/saliency.h"
#include "nn/trainer.h"

namespace crisp::core {

struct UnstructuredPruneConfig {
  double target_sparsity = 0.9;  ///< global element zero-fraction
  std::int64_t iterations = 3;
  std::int64_t finetune_epochs = 2;
  std::int64_t recovery_epochs = 8;
  nn::SgdConfig finetune_sgd{/*lr=*/0.02f, /*momentum=*/0.9f,
                             /*weight_decay=*/4e-5f};
  std::int64_t batch_size = 32;
  SaliencyConfig saliency;
  bool verbose = false;
};

struct UnstructuredPruneReport {
  double achieved_sparsity = 0.0;  ///< element zero-fraction over prunables
};

/// Iterative global magnitude-of-saliency pruning with STE fine-tuning —
/// the same loop shape as CrispPruner so comparisons isolate the pattern.
class UnstructuredPruner {
 public:
  UnstructuredPruner(nn::Sequential& model,
                     const UnstructuredPruneConfig& cfg);

  UnstructuredPruneReport run(const data::Dataset& user_data, Rng& rng);

 private:
  nn::Sequential& model_;
  UnstructuredPruneConfig cfg_;
};

}  // namespace crisp::core
