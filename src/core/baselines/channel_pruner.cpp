#include "core/baselines/channel_pruner.h"

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "kernels/parallel_for.h"

namespace crisp::core {

ChannelPruner::ChannelPruner(nn::Sequential& model,
                             const ChannelPruneConfig& cfg)
    : model_(model), cfg_(cfg) {
  CRISP_CHECK(cfg_.target_sparsity >= 0.0 && cfg_.target_sparsity < 1.0,
              "target sparsity out of [0,1)");
  CRISP_CHECK(cfg_.iterations >= 1, "need at least one iteration");
}

ChannelPruneReport ChannelPruner::run(const data::Dataset& user_data,
                                      Rng& rng) {
  auto params = model_.prunable_parameters();

  for (std::int64_t p = 1; p <= cfg_.iterations; ++p) {
    const double step_target = cfg_.target_sparsity *
                               static_cast<double>(p) /
                               static_cast<double>(cfg_.iterations);

    SaliencyMap saliency = estimate_saliency(model_, user_data, cfg_.saliency);

    // Global channel ranking: per-row mean saliency across all layers.
    struct Channel {
      double score;
      std::size_t layer;
      std::int64_t row;
      std::int64_t cost;  ///< elements removed with this channel
    };
    std::vector<Channel> channels;
    std::int64_t total_elements = 0;
    for (std::size_t i = 0; i < params.size(); ++i) {
      const nn::Parameter& prm = *params[i];
      const std::int64_t rows = prm.matrix_rows, cols = prm.matrix_cols;
      total_elements += rows * cols;
      // Per-row mean saliency: each row reduces its own slice in a fixed
      // column order — channel-parallel with disjoint writes.
      std::vector<double> row_scores(static_cast<std::size_t>(rows), 0.0);
      kernels::parallel_for(
          rows,
          [&](std::int64_t r0, std::int64_t r1) {
            for (std::int64_t r = r0; r < r1; ++r) {
              double acc = 0.0;
              const float* srow = saliency[i].data() + r * cols;
              for (std::int64_t c = 0; c < cols; ++c) acc += srow[c];
              row_scores[static_cast<std::size_t>(r)] =
                  acc / static_cast<double>(cols);
            }
          },
          kernels::rows_grain(cols));
      for (std::int64_t r = 0; r < rows; ++r)
        channels.push_back({row_scores[static_cast<std::size_t>(r)], i, r, cols});
    }
    std::stable_sort(channels.begin(), channels.end(),
                     [](const Channel& a, const Channel& b) {
                       return a.score < b.score;
                     });

    // Re-derive masks from scratch each iteration (channels can revive,
    // mirroring the STE behaviour of the CRISP pruner).
    std::vector<std::int64_t> kept(params.size());
    for (std::size_t i = 0; i < params.size(); ++i) {
      kept[i] = params[i]->matrix_rows;
      params[i]->mask = Tensor::ones(params[i]->value.shape());
    }
    const double target_elems =
        static_cast<double>(total_elements) * step_target;
    double removed = 0.0;
    for (const Channel& ch : channels) {
      if (removed >= target_elems) break;
      if (kept[ch.layer] <= cfg_.min_kept_channels) continue;
      nn::Parameter& prm = *params[ch.layer];
      float* mrow = prm.mask.data() + ch.row * prm.matrix_cols;
      std::fill(mrow, mrow + prm.matrix_cols, 0.0f);
      --kept[ch.layer];
      removed += static_cast<double>(ch.cost);
    }

    nn::TrainConfig tc;
    tc.epochs = cfg_.finetune_epochs;
    tc.batch_size = cfg_.batch_size;
    tc.sgd = cfg_.finetune_sgd;
    const auto stats = nn::train(model_, user_data, tc, rng);
    if (cfg_.verbose)
      std::printf("[channel] iter %lld  target %.3f  loss %.4f\n",
                  static_cast<long long>(p), step_target,
                  stats.empty() ? 0.0f : stats.back().loss);
  }

  ChannelPruneReport report;
  std::int64_t rows_total = 0, rows_removed = 0, elems = 0, zeros = 0;
  double flops_dense = 0.0, flops_effective = 0.0;
  for (nn::Parameter* prm : params) {
    const std::int64_t rows = prm->matrix_rows, cols = prm->matrix_cols;
    rows_total += rows;
    std::int64_t removed_rows = 0;
    for (std::int64_t r = 0; r < rows; ++r)
      if (prm->mask[r * cols] == 0.0f) ++removed_rows;
    rows_removed += removed_rows;
    elems += rows * cols;
    zeros += rows * cols - prm->mask.count_nonzero();
    const double keep =
        static_cast<double>(rows - removed_rows) / static_cast<double>(rows);
    flops_dense += static_cast<double>(rows * cols);
    // Row removal saves the row now and the next layer's matching
    // reduction slice later → quadratic in the kept fraction.
    flops_effective += static_cast<double>(rows * cols) * keep * keep;
  }
  report.achieved_channel_sparsity =
      static_cast<double>(rows_removed) / static_cast<double>(rows_total);
  report.mask_sparsity = static_cast<double>(zeros) / static_cast<double>(elems);
  report.effective_flops_ratio = flops_effective / flops_dense;
  return report;
}

}  // namespace crisp::core
