// Class-aware channel pruning — the OCAP / CAP'NN / MyML family of
// baselines in Fig. 7: whole output channels (rows of the reshaped S x K
// matrix) are removed by class-aware saliency, iteratively with fine-tuning.
//
// Substitution note (DESIGN.md §2): the published baselines prune channels
// on real CIFAR/ImageNet models; we reproduce their *mechanism* on the same
// substrate as CRISP so the comparison isolates the sparsity pattern.
// Because removing an output channel also shrinks the next layer's
// reduction dimension, channel pruning's true FLOPs ratio is roughly the
// square of its kept-channel fraction — `effective_flops_ratio` applies
// that correction (our masks only account for the removed rows).
#pragma once

#include "core/accounting.h"
#include "core/saliency.h"
#include "nn/trainer.h"

namespace crisp::core {

struct ChannelPruneConfig {
  double target_sparsity = 0.5;  ///< fraction of output channels removed
  std::int64_t iterations = 3;
  std::int64_t finetune_epochs = 2;
  nn::SgdConfig finetune_sgd{/*lr=*/0.01f, /*momentum=*/0.9f,
                             /*weight_decay=*/4e-5f};
  std::int64_t batch_size = 32;
  SaliencyConfig saliency;
  /// Every layer keeps at least this many channels (collapse guard).
  std::int64_t min_kept_channels = 4;
  bool verbose = false;
};

struct ChannelPruneReport {
  double achieved_channel_sparsity = 0.0;  ///< removed rows / total rows
  double mask_sparsity = 0.0;              ///< element zero fraction
  /// Mask sparsity corrected for the downstream reduction-dim savings a
  /// real channel-pruned deployment gets: (1-s)^2 per layer, aggregated.
  double effective_flops_ratio = 0.0;
};

class ChannelPruner {
 public:
  ChannelPruner(nn::Sequential& model, const ChannelPruneConfig& cfg);

  ChannelPruneReport run(const data::Dataset& user_data, Rng& rng);

 private:
  nn::Sequential& model_;
  ChannelPruneConfig cfg_;
};

}  // namespace crisp::core
