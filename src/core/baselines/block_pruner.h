// Pure coarse-grained block pruning — the baseline CRISP is compared with
// in Fig. 3. Identical machinery (class-aware scores, uniform rank-column
// selection, iterative fine-tuning) with the N:M component disabled, so the
// comparison isolates the value of the hybrid pattern.
#pragma once

#include "core/pruner.h"

namespace crisp::core {

/// Config for CrispPruner with N:M off and the whole κ carried by blocks.
CrispConfig block_pruning_config(std::int64_t block, double target_sparsity,
                                 std::int64_t iterations = 3,
                                 std::int64_t finetune_epochs = 2);

}  // namespace crisp::core
