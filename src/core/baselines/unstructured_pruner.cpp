#include "core/baselines/unstructured_pruner.h"

#include <algorithm>
#include <cstdio>

#include "kernels/parallel_for.h"

namespace crisp::core {

UnstructuredPruner::UnstructuredPruner(nn::Sequential& model,
                                       const UnstructuredPruneConfig& cfg)
    : model_(model), cfg_(cfg) {
  CRISP_CHECK(cfg_.target_sparsity >= 0.0 && cfg_.target_sparsity < 1.0,
              "target sparsity out of [0, 1)");
  CRISP_CHECK(cfg_.iterations >= 1, "need at least one iteration");
  CRISP_CHECK(!model_.prunable_parameters().empty(),
              "model has no prunable parameters");
}

UnstructuredPruneReport UnstructuredPruner::run(const data::Dataset& user_data,
                                                Rng& rng) {
  auto params = model_.prunable_parameters();

  for (std::int64_t p = 1; p <= cfg_.iterations; ++p) {
    const double step_target = cfg_.target_sparsity *
                               static_cast<double>(p) /
                               static_cast<double>(cfg_.iterations);

    const SaliencyMap saliency =
        estimate_saliency(model_, user_data, cfg_.saliency);

    // Global threshold: the step_target quantile of all saliency scores.
    std::vector<float> pool;
    std::int64_t total = 0;
    for (const Tensor& s : saliency) total += s.numel();
    pool.reserve(static_cast<std::size_t>(total));
    for (const Tensor& s : saliency)
      pool.insert(pool.end(), s.vec().begin(), s.vec().end());
    const auto kth = static_cast<std::int64_t>(
        step_target * static_cast<double>(total));
    float threshold = -1.0f;  // below any score: prune nothing
    if (kth > 0) {
      auto nth = pool.begin() + (kth - 1);
      std::nth_element(pool.begin(), nth, pool.end());
      threshold = *nth;
    }

    // Keep strictly-above-threshold weights (re-selection each iteration —
    // the same STE revival CRISP gets). Elementwise compare: disjoint
    // writes, so the sweep threads.
    for (std::size_t i = 0; i < params.size(); ++i) {
      nn::Parameter& prm = *params[i];
      prm.ensure_mask();
      kernels::parallel_for(
          prm.value.numel(),
          [&](std::int64_t e0, std::int64_t e1) {
            for (std::int64_t e = e0; e < e1; ++e)
              prm.mask[e] = saliency[i][e] > threshold ? 1.0f : 0.0f;
          },
          kernels::rows_grain(1));
    }

    nn::TrainConfig tc;
    tc.epochs = cfg_.finetune_epochs;
    tc.batch_size = cfg_.batch_size;
    tc.sgd = cfg_.finetune_sgd;
    nn::train(model_, user_data, tc, rng);

    if (cfg_.verbose)
      std::printf("[unstructured] iter %lld/%lld  target %.3f\n",
                  static_cast<long long>(p),
                  static_cast<long long>(cfg_.iterations), step_target);
  }

  if (cfg_.recovery_epochs > 0) {
    nn::TrainConfig tc;
    tc.epochs = cfg_.recovery_epochs;
    tc.batch_size = cfg_.batch_size;
    tc.sgd = cfg_.finetune_sgd;
    tc.lr_decay = 0.92f;
    nn::train(model_, user_data, tc, rng);
  }

  UnstructuredPruneReport report;
  std::int64_t zeros = 0, total = 0;
  for (const nn::Parameter* prm : params) {
    total += prm->value.numel();
    zeros += prm->has_mask()
                 ? prm->value.numel() - prm->mask.count_nonzero()
                 : 0;
  }
  report.achieved_sparsity =
      total == 0 ? 0.0
                 : static_cast<double>(zeros) / static_cast<double>(total);
  return report;
}

}  // namespace crisp::core
