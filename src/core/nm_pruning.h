// Fine-grained N:M pruning step (Algorithm 1, line 2).
//
// Re-selects the N:M component of every prunable parameter's mask from the
// current saliency of the *dense* weights — because updates are
// straight-through, weights pruned in earlier iterations may win their slot
// back here (the "revival" the paper gets from extending the STE).
#pragma once

#include "core/saliency.h"
#include "nn/sequential.h"

namespace crisp::core {

/// Per-parameter N:M masks, aligned with prunable_parameters() order. A
/// parameter with an *empty* saliency tensor (frozen layer) gets an empty
/// mask back, which install_masks treats as "leave the current mask alone".
std::vector<Tensor> select_nm_masks(nn::Sequential& model,
                                    const SaliencyMap& saliency,
                                    std::int64_t n, std::int64_t m);

/// Combines per-parameter component masks (Hadamard AND) and installs them
/// on the model's prunable parameters. Either component *list* may be empty
/// (treated as all-ones). When the lists are non-empty but both component
/// *tensors* at index i are empty, parameter i's mask is left untouched —
/// that is the frozen-layer contract from SaliencyMap.
void install_masks(nn::Sequential& model, const std::vector<Tensor>& nm_masks,
                   const std::vector<Tensor>& block_masks);

}  // namespace crisp::core
