#include "core/block_pruning.h"

#include <algorithm>
#include <tuple>

#include "kernels/parallel_for.h"
#include "sparse/mask.h"
#include "sparse/nm.h"

namespace crisp::core {

namespace {

struct RankColumn {
  double score = 0.0;          ///< (normalised) aggregate C_o
  std::int64_t layer = 0;
  std::int64_t rank = 0;
  std::int64_t element_cost = 0;  ///< weight elements the rank removes
};

/// Ascending per-row sort of the block-score grid → grid of rank columns.
/// Returns (grid_rows x grid_cols) where column o is each row's o-th
/// smallest score. Rows sort independently, so the sweep threads.
Tensor sorted_rows(const Tensor& scores) {
  const std::int64_t gr = scores.size(0), gc = scores.size(1);
  Tensor out = scores;
  kernels::parallel_for(
      gr,
      [&](std::int64_t r0, std::int64_t r1) {
        for (std::int64_t r = r0; r < r1; ++r) {
          float* row = out.data() + r * gc;
          std::sort(row, row + gc);
        }
      },
      kernels::rows_grain(8 * gc));
  return out;
}

}  // namespace

std::vector<std::int64_t> plan_rank_column_pruning(
    const std::vector<LayerBlockInfo>& layers, double element_fraction,
    const BlockPruningConfig& cfg) {
  CRISP_CHECK(element_fraction >= 0.0 && element_fraction <= 1.0,
              "element_fraction out of range: " << element_fraction);
  std::vector<std::int64_t> pruned(layers.size(), 0);
  if (layers.empty() || element_fraction == 0.0) return pruned;

  std::int64_t total_elements = 0;
  std::vector<RankColumn> columns;
  for (std::size_t li = 0; li < layers.size(); ++li) {
    const LayerBlockInfo& layer = layers[li];
    const sparse::BlockGrid& g = layer.grid;
    CRISP_CHECK(layer.scores.dim() == 2 &&
                    layer.scores.size(0) == g.grid_rows() &&
                    layer.scores.size(1) == g.grid_cols(),
                "block-score grid does not match layer geometry");
    total_elements += g.rows * g.cols;

    const Tensor ranked = sorted_rows(layer.scores);
    const std::int64_t gr = g.grid_rows(), gc = g.grid_cols();
    const double layer_total =
        std::max(static_cast<double>(layer.scores.sum()), 1e-30);
    // Column aggregation (line 7): each rank column sums its own grid
    // column in ascending row order — disjoint writes, thread-invariant.
    std::vector<double> aggs(static_cast<std::size_t>(gc), 0.0);
    kernels::parallel_for(
        gc,
        [&](std::int64_t o0, std::int64_t o1) {
          for (std::int64_t o = o0; o < o1; ++o) {
            double agg = 0.0;
            for (std::int64_t r = 0; r < gr; ++r) agg += ranked[r * gc + o];
            aggs[static_cast<std::size_t>(o)] = agg;
          }
        },
        kernels::rows_grain(gr));
    for (std::int64_t o = 0; o < gc; ++o) {
      RankColumn col;
      col.layer = static_cast<std::int64_t>(li);
      col.rank = o;
      const double agg = aggs[static_cast<std::size_t>(o)];
      // One block leaves every block-row; edge blocks are narrower, so the
      // exact cost is rows x the average column extent. Using B for the
      // column extent is exact away from the right edge; we charge the
      // average to stay consistent with total_elements.
      col.element_cost = g.rows * g.cols / gc;
      switch (cfg.norm) {
        case BlockScoreNorm::kNone:
          col.score = agg;
          break;
        case BlockScoreNorm::kMeanPerElement:
          col.score = agg / static_cast<double>(std::max<std::int64_t>(
                                1, gr * g.block * g.block));
          break;
        case BlockScoreNorm::kLayerFraction:
          col.score = agg / layer_total;
          break;
      }
      columns.push_back(col);
    }
  }

  std::stable_sort(columns.begin(), columns.end(),
                   [](const RankColumn& a, const RankColumn& b) {
                     return std::tie(a.score, a.layer, a.rank) <
                            std::tie(b.score, b.layer, b.rank);
                   });

  const auto target = static_cast<double>(total_elements) * element_fraction;
  double removed = 0.0;
  for (const RankColumn& col : columns) {
    if (removed >= target) break;
    const sparse::BlockGrid& g = layers[static_cast<std::size_t>(col.layer)].grid;
    const std::int64_t cap = g.grid_cols() - cfg.min_kept_ranks;
    auto& count = pruned[static_cast<std::size_t>(col.layer)];
    if (count >= cap) continue;  // layer-collapse guard
    ++count;
    removed += static_cast<double>(col.element_cost);
  }
  return pruned;
}

Tensor rank_pruned_block_mask(const LayerBlockInfo& layer,
                              std::int64_t pruned_ranks) {
  const sparse::BlockGrid& g = layer.grid;
  CRISP_CHECK(pruned_ranks >= 0 && pruned_ranks <= g.grid_cols(),
              "pruned_ranks " << pruned_ranks << " out of range");
  std::vector<std::int64_t> per_row(static_cast<std::size_t>(g.grid_rows()),
                                    pruned_ranks);
  const Tensor block_mask =
      sparse::uniform_row_block_mask(layer.scores, g, per_row);
  return sparse::expand_block_mask(block_mask, g);
}

Tensor random_hybrid_mask(Rng& rng, std::int64_t rows, std::int64_t cols,
                          std::int64_t block, std::int64_t n, std::int64_t m,
                          std::int64_t pruned_ranks) {
  Tensor scores = Tensor::rand({rows, cols}, rng, 0.1f, 1.0f);
  const Tensor nm = sparse::nm_mask(as_matrix(scores, rows, cols), n, m);
  LayerBlockInfo info;
  info.grid = sparse::BlockGrid{rows, cols, block};
  info.scores = sparse::block_scores(as_matrix(scores, rows, cols), info.grid);
  const Tensor bmask = rank_pruned_block_mask(info, pruned_ranks);
  return sparse::mask_and(nm, bmask);
}

void install_random_hybrid_masks(nn::Sequential& model, std::int64_t block,
                                 std::int64_t n, std::int64_t m,
                                 std::int64_t pruned_ranks,
                                 std::uint64_t seed) {
  Rng rng(seed);
  for (nn::Parameter* p : model.prunable_parameters()) {
    const Tensor mask = random_hybrid_mask(rng, p->matrix_rows, p->matrix_cols,
                                           block, n, m, pruned_ranks);
    p->ensure_mask();
    kernels::parallel_for(
        mask.numel(),
        [&](std::int64_t i0, std::int64_t i1) {
          for (std::int64_t i = i0; i < i1; ++i) p->mask[i] = mask[i];
        },
        kernels::rows_grain(1));
  }
}

}  // namespace crisp::core
