#include "core/accounting.h"

#include <algorithm>

namespace crisp::core {

double ModelCensus::max_layer_sparsity() const {
  double mx = 0.0;
  for (const auto& l : layers) mx = std::max(mx, l.sparsity);
  return mx;
}

ModelCensus take_census(nn::Sequential& model, std::int64_t block) {
  ModelCensus census;
  std::int64_t total = 0, zeros = 0;
  for (nn::Parameter* p : model.prunable_parameters()) {
    LayerCensus lc;
    lc.name = p->name;
    lc.rows = p->matrix_rows;
    lc.cols = p->matrix_cols;
    lc.block = block;
    total += p->value.numel();
    if (p->has_mask()) {
      lc.sparsity = p->mask_sparsity();
      zeros += p->value.numel() - p->mask.count_nonzero();
      const sparse::BlockGrid grid{lc.rows, lc.cols, block};
      const auto counts = sparse::zero_blocks_per_row(
          as_matrix(p->mask, lc.rows, lc.cols), grid);
      lc.uniform_rows =
          std::all_of(counts.begin(), counts.end(),
                      [&](std::int64_t c) { return c == counts.front(); });
      lc.pruned_blocks_per_row = counts.empty() ? 0 : counts.front();
      lc.k_prime =
          std::max<std::int64_t>(0, lc.cols - lc.pruned_blocks_per_row * block);
    } else {
      lc.k_prime = lc.cols;
    }
    census.layers.push_back(std::move(lc));
  }
  census.global_sparsity =
      total == 0 ? 0.0
                 : static_cast<double>(zeros) / static_cast<double>(total);
  return census;
}

}  // namespace crisp::core
