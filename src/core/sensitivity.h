// Per-layer sparsity sensitivity analysis — the measurement behind the
// paper's Fig. 2 observation that "specific layers can benefit from more
// aggressive pruning (~99 %) compared to others".
//
// For each prunable layer in isolation: apply a hybrid mask at a given
// sparsity (leaving every other layer dense), measure the loss increase on
// a calibration set without any fine-tuning, restore, repeat. The
// resulting profile shows which layers the global rank-column selection
// *should* prune hard — and is a practical tool for choosing block sizes
// and collapse guards on a new architecture.
#pragma once

#include <string>
#include <vector>

#include "core/saliency.h"
#include "nn/sequential.h"

namespace crisp::core {

struct SensitivityConfig {
  /// Sparsity levels probed per layer (each is an element zero-fraction).
  std::vector<double> levels{0.5, 0.75, 0.9, 0.99};
  std::int64_t n = 2;        ///< N:M inside surviving blocks
  std::int64_t m = 4;
  std::int64_t block = 8;    ///< block side for the coarse component
  std::int64_t batch_size = 64;
  SaliencyConfig saliency;   ///< scores that rank blocks within the layer
};

struct LayerSensitivity {
  std::string name;              ///< parameter name
  double base_loss = 0.0;        ///< dense calibration loss
  std::vector<double> levels;    ///< probed sparsity levels (achieved)
  std::vector<double> loss_increase;  ///< loss(level) − base_loss, aligned

  /// Highest probed sparsity whose loss increase stays under `budget`.
  /// Returns 0 when even the lowest level exceeds it.
  double tolerated_sparsity(double budget) const;
};

/// Probes every prunable layer independently. The model is returned to its
/// exact pre-call state (masks and weights untouched). Deterministic.
std::vector<LayerSensitivity> layer_sensitivity(
    nn::Sequential& model, const data::Dataset& calibration,
    const SensitivityConfig& cfg);

}  // namespace crisp::core
