#include "core/nm_pruning.h"

#include "sparse/mask.h"
#include "sparse/nm.h"

namespace crisp::core {

std::vector<Tensor> select_nm_masks(nn::Sequential& model,
                                    const SaliencyMap& saliency,
                                    std::int64_t n, std::int64_t m) {
  auto params = model.prunable_parameters();
  CRISP_CHECK(saliency.size() == params.size(),
              "saliency map does not match prunable parameter count");
  std::vector<Tensor> masks;
  masks.reserve(params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    const nn::Parameter& p = *params[i];
    const Tensor& s = saliency[i];
    if (s.numel() == 0) {  // frozen layer: no score, no new mask
      masks.emplace_back();
      continue;
    }
    CRISP_CHECK(s.same_shape(p.value), "saliency shape mismatch for " << p.name);
    Tensor mask = sparse::nm_mask(
        as_matrix(s, p.matrix_rows, p.matrix_cols), n, m);
    mask.reshape_inplace(p.value.shape());
    masks.push_back(std::move(mask));
  }
  return masks;
}

void install_masks(nn::Sequential& model, const std::vector<Tensor>& nm_masks,
                   const std::vector<Tensor>& block_masks) {
  auto params = model.prunable_parameters();
  CRISP_CHECK(nm_masks.empty() || nm_masks.size() == params.size(),
              "N:M mask count mismatch");
  CRISP_CHECK(block_masks.empty() || block_masks.size() == params.size(),
              "block mask count mismatch");
  for (std::size_t i = 0; i < params.size(); ++i) {
    nn::Parameter& p = *params[i];
    const bool nm_empty = nm_masks.empty() || nm_masks[i].numel() == 0;
    const bool blk_empty = block_masks.empty() || block_masks[i].numel() == 0;
    if (nm_empty && blk_empty && !(nm_masks.empty() && block_masks.empty())) {
      continue;  // frozen layer (empty component tensors): keep current mask
    }
    Tensor mask;
    if (!nm_empty && !blk_empty) {
      mask = sparse::mask_and(nm_masks[i], block_masks[i]);
    } else if (!nm_empty) {
      mask = nm_masks[i];
    } else if (!blk_empty) {
      mask = block_masks[i];
    } else {
      mask = Tensor::ones(p.value.shape());
    }
    CRISP_CHECK(mask.same_shape(p.value), "mask shape mismatch for " << p.name);
    p.mask = std::move(mask);
  }
}

}  // namespace crisp::core
