// Sparsity census: the measured state of a pruned model.
//
// Sources for Fig. 2 (layer-wise sparsity distribution), the K' values the
// metadata formulas need, and the per-layer sparsity the accelerator
// simulator consumes.
#pragma once

#include <string>
#include <vector>

#include "nn/sequential.h"
#include "sparse/block.h"

namespace crisp::core {

struct LayerCensus {
  std::string name;            ///< parameter name
  std::int64_t rows = 0;       ///< S
  std::int64_t cols = 0;       ///< K
  std::int64_t block = 0;      ///< census block size B
  double sparsity = 0.0;       ///< element zero-fraction of the mask
  std::int64_t pruned_blocks_per_row = 0;  ///< uniform across rows
  std::int64_t k_prime = 0;    ///< surviving columns = K − pruned·B (≥ 0)
  bool uniform_rows = true;    ///< equal-blocks-per-row invariant holds
};

struct ModelCensus {
  std::vector<LayerCensus> layers;
  double global_sparsity = 0.0;  ///< zero fraction over all prunable weights

  /// Maximum per-layer sparsity — watch for layer collapse (≈ 1.0).
  double max_layer_sparsity() const;
};

/// Reads every prunable parameter's mask. Parameters without masks count as
/// dense. `block` must match the block size the pruner used.
ModelCensus take_census(nn::Sequential& model, std::int64_t block);

}  // namespace crisp::core
