#include "core/unlearn.h"

#include <cmath>

#include "core/accounting.h"
#include "kernels/parallel_for.h"
#include "sparse/block.h"
#include "sparse/mask.h"

namespace crisp::core {

namespace {

/// Block-score grid of `saliency`, normalized to the layer's total (layer
/// fraction — the same cross-layer scale block pruning uses). Zero-total
/// layers normalize to all-zero.
Tensor normalized_block_scores(const Tensor& saliency,
                               const nn::Parameter& p,
                               const sparse::BlockGrid& grid) {
  Tensor scores = sparse::block_scores(
      as_matrix(saliency, p.matrix_rows, p.matrix_cols), grid);
  const float total = scores.sum();
  if (total > 0.0f) scores.scale_(1.0f / total);
  return scores;
}

}  // namespace

std::vector<Tensor> derive_forget_masks(nn::Sequential& model,
                                        const data::Dataset& forget,
                                        const data::Dataset& retain,
                                        const UnlearnConfig& cfg) {
  CRISP_CHECK(cfg.drop_per_row >= 1, "drop_per_row must be >= 1");
  CRISP_CHECK(cfg.block >= 1, "block side must be positive");
  auto params = model.prunable_parameters();

  // Two class-conditional sweeps with the same criterion and estimation
  // settings: identical batching config means the scores differ only by the
  // class split, which is the signal. Saliency runs train-mode forwards, so
  // snapshot/restore keeps BatchNorm statistics (and the caller's model)
  // exactly as they were.
  SaliencyConfig scfg = cfg.saliency;
  scfg.criterion = cfg.criterion;
  const TensorMap snapshot = model.state_dict();
  const SaliencyMap s_forget = estimate_saliency(model, forget, scfg);
  model.load_state_dict(snapshot);
  const SaliencyMap s_retain = estimate_saliency(model, retain, scfg);
  model.load_state_dict(snapshot);

  std::vector<Tensor> masks(params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    nn::Parameter& p = *params[i];
    const sparse::BlockGrid grid{p.matrix_rows, p.matrix_cols, cfg.block};
    const std::int64_t grows = grid.grid_rows(), gcols = grid.grid_cols();

    // Forget-specificity per block: how much the forget classes rely on it
    // beyond what the retain classes do.
    const Tensor nf = normalized_block_scores(s_forget[i], p, grid);
    const Tensor nr = normalized_block_scores(s_retain[i], p, grid);
    Tensor spec(nf.shape());
    for (std::int64_t e = 0; e < spec.numel(); ++e)
      spec[e] = nf[e] - static_cast<float>(cfg.retain_weight) * nr[e];

    // A block "survives" when the current mask keeps any of its elements;
    // only survivors are candidates (re-pruning a dead block is a no-op and
    // would waste the per-row budget).
    std::vector<std::uint8_t> alive(
        static_cast<std::size_t>(grows * gcols), 1);
    if (!p.mask.empty()) {
      for (std::int64_t gr = 0; gr < grows; ++gr)
        for (std::int64_t gc = 0; gc < gcols; ++gc) {
          bool any = false;
          for (std::int64_t r = gr * grid.block;
               r < gr * grid.block + grid.row_extent(gr) && !any; ++r)
            for (std::int64_t c = gc * grid.block;
                 c < gc * grid.block + grid.col_extent(gc); ++c)
              if (p.mask[r * p.matrix_cols + c] != 0.0f) {
                any = true;
                break;
              }
          alive[static_cast<std::size_t>(gr * gcols + gc)] = any ? 1 : 0;
        }
    }

    // Every row must keep at least one block after the drop, or the layer
    // sits out (empty tensor — caller leaves its mask alone).
    std::int64_t min_alive = gcols;
    for (std::int64_t gr = 0; gr < grows; ++gr) {
      std::int64_t n = 0;
      for (std::int64_t gc = 0; gc < gcols; ++gc)
        n += alive[static_cast<std::size_t>(gr * gcols + gc)];
      if (n < min_alive) min_alive = n;
    }
    if (min_alive <= cfg.drop_per_row) continue;

    // Per block-row: drop the `drop_per_row` most forget-specific surviving
    // blocks. One owner per row, serial argmax inside (first max wins on
    // ties) — deterministic and thread-count independent.
    Tensor mask = Tensor::ones(p.value.shape());
    kernels::parallel_for(
        grows,
        [&](std::int64_t g0, std::int64_t g1) {
          for (std::int64_t gr = g0; gr < g1; ++gr) {
            std::vector<std::uint8_t> taken(static_cast<std::size_t>(gcols), 0);
            for (std::int64_t k = 0; k < cfg.drop_per_row; ++k) {
              std::int64_t best = -1;
              float best_score = 0.0f;
              for (std::int64_t gc = 0; gc < gcols; ++gc) {
                if (taken[static_cast<std::size_t>(gc)] ||
                    !alive[static_cast<std::size_t>(gr * gcols + gc)])
                  continue;
                const float sc = spec[gr * gcols + gc];
                if (best < 0 || sc > best_score) {
                  best = gc;
                  best_score = sc;
                }
              }
              taken[static_cast<std::size_t>(best)] = 1;
              for (std::int64_t r = gr * grid.block;
                   r < gr * grid.block + grid.row_extent(gr); ++r)
                for (std::int64_t c = best * grid.block;
                     c < best * grid.block + grid.col_extent(best); ++c)
                  mask[r * p.matrix_cols + c] = 0.0f;
            }
          }
        },
        kernels::rows_grain(gcols * grid.block));
    masks[i] = std::move(mask);
  }
  return masks;
}

UnlearnReport unlearn_classes(nn::Sequential& model,
                              const data::Dataset& forget,
                              const data::Dataset& retain,
                              const UnlearnConfig& cfg, Rng& rng) {
  auto params = model.prunable_parameters();
  UnlearnReport report;
  report.sparsity_before = take_census(model, cfg.block).global_sparsity;

  const std::vector<Tensor> forget_masks =
      derive_forget_masks(model, forget, retain, cfg);
  report.dropped_per_row.resize(params.size(), 0);
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (forget_masks[i].numel() == 0) continue;
    nn::Parameter& p = *params[i];
    p.ensure_mask();
    p.mask = sparse::mask_and(p.mask, forget_masks[i]);
    report.dropped_per_row[i] = cfg.drop_per_row;
  }

  if (cfg.finetune_epochs > 0) {
    // Retain-set recovery: repairs retained-class accuracy and — because no
    // forget-class gradient ever flows — drifts the surviving weights away
    // from the forgotten classes, deepening the unlearning.
    nn::TrainConfig tc;
    tc.epochs = cfg.finetune_epochs;
    tc.batch_size = cfg.batch_size;
    tc.sgd = cfg.finetune_sgd;
    const auto stats = nn::train(model, retain, tc, rng);
    report.finetune_loss = stats.empty() ? 0.0f : stats.back().loss;
  }

  report.sparsity_after = take_census(model, cfg.block).global_sparsity;
  return report;
}

}  // namespace crisp::core
