// Loss-aware per-layer criterion auto-selection (arXiv:2506.20152 flavour).
//
// No single saliency rule wins everywhere: a layer whose class-aware
// gradient is concentrated ranks well under cass, one whose per-row energy
// dominates under lasso, one with high gradient variance under taylor. The
// auto-selector measures instead of guessing: for every candidate criterion
// it scores the model once, then probes each layer *in isolation* with a
// hybrid mask built from that candidate's scores and measures the
// validation-loss increase (the sensitivity.cpp probe pattern). The
// candidate with the smallest increase wins the layer; ties go to the
// earlier candidate, so the result is deterministic.
//
// CrispPruner spells this `saliency.criterion = "auto"`: it resolves the
// per-layer assignment once up front, then every pruning iteration runs
// estimate_saliency_selected with the chosen names. bench/criteria.cpp
// gates that the selector actually exercises the menu (≥ 2 distinct
// criteria chosen) and docs/criteria.md walks through the semantics.
#pragma once

#include <string>
#include <vector>

#include "core/saliency.h"
#include "nn/sequential.h"

namespace crisp::core {

struct AutoSelectConfig {
  /// Criteria competing for each layer, probed in this order (ties break
  /// toward the front). Every name must be registered.
  std::vector<std::string> candidates{"cass", "lasso", "taylor"};
  /// Element sparsity of each probe mask. High enough that criteria
  /// disagree measurably; the final schedule's κ is applied later by the
  /// pruner, not here.
  double probe_sparsity = 0.75;
  std::int64_t n = 2;      ///< N:M inside surviving blocks of the probe
  std::int64_t m = 4;
  std::int64_t block = 8;  ///< block side of the probe's coarse component
  std::int64_t batch_size = 64;  ///< validation-loss evaluation batches
  /// Estimation settings shared by every candidate (the criterion field is
  /// ignored — each candidate overrides it). Same cfg ⇒ same calibration
  /// batches, so candidates are compared on identical data.
  SaliencyConfig saliency;
};

struct AutoSelection {
  std::vector<std::string> candidates;  ///< probe order used
  std::vector<std::string> per_layer;   ///< winner per prunable parameter
  /// loss_increase[c][i]: probe loss − base loss for candidate c, layer i.
  std::vector<std::vector<double>> loss_increase;

  /// Number of distinct criteria actually chosen across layers.
  std::int64_t distinct_chosen() const;
};

/// Probes every prunable layer under every candidate and returns the
/// per-layer argmin assignment. The model is returned to its exact
/// pre-call state (weights, masks, BatchNorm statistics). Deterministic
/// for a fixed config and thread-count independent.
AutoSelection auto_select_criteria(nn::Sequential& model,
                                   const data::Dataset& validation,
                                   const AutoSelectConfig& cfg);

}  // namespace crisp::core
