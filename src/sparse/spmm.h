// Convenience wrappers: run any sparse format against a dense right-hand
// side and compare with the dense reference — used by tests, the kernels
// bench, and the format_inspector example.
#pragma once

#include "sparse/formats/blocked_ell.h"
#include "sparse/formats/crisp_format.h"
#include "sparse/formats/csr.h"
#include "sparse/formats/ellpack.h"

namespace crisp::sparse {

/// Dense reference: y = w · x (allocating).
Tensor dense_matmul(const Tensor& w, const Tensor& x);

template <typename Format>
Tensor spmm(const Format& w, const Tensor& x) {
  Tensor y({w.rows(), x.size(1)});
  w.spmm(as_matrix(x, x.size(0), x.size(1)), as_matrix(y, y.size(0), y.size(1)));
  return y;
}

}  // namespace crisp::sparse
