// Sparse GEMM dispatch: run any sparse storage format against a dense
// right-hand side through the format-polymorphic kernels::SpmmKernel
// interface, plus the dense reference the tests and benches compare
// against. Used by tests, the kernels bench, the format_inspector example,
// and packed deployment.
#pragma once

#include "kernels/spmm_kernel.h"
#include "sparse/formats/blocked_ell.h"
#include "sparse/formats/crisp_format.h"
#include "sparse/formats/csr.h"
#include "sparse/formats/ellpack.h"

namespace crisp::sparse {

/// Dense reference: y = w · x (allocating).
Tensor dense_matmul(const Tensor& w, const Tensor& x);

/// y = w · x through any SpmmKernel implementation (allocating). Every
/// format class derives from kernels::SpmmKernel, so this single overload
/// replaces the old per-format template: dispatch is a virtual call, and
/// the multiplication itself runs on the parallel kernel layer.
Tensor spmm(const kernels::SpmmKernel& w, const Tensor& x);

}  // namespace crisp::sparse
