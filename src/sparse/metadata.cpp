#include "sparse/metadata.h"

#include <algorithm>
#include <cmath>

#include "tensor/check.h"

namespace crisp::sparse {

std::int64_t bits_for_index(std::int64_t n) {
  CRISP_CHECK(n >= 1, "bits_for_index of non-positive count");
  std::int64_t bits = 1;
  while ((std::int64_t{1} << bits) < n) ++bits;
  return bits;
}

std::int64_t paper_block_metadata_bits(std::int64_t s, std::int64_t k_prime,
                                       std::int64_t b) {
  CRISP_CHECK(s >= 1 && k_prime >= 0 && b >= 1, "bad block metadata inputs");
  if (k_prime == 0) return 0;
  const auto idx_bits = static_cast<std::int64_t>(
      std::floor(std::log2(std::max<std::int64_t>(2, k_prime / b))));
  return s * k_prime * idx_bits / (b * b);
}

std::int64_t paper_nm_metadata_bits(std::int64_t s, std::int64_t k_prime,
                                    std::int64_t n, std::int64_t m) {
  CRISP_CHECK(m >= 1 && n >= 1 && n <= m, "bad N:M");
  const auto m_bits =
      static_cast<std::int64_t>(std::floor(std::log2(static_cast<double>(m))));
  return s * k_prime * n * m_bits / m;
}

double paper_average_sparsity(std::int64_t k, std::int64_t k_prime,
                              std::int64_t n, std::int64_t m) {
  CRISP_CHECK(k >= 1 && k_prime >= 0 && k_prime <= k, "bad K'/K");
  return 1.0 - (static_cast<double>(k_prime) / static_cast<double>(k)) *
                   (static_cast<double>(n) / static_cast<double>(m));
}

std::int64_t k_prime_for_sparsity(std::int64_t k, std::int64_t b,
                                  std::int64_t n, std::int64_t m,
                                  double kappa) {
  CRISP_CHECK(kappa >= 0.0 && kappa < 1.0, "kappa out of [0,1)");
  // 1 − (K'/K)(N/M) ≥ κ  ⇔  K' ≤ (1−κ)·K·M/N
  const double limit = (1.0 - kappa) * static_cast<double>(k) *
                       static_cast<double>(m) / static_cast<double>(n);
  std::int64_t k_prime =
      std::min<std::int64_t>(k, static_cast<std::int64_t>(limit));
  // Round down to whole block columns; always keep at least one block.
  k_prime = std::max<std::int64_t>(b, k_prime / b * b);
  return std::min(k_prime, k);
}

}  // namespace crisp::sparse
