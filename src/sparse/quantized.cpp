#include "sparse/quantized.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <limits>
#include <ostream>

#include "tensor/check.h"
#include "tensor/crc32.h"
#include "tensor/pod_stream.h"

namespace crisp::sparse {

namespace {

constexpr const char* kCtx = "QuantizedPayload::read";

}  // namespace

QuantizedPayload QuantizedPayload::quantize(const float* v, std::int64_t count,
                                            std::int64_t group_size) {
  QuantizedPayload out;
  if (count == 0) return out;
  CRISP_CHECK(group_size >= 1,
              "QuantizedPayload::quantize: group_size must be >= 1, got "
                  << group_size);
  out.group_size = group_size;
  out.values.resize(static_cast<std::size_t>(count));
  const std::int64_t groups = (count + group_size - 1) / group_size;
  out.scales.resize(static_cast<std::size_t>(groups));

  for (std::int64_t g = 0; g < groups; ++g) {
    const std::int64_t begin = g * group_size;
    const std::int64_t end = std::min(begin + group_size, count);
    float amax = 0.0f;
    for (std::int64_t i = begin; i < end; ++i) {
      const float a = std::fabs(v[i]);
      if (a > amax) amax = a;
    }
    float scale = amax / 127.0f;
    // A denormal amax can underflow the division to 0, which would zero a
    // non-zero group through the all-zero branch below. The smallest
    // normal float keeps the bound: every such |v| < 127 * denorm_min is
    // far below FLT_MIN / 2, so q = 0 with |err| <= scale / 2 still holds.
    if (scale == 0.0f && amax != 0.0f)
      scale = std::numeric_limits<float>::min();
    out.scales[static_cast<std::size_t>(g)] = scale;
    if (scale == 0.0f) {
      for (std::int64_t i = begin; i < end; ++i)
        out.values[static_cast<std::size_t>(i)] = 0;
      continue;
    }
    for (std::int64_t i = begin; i < end; ++i) {
      // round-half-away-from-zero: deterministic, no FE-mode dependence.
      long q = std::lroundf(v[i] / scale);
      if (q > 127) q = 127;
      if (q < -127) q = -127;
      out.values[static_cast<std::size_t>(i)] = static_cast<std::int8_t>(q);
    }
  }
  return out;
}

void QuantizedPayload::dequantize(float* out) const {
  const std::int64_t count = slot_count();
  for (std::int64_t i = 0; i < count; ++i)
    out[i] = scales[static_cast<std::size_t>(i / group_size)] *
             static_cast<float>(values[static_cast<std::size_t>(i)]);
}

std::vector<float> QuantizedPayload::dequantized() const {
  std::vector<float> out(values.size());
  dequantize(out.data());
  return out;
}

void QuantizedPayload::write(std::ostream& os, bool crc_trailer) const {
  io::Crc32Ostream co(os);
  io::write_pod(co, group_size);
  io::write_array(co, values);
  io::write_array(co, scales);
  if (crc_trailer) io::write_pod(os, co.crc());
}

QuantizedPayload QuantizedPayload::read(std::istream& is, bool crc_trailer) {
  io::Crc32Istream ci(is);
  QuantizedPayload out;
  out.group_size = io::read_pod<std::int64_t>(ci, kCtx);
  out.values = io::read_array<std::int8_t>(ci, kCtx);
  out.scales = io::read_array<float>(ci, kCtx);
  if (crc_trailer) {
    const std::uint32_t want = ci.crc();
    const auto got = io::read_pod<std::uint32_t>(is, kCtx);
    CRISP_CHECK(got == want,
                kCtx << ": checksum mismatch (payload corrupt)");
  }
  if (out.values.empty()) {
    CRISP_CHECK(out.scales.empty() && out.group_size == 0,
                "QuantizedPayload::read: empty payload with non-empty header");
    return out;
  }
  CRISP_CHECK(out.group_size >= 1,
              "QuantizedPayload::read: bad group size " << out.group_size);
  const std::int64_t expect_groups =
      (out.slot_count() + out.group_size - 1) / out.group_size;
  CRISP_CHECK(static_cast<std::int64_t>(out.scales.size()) == expect_groups,
              "QuantizedPayload::read: scale count mismatch ("
                  << out.scales.size() << " vs " << expect_groups << ")");
  return out;
}

}  // namespace crisp::sparse
