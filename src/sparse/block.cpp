#include "sparse/block.h"

#include <algorithm>
#include <cmath>

#include "kernels/parallel_for.h"

namespace crisp::sparse {

Tensor block_scores(ConstMatrixView scores, const BlockGrid& grid) {
  CRISP_CHECK(grid.rows == scores.rows && grid.cols == scores.cols,
              "block grid does not match score matrix");
  CRISP_CHECK(grid.block >= 1, "block size must be positive");
  Tensor out({grid.grid_rows(), grid.grid_cols()});
  // Each block-row owns its row of the score grid and a fixed per-block
  // accumulation order, so the sweep threads with disjoint writes.
  kernels::parallel_for(
      grid.grid_rows(),
      [&](std::int64_t b0, std::int64_t b1) {
        for (std::int64_t br = b0; br < b1; ++br) {
          for (std::int64_t bc = 0; bc < grid.grid_cols(); ++bc) {
            double acc = 0.0;
            for (std::int64_t r = br * grid.block;
                 r < br * grid.block + grid.row_extent(br); ++r)
              for (std::int64_t c = bc * grid.block;
                   c < bc * grid.block + grid.col_extent(bc); ++c)
                acc += std::fabs(scores(r, c));
            out[br * grid.grid_cols() + bc] = static_cast<float>(acc);
          }
        }
      },
      kernels::rows_grain(grid.block * grid.cols));
  return out;
}

Tensor uniform_row_block_mask(const Tensor& scores, const BlockGrid& grid,
                              const std::vector<std::int64_t>& prune_per_row) {
  const std::int64_t gr = grid.grid_rows(), gc = grid.grid_cols();
  CRISP_CHECK(scores.dim() == 2 && scores.size(0) == gr && scores.size(1) == gc,
              "block score shape mismatch");
  CRISP_CHECK(static_cast<std::int64_t>(prune_per_row.size()) == gr,
              "prune_per_row size mismatch");
  Tensor mask = Tensor::ones({gr, gc});
  // Per-block-row top-k: each row sorts and masks only its own grid row.
  kernels::parallel_for(
      gr,
      [&](std::int64_t b0, std::int64_t b1) {
        std::vector<std::int64_t> order(static_cast<std::size_t>(gc));
        for (std::int64_t br = b0; br < b1; ++br) {
          const std::int64_t prune =
              prune_per_row[static_cast<std::size_t>(br)];
          CRISP_CHECK(prune >= 0 && prune <= gc,
                      "cannot prune " << prune << " of " << gc << " blocks");
          for (std::int64_t i = 0; i < gc; ++i)
            order[static_cast<std::size_t>(i)] = i;
          const float* srow = scores.data() + br * gc;
          std::stable_sort(order.begin(), order.end(),
                           [&](std::int64_t a, std::int64_t b) {
                             return srow[a] < srow[b];
                           });
          for (std::int64_t i = 0; i < prune; ++i)
            mask[br * gc + order[static_cast<std::size_t>(i)]] = 0.0f;
        }
      },
      kernels::rows_grain(8 * gc));
  return mask;
}

Tensor expand_block_mask(const Tensor& block_mask, const BlockGrid& grid) {
  const std::int64_t gr = grid.grid_rows(), gc = grid.grid_cols();
  CRISP_CHECK(block_mask.dim() == 2 && block_mask.size(0) == gr &&
                  block_mask.size(1) == gc,
              "block mask shape mismatch");
  Tensor mask({grid.rows, grid.cols});
  kernels::parallel_for(
      grid.rows,
      [&](std::int64_t r0, std::int64_t r1) {
        for (std::int64_t r = r0; r < r1; ++r) {
          const std::int64_t br = r / grid.block;
          float* mrow = mask.data() + r * grid.cols;
          for (std::int64_t c = 0; c < grid.cols; ++c)
            mrow[c] = block_mask[br * gc + c / grid.block];
        }
      },
      kernels::rows_grain(grid.cols));
  return mask;
}

std::vector<std::int64_t> zero_blocks_per_row(ConstMatrixView mask,
                                              const BlockGrid& grid) {
  CRISP_CHECK(grid.rows == mask.rows && grid.cols == mask.cols,
              "block grid does not match mask");
  std::vector<std::int64_t> counts(static_cast<std::size_t>(grid.grid_rows()), 0);
  kernels::parallel_for(
      grid.grid_rows(),
      [&](std::int64_t b0, std::int64_t b1) {
        for (std::int64_t br = b0; br < b1; ++br) {
          for (std::int64_t bc = 0; bc < grid.grid_cols(); ++bc) {
            bool all_zero = true;
            for (std::int64_t r = br * grid.block;
                 all_zero && r < br * grid.block + grid.row_extent(br); ++r)
              for (std::int64_t c = bc * grid.block;
                   c < bc * grid.block + grid.col_extent(bc); ++c)
                if (mask(r, c) != 0.0f) {
                  all_zero = false;
                  break;
                }
            counts[static_cast<std::size_t>(br)] += all_zero;
          }
        }
      },
      kernels::rows_grain(grid.block * grid.cols));
  return counts;
}

bool uniform_blocks_per_row(ConstMatrixView mask, const BlockGrid& grid) {
  const auto counts = zero_blocks_per_row(mask, grid);
  for (const auto c : counts)
    if (c != counts.front()) return false;
  return true;
}

}  // namespace crisp::sparse
