#include "sparse/block.h"

#include <algorithm>
#include <cmath>

namespace crisp::sparse {

Tensor block_scores(ConstMatrixView scores, const BlockGrid& grid) {
  CRISP_CHECK(grid.rows == scores.rows && grid.cols == scores.cols,
              "block grid does not match score matrix");
  CRISP_CHECK(grid.block >= 1, "block size must be positive");
  Tensor out({grid.grid_rows(), grid.grid_cols()});
  for (std::int64_t br = 0; br < grid.grid_rows(); ++br) {
    for (std::int64_t bc = 0; bc < grid.grid_cols(); ++bc) {
      double acc = 0.0;
      for (std::int64_t r = br * grid.block;
           r < br * grid.block + grid.row_extent(br); ++r)
        for (std::int64_t c = bc * grid.block;
             c < bc * grid.block + grid.col_extent(bc); ++c)
          acc += std::fabs(scores(r, c));
      out[br * grid.grid_cols() + bc] = static_cast<float>(acc);
    }
  }
  return out;
}

Tensor uniform_row_block_mask(const Tensor& scores, const BlockGrid& grid,
                              const std::vector<std::int64_t>& prune_per_row) {
  const std::int64_t gr = grid.grid_rows(), gc = grid.grid_cols();
  CRISP_CHECK(scores.dim() == 2 && scores.size(0) == gr && scores.size(1) == gc,
              "block score shape mismatch");
  CRISP_CHECK(static_cast<std::int64_t>(prune_per_row.size()) == gr,
              "prune_per_row size mismatch");
  Tensor mask = Tensor::ones({gr, gc});
  std::vector<std::int64_t> order(static_cast<std::size_t>(gc));
  for (std::int64_t br = 0; br < gr; ++br) {
    const std::int64_t prune = prune_per_row[static_cast<std::size_t>(br)];
    CRISP_CHECK(prune >= 0 && prune <= gc,
                "cannot prune " << prune << " of " << gc << " blocks");
    for (std::int64_t i = 0; i < gc; ++i) order[static_cast<std::size_t>(i)] = i;
    const float* srow = scores.data() + br * gc;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::int64_t a, std::int64_t b) {
                       return srow[a] < srow[b];
                     });
    for (std::int64_t i = 0; i < prune; ++i)
      mask[br * gc + order[static_cast<std::size_t>(i)]] = 0.0f;
  }
  return mask;
}

Tensor expand_block_mask(const Tensor& block_mask, const BlockGrid& grid) {
  const std::int64_t gr = grid.grid_rows(), gc = grid.grid_cols();
  CRISP_CHECK(block_mask.dim() == 2 && block_mask.size(0) == gr &&
                  block_mask.size(1) == gc,
              "block mask shape mismatch");
  Tensor mask({grid.rows, grid.cols});
  for (std::int64_t r = 0; r < grid.rows; ++r) {
    const std::int64_t br = r / grid.block;
    float* mrow = mask.data() + r * grid.cols;
    for (std::int64_t c = 0; c < grid.cols; ++c)
      mrow[c] = block_mask[br * gc + c / grid.block];
  }
  return mask;
}

std::vector<std::int64_t> zero_blocks_per_row(ConstMatrixView mask,
                                              const BlockGrid& grid) {
  CRISP_CHECK(grid.rows == mask.rows && grid.cols == mask.cols,
              "block grid does not match mask");
  std::vector<std::int64_t> counts(static_cast<std::size_t>(grid.grid_rows()), 0);
  for (std::int64_t br = 0; br < grid.grid_rows(); ++br) {
    for (std::int64_t bc = 0; bc < grid.grid_cols(); ++bc) {
      bool all_zero = true;
      for (std::int64_t r = br * grid.block;
           all_zero && r < br * grid.block + grid.row_extent(br); ++r)
        for (std::int64_t c = bc * grid.block;
             c < bc * grid.block + grid.col_extent(bc); ++c)
          if (mask(r, c) != 0.0f) {
            all_zero = false;
            break;
          }
      counts[static_cast<std::size_t>(br)] += all_zero;
    }
  }
  return counts;
}

bool uniform_blocks_per_row(ConstMatrixView mask, const BlockGrid& grid) {
  const auto counts = zero_blocks_per_row(mask, grid);
  for (const auto c : counts)
    if (c != counts.front()) return false;
  return true;
}

}  // namespace crisp::sparse
