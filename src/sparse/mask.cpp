#include "sparse/mask.h"

namespace crisp::sparse {

Tensor mask_and(const Tensor& a, const Tensor& b) {
  CRISP_CHECK(a.same_shape(b), "mask_and: shape mismatch");
  Tensor out = a;
  out.mul_(b);
  return out;
}

double mask_sparsity(ConstMatrixView mask) {
  const std::int64_t total = mask.numel();
  if (total == 0) return 0.0;
  return 1.0 - static_cast<double>(mask_nnz(mask)) / static_cast<double>(total);
}

std::int64_t mask_nnz(ConstMatrixView mask) {
  std::int64_t nnz = 0;
  for (std::int64_t i = 0; i < mask.numel(); ++i)
    nnz += (mask.data[i] != 0.0f);
  return nnz;
}

bool is_binary(ConstMatrixView mask) {
  for (std::int64_t i = 0; i < mask.numel(); ++i) {
    const float v = mask.data[i];
    if (v != 0.0f && v != 1.0f) return false;
  }
  return true;
}

void apply_mask(MatrixView value, ConstMatrixView mask) {
  CRISP_CHECK(value.rows == mask.rows && value.cols == mask.cols,
              "apply_mask: view shape mismatch");
  for (std::int64_t i = 0; i < value.numel(); ++i)
    value.data[i] *= mask.data[i];
}

}  // namespace crisp::sparse
