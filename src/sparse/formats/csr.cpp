#include "sparse/formats/csr.h"

#include <cstring>

#include "kernels/parallel_for.h"
#include "kernels/prefetch.h"
#include "kernels/simd_dispatch.h"
#include "sparse/metadata.h"

namespace crisp::sparse {

CsrMatrix CsrMatrix::encode(ConstMatrixView dense) {
  CsrMatrix m;
  m.rows_ = dense.rows;
  m.cols_ = dense.cols;
  m.row_ptr_.resize(static_cast<std::size_t>(dense.rows) + 1, 0);
  for (std::int64_t r = 0; r < dense.rows; ++r) {
    for (std::int64_t c = 0; c < dense.cols; ++c) {
      const float v = dense(r, c);
      if (v != 0.0f) {
        m.col_idx_.push_back(static_cast<std::int32_t>(c));
        m.values_.push_back(v);
      }
    }
    m.row_ptr_[static_cast<std::size_t>(r) + 1] =
        static_cast<std::int64_t>(m.values_.size());
  }
  return m;
}

Tensor CsrMatrix::decode() const {
  Tensor dense({rows_, cols_});
  for (std::int64_t r = 0; r < rows_; ++r)
    for (std::int64_t i = row_ptr_[static_cast<std::size_t>(r)];
         i < row_ptr_[static_cast<std::size_t>(r) + 1]; ++i)
      dense[r * cols_ + col_idx_[static_cast<std::size_t>(i)]] =
          values_[static_cast<std::size_t>(i)];
  return dense;
}

void CsrMatrix::spmm(ConstMatrixView x, MatrixView y) const {
  CRISP_CHECK(x.rows == cols_, "CSR spmm: inner dimension mismatch");
  CRISP_CHECK(y.rows == rows_ && y.cols == x.cols, "CSR spmm: output shape");
  const std::int64_t p = x.cols;
  // Each thread owns a contiguous band of output rows: zero it, then
  // accumulate in stored (column-ascending) order — deterministic at any
  // thread count. Grain sized from the average row cost so tiny layers
  // stay inline.
  const std::int64_t grain =
      kernels::rows_grain(rows_ > 0 ? nnz() / rows_ * p : 0);
  const auto axpy = kernels::simd::active().axpy;
  kernels::parallel_for(rows_, [&](std::int64_t r0, std::int64_t r1) {
    std::memset(y.data + r0 * p, 0,
                static_cast<std::size_t>((r1 - r0) * p) * sizeof(float));
    for (std::int64_t r = r0; r < r1; ++r) {
      float* yrow = y.data + r * p;
      const std::int64_t end = row_ptr_[static_cast<std::size_t>(r) + 1];
      for (std::int64_t i = row_ptr_[static_cast<std::size_t>(r)]; i < end;
           ++i) {
        // Hide the gather latency of the *next* slot's activation row while
        // this one multiplies (hint only — results are unchanged).
        if (i + 1 < end)
          kernels::prefetch_read(
              x.data + col_idx_[static_cast<std::size_t>(i) + 1] * p);
        axpy(values_[static_cast<std::size_t>(i)],
             x.data + col_idx_[static_cast<std::size_t>(i)] * p, yrow, p);
      }
    }
  }, grain);
}

std::int64_t CsrMatrix::metadata_bits() const {
  return nnz() * bits_for_index(cols_) +
         static_cast<std::int64_t>(row_ptr_.size()) * 32;
}

std::int64_t CsrMatrix::payload_bits() const { return nnz() * 32; }

}  // namespace crisp::sparse
