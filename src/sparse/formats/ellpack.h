// ELLPACK format (Kincaid's ITPACK): every row padded to the maximum row
// non-zero count. The paper cites its padding cost as a motivation for the
// CRISP layout — rows with few non-zeros still pay `width` slots.
#pragma once

#include <cstdint>
#include <vector>

#include "kernels/spmm_kernel.h"
#include "tensor/tensor.h"

namespace crisp::sparse {

class EllpackMatrix : public kernels::SpmmKernel {
 public:
  static EllpackMatrix encode(ConstMatrixView dense);

  Tensor decode() const;
  /// Parallel over output rows, bit-identical at any thread count.
  void spmm(ConstMatrixView x, MatrixView y) const override;

  /// Column indices for every slot, padded slots included.
  std::int64_t metadata_bits() const;
  /// Padded value payload (32-bit floats).
  std::int64_t payload_bits() const;

  std::int64_t rows() const override { return rows_; }
  std::int64_t cols() const override { return cols_; }
  const char* format_name() const override { return "ellpack"; }
  std::int64_t width() const { return width_; }
  /// Padding slots / total slots — the waste the paper calls out.
  double padding_fraction() const;

 private:
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  std::int64_t width_ = 0;   ///< max non-zeros in any row
  std::int64_t nnz_ = 0;
  // Row-major (rows_ x width_); padded slots have col index -1, value 0.
  std::vector<std::int32_t> col_idx_;
  std::vector<float> values_;
};

}  // namespace crisp::sparse
