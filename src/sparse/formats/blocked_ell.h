// Blocked-ELLPACK format (Liu et al., ICS'13) — the layout the paper adopts
// for its block-sparsity metadata: a uniform number of non-zero blocks per
// block-row, identified by their block-column indices in row-major order.
#pragma once

#include <cstdint>
#include <vector>

#include "kernels/spmm_kernel.h"
#include "sparse/block.h"
#include "tensor/tensor.h"

namespace crisp::sparse {

class BlockedEllMatrix : public kernels::SpmmKernel {
 public:
  /// Encodes `dense` under a BxB block grid. A block survives when it holds
  /// any non-zero. Requires a *uniform* survivor count per block-row (the
  /// CRISP invariant); throws otherwise.
  static BlockedEllMatrix encode(ConstMatrixView dense, std::int64_t block);

  Tensor decode() const;
  /// Parallel over block-rows (each owns its band of output rows);
  /// bit-identical at any thread count.
  void spmm(ConstMatrixView x, MatrixView y) const override;

  /// Block-column indices (ceil-log2 of the grid width each).
  std::int64_t metadata_bits() const;
  /// Dense payload of the surviving blocks (32-bit floats).
  std::int64_t payload_bits() const;

  const BlockGrid& grid() const { return grid_; }
  std::int64_t blocks_per_row() const { return blocks_per_row_; }
  std::int64_t rows() const override { return grid_.rows; }
  std::int64_t cols() const override { return grid_.cols; }
  const char* format_name() const override { return "blocked-ell"; }

 private:
  BlockGrid grid_;
  std::int64_t blocks_per_row_ = 0;
  /// (grid_rows x blocks_per_row) surviving block-column ids, row-major.
  std::vector<std::int32_t> block_cols_;
  /// Payload: per surviving block, B*B values row-major (trailing blocks
  /// zero-padded to the full block extent to keep addressing uniform).
  std::vector<float> values_;
};

}  // namespace crisp::sparse
