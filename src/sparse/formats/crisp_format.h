// CRISP hybrid storage format (paper Fig. 5 step 5 and Fig. 6).
//
// Two metadata structures compose:
//   * block level — Blocked-ELL style block-column indices, one uniform set
//     of surviving blocks per block-row;
//   * element level — inside every surviving block, each group of M
//     consecutive columns stores at most N values, each tagged with its
//     ceil(log2 M)-bit offset inside the group (2 bits for M = 4).
// Slot counts are fixed (N per group), so the accelerator's MUX-based
// activation selection (Fig. 6) needs no per-row bookkeeping — this is the
// load-balance property the paper trades against CSR/ELLPACK.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "kernels/spmm_kernel.h"
#include "sparse/block.h"
#include "tensor/tensor.h"

namespace crisp::sparse {

class CrispMatrix : public kernels::SpmmKernel {
 public:
  /// Encodes a matrix already pruned to hybrid sparsity. Throws when a
  /// length-M group holds more than N non-zeros (input was not N:M sparse)
  /// or when surviving-block counts differ across block-rows (input was not
  /// uniformly block-pruned). Requires block % m == 0.
  static CrispMatrix encode(ConstMatrixView dense, std::int64_t block,
                            std::int64_t n, std::int64_t m);

  Tensor decode() const;
  /// Parallel over block-rows (each owns its band of output rows);
  /// bit-identical at any thread count.
  void spmm(ConstMatrixView x, MatrixView y) const override;

  /// Block-column indices + per-slot intra-group offsets.
  std::int64_t metadata_bits() const;
  /// Value slots (32-bit floats, padded slots included).
  std::int64_t payload_bits() const;

  /// Binary persistence (host-endian, like tensor/serialize). `read` throws
  /// on truncation or an internally inconsistent header.
  void write(std::ostream& os) const;
  static CrispMatrix read(std::istream& is);

  const BlockGrid& grid() const { return grid_; }
  std::int64_t rows() const override { return grid_.rows; }
  std::int64_t cols() const override { return grid_.cols; }
  const char* format_name() const override { return "crisp"; }
  std::int64_t blocks_per_row() const { return blocks_per_row_; }
  std::int64_t n() const { return n_; }
  std::int64_t m() const { return m_; }
  std::int64_t slot_count() const {
    return static_cast<std::int64_t>(values_.size());
  }

 private:
  BlockGrid grid_;
  std::int64_t n_ = 0;
  std::int64_t m_ = 0;
  std::int64_t blocks_per_row_ = 0;
  std::vector<std::int32_t> block_cols_;  ///< grid_rows x blocks_per_row
  /// Per surviving block: block-side rows x (block/m groups) x n slots.
  std::vector<float> values_;
  std::vector<std::uint8_t> offsets_;     ///< offset in [0, m) per slot
};

}  // namespace crisp::sparse
