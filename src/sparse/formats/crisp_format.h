// CRISP hybrid storage format (paper Fig. 5 step 5 and Fig. 6).
//
// Two metadata structures compose:
//   * block level — Blocked-ELL style block-column indices, one uniform set
//     of surviving blocks per block-row;
//   * element level — inside every surviving block, each group of M
//     consecutive columns stores at most N values, each tagged with its
//     ceil(log2 M)-bit offset inside the group (2 bits for M = 4).
// Slot counts are fixed (N per group), so the accelerator's MUX-based
// activation selection (Fig. 6) needs no per-row bookkeeping — this is the
// load-balance property the paper trades against CSR/ELLPACK.
//
// The value payload can additionally (or instead) be carried as symmetric
// int8 with one fp32 scale per block-row (sparse/quantized.h), turning the
// metadata win into a bandwidth win: spmm_quantized dequantizes on the fly
// through the dispatched axpy_i8 microkernel. docs/formats.md has the
// byte-level layout.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "kernels/spmm_kernel.h"
#include "sparse/block.h"
#include "sparse/quantized.h"
#include "tensor/tensor.h"

namespace crisp::sparse {

class CrispMatrix : public kernels::SpmmKernel {
 public:
  /// Encodes a matrix already pruned to hybrid sparsity. Throws when a
  /// length-M group holds more than N non-zeros (input was not N:M sparse)
  /// or when surviving-block counts differ across block-rows (input was not
  /// uniformly block-pruned). Requires block % m == 0.
  static CrispMatrix encode(ConstMatrixView dense, std::int64_t block,
                            std::int64_t n, std::int64_t m);

  Tensor decode() const;
  /// Parallel over block-rows (each owns its band of output rows);
  /// bit-identical at any thread count. Runs the fp32 payload when present,
  /// otherwise the int8 path (spmm_quantized).
  void spmm(ConstMatrixView x, MatrixView y) const override;

  /// The dequantize-on-the-fly path: same block-row partitioning and
  /// accumulation order as spmm (so also bit-identical at any thread
  /// count), but each slot's coefficient is scale * int8 via the dispatched
  /// axpy_i8 microkernel — a quarter of the weight-value traffic. Throws
  /// when no quantized payload is attached.
  void spmm_quantized(ConstMatrixView x, MatrixView y) const;

  /// Builds the int8 payload from the fp32 slots: symmetric quantization,
  /// one scale per block-row's slot band (see sparse/quantized.h for the
  /// error bound). Idempotent; requires the fp32 payload.
  void quantize_payload();
  /// Frees the fp32 slots; decode()/spmm() then serve from int8 only.
  /// Requires a quantized payload (attach first). Irreversible up to
  /// quantization error.
  void release_fp32_payload();

  bool has_fp32() const { return !values_.empty(); }
  bool has_quantized() const { return !qvalues_.empty(); }
  const QuantizedPayload& quantized_payload() const { return qvalues_; }

  /// Block-column indices + per-slot intra-group offsets.
  std::int64_t metadata_bits() const;
  /// Bits of every stored payload: 32 per fp32 slot when the fp32 payload
  /// is present, plus 8 per slot and 32 per scale when the int8 payload is.
  std::int64_t payload_bits() const;

  /// Binary persistence (host-endian, like tensor/serialize). `read` throws
  /// on truncation, an internally inconsistent header, or a quantized
  /// payload failing its CRC32C trailer. `payload_crc = false` selects the
  /// legacy trailer-less QuantizedPayload layout embedded in PackedModel
  /// v2 files — only that compatibility path should pass it.
  void write(std::ostream& os, bool payload_crc = true) const;
  static CrispMatrix read(std::istream& is, bool payload_crc = true);

  const BlockGrid& grid() const { return grid_; }
  std::int64_t rows() const override { return grid_.rows; }
  std::int64_t cols() const override { return grid_.cols; }
  const char* format_name() const override { return "crisp"; }
  std::int64_t blocks_per_row() const { return blocks_per_row_; }
  std::int64_t n() const { return n_; }
  std::int64_t m() const { return m_; }
  std::int64_t slot_count() const {
    return static_cast<std::int64_t>(offsets_.size());
  }

  /// Zero-copy views of the encoded arena, in stored order (block-rows
  /// ascending, surviving blocks ascending within a row; slot layout
  /// block-side rows x groups x n per block). tenant::OverlayMatrix walks
  /// these to execute a per-tenant block subset directly against this
  /// matrix's payload without copying it.
  const std::vector<std::int32_t>& block_cols() const { return block_cols_; }
  const std::vector<float>& fp32_values() const { return values_; }
  const std::vector<std::uint8_t>& slot_offsets() const { return offsets_; }
  /// Slots one surviving block spans: block * (block/m) * n.
  std::int64_t slots_per_block() const {
    return grid_.block * (grid_.block / m_) * n_;
  }
  /// Slots one block-row's surviving blocks span — the quantization group.
  std::int64_t slots_per_block_row() const;

  /// Copies out the sub-matrix that keeps, per block-row, exactly the
  /// stored blocks whose bit is set in `kept` — a bitmap over the block
  /// list (grid_rows x blocks_per_row positions, row-major, LSB-first
  /// within each byte; bits address list *positions*, not block columns).
  /// Every block-row must keep exactly `kept_per_row` blocks (the format's
  /// uniformity invariant; throws otherwise). Kept blocks carry their
  /// slots over verbatim — fp32 and/or int8, the int8 scales staying one
  /// per block-row — so the result computes bit-identically to this matrix
  /// restricted to those blocks. This is the tenant delta-apply path
  /// (tenant/mask_delta.h).
  CrispMatrix restricted_to_blocks(const std::vector<std::uint8_t>& kept,
                                   std::int64_t kept_per_row) const;

  /// Replaces the per-block-row dequantization scales — the tenant
  /// scale-override path (one cheap fp32 per block-row of re-calibration,
  /// no payload rewrite). Requires a quantized payload and exactly one
  /// scale per block-row. Only the int8 execution path reads scales; an
  /// fp32 payload, when present, still serves bit-exact.
  void override_row_scales(const std::vector<float>& scales);

 private:
  BlockGrid grid_;
  std::int64_t n_ = 0;
  std::int64_t m_ = 0;
  std::int64_t blocks_per_row_ = 0;
  std::vector<std::int32_t> block_cols_;  ///< grid_rows x blocks_per_row
  /// Per surviving block: block-side rows x (block/m groups) x n slots.
  /// Empty after release_fp32_payload() — qvalues_ then carries the values.
  std::vector<float> values_;
  std::vector<std::uint8_t> offsets_;     ///< offset in [0, m) per slot
  /// Optional int8 payload, one scale per block-row (see quantize_payload).
  QuantizedPayload qvalues_;
};

}  // namespace crisp::sparse
