#include "sparse/formats/blocked_ell.h"

#include <cstring>

#include "kernels/parallel_for.h"
#include "kernels/prefetch.h"
#include "kernels/simd_dispatch.h"
#include "sparse/metadata.h"

namespace crisp::sparse {

BlockedEllMatrix BlockedEllMatrix::encode(ConstMatrixView dense,
                                          std::int64_t block) {
  CRISP_CHECK(block >= 1, "block size must be positive");
  BlockedEllMatrix m;
  m.grid_ = BlockGrid{dense.rows, dense.cols, block};
  const std::int64_t gr = m.grid_.grid_rows(), gc = m.grid_.grid_cols();

  std::vector<std::vector<std::int32_t>> survivors(
      static_cast<std::size_t>(gr));
  for (std::int64_t br = 0; br < gr; ++br) {
    for (std::int64_t bc = 0; bc < gc; ++bc) {
      bool any = false;
      for (std::int64_t r = br * block; !any && r < br * block + m.grid_.row_extent(br); ++r)
        for (std::int64_t c = bc * block; c < bc * block + m.grid_.col_extent(bc); ++c)
          if (dense(r, c) != 0.0f) {
            any = true;
            break;
          }
      if (any)
        survivors[static_cast<std::size_t>(br)].push_back(
            static_cast<std::int32_t>(bc));
    }
  }

  m.blocks_per_row_ = static_cast<std::int64_t>(survivors.front().size());
  for (const auto& s : survivors)
    CRISP_CHECK(static_cast<std::int64_t>(s.size()) == m.blocks_per_row_,
                "Blocked-ELL requires a uniform survivor count per block-row"
                " (CRISP invariant violated: " << s.size() << " vs "
                << m.blocks_per_row_ << ")");

  m.block_cols_.reserve(static_cast<std::size_t>(gr * m.blocks_per_row_));
  m.values_.assign(
      static_cast<std::size_t>(gr * m.blocks_per_row_ * block * block), 0.0f);
  std::int64_t blk = 0;
  for (std::int64_t br = 0; br < gr; ++br) {
    for (const std::int32_t bc : survivors[static_cast<std::size_t>(br)]) {
      m.block_cols_.push_back(bc);
      float* payload = m.values_.data() + blk * block * block;
      for (std::int64_t r = 0; r < m.grid_.row_extent(br); ++r)
        for (std::int64_t c = 0; c < m.grid_.col_extent(bc); ++c)
          payload[r * block + c] = dense(br * block + r, bc * block + c);
      ++blk;
    }
  }
  return m;
}

Tensor BlockedEllMatrix::decode() const {
  Tensor dense({grid_.rows, grid_.cols});
  const std::int64_t block = grid_.block;
  std::int64_t blk = 0;
  for (std::int64_t br = 0; br < grid_.grid_rows(); ++br) {
    for (std::int64_t i = 0; i < blocks_per_row_; ++i, ++blk) {
      const std::int64_t bc = block_cols_[static_cast<std::size_t>(blk)];
      const float* payload = values_.data() + blk * block * block;
      for (std::int64_t r = 0; r < grid_.row_extent(br); ++r)
        for (std::int64_t c = 0; c < grid_.col_extent(bc); ++c)
          dense[(br * block + r) * grid_.cols + bc * block + c] =
              payload[r * block + c];
    }
  }
  return dense;
}

void BlockedEllMatrix::spmm(ConstMatrixView x, MatrixView y) const {
  CRISP_CHECK(x.rows == grid_.cols, "Blocked-ELL spmm: inner dim mismatch");
  CRISP_CHECK(y.rows == grid_.rows && y.cols == x.cols,
              "Blocked-ELL spmm: output shape");
  const std::int64_t block = grid_.block, p = x.cols;
  // Block-rows own disjoint bands of output rows, so partitioning over them
  // keeps every output row single-writer and the result thread-count
  // independent.
  const std::int64_t grain =
      kernels::rows_grain(blocks_per_row_ * block * block * p);
  const auto axpy = kernels::simd::active().axpy;
  kernels::parallel_for(grid_.grid_rows(), [&](std::int64_t br0,
                                               std::int64_t br1) {
    for (std::int64_t br = br0; br < br1; ++br) {
      std::memset(y.data + br * block * p, 0,
                  static_cast<std::size_t>(grid_.row_extent(br) * p) *
                      sizeof(float));
      for (std::int64_t i = 0; i < blocks_per_row_; ++i) {
        const std::int64_t blk = br * blocks_per_row_ + i;
        const std::int64_t bc = block_cols_[static_cast<std::size_t>(blk)];
        // The indirection is block-level here: prefetch the next block's
        // activation band while this block multiplies (hint only).
        if (i + 1 < blocks_per_row_)
          kernels::prefetch_read(
              x.data +
              block_cols_[static_cast<std::size_t>(blk) + 1] * block * p);
        const float* payload = values_.data() + blk * block * block;
        for (std::int64_t r = 0; r < grid_.row_extent(br); ++r) {
          float* yrow = y.data + (br * block + r) * p;
          for (std::int64_t c = 0; c < grid_.col_extent(bc); ++c) {
            const float v = payload[r * block + c];
            if (v == 0.0f) continue;
            axpy(v, x.data + (bc * block + c) * p, yrow, p);
          }
        }
      }
    }
  }, grain);
}

std::int64_t BlockedEllMatrix::metadata_bits() const {
  return grid_.grid_rows() * blocks_per_row_ *
         bits_for_index(grid_.grid_cols());
}

std::int64_t BlockedEllMatrix::payload_bits() const {
  return static_cast<std::int64_t>(values_.size()) * 32;
}

}  // namespace crisp::sparse
