// Compressed Sparse Row format (Saad) — an unstructured-sparsity baseline
// for the metadata comparison in Fig. 4 (right) and for the kernel bench.
#pragma once

#include <cstdint>
#include <vector>

#include "kernels/spmm_kernel.h"
#include "tensor/tensor.h"

namespace crisp::sparse {

class CsrMatrix : public kernels::SpmmKernel {
 public:
  /// Encodes every non-zero of `dense`.
  static CsrMatrix encode(ConstMatrixView dense);

  Tensor decode() const;

  /// y[rows, P] = this · x[cols, P]; y is overwritten. Parallel over output
  /// rows, bit-identical at any thread count.
  void spmm(ConstMatrixView x, MatrixView y) const override;

  /// Column indices (ceil-log2 width) + 32-bit row pointers.
  std::int64_t metadata_bits() const;
  /// Stored value payload (32-bit floats).
  std::int64_t payload_bits() const;

  std::int64_t rows() const override { return rows_; }
  std::int64_t cols() const override { return cols_; }
  const char* format_name() const override { return "csr"; }
  std::int64_t nnz() const { return static_cast<std::int64_t>(values_.size()); }

 private:
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  std::vector<std::int64_t> row_ptr_;
  std::vector<std::int32_t> col_idx_;
  std::vector<float> values_;
};

}  // namespace crisp::sparse
