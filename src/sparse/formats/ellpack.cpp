#include "sparse/formats/ellpack.h"

#include <cstring>

#include "kernels/parallel_for.h"
#include "kernels/prefetch.h"
#include "kernels/simd_dispatch.h"
#include "sparse/metadata.h"

namespace crisp::sparse {

EllpackMatrix EllpackMatrix::encode(ConstMatrixView dense) {
  EllpackMatrix m;
  m.rows_ = dense.rows;
  m.cols_ = dense.cols;

  std::vector<std::vector<std::int32_t>> row_cols(
      static_cast<std::size_t>(dense.rows));
  for (std::int64_t r = 0; r < dense.rows; ++r)
    for (std::int64_t c = 0; c < dense.cols; ++c)
      if (dense(r, c) != 0.0f)
        row_cols[static_cast<std::size_t>(r)].push_back(
            static_cast<std::int32_t>(c));

  m.width_ = 0;
  for (const auto& rc : row_cols)
    m.width_ = std::max(m.width_, static_cast<std::int64_t>(rc.size()));

  m.col_idx_.assign(static_cast<std::size_t>(m.rows_ * m.width_), -1);
  m.values_.assign(static_cast<std::size_t>(m.rows_ * m.width_), 0.0f);
  for (std::int64_t r = 0; r < dense.rows; ++r) {
    const auto& rc = row_cols[static_cast<std::size_t>(r)];
    for (std::size_t i = 0; i < rc.size(); ++i) {
      m.col_idx_[static_cast<std::size_t>(r * m.width_) + i] = rc[i];
      m.values_[static_cast<std::size_t>(r * m.width_) + i] =
          dense(r, rc[i]);
      ++m.nnz_;
    }
  }
  return m;
}

Tensor EllpackMatrix::decode() const {
  Tensor dense({rows_, cols_});
  for (std::int64_t r = 0; r < rows_; ++r)
    for (std::int64_t s = 0; s < width_; ++s) {
      const std::int32_t c = col_idx_[static_cast<std::size_t>(r * width_ + s)];
      if (c >= 0)
        dense[r * cols_ + c] = values_[static_cast<std::size_t>(r * width_ + s)];
    }
  return dense;
}

void EllpackMatrix::spmm(ConstMatrixView x, MatrixView y) const {
  CRISP_CHECK(x.rows == cols_, "ELLPACK spmm: inner dimension mismatch");
  CRISP_CHECK(y.rows == rows_ && y.cols == x.cols, "ELLPACK spmm: output shape");
  const std::int64_t p = x.cols;
  const std::int64_t grain = kernels::rows_grain(width_ * p);
  const auto axpy = kernels::simd::active().axpy;
  kernels::parallel_for(rows_, [&](std::int64_t r0, std::int64_t r1) {
    std::memset(y.data + r0 * p, 0,
                static_cast<std::size_t>((r1 - r0) * p) * sizeof(float));
    for (std::int64_t r = r0; r < r1; ++r) {
      float* yrow = y.data + r * p;
      for (std::int64_t s = 0; s < width_; ++s) {
        const std::int32_t c =
            col_idx_[static_cast<std::size_t>(r * width_ + s)];
        if (c < 0) continue;  // padding slot
        // Next slot's activation row (hint only — results are unchanged;
        // a padding slot prefetches a harmless out-of-range address, which
        // costs less than branching on it).
        if (s + 1 < width_)
          kernels::prefetch_read(
              x.data +
              static_cast<std::int64_t>(
                  col_idx_[static_cast<std::size_t>(r * width_ + s) + 1]) *
                  p);
        axpy(values_[static_cast<std::size_t>(r * width_ + s)],
             x.data + static_cast<std::int64_t>(c) * p, yrow, p);
      }
    }
  }, grain);
}

std::int64_t EllpackMatrix::metadata_bits() const {
  // Every slot stores a column index, padding included — ELLPACK's overhead.
  return rows_ * width_ * bits_for_index(cols_);
}

std::int64_t EllpackMatrix::payload_bits() const { return rows_ * width_ * 32; }

double EllpackMatrix::padding_fraction() const {
  const std::int64_t slots = rows_ * width_;
  if (slots == 0) return 0.0;
  return static_cast<double>(slots - nnz_) / static_cast<double>(slots);
}

}  // namespace crisp::sparse
