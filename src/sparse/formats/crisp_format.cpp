#include "sparse/formats/crisp_format.h"

#include <algorithm>
#include <cstring>
#include <istream>
#include <ostream>

#include "kernels/parallel_for.h"
#include "kernels/prefetch.h"
#include "kernels/simd_dispatch.h"
#include "sparse/metadata.h"
#include "tensor/pod_stream.h"

namespace crisp::sparse {

namespace {

constexpr const char* kCtx = "CrispMatrix::read";

}  // namespace

CrispMatrix CrispMatrix::encode(ConstMatrixView dense, std::int64_t block,
                                std::int64_t n, std::int64_t m) {
  CRISP_CHECK(block >= 1 && m >= 1 && n >= 1 && n <= m, "bad block/N:M");
  CRISP_CHECK(block % m == 0, "block side " << block
                                            << " must be a multiple of M = " << m);
  CrispMatrix out;
  out.grid_ = BlockGrid{dense.rows, dense.cols, block};
  out.n_ = n;
  out.m_ = m;
  const std::int64_t gr = out.grid_.grid_rows(), gc = out.grid_.grid_cols();

  std::vector<std::vector<std::int32_t>> survivors(static_cast<std::size_t>(gr));
  for (std::int64_t br = 0; br < gr; ++br)
    for (std::int64_t bc = 0; bc < gc; ++bc) {
      bool any = false;
      for (std::int64_t r = br * block;
           !any && r < br * block + out.grid_.row_extent(br); ++r)
        for (std::int64_t c = bc * block;
             c < bc * block + out.grid_.col_extent(bc); ++c)
          if (dense(r, c) != 0.0f) {
            any = true;
            break;
          }
      if (any)
        survivors[static_cast<std::size_t>(br)].push_back(
            static_cast<std::int32_t>(bc));
    }

  out.blocks_per_row_ = static_cast<std::int64_t>(survivors.front().size());
  for (const auto& s : survivors)
    CRISP_CHECK(static_cast<std::int64_t>(s.size()) == out.blocks_per_row_,
                "CRISP format requires uniform surviving blocks per row, got "
                    << s.size() << " vs " << out.blocks_per_row_);

  const std::int64_t groups = block / m;
  const std::int64_t slots_per_block = block * groups * n;
  const std::int64_t total_blocks = gr * out.blocks_per_row_;
  out.values_.assign(static_cast<std::size_t>(total_blocks * slots_per_block),
                     0.0f);
  out.offsets_.assign(static_cast<std::size_t>(total_blocks * slots_per_block),
                      0);
  out.block_cols_.reserve(static_cast<std::size_t>(total_blocks));

  std::int64_t blk = 0;
  for (std::int64_t br = 0; br < gr; ++br) {
    for (const std::int32_t bc : survivors[static_cast<std::size_t>(br)]) {
      out.block_cols_.push_back(bc);
      for (std::int64_t r = 0; r < out.grid_.row_extent(br); ++r) {
        for (std::int64_t g = 0; g < groups; ++g) {
          const std::int64_t base =
              ((blk * block + r) * groups + g) * n;  // first slot of the group
          const std::int64_t col0 = bc * block + g * m;
          std::int64_t slot = 0;
          for (std::int64_t o = 0; o < m && col0 + o < dense.cols; ++o) {
            const float v = dense(br * block + r, col0 + o);
            if (v == 0.0f) continue;
            CRISP_CHECK(slot < n, "group at row " << br * block + r << ", col "
                                                  << col0 << " violates " << n
                                                  << ":" << m << " sparsity");
            out.values_[static_cast<std::size_t>(base + slot)] = v;
            out.offsets_[static_cast<std::size_t>(base + slot)] =
                static_cast<std::uint8_t>(o);
            ++slot;
          }
        }
      }
      ++blk;
    }
  }
  return out;
}

Tensor CrispMatrix::decode() const {
  Tensor dense({grid_.rows, grid_.cols});
  // Serve the fp32 slots when present, else dequantize the int8 payload
  // up front (exact: one multiply per slot, no accumulation).
  std::vector<float> dequant;
  const std::vector<float>* vals = &values_;
  if (!has_fp32() && has_quantized()) {
    dequant = qvalues_.dequantized();
    vals = &dequant;
  }
  const std::int64_t block = grid_.block, groups = block / m_;
  std::int64_t blk = 0;
  for (std::int64_t br = 0; br < grid_.grid_rows(); ++br) {
    for (std::int64_t i = 0; i < blocks_per_row_; ++i, ++blk) {
      const std::int64_t bc = block_cols_[static_cast<std::size_t>(blk)];
      for (std::int64_t r = 0; r < grid_.row_extent(br); ++r) {
        for (std::int64_t g = 0; g < groups; ++g) {
          const std::int64_t base = ((blk * block + r) * groups + g) * n_;
          const std::int64_t col0 = bc * block + g * m_;
          for (std::int64_t s = 0; s < n_; ++s) {
            const float v = (*vals)[static_cast<std::size_t>(base + s)];
            if (v == 0.0f) continue;  // padded slot
            const std::int64_t col =
                col0 + offsets_[static_cast<std::size_t>(base + s)];
            dense[(br * block + r) * grid_.cols + col] = v;
          }
        }
      }
    }
  }
  return dense;
}

std::int64_t CrispMatrix::slots_per_block_row() const {
  const std::int64_t groups = grid_.block / m_;
  return blocks_per_row_ * grid_.block * groups * n_;
}

void CrispMatrix::quantize_payload() {
  CRISP_CHECK(has_fp32() || slot_count() == 0,
              "CrispMatrix::quantize_payload: fp32 payload already released");
  qvalues_ = QuantizedPayload::quantize(
      values_.data(), static_cast<std::int64_t>(values_.size()),
      std::max<std::int64_t>(slots_per_block_row(), 1));
}

void CrispMatrix::release_fp32_payload() {
  CRISP_CHECK(has_quantized() || slot_count() == 0,
              "CrispMatrix::release_fp32_payload: no quantized payload to "
              "fall back to (call quantize_payload first)");
  values_.clear();
  values_.shrink_to_fit();
}

void CrispMatrix::spmm(ConstMatrixView x, MatrixView y) const {
  if (!has_fp32() && has_quantized()) {
    spmm_quantized(x, y);
    return;
  }
  CRISP_CHECK(x.rows == grid_.cols, "CRISP spmm: inner dimension mismatch");
  CRISP_CHECK(y.rows == grid_.rows && y.cols == x.cols,
              "CRISP spmm: output shape");
  const std::int64_t block = grid_.block, groups = block / m_, p = x.cols;
  // Block-rows own disjoint bands of output rows, so partitioning over them
  // keeps every output row single-writer and the result thread-count
  // independent. This is also the threaded path packed deployment runs.
  const std::int64_t grain =
      kernels::rows_grain(blocks_per_row_ * block * groups * n_ * p);
  const auto axpy = kernels::simd::active().axpy;
  kernels::parallel_for(grid_.grid_rows(), [&](std::int64_t br0,
                                               std::int64_t br1) {
    for (std::int64_t br = br0; br < br1; ++br) {
      std::memset(y.data + br * block * p, 0,
                  static_cast<std::size_t>(grid_.row_extent(br) * p) *
                      sizeof(float));
      for (std::int64_t i = 0; i < blocks_per_row_; ++i) {
        const std::int64_t blk = br * blocks_per_row_ + i;
        const std::int64_t bc = block_cols_[static_cast<std::size_t>(blk)];
        // Block-level indirection: prefetch the next block's activation
        // band while this block multiplies (hint only — results are
        // unchanged).
        if (i + 1 < blocks_per_row_)
          kernels::prefetch_read(
              x.data +
              block_cols_[static_cast<std::size_t>(blk) + 1] * block * p);
        for (std::int64_t r = 0; r < grid_.row_extent(br); ++r) {
          float* yrow = y.data + (br * block + r) * p;
          for (std::int64_t g = 0; g < groups; ++g) {
            const std::int64_t base = ((blk * block + r) * groups + g) * n_;
            const std::int64_t col0 = bc * block + g * m_;
            for (std::int64_t s = 0; s < n_; ++s) {
              // Next slot's MUX target, one gather ahead of the axpy —
              // before the zero-skip, so a zero slot still hides the
              // following slot's gather.
              if (s + 1 < n_)
                kernels::prefetch_read(
                    x.data +
                    (col0 +
                     offsets_[static_cast<std::size_t>(base + s) + 1]) *
                        p);
              const float v = values_[static_cast<std::size_t>(base + s)];
              if (v == 0.0f) continue;
              // The MUX step of Fig. 6: the offset selects the activation
              // row.
              axpy(v,
                   x.data +
                       (col0 + offsets_[static_cast<std::size_t>(base + s)]) *
                           p,
                   yrow, p);
            }
          }
        }
      }
    }
  }, grain);
}

void CrispMatrix::spmm_quantized(ConstMatrixView x, MatrixView y) const {
  CRISP_CHECK(has_quantized(),
              "CRISP spmm_quantized: no int8 payload attached");
  CRISP_CHECK(x.rows == grid_.cols,
              "CRISP spmm_quantized: inner dimension mismatch");
  CRISP_CHECK(y.rows == grid_.rows && y.cols == x.cols,
              "CRISP spmm_quantized: output shape");
  const std::int64_t block = grid_.block, groups = block / m_, p = x.cols;
  // Same block-row partitioning (and so the same single-writer /
  // thread-count-independence argument) as the fp32 path; only the slot
  // coefficient changes: scale_br * int8, fused into the dispatched
  // axpy_i8 so the inner loop touches one byte per weight slot.
  const std::int64_t grain =
      kernels::rows_grain(blocks_per_row_ * block * groups * n_ * p);
  const auto axpy_i8 = kernels::simd::active().axpy_i8;
  const std::int8_t* qv = qvalues_.values.data();
  kernels::parallel_for(grid_.grid_rows(), [&](std::int64_t br0,
                                               std::int64_t br1) {
    for (std::int64_t br = br0; br < br1; ++br) {
      std::memset(y.data + br * block * p, 0,
                  static_cast<std::size_t>(grid_.row_extent(br) * p) *
                      sizeof(float));
      // One scale per block-row's slot band.
      const float scale = qvalues_.scale_for(br * slots_per_block_row());
      for (std::int64_t i = 0; i < blocks_per_row_; ++i) {
        const std::int64_t blk = br * blocks_per_row_ + i;
        const std::int64_t bc = block_cols_[static_cast<std::size_t>(blk)];
        // Same block-band prefetch as the fp32 path (hint only).
        if (i + 1 < blocks_per_row_)
          kernels::prefetch_read(
              x.data +
              block_cols_[static_cast<std::size_t>(blk) + 1] * block * p);
        for (std::int64_t r = 0; r < grid_.row_extent(br); ++r) {
          float* yrow = y.data + (br * block + r) * p;
          for (std::int64_t g = 0; g < groups; ++g) {
            const std::int64_t base = ((blk * block + r) * groups + g) * n_;
            const std::int64_t col0 = bc * block + g * m_;
            for (std::int64_t s = 0; s < n_; ++s) {
              // Prefetch before the zero-skip (zeros are common in the
              // quantized payload) so every slot hides its successor.
              if (s + 1 < n_)
                kernels::prefetch_read(
                    x.data +
                    (col0 +
                     offsets_[static_cast<std::size_t>(base + s) + 1]) *
                        p);
              const std::int8_t q = qv[static_cast<std::size_t>(base + s)];
              if (q == 0) continue;  // padded slot or value rounded to zero
              axpy_i8(q, scale,
                      x.data +
                          (col0 +
                           offsets_[static_cast<std::size_t>(base + s)]) *
                              p,
                      yrow, p);
            }
          }
        }
      }
    }
  }, grain);
}

CrispMatrix CrispMatrix::restricted_to_blocks(
    const std::vector<std::uint8_t>& kept, std::int64_t kept_per_row) const {
  const std::int64_t gr = grid_.grid_rows();
  const std::int64_t total_blocks = gr * blocks_per_row_;
  CRISP_CHECK(static_cast<std::int64_t>(kept.size()) == (total_blocks + 7) / 8,
              "restricted_to_blocks: bitmap holds " << kept.size() * 8
                  << " bits, matrix stores " << total_blocks << " blocks");
  CRISP_CHECK(kept_per_row >= 0 && kept_per_row <= blocks_per_row_,
              "restricted_to_blocks: kept_per_row " << kept_per_row
                  << " outside [0, " << blocks_per_row_ << "]");

  CrispMatrix out;
  out.grid_ = grid_;
  out.n_ = n_;
  out.m_ = m_;
  out.blocks_per_row_ = kept_per_row;
  const std::int64_t spb = slots_per_block();
  const std::int64_t out_slots = gr * kept_per_row * spb;
  const bool fp32 = has_fp32();
  const bool quant = has_quantized() && kept_per_row > 0;
  out.block_cols_.reserve(static_cast<std::size_t>(gr * kept_per_row));
  if (fp32) out.values_.reserve(static_cast<std::size_t>(out_slots));
  out.offsets_.reserve(static_cast<std::size_t>(out_slots));
  if (quant) {
    out.qvalues_.group_size = kept_per_row * spb;
    out.qvalues_.values.reserve(static_cast<std::size_t>(out_slots));
    out.qvalues_.scales.reserve(static_cast<std::size_t>(gr));
  }

  for (std::int64_t br = 0; br < gr; ++br) {
    std::int64_t row_kept = 0;
    for (std::int64_t i = 0; i < blocks_per_row_; ++i) {
      const std::int64_t blk = br * blocks_per_row_ + i;
      if (!(kept[static_cast<std::size_t>(blk >> 3)] &
            (1u << (blk & 7))))
        continue;
      ++row_kept;
      out.block_cols_.push_back(block_cols_[static_cast<std::size_t>(blk)]);
      const auto s0 = static_cast<std::size_t>(blk * spb);
      const auto s1 = s0 + static_cast<std::size_t>(spb);
      if (fp32)
        out.values_.insert(out.values_.end(), values_.begin() + s0,
                           values_.begin() + s1);
      out.offsets_.insert(out.offsets_.end(), offsets_.begin() + s0,
                          offsets_.begin() + s1);
      if (quant)
        out.qvalues_.values.insert(out.qvalues_.values.end(),
                                   qvalues_.values.begin() + s0,
                                   qvalues_.values.begin() + s1);
    }
    CRISP_CHECK(row_kept == kept_per_row,
                "restricted_to_blocks: block-row " << br << " keeps "
                    << row_kept << " blocks, expected " << kept_per_row
                    << " (CRISP requires uniform surviving blocks per row)");
    // The kept slots are a subset of the base band, so the base's
    // per-block-row scale still bounds them — reusing it keeps every kept
    // int8 slot dequantizing to the exact value the base computes.
    if (quant)
      out.qvalues_.scales.push_back(
          qvalues_.scale_for(br * slots_per_block_row()));
  }
  return out;
}

void CrispMatrix::override_row_scales(const std::vector<float>& scales) {
  CRISP_CHECK(has_quantized(),
              "override_row_scales: no quantized payload attached");
  CRISP_CHECK(static_cast<std::int64_t>(scales.size()) == grid_.grid_rows(),
              "override_row_scales: need one scale per block-row ("
                  << grid_.grid_rows() << "), got " << scales.size());
  CRISP_CHECK(static_cast<std::int64_t>(qvalues_.scales.size()) ==
                  grid_.grid_rows(),
              "override_row_scales: payload carries "
                  << qvalues_.scales.size() << " scale groups, expected one "
                  "per block-row");
  qvalues_.scales = scales;
}

std::int64_t CrispMatrix::metadata_bits() const {
  const std::int64_t block_bits =
      grid_.grid_rows() * blocks_per_row_ * bits_for_index(grid_.grid_cols());
  const std::int64_t offset_bits = slot_count() * bits_for_index(m_);
  return block_bits + offset_bits;
}

std::int64_t CrispMatrix::payload_bits() const {
  std::int64_t bits = 0;
  if (has_fp32()) bits += static_cast<std::int64_t>(values_.size()) * 32;
  if (has_quantized()) bits += qvalues_.payload_bits();
  return bits;
}

void CrispMatrix::write(std::ostream& os, bool payload_crc) const {
  io::write_pod(os, grid_.rows);
  io::write_pod(os, grid_.cols);
  io::write_pod(os, grid_.block);
  io::write_pod(os, n_);
  io::write_pod(os, m_);
  io::write_pod(os, blocks_per_row_);
  io::write_array(os, block_cols_);
  io::write_array(os, values_);  // size 0 after release_fp32_payload
  io::write_array(os, offsets_);
  io::write_pod(os, static_cast<std::uint8_t>(has_quantized() ? 1 : 0));
  if (has_quantized()) qvalues_.write(os, payload_crc);
}

CrispMatrix CrispMatrix::read(std::istream& is, bool payload_crc) {
  CrispMatrix out;
  out.grid_.rows = io::read_pod<std::int64_t>(is, kCtx);
  out.grid_.cols = io::read_pod<std::int64_t>(is, kCtx);
  out.grid_.block = io::read_pod<std::int64_t>(is, kCtx);
  out.n_ = io::read_pod<std::int64_t>(is, kCtx);
  out.m_ = io::read_pod<std::int64_t>(is, kCtx);
  out.blocks_per_row_ = io::read_pod<std::int64_t>(is, kCtx);
  CRISP_CHECK(out.grid_.rows > 0 && out.grid_.cols > 0 && out.grid_.block > 0 &&
                  out.n_ >= 1 && out.n_ <= out.m_ &&
                  out.grid_.block % out.m_ == 0 && out.blocks_per_row_ >= 0 &&
                  out.blocks_per_row_ <= out.grid_.grid_cols(),
              "CrispMatrix::read: inconsistent header");
  out.block_cols_ = io::read_array<std::int32_t>(is, kCtx);
  out.values_ = io::read_array<float>(is, kCtx);
  out.offsets_ = io::read_array<std::uint8_t>(is, kCtx);
  if (io::read_pod<std::uint8_t>(is, kCtx) != 0)
    out.qvalues_ = QuantizedPayload::read(is, payload_crc);

  const std::int64_t total_blocks = out.grid_.grid_rows() * out.blocks_per_row_;
  const std::int64_t slots =
      total_blocks * out.grid_.block * (out.grid_.block / out.m_) * out.n_;
  CRISP_CHECK(static_cast<std::int64_t>(out.block_cols_.size()) == total_blocks,
              "CrispMatrix::read: block index count mismatch");
  CRISP_CHECK(static_cast<std::int64_t>(out.offsets_.size()) == slots,
              "CrispMatrix::read: slot count mismatch");
  CRISP_CHECK(static_cast<std::int64_t>(out.values_.size()) == slots ||
                  out.values_.empty(),
              "CrispMatrix::read: fp32 slot count mismatch");
  if (out.has_quantized()) {
    CRISP_CHECK(out.qvalues_.slot_count() == slots,
                "CrispMatrix::read: quantized slot count mismatch");
    // spmm_quantized assumes one scale per block-row's slot band; a
    // foreign group size would silently select the wrong scales.
    CRISP_CHECK(out.qvalues_.group_size == out.slots_per_block_row(),
                "CrispMatrix::read: quantized group size "
                    << out.qvalues_.group_size << " != block-row band "
                    << out.slots_per_block_row());
  }
  CRISP_CHECK(slots == 0 || !out.values_.empty() || out.has_quantized(),
              "CrispMatrix::read: no value payload present");
  for (const std::int32_t bc : out.block_cols_)
    CRISP_CHECK(bc >= 0 && bc < out.grid_.grid_cols(),
                "CrispMatrix::read: block column out of range");
  for (const std::uint8_t o : out.offsets_)
    CRISP_CHECK(o < out.m_, "CrispMatrix::read: offset out of range");
  return out;
}

}  // namespace crisp::sparse
