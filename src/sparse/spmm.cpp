#include "sparse/spmm.h"

#include "tensor/matmul.h"

namespace crisp::sparse {

Tensor dense_matmul(const Tensor& w, const Tensor& x) { return matmul(w, x); }

Tensor spmm(const kernels::SpmmKernel& w, const Tensor& x) {
  CRISP_CHECK(x.dim() == 2, "spmm expects a 2-D right-hand side");
  CRISP_CHECK(x.size(0) == w.cols(),
              w.format_name() << " spmm: inner dimension " << x.size(0)
                              << " != " << w.cols());
  Tensor y({w.rows(), x.size(1)});
  w.spmm(as_matrix(x, x.size(0), x.size(1)),
         as_matrix(y, y.size(0), y.size(1)));
  return y;
}

}  // namespace crisp::sparse
