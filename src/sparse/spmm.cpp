#include "sparse/spmm.h"

#include "tensor/matmul.h"

namespace crisp::sparse {

Tensor dense_matmul(const Tensor& w, const Tensor& x) { return matmul(w, x); }

}  // namespace crisp::sparse
