// Coarse-grained block sparsity (paper §III-A / §III-C).
//
// The reshaped S x K weight matrix is partitioned into a grid of B x B
// blocks (trailing blocks may be smaller when S or K is not a multiple of
// B). CRISP prunes an *equal number of blocks from every block-row*, which
// is what gives the accelerator its uniform workload balance; this module
// provides the per-layer pieces (grids, scores, per-row rank pruning) that
// core/block_pruning composes across layers.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace crisp::sparse {

struct BlockGrid {
  std::int64_t rows = 0;   ///< matrix rows S
  std::int64_t cols = 0;   ///< matrix cols K
  std::int64_t block = 0;  ///< block side B

  std::int64_t grid_rows() const { return (rows + block - 1) / block; }
  std::int64_t grid_cols() const { return (cols + block - 1) / block; }
  std::int64_t row_extent(std::int64_t br) const {
    return std::min(block, rows - br * block);
  }
  std::int64_t col_extent(std::int64_t bc) const {
    return std::min(block, cols - bc * block);
  }
};

/// Per-block score: sum of |scores| over the block's elements (Alg. 1 l.5).
/// Returns a (grid_rows, grid_cols) tensor.
Tensor block_scores(ConstMatrixView scores, const BlockGrid& grid);

/// Per-row rank pruning: for block-row r, zero out the `prune_per_row[r]`
/// blocks with the lowest scores (ties toward lower column). Returns the
/// block-level mask (grid_rows, grid_cols) of survivors.
Tensor uniform_row_block_mask(const Tensor& scores, const BlockGrid& grid,
                              const std::vector<std::int64_t>& prune_per_row);

/// Expands a block-level mask to the full element-level (rows, cols) mask.
Tensor expand_block_mask(const Tensor& block_mask, const BlockGrid& grid);

/// Element mask -> per-block-row count of fully-zero blocks. A block counts
/// as pruned only when all its elements are zero.
std::vector<std::int64_t> zero_blocks_per_row(ConstMatrixView mask,
                                              const BlockGrid& grid);

/// True when every block-row has the same number of fully-zero blocks.
bool uniform_blocks_per_row(ConstMatrixView mask, const BlockGrid& grid);

}  // namespace crisp::sparse
