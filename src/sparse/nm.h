// Fine-grained N:M structured sparsity (paper §III-A, Fig. 4 left).
//
// Within every M consecutive elements along a matrix row (the reduction
// dimension — the direction NVIDIA Sparse Tensor Cores skip), at most N
// survive. Selection keeps the N highest-scoring elements per group.
#pragma once

#include <cstdint>

#include "tensor/tensor.h"

namespace crisp::sparse {

/// Builds the N:M mask that keeps, in every group of `m` consecutive columns
/// of each row, the `n` entries with the highest `scores`. A trailing
/// partial group of size g keeps min(n, g) entries. Ties break toward the
/// lower column index (deterministic).
Tensor nm_mask(ConstMatrixView scores, std::int64_t n, std::int64_t m);

/// True when every length-m group of every row has at most n non-zeros.
bool satisfies_nm(ConstMatrixView mask, std::int64_t n, std::int64_t m);

/// Sparsity induced by exact N:M on a matrix with `cols` columns: accounts
/// for the trailing partial group.
double nm_target_sparsity(std::int64_t cols, std::int64_t n, std::int64_t m);

}  // namespace crisp::sparse
