#include "sparse/nm.h"

#include <algorithm>
#include <array>
#include <vector>

#include "kernels/parallel_for.h"

namespace crisp::sparse {

Tensor nm_mask(ConstMatrixView scores, std::int64_t n, std::int64_t m) {
  CRISP_CHECK(m >= 1 && n >= 1 && n <= m,
              "invalid N:M = " << n << ":" << m);
  Tensor mask({scores.rows, scores.cols});
  // Every row selects its groups independently and writes only its own mask
  // row, so the sweep threads with disjoint writes (scratch per chunk).
  kernels::parallel_for(
      scores.rows,
      [&](std::int64_t r0, std::int64_t r1) {
        std::vector<std::int64_t> order;
        for (std::int64_t r = r0; r < r1; ++r) {
          for (std::int64_t g0 = 0; g0 < scores.cols; g0 += m) {
            const std::int64_t g = std::min(m, scores.cols - g0);
            const std::int64_t keep = std::min(n, g);
            order.resize(static_cast<std::size_t>(g));
            for (std::int64_t i = 0; i < g; ++i)
              order[static_cast<std::size_t>(i)] = i;
            // stable sort by descending score → ties keep the lower index.
            std::stable_sort(order.begin(), order.end(),
                             [&](std::int64_t a, std::int64_t b) {
                               return scores(r, g0 + a) > scores(r, g0 + b);
                             });
            float* mrow = mask.data() + r * scores.cols + g0;
            for (std::int64_t i = 0; i < keep; ++i)
              mrow[order[static_cast<std::size_t>(i)]] = 1.0f;
          }
        }
      },
      kernels::rows_grain(8 * scores.cols));
  return mask;
}

bool satisfies_nm(ConstMatrixView mask, std::int64_t n, std::int64_t m) {
  for (std::int64_t r = 0; r < mask.rows; ++r) {
    for (std::int64_t g0 = 0; g0 < mask.cols; g0 += m) {
      const std::int64_t g = std::min(m, mask.cols - g0);
      std::int64_t nnz = 0;
      for (std::int64_t i = 0; i < g; ++i) nnz += (mask(r, g0 + i) != 0.0f);
      if (nnz > n) return false;
    }
  }
  return true;
}

double nm_target_sparsity(std::int64_t cols, std::int64_t n, std::int64_t m) {
  CRISP_CHECK(cols >= 1, "empty row");
  std::int64_t kept = 0;
  for (std::int64_t g0 = 0; g0 < cols; g0 += m)
    kept += std::min(n, std::min(m, cols - g0));
  return 1.0 - static_cast<double>(kept) / static_cast<double>(cols);
}

}  // namespace crisp::sparse
