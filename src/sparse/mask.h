// Binary mask utilities over the paper's reshaped S x K weight matrices.
//
// Masks are ordinary float tensors holding exactly 0.0 or 1.0 so they
// compose with weights by Hadamard product; helpers here create, combine,
// and validate them.
#pragma once

#include <cstdint>

#include "tensor/tensor.h"

namespace crisp::sparse {

/// Elementwise AND of two masks (both 0/1), shapes must match.
Tensor mask_and(const Tensor& a, const Tensor& b);

/// Fraction of zeros in a mask view.
double mask_sparsity(ConstMatrixView mask);

/// Number of ones.
std::int64_t mask_nnz(ConstMatrixView mask);

/// True when every element is exactly 0.0f or 1.0f.
bool is_binary(ConstMatrixView mask);

/// Writes `value ⊙ mask` in place over `value`.
void apply_mask(MatrixView value, ConstMatrixView mask);

}  // namespace crisp::sparse
