// Quantized int8 value payload for sparse storage formats.
//
// The paper's metadata story (docs/formats.md) keeps the *index* overhead
// of hybrid sparsity low; this module pairs it with a *bandwidth* story for
// the values themselves: symmetric int8 quantization with one fp32 scale
// per group of consecutive slots. For the CRISP format a group is one
// block-row's slot band, so the dequantizing spmm reads a quarter of the
// weight bytes and one scale per band of output rows.
//
// Scheme (symmetric, zero-point fixed at 0):
//   scale_g = max |v| over group g / 127      (0 when the group is all-zero)
//   q_i     = round_half_away(v_i / scale_g)  in [-127, 127]
//   v'_i    = scale_g * q_i
// Bounds by construction: |v'_i - v_i| <= scale_g / 2 for every element,
// exact zeros stay exactly zero (q = 0), and the padded slots every blocked
// format carries keep their zero-skip in the kernels. Quantization is a
// pure element-wise function of (value, scale), so results are
// deterministic and independent of the thread count.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

namespace crisp::sparse {

struct QuantizedPayload {
  /// One int8 per value slot, same ordering as the fp32 payload it mirrors.
  std::vector<std::int8_t> values;
  /// One fp32 scale per group of `group_size` consecutive slots
  /// (ceil(values.size() / group_size) entries; the last group may be
  /// ragged). scales[i] == 0 means group i was all-zero.
  std::vector<float> scales;
  std::int64_t group_size = 0;

  /// Quantizes `count` floats with one symmetric scale per `group_size`
  /// consecutive elements. count == 0 yields an empty payload; otherwise
  /// group_size must be >= 1.
  static QuantizedPayload quantize(const float* v, std::int64_t count,
                                   std::int64_t group_size);

  /// Writes scale * q for every slot into out[0..values.size()).
  void dequantize(float* out) const;
  std::vector<float> dequantized() const;

  float scale_for(std::int64_t slot) const {
    return scales[static_cast<std::size_t>(slot / group_size)];
  }

  bool empty() const { return values.empty(); }
  std::int64_t slot_count() const {
    return static_cast<std::int64_t>(values.size());
  }
  /// Stored bits: 8 per value slot + 32 per scale.
  std::int64_t payload_bits() const {
    return slot_count() * 8 + static_cast<std::int64_t>(scales.size()) * 32;
  }

  /// Binary persistence (host-endian, like the formats that embed it).
  /// `write` appends a CRC32C trailer over the payload bytes; `read`
  /// throws on truncation, an internally inconsistent header, or a
  /// checksum mismatch. `crc_trailer = false` reads/writes the legacy
  /// trailer-less layout — only the PackedModel v2 compatibility path
  /// (and the test that pins it) should ever pass it.
  void write(std::ostream& os, bool crc_trailer = true) const;
  static QuantizedPayload read(std::istream& is, bool crc_trailer = true);
};

}  // namespace crisp::sparse
