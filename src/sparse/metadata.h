// Metadata-overhead accounting (paper §III-A and Fig. 4 right).
//
// Two flavours are provided: the closed-form expressions exactly as printed
// in the paper, and the measured bit counts reported by the concrete
// encoders in sparse/formats (which use ceil-log2 index widths). The fig4
// bench prints both so the comparison is transparent.
#pragma once

#include <cstdint>

namespace crisp::sparse {

/// ceil(log2(n)) with a floor of 1 bit (an index into n >= 1 positions).
std::int64_t bits_for_index(std::int64_t n);

/// Paper formula: block-sparsity metadata = (S · K' · floor(log2(K'/B))) / B².
/// S = rows, k_prime = surviving columns, b = block side.
std::int64_t paper_block_metadata_bits(std::int64_t s, std::int64_t k_prime,
                                       std::int64_t b);

/// Paper formula: N:M metadata = S · K' · (N/M) · floor(log2(M)).
std::int64_t paper_nm_metadata_bits(std::int64_t s, std::int64_t k_prime,
                                    std::int64_t n, std::int64_t m);

/// Paper formula: overall average sparsity = 1 − (K'/K)·(N/M).
double paper_average_sparsity(std::int64_t k, std::int64_t k_prime,
                              std::int64_t n, std::int64_t m);

/// Surviving K-columns for a global sparsity target κ at fixed N:M, rounded
/// down to a whole number of B-wide block columns: the largest K' with
/// 1 − (K'/K)(N/M) ≥ κ.
std::int64_t k_prime_for_sparsity(std::int64_t k, std::int64_t b,
                                  std::int64_t n, std::int64_t m, double kappa);

}  // namespace crisp::sparse
