// Sequential container — also the top-level "model" type of the library.
//
// Residual blocks are themselves Layers (see nn/models/*.h), so every
// network in this reproduction is a Sequential of layers and blocks. The
// container provides the whole-model services the pruning framework needs:
// the flat prunable-parameter list, state_dict save/restore (for the model
// zoo), and MAC accounting.
#pragma once

#include <map>

#include "nn/layer.h"
#include "tensor/serialize.h"

namespace crisp::nn {

class Sequential final : public Layer {
 public:
  explicit Sequential(std::string name = "model") : Layer(std::move(name)) {}

  Sequential& add(LayerPtr layer);

  template <typename L, typename... Args>
  L& emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    add(std::move(layer));
    return ref;
  }

  Tensor forward(const Tensor& x, bool train) override;
  Tensor forward_eval(const Tensor& x) const override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override;
  std::vector<NamedBuffer> buffers() override;
  std::vector<Layer*> children() override;

  std::int64_t layer_count() const {
    return static_cast<std::int64_t>(layers_.size());
  }
  Layer& layer(std::int64_t i) { return *layers_[static_cast<std::size_t>(i)]; }
  const std::vector<LayerPtr>& layers() const { return layers_; }

  /// All parameters with prunable=true — the matrices CRISP operates on.
  std::vector<Parameter*> prunable_parameters();

  /// Parameters + buffers, keyed by their unique names.
  TensorMap state_dict();
  /// Restores a state_dict; throws if a name is missing or a shape differs.
  void load_state_dict(const TensorMap& state);

  /// Sum of last_dense/sparse_macs over all contained layers (recursive
  /// via the virtual accessors, so blocks report their children too).
  std::int64_t last_dense_macs() const override;
  std::int64_t last_sparse_macs() const override;

 private:
  std::vector<LayerPtr> layers_;
};

/// Convenience: forward in eval mode without gradients.
Tensor predict(Sequential& model, const Tensor& x);

/// Removes every parameter mask (used when re-running pruning experiments
/// from a restored dense state_dict, which does not carry masks).
void clear_masks(Sequential& model);

}  // namespace crisp::nn
