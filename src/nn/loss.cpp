#include "nn/loss.h"

#include <cmath>

#include "kernels/parallel_for.h"
#include "tensor/check.h"

namespace crisp::nn {

Tensor softmax(const Tensor& logits) {
  CRISP_CHECK(logits.dim() == 2, "softmax expects (B, C)");
  const std::int64_t batch = logits.size(0), classes = logits.size(1);
  Tensor probs(logits.shape());
  // Rows normalise independently — disjoint writes, thread-invariant.
  kernels::parallel_for(
      batch,
      [&](std::int64_t b0, std::int64_t b1) {
        for (std::int64_t b = b0; b < b1; ++b) {
          const float* row = logits.data() + b * classes;
          float* out = probs.data() + b * classes;
          float mx = row[0];
          for (std::int64_t c = 1; c < classes; ++c) mx = std::max(mx, row[c]);
          double denom = 0.0;
          for (std::int64_t c = 0; c < classes; ++c) {
            out[c] = std::exp(row[c] - mx);
            denom += out[c];
          }
          const float inv = static_cast<float>(1.0 / denom);
          for (std::int64_t c = 0; c < classes; ++c) out[c] *= inv;
        }
      },
      kernels::rows_grain(3 * classes));
  return probs;
}

LossResult cross_entropy(const Tensor& logits,
                         const std::vector<std::int64_t>& labels) {
  CRISP_CHECK(logits.dim() == 2, "cross_entropy expects (B, C) logits");
  const std::int64_t batch = logits.size(0), classes = logits.size(1);
  CRISP_CHECK(static_cast<std::int64_t>(labels.size()) == batch,
              "labels size " << labels.size() << " vs batch " << batch);

  LossResult res;
  res.grad = softmax(logits);
  // The scalar loss reduces over the batch in a fixed serial order (O(B)
  // log reads — negligible next to the softmax above), *before* the grad
  // rows are rewritten below.
  double loss = 0.0;
  for (std::int64_t b = 0; b < batch; ++b) {
    const std::int64_t y = labels[static_cast<std::size_t>(b)];
    CRISP_CHECK(y >= 0 && y < classes, "label " << y << " out of range");
    loss -= std::log(std::max(res.grad[b * classes + y], 1e-12f));
  }
  // d(mean CE)/d(logits) = (softmax - onehot) / B — row-disjoint writes.
  const float inv_batch = 1.0f / static_cast<float>(batch);
  kernels::parallel_for(
      batch,
      [&](std::int64_t b0, std::int64_t b1) {
        for (std::int64_t b = b0; b < b1; ++b) {
          float* row = res.grad.data() + b * classes;
          row[labels[static_cast<std::size_t>(b)]] -= 1.0f;
          for (std::int64_t c = 0; c < classes; ++c) row[c] *= inv_batch;
        }
      },
      kernels::rows_grain(classes));
  res.value = static_cast<float>(loss / static_cast<double>(batch));
  return res;
}

}  // namespace crisp::nn
