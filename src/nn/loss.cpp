#include "nn/loss.h"

#include <cmath>

#include "tensor/check.h"

namespace crisp::nn {

Tensor softmax(const Tensor& logits) {
  CRISP_CHECK(logits.dim() == 2, "softmax expects (B, C)");
  const std::int64_t batch = logits.size(0), classes = logits.size(1);
  Tensor probs(logits.shape());
  for (std::int64_t b = 0; b < batch; ++b) {
    const float* row = logits.data() + b * classes;
    float* out = probs.data() + b * classes;
    float mx = row[0];
    for (std::int64_t c = 1; c < classes; ++c) mx = std::max(mx, row[c]);
    double denom = 0.0;
    for (std::int64_t c = 0; c < classes; ++c) {
      out[c] = std::exp(row[c] - mx);
      denom += out[c];
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (std::int64_t c = 0; c < classes; ++c) out[c] *= inv;
  }
  return probs;
}

LossResult cross_entropy(const Tensor& logits,
                         const std::vector<std::int64_t>& labels) {
  CRISP_CHECK(logits.dim() == 2, "cross_entropy expects (B, C) logits");
  const std::int64_t batch = logits.size(0), classes = logits.size(1);
  CRISP_CHECK(static_cast<std::int64_t>(labels.size()) == batch,
              "labels size " << labels.size() << " vs batch " << batch);

  LossResult res;
  res.grad = softmax(logits);
  double loss = 0.0;
  const float inv_batch = 1.0f / static_cast<float>(batch);
  for (std::int64_t b = 0; b < batch; ++b) {
    const std::int64_t y = labels[static_cast<std::size_t>(b)];
    CRISP_CHECK(y >= 0 && y < classes, "label " << y << " out of range");
    const float p = res.grad[b * classes + y];
    loss -= std::log(std::max(p, 1e-12f));
    // d(mean CE)/d(logits) = (softmax - onehot) / B
    res.grad[b * classes + y] -= 1.0f;
  }
  res.grad.scale_(inv_batch);
  res.value = static_cast<float>(loss / static_cast<double>(batch));
  return res;
}

}  // namespace crisp::nn
