// BatchNorm2d over (B, C, H, W) with per-channel affine parameters and
// running statistics for evaluation.
#pragma once

#include "nn/layer.h"

namespace crisp::nn {

class BatchNorm2d final : public Layer {
 public:
  BatchNorm2d(std::string name, std::int64_t channels, float momentum = 0.1f,
              float eps = 1e-5f);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor forward_eval(const Tensor& x) const override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override;
  std::vector<NamedBuffer> buffers() override;

  std::int64_t channels() const { return channels_; }

 private:
  void check_input(const Tensor& x) const;

  std::int64_t channels_;
  float momentum_;
  float eps_;
  Parameter gamma_;
  Parameter beta_;
  Tensor running_mean_;
  Tensor running_var_;

  // Backward caches (per training forward).
  Tensor cached_xhat_;      ///< normalised input
  Tensor cached_inv_std_;   ///< 1/sqrt(var+eps) per channel
  std::int64_t cached_batch_ = 0;
  std::int64_t cached_hw_ = 0;
};

}  // namespace crisp::nn
