#include "nn/activations.h"

#include "kernels/parallel_for.h"

namespace crisp::nn {

Tensor ReLU::forward_eval(const Tensor& x) const {
  Tensor y = x;
  if (cap_ < 0.0f) {
    y.clamp_min_(0.0f);
  } else {
    for (std::int64_t i = 0; i < y.numel(); ++i)
      y[i] = std::min(std::max(y[i], 0.0f), cap_);
  }
  return y;
}

Tensor ReLU::forward(const Tensor& x, bool train) {
  Tensor y = forward_eval(x);
  if (train) cached_input_ = x;
  return y;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  CRISP_CHECK(!cached_input_.empty(),
              name() << ": backward without cached forward");
  CRISP_CHECK(grad_out.same_shape(cached_input_), name() << ": shape mismatch");
  Tensor grad_in(grad_out.shape());
  // Pure elementwise gate: disjoint writes, trivially thread-invariant.
  kernels::parallel_for(
      grad_out.numel(),
      [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i) {
          const float v = cached_input_[i];
          const bool pass = cap_ < 0.0f ? (v > 0.0f) : (v > 0.0f && v < cap_);
          grad_in[i] = pass ? grad_out[i] : 0.0f;
        }
      },
      kernels::rows_grain(1));
  return grad_in;
}

Tensor Flatten::forward(const Tensor& x, bool train) {
  if (train) cached_shape_ = x.shape();
  return forward_eval(x);
}

Tensor Flatten::forward_eval(const Tensor& x) const {
  CRISP_CHECK(x.dim() >= 2, "Flatten expects batch dimension first");
  return x.reshaped({x.size(0), -1});
}

Tensor Flatten::backward(const Tensor& grad_out) {
  CRISP_CHECK(!cached_shape_.empty(), name() << ": backward without forward");
  return grad_out.reshaped(cached_shape_);
}

}  // namespace crisp::nn
