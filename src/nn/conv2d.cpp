#include "nn/conv2d.h"

#include <cmath>
#include <cstring>

#include "kernels/parallel_for.h"
#include "kernels/reduce.h"
#include "tensor/matmul.h"

namespace crisp::nn {

Conv2d::Conv2d(std::string name, const Conv2dSpec& spec, Rng& rng)
    : Layer(std::move(name)), spec_(spec) {
  CRISP_CHECK(spec_.in_channels % spec_.groups == 0,
              "in_channels " << spec_.in_channels << " not divisible by groups "
                             << spec_.groups);
  CRISP_CHECK(spec_.out_channels % spec_.groups == 0,
              "out_channels not divisible by groups");
  const std::int64_t rg = spec_.in_channels / spec_.groups;
  const std::int64_t fan_in = rg * spec_.kernel * spec_.kernel;
  // He initialisation — appropriate for the ReLU networks we build.
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  weight_.name = this->name() + ".weight";
  weight_.value = Tensor::randn(
      {spec_.out_channels, rg, spec_.kernel, spec_.kernel}, rng, 0.0f, stddev);
  weight_.grad = Tensor::zeros(weight_.value.shape());
  weight_.prunable = spec_.prunable;
  weight_.matrix_rows = spec_.out_channels;
  weight_.matrix_cols = fan_in;
  if (spec_.bias) {
    bias_.name = this->name() + ".bias";
    bias_.value = Tensor::zeros({spec_.out_channels});
    bias_.grad = Tensor::zeros({spec_.out_channels});
  }
}

ConvGeometry Conv2d::group_geometry(std::int64_t in_h, std::int64_t in_w) const {
  ConvGeometry g;
  g.in_channels = spec_.in_channels / spec_.groups;
  g.in_h = in_h;
  g.in_w = in_w;
  g.kernel_h = spec_.kernel;
  g.kernel_w = spec_.kernel;
  g.stride = spec_.stride;
  g.padding = spec_.padding;
  return g;
}

Tensor Conv2d::compute_forward(const Tensor& x, bool use_hook) const {
  CRISP_CHECK(x.dim() == 4, "Conv2d expects (B,C,H,W), got "
                                << shape_to_string(x.shape()));
  CRISP_CHECK(x.size(1) == spec_.in_channels,
              name() << ": input channels " << x.size(1) << " != "
                     << spec_.in_channels);
  const std::int64_t batch = x.size(0), in_h = x.size(2), in_w = x.size(3);
  const ConvGeometry g = group_geometry(in_h, in_w);
  const std::int64_t k = g.col_rows(), p = g.col_cols();
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  const std::int64_t sg = spec_.out_channels / spec_.groups;  // out ch / group

  const Tensor w_eff = use_hook ? Tensor() : weight_.effective_value();
  Tensor y({batch, spec_.out_channels, oh, ow});

  // Samples are independent, so the batch is the coarsest safe parallel
  // axis: each chunk lowers into its own im2col scratch and writes a
  // disjoint slice of y. Only worth it when the batch can occupy every
  // thread — otherwise (small-batch inference) the loop runs serially at
  // the top level and the per-sample GEMM/hook threads over output rows
  // instead. The grain keeps chunks thread-sized, so at most one scratch
  // allocation per thread rather than per sample.
  auto run_samples = [&](std::int64_t b0, std::int64_t b1) {
    Tensor cols({k, p});
    for (std::int64_t b = b0; b < b1; ++b) {
      for (std::int64_t grp = 0; grp < spec_.groups; ++grp) {
        const float* x_grp =
            x.data() +
            (b * spec_.in_channels + grp * g.in_channels) * in_h * in_w;
        im2col(x_grp, g, cols.data());
        MatrixView ymat(y.data() + (b * spec_.out_channels + grp * sg) * p, sg,
                        p);
        if (use_hook) {
          gemm_hook_(ConstMatrixView(cols.data(), k, p), ymat);
        } else {
          ConstMatrixView wmat(w_eff.data() + grp * sg * k, sg, k);
          matmul(wmat, ConstMatrixView(cols.data(), k, p), ymat);
        }
      }
    }
  };
  const int threads = kernels::num_threads();
  if (batch >= threads && threads > 1) {
    kernels::parallel_for(batch, run_samples,
                          /*grain=*/(batch + threads - 1) / threads);
  } else {
    run_samples(0, batch);
  }

  if (spec_.bias) {
    kernels::parallel_for(
        batch * spec_.out_channels,
        [&](std::int64_t p0, std::int64_t p1) {
          for (std::int64_t bc = p0; bc < p1; ++bc) {
            float* plane = y.data() + bc * p;
            const float bv = bias_.value[bc % spec_.out_channels];
            for (std::int64_t i = 0; i < p; ++i) plane[i] += bv;
          }
        },
        kernels::rows_grain(p));
  }
  return y;
}

Tensor Conv2d::forward(const Tensor& x, bool train) {
  Tensor y = compute_forward(x, gemm_hook_ && !train);

  const ConvGeometry g = group_geometry(x.size(2), x.size(3));
  const std::int64_t k = g.col_rows(), p = g.col_cols();
  const std::int64_t batch = x.size(0);
  // Per output position each group contributes its nnz weights, so the total
  // per-sample MACs equal p * nnz(weight) regardless of the group count.
  const std::int64_t dense_macs = batch * spec_.out_channels * k * p;
  const std::int64_t nnz =
      weight_.has_mask() ? weight_.mask.count_nonzero() : weight_.value.numel();
  record_macs(dense_macs, batch * p * nnz);

  if (train) cached_input_ = x;
  return y;
}

Tensor Conv2d::forward_eval(const Tensor& x) const {
  return compute_forward(x, static_cast<bool>(gemm_hook_));
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  CRISP_CHECK(!cached_input_.empty(),
              name() << ": backward called without cached forward");
  const Tensor& x = cached_input_;
  const std::int64_t batch = x.size(0), in_h = x.size(2), in_w = x.size(3);
  const ConvGeometry g = group_geometry(in_h, in_w);
  const std::int64_t k = g.col_rows(), p = g.col_cols();
  const std::int64_t sg = spec_.out_channels / spec_.groups;
  CRISP_CHECK(grad_out.size(0) == batch &&
                  grad_out.size(1) == spec_.out_channels &&
                  grad_out.size(2) == g.out_h() && grad_out.size(3) == g.out_w(),
              name() << ": grad_out shape mismatch");

  const Tensor w_eff = weight_.effective_value();
  Tensor grad_in({batch, spec_.in_channels, in_h, in_w});

  // Samples are independent on the input side (each writes its own grad_in
  // slice) but all contribute to the same weight gradient, so the batch
  // loop threads through parallel_accumulate: every chunk owns a private
  // dW accumulator and a fixed-order tree merges them — gradients are
  // bit-identical at any thread count (single-chunk batches accumulate
  // straight into weight_.grad, exactly the old serial order). The inner
  // GEMMs detect the parallel region and run inline; a batch too small to
  // chunk keeps its GEMM-level threading instead.
  auto backward_samples = [&](float* dw_acc, std::int64_t b0, std::int64_t b1) {
    Tensor cols({k, p});
    Tensor dcols({k, p});
    Tensor dw_local({sg, k});
    for (std::int64_t b = b0; b < b1; ++b) {
      for (std::int64_t grp = 0; grp < spec_.groups; ++grp) {
        const float* x_grp =
            x.data() +
            (b * spec_.in_channels + grp * g.in_channels) * in_h * in_w;
        im2col(x_grp, g, cols.data());  // recomputed: cheaper than caching all

        ConstMatrixView dy(
            grad_out.data() + (b * spec_.out_channels + grp * sg) * p, sg, p);
        // dW += dY · colsᵀ  — gradient w.r.t. the *effective* weight, stored
        // on the dense weight (straight-through estimator).
        matmul_nt(dy, ConstMatrixView(cols.data(), k, p),
                  as_matrix(dw_local, sg, k));
        float* dst = dw_acc + grp * sg * k;
        for (std::int64_t i = 0; i < sg * k; ++i) dst[i] += dw_local[i];

        // dcols = W_effᵀ · dY, then scatter back to the input image.
        ConstMatrixView wmat(w_eff.data() + grp * sg * k, sg, k);
        matmul_tn(wmat, dy, as_matrix(dcols, k, p));
        float* gin =
            grad_in.data() +
            (b * spec_.in_channels + grp * g.in_channels) * in_h * in_w;
        col2im(dcols.data(), g, gin);
      }
    }
  };
  // Per-sample cost ≈ the two GEMMs; im2col/col2im ride along.
  kernels::parallel_accumulate(
      batch, kernels::rows_grain(2 * spec_.out_channels * k * p),
      weight_.grad.numel(), backward_samples, weight_.grad.data());

  if (spec_.bias) {
    // One writer per channel; the batch is summed in ascending order inside
    // it, so the result never depends on the channel partition.
    kernels::parallel_for(
        spec_.out_channels,
        [&](std::int64_t c0, std::int64_t c1) {
          for (std::int64_t c = c0; c < c1; ++c)
            for (std::int64_t b = 0; b < batch; ++b) {
              const float* plane =
                  grad_out.data() + (b * spec_.out_channels + c) * p;
              double acc = 0.0;
              for (std::int64_t i = 0; i < p; ++i) acc += plane[i];
              bias_.grad[c] += static_cast<float>(acc);
            }
        },
        kernels::rows_grain(batch * p));
  }
  return grad_in;
}

std::vector<Parameter*> Conv2d::parameters() {
  std::vector<Parameter*> ps{&weight_};
  if (spec_.bias) ps.push_back(&bias_);
  return ps;
}

bool Conv2d::set_gemm_hook(GemmHook hook) {
  if (spec_.groups != 1) return false;
  gemm_hook_ = std::move(hook);
  return true;
}

}  // namespace crisp::nn
