// Model zoo: pre-trained universal models with an on-disk cache.
//
// The paper's pipeline starts from a model pre-trained on the full class
// distribution (§III-B). Several benches need the same pre-trained network,
// so the zoo trains it once and caches the state_dict under
// $CRISP_CACHE_DIR (default ".crisp_cache"). Cache keys encode every field
// that affects the weights, so changing a knob retrains rather than reusing
// stale weights.
#pragma once

#include <string>

#include "data/class_pattern.h"
#include "nn/models/common.h"
#include "nn/trainer.h"

namespace crisp::nn {

enum class DatasetKind { kCifar100Like, kImageNetLike };

const char* dataset_kind_name(DatasetKind kind);

struct ZooSpec {
  ModelKind model = ModelKind::kResNet50;
  DatasetKind dataset = DatasetKind::kCifar100Like;
  float width_mult = 0.25f;
  std::int64_t input_size = 16;
  std::int64_t pretrain_epochs = 10;
  std::int64_t train_per_class = 32;
  std::int64_t test_per_class = 10;
  std::uint64_t seed = 42;

  ModelConfig model_config() const;
  data::ClassPatternConfig data_config() const;
  std::string cache_key() const;
};

struct PretrainedModel {
  std::unique_ptr<Sequential> model;
  data::TrainTest data;
  bool from_cache = false;
  float test_accuracy = 0.0f;  ///< dense accuracy over all classes
};

/// Returns the pre-trained universal model plus its dataset, training it on
/// a cache miss. Deterministic in the spec.
PretrainedModel zoo_pretrained(const ZooSpec& spec, bool verbose = false);

/// Cache directory currently in effect ($CRISP_CACHE_DIR or ".crisp_cache").
std::string zoo_cache_dir();

}  // namespace crisp::nn
