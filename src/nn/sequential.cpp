#include "nn/sequential.h"

namespace crisp::nn {

Sequential& Sequential::add(LayerPtr layer) {
  CRISP_CHECK(layer != nullptr, "null layer added to " << name());
  layers_.push_back(std::move(layer));
  return *this;
}

Tensor Sequential::forward(const Tensor& x, bool train) {
  Tensor h = x;
  for (auto& l : layers_) h = l->forward(h, train);
  return h;
}

Tensor Sequential::forward_eval(const Tensor& x) const {
  Tensor h = x;
  for (const auto& l : layers_) h = l->forward_eval(h);
  return h;
}

Tensor Sequential::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    g = (*it)->backward(g);
  return g;
}

std::vector<Parameter*> Sequential::parameters() {
  std::vector<Parameter*> ps;
  for (auto& l : layers_) {
    auto sub = l->parameters();
    ps.insert(ps.end(), sub.begin(), sub.end());
  }
  return ps;
}

std::vector<NamedBuffer> Sequential::buffers() {
  std::vector<NamedBuffer> bs;
  for (auto& l : layers_) {
    auto sub = l->buffers();
    bs.insert(bs.end(), sub.begin(), sub.end());
  }
  return bs;
}

std::vector<Layer*> Sequential::children() {
  std::vector<Layer*> out;
  out.reserve(layers_.size());
  for (auto& l : layers_) out.push_back(l.get());
  return out;
}

std::vector<Parameter*> Sequential::prunable_parameters() {
  std::vector<Parameter*> out;
  for (Parameter* p : parameters())
    if (p->prunable) out.push_back(p);
  return out;
}

TensorMap Sequential::state_dict() {
  TensorMap state;
  for (Parameter* p : parameters()) {
    CRISP_CHECK(state.find(p->name) == state.end(),
                "duplicate parameter name " << p->name);
    state.emplace(p->name, p->value);
    if (p->has_mask()) state.emplace(p->name + "#mask", p->mask);
  }
  for (const NamedBuffer& b : buffers()) {
    CRISP_CHECK(state.find(b.name) == state.end(),
                "duplicate buffer name " << b.name);
    state.emplace(b.name, *b.tensor);
  }
  return state;
}

void Sequential::load_state_dict(const TensorMap& state) {
  for (Parameter* p : parameters()) {
    auto it = state.find(p->name);
    CRISP_CHECK(it != state.end(), "state_dict missing parameter " << p->name);
    CRISP_CHECK(it->second.same_shape(p->value),
                "shape mismatch for " << p->name << ": "
                                      << shape_to_string(it->second.shape())
                                      << " vs "
                                      << shape_to_string(p->value.shape()));
    p->value = it->second;
    auto mit = state.find(p->name + "#mask");
    if (mit != state.end()) p->mask = mit->second;
  }
  for (NamedBuffer& b : buffers()) {
    auto it = state.find(b.name);
    CRISP_CHECK(it != state.end(), "state_dict missing buffer " << b.name);
    CRISP_CHECK(it->second.same_shape(*b.tensor),
                "shape mismatch for buffer " << b.name);
    *b.tensor = it->second;
  }
}

std::int64_t Sequential::last_dense_macs() const {
  std::int64_t total = 0;
  for (const auto& l : layers_) total += l->last_dense_macs();
  return total;
}

std::int64_t Sequential::last_sparse_macs() const {
  std::int64_t total = 0;
  for (const auto& l : layers_) total += l->last_sparse_macs();
  return total;
}

Tensor predict(Sequential& model, const Tensor& x) {
  return model.forward(x, /*train=*/false);
}

void clear_masks(Sequential& model) {
  for (Parameter* p : model.parameters()) p->mask = Tensor();
}

}  // namespace crisp::nn
