// 2-D convolution lowered to GEMM (im2col), with group support for the
// depthwise convolutions of MobileNetV2.
//
// Weight layout is (S, R/groups, kh, kw), which flattens row-major into the
// paper's reshaped S x K matrix with K = (R/groups)·kh·kw — the matrix the
// CRISP masks operate on (DESIGN.md §5).
#pragma once

#include "nn/layer.h"
#include "tensor/im2col.h"
#include "tensor/rng.h"

namespace crisp::nn {

struct Conv2dSpec {
  std::int64_t in_channels = 0;
  std::int64_t out_channels = 0;
  std::int64_t kernel = 3;
  std::int64_t stride = 1;
  std::int64_t padding = 1;
  std::int64_t groups = 1;
  bool bias = false;  ///< convs feeding BatchNorm don't need one
  /// Depthwise and stem convs are typically excluded from N:M pruning
  /// (NVIDIA ASP practice); builders set this accordingly.
  bool prunable = true;
};

class Conv2d final : public Layer {
 public:
  Conv2d(std::string name, const Conv2dSpec& spec, Rng& rng);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor forward_eval(const Tensor& x) const override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override;

  /// Accepted only for groups == 1 (grouped/depthwise convs lower to one
  /// GEMM per group, which the single-GEMM hook contract cannot express).
  bool set_gemm_hook(GemmHook hook) override;

  const Conv2dSpec& spec() const { return spec_; }
  Parameter& weight() { return weight_; }
  const Parameter& weight() const { return weight_; }

  /// Output spatial size for a given input size.
  std::int64_t out_size(std::int64_t in_size) const {
    return (in_size + 2 * spec_.padding - spec_.kernel) / spec_.stride + 1;
  }

 private:
  ConvGeometry group_geometry(std::int64_t in_h, std::int64_t in_w) const;

  /// The shared math of both forwards: im2col + (hooked or dense) GEMM +
  /// bias, no caching and no MAC bookkeeping.
  Tensor compute_forward(const Tensor& x, bool use_hook) const;

  Conv2dSpec spec_;
  Parameter weight_;
  Parameter bias_;
  Tensor cached_input_;  ///< saved by forward(train=true) for backward
  GemmHook gemm_hook_;   ///< packed-execution override for eval forwards
};

}  // namespace crisp::nn
