#include "nn/linear.h"

#include <cmath>

#include "kernels/parallel_for.h"
#include "tensor/matmul.h"

namespace crisp::nn {

Linear::Linear(std::string name, std::int64_t in_features,
               std::int64_t out_features, Rng& rng, bool bias, bool prunable)
    : Layer(std::move(name)),
      in_features_(in_features),
      out_features_(out_features),
      has_bias_(bias) {
  const float stddev = std::sqrt(2.0f / static_cast<float>(in_features));
  weight_.name = this->name() + ".weight";
  weight_.value = Tensor::randn({out_features, in_features}, rng, 0.0f, stddev);
  weight_.grad = Tensor::zeros(weight_.value.shape());
  weight_.prunable = prunable;
  weight_.matrix_rows = out_features;
  weight_.matrix_cols = in_features;
  if (has_bias_) {
    bias_.name = this->name() + ".bias";
    bias_.value = Tensor::zeros({out_features});
    bias_.grad = Tensor::zeros({out_features});
  }
}

Tensor Linear::compute_forward(const Tensor& x, bool use_hook) const {
  CRISP_CHECK(x.dim() == 2 && x.size(1) == in_features_,
              name() << ": expected (B," << in_features_ << "), got "
                     << shape_to_string(x.shape()));
  const std::int64_t batch = x.size(0);

  Tensor y({batch, out_features_});
  if (use_hook) {
    // Hook contract is column-major activations: y' = W · x' with
    // x' = (in x B). Transpose in, run the packed GEMM, transpose out;
    // both transposes are row-partitioned over their output like every
    // other kernel (disjoint writes, so thread-count independent). The
    // work-based grain keeps single-sample inference inline — a pool
    // dispatch would cost more than the copies.
    Tensor xt({in_features_, batch});
    kernels::parallel_for(
        in_features_,
        [&](std::int64_t i0, std::int64_t i1) {
          for (std::int64_t i = i0; i < i1; ++i)
            for (std::int64_t b = 0; b < batch; ++b)
              xt[i * batch + b] = x[b * in_features_ + i];
        },
        kernels::rows_grain(batch));
    Tensor yt({out_features_, batch});
    gemm_hook_(ConstMatrixView(xt.data(), in_features_, batch),
               MatrixView(yt.data(), out_features_, batch));
    kernels::parallel_for(
        batch,
        [&](std::int64_t b0, std::int64_t b1) {
          for (std::int64_t b = b0; b < b1; ++b)
            for (std::int64_t o = 0; o < out_features_; ++o)
              y[b * out_features_ + o] = yt[o * batch + b];
        },
        kernels::rows_grain(out_features_));
  } else {
    const Tensor w_eff = weight_.effective_value();
    // y[b,o] = Σ_i x[b,i] · W[o,i]
    matmul_nt(as_matrix(x, batch, in_features_),
              as_matrix(w_eff, out_features_, in_features_),
              as_matrix(y, batch, out_features_));
  }
  if (has_bias_) {
    kernels::parallel_for(
        batch,
        [&](std::int64_t b0, std::int64_t b1) {
          for (std::int64_t b = b0; b < b1; ++b)
            for (std::int64_t o = 0; o < out_features_; ++o)
              y[b * out_features_ + o] += bias_.value[o];
        },
        kernels::rows_grain(out_features_));
  }
  return y;
}

Tensor Linear::forward(const Tensor& x, bool train) {
  Tensor y = compute_forward(x, gemm_hook_ && !train);

  const std::int64_t nnz =
      weight_.has_mask() ? weight_.mask.count_nonzero() : weight_.value.numel();
  record_macs(x.size(0) * out_features_ * in_features_, x.size(0) * nnz);

  if (train) cached_input_ = x;
  return y;
}

Tensor Linear::forward_eval(const Tensor& x) const {
  return compute_forward(x, static_cast<bool>(gemm_hook_));
}

Tensor Linear::backward(const Tensor& grad_out) {
  CRISP_CHECK(!cached_input_.empty(),
              name() << ": backward called without cached forward");
  const Tensor& x = cached_input_;
  const std::int64_t batch = x.size(0);
  CRISP_CHECK(grad_out.dim() == 2 && grad_out.size(0) == batch &&
                  grad_out.size(1) == out_features_,
              name() << ": grad_out shape mismatch");

  // dW[o,i] += Σ_b dY[b,o] · x[b,i]   (STE: stored on the dense weight)
  Tensor dw({out_features_, in_features_});
  matmul_tn(as_matrix(grad_out, batch, out_features_),
            as_matrix(x, batch, in_features_),
            as_matrix(dw, out_features_, in_features_));
  weight_.grad.add_(dw);

  if (has_bias_) {
    // db[o] += Σ_b dY[b,o] — one writer per output feature, with the batch
    // accumulated in ascending order inside it, so the sum is independent
    // of how the features are chunked across threads.
    kernels::parallel_for(
        out_features_,
        [&](std::int64_t o0, std::int64_t o1) {
          for (std::int64_t o = o0; o < o1; ++o) {
            float acc = 0.0f;
            for (std::int64_t b = 0; b < batch; ++b)
              acc += grad_out[b * out_features_ + o];
            bias_.grad[o] += acc;
          }
        },
        kernels::rows_grain(batch));
  }

  // dx = dY · W_eff
  const Tensor w_eff = weight_.effective_value();
  Tensor grad_in({batch, in_features_});
  matmul(as_matrix(grad_out, batch, out_features_),
         as_matrix(w_eff, out_features_, in_features_),
         as_matrix(grad_in, batch, in_features_));
  return grad_in;
}

std::vector<Parameter*> Linear::parameters() {
  std::vector<Parameter*> ps{&weight_};
  if (has_bias_) ps.push_back(&bias_);
  return ps;
}

bool Linear::set_gemm_hook(GemmHook hook) {
  gemm_hook_ = std::move(hook);
  return true;
}

}  // namespace crisp::nn
