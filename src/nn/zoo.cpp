#include "nn/zoo.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <sstream>

namespace crisp::nn {

const char* dataset_kind_name(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kCifar100Like: return "cifar100like";
    case DatasetKind::kImageNetLike: return "imagenetlike";
  }
  return "unknown";
}

ModelConfig ZooSpec::model_config() const {
  ModelConfig cfg;
  cfg.input_size = input_size;
  cfg.width_mult = width_mult;
  cfg.seed = seed;
  cfg.num_classes = data_config().num_classes;
  return cfg;
}

data::ClassPatternConfig ZooSpec::data_config() const {
  data::ClassPatternConfig cfg = dataset == DatasetKind::kCifar100Like
                                     ? data::ClassPatternConfig::cifar100_like()
                                     : data::ClassPatternConfig::imagenet_like();
  cfg.image_size = input_size;
  cfg.train_per_class = train_per_class;
  cfg.test_per_class = test_per_class;
  return cfg;
}

std::string ZooSpec::cache_key() const {
  std::ostringstream os;
  os << model_kind_name(model) << '_' << dataset_kind_name(dataset) << "_w"
     << static_cast<int>(width_mult * 1000) << "_s" << input_size << "_e"
     << pretrain_epochs << "_n" << train_per_class << "_seed" << seed;
  return os.str();
}

std::string zoo_cache_dir() {
  if (const char* env = std::getenv("CRISP_CACHE_DIR")) return env;
  return ".crisp_cache";
}

PretrainedModel zoo_pretrained(const ZooSpec& spec, bool verbose) {
  PretrainedModel out;
  out.data = data::make_class_pattern_dataset(spec.data_config());
  out.model = make_model(spec.model, spec.model_config());

  const std::filesystem::path cache_path =
      std::filesystem::path(zoo_cache_dir()) / (spec.cache_key() + ".bin");

  if (std::filesystem::exists(cache_path)) {
    out.model->load_state_dict(load_tensors(cache_path.string()));
    out.from_cache = true;
  } else {
    if (verbose)
      std::printf("[zoo] training %s (cache miss: %s)\n",
                  spec.cache_key().c_str(), cache_path.string().c_str());
    TrainConfig tc;
    tc.epochs = spec.pretrain_epochs;
    tc.batch_size = 32;
    tc.sgd.lr = 0.05f;
    tc.sgd.momentum = 0.9f;
    tc.sgd.weight_decay = 4e-5f;
    tc.lr_decay = 0.85f;
    tc.verbose = verbose;
    Rng rng(spec.seed + 1);
    train(*out.model, out.data.train, tc, rng);
    std::filesystem::create_directories(cache_path.parent_path());
    save_tensors(out.model->state_dict(), cache_path.string());
  }

  out.test_accuracy = evaluate(*out.model, out.data.test);
  if (verbose)
    std::printf("[zoo] %s: dense test accuracy %.3f%s\n",
                spec.cache_key().c_str(), out.test_accuracy,
                out.from_cache ? " (cached)" : "");
  return out;
}

}  // namespace crisp::nn
