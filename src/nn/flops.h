// FLOPs accounting — the paper reports the "normalized FLOPs ratio w.r.t.
// the original dense model" as its compression measure (Fig. 7 bottom rows).
//
// Counting runs one instrumented forward pass: every GEMM layer records its
// dense MACs and its mask-aware sparse MACs, which we then gather by walking
// the layer tree.
#pragma once

#include <string>
#include <vector>

#include "nn/sequential.h"

namespace crisp::nn {

struct LayerFlops {
  std::string name;
  std::int64_t dense_macs = 0;
  std::int64_t sparse_macs = 0;
  double weight_sparsity = 0.0;  ///< zero fraction of the layer's mask
};

struct FlopsReport {
  std::vector<LayerFlops> layers;  ///< GEMM leaves only, forward order
  std::int64_t dense_total = 0;
  std::int64_t sparse_total = 0;

  /// Normalized FLOPs ratio (1 = dense, smaller is better).
  double ratio() const {
    return dense_total == 0
               ? 1.0
               : static_cast<double>(sparse_total) /
                     static_cast<double>(dense_total);
  }
};

/// Runs one eval-mode forward with a dummy batch of the given input shape
/// (e.g. {1, 3, 16, 16}) and collects per-layer MACs.
FlopsReport count_flops(Sequential& model, const Shape& input_shape);

/// All leaf layers in forward order (depth-first through children()).
std::vector<Layer*> leaf_layers(Layer& root);

/// Leaf layers owning at least one prunable parameter.
std::vector<Layer*> prunable_layers(Layer& root);

}  // namespace crisp::nn
