#include "nn/distill.h"

#include <cmath>
#include <cstdio>

#include "nn/loss.h"

namespace crisp::nn {

namespace {

/// Row-wise log-softmax of logits/T, numerically stable.
void log_softmax_scaled(const Tensor& logits, float temperature,
                        std::vector<double>& out) {
  const std::int64_t batch = logits.size(0), classes = logits.size(1);
  out.resize(static_cast<std::size_t>(batch * classes));
  for (std::int64_t b = 0; b < batch; ++b) {
    const float* row = logits.data() + b * classes;
    double max_v = -1e300;
    for (std::int64_t c = 0; c < classes; ++c)
      max_v = std::max(max_v, static_cast<double>(row[c]) / temperature);
    double sum = 0.0;
    for (std::int64_t c = 0; c < classes; ++c)
      sum += std::exp(static_cast<double>(row[c]) / temperature - max_v);
    const double lse = max_v + std::log(sum);
    for (std::int64_t c = 0; c < classes; ++c)
      out[static_cast<std::size_t>(b * classes + c)] =
          static_cast<double>(row[c]) / temperature - lse;
  }
}

}  // namespace

DistillLossResult distill_loss(const Tensor& student_logits,
                               const Tensor& teacher_logits,
                               const std::vector<std::int64_t>& labels,
                               float temperature, float alpha) {
  CRISP_CHECK(student_logits.same_shape(teacher_logits),
              "student/teacher logit shapes differ");
  CRISP_CHECK(temperature > 0.0f, "temperature must be positive");
  CRISP_CHECK(alpha >= 0.0f && alpha <= 1.0f, "alpha out of [0, 1]");
  const std::int64_t batch = student_logits.size(0);
  const std::int64_t classes = student_logits.size(1);

  // Hard-label component on the unsoftened logits.
  const LossResult ce = cross_entropy(student_logits, labels);

  // Softened distributions.
  std::vector<double> log_ps, log_pt;
  log_softmax_scaled(student_logits, temperature, log_ps);
  log_softmax_scaled(teacher_logits, temperature, log_pt);

  DistillLossResult out;
  out.grad = Tensor({batch, classes});
  const double t = static_cast<double>(temperature);
  double kl_sum = 0.0;
  for (std::int64_t b = 0; b < batch; ++b) {
    for (std::int64_t c = 0; c < classes; ++c) {
      const auto i = static_cast<std::size_t>(b * classes + c);
      const double pt = std::exp(log_pt[i]);
      const double ps = std::exp(log_ps[i]);
      kl_sum += pt * (log_pt[i] - log_ps[i]);
      // d(T² · KL)/d(z_s) = T · (p_s − p_t), averaged over the batch.
      const double kd_grad =
          t * (ps - pt) / static_cast<double>(batch);
      out.grad[b * classes + c] =
          (1.0f - alpha) * ce.grad[b * classes + c] +
          alpha * static_cast<float>(kd_grad);
    }
  }
  out.ce = ce.value;
  out.kd = static_cast<float>(t * t * kl_sum / static_cast<double>(batch));
  out.value = (1.0f - alpha) * out.ce + alpha * out.kd;
  return out;
}

std::vector<DistillEpochStats> distill_train(Sequential& student,
                                             Sequential& teacher,
                                             const data::Dataset& dataset,
                                             const DistillConfig& cfg,
                                             Rng& rng) {
  CRISP_CHECK(dataset.size() > 0, "distilling on an empty dataset");
  Sgd opt(student.parameters(), cfg.base.sgd);
  std::vector<DistillEpochStats> stats;
  float lr = cfg.base.sgd.lr;

  for (std::int64_t epoch = 0; epoch < cfg.base.epochs; ++epoch) {
    opt.set_lr(lr);
    double loss_sum = 0.0, ce_sum = 0.0, kd_sum = 0.0;
    std::int64_t correct = 0, seen = 0;
    for (const auto& batch :
         data::make_batches(dataset, cfg.base.batch_size, rng)) {
      opt.zero_grad();
      const Tensor teacher_logits = teacher.forward(batch.images, false);
      Tensor logits = student.forward(batch.images, /*train=*/true);
      const DistillLossResult loss = distill_loss(
          logits, teacher_logits, batch.labels, cfg.temperature, cfg.alpha);
      student.backward(loss.grad);
      opt.step();

      const auto bs = static_cast<double>(batch.size());
      loss_sum += static_cast<double>(loss.value) * bs;
      ce_sum += static_cast<double>(loss.ce) * bs;
      kd_sum += static_cast<double>(loss.kd) * bs;
      const std::int64_t classes = logits.size(1);
      for (std::int64_t b = 0; b < batch.size(); ++b) {
        const float* row = logits.data() + b * classes;
        std::int64_t best = 0;
        for (std::int64_t c = 1; c < classes; ++c)
          if (row[c] > row[best]) best = c;
        correct += (best == batch.labels[static_cast<std::size_t>(b)]);
      }
      seen += batch.size();
    }
    DistillEpochStats es;
    const auto n = static_cast<double>(seen);
    es.loss = static_cast<float>(loss_sum / n);
    es.ce_loss = static_cast<float>(ce_sum / n);
    es.kd_loss = static_cast<float>(kd_sum / n);
    es.accuracy = static_cast<float>(correct) / static_cast<float>(seen);
    stats.push_back(es);
    if (cfg.base.verbose)
      std::printf("  distill %2lld/%lld  loss %.4f (ce %.4f, kd %.4f)  "
                  "train-acc %.3f\n",
                  static_cast<long long>(epoch + 1),
                  static_cast<long long>(cfg.base.epochs), es.loss, es.ce_loss,
                  es.kd_loss, es.accuracy);
    lr *= cfg.base.lr_decay;
  }
  return stats;
}

}  // namespace crisp::nn
