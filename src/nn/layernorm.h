// LayerNorm over the last dimension — the normalisation transformers use
// (part of the transformer extension the paper lists as future work).
#pragma once

#include "nn/layer.h"

namespace crisp::nn {

/// Normalises each trailing-dimension vector of an (..., D) tensor to zero
/// mean / unit variance, then applies per-feature affine gamma/beta.
class LayerNorm final : public Layer {
 public:
  LayerNorm(std::string name, std::int64_t features, float eps = 1e-5f);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor forward_eval(const Tensor& x) const override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override { return {&gamma_, &beta_}; }

  std::int64_t features() const { return features_; }

 private:
  /// Shared normalisation math; xhat/inv_std caches are filled only when
  /// the pointers are non-null (training).
  Tensor compute_forward(const Tensor& x, Tensor* xhat, Tensor* inv_std) const;

  std::int64_t features_;
  float eps_;
  Parameter gamma_;
  Parameter beta_;
  Tensor cached_xhat_;
  Tensor cached_inv_std_;  ///< one per normalised vector
};

/// GELU activation (tanh approximation), used in transformer MLPs.
class Gelu final : public Layer {
 public:
  explicit Gelu(std::string name) : Layer(std::move(name)) {}
  Tensor forward(const Tensor& x, bool train) override;
  Tensor forward_eval(const Tensor& x) const override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  Tensor cached_input_;
};

}  // namespace crisp::nn
