#include "nn/trainer.h"

#include <cstdio>

#include "nn/loss.h"

namespace crisp::nn {

std::vector<EpochStats> train(Sequential& model, const data::Dataset& dataset,
                              const TrainConfig& cfg, Rng& rng) {
  CRISP_CHECK(dataset.size() > 0, "training on an empty dataset");
  Sgd opt(model.parameters(), cfg.sgd);
  std::vector<EpochStats> stats;
  float lr = cfg.sgd.lr;

  for (std::int64_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    opt.set_lr(lr);
    double loss_sum = 0.0;
    std::int64_t correct = 0, seen = 0;
    for (const auto& batch : data::make_batches(dataset, cfg.batch_size, rng)) {
      opt.zero_grad();
      Tensor logits = model.forward(batch.images, /*train=*/true);
      LossResult loss = cross_entropy(logits, batch.labels);
      model.backward(loss.grad);
      opt.step();

      loss_sum += static_cast<double>(loss.value) * batch.size();
      const std::int64_t classes = logits.size(1);
      for (std::int64_t b = 0; b < batch.size(); ++b) {
        const float* row = logits.data() + b * classes;
        std::int64_t best = 0;
        for (std::int64_t c = 1; c < classes; ++c)
          if (row[c] > row[best]) best = c;
        correct += (best == batch.labels[static_cast<std::size_t>(b)]);
      }
      seen += batch.size();
    }
    EpochStats es;
    es.loss = static_cast<float>(loss_sum / static_cast<double>(seen));
    es.accuracy = static_cast<float>(correct) / static_cast<float>(seen);
    stats.push_back(es);
    if (cfg.verbose)
      std::printf("  epoch %2lld/%lld  loss %.4f  train-acc %.3f\n",
                  static_cast<long long>(epoch + 1),
                  static_cast<long long>(cfg.epochs), es.loss, es.accuracy);
    lr *= cfg.lr_decay;
  }
  return stats;
}

float evaluate(Sequential& model, const data::Dataset& dataset,
               std::int64_t batch_size,
               const std::vector<std::int64_t>& restrict_classes) {
  if (dataset.size() == 0) return 0.0f;
  Rng rng(0);  // unused: shuffle disabled
  std::int64_t correct = 0;
  for (const auto& batch :
       data::make_batches(dataset, batch_size, rng, /*shuffle=*/false)) {
    Tensor logits = model.forward(batch.images, /*train=*/false);
    const std::int64_t classes = logits.size(1);
    for (std::int64_t b = 0; b < batch.size(); ++b) {
      const float* row = logits.data() + b * classes;
      std::int64_t best = -1;
      if (restrict_classes.empty()) {
        best = 0;
        for (std::int64_t c = 1; c < classes; ++c)
          if (row[c] > row[best]) best = c;
      } else {
        for (std::int64_t c : restrict_classes) {
          CRISP_CHECK(c >= 0 && c < classes, "restricted class out of range");
          if (best < 0 || row[c] > row[best]) best = c;
        }
      }
      correct += (best == batch.labels[static_cast<std::size_t>(b)]);
    }
  }
  return static_cast<float>(correct) / static_cast<float>(dataset.size());
}

float evaluate_loss(Sequential& model, const data::Dataset& dataset,
                    std::int64_t batch_size) {
  if (dataset.size() == 0) return 0.0f;
  Rng rng(0);
  double loss_sum = 0.0;
  for (const auto& batch :
       data::make_batches(dataset, batch_size, rng, /*shuffle=*/false)) {
    Tensor logits = model.forward(batch.images, /*train=*/false);
    loss_sum += static_cast<double>(cross_entropy(logits, batch.labels).value) *
                batch.size();
  }
  return static_cast<float>(loss_sum / static_cast<double>(dataset.size()));
}

}  // namespace crisp::nn
