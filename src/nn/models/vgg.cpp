// VGG-16-style network (Simonyan & Zisserman, ICLR'15): 13 conv layers with
// BatchNorm, max-pools between stages, global-average head — the standard
// small-input adaptation of VGG (pools are skipped once the spatial size
// reaches 1, which only happens for inputs below 32 px).
#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/models/common.h"
#include "nn/pooling.h"

namespace crisp::nn {

std::unique_ptr<Sequential> make_vgg16(const ModelConfig& cfg) {
  Rng rng(cfg.seed);
  auto model = std::make_unique<Sequential>("vgg16");

  // -1 marks a max-pool in the classic VGG-16 configuration "D".
  const std::int64_t plan[] = {64, 64, -1, 128, 128, -1, 256, 256, 256, -1,
                               512, 512, 512, -1, 512, 512, 512, -1};

  std::int64_t in_ch = 3;
  std::int64_t spatial = cfg.input_size;
  std::int64_t conv_idx = 0;
  for (std::int64_t entry : plan) {
    if (entry < 0) {
      if (spatial >= 2) {
        model->emplace<MaxPool2d>("pool" + std::to_string(conv_idx));
        spatial /= 2;
      }
      continue;
    }
    const std::int64_t out_ch = scaled_channels(entry, cfg.width_mult);
    Conv2dSpec spec;
    spec.in_channels = in_ch;
    spec.out_channels = out_ch;
    spec.kernel = 3;
    spec.padding = 1;
    spec.prunable = (conv_idx == 0) ? cfg.prune_stem : true;
    const std::string id = std::to_string(conv_idx);
    model->emplace<Conv2d>("conv" + id, spec, rng);
    model->emplace<BatchNorm2d>("bn" + id, out_ch);
    model->emplace<ReLU>("relu" + id);
    in_ch = out_ch;
    ++conv_idx;
  }

  model->emplace<GlobalAvgPool>("gap");
  model->emplace<Linear>("fc", in_ch, cfg.num_classes, rng, /*bias=*/true,
                         /*prunable=*/true);
  return model;
}

}  // namespace crisp::nn
