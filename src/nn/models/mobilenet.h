// MobileNetV2-style network (Sandler et al., CVPR'18): inverted residual
// blocks with expansion, depthwise 3x3 convolution, and linear bottleneck.
#pragma once

#include "nn/models/common.h"

namespace crisp::nn {

/// Inverted residual: 1x1 expand (t>1) -> 3x3 depthwise -> 1x1 project
/// (linear), with identity skip when stride = 1 and channels match.
/// Depthwise kernels are excluded from N:M pruning (9-element reduction per
/// group — NVIDIA ASP makes the same exclusion).
class InvertedResidual final : public Layer {
 public:
  InvertedResidual(std::string name, std::int64_t in_channels,
                   std::int64_t out_channels, std::int64_t stride,
                   std::int64_t expand_ratio, Rng& rng);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor forward_eval(const Tensor& x) const override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override { return main_.parameters(); }
  std::vector<NamedBuffer> buffers() override { return main_.buffers(); }
  std::vector<Layer*> children() override { return {&main_}; }
  std::int64_t last_dense_macs() const override {
    return main_.last_dense_macs();
  }
  std::int64_t last_sparse_macs() const override {
    return main_.last_sparse_macs();
  }

  std::int64_t out_channels() const { return out_channels_; }

 private:
  std::int64_t out_channels_;
  bool use_residual_;
  Sequential main_;
};

}  // namespace crisp::nn
