#include "nn/models/transformer.h"

#include "kernels/parallel_for.h"
#include "nn/conv2d.h"

namespace crisp::nn {

Tensor ToTokens::forward_eval(const Tensor& x) const {
  CRISP_CHECK(x.dim() == 4, name() << " expects (B, D, H, W)");
  const std::int64_t batch = x.size(0), dim = x.size(1),
                     tokens = x.size(2) * x.size(3);
  Tensor y({batch, tokens, dim});
  // Pure transpose: every (b, d) plane scatters to its own column of y.
  kernels::parallel_for(
      batch * dim,
      [&](std::int64_t p0, std::int64_t p1) {
        for (std::int64_t bd = p0; bd < p1; ++bd) {
          const std::int64_t b = bd / dim, d = bd % dim;
          const float* plane = x.data() + bd * tokens;
          for (std::int64_t t = 0; t < tokens; ++t)
            y[(b * tokens + t) * dim + d] = plane[t];
        }
      },
      kernels::rows_grain(tokens));
  return y;
}

Tensor ToTokens::forward(const Tensor& x, bool train) {
  Tensor y = forward_eval(x);
  if (train) cached_in_shape_ = x.shape();
  return y;
}

Tensor ToTokens::backward(const Tensor& grad_out) {
  CRISP_CHECK(!cached_in_shape_.empty(), name() << ": backward without forward");
  const std::int64_t batch = cached_in_shape_[0], dim = cached_in_shape_[1],
                     tokens = cached_in_shape_[2] * cached_in_shape_[3];
  Tensor dx(cached_in_shape_);
  kernels::parallel_for(
      batch * dim,
      [&](std::int64_t p0, std::int64_t p1) {
        for (std::int64_t bd = p0; bd < p1; ++bd) {
          const std::int64_t b = bd / dim, d = bd % dim;
          float* plane = dx.data() + bd * tokens;
          for (std::int64_t t = 0; t < tokens; ++t)
            plane[t] = grad_out[(b * tokens + t) * dim + d];
        }
      },
      kernels::rows_grain(tokens));
  return dx;
}

PositionalEmbedding::PositionalEmbedding(std::string name, std::int64_t tokens,
                                         std::int64_t dim, Rng& rng)
    : Layer(std::move(name)), tokens_(tokens), dim_(dim) {
  table_.name = this->name() + ".table";
  table_.value = Tensor::randn({tokens, dim}, rng, 0.0f, 0.02f);
  table_.grad = Tensor::zeros({tokens, dim});
}

Tensor PositionalEmbedding::forward_eval(const Tensor& x) const {
  CRISP_CHECK(x.dim() == 3 && x.size(1) == tokens_ && x.size(2) == dim_,
              name() << ": expected (B, " << tokens_ << ", " << dim_ << ")");
  Tensor y = x;
  const std::int64_t batch = x.size(0);
  kernels::parallel_for(
      batch,
      [&](std::int64_t b0, std::int64_t b1) {
        for (std::int64_t b = b0; b < b1; ++b)
          for (std::int64_t i = 0; i < tokens_ * dim_; ++i)
            y[b * tokens_ * dim_ + i] += table_.value[i];
      },
      kernels::rows_grain(tokens_ * dim_));
  return y;
}

Tensor PositionalEmbedding::forward(const Tensor& x, bool /*train*/) {
  return forward_eval(x);
}

Tensor PositionalEmbedding::backward(const Tensor& grad_out) {
  const std::int64_t batch = grad_out.size(0);
  // One writer per table slot; the batch is accumulated in ascending order
  // inside it, so the sum never depends on the slot partition.
  kernels::parallel_for(
      tokens_ * dim_,
      [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i) {
          float acc = 0.0f;
          for (std::int64_t b = 0; b < batch; ++b)
            acc += grad_out[b * tokens_ * dim_ + i];
          table_.grad[i] += acc;
        }
      },
      kernels::rows_grain(batch));
  return grad_out;
}

Tensor TokenMeanPool::forward_eval(const Tensor& x) const {
  CRISP_CHECK(x.dim() == 3, name() << " expects (B, T, D)");
  const std::int64_t batch = x.size(0), tokens = x.size(1), dim = x.size(2);
  Tensor y({batch, dim});
  const float inv = 1.0f / static_cast<float>(tokens);
  // Each sample owns its output row; tokens accumulate in ascending order.
  kernels::parallel_for(
      batch,
      [&](std::int64_t b0, std::int64_t b1) {
        for (std::int64_t b = b0; b < b1; ++b)
          for (std::int64_t t = 0; t < tokens; ++t)
            for (std::int64_t d = 0; d < dim; ++d)
              y[b * dim + d] += x[(b * tokens + t) * dim + d] * inv;
      },
      kernels::rows_grain(tokens * dim));
  return y;
}

Tensor TokenMeanPool::forward(const Tensor& x, bool train) {
  Tensor y = forward_eval(x);
  if (train) cached_in_shape_ = x.shape();
  return y;
}

Tensor TokenMeanPool::backward(const Tensor& grad_out) {
  CRISP_CHECK(!cached_in_shape_.empty(), name() << ": backward without forward");
  const std::int64_t batch = cached_in_shape_[0], tokens = cached_in_shape_[1],
                     dim = cached_in_shape_[2];
  Tensor dx(cached_in_shape_);
  const float inv = 1.0f / static_cast<float>(tokens);
  kernels::parallel_for(
      batch * tokens,
      [&](std::int64_t p0, std::int64_t p1) {
        for (std::int64_t bt = p0; bt < p1; ++bt) {
          const std::int64_t b = bt / tokens;
          for (std::int64_t d = 0; d < dim; ++d)
            dx[bt * dim + d] = grad_out[b * dim + d] * inv;
        }
      },
      kernels::rows_grain(dim));
  return dx;
}

TransformerBlock::TransformerBlock(std::string name, std::int64_t dim,
                                   std::int64_t heads, std::int64_t mlp_ratio,
                                   Rng& rng)
    : Layer(std::move(name)),
      ln1_(this->name() + ".ln1", dim),
      attn_(this->name() + ".attn", dim, heads, rng),
      ln2_(this->name() + ".ln2", dim),
      mlp_(this->name() + ".mlp") {
  mlp_.emplace<Linear>(this->name() + ".mlp.fc1", dim, dim * mlp_ratio, rng);
  mlp_.emplace<Gelu>(this->name() + ".mlp.gelu");
  mlp_.emplace<Linear>(this->name() + ".mlp.fc2", dim * mlp_ratio, dim, rng);
}

Tensor TransformerBlock::forward(const Tensor& x, bool train) {
  // y = x + attn(ln1(x))
  Tensor y = attn_.forward(ln1_.forward(x, train), train);
  y.add_(x);
  // z = y + mlp(ln2(y)); the MLP operates on (B*T, D) rows.
  const std::int64_t batch = y.size(0), tokens = y.size(1), dim = y.size(2);
  if (train) cached_token_shape_ = y.shape();
  Tensor h = ln2_.forward(y, train);
  h.reshape_inplace({batch * tokens, dim});
  Tensor z = mlp_.forward(h, train);
  z.reshape_inplace({batch, tokens, dim});
  z.add_(y);
  return z;
}

Tensor TransformerBlock::forward_eval(const Tensor& x) const {
  // Same dataflow as forward(train=false), on the cache-free const path.
  Tensor y = attn_.forward_eval(ln1_.forward_eval(x));
  y.add_(x);
  const std::int64_t batch = y.size(0), tokens = y.size(1), dim = y.size(2);
  Tensor h = ln2_.forward_eval(y);
  h.reshape_inplace({batch * tokens, dim});
  Tensor z = mlp_.forward_eval(h);
  z.reshape_inplace({batch, tokens, dim});
  z.add_(y);
  return z;
}

Tensor TransformerBlock::backward(const Tensor& grad_out) {
  CRISP_CHECK(!cached_token_shape_.empty(),
              name() << ": backward without forward");
  const std::int64_t batch = cached_token_shape_[0],
                     tokens = cached_token_shape_[1],
                     dim = cached_token_shape_[2];
  // dz -> mlp path + residual.
  Tensor dmlp = grad_out.reshaped({batch * tokens, dim});
  Tensor dh = mlp_.backward(dmlp);
  dh.reshape_inplace({batch, tokens, dim});
  Tensor dy = ln2_.backward(dh);
  dy.add_(grad_out);
  // dy -> attention path + residual.
  Tensor dattn = attn_.backward(dy);
  Tensor dx = ln1_.backward(dattn);
  dx.add_(dy);
  return dx;
}

std::vector<Parameter*> TransformerBlock::parameters() {
  std::vector<Parameter*> ps = ln1_.parameters();
  auto ap = attn_.parameters();
  ps.insert(ps.end(), ap.begin(), ap.end());
  auto lp = ln2_.parameters();
  ps.insert(ps.end(), lp.begin(), lp.end());
  auto mp = mlp_.parameters();
  ps.insert(ps.end(), mp.begin(), mp.end());
  return ps;
}

std::vector<Layer*> TransformerBlock::children() {
  return {&ln1_, &attn_, &ln2_, &mlp_};
}

std::int64_t TransformerBlock::last_dense_macs() const {
  return mlp_.last_dense_macs();
}

std::int64_t TransformerBlock::last_sparse_macs() const {
  return mlp_.last_sparse_macs();
}

std::unique_ptr<Sequential> make_vit(const VitConfig& cfg) {
  CRISP_CHECK(cfg.input_size % cfg.patch == 0,
              "input size must be a multiple of the patch size");
  Rng rng(cfg.seed);
  auto model = std::make_unique<Sequential>("vit");

  Conv2dSpec embed;
  embed.in_channels = 3;
  embed.out_channels = cfg.dim;
  embed.kernel = cfg.patch;
  embed.stride = cfg.patch;
  embed.padding = 0;
  embed.bias = true;
  embed.prunable = false;  // stem-equivalent: excluded like conv stems
  model->emplace<Conv2d>("patch_embed", embed, rng);
  model->emplace<ToTokens>("to_tokens");

  const std::int64_t side = cfg.input_size / cfg.patch;
  model->emplace<PositionalEmbedding>("pos_embed", side * side, cfg.dim, rng);

  for (std::int64_t i = 0; i < cfg.depth; ++i)
    model->emplace<TransformerBlock>("block" + std::to_string(i), cfg.dim,
                                     cfg.heads, cfg.mlp_ratio, rng);

  model->emplace<LayerNorm>("final_ln", cfg.dim);
  model->emplace<TokenMeanPool>("pool");
  model->emplace<Linear>("head", cfg.dim, cfg.num_classes, rng);
  return model;
}

}  // namespace crisp::nn
