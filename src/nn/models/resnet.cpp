#include "nn/models/resnet.h"

#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/pooling.h"

namespace crisp::nn {

const char* model_kind_name(ModelKind kind) {
  switch (kind) {
    case ModelKind::kResNet50: return "resnet50";
    case ModelKind::kVgg16: return "vgg16";
    case ModelKind::kMobileNetV2: return "mobilenetv2";
  }
  return "unknown";
}

std::unique_ptr<Sequential> make_model(ModelKind kind, const ModelConfig& cfg) {
  switch (kind) {
    case ModelKind::kResNet50: return make_resnet50(cfg);
    case ModelKind::kVgg16: return make_vgg16(cfg);
    case ModelKind::kMobileNetV2: return make_mobilenet_v2(cfg);
  }
  CRISP_CHECK(false, "unknown model kind");
  return nullptr;
}

Bottleneck::Bottleneck(std::string name, std::int64_t in_channels,
                       std::int64_t planes, std::int64_t stride, Rng& rng)
    : Layer(std::move(name)),
      out_channels_(planes * kExpansion),
      has_projection_(stride != 1 || in_channels != planes * kExpansion),
      main_(this->name() + ".main"),
      projection_(this->name() + ".proj"),
      relu_out_(this->name() + ".relu_out") {
  Conv2dSpec c1;
  c1.in_channels = in_channels;
  c1.out_channels = planes;
  c1.kernel = 1;
  c1.padding = 0;
  main_.emplace<Conv2d>(this->name() + ".conv1", c1, rng);
  main_.emplace<BatchNorm2d>(this->name() + ".bn1", planes);
  main_.emplace<ReLU>(this->name() + ".relu1");

  Conv2dSpec c2;
  c2.in_channels = planes;
  c2.out_channels = planes;
  c2.kernel = 3;
  c2.stride = stride;
  c2.padding = 1;
  main_.emplace<Conv2d>(this->name() + ".conv2", c2, rng);
  main_.emplace<BatchNorm2d>(this->name() + ".bn2", planes);
  main_.emplace<ReLU>(this->name() + ".relu2");

  Conv2dSpec c3;
  c3.in_channels = planes;
  c3.out_channels = out_channels_;
  c3.kernel = 1;
  c3.padding = 0;
  main_.emplace<Conv2d>(this->name() + ".conv3", c3, rng);
  main_.emplace<BatchNorm2d>(this->name() + ".bn3", out_channels_);

  if (has_projection_) {
    Conv2dSpec pd;
    pd.in_channels = in_channels;
    pd.out_channels = out_channels_;
    pd.kernel = 1;
    pd.stride = stride;
    pd.padding = 0;
    projection_.emplace<Conv2d>(this->name() + ".proj_conv", pd, rng);
    projection_.emplace<BatchNorm2d>(this->name() + ".proj_bn", out_channels_);
  }
}

Tensor Bottleneck::forward(const Tensor& x, bool train) {
  Tensor main_out = main_.forward(x, train);
  Tensor shortcut = has_projection_ ? projection_.forward(x, train) : x;
  main_out.add_(shortcut);
  if (train) cached_input_ = x;
  return relu_out_.forward(main_out, train);
}

Tensor Bottleneck::forward_eval(const Tensor& x) const {
  Tensor main_out = main_.forward_eval(x);
  main_out.add_(has_projection_ ? projection_.forward_eval(x) : x);
  return relu_out_.forward_eval(main_out);
}

Tensor Bottleneck::backward(const Tensor& grad_out) {
  Tensor g = relu_out_.backward(grad_out);
  Tensor dx = main_.backward(g);
  if (has_projection_) {
    dx.add_(projection_.backward(g));
  } else {
    dx.add_(g);
  }
  return dx;
}

std::vector<Parameter*> Bottleneck::parameters() {
  auto ps = main_.parameters();
  auto pr = projection_.parameters();
  ps.insert(ps.end(), pr.begin(), pr.end());
  return ps;
}

std::vector<NamedBuffer> Bottleneck::buffers() {
  auto bs = main_.buffers();
  auto br = projection_.buffers();
  bs.insert(bs.end(), br.begin(), br.end());
  return bs;
}

std::vector<Layer*> Bottleneck::children() {
  std::vector<Layer*> kids{&main_};
  if (has_projection_) kids.push_back(&projection_);
  kids.push_back(&relu_out_);
  return kids;
}

std::int64_t Bottleneck::last_dense_macs() const {
  return main_.last_dense_macs() + projection_.last_dense_macs();
}

std::int64_t Bottleneck::last_sparse_macs() const {
  return main_.last_sparse_macs() + projection_.last_sparse_macs();
}

std::unique_ptr<Sequential> make_resnet50(const ModelConfig& cfg) {
  Rng rng(cfg.seed);
  auto model = std::make_unique<Sequential>("resnet50");

  const std::int64_t stem = scaled_channels(64, cfg.width_mult);
  Conv2dSpec stem_spec;
  stem_spec.in_channels = 3;
  stem_spec.out_channels = stem;
  stem_spec.kernel = 3;
  stem_spec.padding = 1;
  stem_spec.prunable = cfg.prune_stem;
  model->emplace<Conv2d>("stem.conv", stem_spec, rng);
  model->emplace<BatchNorm2d>("stem.bn", stem);
  model->emplace<ReLU>("stem.relu");

  const std::int64_t stage_planes[4] = {
      scaled_channels(64, cfg.width_mult), scaled_channels(128, cfg.width_mult),
      scaled_channels(256, cfg.width_mult),
      scaled_channels(512, cfg.width_mult)};
  const std::int64_t stage_blocks[4] = {3, 4, 6, 3};

  std::int64_t in_ch = stem;
  for (int stage = 0; stage < 4; ++stage) {
    for (std::int64_t b = 0; b < stage_blocks[stage]; ++b) {
      const std::int64_t stride = (stage > 0 && b == 0) ? 2 : 1;
      auto& block = model->emplace<Bottleneck>(
          "s" + std::to_string(stage + 1) + ".b" + std::to_string(b), in_ch,
          stage_planes[stage], stride, rng);
      in_ch = block.out_channels();
    }
  }

  model->emplace<GlobalAvgPool>("gap");
  model->emplace<Linear>("fc", in_ch, cfg.num_classes, rng, /*bias=*/true,
                         /*prunable=*/true);
  return model;
}

}  // namespace crisp::nn
