// Vision-transformer-style model — the paper's future-work extension
// ("We plan to extend these results to transformer-based architectures").
//
// Patch-embedding conv -> token sequence -> pre-norm transformer blocks
// (multi-head self-attention + GELU MLP) -> mean pool -> linear head. All
// projection and MLP weights are prunable S x K matrices, so the CRISP
// pruner applies unchanged.
#pragma once

#include "nn/attention.h"
#include "nn/layernorm.h"
#include "nn/linear.h"
#include "nn/models/common.h"

namespace crisp::nn {

/// (B, D, Hp, Wp) -> (B, T = Hp*Wp, D): per-sample transpose to token-major.
class ToTokens final : public Layer {
 public:
  explicit ToTokens(std::string name) : Layer(std::move(name)) {}
  Tensor forward(const Tensor& x, bool train) override;
  Tensor forward_eval(const Tensor& x) const override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  Shape cached_in_shape_;
};

/// Adds a learnable (T, D) positional table to every sample.
class PositionalEmbedding final : public Layer {
 public:
  PositionalEmbedding(std::string name, std::int64_t tokens, std::int64_t dim,
                      Rng& rng);
  Tensor forward(const Tensor& x, bool train) override;
  Tensor forward_eval(const Tensor& x) const override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override { return {&table_}; }

 private:
  std::int64_t tokens_;
  std::int64_t dim_;
  Parameter table_;
};

/// (B, T, D) -> (B, D) by averaging tokens.
class TokenMeanPool final : public Layer {
 public:
  explicit TokenMeanPool(std::string name) : Layer(std::move(name)) {}
  Tensor forward(const Tensor& x, bool train) override;
  Tensor forward_eval(const Tensor& x) const override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  Shape cached_in_shape_;
};

/// Pre-norm transformer block: x + MHSA(LN(x)), then y + MLP(LN(y)).
class TransformerBlock final : public Layer {
 public:
  TransformerBlock(std::string name, std::int64_t dim, std::int64_t heads,
                   std::int64_t mlp_ratio, Rng& rng);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor forward_eval(const Tensor& x) const override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override;
  std::vector<Layer*> children() override;
  std::int64_t last_dense_macs() const override;
  std::int64_t last_sparse_macs() const override;

 private:
  LayerNorm ln1_;
  MultiHeadSelfAttention attn_;
  LayerNorm ln2_;
  Sequential mlp_;
  Shape cached_token_shape_;  ///< (B, T, D) for the MLP's 2-D reshape
};

struct VitConfig {
  std::int64_t num_classes = 100;
  std::int64_t input_size = 16;
  std::int64_t patch = 4;
  std::int64_t dim = 32;       ///< token width (multiple of 4 for N:M)
  std::int64_t heads = 4;
  std::int64_t depth = 4;
  std::int64_t mlp_ratio = 4;
  std::uint64_t seed = 42;
};

std::unique_ptr<Sequential> make_vit(const VitConfig& cfg);

}  // namespace crisp::nn
