// ResNet-50-style network: [3,4,6,3] bottleneck blocks, expansion 4,
// CIFAR-style 3x3 stem (appropriate for small inputs).
#pragma once

#include "nn/activations.h"
#include "nn/models/common.h"

namespace crisp::nn {

/// The 1x1 -> 3x3 -> 1x1 bottleneck residual block of ResNet-50 (He et al.,
/// CVPR'16) with projection shortcut when shape changes.
class Bottleneck final : public Layer {
 public:
  Bottleneck(std::string name, std::int64_t in_channels, std::int64_t planes,
             std::int64_t stride, Rng& rng);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor forward_eval(const Tensor& x) const override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override;
  std::vector<NamedBuffer> buffers() override;
  std::vector<Layer*> children() override;
  std::int64_t last_dense_macs() const override;
  std::int64_t last_sparse_macs() const override;

  static constexpr std::int64_t kExpansion = 4;
  std::int64_t out_channels() const { return out_channels_; }

 private:
  std::int64_t out_channels_;
  bool has_projection_;
  Sequential main_;
  Sequential projection_;  ///< empty when identity shortcut
  ReLU relu_out_;
  Tensor cached_input_;    ///< needed when the shortcut is the identity
};

}  // namespace crisp::nn
