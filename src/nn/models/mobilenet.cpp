#include "nn/models/mobilenet.h"

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/pooling.h"

namespace crisp::nn {

InvertedResidual::InvertedResidual(std::string name, std::int64_t in_channels,
                                   std::int64_t out_channels,
                                   std::int64_t stride,
                                   std::int64_t expand_ratio, Rng& rng)
    : Layer(std::move(name)),
      out_channels_(out_channels),
      use_residual_(stride == 1 && in_channels == out_channels),
      main_(this->name() + ".main") {
  const std::int64_t hidden = in_channels * expand_ratio;

  if (expand_ratio != 1) {
    Conv2dSpec expand;
    expand.in_channels = in_channels;
    expand.out_channels = hidden;
    expand.kernel = 1;
    expand.padding = 0;
    main_.emplace<Conv2d>(this->name() + ".expand", expand, rng);
    main_.emplace<BatchNorm2d>(this->name() + ".expand_bn", hidden);
    main_.emplace<ReLU>(this->name() + ".expand_relu6", 6.0f);
  }

  Conv2dSpec dw;
  dw.in_channels = hidden;
  dw.out_channels = hidden;
  dw.kernel = 3;
  dw.stride = stride;
  dw.padding = 1;
  dw.groups = hidden;       // depthwise
  dw.prunable = false;      // ASP-style exclusion (see class comment)
  main_.emplace<Conv2d>(this->name() + ".dw", dw, rng);
  main_.emplace<BatchNorm2d>(this->name() + ".dw_bn", hidden);
  main_.emplace<ReLU>(this->name() + ".dw_relu6", 6.0f);

  Conv2dSpec project;
  project.in_channels = hidden;
  project.out_channels = out_channels;
  project.kernel = 1;
  project.padding = 0;
  main_.emplace<Conv2d>(this->name() + ".project", project, rng);
  main_.emplace<BatchNorm2d>(this->name() + ".project_bn", out_channels);
  // Linear bottleneck: no activation after projection.
}

Tensor InvertedResidual::forward(const Tensor& x, bool train) {
  Tensor y = main_.forward(x, train);
  if (use_residual_) y.add_(x);
  return y;
}

Tensor InvertedResidual::forward_eval(const Tensor& x) const {
  Tensor y = main_.forward_eval(x);
  if (use_residual_) y.add_(x);
  return y;
}

Tensor InvertedResidual::backward(const Tensor& grad_out) {
  Tensor dx = main_.backward(grad_out);
  if (use_residual_) dx.add_(grad_out);
  return dx;
}

std::unique_ptr<Sequential> make_mobilenet_v2(const ModelConfig& cfg) {
  Rng rng(cfg.seed);
  auto model = std::make_unique<Sequential>("mobilenetv2");

  const std::int64_t stem = scaled_channels(32, cfg.width_mult);
  Conv2dSpec stem_spec;
  stem_spec.in_channels = 3;
  stem_spec.out_channels = stem;
  stem_spec.kernel = 3;
  stem_spec.padding = 1;
  stem_spec.prunable = cfg.prune_stem;
  model->emplace<Conv2d>("stem.conv", stem_spec, rng);
  model->emplace<BatchNorm2d>("stem.bn", stem);
  model->emplace<ReLU>("stem.relu6", 6.0f);

  // (expand t, channels c, repeats n, stride s) — the MobileNetV2 table with
  // early strides relaxed to 1 for small inputs (standard CIFAR adaptation).
  struct Row {
    std::int64_t t, c, n, s;
  };
  const Row rows[] = {{1, 16, 1, 1},  {6, 24, 2, 1},  {6, 32, 3, 2},
                      {6, 64, 4, 2},  {6, 96, 3, 1},  {6, 160, 3, 2},
                      {6, 320, 1, 1}};

  std::int64_t in_ch = stem;
  std::int64_t block_idx = 0;
  for (const Row& row : rows) {
    const std::int64_t out_ch = scaled_channels(row.c, cfg.width_mult);
    for (std::int64_t i = 0; i < row.n; ++i) {
      const std::int64_t stride = (i == 0) ? row.s : 1;
      auto& block = model->emplace<InvertedResidual>(
          "ir" + std::to_string(block_idx), in_ch, out_ch, stride, row.t, rng);
      in_ch = block.out_channels();
      ++block_idx;
    }
  }

  const std::int64_t head = scaled_channels(1280, cfg.width_mult);
  Conv2dSpec head_spec;
  head_spec.in_channels = in_ch;
  head_spec.out_channels = head;
  head_spec.kernel = 1;
  head_spec.padding = 0;
  model->emplace<Conv2d>("head.conv", head_spec, rng);
  model->emplace<BatchNorm2d>("head.bn", head);
  model->emplace<ReLU>("head.relu6", 6.0f);

  model->emplace<GlobalAvgPool>("gap");
  model->emplace<Linear>("fc", head, cfg.num_classes, rng, /*bias=*/true,
                         /*prunable=*/true);
  return model;
}

}  // namespace crisp::nn
