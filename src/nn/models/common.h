// Shared model-builder configuration.
//
// The paper trains ResNet-50 / VGG-16 / MobileNetV2 at ImageNet scale; this
// reproduction builds the same *architectures* (bottleneck residuals, plain
// conv stacks, inverted residuals with depthwise convolutions) width-scaled
// for small synthetic images so they train on one CPU core (DESIGN.md §2).
// `width_mult = 1` recovers the standard channel counts.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>

#include "nn/sequential.h"

namespace crisp::nn {

struct ModelConfig {
  std::int64_t num_classes = 100;
  std::int64_t input_size = 16;  ///< square input, (3, S, S)
  float width_mult = 0.25f;
  std::uint64_t seed = 42;       ///< weight-init seed

  /// Exclude the stem conv from pruning (NVIDIA ASP convention). The first
  /// layer sees raw pixels and is tiny; pruning it hurts disproportionately.
  bool prune_stem = false;
};

/// Channels scaled by width_mult, rounded to a multiple of 4 (so reduction
/// lengths divide the M of N:M sparsity) and at least 8.
inline std::int64_t scaled_channels(std::int64_t base, float width_mult) {
  const auto scaled = static_cast<std::int64_t>(
      static_cast<float>(base) * width_mult + 0.5f);
  const std::int64_t rounded = std::max<std::int64_t>(8, (scaled + 3) / 4 * 4);
  return rounded;
}

enum class ModelKind { kResNet50, kVgg16, kMobileNetV2 };

const char* model_kind_name(ModelKind kind);

std::unique_ptr<Sequential> make_resnet50(const ModelConfig& cfg);
std::unique_ptr<Sequential> make_vgg16(const ModelConfig& cfg);
std::unique_ptr<Sequential> make_mobilenet_v2(const ModelConfig& cfg);

std::unique_ptr<Sequential> make_model(ModelKind kind, const ModelConfig& cfg);

}  // namespace crisp::nn
