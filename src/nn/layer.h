// Layer interface with explicit (manual) backpropagation.
//
// The pruning framework needs exactly three things from the NN substrate:
// forward activations, per-weight gradients, and masked execution with
// straight-through-estimator (STE) updates. Layers therefore implement
// forward/backward by hand (verified by finite-difference tests) instead of
// a general autograd.
//
// Masking contract (paper §III-C): every prunable Parameter may carry a
// binary mask of its own shape. Forward always computes with value ⊙ mask;
// backward produces the gradient of the loss w.r.t. the *effective* weight
// and stores it as the gradient of the dense weight — that is precisely the
// straight-through estimator, so pruned weights keep receiving gradient and
// can be revived when masks are re-selected.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "tensor/tensor.h"

namespace crisp::nn {

/// Replacement GEMM for deployment: computes y = W_eff · x where x is the
/// layer's lowered (K x P) input and y its (S x P) output. Installed by the
/// deploy library so eval-mode inference runs straight from a packed sparse
/// representation; the hook owner guarantees it encodes this layer's current
/// effective weight. Hooks may be invoked concurrently (the batch-parallel
/// conv forward does), so they must be const-thread-safe — the SpmmKernel
/// implementations the deploy library installs are.
using GemmHook = std::function<void(ConstMatrixView x, MatrixView y)>;

struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;
  Tensor mask;  ///< empty ⇒ dense; otherwise 0/1, same shape as value

  /// Weights eligible for CRISP pruning (conv/linear kernels, not biases).
  bool prunable = false;
  /// Matrix interpretation of `value` for pruning: the paper's reshaped
  /// S x K weight matrix (rows = output channels, cols = reduction).
  std::int64_t matrix_rows = 0;
  std::int64_t matrix_cols = 0;

  bool has_mask() const { return !mask.empty(); }

  /// Creates an all-ones mask if none exists.
  void ensure_mask();

  /// value ⊙ mask when masked, otherwise a copy of value.
  Tensor effective_value() const;

  /// Permanently zeroes masked-out entries of the dense value (deployment).
  void bake_mask();

  /// Fraction of zeros in the mask (0 when dense).
  double mask_sparsity() const;

  MatrixView value_matrix();
  ConstMatrixView value_matrix() const;
  MatrixView mask_matrix();
  MatrixView grad_matrix();
};

/// Named non-trainable state (BatchNorm running statistics).
struct NamedBuffer {
  std::string name;
  Tensor* tensor = nullptr;
};

class Layer {
 public:
  explicit Layer(std::string name) : name_(std::move(name)) {}
  virtual ~Layer() = default;

  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  /// `train` toggles BatchNorm statistics and activation caching.
  virtual Tensor forward(const Tensor& x, bool train) = 0;

  /// Side-effect-free eval forward: computes exactly what
  /// forward(x, /*train=*/false) computes, but touches no activation
  /// caches, records no MAC counters, and updates no statistics — so a
  /// model frozen for serving can run it concurrently from many threads
  /// (installed GemmHooks are const-thread-safe by contract). The serving
  /// layer (serve::CompiledModel) is built on this path. The base
  /// implementation throws; every layer in this library overrides it.
  virtual Tensor forward_eval(const Tensor& x) const;

  /// Consumes d(loss)/d(output), accumulates parameter gradients, and
  /// returns d(loss)/d(input). Must be called after a forward with
  /// train=true on the same input.
  ///
  /// Threading contract (mirrors the forward path): every layer's backward
  /// runs through crisp::kernels — batch/row/channel-parallel loops with
  /// single-writer outputs, and per-chunk accumulators merged by
  /// kernels::parallel_accumulate's fixed-order tree wherever many samples
  /// feed one parameter gradient — so gradients are bit-identical at any
  /// kernels::num_threads() (tests/test_backward_threading.cpp).
  virtual Tensor backward(const Tensor& grad_out) = 0;

  virtual std::vector<Parameter*> parameters() { return {}; }
  virtual std::vector<NamedBuffer> buffers() { return {}; }

  /// Direct sub-layers (containers/blocks); leaves return {}. Enables
  /// whole-model walks (per-layer FLOPs, sparsity census) without RTTI.
  virtual std::vector<Layer*> children() { return {}; }

  /// Installs (or, with nullptr, removes) a packed-execution GEMM hook.
  /// Only layers that lower to a single GEMM accept one — Conv2d with
  /// groups == 1 and Linear override this; the default refuses. Training
  /// forwards always ignore the hook (STE needs the dense weights).
  virtual bool set_gemm_hook(GemmHook hook) {
    (void)hook;
    return false;
  }

  const std::string& name() const { return name_; }

  void zero_grad();

  /// MAC counts recorded by the most recent forward (GEMM layers only).
  /// dense = as if no mask; sparse = counting only unmasked weights.
  /// Containers and blocks override these to sum their children.
  virtual std::int64_t last_dense_macs() const { return last_dense_macs_; }
  virtual std::int64_t last_sparse_macs() const { return last_sparse_macs_; }

 protected:
  void record_macs(std::int64_t dense, std::int64_t sparse) {
    last_dense_macs_ = dense;
    last_sparse_macs_ = sparse;
  }

 private:
  std::string name_;
  std::int64_t last_dense_macs_ = 0;
  std::int64_t last_sparse_macs_ = 0;
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace crisp::nn
