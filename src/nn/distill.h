// Knowledge-distillation fine-tuning — the user-driven recipe of the MyML
// family of class-aware baselines ([5] in the paper), offered here as an
// optional recovery mode for any pruner.
//
// The dense universal model (the "teacher") is kept on the cloud side
// anyway; during fine-tuning the pruned student matches a temperature-
// softened teacher distribution in addition to the hard labels:
//
//   L = (1-α)·CE(student, y) + α·T²·KL(p_teacher^T ‖ p_student^T)
//
// The T² factor keeps gradient magnitudes comparable across temperatures
// (Hinton et al.). With only a handful of samples per user class, the
// teacher's dark knowledge regularises the student — bench users can A/B
// this against plain CE fine-tuning via CrispConfig-style recovery swaps.
#pragma once

#include "data/dataset.h"
#include "nn/sequential.h"
#include "nn/trainer.h"

namespace crisp::nn {

struct DistillConfig {
  TrainConfig base;          ///< epochs / batch / SGD / lr-decay
  float temperature = 2.0f;  ///< softening T (1 = plain distributions)
  float alpha = 0.5f;        ///< KD weight; 0 = plain CE, 1 = pure KD
};

struct DistillEpochStats {
  float loss = 0.0f;      ///< combined objective
  float ce_loss = 0.0f;   ///< hard-label component
  float kd_loss = 0.0f;   ///< T²·KL component
  float accuracy = 0.0f;  ///< training accuracy
};

/// Combined KD + CE loss for one batch of logits. `teacher_logits` must
/// have the same shape. Returns the loss value(s) and d(loss)/d(logits).
struct DistillLossResult {
  float value = 0.0f;
  float ce = 0.0f;
  float kd = 0.0f;
  Tensor grad;
};
DistillLossResult distill_loss(const Tensor& student_logits,
                               const Tensor& teacher_logits,
                               const std::vector<std::int64_t>& labels,
                               float temperature, float alpha);

/// Fine-tunes `student` in place against the frozen `teacher` (evaluated in
/// inference mode; never updated). Deterministic given rng. The student's
/// masks, if any, behave exactly as in nn::train (masked forward, STE
/// updates on dense weights).
std::vector<DistillEpochStats> distill_train(Sequential& student,
                                             Sequential& teacher,
                                             const data::Dataset& dataset,
                                             const DistillConfig& cfg,
                                             Rng& rng);

}  // namespace crisp::nn
