#include "nn/attention.h"

#include <cmath>
#include <vector>

#include "kernels/parallel_for.h"
#include "tensor/matmul.h"

namespace crisp::nn {

namespace {

void init_projection(Parameter& p, const std::string& name, std::int64_t out,
                     std::int64_t in, Rng& rng) {
  const float stddev = std::sqrt(1.0f / static_cast<float>(in));
  p.name = name;
  p.value = Tensor::randn({out, in}, rng, 0.0f, stddev);
  p.grad = Tensor::zeros({out, in});
  p.prunable = true;
  p.matrix_rows = out;
  p.matrix_cols = in;
}

void init_bias(Parameter& p, const std::string& name, std::int64_t out) {
  p.name = name;
  p.value = Tensor::zeros({out});
  p.grad = Tensor::zeros({out});
}

/// y(BT x D) = x(BT x D) · Wᵀ + b, using the effective (masked) weight.
Tensor project(const Tensor& x, const Parameter& w, const Parameter& b,
               std::int64_t rows, std::int64_t dim) {
  const Tensor w_eff = w.effective_value();
  Tensor y({rows, dim});
  matmul_nt(ConstMatrixView(x.data(), rows, dim),
            as_matrix(w_eff, dim, dim), as_matrix(y, rows, dim));
  kernels::parallel_for(
      rows,
      [&](std::int64_t r0, std::int64_t r1) {
        for (std::int64_t r = r0; r < r1; ++r)
          for (std::int64_t i = 0; i < dim; ++i) y[r * dim + i] += b.value[i];
      },
      kernels::rows_grain(dim));
  return y;
}

/// Accumulates dW += dYᵀ·x and db += Σ dY; returns dx = dY·W_eff.
Tensor project_backward(const Tensor& dy, const Tensor& x, Parameter& w,
                        Parameter& b, std::int64_t rows, std::int64_t dim) {
  Tensor dw({dim, dim});
  matmul_tn(ConstMatrixView(dy.data(), rows, dim),
            ConstMatrixView(x.data(), rows, dim), as_matrix(dw, dim, dim));
  w.grad.add_(dw);
  // db[i] += Σ_r dY[r,i] — one writer per bias slot, rows accumulated in
  // ascending order inside it, so the sum never depends on the partition.
  kernels::parallel_for(
      dim,
      [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i) {
          float acc = 0.0f;
          for (std::int64_t r = 0; r < rows; ++r) acc += dy[r * dim + i];
          b.grad[i] += acc;
        }
      },
      kernels::rows_grain(rows));

  const Tensor w_eff = w.effective_value();
  Tensor dx({rows, dim});
  matmul(ConstMatrixView(dy.data(), rows, dim), as_matrix(w_eff, dim, dim),
         as_matrix(dx, rows, dim));
  return dx;
}

}  // namespace

MultiHeadSelfAttention::MultiHeadSelfAttention(std::string name,
                                               std::int64_t dim,
                                               std::int64_t heads, Rng& rng)
    : Layer(std::move(name)), dim_(dim), heads_(heads), head_dim_(dim / heads) {
  CRISP_CHECK(heads >= 1 && dim % heads == 0,
              "dim " << dim << " not divisible by heads " << heads);
  init_projection(wq_, this->name() + ".wq", dim, dim, rng);
  init_projection(wk_, this->name() + ".wk", dim, dim, rng);
  init_projection(wv_, this->name() + ".wv", dim, dim, rng);
  init_projection(wo_, this->name() + ".wo", dim, dim, rng);
  init_bias(bq_, this->name() + ".bq", dim);
  init_bias(bk_, this->name() + ".bk", dim);
  init_bias(bv_, this->name() + ".bv", dim);
  init_bias(bo_, this->name() + ".bo", dim);
}

MultiHeadSelfAttention::ForwardState MultiHeadSelfAttention::run_forward(
    const Tensor& x) const {
  CRISP_CHECK(x.dim() == 3 && x.size(2) == dim_,
              name() << ": expected (B, T, " << dim_ << "), got "
                     << shape_to_string(x.shape()));
  const std::int64_t batch = x.size(0), tokens = x.size(1);
  const std::int64_t rows = batch * tokens;
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));

  Tensor q = project(x, wq_, bq_, rows, dim_);
  Tensor k = project(x, wk_, bk_, rows, dim_);
  Tensor v = project(x, wv_, bv_, rows, dim_);

  Tensor attn({batch, heads_, tokens, tokens});
  Tensor o({batch, tokens, dim_});

  // Every (b, h) pair owns its attention plane and its `off` column band of
  // o, so the head loop threads with disjoint writes and per-(b, h) math
  // that never depends on the partition.
  kernels::parallel_for(
      batch * heads_,
      [&](std::int64_t p0, std::int64_t p1) {
        for (std::int64_t bh = p0; bh < p1; ++bh) {
          const std::int64_t b = bh / heads_, h = bh % heads_;
          const std::int64_t off = h * head_dim_;
          float* a = attn.data() + (bh * tokens) * tokens;
          // scores S = Q_h · K_hᵀ * scale, then row-softmax in place.
          for (std::int64_t i = 0; i < tokens; ++i) {
            const float* qi = q.data() + (b * tokens + i) * dim_ + off;
            float mx = -1e30f;
            for (std::int64_t j = 0; j < tokens; ++j) {
              const float* kj = k.data() + (b * tokens + j) * dim_ + off;
              float s = 0.0f;
              for (std::int64_t d = 0; d < head_dim_; ++d) s += qi[d] * kj[d];
              a[i * tokens + j] = s * scale;
              mx = std::max(mx, a[i * tokens + j]);
            }
            double denom = 0.0;
            for (std::int64_t j = 0; j < tokens; ++j) {
              a[i * tokens + j] = std::exp(a[i * tokens + j] - mx);
              denom += a[i * tokens + j];
            }
            const float inv = static_cast<float>(1.0 / denom);
            for (std::int64_t j = 0; j < tokens; ++j) a[i * tokens + j] *= inv;
          }
          // O_h = A · V_h
          for (std::int64_t i = 0; i < tokens; ++i) {
            float* oi = o.data() + (b * tokens + i) * dim_ + off;
            for (std::int64_t d = 0; d < head_dim_; ++d) oi[d] = 0.0f;
            for (std::int64_t j = 0; j < tokens; ++j) {
              const float aij = a[i * tokens + j];
              const float* vj = v.data() + (b * tokens + j) * dim_ + off;
              for (std::int64_t d = 0; d < head_dim_; ++d) oi[d] += aij * vj[d];
            }
          }
        }
      },
      kernels::rows_grain(2 * tokens * tokens * head_dim_));

  Tensor y = project(o, wo_, bo_, rows, dim_);
  y.reshape_inplace({batch, tokens, dim_});

  ForwardState st;
  st.q = std::move(q);
  st.k = std::move(k);
  st.v = std::move(v);
  st.attn = std::move(attn);
  st.o = std::move(o);
  st.y = std::move(y);
  return st;
}

Tensor MultiHeadSelfAttention::forward(const Tensor& x, bool train) {
  ForwardState st = run_forward(x);
  if (train) {
    cached_x_ = x;
    cached_q_ = std::move(st.q);
    cached_k_ = std::move(st.k);
    cached_v_ = std::move(st.v);
    cached_attn_ = std::move(st.attn);
    cached_o_ = std::move(st.o);
  }
  return std::move(st.y);
}

Tensor MultiHeadSelfAttention::forward_eval(const Tensor& x) const {
  return run_forward(x).y;
}

Tensor MultiHeadSelfAttention::backward(const Tensor& grad_out) {
  CRISP_CHECK(!cached_x_.empty(), name() << ": backward without forward");
  const std::int64_t batch = cached_x_.size(0), tokens = cached_x_.size(1);
  const std::int64_t rows = batch * tokens;
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  CRISP_CHECK(grad_out.dim() == 3 && grad_out.size(0) == batch &&
                  grad_out.size(1) == tokens && grad_out.size(2) == dim_,
              name() << ": grad_out shape mismatch");

  // Output projection.
  Tensor d_o = project_backward(grad_out, cached_o_, wo_, bo_, rows, dim_);

  Tensor dq({batch, tokens, dim_});
  Tensor dk({batch, tokens, dim_});
  Tensor dv({batch, tokens, dim_});

  // Mirror of the forward partition: each (b, h) pair writes only its own
  // `off` column band of dq/dk/dv (rows of one sample, columns of one
  // head), so the head loop threads with disjoint writes; the dS scratch
  // is per-(b, h).
  kernels::parallel_for(
      batch * heads_,
      [&](std::int64_t p0, std::int64_t p1) {
        for (std::int64_t bh = p0; bh < p1; ++bh) {
          const std::int64_t b = bh / heads_, h = bh % heads_;
          const std::int64_t off = h * head_dim_;
          const float* a = cached_attn_.data() + (bh * tokens) * tokens;
          // dA = dO_h · V_hᵀ ; dV_h = Aᵀ · dO_h
          std::vector<float> da(static_cast<std::size_t>(tokens * tokens),
                                0.0f);
          for (std::int64_t i = 0; i < tokens; ++i) {
            const float* doi = d_o.data() + (b * tokens + i) * dim_ + off;
            for (std::int64_t j = 0; j < tokens; ++j) {
              const float* vj = cached_v_.data() + (b * tokens + j) * dim_ + off;
              float acc = 0.0f;
              for (std::int64_t d = 0; d < head_dim_; ++d) acc += doi[d] * vj[d];
              da[static_cast<std::size_t>(i * tokens + j)] = acc;

              const float aij = a[i * tokens + j];
              float* dvj = dv.data() + (b * tokens + j) * dim_ + off;
              for (std::int64_t d = 0; d < head_dim_; ++d) dvj[d] += aij * doi[d];
            }
          }
          // Softmax backward: dS_ij = A_ij (dA_ij − Σ_k dA_ik A_ik).
          for (std::int64_t i = 0; i < tokens; ++i) {
            double dot = 0.0;
            for (std::int64_t j = 0; j < tokens; ++j)
              dot += static_cast<double>(da[static_cast<std::size_t>(i * tokens + j)]) *
                     a[i * tokens + j];
            for (std::int64_t j = 0; j < tokens; ++j) {
              const std::size_t idx = static_cast<std::size_t>(i * tokens + j);
              da[idx] = a[i * tokens + j] *
                        (da[idx] - static_cast<float>(dot));  // now holds dS
            }
          }
          // dQ_h = dS · K_h · scale ; dK_h = dSᵀ · Q_h · scale
          for (std::int64_t i = 0; i < tokens; ++i) {
            float* dqi = dq.data() + (b * tokens + i) * dim_ + off;
            for (std::int64_t j = 0; j < tokens; ++j) {
              const float ds = da[static_cast<std::size_t>(i * tokens + j)] * scale;
              const float* kj = cached_k_.data() + (b * tokens + j) * dim_ + off;
              const float* qi = cached_q_.data() + (b * tokens + i) * dim_ + off;
              float* dkj = dk.data() + (b * tokens + j) * dim_ + off;
              for (std::int64_t d = 0; d < head_dim_; ++d) {
                dqi[d] += ds * kj[d];
                dkj[d] += ds * qi[d];
              }
            }
          }
        }
      },
      kernels::rows_grain(3 * tokens * tokens * head_dim_));

  Tensor dx = project_backward(dq, cached_x_, wq_, bq_, rows, dim_);
  dx.add_(project_backward(dk, cached_x_, wk_, bk_, rows, dim_));
  dx.add_(project_backward(dv, cached_x_, wv_, bv_, rows, dim_));
  dx.reshape_inplace({batch, tokens, dim_});
  return dx;
}

std::vector<Parameter*> MultiHeadSelfAttention::parameters() {
  return {&wq_, &wk_, &wv_, &wo_, &bq_, &bk_, &bv_, &bo_};
}

}  // namespace crisp::nn
