// Multi-head self-attention with hand-derived backward — the core of the
// transformer extension (the paper's stated future work: "extend these
// results to transformer-based architectures").
//
// All four projection matrices (Q, K, V, output) are stored (out, in) like
// Linear weights, so they are prunable S x K matrices for CRISP exactly as
// convolutions are.
#pragma once

#include "nn/layer.h"
#include "tensor/rng.h"

namespace crisp::nn {

class MultiHeadSelfAttention final : public Layer {
 public:
  /// `dim` must divide evenly into `heads`.
  MultiHeadSelfAttention(std::string name, std::int64_t dim,
                         std::int64_t heads, Rng& rng);

  /// x: (B, T, dim) -> (B, T, dim).
  Tensor forward(const Tensor& x, bool train) override;
  Tensor forward_eval(const Tensor& x) const override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override;

  std::int64_t dim() const { return dim_; }
  std::int64_t heads() const { return heads_; }

 private:
  /// Everything one forward computes. `forward` moves the intermediates
  /// into the training caches; the const eval path drops them.
  struct ForwardState {
    Tensor q, k, v, attn, o, y;
  };
  ForwardState run_forward(const Tensor& x) const;

  std::int64_t dim_;
  std::int64_t heads_;
  std::int64_t head_dim_;
  Parameter wq_, wk_, wv_, wo_;
  Parameter bq_, bk_, bv_, bo_;

  // Forward caches (training mode).
  Tensor cached_x_;      ///< (B, T, D)
  Tensor cached_q_;      ///< (B, T, D)
  Tensor cached_k_;
  Tensor cached_v_;
  Tensor cached_attn_;   ///< (B, H, T, T) softmax weights
  Tensor cached_o_;      ///< (B, T, D) pre-output-projection
};

}  // namespace crisp::nn
