#include "nn/flops.h"

namespace crisp::nn {

namespace {

void collect_leaves(Layer& layer, std::vector<Layer*>& out) {
  auto kids = layer.children();
  if (kids.empty()) {
    out.push_back(&layer);
    return;
  }
  for (Layer* k : kids) collect_leaves(*k, out);
}

}  // namespace

std::vector<Layer*> leaf_layers(Layer& root) {
  std::vector<Layer*> out;
  collect_leaves(root, out);
  return out;
}

std::vector<Layer*> prunable_layers(Layer& root) {
  std::vector<Layer*> out;
  for (Layer* l : leaf_layers(root)) {
    for (Parameter* p : l->parameters()) {
      if (p->prunable) {
        out.push_back(l);
        break;
      }
    }
  }
  return out;
}

FlopsReport count_flops(Sequential& model, const Shape& input_shape) {
  Tensor dummy(input_shape);
  (void)model.forward(dummy, /*train=*/false);

  FlopsReport report;
  for (Layer* l : leaf_layers(model)) {
    if (l->last_dense_macs() == 0) continue;  // non-GEMM layer
    LayerFlops lf;
    lf.name = l->name();
    lf.dense_macs = l->last_dense_macs();
    lf.sparse_macs = l->last_sparse_macs();
    for (Parameter* p : l->parameters()) {
      if (p->prunable && p->has_mask()) {
        lf.weight_sparsity = p->mask_sparsity();
        break;
      }
    }
    report.dense_total += lf.dense_macs;
    report.sparse_total += lf.sparse_macs;
    report.layers.push_back(std::move(lf));
  }
  return report;
}

}  // namespace crisp::nn
