// Fully-connected layer: y = x·Wᵀ + b, W stored (out, in).
//
// The (out, in) layout is already the paper's reshaped S x K matrix
// (S = out features, K = in features), so CRISP masks apply directly.
#pragma once

#include "nn/layer.h"
#include "tensor/rng.h"

namespace crisp::nn {

class Linear final : public Layer {
 public:
  Linear(std::string name, std::int64_t in_features, std::int64_t out_features,
         Rng& rng, bool bias = true, bool prunable = true);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor forward_eval(const Tensor& x) const override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override;
  bool set_gemm_hook(GemmHook hook) override;

  Parameter& weight() { return weight_; }
  std::int64_t in_features() const { return in_features_; }
  std::int64_t out_features() const { return out_features_; }

 private:
  /// The shared math of both forwards: hooked (packed) or dense GEMM plus
  /// bias, no caching and no MAC bookkeeping.
  Tensor compute_forward(const Tensor& x, bool use_hook) const;

  std::int64_t in_features_;
  std::int64_t out_features_;
  bool has_bias_;
  Parameter weight_;
  Parameter bias_;
  Tensor cached_input_;
  GemmHook gemm_hook_;  ///< packed-execution override for eval forwards
};

}  // namespace crisp::nn
