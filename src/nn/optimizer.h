// SGD with momentum and weight decay (the paper's training setup, §IV-A).
//
// Straight-through-estimator contract: updates are applied to the *dense*
// weights — gradients already are d(loss)/d(effective weight) (see
// nn/layer.h) — so masked-out weights continue to evolve and can be revived
// when the pruner re-selects masks.
#pragma once

#include <vector>

#include "nn/layer.h"

namespace crisp::nn {

struct SgdConfig {
  float lr = 0.1f;
  float momentum = 0.9f;
  float weight_decay = 4e-5f;  // paper §IV-A
};

class Sgd {
 public:
  Sgd(std::vector<Parameter*> params, const SgdConfig& cfg);

  /// One update from the currently accumulated gradients.
  void step();
  void zero_grad();

  void set_lr(float lr) { cfg_.lr = lr; }
  float lr() const { return cfg_.lr; }

 private:
  std::vector<Parameter*> params_;
  std::vector<Tensor> velocity_;
  SgdConfig cfg_;
};

}  // namespace crisp::nn
