// Softmax cross-entropy loss over integer labels.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace crisp::nn {

struct LossResult {
  float value = 0.0f;  ///< mean cross-entropy over the batch
  Tensor grad;         ///< d(loss)/d(logits), shape (B, C)
};

/// Numerically stable softmax cross-entropy; labels are class indices.
LossResult cross_entropy(const Tensor& logits,
                         const std::vector<std::int64_t>& labels);

/// Row-wise softmax probabilities (B, C) — exposed for tests/examples.
Tensor softmax(const Tensor& logits);

}  // namespace crisp::nn
