#include "nn/batchnorm.h"

#include <cmath>

#include "kernels/parallel_for.h"

namespace crisp::nn {

BatchNorm2d::BatchNorm2d(std::string name, std::int64_t channels,
                         float momentum, float eps)
    : Layer(std::move(name)),
      channels_(channels),
      momentum_(momentum),
      eps_(eps) {
  gamma_.name = this->name() + ".gamma";
  gamma_.value = Tensor::ones({channels});
  gamma_.grad = Tensor::zeros({channels});
  beta_.name = this->name() + ".beta";
  beta_.value = Tensor::zeros({channels});
  beta_.grad = Tensor::zeros({channels});
  running_mean_ = Tensor::zeros({channels});
  running_var_ = Tensor::ones({channels});
}

void BatchNorm2d::check_input(const Tensor& x) const {
  CRISP_CHECK(x.dim() == 4 && x.size(1) == channels_,
              name() << ": expected (B," << channels_ << ",H,W), got "
                     << shape_to_string(x.shape()));
}

Tensor BatchNorm2d::forward(const Tensor& x, bool train) {
  if (!train) return forward_eval(x);
  check_input(x);
  const std::int64_t batch = x.size(0), hw = x.size(2) * x.size(3);
  const std::int64_t plane = channels_ * hw;
  Tensor y(x.shape());

  cached_xhat_ = Tensor(x.shape());
  cached_inv_std_ = Tensor({channels_});
  cached_batch_ = batch;
  cached_hw_ = hw;
  const double count = static_cast<double>(batch * hw);
  // Channels are independent: each owns its statistics, its running-stat
  // slots, and its (b, c) planes of y/xhat, so the channel loop threads
  // with disjoint writes and a per-channel accumulation order that never
  // depends on the partition — bit-identical at any thread count.
  kernels::parallel_for(
      channels_,
      [&](std::int64_t c0, std::int64_t c1) {
        for (std::int64_t c = c0; c < c1; ++c) {
          double sum = 0.0, sq = 0.0;
          for (std::int64_t b = 0; b < batch; ++b) {
            const float* p = x.data() + b * plane + c * hw;
            for (std::int64_t i = 0; i < hw; ++i) {
              sum += p[i];
              sq += static_cast<double>(p[i]) * p[i];
            }
          }
          const float mean = static_cast<float>(sum / count);
          const float var = static_cast<float>(sq / count - mean * mean);
          const float inv_std = 1.0f / std::sqrt(var + eps_);
          cached_inv_std_[c] = inv_std;
          running_mean_[c] =
              (1.0f - momentum_) * running_mean_[c] + momentum_ * mean;
          running_var_[c] =
              (1.0f - momentum_) * running_var_[c] + momentum_ * var;
          const float g = gamma_.value[c], bta = beta_.value[c];
          for (std::int64_t b = 0; b < batch; ++b) {
            const float* p = x.data() + b * plane + c * hw;
            float* xh = cached_xhat_.data() + b * plane + c * hw;
            float* out = y.data() + b * plane + c * hw;
            for (std::int64_t i = 0; i < hw; ++i) {
              xh[i] = (p[i] - mean) * inv_std;
              out[i] = g * xh[i] + bta;
            }
          }
        }
      },
      kernels::rows_grain(3 * batch * hw));
  return y;
}

Tensor BatchNorm2d::forward_eval(const Tensor& x) const {
  check_input(x);
  const std::int64_t batch = x.size(0), hw = x.size(2) * x.size(3);
  Tensor y(x.shape());
  // Every (b, c) plane normalises independently with frozen statistics.
  kernels::parallel_for(
      batch * channels_,
      [&](std::int64_t p0, std::int64_t p1) {
        for (std::int64_t bc = p0; bc < p1; ++bc) {
          const std::int64_t c = bc % channels_;
          const float mean = running_mean_[c];
          const float inv_std = 1.0f / std::sqrt(running_var_[c] + eps_);
          const float g = gamma_.value[c], bta = beta_.value[c];
          const float* p = x.data() + bc * hw;
          float* out = y.data() + bc * hw;
          for (std::int64_t i = 0; i < hw; ++i)
            out[i] = g * (p[i] - mean) * inv_std + bta;
        }
      },
      kernels::rows_grain(hw));
  return y;
}

Tensor BatchNorm2d::backward(const Tensor& grad_out) {
  CRISP_CHECK(!cached_xhat_.empty(),
              name() << ": backward called without training forward");
  const std::int64_t batch = cached_batch_, hw = cached_hw_;
  const std::int64_t plane = channels_ * hw;
  const double count = static_cast<double>(batch * hw);
  Tensor grad_in(grad_out.shape());

  // Same partitioning argument as the training forward: every channel owns
  // its reduction sums, its gamma/beta gradient slots, and its (b, c) planes
  // of grad_in, so the channel loop threads with disjoint writes and a
  // per-channel accumulation order that never depends on the partition.
  kernels::parallel_for(
      channels_,
      [&](std::int64_t c0, std::int64_t c1) {
        for (std::int64_t c = c0; c < c1; ++c) {
          // Standard batch-norm backward:
          // dxhat = dy * gamma
          // dx = inv_std/N * (N*dxhat - Σdxhat - xhat*Σ(dxhat*xhat))
          double sum_dy = 0.0, sum_dy_xhat = 0.0;
          for (std::int64_t b = 0; b < batch; ++b) {
            const float* dy = grad_out.data() + b * plane + c * hw;
            const float* xh = cached_xhat_.data() + b * plane + c * hw;
            for (std::int64_t i = 0; i < hw; ++i) {
              sum_dy += dy[i];
              sum_dy_xhat += static_cast<double>(dy[i]) * xh[i];
            }
          }
          gamma_.grad[c] += static_cast<float>(sum_dy_xhat);
          beta_.grad[c] += static_cast<float>(sum_dy);

          const float g = gamma_.value[c];
          const float inv_std = cached_inv_std_[c];
          const float mean_dy = static_cast<float>(sum_dy / count);
          const float mean_dy_xhat = static_cast<float>(sum_dy_xhat / count);
          for (std::int64_t b = 0; b < batch; ++b) {
            const float* dy = grad_out.data() + b * plane + c * hw;
            const float* xh = cached_xhat_.data() + b * plane + c * hw;
            float* dx = grad_in.data() + b * plane + c * hw;
            for (std::int64_t i = 0; i < hw; ++i)
              dx[i] = g * inv_std * (dy[i] - mean_dy - xh[i] * mean_dy_xhat);
          }
        }
      },
      kernels::rows_grain(3 * batch * hw));
  return grad_in;
}

std::vector<Parameter*> BatchNorm2d::parameters() { return {&gamma_, &beta_}; }

std::vector<NamedBuffer> BatchNorm2d::buffers() {
  return {{name() + ".running_mean", &running_mean_},
          {name() + ".running_var", &running_var_}};
}

}  // namespace crisp::nn
