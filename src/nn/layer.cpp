#include "nn/layer.h"

namespace crisp::nn {

void Parameter::ensure_mask() {
  if (!has_mask()) mask = Tensor::ones(value.shape());
}

Tensor Parameter::effective_value() const {
  if (!has_mask()) return value;
  return value.mul(mask);
}

void Parameter::bake_mask() {
  if (has_mask()) value.mul_(mask);
}

double Parameter::mask_sparsity() const {
  if (!has_mask()) return 0.0;
  return mask.zero_fraction();
}

MatrixView Parameter::value_matrix() {
  CRISP_CHECK(matrix_rows > 0 && matrix_cols > 0,
              "parameter " << name << " has no matrix interpretation");
  return as_matrix(value, matrix_rows, matrix_cols);
}

ConstMatrixView Parameter::value_matrix() const {
  CRISP_CHECK(matrix_rows > 0 && matrix_cols > 0,
              "parameter " << name << " has no matrix interpretation");
  return as_matrix(value, matrix_rows, matrix_cols);
}

MatrixView Parameter::mask_matrix() {
  CRISP_CHECK(has_mask(), "parameter " << name << " has no mask");
  return as_matrix(mask, matrix_rows, matrix_cols);
}

MatrixView Parameter::grad_matrix() {
  CRISP_CHECK(!grad.empty(), "parameter " << name << " has no gradient");
  return as_matrix(grad, matrix_rows, matrix_cols);
}

Tensor Layer::forward_eval(const Tensor& x) const {
  (void)x;
  CRISP_CHECK(false, name() << ": forward_eval not implemented — this layer "
                               "cannot join a serve::CompiledModel");
  return Tensor();
}

void Layer::zero_grad() {
  for (Parameter* p : parameters()) {
    if (p->grad.empty()) p->grad = Tensor::zeros(p->value.shape());
    p->grad.zero();
  }
}

}  // namespace crisp::nn
