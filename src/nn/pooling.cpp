#include "nn/pooling.h"

#include "kernels/parallel_for.h"

namespace crisp::nn {

Tensor MaxPool2d::compute_forward(const Tensor& x,
                                  std::vector<std::int64_t>* argmax_out) const {
  CRISP_CHECK(x.dim() == 4, name() << " expects (B,C,H,W)");
  const std::int64_t batch = x.size(0), ch = x.size(1), h = x.size(2),
                     w = x.size(3);
  CRISP_CHECK(h >= kernel_ && w >= kernel_,
              name() << ": input " << h << "x" << w << " smaller than kernel "
                     << kernel_);
  const std::int64_t oh = (h - kernel_) / stride_ + 1;
  const std::int64_t ow = (w - kernel_) / stride_ + 1;
  Tensor y({batch, ch, oh, ow});
  std::int64_t* argmax = nullptr;
  if (argmax_out != nullptr) {
    argmax_out->assign(static_cast<std::size_t>(batch * ch * oh * ow), 0);
    argmax = argmax_out->data();
  }

  // Each (b, c) plane pools independently and writes a disjoint slice of y
  // (and of argmax), so the plane loop threads with bit-identical results
  // at any thread count.
  kernels::parallel_for(
      batch * ch,
      [&](std::int64_t p0, std::int64_t p1) {
        for (std::int64_t bc = p0; bc < p1; ++bc) {
          const float* plane = x.data() + bc * h * w;
          float* out = y.data() + bc * oh * ow;
          std::int64_t* amax = argmax == nullptr ? nullptr : argmax + bc * oh * ow;
          for (std::int64_t oy = 0; oy < oh; ++oy) {
            for (std::int64_t ox = 0; ox < ow; ++ox) {
              float best = -std::numeric_limits<float>::infinity();
              std::int64_t best_idx = 0;
              for (std::int64_t ky = 0; ky < kernel_; ++ky) {
                for (std::int64_t kx = 0; kx < kernel_; ++kx) {
                  const std::int64_t iy = oy * stride_ + ky;
                  const std::int64_t ix = ox * stride_ + kx;
                  const float v = plane[iy * w + ix];
                  if (v > best) {
                    best = v;
                    best_idx = iy * w + ix;
                  }
                }
              }
              out[oy * ow + ox] = best;
              if (amax != nullptr) amax[oy * ow + ox] = best_idx;
            }
          }
        }
      },
      kernels::rows_grain(oh * ow * kernel_ * kernel_));
  return y;
}

Tensor MaxPool2d::forward(const Tensor& x, bool train) {
  if (!train) return compute_forward(x, nullptr);
  Tensor y = compute_forward(x, &cached_argmax_);
  cached_in_shape_ = x.shape();
  return y;
}

Tensor MaxPool2d::forward_eval(const Tensor& x) const {
  return compute_forward(x, nullptr);
}

Tensor MaxPool2d::backward(const Tensor& grad_out) {
  CRISP_CHECK(!cached_in_shape_.empty(), name() << ": backward without forward");
  const std::int64_t batch = cached_in_shape_[0], ch = cached_in_shape_[1],
                     h = cached_in_shape_[2], w = cached_in_shape_[3];
  const std::int64_t oh = grad_out.size(2), ow = grad_out.size(3);
  Tensor grad_in(cached_in_shape_);
  // Argmax indices stay inside their own (b, c) plane, so the plane loop
  // threads with disjoint scatter targets.
  kernels::parallel_for(
      batch * ch,
      [&](std::int64_t p0, std::int64_t p1) {
        for (std::int64_t bc = p0; bc < p1; ++bc) {
          const float* dy = grad_out.data() + bc * oh * ow;
          float* dx = grad_in.data() + bc * h * w;
          const std::int64_t* amax = cached_argmax_.data() + bc * oh * ow;
          for (std::int64_t i = 0; i < oh * ow; ++i) dx[amax[i]] += dy[i];
        }
      },
      kernels::rows_grain(oh * ow));
  return grad_in;
}

namespace {

/// Shared eval/train math of GlobalAvgPool: (B, C, H, W) -> (B, C) means.
Tensor global_avg_pool(const Tensor& x, const std::string& layer_name) {
  CRISP_CHECK(x.dim() == 4, layer_name << " expects (B,C,H,W)");
  const std::int64_t batch = x.size(0), ch = x.size(1),
                     hw = x.size(2) * x.size(3);
  Tensor y({batch, ch});
  kernels::parallel_for(
      batch * ch,
      [&](std::int64_t p0, std::int64_t p1) {
        for (std::int64_t bc = p0; bc < p1; ++bc) {
          const float* plane = x.data() + bc * hw;
          double acc = 0.0;
          for (std::int64_t i = 0; i < hw; ++i) acc += plane[i];
          y[bc] = static_cast<float>(acc / static_cast<double>(hw));
        }
      },
      kernels::rows_grain(hw));
  return y;
}

}  // namespace

Tensor GlobalAvgPool::forward(const Tensor& x, bool train) {
  Tensor y = global_avg_pool(x, name());
  if (train) cached_in_shape_ = x.shape();
  return y;
}

Tensor GlobalAvgPool::forward_eval(const Tensor& x) const {
  return global_avg_pool(x, name());
}

Tensor GlobalAvgPool::backward(const Tensor& grad_out) {
  CRISP_CHECK(!cached_in_shape_.empty(), name() << ": backward without forward");
  const std::int64_t batch = cached_in_shape_[0], ch = cached_in_shape_[1],
                     hw = cached_in_shape_[2] * cached_in_shape_[3];
  const float inv = 1.0f / static_cast<float>(hw);
  Tensor grad_in(cached_in_shape_);
  kernels::parallel_for(
      batch * ch,
      [&](std::int64_t p0, std::int64_t p1) {
        for (std::int64_t bc = p0; bc < p1; ++bc) {
          const float g = grad_out[bc] * inv;
          float* dx = grad_in.data() + bc * hw;
          for (std::int64_t i = 0; i < hw; ++i) dx[i] = g;
        }
      },
      kernels::rows_grain(hw));
  return grad_in;
}

}  // namespace crisp::nn
