#include "nn/pooling.h"

namespace crisp::nn {

Tensor MaxPool2d::forward(const Tensor& x, bool train) {
  CRISP_CHECK(x.dim() == 4, name() << " expects (B,C,H,W)");
  const std::int64_t batch = x.size(0), ch = x.size(1), h = x.size(2),
                     w = x.size(3);
  CRISP_CHECK(h >= kernel_ && w >= kernel_,
              name() << ": input " << h << "x" << w << " smaller than kernel "
                     << kernel_);
  const std::int64_t oh = (h - kernel_) / stride_ + 1;
  const std::int64_t ow = (w - kernel_) / stride_ + 1;
  Tensor y({batch, ch, oh, ow});
  cached_argmax_.assign(static_cast<std::size_t>(batch * ch * oh * ow), 0);

  for (std::int64_t b = 0; b < batch; ++b) {
    for (std::int64_t c = 0; c < ch; ++c) {
      const float* plane = x.data() + (b * ch + c) * h * w;
      float* out = y.data() + (b * ch + c) * oh * ow;
      std::int64_t* amax =
          cached_argmax_.data() + (b * ch + c) * oh * ow;
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < ow; ++ox) {
          float best = -std::numeric_limits<float>::infinity();
          std::int64_t best_idx = 0;
          for (std::int64_t ky = 0; ky < kernel_; ++ky) {
            for (std::int64_t kx = 0; kx < kernel_; ++kx) {
              const std::int64_t iy = oy * stride_ + ky;
              const std::int64_t ix = ox * stride_ + kx;
              const float v = plane[iy * w + ix];
              if (v > best) {
                best = v;
                best_idx = iy * w + ix;
              }
            }
          }
          out[oy * ow + ox] = best;
          amax[oy * ow + ox] = best_idx;
        }
      }
    }
  }
  if (train) cached_in_shape_ = x.shape();
  return y;
}

Tensor MaxPool2d::backward(const Tensor& grad_out) {
  CRISP_CHECK(!cached_in_shape_.empty(), name() << ": backward without forward");
  const std::int64_t batch = cached_in_shape_[0], ch = cached_in_shape_[1],
                     h = cached_in_shape_[2], w = cached_in_shape_[3];
  const std::int64_t oh = grad_out.size(2), ow = grad_out.size(3);
  Tensor grad_in(cached_in_shape_);
  for (std::int64_t b = 0; b < batch; ++b) {
    for (std::int64_t c = 0; c < ch; ++c) {
      const float* dy = grad_out.data() + (b * ch + c) * oh * ow;
      float* dx = grad_in.data() + (b * ch + c) * h * w;
      const std::int64_t* amax = cached_argmax_.data() + (b * ch + c) * oh * ow;
      for (std::int64_t i = 0; i < oh * ow; ++i) dx[amax[i]] += dy[i];
    }
  }
  return grad_in;
}

Tensor GlobalAvgPool::forward(const Tensor& x, bool train) {
  CRISP_CHECK(x.dim() == 4, name() << " expects (B,C,H,W)");
  const std::int64_t batch = x.size(0), ch = x.size(1), hw = x.size(2) * x.size(3);
  Tensor y({batch, ch});
  for (std::int64_t b = 0; b < batch; ++b) {
    for (std::int64_t c = 0; c < ch; ++c) {
      const float* plane = x.data() + (b * ch + c) * hw;
      double acc = 0.0;
      for (std::int64_t i = 0; i < hw; ++i) acc += plane[i];
      y[b * ch + c] = static_cast<float>(acc / static_cast<double>(hw));
    }
  }
  if (train) cached_in_shape_ = x.shape();
  return y;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_out) {
  CRISP_CHECK(!cached_in_shape_.empty(), name() << ": backward without forward");
  const std::int64_t batch = cached_in_shape_[0], ch = cached_in_shape_[1],
                     hw = cached_in_shape_[2] * cached_in_shape_[3];
  const float inv = 1.0f / static_cast<float>(hw);
  Tensor grad_in(cached_in_shape_);
  for (std::int64_t b = 0; b < batch; ++b)
    for (std::int64_t c = 0; c < ch; ++c) {
      const float g = grad_out[b * ch + c] * inv;
      float* dx = grad_in.data() + (b * ch + c) * hw;
      for (std::int64_t i = 0; i < hw; ++i) dx[i] = g;
    }
  return grad_in;
}

}  // namespace crisp::nn
