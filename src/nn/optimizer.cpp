#include "nn/optimizer.h"

#include "kernels/parallel_for.h"

namespace crisp::nn {

Sgd::Sgd(std::vector<Parameter*> params, const SgdConfig& cfg)
    : params_(std::move(params)), cfg_(cfg) {
  velocity_.reserve(params_.size());
  for (Parameter* p : params_) {
    CRISP_CHECK(p != nullptr, "null parameter handed to Sgd");
    velocity_.push_back(Tensor::zeros(p->value.shape()));
    if (p->grad.empty()) p->grad = Tensor::zeros(p->value.shape());
  }
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Parameter& p = *params_[i];
    Tensor& v = velocity_[i];
    const float lr = cfg_.lr, mu = cfg_.momentum, wd = cfg_.weight_decay;
    // Elementwise update — each slot owns its velocity and weight, so the
    // loop threads with disjoint writes (large parameters dominate a
    // training step once backward itself is parallel).
    kernels::parallel_for(
        p.value.numel(),
        [&](std::int64_t j0, std::int64_t j1) {
          for (std::int64_t j = j0; j < j1; ++j) {
            const float g = p.grad[j] + wd * p.value[j];
            v[j] = mu * v[j] - lr * g;
            p.value[j] += v[j];
          }
        },
        kernels::rows_grain(4));
  }
}

void Sgd::zero_grad() {
  for (Parameter* p : params_) p->grad.zero();
}

}  // namespace crisp::nn
