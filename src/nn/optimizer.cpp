#include "nn/optimizer.h"

namespace crisp::nn {

Sgd::Sgd(std::vector<Parameter*> params, const SgdConfig& cfg)
    : params_(std::move(params)), cfg_(cfg) {
  velocity_.reserve(params_.size());
  for (Parameter* p : params_) {
    CRISP_CHECK(p != nullptr, "null parameter handed to Sgd");
    velocity_.push_back(Tensor::zeros(p->value.shape()));
    if (p->grad.empty()) p->grad = Tensor::zeros(p->value.shape());
  }
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Parameter& p = *params_[i];
    Tensor& v = velocity_[i];
    const float lr = cfg_.lr, mu = cfg_.momentum, wd = cfg_.weight_decay;
    for (std::int64_t j = 0; j < p.value.numel(); ++j) {
      const float g = p.grad[j] + wd * p.value[j];
      v[j] = mu * v[j] - lr * g;
      p.value[j] += v[j];
    }
  }
}

void Sgd::zero_grad() {
  for (Parameter* p : params_) p->grad.zero();
}

}  // namespace crisp::nn
