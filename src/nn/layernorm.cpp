#include "nn/layernorm.h"

#include <cmath>
#include <numbers>

#include "kernels/parallel_for.h"
#include "kernels/reduce.h"

namespace crisp::nn {

LayerNorm::LayerNorm(std::string name, std::int64_t features, float eps)
    : Layer(std::move(name)), features_(features), eps_(eps) {
  gamma_.name = this->name() + ".gamma";
  gamma_.value = Tensor::ones({features});
  gamma_.grad = Tensor::zeros({features});
  beta_.name = this->name() + ".beta";
  beta_.value = Tensor::zeros({features});
  beta_.grad = Tensor::zeros({features});
}

Tensor LayerNorm::compute_forward(const Tensor& x, Tensor* xhat,
                                  Tensor* inv_std_out) const {
  CRISP_CHECK(x.dim() >= 1 && x.size(-1) == features_,
              name() << ": last dimension must be " << features_ << ", got "
                     << shape_to_string(x.shape()));
  const std::int64_t rows = x.numel() / features_;
  Tensor y(x.shape());
  // Each row normalises independently and owns its slice of y / xhat /
  // inv_std, so the row loop threads with disjoint writes.
  kernels::parallel_for(
      rows,
      [&](std::int64_t r0, std::int64_t r1) {
        for (std::int64_t r = r0; r < r1; ++r) {
          const float* in = x.data() + r * features_;
          float* out = y.data() + r * features_;
          double sum = 0.0, sq = 0.0;
          for (std::int64_t i = 0; i < features_; ++i) {
            sum += in[i];
            sq += static_cast<double>(in[i]) * in[i];
          }
          const float mean =
              static_cast<float>(sum / static_cast<double>(features_));
          const float var =
              static_cast<float>(sq / static_cast<double>(features_)) -
              mean * mean;
          const float inv_std = 1.0f / std::sqrt(var + eps_);
          for (std::int64_t i = 0; i < features_; ++i) {
            const float xh = (in[i] - mean) * inv_std;
            out[i] = gamma_.value[i] * xh + beta_.value[i];
            if (xhat != nullptr) (*xhat)[r * features_ + i] = xh;
          }
          if (inv_std_out != nullptr) (*inv_std_out)[r] = inv_std;
        }
      },
      kernels::rows_grain(3 * features_));
  return y;
}

Tensor LayerNorm::forward(const Tensor& x, bool train) {
  if (!train) return compute_forward(x, nullptr, nullptr);
  cached_xhat_ = Tensor(x.shape());
  cached_inv_std_ = Tensor({x.numel() / features_});
  return compute_forward(x, &cached_xhat_, &cached_inv_std_);
}

Tensor LayerNorm::forward_eval(const Tensor& x) const {
  return compute_forward(x, nullptr, nullptr);
}

Tensor LayerNorm::backward(const Tensor& grad_out) {
  CRISP_CHECK(!cached_xhat_.empty(), name() << ": backward without forward");
  CRISP_CHECK(grad_out.same_shape(cached_xhat_), name() << ": shape mismatch");
  const std::int64_t rows = grad_out.numel() / features_;
  Tensor grad_in(grad_out.shape());
  const float inv_d = 1.0f / static_cast<float>(features_);
  // grad_in rows are write-disjoint, but every row contributes to the same
  // gamma/beta gradients — the row loop therefore threads through
  // parallel_accumulate with a fused per-chunk [dgamma | dbeta] buffer
  // merged in fixed tree order, so parameter gradients stay bit-identical
  // at any thread count.
  Tensor fused({2 * features_});
  kernels::parallel_accumulate(
      rows, kernels::rows_grain(4 * features_), 2 * features_,
      [&](float* acc, std::int64_t r0, std::int64_t r1) {
        float* dgamma = acc;
        float* dbeta = acc + features_;
        for (std::int64_t r = r0; r < r1; ++r) {
          const float* dy = grad_out.data() + r * features_;
          const float* xh = cached_xhat_.data() + r * features_;
          float* dx = grad_in.data() + r * features_;
          double sum_dxhat = 0.0, sum_dxhat_xhat = 0.0;
          for (std::int64_t i = 0; i < features_; ++i) {
            const float dxhat = dy[i] * gamma_.value[i];
            sum_dxhat += dxhat;
            sum_dxhat_xhat += static_cast<double>(dxhat) * xh[i];
            dgamma[i] += dy[i] * xh[i];
            dbeta[i] += dy[i];
          }
          const float inv_std = cached_inv_std_[r];
          const float mean_dxhat = static_cast<float>(sum_dxhat) * inv_d;
          const float mean_dxhat_xhat =
              static_cast<float>(sum_dxhat_xhat) * inv_d;
          for (std::int64_t i = 0; i < features_; ++i) {
            const float dxhat = dy[i] * gamma_.value[i];
            dx[i] = inv_std * (dxhat - mean_dxhat - xh[i] * mean_dxhat_xhat);
          }
        }
      },
      fused.data());
  kernels::parallel_for(
      features_,
      [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i) {
          gamma_.grad[i] += fused[i];
          beta_.grad[i] += fused[features_ + i];
        }
      },
      kernels::rows_grain(1));
  return grad_in;
}

Tensor Gelu::forward_eval(const Tensor& x) const {
  Tensor y(x.shape());
  constexpr float c = 0.7978845608f;  // sqrt(2/pi)
  kernels::parallel_for(
      x.numel(),
      [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i) {
          const float v = x[i];
          y[i] =
              0.5f * v * (1.0f + std::tanh(c * (v + 0.044715f * v * v * v)));
        }
      },
      kernels::rows_grain(8));
  return y;
}

Tensor Gelu::forward(const Tensor& x, bool train) {
  Tensor y = forward_eval(x);
  if (train) cached_input_ = x;
  return y;
}

Tensor Gelu::backward(const Tensor& grad_out) {
  CRISP_CHECK(!cached_input_.empty(), name() << ": backward without forward");
  Tensor grad_in(grad_out.shape());
  constexpr float c = 0.7978845608f;
  kernels::parallel_for(
      grad_out.numel(),
      [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i) {
          const float v = cached_input_[i];
          const float u = c * (v + 0.044715f * v * v * v);
          const float t = std::tanh(u);
          const float du = c * (1.0f + 3.0f * 0.044715f * v * v);
          const float deriv =
              0.5f * (1.0f + t) + 0.5f * v * (1.0f - t * t) * du;
          grad_in[i] = grad_out[i] * deriv;
        }
      },
      kernels::rows_grain(8));
  return grad_in;
}

}  // namespace crisp::nn
