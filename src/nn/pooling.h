// Spatial pooling layers.
#pragma once

#include "nn/layer.h"

namespace crisp::nn {

class MaxPool2d final : public Layer {
 public:
  MaxPool2d(std::string name, std::int64_t kernel = 2, std::int64_t stride = 2)
      : Layer(std::move(name)), kernel_(kernel), stride_(stride) {}

  Tensor forward(const Tensor& x, bool train) override;
  Tensor forward_eval(const Tensor& x) const override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  /// Pooled output; when `argmax` is non-null it is resized (after input
  /// validation) to one entry per output element and receives the flat
  /// input index of every window winner.
  Tensor compute_forward(const Tensor& x,
                         std::vector<std::int64_t>* argmax) const;

  std::int64_t kernel_;
  std::int64_t stride_;
  Shape cached_in_shape_;
  std::vector<std::int64_t> cached_argmax_;  ///< flat input index per output
};

/// Global average pool: (B, C, H, W) -> (B, C).
class GlobalAvgPool final : public Layer {
 public:
  explicit GlobalAvgPool(std::string name) : Layer(std::move(name)) {}
  Tensor forward(const Tensor& x, bool train) override;
  Tensor forward_eval(const Tensor& x) const override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  Shape cached_in_shape_;
};

}  // namespace crisp::nn
