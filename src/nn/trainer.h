// Training and evaluation loops.
#pragma once

#include <functional>

#include "data/dataset.h"
#include "nn/optimizer.h"
#include "nn/sequential.h"

namespace crisp::nn {

struct TrainConfig {
  std::int64_t epochs = 5;
  std::int64_t batch_size = 32;  // paper §IV-A
  SgdConfig sgd;
  /// Multiply lr by this factor after every epoch (1 = constant).
  float lr_decay = 1.0f;
  bool verbose = false;
};

struct EpochStats {
  float loss = 0.0f;
  float accuracy = 0.0f;  ///< training accuracy of the epoch
};

/// Trains in place; returns per-epoch statistics. Deterministic given rng.
std::vector<EpochStats> train(Sequential& model, const data::Dataset& dataset,
                              const TrainConfig& cfg, Rng& rng);

/// Top-1 accuracy over the dataset. When `restrict_classes` is non-empty the
/// argmax is taken over those classes only — the personalized-deployment
/// metric: the user's device only ever answers among the preferred classes.
float evaluate(Sequential& model, const data::Dataset& dataset,
               std::int64_t batch_size = 64,
               const std::vector<std::int64_t>& restrict_classes = {});

/// Mean cross-entropy over the dataset (eval mode).
float evaluate_loss(Sequential& model, const data::Dataset& dataset,
                    std::int64_t batch_size = 64);

}  // namespace crisp::nn
