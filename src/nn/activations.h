// Pointwise activations: ReLU (ResNet/VGG) and ReLU6 (MobileNetV2).
#pragma once

#include "nn/layer.h"

namespace crisp::nn {

class ReLU final : public Layer {
 public:
  /// `cap` < 0 means unbounded ReLU; cap = 6 gives ReLU6.
  explicit ReLU(std::string name, float cap = -1.0f)
      : Layer(std::move(name)), cap_(cap) {}

  Tensor forward(const Tensor& x, bool train) override;
  Tensor forward_eval(const Tensor& x) const override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  float cap_;
  Tensor cached_input_;
};

/// Flattens (B, C, H, W) -> (B, C*H*W).
class Flatten final : public Layer {
 public:
  explicit Flatten(std::string name) : Layer(std::move(name)) {}
  Tensor forward(const Tensor& x, bool train) override;
  Tensor forward_eval(const Tensor& x) const override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  Shape cached_shape_;
};

}  // namespace crisp::nn
