// Tenant-subsystem tests: MaskDelta round-trip and stream robustness,
// overlay-vs-standalone execution parity, Store LRU accounting at fleet
// scale (N >= 2000 registered tenants), and the Router's cold-miss,
// affinity, and deadline semantics.
//
// The load-bearing invariant: a personalization is a *view* of the base,
// not a copy of it. The overlay path (what the Store serves) and the
// standalone path (MaskDelta::apply, what you'd ship to a device) must
// produce bit-identical outputs — same kept blocks in stored order, same
// accumulation order, same per-block-row scales on the int8 path — at any
// kernel thread count.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <functional>
#include <future>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/block_pruning.h"
#include "kernels/parallel_for.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/pooling.h"
#include "tenant/router.h"
#include "testing/fault_injection.h"
#include "thread_guard.h"

namespace crisp::tenant {
namespace {

using core::install_random_hybrid_masks;
using crisp::testing::ThreadGuard;

constexpr std::int64_t kBlock = 8, kN = 2, kM = 4;

std::shared_ptr<nn::Sequential> make_mlp() {
  Rng rng(9);
  auto model = std::make_shared<nn::Sequential>("tenantmlp");
  model->emplace<nn::Linear>("fc1", 32, 24, rng);
  model->emplace<nn::ReLU>("relu");
  model->emplace<nn::Linear>("fc2", 24, 8, rng);
  return model;
}

/// Conv net that accepts any input H, W (global pooling before the head).
std::shared_ptr<nn::Sequential> make_convnet() {
  Rng rng(7);
  auto model = std::make_shared<nn::Sequential>("tenantnet");
  nn::Conv2dSpec c1;
  c1.in_channels = 3;
  c1.out_channels = 16;
  c1.kernel = 3;
  c1.padding = 1;
  model->emplace<nn::Conv2d>("conv1", c1, rng);
  model->emplace<nn::ReLU>("relu1");
  model->emplace<nn::GlobalAvgPool>("gap");
  model->emplace<nn::Flatten>("flatten");
  model->emplace<nn::Linear>("fc", 16, 8, rng);
  return model;
}

Tensor random_sample(std::uint64_t seed, Shape shape) {
  Rng rng(seed);
  return Tensor::randn(std::move(shape), rng);
}

std::string tenant_id(int i) {
  std::string id = "t";
  id += std::to_string(i);
  return id;
}

/// Zeroes `drop_per_row` *surviving* blocks in every block-row of every
/// masked parameter — the class-aware restriction a tenant pruner would
/// produce on top of the universal pattern. `salt` varies which blocks
/// go, so distinct salts model distinct tenants; per-row drop counts stay
/// uniform (the CRISP invariant MaskDelta::from_model checks).
void drop_surviving_blocks(nn::Sequential& model, std::int64_t drop_per_row,
                           std::uint64_t salt) {
  for (nn::Parameter* p : model.prunable_parameters()) {
    if (!p->has_mask()) continue;
    const std::int64_t rows = p->matrix_rows, cols = p->matrix_cols;
    const std::int64_t grid_rows = (rows + kBlock - 1) / kBlock;
    const std::int64_t grid_cols = (cols + kBlock - 1) / kBlock;
    float* mask = p->mask.data();
    for (std::int64_t br = 0; br < grid_rows; ++br) {
      const std::int64_t r0 = br * kBlock, r1 = std::min(rows, r0 + kBlock);
      std::vector<std::int64_t> survivors;
      for (std::int64_t bc = 0; bc < grid_cols; ++bc) {
        const std::int64_t c0 = bc * kBlock, c1 = std::min(cols, c0 + kBlock);
        bool live = false;
        for (std::int64_t r = r0; r < r1 && !live; ++r)
          for (std::int64_t c = c0; c < c1; ++c)
            if (mask[r * cols + c] != 0.0f) {
              live = true;
              break;
            }
        if (live) survivors.push_back(bc);
      }
      ASSERT_LE(drop_per_row, static_cast<std::int64_t>(survivors.size()))
          << p->name << " block-row " << br;
      for (std::int64_t i = 0; i < drop_per_row; ++i) {
        // Consecutive residues are distinct while drop <= survivor count.
        const std::int64_t bc = survivors[static_cast<std::size_t>(
            (salt + static_cast<std::uint64_t>(br + i)) % survivors.size())];
        const std::int64_t c0 = bc * kBlock, c1 = std::min(cols, c0 + kBlock);
        for (std::int64_t r = r0; r < r1; ++r)
          for (std::int64_t c = c0; c < c1; ++c) mask[r * cols + c] = 0.0f;
      }
    }
  }
}

std::shared_ptr<const BaseArtifact> make_base(const ModelFactory& factory,
                                              std::int64_t pruned_ranks,
                                              bool quantize = false) {
  std::shared_ptr<nn::Sequential> model = factory();
  install_random_hybrid_masks(*model, kBlock, kN, kM, pruned_ranks);
  deploy::PackedModel packed =
      deploy::PackedModel::pack(*model, kBlock, kN, kM);
  if (quantize) packed.quantize_payloads();
  return BaseArtifact::create(
      std::make_shared<const deploy::PackedModel>(std::move(packed)));
}

/// A tenant's delta: the base pattern (same seed as make_base) minus
/// `drop_per_row` extra blocks per row, selected by `salt`.
MaskDelta tenant_delta(const BaseArtifact& base, const ModelFactory& factory,
                       std::int64_t pruned_ranks, std::uint64_t salt,
                       std::int64_t drop_per_row = 1) {
  std::shared_ptr<nn::Sequential> model = factory();
  install_random_hybrid_masks(*model, kBlock, kN, kM, pruned_ranks);
  drop_surviving_blocks(*model, drop_per_row, salt);
  return MaskDelta::from_model(base, *model);
}

/// The zero-copy serving path: overlay kernels over the base arena.
std::shared_ptr<const serve::CompiledModel> compile_overlay_model(
    std::shared_ptr<const BaseArtifact> base,
    std::shared_ptr<const MaskDelta> delta, const ModelFactory& factory,
    std::vector<std::shared_ptr<const OverlayMatrix>>* overlays = nullptr) {
  std::shared_ptr<nn::Sequential> model = factory();
  base->packed().unpack_into(*model);
  OverlayCompile oc = compile_overlay(std::move(model), base, delta);
  if (overlays != nullptr) *overlays = oc.overlays;
  return oc.model;
}

/// The ship-to-device path: a self-contained restricted PackedModel.
std::shared_ptr<const serve::CompiledModel> compile_standalone(
    const BaseArtifact& base, const MaskDelta& delta,
    const ModelFactory& factory) {
  auto packed =
      std::make_shared<const deploy::PackedModel>(delta.apply(base));
  std::shared_ptr<nn::Sequential> model = factory();
  packed->unpack_into(*model);
  return serve::CompiledModel::compile(model, packed);
}

serve::Request make_request(Tensor sample,
                            serve::Priority priority = serve::Priority::kStandard,
                            std::chrono::microseconds deadline =
                                std::chrono::microseconds(0)) {
  serve::Request r;
  r.sample = std::move(sample);
  r.priority = priority;
  r.deadline = deadline;
  return r;
}

/// Serial single-sample reference through the same compiled artifact.
Tensor serial_reference(const serve::CompiledModel& compiled,
                        const Tensor& sample) {
  Shape batched{1};
  batched.insert(batched.end(), sample.shape().begin(), sample.shape().end());
  Tensor out = compiled.run(sample.reshaped(batched));
  Shape flat(out.shape().begin() + 1, out.shape().end());
  return out.reshaped(flat);
}

// ---------------------------------------------------------------------------
// MaskDelta: derivation, stream, robustness.

TEST(MaskDelta, StreamRoundTripAndExactByteAccounting) {
  auto base = make_base(make_mlp, 0);
  MaskDelta delta = tenant_delta(*base, make_mlp, 0, 5);
  ASSERT_EQ(delta.entries().size(), 2u);
  delta.set_scale_overrides("fc1.weight", {0.5f, 1.5f, 2.5f});

  std::stringstream os(std::ios::in | std::ios::out | std::ios::binary);
  delta.write(os);
  // delta_bytes() is what tenant::Store accounts per tenant — it must be
  // the true serialized size, not an estimate.
  EXPECT_EQ(static_cast<std::int64_t>(os.str().size()), delta.delta_bytes());

  const MaskDelta back = MaskDelta::read(os);
  EXPECT_EQ(back.block(), kBlock);
  EXPECT_EQ(back.n(), kN);
  EXPECT_EQ(back.m(), kM);
  ASSERT_EQ(back.entries().size(), delta.entries().size());
  for (std::size_t i = 0; i < delta.entries().size(); ++i) {
    const EntryDelta& a = delta.entries()[i];
    const EntryDelta& b = back.entries()[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.grid_rows, b.grid_rows);
    EXPECT_EQ(a.base_blocks_per_row, b.base_blocks_per_row);
    EXPECT_EQ(a.kept_per_row, b.kept_per_row);
    EXPECT_EQ(a.kept_bits, b.kept_bits);
    EXPECT_EQ(a.scale_overrides, b.scale_overrides);
  }
  EXPECT_NO_THROW(back.validate(*base));
}

MaskDelta read_delta_bytes(const std::string& bytes) {
  std::stringstream is(std::ios::in | std::ios::out | std::ios::binary);
  is.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return MaskDelta::read(is);
}

std::string delta_stream(const MaskDelta& delta) {
  std::stringstream os(std::ios::in | std::ios::out | std::ios::binary);
  delta.write(os);
  return os.str();
}

TEST(MaskDelta, StreamRejectsTruncationAtEveryPrefix) {
  auto base = make_base(make_mlp, 0);
  const std::string bytes = delta_stream(tenant_delta(*base, make_mlp, 0, 2));
  // Every strict prefix must throw the documented runtime_error — no
  // crash, no silently partial delta (exercised under ASan in CI).
  for (std::size_t cut = 0; cut < bytes.size(); ++cut)
    EXPECT_THROW(read_delta_bytes(bytes.substr(0, cut)), std::runtime_error)
        << "prefix of " << cut << " bytes parsed";
}

TEST(MaskDelta, StreamRejectsHeaderAndBitmapCorruption) {
  auto base = make_base(make_mlp, 0);
  const MaskDelta delta = tenant_delta(*base, make_mlp, 0, 3);
  ASSERT_EQ(delta.entries()[0].name, "fc1.weight");
  const std::string bytes = delta_stream(delta);

  const auto mutated = [&](std::size_t offset, char flip) {
    std::string m = bytes;
    m[offset] = static_cast<char>(m[offset] ^ flip);
    return m;
  };
  // Layout: magic u64 @0, version u32 @8, block/n/m @12, entry count @36,
  // then per entry: name (u64 length + chars), grid_rows,
  // base_blocks_per_row, kept_per_row (i64 each), kept_bits array.
  const std::size_t header = 8 + 4 + 24 + 8;
  const std::size_t name_field = 8 + delta.entries()[0].name.size();
  const std::size_t kpr_off = header + name_field + 16;
  const std::size_t bits_off = header + name_field + 24 + 8;

  // Wrong magic and unsupported version throw before any payload parse.
  EXPECT_THROW(read_delta_bytes(mutated(0, 0x5a)), std::runtime_error);
  EXPECT_THROW(read_delta_bytes(mutated(8, 0x01)), std::runtime_error);
  // kept_per_row no longer matching the bitmap popcounts.
  EXPECT_THROW(read_delta_bytes(mutated(kpr_off, 0x01)), std::runtime_error);
  // A flipped bitmap bit changes one row's popcount.
  EXPECT_THROW(read_delta_bytes(mutated(bits_off, 0x01)), std::runtime_error);

  // A set padding bit (past grid_rows * base_blocks_per_row) is rejected
  // even though no popcount changes.
  const EntryDelta& e = delta.entries()[0];
  const std::int64_t total = e.grid_rows * e.base_blocks_per_row;
  ASSERT_NE(total % 8, 0) << "fixture no longer exercises padding bits";
  const std::size_t last =
      bits_off + static_cast<std::size_t>((total + 7) / 8) - 1;
  EXPECT_THROW(read_delta_bytes(mutated(last, static_cast<char>(0x80))),
               std::runtime_error);
}

TEST(MaskDelta, StreamReadsVersion1WithoutTrailer) {
  // Deltas persisted before the integrity upgrade carry version 1 and no
  // CRC32C trailer. They still read — the fleet's existing shards stay
  // loadable — they just don't get corruption cover until re-saved.
  auto base = make_base(make_mlp, 0);
  const MaskDelta delta = tenant_delta(*base, make_mlp, 0, 4);
  std::string bytes = delta_stream(delta);
  bytes[8] = static_cast<char>(1);            // version u32 @8: 2 -> 1
  bytes.resize(bytes.size() - 4);             // drop the CRC trailer
  const MaskDelta back = read_delta_bytes(bytes);
  EXPECT_NO_THROW(back.validate(*base));
  // Re-writing emits the current version: byte-identical to the original
  // v2 stream, trailer included.
  EXPECT_EQ(delta_stream(back), delta_stream(delta));
}

TEST(MaskDelta, FromModelRejectsForeignBlocksAndNonUniformRows) {
  // Base prunes one block per row; a mask that keeps everything keeps
  // weight in blocks the base never stored — not representable.
  auto pruned_base = make_base(make_mlp, /*pruned_ranks=*/1);
  auto full = make_mlp();
  install_random_hybrid_masks(*full, kBlock, kN, kM, 0);
  EXPECT_THROW(MaskDelta::from_model(*pruned_base, *full),
               std::runtime_error);

  // Dropping a block in only one block-row violates CRISP uniformity.
  auto base = make_base(make_mlp, 0);
  auto lopsided = make_mlp();
  install_random_hybrid_masks(*lopsided, kBlock, kN, kM, 0);
  nn::Parameter* fc1 = nullptr;
  for (nn::Parameter* p : lopsided->prunable_parameters())
    if (p->name == "fc1.weight") fc1 = p;
  ASSERT_NE(fc1, nullptr);
  float* mask = fc1->mask.data();
  for (std::int64_t r = 0; r < kBlock; ++r)
    for (std::int64_t c = 0; c < kBlock; ++c) mask[r * 32 + c] = 0.0f;
  EXPECT_THROW(MaskDelta::from_model(*base, *lopsided), std::runtime_error);
}

TEST(MaskDelta, ValidateRejectsForeignBase) {
  auto mlp_base = make_base(make_mlp, 0);
  const MaskDelta delta = tenant_delta(*mlp_base, make_mlp, 0, 1);
  // Different architecture: no such entries.
  auto conv_base = make_base(make_convnet, 0);
  EXPECT_THROW(delta.validate(*conv_base), std::runtime_error);
  // Same architecture, different base pattern: blocks-per-row mismatch.
  auto pruned_base = make_base(make_mlp, 1);
  EXPECT_THROW(delta.validate(*pruned_base), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Execution parity: overlay (zero-copy) vs standalone (apply).

TEST(Overlay, BitwiseParityWithStandaloneAcrossThreads) {
  const ModelFactory factory = [] { return make_convnet(); };
  auto base = make_base(factory, /*pruned_ranks=*/1);
  auto delta = std::make_shared<const MaskDelta>(
      tenant_delta(*base, factory, 1, /*salt=*/3));
  // conv1 keeps 2 of its 3 surviving blocks per row; the fc head keeps 0
  // of 1 — the fully-restricted edge case rides along.
  std::vector<std::shared_ptr<const OverlayMatrix>> overlays;
  auto overlay = compile_overlay_model(base, delta, factory, &overlays);
  auto standalone = compile_standalone(*base, *delta, factory);
  ASSERT_FALSE(overlays.empty());
  for (const auto& o : overlays) EXPECT_TRUE(o->aliases_base_payload());

  const Tensor x = random_sample(11, {4, 3, 8, 8});
  ThreadGuard guard;
  Tensor first;
  for (const int threads : {1, 2, 8}) {
    kernels::set_num_threads(threads);
    const Tensor got = overlay->run(x);
    EXPECT_FLOAT_EQ(max_abs_diff(got, standalone->run(x)), 0.0f)
        << "overlay diverged from standalone at " << threads << " threads";
    if (threads == 1)
      first = got;
    else
      EXPECT_FLOAT_EQ(max_abs_diff(first, got), 0.0f)
          << "overlay output changed with the kernel thread count";
  }
}

TEST(Overlay, Int8ParityIncludesScaleOverrides) {
  const ModelFactory factory = [] { return make_mlp(); };
  auto base = make_base(factory, 0, /*quantize=*/true);
  ASSERT_TRUE(base->packed().quantized());

  MaskDelta d = tenant_delta(*base, factory, 0, 7);
  // Per-block-row recalibration on fc1 (3 block-rows) — the cheap
  // per-tenant int8 tuning knob.
  d.set_scale_overrides("fc1.weight", {0.01f, 0.002f, 0.03f});
  auto delta = std::make_shared<const MaskDelta>(std::move(d));

  auto overlay = compile_overlay_model(base, delta, factory);
  auto standalone = compile_standalone(*base, *delta, factory);
  const Tensor x = random_sample(13, {5, 32});
  EXPECT_FLOAT_EQ(max_abs_diff(overlay->run(x), standalone->run(x)), 0.0f);

  // The overrides really bite: the same restriction without them serves
  // different values.
  auto plain = std::make_shared<const MaskDelta>(
      tenant_delta(*base, factory, 0, 7));
  auto plain_overlay = compile_overlay_model(base, plain, factory);
  EXPECT_GT(max_abs_diff(overlay->run(x), plain_overlay->run(x)), 0.0f);
}

TEST(Overlay, Fp32PathIgnoresScaleOverrides) {
  const ModelFactory factory = [] { return make_mlp(); };
  auto base = make_base(factory, 0);  // fp32 payload present
  MaskDelta d = tenant_delta(*base, factory, 0, 4);
  d.set_scale_overrides("fc1.weight", {9.0f, 9.0f, 9.0f});
  auto with = std::make_shared<const MaskDelta>(std::move(d));
  auto without = std::make_shared<const MaskDelta>(
      tenant_delta(*base, factory, 0, 4));

  // Overrides are an int8-path knob; fp32 execution and the fp32
  // standalone artifact are identical with or without them.
  auto a = compile_overlay_model(base, with, factory);
  auto b = compile_overlay_model(base, without, factory);
  auto c = compile_standalone(*base, *with, factory);
  const Tensor x = random_sample(17, {3, 32});
  EXPECT_FLOAT_EQ(max_abs_diff(a->run(x), b->run(x)), 0.0f);
  EXPECT_FLOAT_EQ(max_abs_diff(a->run(x), c->run(x)), 0.0f);
}

// ---------------------------------------------------------------------------
// Store: registry, LRU cache, accounting.

TEST(Store, FleetScaleAccountingIdentity) {
  const ModelFactory factory = [] { return make_mlp(); };
  auto base = make_base(factory, 0);

  std::int64_t overhead = 0;
  {
    Store probe(base, factory);
    overhead = probe.compiled_overhead_bytes();
  }
  constexpr std::int64_t kResidents = 8;
  constexpr int kTenants = 2000;
  StoreOptions opts;
  opts.compiled_budget_bytes = kResidents * overhead;
  Store store(base, factory, opts);

  std::int64_t expected_deltas = 0;
  for (int i = 0; i < kTenants; ++i) {
    MaskDelta d =
        tenant_delta(*base, factory, 0, static_cast<std::uint64_t>(i));
    expected_deltas += d.delta_bytes();
    store.register_tenant(tenant_id(i), std::move(d));
  }
  EXPECT_EQ(store.tenant_count(), kTenants);

  // Serve the whole fleet through the budgeted cache.
  for (int i = 0; i < kTenants; ++i)
    ASSERT_NE(store.acquire(tenant_id(i)), nullptr) << i;

  // The accounting identity: one base + N deltas + K compiled residents.
  const ResidentBytes r = store.resident_bytes();
  EXPECT_EQ(r.base, base->base_bytes());
  EXPECT_EQ(r.deltas, expected_deltas);
  EXPECT_EQ(r.compiled, kResidents * overhead);
  EXPECT_EQ(r.total(), r.base + r.deltas + r.compiled);
  EXPECT_EQ(store.compiled_count(), kResidents);

  const StoreStats s = store.stats();
  EXPECT_EQ(s.misses, kTenants);
  EXPECT_EQ(s.compiles, kTenants);
  EXPECT_EQ(s.evictions, kTenants - kResidents);
  EXPECT_EQ(s.hits, 0);
  // Masks, not models: nothing in the cache copies the base payload...
  EXPECT_EQ(store.excess_base_copies(), 0);
  // ...so the resident fleet costs a small multiple of ONE base copy,
  // against kTenants copies for the naive artifact-per-tenant design.
  EXPECT_LT(r.total(), kTenants * base->base_bytes() / 5);

  // The hot tail hits the cache.
  ASSERT_NE(store.acquire(tenant_id(kTenants - 1)), nullptr);
  EXPECT_EQ(store.stats().hits, 1);
}

TEST(Store, LruEvictionAndEvictedArtifactStaysServable) {
  const ModelFactory factory = [] { return make_mlp(); };
  auto base = make_base(factory, 0);
  std::int64_t overhead = 0;
  {
    Store probe(base, factory);
    overhead = probe.compiled_overhead_bytes();
  }
  StoreOptions opts;
  opts.compiled_budget_bytes = 2 * overhead;
  Store store(base, factory, opts);
  for (int i = 1; i <= 3; ++i)
    store.register_tenant(tenant_id(i),
                          tenant_delta(*base, factory, 0,
                                       static_cast<std::uint64_t>(i)));

  auto m1 = store.acquire("t1");
  auto m1_again = store.acquire("t1");
  EXPECT_EQ(m1.get(), m1_again.get());  // cache hit returns the resident
  EXPECT_EQ(store.stats().hits, 1);

  store.acquire("t2");
  store.acquire("t3");  // budget = 2 residents: t1 is the LRU victim
  EXPECT_EQ(store.compiled_count(), 2);
  EXPECT_EQ(store.stats().evictions, 1);

  // Eviction only dropped the cache's reference; the caller's artifact
  // still serves, and a re-acquire compiles an equivalent fresh one.
  const Tensor x = random_sample(3, {2, 32});
  const Tensor before = m1->run(x);
  auto m1_fresh = store.acquire("t1");
  EXPECT_NE(m1.get(), m1_fresh.get());
  EXPECT_FLOAT_EQ(max_abs_diff(before, m1_fresh->run(x)), 0.0f);
  EXPECT_EQ(store.stats().misses, 4);
}

TEST(Store, ReplaceInvalidatesCompiledAndRemoveDropsTenant) {
  const ModelFactory factory = [] { return make_mlp(); };
  auto base = make_base(factory, 0);
  Store store(base, factory);

  store.register_tenant("t1", tenant_delta(*base, factory, 0, 1));
  ASSERT_NE(store.acquire("t1"), nullptr);
  EXPECT_EQ(store.compiled_count(), 1);

  // Re-registering with a different personalization must invalidate the
  // cached artifact — the next acquire serves the new delta.
  store.register_tenant("t1", tenant_delta(*base, factory, 0, 2));
  EXPECT_EQ(store.compiled_count(), 0);
  EXPECT_EQ(store.tenant_count(), 1);
  auto fresh = store.acquire("t1");
  auto want = compile_standalone(*base, tenant_delta(*base, factory, 0, 2),
                                 factory);
  const Tensor x = random_sample(5, {2, 32});
  EXPECT_FLOAT_EQ(max_abs_diff(fresh->run(x), want->run(x)), 0.0f);

  store.remove_tenant("t1");
  EXPECT_FALSE(store.has_tenant("t1"));
  EXPECT_EQ(store.compiled_count(), 0);
  EXPECT_EQ(store.resident_bytes().deltas, 0);
  EXPECT_THROW(store.acquire("t1"), std::runtime_error);
  EXPECT_THROW(store.remove_tenant("t1"), std::runtime_error);

  // Registration validates against the base: a foreign-architecture delta
  // never enters the registry.
  auto conv_base = make_base(make_convnet, 0);
  EXPECT_THROW(
      store.register_tenant("bad", tenant_delta(*conv_base, make_convnet, 0, 1)),
      std::runtime_error);
}

TEST(Store, ConcurrentAcquiresConvergeToOneCachedArtifact) {
  const ModelFactory factory = [] { return make_mlp(); };
  auto base = make_base(factory, 0);
  Store store(base, factory);
  store.register_tenant("t1", tenant_delta(*base, factory, 0, 1));

  constexpr int kThreads = 4;
  std::vector<std::shared_ptr<const serve::CompiledModel>> got(kThreads);
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i)
    threads.emplace_back(
        [&, i] { got[static_cast<std::size_t>(i)] = store.acquire("t1"); });
  for (auto& t : threads) t.join();

  // Whoever wins the compile race, every caller ends up serving the one
  // cached artifact.
  for (const auto& m : got) {
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m.get(), got[0].get());
  }
  EXPECT_EQ(store.compiled_count(), 1);
  EXPECT_EQ(store.excess_base_copies(), 0);
}

// ---------------------------------------------------------------------------
// Router: fleet traffic onto a budgeted engine pool.

TEST(Router, ColdMissCompilesAndServes) {
  const ModelFactory factory = [] { return make_mlp(); };
  auto base = make_base(factory, 0);
  auto store = std::make_shared<Store>(base, factory);
  store->register_tenant("t1", tenant_delta(*base, factory, 0, 1));
  Router router(store);

  EXPECT_THROW(router.submit("ghost", make_request(random_sample(1, {32}))),
               std::runtime_error);

  const Tensor sample = random_sample(21, {32});
  serve::Response r = router.submit("t1", make_request(sample)).get();
  ASSERT_EQ(r.status, serve::Response::Status::kOk);
  EXPECT_FLOAT_EQ(
      max_abs_diff(r.output, serial_reference(*store->acquire("t1"), sample)),
      0.0f);

  // The second request rides the now-resident engine.
  serve::Response hot = router.submit("t1", make_request(sample)).get();
  EXPECT_EQ(hot.status, serve::Response::Status::kOk);

  const RouterStats s = router.stats();
  EXPECT_EQ(s.submitted, 2);
  EXPECT_EQ(s.cold_misses, 1);
  EXPECT_EQ(s.hot, 1);
  EXPECT_EQ(s.engines_built, 1);
  EXPECT_EQ(router.resident_engines(), 1);

  router.shutdown();
  EXPECT_THROW(router.submit("t1", make_request(random_sample(2, {32}))),
               std::runtime_error);
}

TEST(Router, TenantAffinityAndLruRetirement) {
  const ModelFactory factory = [] { return make_mlp(); };
  auto base = make_base(factory, 0);
  auto store = std::make_shared<Store>(base, factory);
  for (int i = 1; i <= 3; ++i)
    store->register_tenant(tenant_id(i),
                           tenant_delta(*base, factory, 0,
                                        static_cast<std::uint64_t>(i)));
  RouterOptions opts;
  opts.max_engines = 2;
  Router router(store, opts);

  const auto serve_one = [&](const std::string& id, std::uint64_t seed) {
    const Tensor sample = random_sample(seed, {32});
    serve::Response r = router.submit(id, make_request(sample)).get();
    ASSERT_EQ(r.status, serve::Response::Status::kOk) << id;
    EXPECT_FLOAT_EQ(
        max_abs_diff(r.output, serial_reference(*store->acquire(id), sample)),
        0.0f)
        << id;
  };

  serve_one("t1", 31);
  serve_one("t2", 32);
  serve_one("t3", 33);  // past the cap: t1's engine (LRU) is retired
  EXPECT_EQ(router.resident_engines(), 2);
  serve_one("t1", 34);  // cold again
  serve_one("t3", 35);  // still resident: hot

  const RouterStats s = router.stats();
  EXPECT_EQ(s.cold_misses, 4);
  EXPECT_EQ(s.hot, 1);
  EXPECT_EQ(s.engines_built, 4);
  EXPECT_EQ(s.engines_retired, 2);
  EXPECT_EQ(router.resident_engines(), 2);
}

TEST(Router, DeadlineAgesAcrossColdCompile) {
  const ModelFactory factory = [] { return make_mlp(); };
  auto base = make_base(factory, 0);
  auto store = std::make_shared<Store>(base, factory);
  store->register_tenant("doomed", tenant_delta(*base, factory, 0, 1));
  store->register_tenant("patient", tenant_delta(*base, factory, 0, 2));
  Router router(store);

  // A 1 µs budget cannot survive an engine build: the deadline lapses in
  // the cold queue and the router sheds it exactly as an engine queue
  // would — kExpired, never served late.
  serve::Response doomed =
      router
          .submit("doomed", make_request(random_sample(41, {32}),
                                         serve::Priority::kStandard,
                                         std::chrono::microseconds(1)))
          .get();
  EXPECT_EQ(doomed.status, serve::Response::Status::kExpired);
  EXPECT_GT(doomed.stats.queue_time.count(), 0);

  // A generous budget rides through the same compile.
  serve::Response patient =
      router
          .submit("patient", make_request(random_sample(42, {32}),
                                          serve::Priority::kStandard,
                                          std::chrono::minutes(1)))
          .get();
  EXPECT_EQ(patient.status, serve::Response::Status::kOk);

  const RouterStats s = router.stats();
  EXPECT_EQ(s.cold_expired, 1);
  EXPECT_EQ(s.cold_misses, 2);
}

TEST(Router, ColdQueueOverflowRejects) {
  // A deliberately slow factory pins the compiler thread long enough to
  // overflow the bounded cold queue deterministically.
  const ModelFactory slow = [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    return make_mlp();
  };
  auto base = make_base(make_mlp, 0);
  auto store = std::make_shared<Store>(base, slow);
  store->register_tenant("t1", tenant_delta(*base, make_mlp, 0, 1));
  RouterOptions opts;
  opts.cold_queue_depth = 1;
  Router router(store, opts);

  auto first = router.submit("t1", make_request(random_sample(51, {32})));
  auto second = router.submit("t1", make_request(random_sample(52, {32})));
  serve::Response r2 = second.get();  // resolves immediately, never parked
  EXPECT_EQ(r2.status, serve::Response::Status::kRejected);
  EXPECT_EQ(first.get().status, serve::Response::Status::kOk);

  const RouterStats s = router.stats();
  EXPECT_EQ(s.cold_rejected, 1);
  EXPECT_EQ(s.submitted, 1);  // only the parked request was accepted
}

TEST(Router, ShutdownCancelsParkedColdRequests) {
  const ModelFactory slow = [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    return make_mlp();
  };
  auto base = make_base(make_mlp, 0);
  auto store = std::make_shared<Store>(base, slow);
  store->register_tenant("t1", tenant_delta(*base, make_mlp, 0, 1));
  store->register_tenant("t2", tenant_delta(*base, make_mlp, 0, 2));
  Router router(store);

  // t1's compile is mid-build and t2's has not started when shutdown
  // lands. Shutdown is prompt: every still-parked request resolves as
  // kCancelled (only work that already reached an engine drains), and the
  // compiler discards the half-built engine instead of serving with it.
  auto building = router.submit("t1", make_request(random_sample(61, {32})));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  auto parked = router.submit("t2", make_request(random_sample(62, {32})));
  router.shutdown();

  EXPECT_EQ(building.get().status, serve::Response::Status::kCancelled);
  serve::Response r = parked.get();
  EXPECT_EQ(r.status, serve::Response::Status::kCancelled);
  EXPECT_GT(r.stats.queue_time.count(), 0);
  EXPECT_EQ(router.stats().cancelled, 2);
}

TEST(Router, ConcurrentProducersAcrossTenantsAllServed) {
  const ModelFactory factory = [] { return make_mlp(); };
  auto base = make_base(factory, 0);
  auto store = std::make_shared<Store>(base, factory);
  constexpr int kTenantCount = 3, kPerTenant = 8;
  for (int t = 0; t < kTenantCount; ++t)
    store->register_tenant(tenant_id(t),
                           tenant_delta(*base, factory, 0,
                                        static_cast<std::uint64_t>(t)));
  RouterOptions opts;
  opts.max_engines = kTenantCount;
  Router router(store, opts);

  std::vector<std::vector<std::future<serve::Response>>> futures(
      kTenantCount);
  std::vector<std::thread> producers;
  for (int t = 0; t < kTenantCount; ++t) {
    producers.emplace_back([&, t] {
      for (int i = 0; i < kPerTenant; ++i)
        futures[static_cast<std::size_t>(t)].push_back(router.submit(
            tenant_id(t),
            make_request(random_sample(
                static_cast<std::uint64_t>(9000 + t * 100 + i), {32}))));
    });
  }
  for (auto& t : producers) t.join();

  for (int t = 0; t < kTenantCount; ++t) {
    auto compiled = store->acquire(tenant_id(t));
    for (int i = 0; i < kPerTenant; ++i) {
      serve::Response r =
          futures[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)]
              .get();
      ASSERT_EQ(r.status, serve::Response::Status::kOk)
          << "tenant " << t << " request " << i;
      const Tensor want = serial_reference(
          *compiled, random_sample(
                         static_cast<std::uint64_t>(9000 + t * 100 + i), {32}));
      // Engine batching may coalesce same-tenant requests; the packed
      // Linear hook's batch tail can differ in the last bit.
      EXPECT_LE(max_abs_diff(r.output, want), 1e-4f)
          << "tenant " << t << " request " << i;
    }
  }
  const RouterStats s = router.stats();
  EXPECT_EQ(s.submitted, kTenantCount * kPerTenant);
  EXPECT_EQ(s.hot + s.cold_misses, s.submitted);
  EXPECT_EQ(s.engines_built, kTenantCount);
  EXPECT_EQ(s.engines_retired, 0);
  EXPECT_EQ(store->excess_base_copies(), 0);
}

TEST(Router, RefreshTenantHotSwapsResidentEngine) {
  const ModelFactory factory = [] { return make_mlp(); };
  auto base = make_base(factory, 0);
  auto store = std::make_shared<Store>(base, factory);
  store->register_tenant("t1", tenant_delta(*base, factory, 0, 1));
  Router router(store);

  // Make t1 resident and verify it serves the original personalization.
  const Tensor sample = random_sample(41, {32});
  auto old_artifact = store->acquire("t1");
  serve::Response r0 = router.submit("t1", make_request(sample)).get();
  ASSERT_EQ(r0.status, serve::Response::Status::kOk);
  EXPECT_LE(max_abs_diff(r0.output, serial_reference(*old_artifact, sample)),
            1e-4f);

  // A changed personalization: register_tenant with a different delta
  // invalidates the Store's compiled cache, refresh_tenant pushes the
  // recompiled artifact into the live engine — no restart, no cold miss.
  store->register_tenant("t1", tenant_delta(*base, factory, 0, 2));
  EXPECT_TRUE(router.refresh_tenant("t1"));
  auto new_artifact = store->acquire("t1");
  const Tensor want_new = serial_reference(*new_artifact, sample);
  ASSERT_GT(max_abs_diff(serial_reference(*old_artifact, sample), want_new),
            0.0f);  // the two deltas really differ on this sample

  serve::Response r1 = router.submit("t1", make_request(sample)).get();
  ASSERT_EQ(r1.status, serve::Response::Status::kOk);
  EXPECT_LE(max_abs_diff(r1.output, want_new), 1e-4f);

  const RouterStats s = router.stats();
  EXPECT_EQ(s.refreshed, 1);
  EXPECT_EQ(s.hot, 1);           // the post-swap submit was a hot hit,
  EXPECT_EQ(s.cold_misses, 1);   // not a rebuild
  EXPECT_EQ(s.engines_built, 1);

  // Non-resident tenant: refresh is a no-op (next cold miss compiles the
  // fresh delta anyway). Unregistered tenant: throws like submit does.
  store->register_tenant("t2", tenant_delta(*base, factory, 0, 3));
  EXPECT_FALSE(router.refresh_tenant("t2"));
  EXPECT_THROW(router.refresh_tenant("ghost"), std::runtime_error);
  EXPECT_EQ(router.stats().refreshed, 1);

  router.shutdown();
  EXPECT_THROW(router.refresh_tenant("t1"), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Graceful degradation: compile failures, quarantine, base-model fallback.

TEST(Router, CompileFailureRetriesOnceThenServes) {
  const ModelFactory factory = [] { return make_mlp(); };
  auto base = make_base(factory, 0);
  auto store = std::make_shared<Store>(base, factory);
  store->register_tenant("t1", tenant_delta(*base, factory, 0, 1));
  RouterOptions opts;
  opts.compile_retry_backoff = std::chrono::milliseconds(1);
  Router router(store, opts);

  // The first compile attempt throws (injected); the bounded-backoff
  // retry succeeds. The caller sees a plain kOk, fully personalized — a
  // transient failure never surfaces.
  crisp::testing::arm_fault("store.compile", /*nth=*/0, /*times=*/1);
  const Tensor sample = random_sample(71, {32});
  serve::Response r = router.submit("t1", make_request(sample)).get();
  crisp::testing::reset_faults();
  ASSERT_EQ(r.status, serve::Response::Status::kOk);
  EXPECT_LE(
      max_abs_diff(r.output, serial_reference(*store->acquire("t1"), sample)),
      1e-4f);

  const RouterStats s = router.stats();
  EXPECT_EQ(s.compile_retries, 1);
  EXPECT_EQ(s.quarantined, 0);
  EXPECT_EQ(s.degraded, 0);
  EXPECT_EQ(s.engines_built, 1);
}

TEST(Router, DoubleCompileFailureQuarantinesAndServesDegraded) {
  const ModelFactory factory = [] { return make_mlp(); };
  auto base = make_base(factory, 0);
  auto store = std::make_shared<Store>(base, factory);
  store->register_tenant("t1", tenant_delta(*base, factory, 0, 1));
  store->register_tenant("t2", tenant_delta(*base, factory, 0, 2));
  RouterOptions opts;
  opts.compile_retry_backoff = std::chrono::milliseconds(1);
  Router router(store, opts);

  // Both compile attempts fail: t1 is quarantined — but its parked
  // request still completes, served from the shared base model and
  // flagged kDegraded with a real output. Never a broken future.
  crisp::testing::arm_fault("store.compile", 0, /*times=*/2);
  const Tensor sample = random_sample(72, {32});
  serve::Response r = router.submit("t1", make_request(sample)).get();
  ASSERT_EQ(r.status, serve::Response::Status::kDegraded);
  ASSERT_FALSE(r.output.empty());
  EXPECT_LE(max_abs_diff(r.output,
                         serial_reference(*store->acquire_base(), sample)),
            1e-4f);

  // Subsequent submits skip the doomed compile and go straight to the
  // fallback engine...
  serve::Response again = router.submit("t1", make_request(sample)).get();
  EXPECT_EQ(again.status, serve::Response::Status::kDegraded);
  // ...while other tenants are untouched by the quarantine.
  crisp::testing::reset_faults();
  serve::Response healthy = router.submit("t2", make_request(sample)).get();
  EXPECT_EQ(healthy.status, serve::Response::Status::kOk);

  const RouterStats s = router.stats();
  EXPECT_EQ(s.compile_retries, 1);
  EXPECT_EQ(s.quarantined, 1);
  EXPECT_EQ(s.degraded, 2);
  EXPECT_EQ(s.engines_built, 1);  // only t2's; the fallback isn't a tenant
  EXPECT_EQ(router.resident_engines(), 1);

  // refresh_tenant is the way back: the delta compiles now, so the
  // quarantine lifts (no resident engine to swap -> false) and the next
  // submit is a normal cold miss serving the personalization again.
  EXPECT_FALSE(router.refresh_tenant("t1"));
  serve::Response back = router.submit("t1", make_request(sample)).get();
  ASSERT_EQ(back.status, serve::Response::Status::kOk);
  EXPECT_LE(max_abs_diff(back.output,
                         serial_reference(*store->acquire("t1"), sample)),
            1e-4f);
  EXPECT_EQ(router.stats().quarantined, 1);  // historical count, not current
}

TEST(Router, QuarantineUnderConcurrentLoadCompletesEveryFuture) {
  const ModelFactory factory = [] { return make_mlp(); };
  auto base = make_base(factory, 0);
  auto store = std::make_shared<Store>(base, factory);
  store->register_tenant("bad", tenant_delta(*base, factory, 0, 1));
  store->register_tenant("good", tenant_delta(*base, factory, 0, 2));
  RouterOptions opts;
  opts.compile_retry_backoff = std::chrono::milliseconds(1);
  Router router(store, opts);

  // Quarantine "bad" deterministically first, then hammer both tenants
  // from concurrent producers. The contract under test: every future
  // completes with a status — zero exceptions out of .get(), degraded and
  // healthy traffic interleaved freely (TSan covers the bridge path).
  crisp::testing::arm_fault("store.compile", 0, /*times=*/2);
  serve::Response first =
      router.submit("bad", make_request(random_sample(80, {32}))).get();
  crisp::testing::reset_faults();
  ASSERT_EQ(first.status, serve::Response::Status::kDegraded);

  constexpr int kThreads = 4, kPerThread = 8;
  std::vector<std::vector<std::future<serve::Response>>> futures(kThreads);
  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&, t] {
      const std::string id = (t % 2 == 0) ? "bad" : "good";
      for (int i = 0; i < kPerThread; ++i)
        futures[static_cast<std::size_t>(t)].push_back(router.submit(
            id, make_request(random_sample(
                    static_cast<std::uint64_t>(8000 + t * 100 + i), {32}))));
    });
  }
  for (auto& t : producers) t.join();

  std::int64_t degraded = 0, ok = 0;
  for (int t = 0; t < kThreads; ++t)
    for (auto& f : futures[static_cast<std::size_t>(t)]) {
      serve::Response r = f.get();  // must never throw
      if (r.status == serve::Response::Status::kDegraded) {
        EXPECT_FALSE(r.output.empty());
        ++degraded;
      } else {
        ASSERT_EQ(r.status, serve::Response::Status::kOk);
        ++ok;
      }
    }
  EXPECT_EQ(degraded, (kThreads / 2) * kPerThread);  // all of "bad"'s
  EXPECT_EQ(ok, (kThreads / 2) * kPerThread);        // all of "good"'s

  const RouterStats s = router.stats();
  EXPECT_EQ(s.quarantined, 1);
  EXPECT_EQ(s.degraded, degraded + 1);  // + the quarantining request
  EXPECT_EQ(s.submitted, kThreads * kPerThread + 1);
}

}  // namespace
}  // namespace crisp::tenant
