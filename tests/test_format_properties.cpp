// Parameterized property sweeps across the hybrid-pattern space: mask
// construction, CRISP-format encode/decode/spmm, stream persistence, and
// the paper's metadata formulas — all over a grid of shapes, N:M ratios,
// block sizes and block-pruning depths (including non-multiple trailing
// extents).
#include <gtest/gtest.h>

#include <sstream>
#include <tuple>

#include "core/block_pruning.h"
#include "sparse/mask.h"
#include "sparse/metadata.h"
#include "sparse/nm.h"
#include "sparse/spmm.h"

namespace crisp::sparse {
namespace {

// rows, cols, block, n, m, pruned ranks per row
using HybridCase =
    std::tuple<std::int64_t, std::int64_t, std::int64_t, std::int64_t,
               std::int64_t, std::int64_t>;

class HybridPatternProperty : public ::testing::TestWithParam<HybridCase> {
 protected:
  void SetUp() override {
    std::tie(rows_, cols_, block_, n_, m_, pruned_) = GetParam();
    grid_ = BlockGrid{rows_, cols_, block_};
    if (pruned_ >= grid_.grid_cols()) pruned_ = grid_.grid_cols() - 1;

    Rng rng(static_cast<std::uint64_t>(rows_ * 31 + cols_ * 7 + block_));
    scores_ = Tensor::rand({rows_, cols_}, rng, 0.05f, 1.0f);
    weights_ = Tensor::randn({rows_, cols_}, rng, 0.0f, 1.0f);
    // Avoid exact zeros in kept positions so nnz accounting is exact.
    for (std::int64_t i = 0; i < weights_.numel(); ++i)
      if (weights_[i] == 0.0f) weights_[i] = 0.5f;

    const Tensor nm = nm_mask(as_matrix(scores_, rows_, cols_), n_, m_);
    core::LayerBlockInfo info;
    info.grid = grid_;
    info.scores = block_scores(as_matrix(scores_, rows_, cols_), grid_);
    const Tensor bmask = core::rank_pruned_block_mask(info, pruned_);
    mask_ = mask_and(nm, bmask);
    masked_ = weights_.mul(mask_);
  }

  std::int64_t rows_, cols_, block_, n_, m_, pruned_;
  BlockGrid grid_;
  Tensor scores_, weights_, mask_, masked_;
};

TEST_P(HybridPatternProperty, MaskSatisfiesBothComponents) {
  EXPECT_TRUE(is_binary(as_matrix(mask_, rows_, cols_)));
  EXPECT_TRUE(satisfies_nm(as_matrix(mask_, rows_, cols_), n_, m_));

  // Equal pruned blocks per block-row (the load-balance invariant).
  const auto per_row = zero_blocks_per_row(as_matrix(masked_, rows_, cols_),
                                           grid_);
  for (std::size_t r = 1; r < per_row.size(); ++r)
    EXPECT_GE(per_row[r], pruned_) << "block-row " << r;
}

TEST_P(HybridPatternProperty, EncodeDecodeIsLossless) {
  const CrispMatrix enc =
      CrispMatrix::encode(as_matrix(masked_, rows_, cols_), block_, n_, m_);
  EXPECT_FLOAT_EQ(max_abs_diff(enc.decode(), masked_), 0.0f);
  EXPECT_EQ(enc.rows(), rows_);
  EXPECT_EQ(enc.cols(), cols_);
}

TEST_P(HybridPatternProperty, SpmmMatchesDenseReference) {
  const CrispMatrix enc =
      CrispMatrix::encode(as_matrix(masked_, rows_, cols_), block_, n_, m_);
  Rng rng(99);
  const Tensor x = Tensor::randn({cols_, 5}, rng);
  const Tensor want = dense_matmul(masked_, x);
  const Tensor got = spmm(enc, x);
  EXPECT_LE(max_abs_diff(want, got), 2e-4f * static_cast<float>(cols_));
}

TEST_P(HybridPatternProperty, StreamRoundTripPreservesEverything) {
  const CrispMatrix enc =
      CrispMatrix::encode(as_matrix(masked_, rows_, cols_), block_, n_, m_);
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  enc.write(ss);
  const CrispMatrix back = CrispMatrix::read(ss);
  EXPECT_FLOAT_EQ(max_abs_diff(back.decode(), masked_), 0.0f);
  EXPECT_EQ(back.metadata_bits(), enc.metadata_bits());
  EXPECT_EQ(back.payload_bits(), enc.payload_bits());
  EXPECT_EQ(back.blocks_per_row(), enc.blocks_per_row());
  EXPECT_EQ(back.n(), enc.n());
  EXPECT_EQ(back.m(), enc.m());
}

TEST_P(HybridPatternProperty, TruncatedStreamThrows) {
  const CrispMatrix enc =
      CrispMatrix::encode(as_matrix(masked_, rows_, cols_), block_, n_, m_);
  std::stringstream full(std::ios::in | std::ios::out | std::ios::binary);
  enc.write(full);
  const std::string bytes = full.str();
  std::stringstream cut(bytes.substr(0, bytes.size() * 2 / 3),
                        std::ios::in | std::ios::binary);
  EXPECT_THROW(CrispMatrix::read(cut), std::runtime_error);
}

TEST_P(HybridPatternProperty, SparsityMatchesPaperIdentity) {
  // 1 − (K'/K)(N/M) is the average sparsity the paper reports (§III-A).
  // Our measured zero-fraction can only exceed it (extra zeros come from
  // weights whose group had fewer than N survivors at the matrix edge).
  const auto per_row = zero_blocks_per_row(as_matrix(masked_, rows_, cols_),
                                           grid_);
  const double pruned_blocks = static_cast<double>(per_row.front());
  const double kc = 1.0 - pruned_blocks / static_cast<double>(grid_.grid_cols());
  const double predicted =
      1.0 - kc * static_cast<double>(n_) / static_cast<double>(m_);
  const double measured = mask_sparsity(as_matrix(mask_, rows_, cols_));
  // A trailing partial block-column makes the block-count fraction differ
  // from the true column fraction by up to block/K; partial groups add a
  // little more in either direction.
  const double quantization = static_cast<double>(block_) /
                              static_cast<double>(cols_) *
                              static_cast<double>(n_) /
                              static_cast<double>(m_);
  EXPECT_GE(measured + quantization + 0.02, predicted);
  EXPECT_LE(measured, predicted + quantization + 0.15);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, HybridPatternProperty,
    ::testing::Values(
        // Aligned everything.
        HybridCase{32, 32, 8, 2, 4, 1}, HybridCase{64, 64, 16, 2, 4, 2},
        HybridCase{16, 64, 16, 1, 4, 1}, HybridCase{64, 32, 8, 3, 4, 2},
        // Trailing partial blocks in rows, cols, or both.
        HybridCase{36, 32, 8, 2, 4, 1}, HybridCase{32, 44, 8, 2, 4, 3},
        HybridCase{25, 50, 8, 1, 4, 2},
        // M = 2 and wider M = 8 groups.
        HybridCase{32, 32, 8, 1, 2, 1}, HybridCase{32, 64, 16, 3, 8, 1},
        // Single block-column row (pruned clamps to 0), tall-thin, flat-wide.
        HybridCase{32, 8, 8, 2, 4, 3}, HybridCase{128, 16, 8, 2, 4, 1},
        HybridCase{8, 128, 8, 2, 4, 9},
        // Block == matrix (degenerate grid).
        HybridCase{16, 16, 16, 2, 4, 0}));

// ---------------------------------------------------------------------------
// Paper metadata formulas vs the concrete encoder, across shapes.

using MetadataCase = std::tuple<std::int64_t, std::int64_t, std::int64_t>;

class MetadataConsistency : public ::testing::TestWithParam<MetadataCase> {};

TEST_P(MetadataConsistency, EncoderTracksPaperFormulas) {
  const auto [s, k, block] = GetParam();
  Rng rng(7);
  Tensor scores = Tensor::rand({s, k}, rng, 0.05f, 1.0f);
  Tensor w = Tensor::randn({s, k}, rng);
  for (std::int64_t i = 0; i < w.numel(); ++i)
    if (w[i] == 0.0f) w[i] = 0.5f;

  const Tensor nm = nm_mask(as_matrix(scores, s, k), 2, 4);
  core::LayerBlockInfo info;
  info.grid = BlockGrid{s, k, block};
  info.scores = block_scores(as_matrix(scores, s, k), info.grid);
  const std::int64_t pruned = info.grid.grid_cols() / 2;
  const Tensor bmask = core::rank_pruned_block_mask(info, pruned);
  Tensor masked = w.mul(mask_and(nm, bmask));

  const CrispMatrix enc = CrispMatrix::encode(as_matrix(masked, s, k),
                                              block, 2, 4);
  const std::int64_t k_prime = enc.blocks_per_row() * block;

  // The paper's §III-A expressions, computed on the same K'.
  const std::int64_t formula_bits =
      paper_block_metadata_bits(s, k_prime, block) +
      paper_nm_metadata_bits(s, k_prime, 2, 4);
  // The encoder stores the same information with per-row indices; both
  // sides must agree within the formula's floor-vs-ceil slack.
  const double ratio = static_cast<double>(enc.metadata_bits()) /
                       static_cast<double>(formula_bits);
  EXPECT_GT(ratio, 0.5) << "s=" << s << " k=" << k << " b=" << block;
  EXPECT_LT(ratio, 2.0) << "s=" << s << " k=" << k << " b=" << block;
}

INSTANTIATE_TEST_SUITE_P(Shapes, MetadataConsistency,
                         ::testing::Values(MetadataCase{64, 64, 8},
                                           MetadataCase{64, 128, 16},
                                           MetadataCase{128, 64, 16},
                                           MetadataCase{256, 256, 32},
                                           MetadataCase{48, 96, 8}));

}  // namespace
}  // namespace crisp::sparse
