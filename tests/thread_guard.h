// Shared test helper: restores the ambient kernel thread count when a test
// exits — including through an ASSERT_* early return. One definition so the
// suites that sweep kernels::set_num_threads (test_kernels, test_serve,
// test_backward_threading) cannot silently diverge on the restore
// semantics.
#pragma once

#include "kernels/parallel_for.h"

namespace crisp::testing {

class ThreadGuard {
 public:
  ThreadGuard() : saved_(kernels::num_threads()) {}
  ~ThreadGuard() { kernels::set_num_threads(saved_); }
  ThreadGuard(const ThreadGuard&) = delete;
  ThreadGuard& operator=(const ThreadGuard&) = delete;

 private:
  int saved_;
};

}  // namespace crisp::testing
