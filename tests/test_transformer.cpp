// Transformer-extension tests: LayerNorm, GELU, multi-head self-attention
// (finite-difference checked), the ViT builder, and CRISP pruning applied
// to attention/MLP weights — the paper's stated future-work direction.
#include <gtest/gtest.h>

#include <cmath>

#include "core/pruner.h"
#include "data/class_pattern.h"
#include "nn/models/transformer.h"
#include "nn/trainer.h"
#include "sparse/nm.h"

namespace crisp::nn {
namespace {

// Shared finite-difference checker (same scheme as test_nn_layers).
float probe_loss(Layer& layer, const Tensor& x, const Tensor& w) {
  Tensor y = layer.forward(x, true);
  double acc = 0.0;
  for (std::int64_t i = 0; i < y.numel(); ++i)
    acc += static_cast<double>(y[i]) * w[i];
  return static_cast<float>(acc);
}

void check_gradients(Layer& layer, Tensor x, std::uint64_t seed,
                     float rel_tol = 0.08f, float abs_tol = 0.02f) {
  Rng rng(seed);
  const float eps = 5e-3f;
  Tensor y = layer.forward(x, true);
  Tensor w = Tensor::randn(y.shape(), rng);
  layer.zero_grad();
  (void)probe_loss(layer, x, w);
  Tensor grad_in = layer.backward(w);

  auto probe = [&](std::int64_t n) {
    std::vector<std::int64_t> idx;
    for (std::int64_t i = 0; i < std::min<std::int64_t>(n, 20); ++i)
      idx.push_back(rng.randint(0, n - 1));
    return idx;
  };

  for (std::int64_t i : probe(x.numel())) {
    const float saved = x[i];
    x[i] = saved + eps;
    const float lp = probe_loss(layer, x, w);
    x[i] = saved - eps;
    const float lm = probe_loss(layer, x, w);
    x[i] = saved;
    const float numeric = (lp - lm) / (2.0f * eps);
    EXPECT_NEAR(grad_in[i], numeric, abs_tol + rel_tol * std::fabs(numeric))
        << layer.name() << " input grad at " << i;
  }
  for (Parameter* p : layer.parameters()) {
    for (std::int64_t i : probe(p->value.numel())) {
      const float saved = p->value[i];
      p->value[i] = saved + eps;
      const float lp = probe_loss(layer, x, w);
      p->value[i] = saved - eps;
      const float lm = probe_loss(layer, x, w);
      p->value[i] = saved;
      const float numeric = (lp - lm) / (2.0f * eps);
      EXPECT_NEAR(p->grad[i], numeric, abs_tol + rel_tol * std::fabs(numeric))
          << p->name << " grad at " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// LayerNorm / GELU.

TEST(LayerNorm, NormalizesLastDimension) {
  Rng rng(1);
  LayerNorm ln("ln", 8);
  Tensor x = Tensor::randn({3, 4, 8}, rng, 2.0f, 3.0f);
  Tensor y = ln.forward(x, false);
  for (std::int64_t r = 0; r < 12; ++r) {
    double sum = 0.0, sq = 0.0;
    for (std::int64_t i = 0; i < 8; ++i) {
      const float v = y[r * 8 + i];
      sum += v;
      sq += static_cast<double>(v) * v;
    }
    EXPECT_NEAR(sum / 8.0, 0.0, 1e-3);
    EXPECT_NEAR(sq / 8.0, 1.0, 2e-2);
  }
}

TEST(LayerNorm, AffineParametersApply) {
  LayerNorm ln("ln_affine", 4);
  ln.parameters()[0]->value.fill(2.0f);  // gamma
  ln.parameters()[1]->value.fill(1.0f);  // beta
  Tensor x({1, 4}, {1.0f, 2.0f, 3.0f, 4.0f});
  Tensor y = ln.forward(x, false);
  double mean = 0.0;
  for (std::int64_t i = 0; i < 4; ++i) mean += y[i];
  EXPECT_NEAR(mean / 4.0, 1.0, 1e-4);  // beta shifts the mean
}

TEST(LayerNorm, GradientsMatchFiniteDifferences) {
  Rng rng(2);
  LayerNorm ln("ln_grad", 6);
  Tensor x = Tensor::randn({2, 3, 6}, rng);
  check_gradients(ln, std::move(x), 11);
}

TEST(LayerNorm, RejectsWrongWidth) {
  LayerNorm ln("ln_bad", 8);
  EXPECT_THROW(ln.forward(Tensor({2, 4}), false), std::runtime_error);
}

TEST(Gelu, KnownValuesAndMonotonicity) {
  Gelu gelu("gelu");
  Tensor x({3}, {-3.0f, 0.0f, 3.0f});
  Tensor y = gelu.forward(x, false);
  EXPECT_NEAR(y[1], 0.0f, 1e-6f);
  EXPECT_NEAR(y[2], 2.9964f, 1e-3f);   // ~x for large positive x
  EXPECT_NEAR(y[0], -0.0036f, 1e-3f);  // ~0 for large negative x
}

TEST(Gelu, GradientsMatchFiniteDifferences) {
  Rng rng(3);
  Gelu gelu("gelu_grad");
  Tensor x = Tensor::randn({4, 8}, rng);
  check_gradients(gelu, std::move(x), 13);
}

// ---------------------------------------------------------------------------
// Attention.

TEST(Attention, ShapesAndSoftmaxRows) {
  Rng rng(4);
  MultiHeadSelfAttention attn("attn", 8, 2, rng);
  Tensor x = Tensor::randn({2, 5, 8}, rng);
  Tensor y = attn.forward(x, false);
  EXPECT_EQ(y.shape(), x.shape());
  EXPECT_EQ(attn.parameters().size(), 8u);  // 4 weights + 4 biases
}

TEST(Attention, SingleHeadSingleTokenIsProjectionChain) {
  // With one token, softmax over one score is exactly 1, so the layer
  // reduces to Wo·(Wv·x + bv) + bo — checkable by hand.
  Rng rng(5);
  MultiHeadSelfAttention attn("attn1", 4, 1, rng);
  Tensor x = Tensor::randn({1, 1, 4}, rng);

  auto params = attn.parameters();
  const Tensor& wv = params[2]->value;
  const Tensor& wo = params[3]->value;
  const Tensor& bv = params[6]->value;
  const Tensor& bo = params[7]->value;

  Tensor v({4});
  for (std::int64_t o = 0; o < 4; ++o) {
    float acc = bv[o];
    for (std::int64_t i = 0; i < 4; ++i) acc += wv[o * 4 + i] * x[i];
    v[o] = acc;
  }
  Tensor expect({4});
  for (std::int64_t o = 0; o < 4; ++o) {
    float acc = bo[o];
    for (std::int64_t i = 0; i < 4; ++i) acc += wo[o * 4 + i] * v[i];
    expect[o] = acc;
  }

  Tensor y = attn.forward(x, false);
  for (std::int64_t o = 0; o < 4; ++o) EXPECT_NEAR(y[o], expect[o], 1e-4f);
}

TEST(Attention, PermutationEquivariance) {
  // Self-attention without positions is permutation-equivariant: permuting
  // input tokens permutes output tokens identically.
  Rng rng(6);
  MultiHeadSelfAttention attn("attn_perm", 8, 2, rng);
  Tensor x = Tensor::randn({1, 4, 8}, rng);
  Tensor y = attn.forward(x, false);

  // Swap tokens 1 and 3.
  Tensor xp = x;
  for (std::int64_t d = 0; d < 8; ++d)
    std::swap(xp[1 * 8 + d], xp[3 * 8 + d]);
  Tensor yp = attn.forward(xp, false);
  for (std::int64_t d = 0; d < 8; ++d) {
    EXPECT_NEAR(yp[1 * 8 + d], y[3 * 8 + d], 1e-4f);
    EXPECT_NEAR(yp[3 * 8 + d], y[1 * 8 + d], 1e-4f);
    EXPECT_NEAR(yp[0 * 8 + d], y[0 * 8 + d], 1e-4f);
  }
}

TEST(Attention, GradientsMatchFiniteDifferences) {
  Rng rng(7);
  MultiHeadSelfAttention attn("attn_grad", 8, 2, rng);
  Tensor x = Tensor::randn({2, 3, 8}, rng);
  check_gradients(attn, std::move(x), 17, 0.1f, 0.03f);
}

TEST(Attention, ProjectionsArePrunable) {
  Rng rng(8);
  MultiHeadSelfAttention attn("attn_p", 8, 2, rng);
  std::int64_t prunable = 0;
  for (Parameter* p : attn.parameters())
    if (p->prunable) {
      ++prunable;
      EXPECT_EQ(p->matrix_rows, 8);
      EXPECT_EQ(p->matrix_cols, 8);
    }
  EXPECT_EQ(prunable, 4);
}

TEST(Attention, RejectsBadConfig) {
  Rng rng(9);
  EXPECT_THROW(MultiHeadSelfAttention("bad", 10, 4, rng), std::runtime_error);
  MultiHeadSelfAttention attn("attn_b", 8, 2, rng);
  EXPECT_THROW(attn.forward(Tensor({2, 3, 4}), false), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Token utilities.

TEST(ToTokens, TransposeRoundTrip) {
  Rng rng(10);
  ToTokens tt("tt");
  Tensor x = Tensor::randn({2, 3, 2, 2}, rng);
  Tensor y = tt.forward(x, true);
  EXPECT_EQ(y.shape(), (Shape{2, 4, 3}));
  EXPECT_FLOAT_EQ(y.at({0, 1, 2}), x.at({0, 2, 0, 1}));  // token 1 = (h0,w1)
  Tensor back = tt.backward(y);
  EXPECT_TRUE(allclose(back, x, 0.0f, 0.0f));
}

TEST(PositionalEmbedding, AddsTablePerSample) {
  Rng rng(11);
  PositionalEmbedding pe("pe", 4, 3, rng);
  Tensor x = Tensor::zeros({2, 4, 3});
  Tensor y = pe.forward(x, true);
  const Tensor& table = pe.parameters()[0]->value;
  for (std::int64_t b = 0; b < 2; ++b)
    for (std::int64_t i = 0; i < 12; ++i)
      EXPECT_FLOAT_EQ(y[b * 12 + i], table[i]);
  // Backward accumulates over the batch.
  pe.zero_grad();
  pe.backward(Tensor::ones({2, 4, 3}));
  EXPECT_FLOAT_EQ(pe.parameters()[0]->grad[0], 2.0f);
}

TEST(TokenMeanPool, AveragesAndSpreads) {
  TokenMeanPool pool("pool");
  Tensor x({1, 2, 3}, {1, 2, 3, 5, 6, 7});
  Tensor y = pool.forward(x, true);
  EXPECT_EQ(y.shape(), (Shape{1, 3}));
  EXPECT_FLOAT_EQ(y[0], 3.0f);
  EXPECT_FLOAT_EQ(y[2], 5.0f);
  Tensor g = pool.backward(Tensor({1, 3}, {2.0f, 2.0f, 2.0f}));
  EXPECT_FLOAT_EQ(g[0], 1.0f);
}

TEST(TransformerBlock, GradientsMatchFiniteDifferences) {
  Rng rng(12);
  TransformerBlock block("blk", 8, 2, 2, rng);
  Tensor x = Tensor::randn({1, 3, 8}, rng);
  check_gradients(block, std::move(x), 19, 0.12f, 0.03f);
}

// ---------------------------------------------------------------------------
// ViT end-to-end.

VitConfig tiny_vit_config() {
  VitConfig cfg;
  cfg.num_classes = 5;
  cfg.input_size = 8;
  cfg.patch = 4;
  cfg.dim = 16;
  cfg.heads = 2;
  cfg.depth = 2;
  cfg.mlp_ratio = 2;
  return cfg;
}

TEST(Vit, BuildsForwardsBackwards) {
  auto model = make_vit(tiny_vit_config());
  Rng rng(13);
  Tensor x = Tensor::randn({2, 3, 8, 8}, rng);
  Tensor y = model->forward(x, true);
  EXPECT_EQ(y.shape(), (Shape{2, 5}));
  Tensor g = model->backward(Tensor::ones(y.shape()));
  EXPECT_EQ(g.shape(), x.shape());

  // Prunable: 4 attention projections + 2 MLP per block, + head.
  EXPECT_EQ(model->prunable_parameters().size(), 2u * 6u + 1u);
}

TEST(Vit, LearnsToyProblem) {
  auto cfg = tiny_vit_config();
  cfg.num_classes = 2;
  auto model = make_vit(cfg);

  // Class 0: bright left half; class 1: bright right half.
  Rng rng(14);
  data::Dataset d;
  const std::int64_t n = 64;
  d.images = Tensor({n, 3, 8, 8});
  d.labels.resize(static_cast<std::size_t>(n));
  d.num_classes = 2;
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t cls = i % 2;
    d.labels[static_cast<std::size_t>(i)] = cls;
    for (std::int64_t c = 0; c < 3; ++c)
      for (std::int64_t y = 0; y < 8; ++y)
        for (std::int64_t x = 0; x < 8; ++x)
          d.images.at({i, c, y, x}) =
              ((cls == 0) == (x < 4) ? 1.0f : -1.0f) +
              rng.normal(0.0f, 0.1f);
  }

  TrainConfig tc;
  tc.epochs = 15;
  tc.batch_size = 16;
  tc.sgd.lr = 0.01f;  // transformers want a gentler rate than the CNNs
  Rng trng(15);
  train(*model, d, tc, trng);
  EXPECT_GE(evaluate(*model, d), 0.9f);
}

TEST(Vit, CrispPruningHoldsInvariants) {
  auto model = make_vit(tiny_vit_config());
  data::ClassPatternConfig dcfg = data::ClassPatternConfig::cifar100_like();
  dcfg.num_classes = 5;
  dcfg.image_size = 8;
  dcfg.train_per_class = 6;
  dcfg.test_per_class = 2;
  const data::TrainTest split = data::make_class_pattern_dataset(dcfg);

  core::CrispConfig pcfg;
  pcfg.n = 2;
  pcfg.m = 4;
  pcfg.block = 8;
  pcfg.target_sparsity = 0.75;
  pcfg.iterations = 2;
  pcfg.finetune_epochs = 1;
  pcfg.recovery_epochs = 2;
  core::CrispPruner pruner(*model, pcfg);
  Rng rng(16);
  const core::PruneReport report = pruner.run(split.train, rng);

  EXPECT_NEAR(report.achieved_sparsity(), 0.75, 0.05);
  for (Parameter* p : model->prunable_parameters()) {
    ASSERT_TRUE(p->has_mask()) << p->name;
    const auto mask = as_matrix(p->mask, p->matrix_rows, p->matrix_cols);
    EXPECT_TRUE(sparse::satisfies_nm(mask, pcfg.n, pcfg.m)) << p->name;
    const sparse::BlockGrid grid{p->matrix_rows, p->matrix_cols, pcfg.block};
    EXPECT_TRUE(sparse::uniform_blocks_per_row(mask, grid)) << p->name;
  }
}

}  // namespace
}  // namespace crisp::nn
