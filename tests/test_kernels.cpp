// Kernel-layer tests: parallel_for partitioning/exceptions/nesting, the
// thread-count invariance contract — bit-identical results at 1/2/8 threads
// for every dense GEMM variant and every SpmmKernel implementation — the
// strengthened GEMM operand checking, CRISP_NUM_THREADS validation, and
// SIMD/scalar dispatch parity on tail-heavy shapes.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "kernels/gemm.h"
#include "kernels/parallel_for.h"
#include "kernels/reduce.h"
#include "kernels/simd_dispatch.h"
#include "nn/batchnorm.h"
#include "nn/pooling.h"
#include "sparse/block.h"
#include "sparse/nm.h"
#include "sparse/spmm.h"
#include "tensor/matmul.h"
#include "thread_guard.h"

namespace crisp {
namespace {

using crisp::testing::ThreadGuard;

/// Tolerance for cross-tier comparisons: tiers differ only by FMA
/// contraction and vectorized reduction trees, so a few ULPs of the
/// accumulated magnitude — far below any real kernel bug.
constexpr float kTierRtol = 1e-4f;
constexpr float kTierAtol = 1e-4f;

/// Asserts fn() computed under the active (possibly SIMD) tier matches the
/// forced-scalar fallback within rounding. In a CRISP_DISABLE_SIMD build
/// the active tier *is* scalar and the check degenerates to bitwise.
template <typename Fn>
void expect_tier_parity(Fn&& fn) {
  const Tensor active = fn();
  Tensor scalar;
  {
    kernels::simd::TierScope tier(kernels::simd::Tier::kScalar);
    scalar = fn();
  }
  ASSERT_TRUE(active.same_shape(scalar));
  EXPECT_TRUE(allclose(active, scalar, kTierRtol, kTierAtol))
      << "tier '" << kernels::simd::tier_name(kernels::simd::active_tier())
      << "' diverged from scalar by " << max_abs_diff(active, scalar);
}

/// Runs `fn` producing a Tensor at the given thread count.
template <typename Fn>
Tensor at_threads(int threads, Fn&& fn) {
  kernels::set_num_threads(threads);
  return fn();
}

/// Asserts fn() is bit-identical at 1, 2, and 8 threads.
template <typename Fn>
void expect_thread_invariant(Fn&& fn) {
  const Tensor serial = at_threads(1, fn);
  for (const int t : {2, 8}) {
    const Tensor parallel = at_threads(t, fn);
    ASSERT_TRUE(serial.same_shape(parallel));
    EXPECT_EQ(max_abs_diff(serial, parallel), 0.0f)
        << "kernel result changed at " << t << " threads";
  }
}

/// CRISP hybrid pattern: uniform per-row block pruning composed with N:M.
Tensor hybrid_matrix(std::int64_t rows, std::int64_t cols, std::int64_t block,
                     std::int64_t n, std::int64_t m,
                     std::int64_t pruned_per_row, Rng& rng) {
  Tensor w = Tensor::randn({rows, cols}, rng);
  Tensor scores = Tensor::rand({rows, cols}, rng, 0.01f, 1.0f);
  Tensor nm = sparse::nm_mask(as_matrix(scores, rows, cols), n, m);
  sparse::BlockGrid grid{rows, cols, block};
  Tensor bscores = sparse::block_scores(as_matrix(scores, rows, cols), grid);
  std::vector<std::int64_t> prune(
      static_cast<std::size_t>(grid.grid_rows()), pruned_per_row);
  Tensor bmask = sparse::expand_block_mask(
      sparse::uniform_row_block_mask(bscores, grid, prune), grid);
  w.mul_(nm);
  w.mul_(bmask);
  return w;
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadGuard guard;
  kernels::set_num_threads(4);
  const std::int64_t total = 1037;  // not a multiple of any chunk size
  std::vector<int> hits(static_cast<std::size_t>(total), 0);
  kernels::parallel_for(total, [&](std::int64_t b, std::int64_t e) {
    ASSERT_LE(0, b);
    ASSERT_LE(b, e);
    ASSERT_LE(e, total);
    for (std::int64_t i = b; i < e; ++i) ++hits[static_cast<std::size_t>(i)];
  });
  for (std::int64_t i = 0; i < total; ++i) EXPECT_EQ(hits[i], 1) << "i=" << i;
}

TEST(ParallelFor, EmptyAndTinyRanges) {
  ThreadGuard guard;
  kernels::set_num_threads(8);
  int calls = 0;
  kernels::parallel_for(0, [&](std::int64_t, std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  kernels::parallel_for(1, [&](std::int64_t b, std::int64_t e) {
    ++calls;
    EXPECT_EQ(b, 0);
    EXPECT_EQ(e, 1);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, GrainCoarsensChunks) {
  ThreadGuard guard;
  kernels::set_num_threads(4);
  std::mutex m;
  std::vector<std::int64_t> widths;
  kernels::parallel_for(
      100,
      [&](std::int64_t b, std::int64_t e) {
        std::lock_guard<std::mutex> lk(m);
        widths.push_back(e - b);
      },
      /*grain=*/64);
  // 100 indices at grain 64 -> chunks of 64 and 36.
  ASSERT_EQ(widths.size(), 2u);
  EXPECT_EQ(widths[0] + widths[1], 100);
  for (const std::int64_t w : widths) EXPECT_GE(w, 36);
}

TEST(ParallelFor, PropagatesExceptions) {
  ThreadGuard guard;
  kernels::set_num_threads(4);
  EXPECT_THROW(
      kernels::parallel_for(64,
                            [&](std::int64_t b, std::int64_t) {
                              if (b == 0) throw std::runtime_error("boom");
                            }),
      std::runtime_error);
  // Pool must stay usable after an exception.
  std::atomic<std::int64_t> sum{0};
  kernels::parallel_for(64, [&](std::int64_t b, std::int64_t e) {
    sum.fetch_add(e - b);
  });
  EXPECT_EQ(sum.load(), 64);
}

TEST(ParallelFor, NestedCallsRunSerially) {
  ThreadGuard guard;
  kernels::set_num_threads(4);
  std::atomic<bool> saw_nested_parallel{false};
  std::atomic<std::int64_t> inner_total{0};
  kernels::parallel_for(8, [&](std::int64_t, std::int64_t e_outer) {
    (void)e_outer;
    if (kernels::in_parallel_region()) {
      kernels::parallel_for(16, [&](std::int64_t b, std::int64_t e) {
        if (kernels::in_parallel_region()) {
          // still flagged: the nested loop must not resubmit to the pool
        } else {
          saw_nested_parallel = true;
        }
        inner_total.fetch_add(e - b);
      });
    }
  });
  EXPECT_FALSE(saw_nested_parallel.load());
  EXPECT_GT(inner_total.load(), 0);
}

TEST(ParallelFor, SetNumThreads) {
  ThreadGuard guard;
  kernels::set_num_threads(3);
  EXPECT_EQ(kernels::num_threads(), 3);
  kernels::set_num_threads(0);  // reset to environment/hardware default
  EXPECT_GE(kernels::num_threads(), 1);
}

TEST(DenseGemm, ThreadCountInvariantAndMatchesNaive) {
  ThreadGuard guard;
  Rng rng(11);
  // Odd sizes that straddle chunk boundaries; k > kKc exercises the k-panel.
  const std::int64_t m = 37, k = kernels::kKc + 29, n = 23;
  const Tensor a = Tensor::randn({m, k}, rng);
  const Tensor b = Tensor::randn({k, n}, rng);

  expect_thread_invariant([&] { return matmul(a, b); });

  // ikj naive reference — the scalar tier keeps this exact accumulation
  // order, so under forced-scalar dispatch equality is bitwise.
  Tensor want({m, n});
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t p = 0; p < k; ++p)
      for (std::int64_t j = 0; j < n; ++j)
        want[i * n + j] += a[i * k + p] * b[p * n + j];
  {
    kernels::simd::TierScope tier(kernels::simd::Tier::kScalar);
    EXPECT_EQ(max_abs_diff(at_threads(8, [&] { return matmul(a, b); }), want),
              0.0f);
  }
  // SIMD tiers contract to FMA, so they match to rounding, not bitwise.
  EXPECT_TRUE(allclose(at_threads(8, [&] { return matmul(a, b); }), want,
                       kTierRtol, kTierAtol));
}

TEST(DenseGemm, AccumulateVariantThreadCountInvariant) {
  ThreadGuard guard;
  Rng rng(12);
  const std::int64_t m = 19, k = 301, n = 31;
  const Tensor a = Tensor::randn({m, k}, rng);
  const Tensor b = Tensor::randn({k, n}, rng);
  const Tensor seed = Tensor::randn({m, n}, rng);
  expect_thread_invariant([&] {
    Tensor c = seed;
    matmul_accumulate(as_matrix(a, m, k), as_matrix(b, k, n),
                      as_matrix(c, m, n));
    return c;
  });
}

TEST(DenseGemm, TnVariantThreadCountInvariant) {
  ThreadGuard guard;
  Rng rng(13);
  const std::int64_t k = 300, m = 41, n = 17;  // A stored K x M
  const Tensor a = Tensor::randn({k, m}, rng);
  const Tensor b = Tensor::randn({k, n}, rng);
  expect_thread_invariant([&] {
    Tensor c({m, n});
    matmul_tn(as_matrix(a, k, m), as_matrix(b, k, n), as_matrix(c, m, n));
    return c;
  });
}

TEST(DenseGemm, NtVariantThreadCountInvariant) {
  ThreadGuard guard;
  Rng rng(14);
  const std::int64_t m = 43, k = 270, n = 19;  // B stored N x K
  const Tensor a = Tensor::randn({m, k}, rng);
  const Tensor b = Tensor::randn({n, k}, rng);
  expect_thread_invariant([&] {
    Tensor c({m, n});
    matmul_nt(as_matrix(a, m, k), as_matrix(b, n, k), as_matrix(c, m, n));
    return c;
  });
}

TEST(DenseGemm, MalformedOperandsThrow) {
  Rng rng(15);
  Tensor a = Tensor::randn({4, 6}, rng);
  Tensor b = Tensor::randn({6, 5}, rng);
  Tensor c({4, 5});

  // Inner-dimension mismatch: B claims the wrong row count.
  EXPECT_THROW(matmul(as_matrix(a, 4, 6), as_matrix(b, 5, 6),
                      as_matrix(c, 4, 5)),
               std::runtime_error);
  // B's column count disagrees with the k x n contract — the seed silently
  // read out of bounds here.
  EXPECT_THROW(matmul(as_matrix(a, 4, 6), as_matrix(b, 6, 4),
                      as_matrix(c, 4, 5)),
               std::runtime_error);
  // Output shape mismatch.
  EXPECT_THROW(matmul(as_matrix(a, 4, 6), as_matrix(b, 6, 5),
                      as_matrix(c, 5, 4)),
               std::runtime_error);
  // NT variant: B stored N x K, so a K x N view must be rejected.
  Tensor bt = Tensor::randn({5, 6}, rng);
  EXPECT_THROW(matmul_nt(as_matrix(a, 4, 6), as_matrix(bt, 6, 5),
                         as_matrix(c, 4, 5)),
               std::runtime_error);
}

class SpmmKernelSuite : public ::testing::Test {
 protected:
  static constexpr std::int64_t kRows = 64, kCols = 96, kBlock = 16;
  static constexpr std::int64_t kN = 2, kM = 4, kBatch = 33;

  void SetUp() override {
    Rng rng(21);
    weights_ = hybrid_matrix(kRows, kCols, kBlock, kN, kM,
                             /*pruned_per_row=*/2, rng);
    x_ = Tensor::randn({kCols, kBatch}, rng);
  }

  /// Checks the SpmmKernel contract for one implementation: correct result
  /// vs the dense reference, bit-identical across 1/2/8 threads, and
  /// sensible interface metadata.
  void check(const kernels::SpmmKernel& kernel, const char* want_name) {
    ThreadGuard guard;
    EXPECT_STREQ(kernel.format_name(), want_name);
    EXPECT_EQ(kernel.rows(), kRows);
    EXPECT_EQ(kernel.cols(), kCols);

    const Tensor ref = sparse::dense_matmul(weights_, x_);
    const Tensor got = at_threads(4, [&] { return sparse::spmm(kernel, x_); });
    EXPECT_TRUE(allclose(got, ref, 1e-4f, 1e-4f)) << want_name;

    expect_thread_invariant([&] { return sparse::spmm(kernel, x_); });
  }

  Tensor weights_;
  Tensor x_;
};

TEST_F(SpmmKernelSuite, Csr) {
  check(sparse::CsrMatrix::encode(as_matrix(weights_, kRows, kCols)), "csr");
}

TEST_F(SpmmKernelSuite, Ellpack) {
  check(sparse::EllpackMatrix::encode(as_matrix(weights_, kRows, kCols)),
        "ellpack");
}

TEST_F(SpmmKernelSuite, BlockedEll) {
  check(sparse::BlockedEllMatrix::encode(as_matrix(weights_, kRows, kCols),
                                         kBlock),
        "blocked-ell");
}

TEST_F(SpmmKernelSuite, Crisp) {
  check(sparse::CrispMatrix::encode(as_matrix(weights_, kRows, kCols), kBlock,
                                    kN, kM),
        "crisp");
}

TEST_F(SpmmKernelSuite, CrispQuantized) {
  // The int8 payload path (values released, spmm serves from quantized
  // slots): exact against the dequantized weights, bit-identical across
  // thread counts, and tier-parity like every other kernel.
  auto cm = sparse::CrispMatrix::encode(as_matrix(weights_, kRows, kCols),
                                        kBlock, kN, kM);
  cm.quantize_payload();
  cm.release_fp32_payload();
  ASSERT_TRUE(cm.has_quantized());
  ASSERT_FALSE(cm.has_fp32());

  ThreadGuard guard;
  const Tensor qref = sparse::dense_matmul(cm.decode(), x_);
  const Tensor got = at_threads(4, [&] { return sparse::spmm(cm, x_); });
  EXPECT_TRUE(allclose(got, qref, 1e-4f, 1e-4f));

  expect_thread_invariant([&] { return sparse::spmm(cm, x_); });
  expect_tier_parity([&] { return sparse::spmm(cm, x_); });
}

TEST_F(SpmmKernelSuite, DispatchRejectsBadShapes) {
  const auto csr = sparse::CsrMatrix::encode(as_matrix(weights_, kRows, kCols));
  Rng rng(5);
  const Tensor bad = Tensor::randn({kCols + 1, kBatch}, rng);
  EXPECT_THROW(sparse::spmm(csr, bad), std::runtime_error);
}

TEST(ParallelFor, ParseThreadCountValidation) {
  EXPECT_EQ(kernels::parse_thread_count(nullptr), 0);
  EXPECT_EQ(kernels::parse_thread_count(""), 0);
  EXPECT_EQ(kernels::parse_thread_count("abc"), 0);
  EXPECT_EQ(kernels::parse_thread_count("0"), 0);
  EXPECT_EQ(kernels::parse_thread_count("-3"), 0);
  EXPECT_EQ(kernels::parse_thread_count("4x"), 0);
  EXPECT_EQ(kernels::parse_thread_count("2.5"), 0);
  EXPECT_EQ(kernels::parse_thread_count("99999999999999999999"), 0);
  EXPECT_EQ(kernels::parse_thread_count("4"), 4);
  EXPECT_EQ(kernels::parse_thread_count("  8 "), 8);
  EXPECT_EQ(kernels::parse_thread_count("+2"), 2);
  EXPECT_EQ(kernels::parse_thread_count("100000"), kernels::kMaxThreads);
}

TEST(ParallelFor, EnvThreadCountValidation) {
  ThreadGuard guard;
  // A valid CRISP_NUM_THREADS value is honoured on reset...
  ASSERT_EQ(setenv("CRISP_NUM_THREADS", "3", 1), 0);
  kernels::set_num_threads(0);
  EXPECT_EQ(kernels::num_threads(), 3);
  // ...an invalid one is rejected (with a stderr warning) and resolution
  // falls back to the hardware default instead of silently misbehaving.
  ASSERT_EQ(setenv("CRISP_NUM_THREADS", "not-a-number", 1), 0);
  kernels::set_num_threads(0);
  const int fallback = kernels::num_threads();
  EXPECT_GE(fallback, 1);
  ASSERT_EQ(unsetenv("CRISP_NUM_THREADS"), 0);
  kernels::set_num_threads(0);
  EXPECT_EQ(kernels::num_threads(), fallback);
}

TEST(SimdDispatch, TierNamesAndOverride) {
  using kernels::simd::Tier;
  EXPECT_STREQ(kernels::simd::tier_name(Tier::kScalar), "scalar");
  EXPECT_STREQ(kernels::simd::tier_name(Tier::kAvx2), "avx2");
  EXPECT_STREQ(kernels::simd::tier_name(Tier::kNeon), "neon");

  const Tier def = kernels::simd::active_tier();
  kernels::simd::set_tier(Tier::kScalar);
  EXPECT_EQ(kernels::simd::active_tier(), Tier::kScalar);
  kernels::simd::set_tier(kernels::simd::supported_tier());
  EXPECT_EQ(kernels::simd::active_tier(), kernels::simd::supported_tier());
  kernels::simd::reset_tier();
  EXPECT_EQ(kernels::simd::active_tier(), def);
}

TEST(SimdDispatch, RejectsUnavailableTier) {
  using kernels::simd::Tier;
  // At most one SIMD tier exists per architecture/build, so anything other
  // than scalar and the supported tier must be rejected.
  const Tier sup = kernels::simd::supported_tier();
  if (sup != Tier::kAvx2)
    EXPECT_THROW(kernels::simd::set_tier(Tier::kAvx2), std::runtime_error);
  if (sup != Tier::kNeon)
    EXPECT_THROW(kernels::simd::set_tier(Tier::kNeon), std::runtime_error);
  EXPECT_EQ(kernels::simd::active_tier(), kernels::simd::active().tier);
}

// Shapes chosen so m straddles the simd::kMr row block, n straddles the
// 16/8-lane column tiles (forcing the vector tails), and k straddles the
// kKc reduction panel — the corners where a SIMD kernel would break first.
TEST(SimdParity, DenseGemmTailHeavyShapes) {
  Rng rng(31);
  const struct {
    std::int64_t m, k, n;
  } shapes[] = {
      {13, kernels::kKc + 29, 37},
      {4, 64, 41},
      {1, 31, 7},
      {30, 2 * kernels::kKc + 5, 64},
  };
  for (const auto& s : shapes) {
    const Tensor a = Tensor::randn({s.m, s.k}, rng);
    const Tensor b = Tensor::randn({s.k, s.n}, rng);
    expect_tier_parity([&] { return matmul(a, b); });

    const Tensor seed = Tensor::randn({s.m, s.n}, rng);
    expect_tier_parity([&] {
      Tensor c = seed;
      matmul_accumulate(as_matrix(a, s.m, s.k), as_matrix(b, s.k, s.n),
                        as_matrix(c, s.m, s.n));
      return c;
    });
  }
}

TEST(SimdParity, GemmTnTailHeavyShapes) {
  Rng rng(32);
  const struct {
    std::int64_t k, m, n;
  } shapes[] = {{kernels::kKc + 17, 13, 37}, {65, 3, 21}, {33, 1, 9}};
  for (const auto& s : shapes) {
    const Tensor a = Tensor::randn({s.k, s.m}, rng);  // stored K x M
    const Tensor b = Tensor::randn({s.k, s.n}, rng);
    expect_tier_parity([&] {
      Tensor c({s.m, s.n});
      matmul_tn(as_matrix(a, s.k, s.m), as_matrix(b, s.k, s.n),
                as_matrix(c, s.m, s.n));
      return c;
    });
  }
}

TEST(SimdParity, GemmNtTailHeavyShapes) {
  Rng rng(33);
  const struct {
    std::int64_t m, k, n;
  } shapes[] = {{13, 271, 37}, {5, 33, 11}, {1, 7, 3}};
  for (const auto& s : shapes) {
    const Tensor a = Tensor::randn({s.m, s.k}, rng);
    const Tensor b = Tensor::randn({s.n, s.k}, rng);  // stored N x K
    expect_tier_parity([&] {
      Tensor c({s.m, s.n});
      matmul_nt(as_matrix(a, s.m, s.k), as_matrix(b, s.n, s.k),
                as_matrix(c, s.m, s.n));
      return c;
    });
  }
}

TEST(SimdParity, SpmmFormatsTailHeavyBatches) {
  constexpr std::int64_t kRows = 64, kCols = 96, kBlock = 16;
  Rng rng(34);
  const Tensor w = hybrid_matrix(kRows, kCols, kBlock, 2, 4,
                                 /*pruned_per_row=*/2, rng);
  const auto csr = sparse::CsrMatrix::encode(as_matrix(w, kRows, kCols));
  const auto ell = sparse::EllpackMatrix::encode(as_matrix(w, kRows, kCols));
  const auto bell =
      sparse::BlockedEllMatrix::encode(as_matrix(w, kRows, kCols), kBlock);
  const auto cm =
      sparse::CrispMatrix::encode(as_matrix(w, kRows, kCols), kBlock, 2, 4);
  const kernels::SpmmKernel* formats[] = {&csr, &ell, &bell, &cm};
  // Batches exercising the 16-wide, 8-wide, and scalar axpy tails.
  for (const std::int64_t batch : {5, 19, 24}) {
    const Tensor x = Tensor::randn({kCols, batch}, rng);
    for (const kernels::SpmmKernel* kernel : formats) {
      SCOPED_TRACE(kernel->format_name());
      expect_tier_parity([&] { return sparse::spmm(*kernel, x); });
    }
  }
}

TEST(SimdParity, AxpyI8TailHeavyLengths) {
  // The dequantizing axpy behind the int8 spmm path: every tier must agree
  // with forced-scalar within rounding, across vector-tail lengths and the
  // full int8 coefficient range.
  Rng rng(35);
  for (const std::int64_t n : {1LL, 3LL, 7LL, 8LL, 9LL, 15LL, 17LL, 33LL,
                               100LL}) {
    const Tensor x = Tensor::randn({n}, rng);
    const Tensor seed = Tensor::randn({n}, rng);
    for (const int q : {-127, -3, 1, 127}) {
      expect_tier_parity([&] {
        Tensor y = seed;
        kernels::simd::active().axpy_i8(static_cast<std::int8_t>(q), 0.0137f,
                                        x.data(), y.data(), n);
        return y;
      });
    }
  }
}

TEST(ThreadBudget, CapsNestsAndRestores) {
  ThreadGuard guard;
  kernels::set_num_threads(8);
  EXPECT_EQ(kernels::thread_budget(), 0);
  EXPECT_EQ(kernels::num_threads(), 8);
  {
    kernels::ScopedThreadBudget budget(2);
    EXPECT_EQ(kernels::thread_budget(), 2);
    EXPECT_EQ(kernels::num_threads(), 2);
    {
      kernels::ScopedThreadBudget looser(4);  // tightest enclosing cap wins
      EXPECT_EQ(kernels::num_threads(), 2);
    }
    {
      kernels::ScopedThreadBudget tighter(1);
      EXPECT_EQ(kernels::num_threads(), 1);
    }
    {
      kernels::ScopedThreadBudget none(0);  // 0 = no cap from this scope
      EXPECT_EQ(kernels::num_threads(), 2);
    }
    EXPECT_EQ(kernels::num_threads(), 2);
  }
  EXPECT_EQ(kernels::thread_budget(), 0);
  EXPECT_EQ(kernels::num_threads(), 8);
}

TEST(ThreadBudget, IsPerThread) {
  ThreadGuard guard;
  kernels::set_num_threads(8);
  kernels::ScopedThreadBudget budget(2);
  int other_thread_sees = 0;
  std::thread([&] { other_thread_sees = kernels::num_threads(); }).join();
  EXPECT_EQ(other_thread_sees, 8);  // budgets never leak across threads
  EXPECT_EQ(kernels::num_threads(), 2);
}

TEST(ThreadBudget, DoesNotChangeResults) {
  ThreadGuard guard;
  kernels::set_num_threads(8);
  Rng rng(21);
  const Tensor a = Tensor::randn({37, 53}, rng);
  const Tensor b = Tensor::randn({53, 29}, rng);
  Tensor unbudgeted({37, 29});
  matmul(as_matrix(a, 37, 53), as_matrix(b, 53, 29),
         as_matrix(unbudgeted, 37, 29));
  kernels::ScopedThreadBudget budget(2);
  Tensor budgeted({37, 29});
  matmul(as_matrix(a, 37, 53), as_matrix(b, 53, 29),
         as_matrix(budgeted, 37, 29));
  EXPECT_EQ(max_abs_diff(unbudgeted, budgeted), 0.0f);
}

TEST(NnThreading, MaxPoolForwardThreadCountInvariant) {
  ThreadGuard guard;
  Rng rng(5);
  const Tensor x = Tensor::randn({4, 6, 17, 13}, rng);
  nn::MaxPool2d pool("pool", 3, 2);
  expect_thread_invariant([&] { return pool.forward_eval(x); });
  expect_thread_invariant([&] { return pool.forward(x, /*train=*/true); });
}

TEST(NnThreading, GlobalAvgPoolThreadCountInvariant) {
  ThreadGuard guard;
  Rng rng(6);
  const Tensor x = Tensor::randn({5, 7, 9, 11}, rng);
  nn::GlobalAvgPool gap("gap");
  expect_thread_invariant([&] { return gap.forward_eval(x); });
}

TEST(NnThreading, BatchNormEvalThreadCountInvariant) {
  ThreadGuard guard;
  Rng rng(7);
  const Tensor x = Tensor::randn({4, 12, 9, 7}, rng);
  nn::BatchNorm2d bn("bn", 12);
  expect_thread_invariant([&] { return bn.forward_eval(x); });
}

TEST(NnThreading, BatchNormTrainThreadCountInvariant) {
  ThreadGuard guard;
  Rng rng(8);
  const Tensor x = Tensor::randn({6, 12, 5, 5}, rng);
  // A fresh layer per run so running statistics start identical; the
  // returned activations AND the updated statistics must match bitwise.
  auto run = [&](int threads) {
    kernels::set_num_threads(threads);
    nn::BatchNorm2d bn("bn", 12);
    Tensor y = bn.forward(x, /*train=*/true);
    for (const nn::NamedBuffer& b : bn.buffers()) {
      const Tensor& stat = *b.tensor;
      Shape flat{y.numel() + stat.numel()};
      Tensor merged(flat);
      for (std::int64_t i = 0; i < y.numel(); ++i) merged[i] = y[i];
      for (std::int64_t i = 0; i < stat.numel(); ++i)
        merged[y.numel() + i] = stat[i];
      y = merged;
    }
    return y;
  };
  const Tensor serial = run(1);
  for (const int t : {2, 8}) {
    const Tensor parallel = run(t);
    ASSERT_TRUE(serial.same_shape(parallel));
    EXPECT_EQ(max_abs_diff(serial, parallel), 0.0f)
        << "batchnorm training forward changed at " << t << " threads";
  }
}

// ---------------------------------------------------------------------------
// Deterministic reduction (kernels/reduce.h) — the backward-pass primitive.

TEST(Reduce, ChunkCountIsPureAndBounded) {
  ThreadGuard guard;
  for (const std::int64_t total : {0LL, 1LL, 5LL, 16LL, 100LL, 4096LL}) {
    for (const std::int64_t grain : {1LL, 4LL, 1000LL}) {
      // Same answer no matter the ambient thread count.
      kernels::set_num_threads(1);
      const std::int64_t serial = kernels::reduce_chunk_count(total, grain);
      kernels::set_num_threads(8);
      EXPECT_EQ(serial, kernels::reduce_chunk_count(total, grain));
      if (total <= 0) {
        EXPECT_EQ(serial, 0);
      } else {
        EXPECT_GE(serial, 1);
        EXPECT_LE(serial, kernels::kMaxReduceChunks);
        // Chunks cover [0, total) exactly.
        const std::int64_t width = kernels::reduce_chunk_width(total, grain);
        EXPECT_EQ(serial, (total + width - 1) / width);
        EXPECT_GE(width, grain);
      }
    }
  }
}

TEST(Reduce, DeterministicReduceSumsExactly) {
  ThreadGuard guard;
  // Integer-valued floats sum exactly, so the tree's value can be checked
  // against arithmetic no matter how the pairwise merges associate.
  const std::int64_t len = 1000;
  for (const std::int64_t nparts : {1, 2, 3, 7, 16}) {
    std::vector<float> parts(static_cast<std::size_t>(nparts * len));
    for (std::int64_t p = 0; p < nparts; ++p)
      for (std::int64_t j = 0; j < len; ++j)
        parts[static_cast<std::size_t>(p * len + j)] =
            static_cast<float>(p + j % 17);
    Tensor out = Tensor::ones({len});
    kernels::deterministic_reduce(parts.data(), nparts, len, out.data());
    for (std::int64_t j = 0; j < std::min<std::int64_t>(len, 32); ++j) {
      const float expected =
          1.0f + static_cast<float>(
                     static_cast<std::int64_t>(nparts) * (j % 17) +
                     static_cast<std::int64_t>(nparts * (nparts - 1) / 2));
      EXPECT_EQ(out[j], expected) << "nparts " << nparts << " slot " << j;
    }
  }
}

TEST(Reduce, ParallelAccumulateThreadCountInvariant) {
  ThreadGuard guard;
  Rng rng(12);
  const std::int64_t total = 100, len = 512;
  const Tensor contributions = Tensor::randn({total, len}, rng);
  auto run = [&](int threads) {
    kernels::set_num_threads(threads);
    Tensor out = Tensor::ones({len});
    kernels::parallel_accumulate(
        total, /*grain=*/1, len,
        [&](float* acc, std::int64_t b0, std::int64_t b1) {
          for (std::int64_t b = b0; b < b1; ++b)
            for (std::int64_t j = 0; j < len; ++j)
              acc[j] += contributions[b * len + j];
        },
        out.data());
    return out;
  };
  const Tensor serial = run(1);
  for (const int t : {2, 8}) {
    const Tensor parallel = run(t);
    EXPECT_EQ(max_abs_diff(serial, parallel), 0.0f)
        << "parallel_accumulate changed at " << t << " threads";
  }
  // And the value is the right sum (up to float reassociation).
  Tensor naive = Tensor::ones({len});
  for (std::int64_t b = 0; b < total; ++b)
    for (std::int64_t j = 0; j < len; ++j)
      naive[j] += contributions[b * len + j];
  EXPECT_TRUE(allclose(serial, naive, 1e-4f, 1e-4f));
}

TEST(Reduce, SingleChunkAccumulatesInPlace) {
  ThreadGuard guard;
  kernels::set_num_threads(8);
  // total below any chunking threshold: the fast path writes straight into
  // out with no scratch, and still matches the serial loop bitwise.
  Tensor out = Tensor::zeros({4});
  kernels::parallel_accumulate(
      3, /*grain=*/1000, 4,
      [](float* acc, std::int64_t b0, std::int64_t b1) {
        for (std::int64_t b = b0; b < b1; ++b)
          for (std::int64_t j = 0; j < 4; ++j)
            acc[j] += static_cast<float>(b + 1);
      },
      out.data());
  for (std::int64_t j = 0; j < 4; ++j) EXPECT_EQ(out[j], 6.0f);
}

}  // namespace
}  // namespace crisp
