// Training-stack tests: loss, optimizer, trainer, model builders, FLOPs
// accounting, and the model zoo cache.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>

#include "nn/activations.h"
#include "nn/flops.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/models/common.h"
#include "nn/models/resnet.h"
#include "nn/trainer.h"
#include "nn/zoo.h"

namespace crisp::nn {
namespace {

TEST(Softmax, RowsSumToOne) {
  Tensor logits({2, 3}, {1.0f, 2.0f, 3.0f, -1.0f, 0.0f, 1.0f});
  Tensor p = softmax(logits);
  for (std::int64_t b = 0; b < 2; ++b) {
    float sum = 0.0f;
    for (std::int64_t c = 0; c < 3; ++c) sum += p.at({b, c});
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
  EXPECT_GT(p.at({0, 2}), p.at({0, 0}));
}

TEST(Softmax, NumericallyStableAtLargeLogits) {
  Tensor logits({1, 2}, {1000.0f, 998.0f});
  Tensor p = softmax(logits);
  EXPECT_NEAR(p[0] + p[1], 1.0f, 1e-5f);
  EXPECT_GT(p[0], p[1]);
  EXPECT_FALSE(std::isnan(p[0]));
}

TEST(CrossEntropy, UniformLogitsGiveLogC) {
  Tensor logits = Tensor::zeros({4, 10});
  const LossResult r = cross_entropy(logits, {0, 3, 5, 9});
  EXPECT_NEAR(r.value, std::log(10.0f), 1e-4f);
}

TEST(CrossEntropy, GradientRowsSumToZero) {
  Rng rng(1);
  Tensor logits = Tensor::randn({3, 5}, rng);
  const LossResult r = cross_entropy(logits, {1, 0, 4});
  for (std::int64_t b = 0; b < 3; ++b) {
    float sum = 0.0f;
    for (std::int64_t c = 0; c < 5; ++c) sum += r.grad.at({b, c});
    EXPECT_NEAR(sum, 0.0f, 1e-5f);
  }
  // Gradient at the true class is negative (pushes the logit up).
  EXPECT_LT(r.grad.at({0, 1}), 0.0f);
}

TEST(CrossEntropy, GradientMatchesFiniteDifference) {
  Rng rng(2);
  Tensor logits = Tensor::randn({2, 4}, rng);
  const std::vector<std::int64_t> labels{2, 0};
  const LossResult r = cross_entropy(logits, labels);
  const float eps = 1e-3f;
  for (std::int64_t i = 0; i < logits.numel(); ++i) {
    Tensor lp = logits, lm = logits;
    lp[i] += eps;
    lm[i] -= eps;
    const float numeric =
        (cross_entropy(lp, labels).value - cross_entropy(lm, labels).value) /
        (2.0f * eps);
    EXPECT_NEAR(r.grad[i], numeric, 5e-3f);
  }
}

TEST(CrossEntropy, RejectsBadLabels) {
  Tensor logits = Tensor::zeros({2, 3});
  EXPECT_THROW(cross_entropy(logits, {0}), std::runtime_error);
  EXPECT_THROW(cross_entropy(logits, {0, 3}), std::runtime_error);
}

// ---------------------------------------------------------------------------
// SGD.

TEST(Sgd, HandComputedUpdate) {
  Parameter p;
  p.name = "w";
  p.value = Tensor({1}, {1.0f});
  p.grad = Tensor({1}, {0.5f});

  SgdConfig cfg;
  cfg.lr = 0.1f;
  cfg.momentum = 0.9f;
  cfg.weight_decay = 0.0f;
  Sgd opt({&p}, cfg);
  opt.step();
  // v = -lr*g = -0.05; w = 1 - 0.05
  EXPECT_NEAR(p.value[0], 0.95f, 1e-6f);
  opt.step();
  // v = 0.9*(-0.05) - 0.05 = -0.095; w = 0.95 - 0.095
  EXPECT_NEAR(p.value[0], 0.855f, 1e-6f);
}

TEST(Sgd, WeightDecayPullsTowardZero) {
  Parameter p;
  p.name = "w";
  p.value = Tensor({1}, {2.0f});
  p.grad = Tensor({1}, {0.0f});
  SgdConfig cfg;
  cfg.lr = 0.1f;
  cfg.momentum = 0.0f;
  cfg.weight_decay = 0.5f;
  Sgd opt({&p}, cfg);
  opt.step();
  EXPECT_NEAR(p.value[0], 2.0f - 0.1f * 0.5f * 2.0f, 1e-6f);
}

TEST(Sgd, ZeroGradClears) {
  Parameter p;
  p.name = "w";
  p.value = Tensor({2}, {1.0f, 1.0f});
  p.grad = Tensor({2}, {3.0f, 4.0f});
  Sgd opt({&p}, SgdConfig{});
  opt.zero_grad();
  EXPECT_FLOAT_EQ(p.grad.abs_max(), 0.0f);
}

// ---------------------------------------------------------------------------
// Trainer on a separable toy problem.

data::Dataset toy_blobs(std::int64_t per_class, std::uint64_t seed) {
  // Two classes of 2x2x... images: class 0 bright top, class 1 bright bottom.
  Rng rng(seed);
  const std::int64_t n = per_class * 2;
  data::Dataset d;
  d.images = Tensor({n, 3, 4, 4});
  d.labels.resize(static_cast<std::size_t>(n));
  d.num_classes = 2;
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t cls = i % 2;
    d.labels[static_cast<std::size_t>(i)] = cls;
    for (std::int64_t c = 0; c < 3; ++c)
      for (std::int64_t y = 0; y < 4; ++y)
        for (std::int64_t x = 0; x < 4; ++x) {
          const bool lit = (cls == 0) ? (y < 2) : (y >= 2);
          d.images.at({i, c, y, x}) =
              (lit ? 1.0f : -1.0f) + rng.normal(0.0f, 0.1f);
        }
  }
  return d;
}

std::unique_ptr<Sequential> toy_model(std::uint64_t seed) {
  Rng rng(seed);
  auto m = std::make_unique<Sequential>("toy");
  m->emplace<Flatten>("flat");
  m->emplace<Linear>("l1", 48, 16, rng);
  m->emplace<ReLU>("r");
  m->emplace<Linear>("l2", 16, 2, rng);
  return m;
}

TEST(Trainer, LearnsSeparableToyProblem) {
  const data::Dataset train_set = toy_blobs(32, 1);
  const data::Dataset test = toy_blobs(16, 2);
  auto model = toy_model(3);

  TrainConfig tc;
  tc.epochs = 8;
  tc.batch_size = 16;
  tc.sgd.lr = 0.05f;
  Rng rng(4);
  const auto stats = train(*model, train_set, tc, rng);
  ASSERT_EQ(stats.size(), 8u);
  EXPECT_LT(stats.back().loss, stats.front().loss);
  EXPECT_GE(evaluate(*model, test), 0.95f);
}

TEST(Trainer, DeterministicGivenSeed) {
  const data::Dataset train_set = toy_blobs(16, 5);
  auto m1 = toy_model(7);
  auto m2 = toy_model(7);
  TrainConfig tc;
  tc.epochs = 2;
  tc.batch_size = 8;
  Rng r1(9), r2(9);
  const auto s1 = train(*m1, train_set, tc, r1);
  const auto s2 = train(*m2, train_set, tc, r2);
  EXPECT_FLOAT_EQ(s1.back().loss, s2.back().loss);
}

TEST(Trainer, RestrictedEvaluation) {
  // Craft a model-free check through evaluate(): restrict to a class set
  // that excludes the argmax class.
  auto model = toy_model(11);
  const data::Dataset test = toy_blobs(8, 12);
  const float full = evaluate(*model, test);
  const float restricted = evaluate(*model, test, 64, {0, 1});
  // With all classes allowed the two calls agree (2-class problem).
  EXPECT_FLOAT_EQ(full, restricted);
}

TEST(Trainer, EvaluateLossMatchesCrossEntropyScale) {
  auto model = toy_model(13);
  const data::Dataset test = toy_blobs(8, 14);
  const float loss = evaluate_loss(*model, test);
  EXPECT_GT(loss, 0.0f);
  EXPECT_LT(loss, 10.0f);
}

// ---------------------------------------------------------------------------
// Model builders.

ModelConfig tiny_model_config() {
  ModelConfig cfg;
  cfg.num_classes = 7;
  cfg.input_size = 8;
  cfg.width_mult = 0.125f;
  return cfg;
}

class ModelBuilderTest : public ::testing::TestWithParam<ModelKind> {};

TEST_P(ModelBuilderTest, BuildsForwardsAndBackwards) {
  const ModelConfig cfg = tiny_model_config();
  auto model = make_model(GetParam(), cfg);
  Rng rng(1);
  Tensor x = Tensor::randn({2, 3, cfg.input_size, cfg.input_size}, rng);
  Tensor y = model->forward(x, true);
  EXPECT_EQ(y.shape(), (Shape{2, cfg.num_classes}));
  Tensor g = model->backward(Tensor::ones(y.shape()));
  EXPECT_EQ(g.shape(), x.shape());
  EXPECT_FALSE(model->prunable_parameters().empty());
}

TEST_P(ModelBuilderTest, PrunableParametersHaveMatrixViews) {
  auto model = make_model(GetParam(), tiny_model_config());
  for (Parameter* p : model->prunable_parameters()) {
    EXPECT_GT(p->matrix_rows, 0) << p->name;
    EXPECT_GT(p->matrix_cols, 0) << p->name;
    EXPECT_EQ(p->matrix_rows * p->matrix_cols, p->value.numel()) << p->name;
  }
}

TEST_P(ModelBuilderTest, StemExcludedFromPruningByDefault) {
  auto model = make_model(GetParam(), tiny_model_config());
  for (Parameter* p : model->prunable_parameters())
    EXPECT_EQ(p->name.find("stem"), std::string::npos) << p->name;
}

TEST_P(ModelBuilderTest, DeterministicInSeed) {
  auto a = make_model(GetParam(), tiny_model_config());
  auto b = make_model(GetParam(), tiny_model_config());
  Rng rng(2);
  Tensor x = Tensor::randn({1, 3, 8, 8}, rng);
  EXPECT_TRUE(allclose(a->forward(x, false), b->forward(x, false), 0.0f, 0.0f));
}

INSTANTIATE_TEST_SUITE_P(Kinds, ModelBuilderTest,
                         ::testing::Values(ModelKind::kResNet50,
                                           ModelKind::kVgg16,
                                           ModelKind::kMobileNetV2));

TEST(ModelBuilders, ResNet50HasSixteenBottlenecks) {
  auto model = make_resnet50(tiny_model_config());
  std::int64_t bottlenecks = 0;
  for (Layer* l : model->children())
    if (dynamic_cast<Bottleneck*>(l) != nullptr) ++bottlenecks;
  EXPECT_EQ(bottlenecks, 16);  // [3, 4, 6, 3]
}

TEST(ModelBuilders, ScaledChannelsAlignToFour) {
  EXPECT_EQ(scaled_channels(64, 0.25f), 16);
  EXPECT_EQ(scaled_channels(64, 1.0f), 64);
  EXPECT_EQ(scaled_channels(24, 0.25f), 8);   // floor of 8
  EXPECT_EQ(scaled_channels(10, 1.0f), 12);   // rounded up to multiple of 4
  EXPECT_EQ(scaled_channels(64, 0.125f) % 4, 0);
}

TEST(ModelBuilders, KindNames) {
  EXPECT_STREQ(model_kind_name(ModelKind::kResNet50), "resnet50");
  EXPECT_STREQ(model_kind_name(ModelKind::kVgg16), "vgg16");
  EXPECT_STREQ(model_kind_name(ModelKind::kMobileNetV2), "mobilenetv2");
}

// ---------------------------------------------------------------------------
// FLOPs accounting.

TEST(Flops, DenseModelRatioIsOne) {
  auto model = make_vgg16(tiny_model_config());
  const FlopsReport report = count_flops(*model, {1, 3, 8, 8});
  EXPECT_GT(report.dense_total, 0);
  EXPECT_EQ(report.dense_total, report.sparse_total);
  EXPECT_DOUBLE_EQ(report.ratio(), 1.0);
  EXPECT_FALSE(report.layers.empty());
}

TEST(Flops, MaskingHalvesLayerMacs) {
  Rng rng(3);
  Sequential model("m");
  auto& lin = model.emplace<Linear>("l", 8, 4, rng, /*bias=*/false);
  lin.weight().ensure_mask();
  for (std::int64_t i = 0; i < lin.weight().mask.numel(); i += 2)
    lin.weight().mask[i] = 0.0f;

  const FlopsReport report = count_flops(model, {1, 8});
  ASSERT_EQ(report.layers.size(), 1u);
  EXPECT_DOUBLE_EQ(report.ratio(), 0.5);
  EXPECT_DOUBLE_EQ(report.layers[0].weight_sparsity, 0.5);
}

TEST(Flops, LeafLayerWalkSeesBlockInternals) {
  auto model = make_resnet50(tiny_model_config());
  const auto leaves = leaf_layers(*model);
  // Far more leaves than top-level entries (blocks expand).
  EXPECT_GT(leaves.size(), 60u);
  const auto prunable = prunable_layers(*model);
  EXPECT_GT(prunable.size(), 40u);
}

// ---------------------------------------------------------------------------
// Model zoo.

TEST(Zoo, CachesAndReloads) {
  const auto tmp =
      std::filesystem::temp_directory_path() / "crisp_zoo_test_cache";
  std::filesystem::remove_all(tmp);
  setenv("CRISP_CACHE_DIR", tmp.c_str(), 1);

  ZooSpec spec;
  spec.model = ModelKind::kVgg16;
  spec.dataset = DatasetKind::kCifar100Like;
  spec.width_mult = 0.125f;
  spec.input_size = 8;
  spec.pretrain_epochs = 1;
  spec.train_per_class = 2;
  spec.test_per_class = 1;

  const PretrainedModel first = zoo_pretrained(spec);
  EXPECT_FALSE(first.from_cache);
  const PretrainedModel second = zoo_pretrained(spec);
  EXPECT_TRUE(second.from_cache);
  EXPECT_FLOAT_EQ(first.test_accuracy, second.test_accuracy);

  // Weights identical bit-for-bit.
  auto pa = first.model->parameters();
  auto pb = second.model->parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i)
    EXPECT_TRUE(allclose(pa[i]->value, pb[i]->value, 0.0f, 0.0f));

  unsetenv("CRISP_CACHE_DIR");
  std::filesystem::remove_all(tmp);
}

TEST(Zoo, CacheKeyEncodesSpec) {
  ZooSpec a, b;
  b.width_mult = 0.5f;
  EXPECT_NE(a.cache_key(), b.cache_key());
  ZooSpec c;
  c.dataset = DatasetKind::kImageNetLike;
  EXPECT_NE(a.cache_key(), c.cache_key());
  EXPECT_EQ(a.cache_key(), ZooSpec{}.cache_key());
}

}  // namespace
}  // namespace crisp::nn
