// Deployment-artifact tests: PackedModel pack/save/load/unpack and packed
// execution (GEMM hooks) against the dense masked reference.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "core/block_pruning.h"
#include "core/pruner.h"
#include "data/class_pattern.h"
#include "deploy/packed_exec.h"
#include "deploy/packed_model.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/models/common.h"
#include "nn/pooling.h"
#include "nn/trainer.h"

namespace crisp::deploy {
namespace {

/// Temp-file path helper; files are tiny and removed by each test.
std::string temp_path(const char* stem) {
  return std::string(::testing::TempDir()) + stem;
}

/// Hybrid-pattern masks come from the shared core helper so every suite
/// exercises the exact invariant the CRISP pruner guarantees.
using core::install_random_hybrid_masks;

/// Small conv net with one grouped conv (hook-refusing) and a classifier.
std::unique_ptr<nn::Sequential> make_convnet(bool grouped_prunable = false) {
  Rng rng(7);
  auto model = std::make_unique<nn::Sequential>("testnet");
  nn::Conv2dSpec c1;
  c1.in_channels = 3;
  c1.out_channels = 16;
  c1.kernel = 3;
  c1.padding = 1;
  model->emplace<nn::Conv2d>("conv1", c1, rng);
  model->emplace<nn::ReLU>("relu1");
  nn::Conv2dSpec c2;
  c2.in_channels = 16;
  c2.out_channels = 16;
  c2.kernel = 3;
  c2.padding = 1;
  c2.groups = grouped_prunable ? 2 : 1;
  model->emplace<nn::Conv2d>("conv2", c2, rng);
  model->emplace<nn::ReLU>("relu2");
  model->emplace<nn::GlobalAvgPool>("gap");
  model->emplace<nn::Flatten>("flatten");
  model->emplace<nn::Linear>("fc", 16, 8, rng);
  return model;
}

TEST(PackedModel, PackEncodesEveryMaskedPrunable) {
  auto model = make_convnet();
  install_random_hybrid_masks(*model, 8, 2, 4, 1);
  const PackedModel packed = PackedModel::pack(*model, 8, 2, 4);

  std::int64_t masked = 0;
  for (nn::Parameter* p : model->prunable_parameters())
    if (p->has_mask()) ++masked;
  EXPECT_EQ(static_cast<std::int64_t>(packed.entries().size()), masked);
  EXPECT_GT(masked, 0);

  // Everything else is carried dense — biases plus any unmasked parameter.
  for (const auto& [name, tensor] : packed.dense_state())
    EXPECT_EQ(packed.find(name), nullptr) << name << " both packed and dense";
}

TEST(PackedModel, PackedEntriesDecodeToEffectiveWeights) {
  auto model = make_convnet();
  install_random_hybrid_masks(*model, 8, 2, 4, 1);
  const PackedModel packed = PackedModel::pack(*model, 8, 2, 4);
  for (nn::Parameter* p : model->prunable_parameters()) {
    const PackedEntry* e = packed.find(p->name);
    ASSERT_NE(e, nullptr);
    const Tensor decoded = e->matrix.decode();
    const Tensor eff = p->effective_value();
    EXPECT_FLOAT_EQ(max_abs_diff(decoded, eff.reshaped(decoded.shape())), 0.0f)
        << p->name;
  }
}

TEST(PackedModel, PackRejectsNonHybridMasks) {
  auto model = make_convnet();
  // Dense masks (all ones) violate nothing... so corrupt one group: three
  // survivors in a 2:4 group must be rejected by the encoder.
  for (nn::Parameter* p : model->prunable_parameters()) {
    p->ensure_mask();
    break;
  }
  EXPECT_THROW(PackedModel::pack(*model, 8, 2, 4), std::runtime_error);
}

TEST(PackedModel, StatsAccounting) {
  auto model = make_convnet();
  install_random_hybrid_masks(*model, 8, 2, 4, 1);
  const PackedModel packed = PackedModel::pack(*model, 8, 2, 4);
  const PackedStats s = packed.stats();

  std::int64_t dense_bits = 0;
  for (const auto& [name, t] : model->state_dict()) {
    (void)name;
    dense_bits += t.numel() * 32;
  }
  EXPECT_EQ(s.model_dense_bits, dense_bits);
  EXPECT_GT(s.packed_metadata_bits, 0);
  EXPECT_GT(s.packed_payload_bits, 0);
  EXPECT_LT(s.compression(), 1.0);  // hybrid sparsity must shrink the model

  std::int64_t payload = 0;
  for (const PackedEntry& e : packed.entries())
    payload += e.matrix.payload_bits();
  EXPECT_EQ(s.packed_payload_bits, payload);
}

TEST(PackedModel, SaveLoadRoundTrip) {
  auto model = make_convnet();
  install_random_hybrid_masks(*model, 8, 2, 4, 1);
  const PackedModel packed = PackedModel::pack(*model, 8, 2, 4);
  const std::string path = temp_path("packed_roundtrip.bin");
  packed.save(path);
  const PackedModel loaded = PackedModel::load(path);
  std::remove(path.c_str());

  EXPECT_EQ(loaded.n(), 2);
  EXPECT_EQ(loaded.m(), 4);
  EXPECT_EQ(loaded.block(), 8);
  ASSERT_EQ(loaded.entries().size(), packed.entries().size());
  for (std::size_t i = 0; i < packed.entries().size(); ++i) {
    const PackedEntry& a = packed.entries()[i];
    const PackedEntry& b = loaded.entries()[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.shape, b.shape);
    EXPECT_FLOAT_EQ(max_abs_diff(a.matrix.decode(), b.matrix.decode()), 0.0f);
    EXPECT_EQ(a.matrix.metadata_bits(), b.matrix.metadata_bits());
  }
  ASSERT_EQ(loaded.dense_state().size(), packed.dense_state().size());
  for (const auto& [name, tensor] : packed.dense_state()) {
    const auto it = loaded.dense_state().find(name);
    ASSERT_NE(it, loaded.dense_state().end()) << name;
    EXPECT_FLOAT_EQ(max_abs_diff(tensor, it->second), 0.0f) << name;
  }
}

TEST(PackedModel, QuantizePayloadsShrinksAndRoundTrips) {
  auto model = make_convnet();
  install_random_hybrid_masks(*model, 8, 2, 4, 1);
  PackedModel packed = PackedModel::pack(*model, 8, 2, 4);
  const std::int64_t fp32_payload = packed.stats().packed_payload_bits;
  ASSERT_FALSE(packed.quantized());

  // Keep-fp32 mode carries both payloads (bits grow); dropping fp32 takes
  // the payload to 8 bits per slot + one scale per block-row.
  PackedModel both = packed;
  both.quantize_payloads(/*keep_fp32=*/true);
  EXPECT_TRUE(both.quantized());
  EXPECT_GT(both.stats().packed_payload_bits, fp32_payload);
  for (const PackedEntry& e : both.entries()) EXPECT_TRUE(e.matrix.has_fp32());

  packed.quantize_payloads();
  EXPECT_TRUE(packed.quantized());
  EXPECT_LT(packed.stats().packed_payload_bits, fp32_payload / 2);
  EXPECT_LT(packed.stats().compression(), 1.0);

  const std::string path = temp_path("packed_quantized.bin");
  packed.save(path);
  const PackedModel loaded = PackedModel::load(path);
  std::remove(path.c_str());
  EXPECT_TRUE(loaded.quantized());
  ASSERT_EQ(loaded.entries().size(), packed.entries().size());
  for (std::size_t i = 0; i < packed.entries().size(); ++i) {
    EXPECT_FALSE(loaded.entries()[i].matrix.has_fp32());
    EXPECT_FLOAT_EQ(max_abs_diff(loaded.entries()[i].matrix.decode(),
                                 packed.entries()[i].matrix.decode()),
                    0.0f);
  }

  // Unpacking the int8 artifact restores weights within the per-block-row
  // scale bound of the original effective values, and reinstalls masks.
  auto fresh = make_convnet();
  loaded.unpack_into(*fresh);
  const PackedModel repacked = PackedModel::pack(*model, 8, 2, 4);
  for (nn::Parameter* p : fresh->prunable_parameters()) {
    const PackedEntry* e = loaded.find(p->name);
    if (e == nullptr) continue;
    EXPECT_TRUE(p->has_mask()) << p->name;
    float max_scale = 0.0f;
    for (const float s : e->matrix.quantized_payload().scales)
      max_scale = std::max(max_scale, s);
    const PackedEntry* orig = repacked.find(p->name);
    ASSERT_NE(orig, nullptr);
    EXPECT_LE(max_abs_diff(p->effective_value(),
                           orig->matrix.decode().reshaped(p->value.shape())),
              0.5f * max_scale * 1.0001f)
        << p->name;
  }
}

TEST(PackedModel, FullyPrunedEntryDoesNotBlockQuantizedPredicates) {
  // A parameter whose mask zeroes everything encodes with zero slots;
  // there is nothing to quantize in it, and it must not pin the whole
  // artifact's quantized()/serves_int8() to false.
  auto model = make_convnet();
  install_random_hybrid_masks(*model, 8, 2, 4, 1);
  nn::Parameter* first = model->prunable_parameters().front();
  first->ensure_mask();
  for (std::int64_t i = 0; i < first->mask.numel(); ++i) first->mask[i] = 0.0f;

  PackedModel packed = PackedModel::pack(*model, 8, 2, 4);
  const PackedEntry* pruned_entry = packed.find(first->name);
  ASSERT_NE(pruned_entry, nullptr);
  ASSERT_EQ(pruned_entry->matrix.slot_count(), 0);

  packed.quantize_payloads();
  EXPECT_TRUE(packed.quantized());
  EXPECT_TRUE(packed.serves_int8());
}

TEST(PackedModel, LoadRejectsGarbageAndTruncation) {
  const std::string garbage = temp_path("packed_garbage.bin");
  {
    std::ofstream os(garbage, std::ios::binary);
    os << "definitely not a packed model";
  }
  EXPECT_THROW(PackedModel::load(garbage), std::runtime_error);
  std::remove(garbage.c_str());

  auto model = make_convnet();
  install_random_hybrid_masks(*model, 8, 2, 4, 1);
  const std::string path = temp_path("packed_trunc.bin");
  PackedModel::pack(*model, 8, 2, 4).save(path);
  std::ifstream is(path, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(is)),
                          std::istreambuf_iterator<char>());
  is.close();
  const std::string cut = temp_path("packed_cut.bin");
  {
    std::ofstream os(cut, std::ios::binary);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  EXPECT_THROW(PackedModel::load(cut), std::runtime_error);
  std::remove(path.c_str());
  std::remove(cut.c_str());
  EXPECT_THROW(PackedModel::load(temp_path("no_such_file.bin")),
               std::runtime_error);
}

TEST(PackedModel, LoadRejectsWrongMagicAndVersion) {
  auto model = make_convnet();
  install_random_hybrid_masks(*model, 8, 2, 4, 1);
  const std::string path = temp_path("packed_header.bin");
  PackedModel::pack(*model, 8, 2, 4).save(path);
  std::ifstream is(path, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(is)),
                          std::istreambuf_iterator<char>());
  is.close();
  std::remove(path.c_str());
  ASSERT_GT(bytes.size(), 12u);  // u64 magic + u32 version

  const auto write_mutated = [&](std::size_t offset, char flip) {
    std::vector<char> mutated = bytes;
    mutated[offset] = static_cast<char>(mutated[offset] ^ flip);
    const std::string p = temp_path("packed_mutated.bin");
    std::ofstream os(p, std::ios::binary);
    os.write(mutated.data(), static_cast<std::streamsize>(mutated.size()));
    return p;
  };

  // A foreign magic and a future version must both throw cleanly — never
  // attempt to parse a payload the header disowns.
  const std::string bad_magic = write_mutated(0, 0x7f);
  EXPECT_THROW(PackedModel::load(bad_magic), std::runtime_error);
  std::remove(bad_magic.c_str());
  const std::string bad_version = write_mutated(8, 0x40);
  EXPECT_THROW(PackedModel::load(bad_version), std::runtime_error);
  std::remove(bad_version.c_str());
}

TEST(PackedModel, V3TrailerVerifiesAndCatchesSilentCorruption) {
  auto model = make_convnet();
  install_random_hybrid_masks(*model, 8, 2, 4, 1);
  const std::string path = temp_path("packed_v3.bin");
  PackedModel::pack(*model, 8, 2, 4).save(path);

  const PackedModel loaded = PackedModel::load(path);
  EXPECT_TRUE(loaded.crc_verified());

  std::ifstream is(path, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(is)),
                          std::istreambuf_iterator<char>());
  is.close();
  std::remove(path.c_str());

  const auto write_mutated = [&](std::size_t offset, char flip) {
    std::vector<char> mutated = bytes;
    mutated[offset] = static_cast<char>(mutated[offset] ^ flip);
    const std::string p = temp_path("packed_v3_mutated.bin");
    std::ofstream os(p, std::ios::binary);
    os.write(mutated.data(), static_cast<std::streamsize>(mutated.size()));
    return p;
  };

  // A low bit flipped in the body's tail — raw float payload, invisible
  // to every structural check — and a flipped trailer byte must both be
  // rejected by the checksum.
  const std::string body_flip = write_mutated(bytes.size() - 5, 0x01);
  EXPECT_THROW(PackedModel::load(body_flip), std::runtime_error);
  std::remove(body_flip.c_str());
  const std::string trailer_flip = write_mutated(bytes.size() - 1, 0x01);
  EXPECT_THROW(PackedModel::load(trailer_flip), std::runtime_error);
  std::remove(trailer_flip.c_str());
}

TEST(PackedModel, V2ArtifactLoadsCompatiblyButUnverified) {
  auto model = make_convnet();
  install_random_hybrid_masks(*model, 8, 2, 4, 1);
  const PackedModel packed = PackedModel::pack(*model, 8, 2, 4);
  const std::string path = temp_path("packed_v2.bin");
  packed.save(path, /*version=*/2);  // the legacy writer, for compat tests

  const PackedModel loaded = PackedModel::load(path);
  std::remove(path.c_str());
  // Pre-upgrade artifacts stay loadable — but the caller can tell no
  // checksum covered them.
  EXPECT_FALSE(loaded.crc_verified());
  ASSERT_EQ(loaded.entries().size(), packed.entries().size());
  for (std::size_t i = 0; i < packed.entries().size(); ++i)
    EXPECT_FLOAT_EQ(max_abs_diff(loaded.entries()[i].matrix.decode(),
                                 packed.entries()[i].matrix.decode()),
                    0.0f);
}

TEST(PackedModel, LoadRejectsTrailingGarbage) {
  // Appended bytes used to load silently on v2 — a truncated-or-spliced
  // artifact must never pass as intact, at either version.
  auto model = make_convnet();
  install_random_hybrid_masks(*model, 8, 2, 4, 1);
  const PackedModel packed = PackedModel::pack(*model, 8, 2, 4);
  for (const std::uint32_t version : {2u, 3u}) {
    const std::string path = temp_path("packed_trailing.bin");
    packed.save(path, version);
    {
      std::ofstream os(path, std::ios::binary | std::ios::app);
      os << "stowaway";
    }
    EXPECT_THROW(PackedModel::load(path), std::runtime_error)
        << "version " << version;
    std::remove(path.c_str());
  }
}

TEST(PackedModel, UnpackRestoresEffectiveWeightsAndMasks) {
  auto model = make_convnet();
  install_random_hybrid_masks(*model, 8, 2, 4, 1);
  Rng xrng(5);
  const Tensor x = Tensor::randn({2, 3, 8, 8}, xrng);
  const Tensor want = nn::predict(*model, x);
  const PackedModel packed = PackedModel::pack(*model, 8, 2, 4);

  auto fresh = make_convnet();  // same architecture, different weights
  packed.unpack_into(*fresh);
  const Tensor got = nn::predict(*fresh, x);
  EXPECT_LE(max_abs_diff(want, got), 1e-6f);

  for (nn::Parameter* p : fresh->prunable_parameters()) {
    ASSERT_TRUE(p->has_mask()) << p->name;
    EXPECT_GT(p->mask_sparsity(), 0.3) << p->name;
  }
}

TEST(PackedExec, PackedForwardMatchesMaskedDense) {
  auto model = make_convnet();
  install_random_hybrid_masks(*model, 8, 2, 4, 1);
  Rng xrng(5);
  const Tensor x = Tensor::randn({3, 3, 8, 8}, xrng);
  const Tensor dense_out = nn::predict(*model, x);

  auto packed =
      std::make_shared<const PackedModel>(PackedModel::pack(*model, 8, 2, 4));
  const auto attached = install_packed_hooks(*model, packed);
  EXPECT_EQ(attached.size(), packed->entries().size());
  const Tensor packed_out = nn::predict(*model, x);
  // Same multiplications in a different accumulation order.
  EXPECT_LE(max_abs_diff(dense_out, packed_out), 1e-4f);
}

TEST(PackedExec, InstallSkipsGroupedConvs) {
  auto model = make_convnet(/*grouped_prunable=*/true);
  install_random_hybrid_masks(*model, 8, 2, 4, 1);
  Rng xrng(5);
  const Tensor x = Tensor::randn({2, 3, 8, 8}, xrng);
  const Tensor dense_out = nn::predict(*model, x);

  auto packed =
      std::make_shared<const PackedModel>(PackedModel::pack(*model, 8, 2, 4));
  const auto attached = install_packed_hooks(*model, packed);
  // conv2 (groups=2) refuses the hook; conv1 and fc accept.
  EXPECT_EQ(attached.size(), packed->entries().size() - 1);
  for (const std::string& name : attached) EXPECT_NE(name, "conv2.weight");

  // Mixed execution still matches the dense reference.
  const Tensor packed_out = nn::predict(*model, x);
  EXPECT_LE(max_abs_diff(dense_out, packed_out), 1e-4f);
}

TEST(PackedExec, TrainingForwardIgnoresHook) {
  auto model = make_convnet();
  install_random_hybrid_masks(*model, 8, 2, 4, 1);
  Rng xrng(5);
  const Tensor x = Tensor::randn({2, 3, 8, 8}, xrng);
  const Tensor dense_out = nn::predict(*model, x);
  auto packed =
      std::make_shared<const PackedModel>(PackedModel::pack(*model, 8, 2, 4));
  install_packed_hooks(*model, packed);

  // Train-mode forward must run the dense path (and cache activations for
  // backward) even with hooks installed — STE updates need dense weights.
  const Tensor train_out = model->forward(x, /*train=*/true);
  Tensor grad(train_out.shape());
  grad.fill(1.0f);
  EXPECT_NO_THROW(model->backward(grad));
  EXPECT_FLOAT_EQ(max_abs_diff(train_out, dense_out), 0.0f);
}

TEST(PackedExec, LinearOnlyModelRoundTrips) {
  Rng rng(9);
  auto model = std::make_unique<nn::Sequential>("mlp");
  model->emplace<nn::Linear>("fc1", 32, 24, rng);
  model->emplace<nn::ReLU>("relu");
  model->emplace<nn::Linear>("fc2", 24, 8, rng);
  install_random_hybrid_masks(*model, 8, 2, 4, 1);

  Rng xrng(5);
  const Tensor x = Tensor::randn({4, 32}, xrng);
  const Tensor dense_out = nn::predict(*model, x);
  auto packed =
      std::make_shared<const PackedModel>(PackedModel::pack(*model, 8, 2, 4));
  const auto attached = install_packed_hooks(*model, packed);
  EXPECT_EQ(attached.size(), 2u);
  const Tensor packed_out = nn::predict(*model, x);
  EXPECT_LE(max_abs_diff(dense_out, packed_out), 1e-4f);
}

TEST(PackedModel, UnmaskedModelPacksAsAllDense) {
  auto model = make_convnet();  // no masks installed anywhere
  const PackedModel packed = PackedModel::pack(*model, 8, 2, 4);
  EXPECT_TRUE(packed.entries().empty());
  const PackedStats s = packed.stats();
  EXPECT_EQ(s.carried_dense_bits, s.model_dense_bits);
  EXPECT_DOUBLE_EQ(s.compression(), 1.0);

  // Round-trips like any artifact: everything rides in the dense state.
  const std::string path = temp_path("packed_dense.bin");
  packed.save(path);
  const PackedModel loaded = PackedModel::load(path);
  std::remove(path.c_str());
  auto fresh = make_convnet();
  loaded.unpack_into(*fresh);
  Rng xrng(5);
  const Tensor x = Tensor::randn({2, 3, 8, 8}, xrng);
  EXPECT_LE(max_abs_diff(nn::predict(*model, x), nn::predict(*fresh, x)),
            1e-6f);
}

TEST(PackedExec, HooksSurviveOwnerHandleDestruction) {
  // The hooks co-own the artifact through aliasing shared_ptrs: each
  // kernel pointer is one entry's CrispMatrix, but the refcount is the
  // whole PackedModel's. Dropping every caller-side handle — moved-from
  // staging object, reset shared_ptr — must leave packed serving intact.
  auto model = make_convnet();
  install_random_hybrid_masks(*model, 8, 2, 4, 1);
  Rng xrng(5);
  const Tensor x = Tensor::randn({2, 3, 8, 8}, xrng);
  const Tensor want = nn::predict(*model, x);

  PackedModel staging = PackedModel::pack(*model, 8, 2, 4);
  auto packed = std::make_shared<const PackedModel>(std::move(staging));
  ASSERT_FALSE(install_packed_hooks(*model, packed).empty());
  packed.reset();  // the hooks hold the only remaining references
  const Tensor got = nn::predict(*model, x);
  EXPECT_LE(max_abs_diff(want, got), 1e-4f);
}

// The full pipeline: CRISP-prune a real (tiny) model, pack, ship, reload,
// execute packed — accuracy must survive the journey unchanged.
TEST(PackedPipeline, PruneShipReloadServe) {
  data::ClassPatternConfig dcfg = data::ClassPatternConfig::cifar100_like();
  dcfg.num_classes = 6;
  dcfg.image_size = 8;
  dcfg.train_per_class = 8;
  dcfg.test_per_class = 4;
  const data::TrainTest split = data::make_class_pattern_dataset(dcfg);

  nn::ModelConfig mcfg;
  mcfg.num_classes = 6;
  mcfg.input_size = 8;
  mcfg.width_mult = 0.125f;
  auto model = nn::make_vgg16(mcfg);

  nn::TrainConfig tc;
  tc.epochs = 2;
  tc.batch_size = 16;
  tc.sgd.lr = 0.05f;
  Rng rng(1);
  nn::train(*model, split.train, tc, rng);

  core::CrispConfig pcfg;
  pcfg.n = 2;
  pcfg.m = 4;
  pcfg.block = 8;
  pcfg.target_sparsity = 0.75;
  pcfg.iterations = 2;
  pcfg.finetune_epochs = 1;
  pcfg.recovery_epochs = 2;
  core::CrispPruner pruner(*model, pcfg);
  pruner.run(split.train, rng);

  const float acc_pruned = nn::evaluate(*model, split.test);

  const std::string path = temp_path("pipeline_packed.bin");
  PackedModel::pack(*model, pcfg.block, pcfg.n, pcfg.m).save(path);

  const auto shipped =
      std::make_shared<const PackedModel>(PackedModel::load(path));
  std::remove(path.c_str());
  auto device_model = nn::make_vgg16(mcfg);  // fresh weights on the device
  shipped->unpack_into(*device_model);
  const auto attached = install_packed_hooks(*device_model, shipped);
  EXPECT_FALSE(attached.empty());
  const float acc_served = nn::evaluate(*device_model, split.test);
  EXPECT_NEAR(acc_served, acc_pruned, 1e-6f);
}

}  // namespace
}  // namespace crisp::deploy
