// Thread-invariance suite for the training/pruning hot path: backward
// gradients must be bit-identical at 1/2/8 threads for every layer type
// (the contract nn/layer.h documents and kernels/reduce.h implements),
// finite-difference gradient checks must still hold under the threaded
// path, the class-aware saliency sweeps must agree threaded-vs-serial, and
// a full CRISP pruning iteration must land on identical weights and masks
// at any thread count.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "core/block_pruning.h"
#include "core/nm_pruning.h"
#include "core/pruner.h"
#include "core/saliency.h"
#include "data/class_pattern.h"
#include "kernels/parallel_for.h"
#include "kernels/reduce.h"
#include "nn/activations.h"
#include "nn/attention.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/layernorm.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/models/common.h"
#include "nn/models/mobilenet.h"
#include "nn/models/resnet.h"
#include "nn/models/transformer.h"
#include "nn/optimizer.h"
#include "nn/pooling.h"
#include "nn/sequential.h"
#include "sparse/nm.h"
#include "thread_guard.h"

namespace crisp {
namespace {

using nn::Layer;
using nn::Parameter;
using crisp::testing::ThreadGuard;

/// One backward pass at `threads`: d(loss)/d(input) plus every parameter
/// gradient, captured by value.
struct BackwardRun {
  Tensor grad_in;
  std::vector<Tensor> param_grads;
};

BackwardRun run_backward(Layer& layer, const Tensor& x, const Tensor& gout,
                         int threads) {
  kernels::set_num_threads(threads);
  layer.zero_grad();
  (void)layer.forward(x, /*train=*/true);
  BackwardRun run;
  run.grad_in = layer.backward(gout);
  for (Parameter* p : layer.parameters()) run.param_grads.push_back(p->grad);
  return run;
}

/// Asserts one layer's gradients are bit-identical at 1, 2, and 8 threads.
void expect_backward_thread_invariant(Layer& layer, const Tensor& x) {
  ThreadGuard guard;
  Rng rng(99);
  const Tensor y = layer.forward(x, /*train=*/true);
  const Tensor gout = Tensor::randn(y.shape(), rng);

  const BackwardRun serial = run_backward(layer, x, gout, 1);
  for (const int t : {2, 8}) {
    const BackwardRun threaded = run_backward(layer, x, gout, t);
    ASSERT_TRUE(serial.grad_in.same_shape(threaded.grad_in));
    EXPECT_EQ(max_abs_diff(serial.grad_in, threaded.grad_in), 0.0f)
        << layer.name() << ": input gradient changed at " << t << " threads";
    ASSERT_EQ(serial.param_grads.size(), threaded.param_grads.size());
    for (std::size_t i = 0; i < serial.param_grads.size(); ++i)
      EXPECT_EQ(
          max_abs_diff(serial.param_grads[i], threaded.param_grads[i]), 0.0f)
          << layer.name() << ": gradient of parameter " << i << " changed at "
          << t << " threads";
  }
}

Tensor image_input(std::int64_t batch, std::int64_t ch, std::int64_t hw,
                   std::uint64_t seed) {
  Rng rng(seed);
  return Tensor::randn({batch, ch, hw, hw}, rng);
}

// ---------------------------------------------------------------------------
// Per-layer grad bit-identity at 1/2/8 threads — every layer type.

TEST(BackwardThreading, Linear) {
  Rng rng(1);
  nn::Linear layer("lin", 48, 32, rng, /*bias=*/true);
  Rng xr(2);
  expect_backward_thread_invariant(layer, Tensor::randn({20, 48}, xr));
}

TEST(BackwardThreading, LinearMaskedSte) {
  Rng rng(1);
  nn::Linear layer("lin_masked", 48, 32, rng, /*bias=*/true);
  layer.weight().ensure_mask();
  for (std::int64_t i = 0; i < layer.weight().mask.numel(); i += 2)
    layer.weight().mask[i] = 0.0f;
  Rng xr(2);
  expect_backward_thread_invariant(layer, Tensor::randn({20, 48}, xr));
}

TEST(BackwardThreading, Conv2d) {
  nn::Conv2dSpec spec;
  spec.in_channels = 6;
  spec.out_channels = 8;
  spec.kernel = 3;
  spec.bias = true;
  Rng rng(3);
  nn::Conv2d layer("conv", spec, rng);
  // Batch of 20 forces several parallel_accumulate chunks at 8 threads.
  expect_backward_thread_invariant(layer, image_input(20, 6, 8, 4));
}

TEST(BackwardThreading, Conv2dGroupedAndStrided) {
  nn::Conv2dSpec spec;
  spec.in_channels = 6;
  spec.out_channels = 6;
  spec.kernel = 3;
  spec.stride = 2;
  spec.groups = 3;
  spec.bias = true;
  Rng rng(5);
  nn::Conv2d layer("gconv", spec, rng);
  expect_backward_thread_invariant(layer, image_input(12, 6, 9, 6));
}

TEST(BackwardThreading, ReLUAndCapped) {
  nn::ReLU relu("relu");
  expect_backward_thread_invariant(relu, image_input(6, 4, 8, 7));
  nn::ReLU relu6("relu6", 6.0f);
  expect_backward_thread_invariant(relu6, image_input(6, 4, 8, 8));
}

TEST(BackwardThreading, Flatten) {
  nn::Flatten layer("flat");
  expect_backward_thread_invariant(layer, image_input(6, 4, 8, 9));
}

TEST(BackwardThreading, MaxPool2d) {
  nn::MaxPool2d layer("pool");
  expect_backward_thread_invariant(layer, image_input(8, 5, 8, 10));
}

TEST(BackwardThreading, GlobalAvgPool) {
  nn::GlobalAvgPool layer("gap");
  expect_backward_thread_invariant(layer, image_input(8, 5, 8, 11));
}

TEST(BackwardThreading, BatchNorm2d) {
  nn::BatchNorm2d layer("bn", 7);
  expect_backward_thread_invariant(layer, image_input(10, 7, 6, 12));
}

TEST(BackwardThreading, LayerNorm) {
  nn::LayerNorm layer("ln", 24);
  Rng xr(13);
  expect_backward_thread_invariant(layer, Tensor::randn({4, 9, 24}, xr));
}

TEST(BackwardThreading, Gelu) {
  nn::Gelu layer("gelu");
  Rng xr(14);
  expect_backward_thread_invariant(layer, Tensor::randn({4, 9, 24}, xr));
}

TEST(BackwardThreading, MultiHeadSelfAttention) {
  Rng rng(15);
  nn::MultiHeadSelfAttention layer("attn", 24, 4, rng);
  Rng xr(16);
  expect_backward_thread_invariant(layer, Tensor::randn({5, 9, 24}, xr));
}

TEST(BackwardThreading, ToTokens) {
  nn::ToTokens layer("tok");
  expect_backward_thread_invariant(layer, image_input(5, 12, 4, 17));
}

TEST(BackwardThreading, PositionalEmbedding) {
  Rng rng(18);
  nn::PositionalEmbedding layer("pos", 16, 12, rng);
  Rng xr(19);
  expect_backward_thread_invariant(layer, Tensor::randn({5, 16, 12}, xr));
}

TEST(BackwardThreading, TokenMeanPool) {
  nn::TokenMeanPool layer("meanpool");
  Rng xr(20);
  expect_backward_thread_invariant(layer, Tensor::randn({5, 16, 12}, xr));
}

TEST(BackwardThreading, TransformerBlock) {
  Rng rng(21);
  nn::TransformerBlock layer("blk", 24, 4, 2, rng);
  Rng xr(22);
  expect_backward_thread_invariant(layer, Tensor::randn({4, 9, 24}, xr));
}

TEST(BackwardThreading, Bottleneck) {
  Rng rng(23);
  nn::Bottleneck layer("bneck", 8, 4, /*stride=*/2, rng);
  expect_backward_thread_invariant(layer, image_input(8, 8, 8, 24));
}

TEST(BackwardThreading, InvertedResidual) {
  Rng rng(25);
  nn::InvertedResidual layer("ir", 8, 8, /*stride=*/1, /*expand_ratio=*/4,
                             rng);
  expect_backward_thread_invariant(layer, image_input(8, 8, 8, 26));
}

TEST(BackwardThreading, SequentialMlp) {
  Rng rng(27);
  nn::Sequential model("mlp");
  model.emplace<nn::Flatten>("flat");
  model.emplace<nn::Linear>("fc1", 48, 32, rng);
  model.emplace<nn::ReLU>("relu");
  model.emplace<nn::Linear>("fc2", 32, 5, rng);
  expect_backward_thread_invariant(model, image_input(16, 3, 4, 28));
}

// ---------------------------------------------------------------------------
// Loss and optimizer legs of the training step.

TEST(BackwardThreading, CrossEntropyThreadInvariant) {
  ThreadGuard guard;
  Rng rng(30);
  const Tensor logits = Tensor::randn({64, 10}, rng, 0.0f, 2.0f);
  std::vector<std::int64_t> labels;
  for (std::int64_t b = 0; b < 64; ++b) labels.push_back(b % 10);

  kernels::set_num_threads(1);
  const nn::LossResult serial = nn::cross_entropy(logits, labels);
  for (const int t : {2, 8}) {
    kernels::set_num_threads(t);
    const nn::LossResult threaded = nn::cross_entropy(logits, labels);
    EXPECT_EQ(serial.value, threaded.value);
    EXPECT_EQ(max_abs_diff(serial.grad, threaded.grad), 0.0f);
  }
}

TEST(BackwardThreading, SgdStepThreadInvariant) {
  ThreadGuard guard;
  auto run_steps = [](int threads) {
    kernels::set_num_threads(threads);
    Rng rng(31);
    Parameter p;
    p.name = "w";
    p.value = Tensor::randn({4096}, rng);
    p.grad = Tensor::randn({4096}, rng);
    nn::SgdConfig cfg;
    cfg.lr = 0.05f;
    cfg.momentum = 0.9f;
    cfg.weight_decay = 1e-4f;
    nn::Sgd opt({&p}, cfg);
    opt.step();
    opt.step();
    return p.value;
  };
  const Tensor serial = run_steps(1);
  for (const int t : {2, 8})
    EXPECT_EQ(max_abs_diff(serial, run_steps(t)), 0.0f)
        << "SGD update changed at " << t << " threads";
}

// ---------------------------------------------------------------------------
// Finite-difference checks re-run under the threaded path: the parallel
// backward must still be the true gradient, not merely self-consistent.

float probe_loss(Layer& layer, const Tensor& x, const Tensor& w) {
  const Tensor y = layer.forward(x, /*train=*/true);
  double acc = 0.0;
  for (std::int64_t i = 0; i < y.numel(); ++i)
    acc += static_cast<double>(y[i]) * w[i];
  return static_cast<float>(acc);
}

void check_gradients_threaded(Layer& layer, Tensor x, std::uint64_t seed) {
  ThreadGuard guard;
  kernels::set_num_threads(8);
  Rng rng(seed);
  // Nudge away from ReLU/pool kinks so central differences stay valid.
  for (std::int64_t i = 0; i < x.numel(); ++i)
    if (std::fabs(x[i]) < 0.05f) x[i] = x[i] < 0 ? -0.05f : 0.05f;

  Tensor y = layer.forward(x, /*train=*/true);
  const Tensor w = Tensor::randn(y.shape(), rng);
  layer.zero_grad();
  (void)probe_loss(layer, x, w);
  const Tensor grad_in = layer.backward(w);
  ASSERT_TRUE(grad_in.same_shape(x));

  constexpr float kEps = 5e-3f;
  auto check = [&](float analytic, float numeric, const char* what,
                   std::int64_t i) {
    EXPECT_NEAR(analytic, numeric, 0.02f + 0.08f * std::fabs(numeric))
        << layer.name() << " " << what << " grad at " << i;
  };
  for (std::int64_t i = 0; i < std::min<std::int64_t>(x.numel(), 16); ++i) {
    const float saved = x[i];
    x[i] = saved + kEps;
    const float lp = probe_loss(layer, x, w);
    x[i] = saved - kEps;
    const float lm = probe_loss(layer, x, w);
    x[i] = saved;
    check(grad_in[i], (lp - lm) / (2.0f * kEps), "input", i);
  }
  for (Parameter* p : layer.parameters()) {
    for (std::int64_t i = 0; i < std::min<std::int64_t>(p->value.numel(), 16);
         ++i) {
      const float saved = p->value[i];
      p->value[i] = saved + kEps;
      const float lp = probe_loss(layer, x, w);
      p->value[i] = saved - kEps;
      const float lm = probe_loss(layer, x, w);
      p->value[i] = saved;
      check(p->grad[i], (lp - lm) / (2.0f * kEps), p->name.c_str(), i);
    }
  }
}

TEST(BackwardThreadingFiniteDiff, LinearAtEightThreads) {
  Rng rng(40);
  nn::Linear layer("lin", 12, 7, rng, /*bias=*/true);
  Rng xr(41);
  check_gradients_threaded(layer, Tensor::randn({10, 12}, xr), 42);
}

TEST(BackwardThreadingFiniteDiff, Conv2dAtEightThreads) {
  nn::Conv2dSpec spec;
  spec.in_channels = 3;
  spec.out_channels = 4;
  spec.kernel = 3;
  spec.bias = true;
  Rng rng(43);
  nn::Conv2d layer("conv", spec, rng);
  check_gradients_threaded(layer, image_input(10, 3, 6, 44), 45);
}

TEST(BackwardThreadingFiniteDiff, BatchNormAtEightThreads) {
  nn::BatchNorm2d layer("bn", 5);
  check_gradients_threaded(layer, image_input(6, 5, 4, 46), 47);
}

TEST(BackwardThreadingFiniteDiff, LayerNormAtEightThreads) {
  nn::LayerNorm layer("ln", 16);
  Rng xr(48);
  check_gradients_threaded(layer, Tensor::randn({6, 16}, xr), 49);
}

// ---------------------------------------------------------------------------
// Saliency sweeps: threaded and serial runs must agree bit-for-bit.

data::TrainTest tiny_split() {
  data::ClassPatternConfig dcfg;
  dcfg.num_classes = 4;
  dcfg.image_size = 8;
  dcfg.train_per_class = 8;
  dcfg.test_per_class = 2;
  return data::make_class_pattern_dataset(dcfg);
}

std::unique_ptr<nn::Sequential> tiny_conv_model() {
  nn::ModelConfig mcfg;
  mcfg.num_classes = 4;
  mcfg.input_size = 8;
  mcfg.width_mult = 0.125f;
  return nn::make_vgg16(mcfg);
}

core::SaliencyMap saliency_at(int threads, const data::Dataset& calib,
                              const std::string& criterion) {
  kernels::set_num_threads(threads);
  auto model = tiny_conv_model();
  core::SaliencyConfig cfg;
  cfg.criterion = criterion;
  cfg.batch_size = 8;
  cfg.max_batches = 2;
  return core::estimate_saliency(*model, calib, cfg);
}

TEST(SaliencyThreading, CassSweepThreadInvariant) {
  ThreadGuard guard;
  const data::TrainTest split = tiny_split();
  const core::SaliencyMap serial =
      saliency_at(1, split.train, "cass");
  for (const int t : {2, 8}) {
    const core::SaliencyMap threaded =
        saliency_at(t, split.train, "cass");
    ASSERT_EQ(serial.size(), threaded.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
      EXPECT_EQ(max_abs_diff(serial[i], threaded[i]), 0.0f)
          << "CASS scores for parameter " << i << " changed at " << t
          << " threads";
  }
}

TEST(SaliencyThreading, MaskSelectionThreadInvariant) {
  ThreadGuard guard;
  Rng rng(50);
  const std::int64_t rows = 64, cols = 96, block = 8;
  const Tensor scores = Tensor::rand({rows, cols}, rng, 0.01f, 1.0f);

  auto selection_at = [&](int threads) {
    kernels::set_num_threads(threads);
    const Tensor nm = sparse::nm_mask(as_matrix(scores, rows, cols), 2, 4);
    core::LayerBlockInfo info;
    info.grid = sparse::BlockGrid{rows, cols, block};
    info.scores =
        sparse::block_scores(as_matrix(scores, rows, cols), info.grid);
    const auto pruned = core::plan_rank_column_pruning({info}, 0.25, {});
    Tensor bmask = core::rank_pruned_block_mask(info, pruned[0]);
    bmask.mul_(nm);
    return bmask;
  };
  const Tensor serial = selection_at(1);
  for (const int t : {2, 8})
    EXPECT_EQ(max_abs_diff(serial, selection_at(t)), 0.0f)
        << "hybrid mask selection changed at " << t << " threads";
}

// ---------------------------------------------------------------------------
// End to end: one CRISP pruning iteration (saliency → masks → fine-tune)
// must produce identical weights and masks at any thread count. This is the
// whole-hot-path composition of every invariance above.

TEST(SaliencyThreading, CrispIterationThreadInvariant) {
  ThreadGuard guard;
  const data::TrainTest split = tiny_split();

  auto prune_at = [&](int threads) {
    kernels::set_num_threads(threads);
    auto model = tiny_conv_model();
    core::CrispConfig pcfg;
    pcfg.block = 8;
    pcfg.target_sparsity = 0.6;
    pcfg.iterations = 1;
    pcfg.finetune_epochs = 1;
    pcfg.recovery_epochs = 0;
    pcfg.batch_size = 8;
    pcfg.saliency.batch_size = 8;
    pcfg.saliency.max_batches = 2;
    core::CrispPruner pruner(*model, pcfg);
    Rng rng(51);
    pruner.run(split.train, rng);
    return model;
  };
  auto serial = prune_at(1);
  for (const int t : {2, 8}) {
    auto threaded = prune_at(t);
    auto ps = serial->parameters();
    auto pt = threaded->parameters();
    ASSERT_EQ(ps.size(), pt.size());
    for (std::size_t i = 0; i < ps.size(); ++i) {
      EXPECT_EQ(max_abs_diff(ps[i]->value, pt[i]->value), 0.0f)
          << ps[i]->name << ": weights diverged at " << t << " threads";
      ASSERT_EQ(ps[i]->has_mask(), pt[i]->has_mask()) << ps[i]->name;
      if (ps[i]->has_mask()) {
        EXPECT_EQ(max_abs_diff(ps[i]->mask, pt[i]->mask), 0.0f)
            << ps[i]->name << ": masks diverged at " << t << " threads";
      }
    }
  }
}

}  // namespace
}  // namespace crisp
