// Tensor substrate tests: shapes, ops, GEMM kernels, im2col/col2im,
// serialization, RNG determinism.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <set>

#include "tensor/im2col.h"
#include "tensor/matmul.h"
#include "tensor/serialize.h"
#include "tensor/tensor.h"

namespace crisp {
namespace {

TEST(Shape, NumelAndToString) {
  EXPECT_EQ(shape_numel({2, 3, 4}), 24);
  EXPECT_EQ(shape_numel({}), 1);
  EXPECT_EQ(shape_numel({5, 0, 2}), 0);
  EXPECT_EQ(shape_to_string({2, 3}), "[2, 3]");
  EXPECT_THROW(shape_numel({2, -1}), std::runtime_error);
}

TEST(Tensor, ConstructionAndFactories) {
  Tensor z({2, 3});
  EXPECT_EQ(z.numel(), 6);
  EXPECT_EQ(z.dim(), 2);
  EXPECT_FLOAT_EQ(z.sum(), 0.0f);

  Tensor o = Tensor::ones({4});
  EXPECT_FLOAT_EQ(o.sum(), 4.0f);

  Tensor f = Tensor::full({2, 2}, 2.5f);
  EXPECT_FLOAT_EQ(f.mean(), 2.5f);

  Tensor a = Tensor::arange(5);
  EXPECT_FLOAT_EQ(a[3], 3.0f);

  EXPECT_THROW(Tensor({2}, {1.0f, 2.0f, 3.0f}), std::runtime_error);
}

TEST(Tensor, RandomFactoriesDeterministic) {
  Rng r1(42), r2(42);
  Tensor a = Tensor::randn({32}, r1);
  Tensor b = Tensor::randn({32}, r2);
  EXPECT_TRUE(allclose(a, b));
  Tensor u = Tensor::rand({64}, r1, -1.0f, 1.0f);
  EXPECT_GE(u.min(), -1.0f);
  EXPECT_LT(u.max(), 1.0f);
}

TEST(Tensor, ElementAccess) {
  Tensor t({2, 3});
  t.at({1, 2}) = 7.0f;
  EXPECT_FLOAT_EQ(t.at({1, 2}), 7.0f);
  EXPECT_FLOAT_EQ(t[5], 7.0f);  // row-major flat index
  EXPECT_THROW(t.at({2, 0}), std::runtime_error);
  EXPECT_THROW(t.at({0}), std::runtime_error);
}

TEST(Tensor, ArithmeticOps) {
  Tensor a({3}, {1.0f, -2.0f, 3.0f});
  Tensor b({3}, {0.5f, 0.5f, 0.5f});
  Tensor c = a.add(b);
  EXPECT_FLOAT_EQ(c[0], 1.5f);
  c = a.sub(b);
  EXPECT_FLOAT_EQ(c[1], -2.5f);
  c = a.mul(b);
  EXPECT_FLOAT_EQ(c[2], 1.5f);
  c = a.scaled(2.0f);
  EXPECT_FLOAT_EQ(c[0], 2.0f);
  c = a.abs();
  EXPECT_FLOAT_EQ(c[1], 2.0f);

  Tensor d = a;
  d.axpy_(2.0f, b);
  EXPECT_FLOAT_EQ(d[0], 2.0f);
  d.clamp_min_(0.0f);
  EXPECT_FLOAT_EQ(d[1], 0.0f);

  Tensor wrong({2});
  EXPECT_THROW(a.add(wrong), std::runtime_error);
}

TEST(Tensor, Reductions) {
  Tensor t({4}, {1.0f, -5.0f, 3.0f, 0.0f});
  EXPECT_FLOAT_EQ(t.sum(), -1.0f);
  EXPECT_FLOAT_EQ(t.mean(), -0.25f);
  EXPECT_FLOAT_EQ(t.min(), -5.0f);
  EXPECT_FLOAT_EQ(t.max(), 3.0f);
  EXPECT_FLOAT_EQ(t.abs_max(), 5.0f);
  EXPECT_EQ(t.argmax(), 2);
  EXPECT_EQ(t.count_nonzero(), 3);
  EXPECT_DOUBLE_EQ(t.zero_fraction(), 0.25);
}

TEST(Tensor, Reshape) {
  Tensor t = Tensor::arange(12);
  Tensor r = t.reshaped({3, 4});
  EXPECT_EQ(r.size(0), 3);
  EXPECT_FLOAT_EQ(r.at({2, 3}), 11.0f);

  Tensor inferred = t.reshaped({2, -1});
  EXPECT_EQ(inferred.size(1), 6);

  EXPECT_THROW(t.reshaped({5, 2}), std::runtime_error);
  EXPECT_THROW(t.reshaped({-1, -1}), std::runtime_error);
}

TEST(Tensor, MatrixViews) {
  Tensor t = Tensor::arange(6);
  MatrixView m = as_matrix(t, 2, 3);
  EXPECT_FLOAT_EQ(m(1, 2), 5.0f);
  m(0, 0) = 9.0f;
  EXPECT_FLOAT_EQ(t[0], 9.0f);
  EXPECT_THROW(as_matrix(t, 4, 2), std::runtime_error);
}

TEST(Tensor, AllcloseAndMaxAbsDiff) {
  Tensor a({2}, {1.0f, 2.0f});
  Tensor b({2}, {1.0f, 2.00001f});
  EXPECT_TRUE(allclose(a, b, 1e-4f, 1e-4f));
  EXPECT_FALSE(allclose(a, b, 0.0f, 1e-7f));
  EXPECT_NEAR(max_abs_diff(a, b), 1e-5f, 1e-6f);
}

// ---------------------------------------------------------------------------
// GEMM kernels vs a naive reference.

Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  const std::int64_t m = a.size(0), k = a.size(1), n = b.size(1);
  Tensor c({m, n});
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p)
        acc += static_cast<double>(a[i * k + p]) * b[p * n + j];
      c[i * n + j] = static_cast<float>(acc);
    }
  return c;
}

struct GemmCase {
  std::int64_t m, k, n;
};

class MatmulTest : public ::testing::TestWithParam<GemmCase> {};

TEST_P(MatmulTest, MatchesNaive) {
  const auto [m, k, n] = GetParam();
  Rng rng(m * 1000 + k * 10 + n);
  Tensor a = Tensor::randn({m, k}, rng);
  Tensor b = Tensor::randn({k, n}, rng);
  EXPECT_TRUE(allclose(matmul(a, b), naive_matmul(a, b), 1e-4f, 1e-4f));
}

TEST_P(MatmulTest, TransposedVariants) {
  const auto [m, k, n] = GetParam();
  Rng rng(m + k + n);
  Tensor a = Tensor::randn({m, k}, rng);
  Tensor b = Tensor::randn({k, n}, rng);
  const Tensor expect = naive_matmul(a, b);

  // matmul_tn: A stored transposed (k x m).
  Tensor at({k, m});
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t p = 0; p < k; ++p) at[p * m + i] = a[i * k + p];
  Tensor c1({m, n});
  matmul_tn(as_matrix(at, k, m), as_matrix(b, k, n), as_matrix(c1, m, n));
  EXPECT_TRUE(allclose(c1, expect, 1e-4f, 1e-4f));

  // matmul_nt: B stored transposed (n x k).
  Tensor bt({n, k});
  for (std::int64_t p = 0; p < k; ++p)
    for (std::int64_t j = 0; j < n; ++j) bt[j * k + p] = b[p * n + j];
  Tensor c2({m, n});
  matmul_nt(as_matrix(a, m, k), as_matrix(bt, n, k), as_matrix(c2, m, n));
  EXPECT_TRUE(allclose(c2, expect, 1e-4f, 1e-4f));
}

INSTANTIATE_TEST_SUITE_P(Shapes, MatmulTest,
                         ::testing::Values(GemmCase{1, 1, 1}, GemmCase{2, 3, 4},
                                           GemmCase{7, 5, 3},
                                           GemmCase{16, 16, 16},
                                           GemmCase{1, 32, 8},
                                           GemmCase{13, 1, 17},
                                           GemmCase{24, 48, 12}));

TEST(Matmul, AccumulateAddsOnto) {
  Rng rng(3);
  Tensor a = Tensor::randn({4, 5}, rng);
  Tensor b = Tensor::randn({5, 6}, rng);
  Tensor c = Tensor::ones({4, 6});
  matmul_accumulate(as_matrix(a, 4, 5), as_matrix(b, 5, 6), as_matrix(c, 4, 6));
  Tensor expect = naive_matmul(a, b);
  for (std::int64_t i = 0; i < expect.numel(); ++i)
    EXPECT_NEAR(c[i], expect[i] + 1.0f, 1e-4f);
}

TEST(Matmul, DimensionMismatchThrows) {
  Tensor a({2, 3}), b({4, 5}), c({2, 5});
  EXPECT_THROW(
      matmul(as_matrix(a, 2, 3), as_matrix(b, 4, 5), as_matrix(c, 2, 5)),
      std::runtime_error);
}

// ---------------------------------------------------------------------------
// im2col / col2im.

/// Direct convolution reference for one sample.
Tensor naive_conv(const Tensor& image, const Tensor& weight,
                  const ConvGeometry& g, std::int64_t out_channels) {
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  Tensor out({out_channels, oh, ow});
  for (std::int64_t s = 0; s < out_channels; ++s)
    for (std::int64_t oy = 0; oy < oh; ++oy)
      for (std::int64_t ox = 0; ox < ow; ++ox) {
        double acc = 0.0;
        for (std::int64_t c = 0; c < g.in_channels; ++c)
          for (std::int64_t kh = 0; kh < g.kernel_h; ++kh)
            for (std::int64_t kw = 0; kw < g.kernel_w; ++kw) {
              const std::int64_t iy = oy * g.stride - g.padding + kh;
              const std::int64_t ix = ox * g.stride - g.padding + kw;
              if (iy < 0 || iy >= g.in_h || ix < 0 || ix >= g.in_w) continue;
              acc += static_cast<double>(
                         weight[((s * g.in_channels + c) * g.kernel_h + kh) *
                                    g.kernel_w +
                                kw]) *
                     image[(c * g.in_h + iy) * g.in_w + ix];
            }
        out[(s * oh + oy) * ow + ox] = static_cast<float>(acc);
      }
  return out;
}

struct ConvCase {
  std::int64_t channels, size, kernel, stride, padding;
};

class Im2colTest : public ::testing::TestWithParam<ConvCase> {};

TEST_P(Im2colTest, ConvViaGemmMatchesDirect) {
  const auto [channels, size, kernel, stride, padding] = GetParam();
  ConvGeometry g{channels, size, size, kernel, kernel, stride, padding};
  Rng rng(size * 10 + kernel);
  Tensor image = Tensor::randn({channels, size, size}, rng);
  const std::int64_t out_ch = 3;
  Tensor weight = Tensor::randn({out_ch, channels, kernel, kernel}, rng);

  Tensor cols({g.col_rows(), g.col_cols()});
  im2col(image.data(), g, cols.data());
  Tensor y({out_ch, g.col_cols()});
  matmul(as_matrix(weight, out_ch, g.col_rows()),
         as_matrix(cols, g.col_rows(), g.col_cols()),
         as_matrix(y, out_ch, g.col_cols()));

  Tensor expect = naive_conv(image, weight, g, out_ch);
  expect.reshape_inplace({out_ch, g.col_cols()});
  EXPECT_TRUE(allclose(y, expect, 1e-4f, 1e-4f));
}

TEST_P(Im2colTest, Col2imIsAdjoint) {
  // <im2col(x), y> == <x, col2im(y)> characterises the adjoint exactly.
  const auto [channels, size, kernel, stride, padding] = GetParam();
  ConvGeometry g{channels, size, size, kernel, kernel, stride, padding};
  Rng rng(7);
  Tensor x = Tensor::randn({channels, size, size}, rng);
  Tensor y = Tensor::randn({g.col_rows(), g.col_cols()}, rng);

  Tensor cols({g.col_rows(), g.col_cols()});
  im2col(x.data(), g, cols.data());
  double lhs = 0.0;
  for (std::int64_t i = 0; i < cols.numel(); ++i)
    lhs += static_cast<double>(cols[i]) * y[i];

  Tensor back({channels, size, size});
  col2im(y.data(), g, back.data());
  double rhs = 0.0;
  for (std::int64_t i = 0; i < x.numel(); ++i)
    rhs += static_cast<double>(x[i]) * back[i];

  EXPECT_NEAR(lhs, rhs, 1e-2 * (std::abs(lhs) + 1.0));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, Im2colTest,
    ::testing::Values(ConvCase{1, 5, 3, 1, 1}, ConvCase{3, 8, 3, 1, 1},
                      ConvCase{2, 8, 3, 2, 1}, ConvCase{4, 6, 1, 1, 0},
                      ConvCase{2, 7, 5, 1, 2}, ConvCase{3, 9, 3, 3, 0}));

// ---------------------------------------------------------------------------
// Serialization.

TEST(Serialize, RoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "crisp_test_tensors.bin")
          .string();
  Rng rng(11);
  TensorMap original;
  original.emplace("alpha", Tensor::randn({3, 4}, rng));
  original.emplace("beta.gamma", Tensor::arange(7));
  original.emplace("empty", Tensor({0}));
  save_tensors(original, path);
  EXPECT_TRUE(is_tensor_file(path));

  TensorMap loaded = load_tensors(path);
  ASSERT_EQ(loaded.size(), original.size());
  for (const auto& [name, tensor] : original) {
    ASSERT_TRUE(loaded.count(name)) << name;
    EXPECT_TRUE(allclose(loaded.at(name), tensor, 0.0f, 0.0f)) << name;
  }
  std::filesystem::remove(path);
}

TEST(Serialize, RejectsGarbage) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "crisp_test_garbage.bin")
          .string();
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fputs("this is not a tensor file", f);
    std::fclose(f);
  }
  EXPECT_FALSE(is_tensor_file(path));
  EXPECT_THROW(load_tensors(path), std::runtime_error);
  EXPECT_THROW(load_tensors("/nonexistent/nope.bin"), std::runtime_error);
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// RNG.

TEST(Rng, DeterministicAndDistinctStreams) {
  Rng a(5), b(5);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.randint(0, 1000), b.randint(0, 1000));

  Rng c(5);
  Rng fork1 = c.fork();
  Rng fork2 = c.fork();
  // Forked streams should not mirror each other.
  int same = 0;
  for (int i = 0; i < 32; ++i)
    same += (fork1.randint(0, 1 << 20) == fork2.randint(0, 1 << 20));
  EXPECT_LT(same, 4);
}

TEST(Rng, SampleWithoutReplacement) {
  Rng rng(9);
  auto sample = rng.sample_without_replacement(50, 10);
  EXPECT_EQ(sample.size(), 10u);
  std::set<std::int64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
  for (auto v : sample) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 50);
  }
  // Asking for more than available returns everything.
  auto all = rng.sample_without_replacement(5, 99);
  EXPECT_EQ(all.size(), 5u);
}

TEST(Rng, UniformAndBernoulliRanges) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    const float u = rng.uniform(2.0f, 3.0f);
    EXPECT_GE(u, 2.0f);
    EXPECT_LT(u, 3.0f);
  }
  int heads = 0;
  for (int i = 0; i < 1000; ++i) heads += rng.bernoulli(0.8);
  EXPECT_GT(heads, 700);
  EXPECT_LT(heads, 900);
}

}  // namespace
}  // namespace crisp
