// Data substrate tests: synthetic class-pattern generation, determinism,
// class separability, dataset utilities and batching.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "data/class_pattern.h"
#include "data/dataset.h"

namespace crisp::data {
namespace {

ClassPatternConfig tiny_config() {
  ClassPatternConfig cfg = ClassPatternConfig::cifar100_like();
  cfg.num_classes = 6;
  cfg.image_size = 12;
  cfg.train_per_class = 8;
  cfg.test_per_class = 4;
  return cfg;
}

TEST(ClassPattern, ShapesAndLabels) {
  const auto cfg = tiny_config();
  const TrainTest tt = make_class_pattern_dataset(cfg);
  EXPECT_EQ(tt.train.size(), cfg.num_classes * cfg.train_per_class);
  EXPECT_EQ(tt.test.size(), cfg.num_classes * cfg.test_per_class);
  EXPECT_EQ(tt.train.images.shape(),
            (Shape{tt.train.size(), 3, cfg.image_size, cfg.image_size}));
  EXPECT_EQ(tt.train.num_classes, cfg.num_classes);

  std::map<std::int64_t, std::int64_t> counts;
  for (auto l : tt.train.labels) {
    ASSERT_GE(l, 0);
    ASSERT_LT(l, cfg.num_classes);
    ++counts[l];
  }
  for (std::int64_t c = 0; c < cfg.num_classes; ++c)
    EXPECT_EQ(counts[c], cfg.train_per_class);
}

TEST(ClassPattern, DeterministicInSeed) {
  const auto cfg = tiny_config();
  const TrainTest a = make_class_pattern_dataset(cfg);
  const TrainTest b = make_class_pattern_dataset(cfg);
  EXPECT_TRUE(allclose(a.train.images, b.train.images, 0.0f, 0.0f));
  EXPECT_TRUE(allclose(a.test.images, b.test.images, 0.0f, 0.0f));

  ClassPatternConfig other = cfg;
  other.seed += 1;
  const TrainTest c = make_class_pattern_dataset(other);
  EXPECT_FALSE(allclose(a.train.images, c.train.images, 1e-3f, 1e-3f));
}

TEST(ClassPattern, TestSplitIndependentOfTrainSize) {
  auto cfg = tiny_config();
  const TrainTest a = make_class_pattern_dataset(cfg);
  cfg.train_per_class *= 2;
  const TrainTest b = make_class_pattern_dataset(cfg);
  EXPECT_TRUE(allclose(a.test.images, b.test.images, 0.0f, 0.0f));
}

TEST(ClassPattern, PrototypesDiffer) {
  const auto cfg = tiny_config();
  const Tensor p0 = class_prototype(cfg, 0);
  const Tensor p1 = class_prototype(cfg, 1);
  EXPECT_EQ(p0.shape(), (Shape{1, 3, cfg.image_size, cfg.image_size}));
  EXPECT_GT(max_abs_diff(p0, p1), 0.1f);
  EXPECT_THROW(class_prototype(cfg, cfg.num_classes), std::runtime_error);
}

TEST(ClassPattern, NearestPrototypeSeparability) {
  // The generator must produce a genuinely learnable distribution: a
  // nearest-prototype classifier that accounts for the generator's cyclic
  // shift augmentation (distance = min over candidate shifts) should do
  // well. The shift search is exactly the invariance a conv net learns.
  const auto cfg = tiny_config();
  const TrainTest tt = make_class_pattern_dataset(cfg);
  std::vector<Tensor> prototypes;
  for (std::int64_t c = 0; c < cfg.num_classes; ++c)
    prototypes.push_back(class_prototype(cfg, c));

  const std::int64_t s = cfg.image_size;
  const std::int64_t chw = 3 * s * s;
  auto shifted_dist = [&](const float* img, const float* proto,
                          std::int64_t dy, std::int64_t dx) {
    double dist = 0.0;
    for (std::int64_t c = 0; c < 3; ++c)
      for (std::int64_t y = 0; y < s; ++y)
        for (std::int64_t x = 0; x < s; ++x) {
          const std::int64_t sy = (y + dy % s + s) % s;
          const std::int64_t sx = (x + dx % s + s) % s;
          const double d = static_cast<double>(img[(c * s + y) * s + x]) -
                           proto[(c * s + sy) * s + sx];
          dist += d * d;
        }
    return dist;
  };

  std::int64_t correct = 0;
  for (std::int64_t i = 0; i < tt.test.size(); ++i) {
    const float* img = tt.test.images.data() + i * chw;
    std::int64_t best = -1;
    double best_dist = 0.0;
    for (std::int64_t c = 0; c < cfg.num_classes; ++c) {
      const float* proto = prototypes[static_cast<std::size_t>(c)].data();
      for (std::int64_t dy = -cfg.max_shift; dy <= cfg.max_shift; ++dy)
        for (std::int64_t dx = -cfg.max_shift; dx <= cfg.max_shift; ++dx) {
          const double dist = shifted_dist(img, proto, dy, dx);
          if (best < 0 || dist < best_dist) {
            best = c;
            best_dist = dist;
          }
        }
    }
    correct += (best == tt.test.labels[static_cast<std::size_t>(i)]);
  }
  const double accuracy =
      static_cast<double>(correct) / static_cast<double>(tt.test.size());
  EXPECT_GE(accuracy, 0.75) << "generator classes are not separable enough";
}

TEST(ClassPattern, PresetsDiffer) {
  const auto easy = ClassPatternConfig::cifar100_like();
  const auto hard = ClassPatternConfig::imagenet_like();
  EXPECT_GT(hard.noise_std, easy.noise_std);
  EXPECT_GE(hard.max_shift, easy.max_shift);
}

// ---------------------------------------------------------------------------
// Dataset utilities.

Dataset small_dataset() {
  const auto cfg = tiny_config();
  return make_class_pattern_dataset(cfg).train;
}

TEST(Dataset, FilterClasses) {
  const Dataset d = small_dataset();
  const std::vector<std::int64_t> keep{1, 4};
  const Dataset f = filter_classes(d, keep);
  EXPECT_EQ(f.size(), 2 * 8);
  EXPECT_EQ(f.num_classes, d.num_classes);  // label space unchanged
  for (auto l : f.labels) EXPECT_TRUE(l == 1 || l == 4);
  EXPECT_THROW(filter_classes(d, {99}), std::runtime_error);
}

TEST(Dataset, FilterPreservesImages) {
  const Dataset d = small_dataset();
  const Dataset f = filter_classes(d, {0});
  // First sample of class 0 is also the first dataset sample.
  const Tensor a = d.sample(0);
  const Tensor b = f.sample(0);
  EXPECT_TRUE(allclose(a, b, 0.0f, 0.0f));
}

TEST(Dataset, TakePerClass) {
  const Dataset d = small_dataset();
  const Dataset t = take_per_class(d, 3);
  EXPECT_EQ(t.size(), d.num_classes * 3);
  std::map<std::int64_t, std::int64_t> counts;
  for (auto l : t.labels) ++counts[l];
  for (auto& [cls, n] : counts) EXPECT_EQ(n, 3) << "class " << cls;
}

TEST(Dataset, SampleUserClasses) {
  Rng rng(3);
  const auto classes = sample_user_classes(20, 5, rng);
  EXPECT_EQ(classes.size(), 5u);
  EXPECT_TRUE(std::is_sorted(classes.begin(), classes.end()));
  std::set<std::int64_t> unique(classes.begin(), classes.end());
  EXPECT_EQ(unique.size(), 5u);
  EXPECT_THROW(sample_user_classes(4, 5, rng), std::runtime_error);
  EXPECT_THROW(sample_user_classes(4, 0, rng), std::runtime_error);
}

TEST(Dataset, MakeBatchesCoversAllSamplesOnce) {
  const Dataset d = small_dataset();
  Rng rng(1);
  const auto batches = make_batches(d, 7, rng, /*shuffle=*/true);
  std::int64_t total = 0;
  std::map<std::int64_t, std::int64_t> label_counts;
  for (const auto& b : batches) {
    EXPECT_LE(b.size(), 7);
    total += b.size();
    for (auto l : b.labels) ++label_counts[l];
  }
  EXPECT_EQ(total, d.size());
  for (std::int64_t c = 0; c < d.num_classes; ++c)
    EXPECT_EQ(label_counts[c], 8);
}

TEST(Dataset, UnshuffledBatchesPreserveOrder) {
  const Dataset d = small_dataset();
  Rng rng(1);
  const auto batches = make_batches(d, 5, rng, /*shuffle=*/false);
  EXPECT_EQ(batches.front().labels[0], d.labels[0]);
  const Tensor first = d.sample(0);
  Tensor from_batch({1, 3, d.height(), d.width()});
  std::copy(batches.front().images.data(),
            batches.front().images.data() + first.numel(), from_batch.data());
  EXPECT_TRUE(allclose(first, from_batch, 0.0f, 0.0f));
}

TEST(Dataset, GatherBounds) {
  const Dataset d = small_dataset();
  EXPECT_THROW(gather(d, {d.size()}), std::runtime_error);
  const Batch b = gather(d, {0, 0, 1});
  EXPECT_EQ(b.size(), 3);
  EXPECT_EQ(b.labels[0], b.labels[1]);
}

}  // namespace
}  // namespace crisp::data
