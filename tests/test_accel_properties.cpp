// Property suites for the accelerator models and the design-space
// explorer: sanity invariants that must hold across the whole parameter
// space, not just the hand-picked points of test_accel.cpp.
#include <gtest/gtest.h>

#include <tuple>

#include "accel/dse.h"
#include "accel/report.h"

namespace crisp::accel {
namespace {

AcceleratorConfig cfg() { return AcceleratorConfig::edge_default(); }
EnergyModel nrg() { return EnergyModel::edge_default(); }

SparsityProfile profile(std::int64_t n, std::int64_t m, std::int64_t block,
                        double kept, double act = 0.6) {
  SparsityProfile p;
  p.n = n;
  p.m = m;
  p.block = block;
  p.kept_cols_fraction = kept;
  p.activation_density = act;
  return p;
}

// ---------------------------------------------------------------------------
// Every model, every layer, a grid of profiles: basic well-formedness.

using ModelCase = std::tuple<int /*model id*/, int /*n*/, double /*kept*/>;

class AllModelsProperty : public ::testing::TestWithParam<ModelCase> {
 protected:
  AcceleratorModelPtr make_model(int id) const {
    switch (id) {
      case 0: return std::make_unique<DenseModel>(cfg(), nrg());
      case 1: return std::make_unique<NvidiaStc>(cfg(), nrg());
      case 2: return std::make_unique<Dstc>(cfg(), nrg());
      default: return std::make_unique<CrispStc>(cfg(), nrg());
    }
  }
};

TEST_P(AllModelsProperty, ResultsAreWellFormed) {
  const auto [id, n, kept] = GetParam();
  const auto model = make_model(id);
  const SparsityProfile p = profile(n, 4, 64, kept);
  for (const GemmWorkload& w : resnet50_imagenet_workloads()) {
    const SimResult r = model->simulate(w, p);
    ASSERT_GT(r.cycles, 0.0) << model->name() << " " << w.name;
    ASSERT_GT(r.energy_pj, 0.0) << model->name() << " " << w.name;
    // Cycles are a roofline: never below any single component.
    ASSERT_GE(r.cycles + 1e-9, r.dram_cycles);
    ASSERT_GE(r.cycles + 1e-9, r.smem_cycles);
    ASSERT_GE(r.cycles + 1e-9, r.compute_cycles);
    // No model ever issues more MACs than the dense computation holds
    // (DSTC may count merge work as overhead cycles, never as MACs).
    ASSERT_LE(r.executed_macs,
              static_cast<double>(w.macs()) + 1e-6);
    ASSERT_GE(r.utilization, 0.0);
    ASSERT_LE(r.utilization, 1.0 + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AllModelsProperty,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(1, 2, 3),
                       ::testing::Values(0.125, 0.25, 0.5, 1.0)));

// ---------------------------------------------------------------------------
// CRISP-STC orderings that must hold on every layer.

class CrispOrderingProperty : public ::testing::TestWithParam<int> {
 protected:
  GemmWorkload layer() const {
    return resnet50_representative_workloads()
        [static_cast<std::size_t>(GetParam())];
  }
};

TEST_P(CrispOrderingProperty, MoreKeptColumnsNeverFaster) {
  const CrispStc crisp(cfg(), nrg());
  const GemmWorkload w = layer();
  double last_cycles = 0.0;
  for (const double kept : {0.125, 0.25, 0.5, 0.75, 1.0}) {
    const double c = crisp.simulate(w, profile(2, 4, 64, kept)).cycles;
    ASSERT_GE(c + 1e-9, last_cycles) << w.name << " kept " << kept;
    last_cycles = c;
  }
}

TEST_P(CrispOrderingProperty, SparseNeverSlowerThanDenseModel) {
  const CrispStc crisp(cfg(), nrg());
  const DenseModel dense(cfg(), nrg());
  const GemmWorkload w = layer();
  const double base = dense.simulate(w, SparsityProfile::dense()).cycles;
  for (const int n : {1, 2, 3})
    for (const double kept : {0.125, 0.25, 0.5}) {
      const double c = crisp.simulate(w, profile(n, 4, 64, kept)).cycles;
      ASSERT_LE(c, base * (1.0 + 1e-9))
          << w.name << " " << n << ":4 kept " << kept;
    }
}

TEST_P(CrispOrderingProperty, TighterNmNeverSlower) {
  // At a fixed block-kept fraction, fewer weights per group can only help
  // (the selector bound saturates, never inverts, the ordering).
  const CrispStc crisp(cfg(), nrg());
  const GemmWorkload w = layer();
  for (const double kept : {0.25, 0.5}) {
    const double c1 = crisp.simulate(w, profile(1, 4, 64, kept)).cycles;
    const double c2 = crisp.simulate(w, profile(2, 4, 64, kept)).cycles;
    const double c3 = crisp.simulate(w, profile(3, 4, 64, kept)).cycles;
    ASSERT_LE(c1, c2 * (1.0 + 1e-9)) << w.name << " kept " << kept;
    ASSERT_LE(c2, c3 * (1.0 + 1e-9)) << w.name << " kept " << kept;
  }
}

INSTANTIATE_TEST_SUITE_P(RepresentativeLayers, CrispOrderingProperty,
                         ::testing::Range(0, 9));

// ---------------------------------------------------------------------------
// Energy-model structure.

TEST(EnergyModelProperty, LeakageGrowsWithFabricSize) {
  const GemmWorkload w = resnet50_representative_workloads()[2];
  // A bandwidth-bound layer: enlarging the MAC array cannot reduce cycles,
  // so the bigger fabric must cost more energy (leaking area x same time).
  AcceleratorConfig small = cfg();
  small.dram_bw_bytes_per_cycle = 0.25;  // force DRAM-bound
  AcceleratorConfig big = small;
  big.tensor_cores *= 4;
  const DenseModel small_model(small, nrg());
  const DenseModel big_model(big, nrg());
  const SimResult rs = small_model.simulate(w, SparsityProfile::dense());
  const SimResult rb = big_model.simulate(w, SparsityProfile::dense());
  EXPECT_DOUBLE_EQ(rs.cycles, rb.cycles);
  EXPECT_GT(rb.energy_pj, rs.energy_pj);
}

TEST(EnergyModelProperty, SmemAccessCostScalesWithCapacity) {
  // A late layer whose activation working set fits 256 KB comfortably: the
  // bigger SMEM buys nothing (no spill to remove), so its higher per-access
  // cost and leakage must show up as strictly more energy. (Early spilling
  // layers are the opposite trade — bigger SMEM removes 80 pJ/B DRAM
  // traffic — which is exactly why capacity is a DSE axis and not a freebie.)
  const auto reps = resnet50_representative_workloads();
  const GemmWorkload w = reps.back();  // the classifier
  AcceleratorConfig base = cfg();
  AcceleratorConfig huge = base;
  huge.smem_kbytes = base.smem_kbytes * 4;  // sqrt-scaling: 2x pJ/B
  const CrispStc m_base(base, nrg());
  const CrispStc m_huge(huge, nrg());
  const SparsityProfile p = profile(2, 4, 64, 0.5);
  EXPECT_GT(m_huge.simulate(w, p).energy_pj, m_base.simulate(w, p).energy_pj);
}

// ---------------------------------------------------------------------------
// Design-space exploration.

TEST(Dse, SweepCardinalityIsKnobProduct) {
  const auto net = resnet50_representative_workloads();
  const auto profiles = ramp_kept_profiles(
      static_cast<std::int64_t>(net.size()), 2, 4, 64, 0.5, 0.25);
  DseKnobs knobs;
  knobs.tensor_cores = {2, 4};
  knobs.macs_per_core = {32, 64, 128};
  knobs.smem_bw_bytes_per_cycle = {32.0, 64.0};
  const auto points = sweep_configs(cfg(), nrg(), knobs, net, profiles);
  EXPECT_EQ(points.size(), 2u * 3u * 2u);
  for (const DsePoint& p : points) {
    EXPECT_GT(p.cycles, 0.0);
    EXPECT_GT(p.energy_pj, 0.0);
    EXPECT_FALSE(p.label().empty());
  }
}

TEST(Dse, EmptyKnobsFallBackToBaseConfig) {
  const auto net = resnet50_representative_workloads();
  const auto profiles = ramp_kept_profiles(
      static_cast<std::int64_t>(net.size()), 2, 4, 64, 0.5, 0.25);
  const auto points = sweep_configs(cfg(), nrg(), DseKnobs{}, net, profiles);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].config.tensor_cores, cfg().tensor_cores);
  EXPECT_EQ(points[0].config.smem_kbytes, cfg().smem_kbytes);
}

TEST(Dse, ParetoFrontIsExactlyTheNonDominatedSet) {
  const auto net = resnet50_representative_workloads();
  const auto profiles = ramp_kept_profiles(
      static_cast<std::int64_t>(net.size()), 2, 4, 64, 0.5, 0.25);
  DseKnobs knobs;
  knobs.tensor_cores = {2, 4, 8};
  knobs.macs_per_core = {32, 64, 128};
  knobs.smem_kbytes = {128, 256, 512};
  const auto points = sweep_configs(cfg(), nrg(), knobs, net, profiles);
  const auto front = pareto_front(points);
  ASSERT_FALSE(front.empty());

  auto dominates = [&](std::size_t a, std::size_t b) {
    return points[a].cycles <= points[b].cycles &&
           points[a].energy_pj <= points[b].energy_pj &&
           (points[a].cycles < points[b].cycles ||
            points[a].energy_pj < points[b].energy_pj);
  };
  for (std::size_t i = 0; i < points.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < points.size(); ++j)
      if (j != i && dominates(j, i)) dominated = true;
    const bool on_front =
        std::find(front.begin(), front.end(), i) != front.end();
    // Non-dominated <=> on the front (ties collapse to one representative,
    // so check the cheap direction: front members are never dominated and
    // dominated points are never front members).
    if (on_front) EXPECT_FALSE(dominated) << "front point " << i << " dominated";
    if (dominated) EXPECT_FALSE(on_front) << "dominated point " << i << " on front";
  }
}

TEST(Dse, FrontSortedByCyclesWithDecreasingEnergy) {
  const auto net = resnet50_representative_workloads();
  const auto profiles = ramp_kept_profiles(
      static_cast<std::int64_t>(net.size()), 2, 4, 64, 0.5, 0.25);
  DseKnobs knobs;
  knobs.tensor_cores = {2, 4, 8};
  knobs.smem_bw_bytes_per_cycle = {16.0, 64.0};
  const auto points = sweep_configs(cfg(), nrg(), knobs, net, profiles);
  const auto front = pareto_front(points);
  for (std::size_t i = 1; i < front.size(); ++i) {
    EXPECT_GE(points[front[i]].cycles, points[front[i - 1]].cycles);
    EXPECT_LT(points[front[i]].energy_pj, points[front[i - 1]].energy_pj);
  }
}

TEST(Dse, MoreBandwidthNeverSlower) {
  const auto net = resnet50_imagenet_workloads();
  const auto profiles = ramp_kept_profiles(
      static_cast<std::int64_t>(net.size()), 1, 4, 64, 0.5, 0.12);
  DseKnobs knobs;
  knobs.smem_bw_bytes_per_cycle = {8.0, 16.0, 32.0, 64.0, 128.0};
  const auto points = sweep_configs(cfg(), nrg(), knobs, net, profiles);
  for (std::size_t i = 1; i < points.size(); ++i)
    EXPECT_LE(points[i].cycles, points[i - 1].cycles * (1.0 + 1e-9))
        << "smem bw step " << i;
}

TEST(Dse, RejectsMisalignedProfiles) {
  const auto net = resnet50_representative_workloads();
  const std::vector<SparsityProfile> too_few(net.size() - 1,
                                             SparsityProfile::dense());
  EXPECT_THROW(sweep_configs(cfg(), nrg(), DseKnobs{}, net, too_few),
               std::runtime_error);
}

}  // namespace
}  // namespace crisp::accel
