// Layer tests: forward correctness against naive references and
// finite-difference gradient checks for every layer and composite block.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/models/mobilenet.h"
#include "nn/models/resnet.h"
#include "nn/pooling.h"
#include "nn/sequential.h"

namespace crisp::nn {
namespace {

/// Scalar probe loss: L = Σ w ⊙ layer(x), with fixed random w. Its gradient
/// w.r.t. the layer output is simply w, so backward() can be driven exactly.
float probe_loss(Layer& layer, const Tensor& x, const Tensor& w) {
  Tensor y = layer.forward(x, /*train=*/true);
  EXPECT_EQ(y.numel(), w.numel());
  double acc = 0.0;
  for (std::int64_t i = 0; i < y.numel(); ++i)
    acc += static_cast<double>(y[i]) * w[i];
  return static_cast<float>(acc);
}

/// Moves values away from ReLU/pool kinks so finite differences stay valid.
void nudge_from_kinks(Tensor& t, float margin = 0.05f) {
  for (std::int64_t i = 0; i < t.numel(); ++i)
    if (std::fabs(t[i]) < margin) t[i] = t[i] < 0 ? -margin : margin;
}

struct GradCheckOptions {
  float eps = 5e-3f;
  float rel_tol = 0.08f;
  float abs_tol = 0.02f;
  std::int64_t max_probes = 24;
};

/// Central-difference check of input and parameter gradients.
void check_gradients(Layer& layer, Tensor x, std::uint64_t seed,
                     const GradCheckOptions& opt = {}) {
  Rng rng(seed);
  nudge_from_kinks(x);
  Tensor y = layer.forward(x, /*train=*/true);
  Tensor w = Tensor::randn(y.shape(), rng);

  layer.zero_grad();
  (void)probe_loss(layer, x, w);
  Tensor grad_in = layer.backward(w);
  ASSERT_TRUE(grad_in.same_shape(x));

  auto probe_indices = [&](std::int64_t n) {
    std::vector<std::int64_t> idx;
    const std::int64_t count = std::min(n, opt.max_probes);
    for (std::int64_t i = 0; i < count; ++i)
      idx.push_back(rng.randint(0, n - 1));
    return idx;
  };

  // Input gradient.
  for (std::int64_t i : probe_indices(x.numel())) {
    const float saved = x[i];
    x[i] = saved + opt.eps;
    const float lp = probe_loss(layer, x, w);
    x[i] = saved - opt.eps;
    const float lm = probe_loss(layer, x, w);
    x[i] = saved;
    const float numeric = (lp - lm) / (2.0f * opt.eps);
    const float analytic = grad_in[i];
    EXPECT_NEAR(analytic, numeric,
                opt.abs_tol + opt.rel_tol * std::fabs(numeric))
        << layer.name() << " input grad at " << i;
  }

  // Parameter gradients.
  for (Parameter* p : layer.parameters()) {
    for (std::int64_t i : probe_indices(p->value.numel())) {
      const float saved = p->value[i];
      p->value[i] = saved + opt.eps;
      const float lp = probe_loss(layer, x, w);
      p->value[i] = saved - opt.eps;
      const float lm = probe_loss(layer, x, w);
      p->value[i] = saved;
      const float numeric = (lp - lm) / (2.0f * opt.eps);
      const float analytic = p->grad[i];
      EXPECT_NEAR(analytic, numeric,
                  opt.abs_tol + opt.rel_tol * std::fabs(numeric))
          << layer.name() << " param " << p->name << " grad at " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Conv2d.

TEST(Conv2d, ForwardMatchesNaiveReference) {
  Rng rng(1);
  Conv2dSpec spec;
  spec.in_channels = 3;
  spec.out_channels = 4;
  spec.kernel = 3;
  spec.stride = 1;
  spec.padding = 1;
  Conv2d conv("conv", spec, rng);

  Tensor x = Tensor::randn({2, 3, 6, 6}, rng);
  Tensor y = conv.forward(x, false);
  ASSERT_EQ(y.shape(), (Shape{2, 4, 6, 6}));

  // Direct convolution reference.
  const Tensor& wt = conv.weight().value;
  for (std::int64_t b = 0; b < 2; ++b)
    for (std::int64_t s = 0; s < 4; ++s)
      for (std::int64_t oy = 0; oy < 6; ++oy)
        for (std::int64_t ox = 0; ox < 6; ++ox) {
          double acc = 0.0;
          for (std::int64_t c = 0; c < 3; ++c)
            for (std::int64_t kh = 0; kh < 3; ++kh)
              for (std::int64_t kw = 0; kw < 3; ++kw) {
                const std::int64_t iy = oy - 1 + kh, ix = ox - 1 + kw;
                if (iy < 0 || iy >= 6 || ix < 0 || ix >= 6) continue;
                acc += static_cast<double>(
                           wt.at({s, c, kh, kw})) *
                       x.at({b, c, iy, ix});
              }
          EXPECT_NEAR(y.at({b, s, oy, ox}), acc, 1e-4)
              << b << "," << s << "," << oy << "," << ox;
        }
}

TEST(Conv2d, DepthwiseForwardMatchesPerChannelConv) {
  Rng rng(2);
  Conv2dSpec spec;
  spec.in_channels = 4;
  spec.out_channels = 4;
  spec.kernel = 3;
  spec.padding = 1;
  spec.groups = 4;
  Conv2d conv("dw", spec, rng);
  Tensor x = Tensor::randn({1, 4, 5, 5}, rng);
  Tensor y = conv.forward(x, false);
  ASSERT_EQ(y.shape(), (Shape{1, 4, 5, 5}));

  const Tensor& wt = conv.weight().value;  // (4, 1, 3, 3)
  for (std::int64_t c = 0; c < 4; ++c)
    for (std::int64_t oy = 0; oy < 5; ++oy)
      for (std::int64_t ox = 0; ox < 5; ++ox) {
        double acc = 0.0;
        for (std::int64_t kh = 0; kh < 3; ++kh)
          for (std::int64_t kw = 0; kw < 3; ++kw) {
            const std::int64_t iy = oy - 1 + kh, ix = ox - 1 + kw;
            if (iy < 0 || iy >= 5 || ix < 0 || ix >= 5) continue;
            acc += static_cast<double>(wt.at({c, 0, kh, kw})) *
                   x.at({0, c, iy, ix});
          }
        EXPECT_NEAR(y.at({0, c, oy, ox}), acc, 1e-4);
      }
}

struct ConvGradCase {
  std::int64_t in_ch, out_ch, kernel, stride, padding, groups;
  bool bias;
};

class Conv2dGradTest : public ::testing::TestWithParam<ConvGradCase> {};

TEST_P(Conv2dGradTest, GradientsMatchFiniteDifferences) {
  const auto c = GetParam();
  Rng rng(33);
  Conv2dSpec spec;
  spec.in_channels = c.in_ch;
  spec.out_channels = c.out_ch;
  spec.kernel = c.kernel;
  spec.stride = c.stride;
  spec.padding = c.padding;
  spec.groups = c.groups;
  spec.bias = c.bias;
  Conv2d conv("conv_grad", spec, rng);
  Tensor x = Tensor::randn({2, c.in_ch, 6, 6}, rng);
  check_gradients(conv, std::move(x), 100 + c.kernel);
}

INSTANTIATE_TEST_SUITE_P(
    Specs, Conv2dGradTest,
    ::testing::Values(ConvGradCase{3, 4, 3, 1, 1, 1, false},
                      ConvGradCase{4, 2, 1, 1, 0, 1, true},
                      ConvGradCase{2, 6, 3, 2, 1, 1, false},
                      ConvGradCase{4, 4, 3, 1, 1, 4, false},   // depthwise
                      ConvGradCase{4, 8, 3, 1, 1, 2, true}));  // grouped

TEST(Conv2d, MaskedForwardZeroesContributions) {
  Rng rng(4);
  Conv2dSpec spec;
  spec.in_channels = 2;
  spec.out_channels = 2;
  spec.kernel = 1;
  spec.padding = 0;
  Conv2d conv("mask", spec, rng);
  Tensor x = Tensor::ones({1, 2, 2, 2});

  conv.weight().ensure_mask();
  conv.weight().mask.zero();  // everything pruned
  Tensor y = conv.forward(x, false);
  EXPECT_FLOAT_EQ(y.abs_max(), 0.0f);

  // MAC accounting reflects the mask.
  EXPECT_EQ(conv.last_sparse_macs(), 0);
  EXPECT_GT(conv.last_dense_macs(), 0);
}

TEST(Conv2d, SteGradientIsDenseUnderMask) {
  Rng rng(5);
  Conv2dSpec spec;
  spec.in_channels = 2;
  spec.out_channels = 2;
  spec.kernel = 3;
  spec.padding = 1;
  Conv2d conv("ste", spec, rng);
  conv.weight().ensure_mask();
  // Prune half the weights.
  for (std::int64_t i = 0; i < conv.weight().mask.numel(); i += 2)
    conv.weight().mask[i] = 0.0f;

  Tensor x = Tensor::randn({1, 2, 4, 4}, rng);
  conv.zero_grad();
  Tensor y = conv.forward(x, true);
  conv.backward(Tensor::ones(y.shape()));
  // Straight-through: even masked-out weights receive gradient.
  std::int64_t nonzero_grads_at_masked = 0;
  for (std::int64_t i = 0; i < conv.weight().mask.numel(); i += 2)
    nonzero_grads_at_masked += (conv.weight().grad[i] != 0.0f);
  EXPECT_GT(nonzero_grads_at_masked, 0);
}

TEST(Conv2d, RejectsBadInputs) {
  Rng rng(6);
  Conv2dSpec spec;
  spec.in_channels = 3;
  spec.out_channels = 4;
  Conv2d conv("bad", spec, rng);
  EXPECT_THROW(conv.forward(Tensor({1, 2, 4, 4}), false), std::runtime_error);
  EXPECT_THROW(conv.forward(Tensor({3, 4, 4}), false), std::runtime_error);
  EXPECT_THROW(conv.backward(Tensor({1, 4, 4, 4})), std::runtime_error);

  Conv2dSpec bad_groups;
  bad_groups.in_channels = 3;
  bad_groups.out_channels = 4;
  bad_groups.groups = 2;
  EXPECT_THROW(Conv2d("g", bad_groups, rng), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Linear.

TEST(Linear, ForwardMatchesManual) {
  Rng rng(7);
  Linear lin("fc", 3, 2, rng, /*bias=*/true);
  Tensor x({2, 3}, {1, 2, 3, 4, 5, 6});
  lin.weight().value = Tensor({2, 3}, {1, 0, 0, 0, 1, 0});
  Tensor y = lin.forward(x, false);
  // y = x · Wᵀ: row0 = (1, 2), row1 = (4, 5)
  EXPECT_FLOAT_EQ(y.at({0, 0}), 1.0f);
  EXPECT_FLOAT_EQ(y.at({0, 1}), 2.0f);
  EXPECT_FLOAT_EQ(y.at({1, 0}), 4.0f);
  EXPECT_FLOAT_EQ(y.at({1, 1}), 5.0f);
}

TEST(Linear, GradientsMatchFiniteDifferences) {
  Rng rng(8);
  Linear lin("fc_grad", 5, 4, rng, /*bias=*/true);
  Tensor x = Tensor::randn({3, 5}, rng);
  check_gradients(lin, std::move(x), 42);
}

TEST(Linear, MatrixInterpretation) {
  Rng rng(9);
  Linear lin("fc_m", 6, 4, rng);
  EXPECT_EQ(lin.weight().matrix_rows, 4);
  EXPECT_EQ(lin.weight().matrix_cols, 6);
  EXPECT_TRUE(lin.weight().prunable);
}

// ---------------------------------------------------------------------------
// BatchNorm2d.

TEST(BatchNorm2d, NormalizesBatchStatistics) {
  Rng rng(10);
  BatchNorm2d bn("bn", 3);
  Tensor x = Tensor::randn({4, 3, 5, 5}, rng, 2.0f, 3.0f);
  Tensor y = bn.forward(x, true);

  // Per channel, output should be ~zero-mean unit-variance.
  for (std::int64_t c = 0; c < 3; ++c) {
    double sum = 0.0, sq = 0.0;
    std::int64_t count = 0;
    for (std::int64_t b = 0; b < 4; ++b)
      for (std::int64_t i = 0; i < 25; ++i) {
        const float v = y.at({b, c, i / 5, i % 5});
        sum += v;
        sq += static_cast<double>(v) * v;
        ++count;
      }
    const double mean = sum / count;
    const double var = sq / count - mean * mean;
    EXPECT_NEAR(mean, 0.0, 1e-3);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNorm2d, EvalUsesRunningStats) {
  Rng rng(11);
  BatchNorm2d bn("bn_eval", 2);
  Tensor x = Tensor::randn({8, 2, 4, 4}, rng, 1.0f, 2.0f);
  // Accumulate running statistics until they converge to the batch stats
  // (momentum 0.1 ⇒ residual 0.9^60 ≈ 0.002 of the initial gap).
  for (int i = 0; i < 60; ++i) bn.forward(x, true);
  Tensor y_eval = bn.forward(x, false);
  Tensor y_train = bn.forward(x, true);
  // With converged running stats the two modes agree closely.
  EXPECT_LT(max_abs_diff(y_eval, y_train), 0.15f);
}

TEST(BatchNorm2d, GradientsMatchFiniteDifferences) {
  Rng rng(12);
  BatchNorm2d bn("bn_grad", 3);
  Tensor x = Tensor::randn({3, 3, 4, 4}, rng);
  check_gradients(bn, std::move(x), 77);
}

// ---------------------------------------------------------------------------
// Activations / Flatten.

TEST(ReLU, ForwardAndBackward) {
  ReLU relu("relu");
  Tensor x({4}, {-1.0f, 0.5f, -0.2f, 2.0f});
  Tensor y = relu.forward(x, true);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[1], 0.5f);
  Tensor g = relu.backward(Tensor::ones({4}));
  EXPECT_FLOAT_EQ(g[0], 0.0f);
  EXPECT_FLOAT_EQ(g[1], 1.0f);
  EXPECT_FLOAT_EQ(g[2], 0.0f);
  EXPECT_FLOAT_EQ(g[3], 1.0f);
}

TEST(ReLU6, CapsAndGates) {
  ReLU relu6("relu6", 6.0f);
  Tensor x({3}, {-1.0f, 3.0f, 9.0f});
  Tensor y = relu6.forward(x, true);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[1], 3.0f);
  EXPECT_FLOAT_EQ(y[2], 6.0f);
  Tensor g = relu6.backward(Tensor::ones({3}));
  EXPECT_FLOAT_EQ(g[0], 0.0f);
  EXPECT_FLOAT_EQ(g[1], 1.0f);
  EXPECT_FLOAT_EQ(g[2], 0.0f);  // saturated region passes no gradient
}

TEST(Flatten, RoundTrip) {
  Flatten flat("flat");
  Rng rng(13);
  Tensor x = Tensor::randn({2, 3, 4, 4}, rng);
  Tensor y = flat.forward(x, true);
  EXPECT_EQ(y.shape(), (Shape{2, 48}));
  Tensor g = flat.backward(y);
  EXPECT_EQ(g.shape(), x.shape());
  EXPECT_TRUE(allclose(g, x, 0.0f, 0.0f));
}

// ---------------------------------------------------------------------------
// Pooling.

TEST(MaxPool2d, ForwardKnownValues) {
  MaxPool2d pool("pool");
  Tensor x({1, 1, 4, 4},
           {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16});
  Tensor y = pool.forward(x, true);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(y[0], 6.0f);
  EXPECT_FLOAT_EQ(y[1], 8.0f);
  EXPECT_FLOAT_EQ(y[2], 14.0f);
  EXPECT_FLOAT_EQ(y[3], 16.0f);

  Tensor g = pool.backward(Tensor::ones({1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(g.at({0, 0, 1, 1}), 1.0f);   // argmax positions get grad
  EXPECT_FLOAT_EQ(g.at({0, 0, 0, 0}), 0.0f);
  EXPECT_FLOAT_EQ(g.sum(), 4.0f);
}

TEST(MaxPool2d, GradientsMatchFiniteDifferences) {
  Rng rng(14);
  MaxPool2d pool("pool_grad");
  Tensor x = Tensor::randn({2, 2, 6, 6}, rng);
  check_gradients(pool, std::move(x), 55);
}

TEST(GlobalAvgPool, ForwardAndBackward) {
  GlobalAvgPool gap("gap");
  Tensor x({1, 2, 2, 2}, {1, 2, 3, 4, 10, 20, 30, 40});
  Tensor y = gap.forward(x, true);
  EXPECT_EQ(y.shape(), (Shape{1, 2}));
  EXPECT_FLOAT_EQ(y[0], 2.5f);
  EXPECT_FLOAT_EQ(y[1], 25.0f);
  Tensor g = gap.backward(Tensor({1, 2}, {4.0f, 8.0f}));
  EXPECT_FLOAT_EQ(g.at({0, 0, 0, 0}), 1.0f);
  EXPECT_FLOAT_EQ(g.at({0, 1, 1, 1}), 2.0f);
}

// ---------------------------------------------------------------------------
// Sequential and composite blocks.

TEST(Sequential, ChainsAndAggregates) {
  Rng rng(15);
  Sequential seq("seq");
  seq.emplace<Linear>("l1", 4, 8, rng);
  seq.emplace<ReLU>("r1");
  seq.emplace<Linear>("l2", 8, 2, rng);
  EXPECT_EQ(seq.layer_count(), 3);
  EXPECT_EQ(seq.parameters().size(), 4u);         // 2 weights + 2 biases
  EXPECT_EQ(seq.prunable_parameters().size(), 2u);
  EXPECT_EQ(seq.children().size(), 3u);

  Tensor x = Tensor::randn({3, 4}, rng);
  Tensor y = seq.forward(x, true);
  EXPECT_EQ(y.shape(), (Shape{3, 2}));
  Tensor g = seq.backward(Tensor::ones(y.shape()));
  EXPECT_EQ(g.shape(), x.shape());
}

TEST(Sequential, GradientsMatchFiniteDifferences) {
  Rng rng(16);
  Sequential seq("seq_grad");
  seq.emplace<Linear>("l1", 4, 6, rng);
  seq.emplace<ReLU>("r1");
  seq.emplace<Linear>("l2", 6, 3, rng);
  Tensor x = Tensor::randn({2, 4}, rng);
  check_gradients(seq, std::move(x), 88);
}

TEST(Sequential, StateDictRoundTrip) {
  Rng rng_a(17), rng_b(99);
  auto build = [](Rng& rng) {
    auto seq = std::make_unique<Sequential>("m");
    seq->emplace<Conv2d>("c", Conv2dSpec{2, 4, 3, 1, 1, 1, false, true}, rng);
    seq->emplace<BatchNorm2d>("b", 4);
    seq->emplace<GlobalAvgPool>("g");
    seq->emplace<Linear>("f", 4, 3, rng);
    return seq;
  };
  auto a = build(rng_a);
  auto b = build(rng_b);

  Tensor x = Tensor::randn({2, 2, 5, 5}, rng_a);
  (void)a->forward(x, true);  // populate BN running stats
  const Tensor ya = a->forward(x, false);

  b->load_state_dict(a->state_dict());
  const Tensor yb = b->forward(x, false);
  EXPECT_TRUE(allclose(ya, yb, 1e-6f, 1e-6f));

  TensorMap incomplete;
  EXPECT_THROW(b->load_state_dict(incomplete), std::runtime_error);
}

TEST(Sequential, StateDictIncludesMasks) {
  Rng rng(18);
  Sequential seq("mm");
  auto& lin = seq.emplace<Linear>("l", 4, 4, rng, /*bias=*/false);
  lin.weight().ensure_mask();
  lin.weight().mask[3] = 0.0f;
  const TensorMap state = seq.state_dict();
  ASSERT_TRUE(state.count("l.weight#mask"));

  Rng rng2(19);
  Sequential other("mm2");
  other.emplace<Linear>("l", 4, 4, rng2, /*bias=*/false);
  other.load_state_dict(state);
  auto* p = other.prunable_parameters()[0];
  ASSERT_TRUE(p->has_mask());
  EXPECT_FLOAT_EQ(p->mask[3], 0.0f);
}

TEST(Bottleneck, ShapesAndResidualPath) {
  Rng rng(20);
  Bottleneck block("blk", 16, 4, 1, rng);  // identity shortcut (16 == 4*4)
  Tensor x = Tensor::randn({2, 16, 6, 6}, rng);
  Tensor y = block.forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{2, 16, 6, 6}));

  Bottleneck down("blk_down", 16, 8, 2, rng);  // projection shortcut
  Tensor y2 = down.forward(x, false);
  EXPECT_EQ(y2.shape(), (Shape{2, 32, 3, 3}));
  EXPECT_GT(down.parameters().size(), block.parameters().size());
}

TEST(Bottleneck, GradientsMatchFiniteDifferences) {
  Rng rng(21);
  Bottleneck block("blk_grad", 8, 2, 1, rng);
  Tensor x = Tensor::randn({2, 8, 4, 4}, rng);
  check_gradients(block, std::move(x), 66, {5e-3f, 0.12f, 0.03f, 16});
}

TEST(InvertedResidual, ShapesAndResidual) {
  Rng rng(22);
  InvertedResidual ir("ir", 8, 8, 1, 6, rng);
  Tensor x = Tensor::randn({2, 8, 6, 6}, rng);
  Tensor y = ir.forward(x, false);
  EXPECT_EQ(y.shape(), x.shape());

  InvertedResidual strided("ir_s", 8, 16, 2, 6, rng);
  Tensor y2 = strided.forward(x, false);
  EXPECT_EQ(y2.shape(), (Shape{2, 16, 3, 3}));
}

TEST(InvertedResidual, GradientsMatchFiniteDifferences) {
  Rng rng(23);
  InvertedResidual ir("ir_grad", 4, 4, 1, 2, rng);
  Tensor x = Tensor::randn({2, 4, 4, 4}, rng);
  check_gradients(ir, std::move(x), 44, {5e-3f, 0.12f, 0.03f, 16});
}

TEST(InvertedResidual, DepthwiseExcludedFromPruning) {
  Rng rng(24);
  InvertedResidual ir("ir_p", 8, 8, 1, 6, rng);
  // expand + project are prunable, depthwise is not.
  std::int64_t prunable = 0, total_convs = 0;
  for (Parameter* p : ir.parameters()) {
    if (p->name.find("weight") == std::string::npos) continue;
    ++total_convs;
    prunable += p->prunable;
  }
  EXPECT_EQ(total_convs, 3);
  EXPECT_EQ(prunable, 2);
}

}  // namespace
}  // namespace crisp::nn
