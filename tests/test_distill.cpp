// Knowledge-distillation fine-tuning tests: loss-gradient correctness
// (finite differences), limit behaviours (alpha endpoints, T = 1,
// teacher == student), and the end-to-end recovery path on a pruned model.
#include <gtest/gtest.h>

#include "core/pruner.h"
#include "data/class_pattern.h"
#include "nn/activations.h"
#include "nn/distill.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/models/common.h"

namespace crisp::nn {
namespace {

Tensor random_logits(std::int64_t b, std::int64_t c, std::uint64_t seed) {
  Rng rng(seed);
  return Tensor::randn({b, c}, rng, 0.0f, 2.0f);
}

std::vector<std::int64_t> labels_mod(std::int64_t b, std::int64_t c) {
  std::vector<std::int64_t> labels(static_cast<std::size_t>(b));
  for (std::int64_t i = 0; i < b; ++i) labels[static_cast<std::size_t>(i)] = i % c;
  return labels;
}

TEST(DistillLoss, AlphaZeroIsPlainCrossEntropy) {
  const Tensor zs = random_logits(4, 6, 1), zt = random_logits(4, 6, 2);
  const auto labels = labels_mod(4, 6);
  const DistillLossResult d = distill_loss(zs, zt, labels, 3.0f, 0.0f);
  const LossResult ce = cross_entropy(zs, labels);
  EXPECT_FLOAT_EQ(d.value, ce.value);
  EXPECT_LE(max_abs_diff(d.grad, ce.grad), 1e-7f);
}

TEST(DistillLoss, TeacherEqualsStudentZeroesKdTerm) {
  const Tensor z = random_logits(5, 4, 3);
  const auto labels = labels_mod(5, 4);
  const DistillLossResult d = distill_loss(z, z, labels, 2.0f, 1.0f);
  EXPECT_NEAR(d.kd, 0.0f, 1e-6f);
  EXPECT_NEAR(d.value, 0.0f, 1e-6f);
  EXPECT_LE(d.grad.abs_max(), 1e-6f);
}

TEST(DistillLoss, KdIsNonNegativeAndPullsTowardTeacher) {
  const Tensor zs = random_logits(4, 8, 4), zt = random_logits(4, 8, 5);
  const auto labels = labels_mod(4, 8);
  const DistillLossResult d = distill_loss(zs, zt, labels, 2.0f, 1.0f);
  EXPECT_GT(d.kd, 0.0f);  // KL divergence of distinct distributions

  // One gradient step on the logits must reduce the KD objective.
  Tensor stepped = zs;
  stepped.axpy_(-0.5f, d.grad);
  const DistillLossResult after =
      distill_loss(stepped, zt, labels, 2.0f, 1.0f);
  EXPECT_LT(after.kd, d.kd);
}

TEST(DistillLoss, GradientMatchesFiniteDifferences) {
  const std::int64_t b = 3, c = 5;
  Tensor zs = random_logits(b, c, 6);
  const Tensor zt = random_logits(b, c, 7);
  const auto labels = labels_mod(b, c);
  const float temperature = 2.5f, alpha = 0.7f;

  const DistillLossResult base =
      distill_loss(zs, zt, labels, temperature, alpha);
  const float eps = 1e-3f;
  for (std::int64_t i = 0; i < zs.numel(); i += 2) {
    const float saved = zs[i];
    zs[i] = saved + eps;
    const float up = distill_loss(zs, zt, labels, temperature, alpha).value;
    zs[i] = saved - eps;
    const float down = distill_loss(zs, zt, labels, temperature, alpha).value;
    zs[i] = saved;
    const float numeric = (up - down) / (2 * eps);
    EXPECT_NEAR(base.grad[i], numeric, 5e-3f) << "logit " << i;
  }
}

TEST(DistillLoss, RejectsBadArguments) {
  const Tensor zs = random_logits(2, 4, 8);
  const Tensor zt = random_logits(2, 5, 9);  // class-count mismatch
  const auto labels = labels_mod(2, 4);
  EXPECT_THROW(distill_loss(zs, zt, labels, 2.0f, 0.5f), std::runtime_error);
  const Tensor zt_ok = random_logits(2, 4, 9);
  EXPECT_THROW(distill_loss(zs, zt_ok, labels, 0.0f, 0.5f),
               std::runtime_error);
  EXPECT_THROW(distill_loss(zs, zt_ok, labels, 2.0f, 1.5f),
               std::runtime_error);
}

TEST(DistillTrain, StudentApproachesTeacherWithoutLabels) {
  // Pure KD (alpha = 1): a linear student distils a fixed linear teacher's
  // function from unlabeled-ish data (labels present but unweighted).
  Rng rng(10);
  auto make_mlp = [&](std::uint64_t seed) {
    Rng r(seed);
    auto m = std::make_unique<Sequential>("mlp");
    m->emplace<Flatten>("flat");
    m->emplace<Linear>("fc", 27, 4, r);
    return m;
  };
  auto teacher = make_mlp(1);
  auto student = make_mlp(2);

  data::ClassPatternConfig dcfg;
  dcfg.num_classes = 4;
  dcfg.image_size = 3;
  dcfg.train_per_class = 16;
  dcfg.test_per_class = 4;
  const data::TrainTest split = data::make_class_pattern_dataset(dcfg);

  // KD matches *distributions*: logits may keep per-sample offsets, so the
  // distance that must shrink is between softmax outputs.
  const Tensor probe = split.test.images;
  const Tensor teacher_probs = softmax(predict(*teacher, probe));
  const float before =
      max_abs_diff(softmax(predict(*student, probe)), teacher_probs);

  DistillConfig cfg;
  cfg.base.epochs = 30;
  cfg.base.batch_size = 16;
  cfg.base.sgd.lr = 0.05f;
  cfg.alpha = 1.0f;
  cfg.temperature = 1.0f;
  distill_train(*student, *teacher, split.train, cfg, rng);

  const float after =
      max_abs_diff(softmax(predict(*student, probe)), teacher_probs);
  EXPECT_LT(after, before * 0.5f) << "student did not move toward teacher";
}

TEST(DistillTrain, RecoversPrunedModelAndKeepsMasks) {
  data::ClassPatternConfig dcfg = data::ClassPatternConfig::cifar100_like();
  dcfg.num_classes = 6;
  dcfg.image_size = 8;
  dcfg.train_per_class = 8;
  dcfg.test_per_class = 4;
  dcfg.noise_std = 0.15f;
  dcfg.max_shift = 1;
  const data::TrainTest split = data::make_class_pattern_dataset(dcfg);

  nn::ModelConfig mcfg;
  mcfg.num_classes = 6;
  mcfg.input_size = 8;
  mcfg.width_mult = 0.125f;
  auto model = nn::make_vgg16(mcfg);
  TrainConfig tc;
  // The teacher needs enough updates for its BatchNorm running statistics
  // to track the trained activation distribution: the EMA starts from the
  // arbitrary (0, 1) init and converges as 0.9^updates. At 5 epochs x 3
  // batches (the value that kept this test quarantined) the residual init
  // bias was ~0.21, the eval-mode teacher scored exactly chance while its
  // train-mode accuracy was ~0.95, and KD distilled noise — the assert
  // below pins the diagnosis. 15 epochs converges the statistics.
  tc.epochs = 15;
  tc.batch_size = 16;
  tc.sgd.lr = 0.05f;
  Rng rng(1);
  train(*model, split.train, tc, rng);
  const float teacher_acc = evaluate(*model, split.test);
  ASSERT_GT(teacher_acc, 0.5f) << "teacher unusable: KD cannot recover from "
                                  "a teacher that predicts at chance";

  // Keep the dense model as the teacher, prune a copy as the student.
  auto student = nn::make_vgg16(mcfg);
  student->load_state_dict(model->state_dict());

  core::CrispConfig pcfg;
  pcfg.block = 8;
  pcfg.target_sparsity = 0.7;
  pcfg.iterations = 1;
  pcfg.finetune_epochs = 0;
  pcfg.recovery_epochs = 0;
  core::CrispPruner pruner(*student, pcfg);
  pruner.run(split.train, rng);
  const float pruned_acc = evaluate(*student, split.test);

  DistillConfig dcfg2;
  dcfg2.base.epochs = 10;
  dcfg2.base.batch_size = 16;
  dcfg2.base.sgd.lr = 0.03f;
  dcfg2.alpha = 0.5f;
  distill_train(*student, *model, split.train, dcfg2, rng);
  const float distilled_acc = evaluate(*student, split.test);

  EXPECT_GE(distilled_acc, pruned_acc)
      << "KD recovery made the pruned model worse (teacher " << teacher_acc
      << ")";
  EXPECT_GT(distilled_acc, 1.0f / 6.0f + 0.1f) << "still at chance after KD";
  // STE contract: masks survive distillation; per-layer sparsity is
  // non-uniform by design, but never below the 2:4 floor, and the global
  // census still reports the target.
  for (nn::Parameter* p : student->prunable_parameters()) {
    ASSERT_TRUE(p->has_mask());
    EXPECT_GE(p->mask_sparsity(), 0.49);
  }
  EXPECT_NEAR(core::take_census(*student, pcfg.block).global_sparsity, 0.7,
              0.05);
}

TEST(DistillTrain, EpochStatsAreCoherent) {
  Rng rng(11);
  auto make_mlp = [&](std::uint64_t seed) {
    Rng r(seed);
    auto m = std::make_unique<Sequential>("mlp");
    m->emplace<Flatten>("flat");
    m->emplace<Linear>("fc", 12, 3, r);
    return m;
  };
  auto teacher = make_mlp(1);
  auto student = make_mlp(2);
  data::ClassPatternConfig dcfg;
  dcfg.num_classes = 3;
  dcfg.image_size = 2;
  dcfg.train_per_class = 8;
  dcfg.test_per_class = 2;
  const data::TrainTest split = data::make_class_pattern_dataset(dcfg);

  DistillConfig cfg;
  cfg.base.epochs = 4;
  cfg.alpha = 0.3f;
  const auto stats = distill_train(*student, *teacher, split.train, cfg, rng);
  ASSERT_EQ(stats.size(), 4u);
  for (const auto& es : stats) {
    EXPECT_NEAR(es.loss, 0.7f * es.ce_loss + 0.3f * es.kd_loss, 1e-3f);
    EXPECT_GE(es.kd_loss, -1e-6f);
    EXPECT_GE(es.accuracy, 0.0f);
    EXPECT_LE(es.accuracy, 1.0f);
  }
}

}  // namespace
}  // namespace crisp::nn
