// Hot model swap on a live engine (Engine::swap_model) and its tenant
// front door (Router::refresh_tenant — tested in tests/test_tenant.cpp).
//
// The contract under test: swapping the served model on a running engine
// never fails an in-flight request and never produces a torn read. A batch
// already executing completes on the artifact it started with (its
// shared_ptr keeps it alive); every batch formed after the swap runs on
// the new artifact; the swap point sits between batches, never inside one.
// So under concurrent mixed-priority producers and a swapper thread
// toggling between two models A and B, every response must be kOk and its
// output must be bit-identical to either A's or B's serial reference for
// that sample — nothing in between. (Dense path: batching is bit-exact,
// see tests/test_serve.cpp.) This file also runs under the CI TSan job.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "nn/activations.h"
#include "nn/linear.h"
#include "serve/engine.h"

namespace crisp::serve {
namespace {

/// Same architecture, different weights per seed — shape-compatible swap
/// targets whose outputs differ on every sample.
std::shared_ptr<nn::Sequential> make_mlp(std::uint64_t seed) {
  Rng rng(seed);
  auto model = std::make_shared<nn::Sequential>("swapmlp");
  model->emplace<nn::Linear>("fc1", 32, 24, rng);
  model->emplace<nn::ReLU>("relu");
  model->emplace<nn::Linear>("fc2", 24, 8, rng);
  return model;
}

/// Serial single-sample reference through the same compiled artifact.
Tensor serial_reference(const CompiledModel& compiled, const Tensor& sample) {
  Shape batched{1};
  batched.insert(batched.end(), sample.shape().begin(), sample.shape().end());
  Tensor out = compiled.run(sample.reshaped(batched));
  Shape flat(out.shape().begin() + 1, out.shape().end());
  return out.reshaped(flat);
}

Tensor random_sample(std::uint64_t seed) {
  Rng rng(seed);
  return Tensor::randn({32}, rng);
}

TEST(EngineSwap, SwapServesNewModelAndKeepsOldResponsesValid) {
  auto modelA = CompiledModel::compile(make_mlp(9));
  auto modelB = CompiledModel::compile(make_mlp(1234));
  const Tensor x = random_sample(5);
  const Tensor refA = serial_reference(*modelA, x);
  const Tensor refB = serial_reference(*modelB, x);
  ASSERT_GT(max_abs_diff(refA, refB), 0.0f);  // the swap is observable

  Engine engine(modelA);
  EXPECT_EQ(engine.model().get(), modelA.get());
  Response before = engine.submit(Tensor(x)).get();
  ASSERT_EQ(before.status, Response::Status::kOk);
  EXPECT_FLOAT_EQ(max_abs_diff(before.output, refA), 0.0f);

  engine.swap_model(modelB);
  EXPECT_EQ(engine.model().get(), modelB.get());
  Response after = engine.submit(Tensor(x)).get();
  ASSERT_EQ(after.status, Response::Status::kOk);
  EXPECT_FLOAT_EQ(max_abs_diff(after.output, refB), 0.0f);

  const EngineStats s = engine.stats();
  EXPECT_EQ(s.swaps, 1);
  EXPECT_EQ(s.requests, 2);
}

TEST(EngineSwap, NullModelThrows) {
  Engine engine(CompiledModel::compile(make_mlp(9)));
  EXPECT_THROW(engine.swap_model(nullptr), std::runtime_error);
  EXPECT_EQ(engine.stats().swaps, 0);
}

// The concurrency contract: mixed-priority producers race a swapper thread
// that toggles A <-> B. Zero failed requests, zero torn reads — every
// output is exactly refA or refB for its sample.
TEST(EngineSwap, ConcurrentSwapsUnderMixedPriorityLoadNoTornReads) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 48;
  constexpr int kSwaps = 64;

  auto modelA = CompiledModel::compile(make_mlp(9));
  auto modelB = CompiledModel::compile(make_mlp(1234));

  // Per-request distinct samples with both references precomputed, so a
  // torn or mixed-model forward cannot masquerade as a valid output.
  struct Case {
    Tensor sample, refA, refB;
  };
  std::vector<Case> cases(kProducers * kPerProducer);
  for (int i = 0; i < kProducers * kPerProducer; ++i) {
    Case& c = cases[static_cast<std::size_t>(i)];
    c.sample = random_sample(100 + static_cast<std::uint64_t>(i));
    c.refA = serial_reference(*modelA, c.sample);
    c.refB = serial_reference(*modelB, c.sample);
    ASSERT_GT(max_abs_diff(c.refA, c.refB), 0.0f) << "case " << i;
  }

  EngineOptions opts;
  opts.max_batch = 4;  // several requests per forward: swaps land between
                       // batches that really carry concurrent traffic
  // Deep enough for the whole burst: displacement shedding is the
  // scheduler's business (tests/test_serve_sched.cpp), not the swap's —
  // here every accepted request must serve, on one model or the other.
  opts.queue_depth = kProducers * kPerProducer;
  Engine engine(modelA, opts);

  std::atomic<bool> done{false};
  std::thread swapper([&] {
    for (int s = 0; s < kSwaps && !done.load(); ++s) {
      engine.swap_model((s % 2 == 0) ? modelB : modelA);
      std::this_thread::yield();
    }
  });

  std::vector<std::future<Response>> futures(cases.size());
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const int idx = p * kPerProducer + i;
        Request r;
        r.sample = cases[static_cast<std::size_t>(idx)].sample;
        r.priority = static_cast<Priority>(idx % kPriorityCount);
        futures[static_cast<std::size_t>(idx)] = engine.submit(std::move(r));
      }
    });
  }
  for (std::thread& t : producers) t.join();
  done.store(true);
  swapper.join();

  std::int64_t from_a = 0, from_b = 0;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    Response r = futures[i].get();
    ASSERT_EQ(r.status, Response::Status::kOk) << "request " << i;
    const float da = max_abs_diff(r.output, cases[i].refA);
    const float db = max_abs_diff(r.output, cases[i].refB);
    ASSERT_TRUE(da == 0.0f || db == 0.0f)
        << "request " << i << " matches neither model exactly (dA=" << da
        << ", dB=" << db << ") — torn read";
    (da == 0.0f ? from_a : from_b) += 1;
  }

  const EngineStats s = engine.stats();
  EXPECT_EQ(s.requests, static_cast<std::int64_t>(cases.size()));
  EXPECT_EQ(s.shed + s.expired + s.cancelled + s.rejected + s.infeasible, 0);
  EXPECT_GT(s.swaps, 0);
  // Both models actually served traffic (the swapper is fast, but the
  // producers overlap it; a fully one-sided split would mean the swap
  // never took effect mid-stream). Not a hard guarantee — only report.
  RecordProperty("served_from_a", static_cast<int>(from_a));
  RecordProperty("served_from_b", static_cast<int>(from_b));
}

}  // namespace
}  // namespace crisp::serve
