// CASS tests: the class-aware saliency score against hand-computed
// gradients, plus the ablation criteria. The registry-wide battery
// (bit-identity across thread counts, ranking sanity, custom registration)
// lives in tests/test_criteria.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/saliency.h"
#include "nn/activations.h"
#include "nn/linear.h"
#include "nn/loss.h"

namespace crisp::core {
namespace {

/// One-linear-layer model and a single calibration sample, small enough to
/// compute T_w = |dL/dW| * |W| by hand: for softmax cross-entropy,
/// dL/dW[o,i] = (p_o - 1{o=y}) * x_i.
TEST(Saliency, CassMatchesAnalyticGradient) {
  Rng rng(1);
  nn::Sequential model("m");
  model.emplace<nn::Flatten>("flat");
  auto& lin = model.emplace<nn::Linear>("l", 3, 2, rng, /*bias=*/false);
  const Tensor w = lin.weight().value;

  data::Dataset d;
  d.images = Tensor({1, 3, 1, 1}, {0.5f, -1.0f, 2.0f});
  d.labels = {1};
  d.num_classes = 2;

  SaliencyConfig cfg;
  cfg.criterion = "cass";
  cfg.batch_size = 1;
  const SaliencyMap scores = estimate_saliency(model, d, cfg);
  ASSERT_EQ(scores.size(), 1u);

  // Analytic gradient.
  Tensor logits({1, 2});
  for (std::int64_t o = 0; o < 2; ++o) {
    float acc = 0.0f;
    for (std::int64_t i = 0; i < 3; ++i)
      acc += w.at({o, i}) * d.images[i];
    logits.at({0, o}) = acc;
  }
  const Tensor p = nn::softmax(logits);
  for (std::int64_t o = 0; o < 2; ++o) {
    const float dlogit = p[o] - (o == 1 ? 1.0f : 0.0f);
    for (std::int64_t i = 0; i < 3; ++i) {
      const float expected =
          std::fabs(dlogit * d.images[i]) * std::fabs(w.at({o, i}));
      EXPECT_NEAR(scores[0].at({o, i}), expected, 1e-4f)
          << "element (" << o << "," << i << ")";
    }
  }
}

TEST(Saliency, CassAveragesOverBatches) {
  Rng rng(2);
  nn::Sequential model("m");
  model.emplace<nn::Flatten>("flat");
  model.emplace<nn::Linear>("l", 4, 3, rng, /*bias=*/false);

  // Two identical samples split into two batches must give the same score
  // as a single batch of one (averaging, not summing).
  data::Dataset one;
  one.images = Tensor({1, 4, 1, 1}, {1, 2, 3, 4});
  one.labels = {0};
  one.num_classes = 3;

  data::Dataset two;
  two.images = Tensor({2, 4, 1, 1}, {1, 2, 3, 4, 1, 2, 3, 4});
  two.labels = {0, 0};
  two.num_classes = 3;

  SaliencyConfig c1;
  c1.batch_size = 1;
  const auto s_one = estimate_saliency(model, one, c1);
  const auto s_two = estimate_saliency(model, two, c1);  // 2 batches of 1
  EXPECT_TRUE(allclose(s_one[0], s_two[0], 1e-4f, 1e-5f));
}

TEST(Saliency, CassLeavesNoStaleGradients) {
  Rng rng(3);
  nn::Sequential model("m");
  model.emplace<nn::Flatten>("flat");
  model.emplace<nn::Linear>("l", 4, 2, rng);
  data::Dataset d;
  d.images = Tensor({2, 4, 1, 1});
  d.labels = {0, 1};
  d.num_classes = 2;
  (void)estimate_saliency(model, d, SaliencyConfig{});
  for (nn::Parameter* p : model.parameters())
    EXPECT_FLOAT_EQ(p->grad.abs_max(), 0.0f) << p->name;
}

TEST(Saliency, MagnitudeKindIsAbsWeight) {
  Rng rng(4);
  nn::Sequential model("m");
  auto& lin = model.emplace<nn::Linear>("l", 4, 4, rng, /*bias=*/false);
  data::Dataset empty;  // magnitude needs no data
  SaliencyConfig cfg;
  cfg.criterion = "magnitude";
  const auto scores = estimate_saliency(model, empty, cfg);
  EXPECT_TRUE(allclose(scores[0], lin.weight().value.abs(), 0.0f, 0.0f));
}

TEST(Saliency, RandomKindDeterministicPositive) {
  Rng rng(5);
  nn::Sequential model("m");
  model.emplace<nn::Linear>("l", 8, 4, rng, /*bias=*/false);
  data::Dataset empty;
  SaliencyConfig cfg;
  cfg.criterion = "random";
  cfg.seed = 21;
  const auto a = estimate_saliency(model, empty, cfg);
  const auto b = estimate_saliency(model, empty, cfg);
  EXPECT_TRUE(allclose(a[0], b[0], 0.0f, 0.0f));
  EXPECT_GT(a[0].min(), 0.0f);

  cfg.seed = 22;
  const auto c = estimate_saliency(model, empty, cfg);
  EXPECT_FALSE(allclose(a[0], c[0], 1e-3f, 1e-3f));
}

TEST(Saliency, CassRequiresCalibrationData) {
  Rng rng(6);
  nn::Sequential model("m");
  model.emplace<nn::Linear>("l", 4, 2, rng);
  data::Dataset empty;
  empty.num_classes = 2;
  SaliencyConfig cfg;
  cfg.criterion = "cass";
  EXPECT_THROW(estimate_saliency(model, empty, cfg), std::runtime_error);
}

TEST(Saliency, MaxBatchesCapsWork) {
  Rng rng(7);
  nn::Sequential model("m");
  model.emplace<nn::Flatten>("flat");
  model.emplace<nn::Linear>("l", 4, 2, rng, /*bias=*/false);
  Rng drng(8);
  data::Dataset d;
  d.images = Tensor::randn({64, 4, 1, 1}, drng);
  d.labels.assign(64, 0);
  d.num_classes = 2;
  SaliencyConfig cfg;
  cfg.batch_size = 8;
  cfg.max_batches = 2;
  // Must run without touching more than 2 batches — just verify it works
  // and produces non-negative finite scores.
  const auto scores = estimate_saliency(model, d, cfg);
  EXPECT_GE(scores[0].min(), 0.0f);
  EXPECT_TRUE(std::isfinite(scores[0].max()));
}

TEST(Saliency, RegistryListsBuiltins) {
  for (const char* name : {"cass", "taylor", "lasso", "magnitude", "random"})
    EXPECT_TRUE(has_criterion(name)) << name;
  const auto names = criterion_names();
  EXPECT_GE(names.size(), 5u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

}  // namespace
}  // namespace crisp::core
