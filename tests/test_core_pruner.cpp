// CRISP pruner tests: schedule, global rank-column planning, the full
// Algorithm-1 loop with its invariants, the census, and the baselines.
#include <gtest/gtest.h>

#include "core/baselines/block_pruner.h"
#include "core/baselines/channel_pruner.h"
#include "core/pruner.h"
#include "data/class_pattern.h"
#include "nn/linear.h"
#include "nn/models/common.h"
#include "sparse/nm.h"

namespace crisp::core {
namespace {

// ---------------------------------------------------------------------------
// Schedule.

TEST(Schedule, RampsFromFloorToTarget) {
  SparsitySchedule s{0.9, 4, 2, 4};
  EXPECT_DOUBLE_EQ(s.floor(), 0.5);
  EXPECT_NEAR(s.kappa_at(1), 0.6, 1e-12);
  EXPECT_NEAR(s.kappa_at(2), 0.7, 1e-12);
  EXPECT_NEAR(s.kappa_at(4), 0.9, 1e-12);
  for (std::int64_t p = 2; p <= 4; ++p)
    EXPECT_GT(s.kappa_at(p), s.kappa_at(p - 1));
  EXPECT_THROW(s.kappa_at(0), std::runtime_error);
  EXPECT_THROW(s.kappa_at(5), std::runtime_error);
}

TEST(Schedule, TargetBelowFloorNeedsNoBlocks) {
  SparsitySchedule s{0.3, 3, 2, 4};  // N:M alone gives 0.5 > 0.3
  EXPECT_DOUBLE_EQ(s.kappa_at(1), 0.3);
  EXPECT_DOUBLE_EQ(s.block_fraction_at(1), 0.0);
}

TEST(Schedule, BlockFractionMatchesIdentity) {
  SparsitySchedule s{0.9, 1, 2, 4};
  // κ = 0.9 at 2:4: keep cols = 0.1 * 2 = 0.2 -> prune 80 % of columns.
  EXPECT_NEAR(s.block_fraction_at(1), 0.8, 1e-12);

  SparsitySchedule one{0.875, 1, 1, 4};
  // κ = 0.875 at 1:4: keep = 0.125 * 4 = 0.5.
  EXPECT_NEAR(one.block_fraction_at(1), 0.5, 1e-12);
}

// ---------------------------------------------------------------------------
// Rank-column planning.

LayerBlockInfo make_layer(std::int64_t gr, std::int64_t gc, std::int64_t block,
                          float base_score) {
  LayerBlockInfo info;
  info.grid = sparse::BlockGrid{gr * block, gc * block, block};
  info.scores = Tensor({gr, gc});
  for (std::int64_t i = 0; i < gr * gc; ++i)
    info.scores[i] = base_score * static_cast<float>(i + 1);
  return info;
}

TEST(RankPlanning, ZeroFractionPrunesNothing) {
  std::vector<LayerBlockInfo> layers{make_layer(2, 4, 4, 1.0f)};
  const auto counts = plan_rank_column_pruning(layers, 0.0, {});
  EXPECT_EQ(counts[0], 0);
}

TEST(RankPlanning, FullFractionHitsCollapseGuard) {
  std::vector<LayerBlockInfo> layers{make_layer(2, 4, 4, 1.0f)};
  BlockPruningConfig cfg;
  cfg.min_kept_ranks = 1;
  const auto counts = plan_rank_column_pruning(layers, 1.0, cfg);
  EXPECT_EQ(counts[0], 3);  // 4 ranks, at least one kept

  cfg.min_kept_ranks = 2;
  const auto counts2 = plan_rank_column_pruning(layers, 1.0, cfg);
  EXPECT_EQ(counts2[0], 2);
}

TEST(RankPlanning, TargetFractionIsMet) {
  std::vector<LayerBlockInfo> layers{make_layer(4, 8, 4, 1.0f),
                                     make_layer(2, 8, 4, 2.0f)};
  const double fraction = 0.5;
  const auto counts = plan_rank_column_pruning(layers, fraction, {});
  double removed = 0.0, total = 0.0;
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const auto& g = layers[i].grid;
    total += static_cast<double>(g.rows * g.cols);
    removed += static_cast<double>(counts[i]) *
               static_cast<double>(g.rows * g.block);
  }
  EXPECT_GE(removed / total, fraction - 0.05);
  EXPECT_LE(removed / total, fraction + 0.15);  // one column of overshoot
}

TEST(RankPlanning, LowSaliencyLayerPrunedFirst) {
  // Same geometry, different layer-total saliency: with kLayerFraction both
  // see identical *fractions*, so make the asymmetry inside one layer.
  LayerBlockInfo concentrated = make_layer(2, 4, 4, 1.0f);
  // All saliency lives in the last rank column.
  concentrated.scores = Tensor({2, 4}, {0.f, 0.f, 0.f, 10.f,  //
                                        0.f, 0.f, 0.f, 10.f});
  LayerBlockInfo spread = make_layer(2, 4, 4, 1.0f);
  spread.scores = Tensor({2, 4}, {5.f, 5.f, 5.f, 5.f,  //
                                  5.f, 5.f, 5.f, 5.f});
  std::vector<LayerBlockInfo> layers{concentrated, spread};
  // Remove ~3/8 of all elements: the three zero-fraction ranks of the
  // concentrated layer go first.
  const auto counts = plan_rank_column_pruning(layers, 0.375, {});
  EXPECT_EQ(counts[0], 3);
  EXPECT_EQ(counts[1], 0);
}

TEST(RankPlanning, NormModesChangeOrdering) {
  // A small layer with low raw scores vs a big layer with high raw scores.
  LayerBlockInfo small = make_layer(1, 2, 4, 0.001f);
  LayerBlockInfo big = make_layer(8, 8, 4, 100.0f);
  std::vector<LayerBlockInfo> layers{small, big};

  BlockPruningConfig none;
  none.norm = BlockScoreNorm::kNone;
  const auto raw = plan_rank_column_pruning(layers, 0.02, none);
  // Raw aggregation prunes the small layer (tiny absolute scores) first.
  EXPECT_GT(raw[0], 0);

  BlockPruningConfig frac;
  frac.norm = BlockScoreNorm::kLayerFraction;
  const auto normalized = plan_rank_column_pruning(layers, 0.02, frac);
  // Fraction normalization protects the small layer: its 2 columns each
  // hold ~half the layer's saliency.
  EXPECT_EQ(normalized[0], 0);
}

TEST(RankPlanning, MaskMatchesPlannedCount) {
  LayerBlockInfo layer = make_layer(3, 5, 4, 1.0f);
  const Tensor mask = rank_pruned_block_mask(layer, 2);
  const sparse::BlockGrid& g = layer.grid;
  const auto counts =
      sparse::zero_blocks_per_row(as_matrix(mask, g.rows, g.cols), g);
  for (const auto c : counts) EXPECT_EQ(c, 2);
}

// ---------------------------------------------------------------------------
// Full pruner on a tiny model.

struct PrunerFixture {
  data::TrainTest split;
  std::unique_ptr<nn::Sequential> model;
  std::vector<std::int64_t> user_classes;
  data::Dataset user_train;

  PrunerFixture() {
    data::ClassPatternConfig dcfg = data::ClassPatternConfig::cifar100_like();
    dcfg.num_classes = 8;
    dcfg.image_size = 8;
    dcfg.train_per_class = 6;
    dcfg.test_per_class = 2;
    split = data::make_class_pattern_dataset(dcfg);

    nn::ModelConfig mcfg;
    mcfg.num_classes = 8;
    mcfg.input_size = 8;
    mcfg.width_mult = 0.125f;
    model = nn::make_vgg16(mcfg);

    Rng rng(5);
    user_classes = data::sample_user_classes(8, 3, rng);
    user_train = data::filter_classes(split.train, user_classes);
  }
};

TEST(CrispPruner, ReachesTargetWithAllInvariants) {
  PrunerFixture fx;
  CrispConfig cfg;
  cfg.n = 2;
  cfg.m = 4;
  cfg.block = 8;
  cfg.target_sparsity = 0.85;
  cfg.iterations = 2;
  cfg.finetune_epochs = 1;
  cfg.recovery_epochs = 1;
  CrispPruner pruner(*fx.model, cfg);
  Rng rng(1);
  const PruneReport report = pruner.run(fx.user_train, rng);

  // Target hit within tolerance (block granularity causes slack).
  EXPECT_NEAR(report.achieved_sparsity(), 0.85, 0.03);
  ASSERT_EQ(report.iterations.size(), 2u);
  EXPECT_LT(report.iterations[0].achieved_sparsity,
            report.iterations[1].achieved_sparsity + 1e-9);

  for (nn::Parameter* p : fx.model->prunable_parameters()) {
    ASSERT_TRUE(p->has_mask()) << p->name;
    const auto mask = as_matrix(p->mask, p->matrix_rows, p->matrix_cols);
    // N:M invariant everywhere.
    EXPECT_TRUE(sparse::satisfies_nm(mask, cfg.n, cfg.m)) << p->name;
    // Equal pruned blocks per row.
    const sparse::BlockGrid grid{p->matrix_rows, p->matrix_cols, cfg.block};
    EXPECT_TRUE(sparse::uniform_blocks_per_row(mask, grid)) << p->name;
    // No layer fully collapsed.
    EXPECT_LT(p->mask_sparsity(), 1.0) << p->name;
    // STE keeps dense weights alive under the mask.
    std::int64_t live_under_mask = 0;
    for (std::int64_t i = 0; i < p->mask.numel(); ++i)
      live_under_mask += (p->mask[i] == 0.0f && p->value[i] != 0.0f);
    EXPECT_GT(live_under_mask, 0) << p->name;
  }

  // Census agrees with the masks.
  EXPECT_DOUBLE_EQ(report.census.global_sparsity, report.achieved_sparsity());
  for (const auto& l : report.census.layers) EXPECT_TRUE(l.uniform_rows);
}

TEST(CrispPruner, BakeZeroesMaskedWeights) {
  PrunerFixture fx;
  CrispConfig cfg;
  cfg.block = 8;
  cfg.target_sparsity = 0.7;
  cfg.iterations = 1;
  cfg.finetune_epochs = 1;
  cfg.recovery_epochs = 0;
  CrispPruner pruner(*fx.model, cfg);
  Rng rng(2);
  pruner.run(fx.user_train, rng);
  pruner.bake();
  for (nn::Parameter* p : fx.model->prunable_parameters())
    for (std::int64_t i = 0; i < p->mask.numel(); ++i)
      if (p->mask[i] == 0.0f) EXPECT_EQ(p->value[i], 0.0f);
}

TEST(CrispPruner, PureNmMode) {
  PrunerFixture fx;
  CrispConfig cfg;
  cfg.n = 2;
  cfg.m = 4;
  cfg.block = 8;
  cfg.enable_block = false;
  cfg.target_sparsity = 0.5;
  cfg.iterations = 1;
  cfg.finetune_epochs = 1;
  cfg.recovery_epochs = 0;
  CrispPruner pruner(*fx.model, cfg);
  Rng rng(3);
  const PruneReport report = pruner.run(fx.user_train, rng);
  // Exactly the N:M floor (partial trailing groups allow small deviation).
  EXPECT_NEAR(report.achieved_sparsity(), 0.5, 0.02);
}

TEST(CrispPruner, PureBlockMode) {
  PrunerFixture fx;
  CrispConfig cfg = block_pruning_config(/*block=*/8, /*target=*/0.6,
                                         /*iterations=*/2, /*epochs=*/1);
  cfg.recovery_epochs = 0;
  CrispPruner pruner(*fx.model, cfg);
  Rng rng(4);
  const PruneReport report = pruner.run(fx.user_train, rng);
  EXPECT_NEAR(report.achieved_sparsity(), 0.6, 0.05);
  // Without N:M, surviving blocks stay fully dense: every layer's sparsity
  // must equal its block sparsity.
  for (const auto& l : report.census.layers) {
    const double block_fraction =
        static_cast<double>(l.pruned_blocks_per_row * l.block) /
        static_cast<double>(l.cols);
    EXPECT_NEAR(l.sparsity, block_fraction, 0.1) << l.name;
  }
}

TEST(CrispPruner, RejectsBadConfigs) {
  PrunerFixture fx;
  CrispConfig cfg;
  cfg.n = 5;
  cfg.m = 4;
  EXPECT_THROW(CrispPruner(*fx.model, cfg), std::runtime_error);
  cfg = CrispConfig{};
  cfg.block = 6;  // not a multiple of m = 4
  EXPECT_THROW(CrispPruner(*fx.model, cfg), std::runtime_error);
  cfg = CrispConfig{};
  cfg.target_sparsity = 1.0;
  EXPECT_THROW(CrispPruner(*fx.model, cfg), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Channel-pruning baseline.

TEST(ChannelPruner, RemovesWholeRowsUniformTarget) {
  PrunerFixture fx;
  ChannelPruneConfig cfg;
  cfg.target_sparsity = 0.5;
  cfg.iterations = 2;
  cfg.finetune_epochs = 1;
  cfg.min_kept_channels = 2;
  ChannelPruner pruner(*fx.model, cfg);
  Rng rng(6);
  const ChannelPruneReport report = pruner.run(fx.user_train, rng);

  EXPECT_NEAR(report.mask_sparsity, 0.5, 0.08);
  EXPECT_GT(report.achieved_channel_sparsity, 0.2);
  // The downstream-correction makes effective FLOPs lower than mask FLOPs.
  EXPECT_LT(report.effective_flops_ratio, 1.0 - report.mask_sparsity + 0.01);

  // Masks are whole rows: a row is all-ones or all-zeros.
  for (nn::Parameter* p : fx.model->prunable_parameters()) {
    for (std::int64_t r = 0; r < p->matrix_rows; ++r) {
      const float first = p->mask[r * p->matrix_cols];
      for (std::int64_t c = 1; c < p->matrix_cols; ++c)
        ASSERT_EQ(p->mask[r * p->matrix_cols + c], first)
            << p->name << " row " << r;
    }
    // Collapse guard.
    std::int64_t live_rows = 0;
    for (std::int64_t r = 0; r < p->matrix_rows; ++r)
      live_rows += (p->mask[r * p->matrix_cols] != 0.0f);
    EXPECT_GE(live_rows, 2) << p->name;
  }
}

// ---------------------------------------------------------------------------
// Census.

TEST(Census, ReportsCraftedMaskState) {
  Rng rng(7);
  nn::Sequential model("m");
  auto& lin = model.emplace<nn::Linear>("l", 16, 8, rng, /*bias=*/false);
  lin.weight().ensure_mask();
  // Prune block-column 1 (cols 8..15) of an 8x16 matrix with 8x8 blocks.
  for (std::int64_t r = 0; r < 8; ++r)
    for (std::int64_t c = 8; c < 16; ++c)
      lin.weight().mask[r * 16 + c] = 0.0f;

  const ModelCensus census = take_census(model, 8);
  ASSERT_EQ(census.layers.size(), 1u);
  const LayerCensus& l = census.layers[0];
  EXPECT_EQ(l.rows, 8);
  EXPECT_EQ(l.cols, 16);
  EXPECT_EQ(l.pruned_blocks_per_row, 1);
  EXPECT_EQ(l.k_prime, 8);
  EXPECT_TRUE(l.uniform_rows);
  EXPECT_DOUBLE_EQ(l.sparsity, 0.5);
  EXPECT_DOUBLE_EQ(census.global_sparsity, 0.5);
  EXPECT_DOUBLE_EQ(census.max_layer_sparsity(), 0.5);
}

TEST(Census, DenseParametersCountAsDense) {
  Rng rng(8);
  nn::Sequential model("m");
  model.emplace<nn::Linear>("l", 8, 8, rng, /*bias=*/false);
  const ModelCensus census = take_census(model, 8);
  EXPECT_DOUBLE_EQ(census.global_sparsity, 0.0);
  EXPECT_EQ(census.layers[0].k_prime, 8);
}

// ---------------------------------------------------------------------------
// Algorithm-1 ordering: N:M pruning (line 2) precedes block scoring
// (lines 4-5), so elements the N:M step removes must not count toward
// their block's score.

TEST(CrispPruner, BlockScoresIgnoreNmPrunedElements) {
  // One 8x16 layer, 8x8 blocks -> a 1x2 block grid. With magnitude
  // saliency the scores are the |weights| we craft:
  //   block A (cols 0..7):  every 2:4 group is {6, 6, .1, .1}
  //       raw sum 12.2 / surviving-after-2:4 sum 12
  //   block B (cols 8..15): every group is {4, 4, 4, 4}
  //       raw sum 16  / surviving-after-2:4 sum 8
  // Raw scoring would prune A (12.2 < 16); the paper's ordering prunes B
  // (8 < 12) because half of B's mass is already gone after 2:4.
  Rng rng(9);
  nn::Sequential model("m");
  auto& lin = model.emplace<nn::Linear>("l", 16, 8, rng, /*bias=*/false);
  for (std::int64_t r = 0; r < 8; ++r)
    for (std::int64_t g = 0; g < 4; ++g) {
      float* group = lin.weight().value.data() + r * 16 + g * 4;
      if (g < 2) {  // block A groups
        group[0] = 6.0f;
        group[1] = 6.0f;
        group[2] = 0.1f;
        group[3] = 0.1f;
      } else {  // block B groups
        group[0] = group[1] = group[2] = group[3] = 4.0f;
      }
    }

  data::ClassPatternConfig dcfg;
  dcfg.num_classes = 2;
  dcfg.image_size = 2;  // unused by magnitude saliency; keeps data tiny
  dcfg.train_per_class = 2;
  dcfg.test_per_class = 1;
  const data::TrainTest split = data::make_class_pattern_dataset(dcfg);

  CrispConfig cfg;
  cfg.n = 2;
  cfg.m = 4;
  cfg.block = 8;
  cfg.target_sparsity = 0.75;  // 2:4 floor 0.5 -> prune 1 of 2 block-cols
  cfg.iterations = 1;
  cfg.finetune_epochs = 0;
  cfg.recovery_epochs = 0;
  cfg.saliency.criterion = "magnitude";
  CrispPruner pruner(model, cfg);
  Rng prng(3);
  pruner.run(split.train, prng);

  const Tensor& mask = lin.weight().mask;
  ASSERT_FALSE(mask.empty());
  for (std::int64_t r = 0; r < 8; ++r) {
    // Block B died entirely...
    for (std::int64_t c = 8; c < 16; ++c)
      EXPECT_EQ(mask[r * 16 + c], 0.0f) << "r" << r << " c" << c;
    // ...block A keeps exactly its 2:4 survivors (the two 6.0 entries).
    for (std::int64_t g = 0; g < 2; ++g) {
      const std::int64_t base = r * 16 + g * 4;
      EXPECT_EQ(mask[base + 0], 1.0f);
      EXPECT_EQ(mask[base + 1], 1.0f);
      EXPECT_EQ(mask[base + 2], 0.0f);
      EXPECT_EQ(mask[base + 3], 0.0f);
    }
  }
}

// Freeze regression: with freeze_at_target on, a layer that reached the
// final target stops being re-scored and re-masked on later iterations —
// verified through a counting criterion that records how many layers each
// saliency sweep actually visited.
std::vector<std::int64_t> g_counting_active_layers;

class CountingCriterion final : public SaliencyCriterion {
 public:
  const char* name() const override { return "test-counting"; }
  bool needs_gradients() const override { return false; }
  SaliencyMap compute(nn::Sequential& model, const data::Dataset& d,
                      const SaliencyConfig& cfg,
                      const std::vector<std::uint8_t>& active) override {
    const auto params = model.prunable_parameters();
    std::int64_t n = 0;
    for (std::size_t i = 0; i < params.size(); ++i)
      n += (active.empty() || active[i] != 0);
    g_counting_active_layers.push_back(n);
    return make_criterion("magnitude")->compute(model, d, cfg, active);
  }
};

TEST(CrispPruner, FreezeAtTargetSkipsFrozenLayers) {
  if (!has_criterion("test-counting"))
    register_criterion("test-counting", [] {
      return std::unique_ptr<SaliencyCriterion>(new CountingCriterion());
    });
  g_counting_active_layers.clear();

  PrunerFixture fx;
  CrispConfig cfg;
  cfg.n = 2;
  cfg.m = 4;
  cfg.block = 8;
  cfg.enable_block = false;  // pure N:M: the floor IS the target, so every
                             // 4-divisible layer lands exactly on it
  cfg.target_sparsity = 0.5;
  cfg.iterations = 2;
  cfg.finetune_epochs = 1;
  cfg.recovery_epochs = 0;
  cfg.freeze_at_target = true;
  cfg.saliency.criterion = "test-counting";
  CrispPruner pruner(*fx.model, cfg);
  Rng rng(7);
  const PruneReport report = pruner.run(fx.user_train, rng);

  const auto params = fx.model->prunable_parameters();
  const std::int64_t total = static_cast<std::int64_t>(params.size());

  // Iteration 1 never freezes (nothing is pruned yet); by iteration 2
  // every layer that landed exactly on the 2:4 floor is frozen.
  ASSERT_EQ(report.frozen_per_iteration.size(), 2u);
  EXPECT_EQ(report.frozen_per_iteration[0], 0);
  EXPECT_GT(report.frozen_per_iteration[1], 0);
  EXPECT_LE(report.frozen_per_iteration[1], total);

  // The saliency sweep visited exactly the unfrozen layers.
  ASSERT_EQ(g_counting_active_layers.size(), 2u);
  EXPECT_EQ(g_counting_active_layers[0], total);
  EXPECT_EQ(g_counting_active_layers[1],
            total - report.frozen_per_iteration[1]);

  // Freezing must not change the outcome here: both iterations target the
  // same floor, so the achieved sparsity is the N:M floor either way.
  EXPECT_NEAR(report.achieved_sparsity(), 0.5, 0.02);

  // Without the flag, no layer freezes and every sweep is full-width.
  g_counting_active_layers.clear();
  PrunerFixture fx2;
  cfg.freeze_at_target = false;
  CrispPruner pruner2(*fx2.model, cfg);
  Rng rng2(7);
  const PruneReport report2 = pruner2.run(fx2.user_train, rng2);
  ASSERT_EQ(report2.frozen_per_iteration.size(), 2u);
  EXPECT_EQ(report2.frozen_per_iteration[0], 0);
  EXPECT_EQ(report2.frozen_per_iteration[1], 0);
  ASSERT_EQ(g_counting_active_layers.size(), 2u);
  EXPECT_EQ(g_counting_active_layers[1], total);
}

}  // namespace
}  // namespace crisp::core
