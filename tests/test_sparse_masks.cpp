// Sparsity-pattern tests: N:M masks (property sweeps), block grids,
// uniform-per-row block masks, and mask utilities.
#include <gtest/gtest.h>

#include "sparse/block.h"
#include "sparse/mask.h"
#include "sparse/nm.h"

namespace crisp::sparse {
namespace {

// ---------------------------------------------------------------------------
// N:M masks.

TEST(NmMask, KeepsTopScoresInEachGroup) {
  // One row, two groups of 4; distinct scores make selection unambiguous.
  Tensor scores({1, 8}, {0.1f, 0.9f, 0.5f, 0.2f, 0.3f, 0.8f, 0.7f, 0.1f});
  Tensor mask = nm_mask(as_matrix(scores, 1, 8), 2, 4);
  // Group 0 keeps cols 1, 2; group 1 keeps cols 5, 6.
  const float expect[8] = {0, 1, 1, 0, 0, 1, 1, 0};
  for (std::int64_t i = 0; i < 8; ++i) EXPECT_FLOAT_EQ(mask[i], expect[i]) << i;
}

TEST(NmMask, TieBreaksTowardLowerIndex) {
  Tensor scores = Tensor::ones({1, 4});
  Tensor mask = nm_mask(as_matrix(scores, 1, 4), 1, 4);
  EXPECT_FLOAT_EQ(mask[0], 1.0f);
  EXPECT_FLOAT_EQ(mask[1] + mask[2] + mask[3], 0.0f);
}

TEST(NmMask, RejectsInvalidRatios) {
  Tensor scores = Tensor::ones({2, 8});
  EXPECT_THROW(nm_mask(as_matrix(scores, 2, 8), 5, 4), std::runtime_error);
  EXPECT_THROW(nm_mask(as_matrix(scores, 2, 8), 0, 4), std::runtime_error);
}

struct NmCase {
  std::int64_t n, m, rows, cols;
};

class NmMaskProperty : public ::testing::TestWithParam<NmCase> {};

TEST_P(NmMaskProperty, ExactGroupCountsAndValidation) {
  const auto [n, m, rows, cols] = GetParam();
  Rng rng(n * 100 + m * 10 + cols);
  Tensor scores = Tensor::rand({rows, cols}, rng, 0.01f, 1.0f);
  Tensor mask = nm_mask(as_matrix(scores, rows, cols), n, m);

  EXPECT_TRUE(is_binary(as_matrix(mask, rows, cols)));
  EXPECT_TRUE(satisfies_nm(as_matrix(mask, rows, cols), n, m));

  // With distinct positive scores every group keeps exactly min(n, g).
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t g0 = 0; g0 < cols; g0 += m) {
      const std::int64_t g = std::min(m, cols - g0);
      std::int64_t kept = 0;
      for (std::int64_t i = 0; i < g; ++i) kept += (mask[r * cols + g0 + i] != 0.0f);
      EXPECT_EQ(kept, std::min(n, g)) << "row " << r << " group " << g0;
    }
  }

  // Sparsity agrees with the analytic target.
  EXPECT_NEAR(mask_sparsity(as_matrix(mask, rows, cols)),
              nm_target_sparsity(cols, n, m), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Ratios, NmMaskProperty,
    ::testing::Values(NmCase{1, 4, 3, 16}, NmCase{2, 4, 4, 16},
                      NmCase{3, 4, 2, 16}, NmCase{1, 2, 5, 10},
                      NmCase{2, 8, 3, 24}, NmCase{4, 4, 2, 12},
                      NmCase{2, 4, 3, 18},    // trailing partial group of 2
                      NmCase{3, 4, 1, 9},     // partial group of 1
                      NmCase{1, 4, 7, 3}));   // cols < m

TEST(NmMask, SatisfiesNmDetectsViolations) {
  Tensor mask({1, 8}, {1, 1, 1, 0, 0, 0, 0, 0});
  EXPECT_FALSE(satisfies_nm(as_matrix(mask, 1, 8), 2, 4));
  EXPECT_TRUE(satisfies_nm(as_matrix(mask, 1, 8), 3, 4));
}

TEST(NmMask, TargetSparsityExamples) {
  EXPECT_DOUBLE_EQ(nm_target_sparsity(16, 2, 4), 0.5);
  EXPECT_DOUBLE_EQ(nm_target_sparsity(16, 1, 4), 0.75);
  EXPECT_DOUBLE_EQ(nm_target_sparsity(16, 4, 4), 0.0);
  // 18 cols = 4 full groups (keep 8) + partial of 2 (keep 2) -> 10/18 kept.
  EXPECT_NEAR(nm_target_sparsity(18, 2, 4), 1.0 - 10.0 / 18.0, 1e-12);
}

// ---------------------------------------------------------------------------
// Block grids and masks.

TEST(BlockGrid, GeometryWithRemainders) {
  BlockGrid g{10, 18, 8};
  EXPECT_EQ(g.grid_rows(), 2);
  EXPECT_EQ(g.grid_cols(), 3);
  EXPECT_EQ(g.row_extent(0), 8);
  EXPECT_EQ(g.row_extent(1), 2);
  EXPECT_EQ(g.col_extent(2), 2);
}

TEST(BlockScores, SumsAbsoluteValuesPerBlock) {
  Tensor scores({4, 4}, {1, 1, -2, 2,    //
                         1, 1, 2, -2,    //
                         3, 3, 4, 4,     //
                         3, 3, 4, 4});
  BlockGrid g{4, 4, 2};
  Tensor bs = block_scores(as_matrix(scores, 4, 4), g);
  ASSERT_EQ(bs.shape(), (Shape{2, 2}));
  EXPECT_FLOAT_EQ(bs[0], 4.0f);
  EXPECT_FLOAT_EQ(bs[1], 8.0f);
  EXPECT_FLOAT_EQ(bs[2], 12.0f);
  EXPECT_FLOAT_EQ(bs[3], 16.0f);
}

TEST(UniformRowBlockMask, PrunesLowestPerRow) {
  Tensor scores({2, 3}, {5, 1, 3,   //
                         2, 9, 4});
  BlockGrid g{4, 6, 2};
  Tensor mask = uniform_row_block_mask(scores, g, {1, 1});
  // Row 0 prunes block col 1 (score 1); row 1 prunes block col 0 (score 2).
  EXPECT_FLOAT_EQ(mask[0], 1.0f);
  EXPECT_FLOAT_EQ(mask[1], 0.0f);
  EXPECT_FLOAT_EQ(mask[2], 1.0f);
  EXPECT_FLOAT_EQ(mask[3], 0.0f);
  EXPECT_FLOAT_EQ(mask[4], 1.0f);
  EXPECT_FLOAT_EQ(mask[5], 1.0f);
}

TEST(UniformRowBlockMask, RejectsBadCounts) {
  Tensor scores = Tensor::ones({2, 3});
  BlockGrid g{4, 6, 2};
  EXPECT_THROW(uniform_row_block_mask(scores, g, {4, 0}), std::runtime_error);
  EXPECT_THROW(uniform_row_block_mask(scores, g, {1}), std::runtime_error);
}

TEST(ExpandBlockMask, CoversElementExtents) {
  // 3x5 matrix under 2x2 blocks -> 2x3 block grid with remainder extents.
  Tensor block_mask({2, 3}, {1, 0, 0,   //
                             0, 1, 0});
  BlockGrid g{3, 5, 2};
  Tensor mask = expand_block_mask(block_mask, g);
  ASSERT_EQ(mask.shape(), (Shape{3, 5}));
  // Block (0,0) live: rows 0-1, cols 0-1. Block (1,1) live: row 2, cols 2-3.
  EXPECT_FLOAT_EQ(mask.at({0, 0}), 1.0f);
  EXPECT_FLOAT_EQ(mask.at({1, 1}), 1.0f);
  EXPECT_FLOAT_EQ(mask.at({0, 2}), 0.0f);
  EXPECT_FLOAT_EQ(mask.at({2, 0}), 0.0f);
  EXPECT_FLOAT_EQ(mask.at({2, 2}), 1.0f);
  EXPECT_FLOAT_EQ(mask.at({2, 4}), 0.0f);  // block col 2 (remainder) pruned

  Tensor wrong({2, 2}, {1, 0, 0, 1});
  EXPECT_THROW(expand_block_mask(wrong, g), std::runtime_error);
}

TEST(ZeroBlocksPerRow, CountsAndUniformity) {
  BlockGrid g{4, 8, 2};
  Tensor mask = Tensor::ones({4, 8});
  // Zero out block (0, 1) only -> non-uniform.
  for (std::int64_t r = 0; r < 2; ++r)
    for (std::int64_t c = 2; c < 4; ++c) mask.at({r, c}) = 0.0f;
  const auto counts = zero_blocks_per_row(as_matrix(mask, 4, 8), g);
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0], 1);
  EXPECT_EQ(counts[1], 0);
  EXPECT_FALSE(uniform_blocks_per_row(as_matrix(mask, 4, 8), g));

  // Also zero block (1, 3) -> uniform again.
  for (std::int64_t r = 2; r < 4; ++r)
    for (std::int64_t c = 6; c < 8; ++c) mask.at({r, c}) = 0.0f;
  EXPECT_TRUE(uniform_blocks_per_row(as_matrix(mask, 4, 8), g));
}

TEST(ZeroBlocksPerRow, PartiallyZeroBlockDoesNotCount) {
  BlockGrid g{2, 4, 2};
  Tensor mask = Tensor::ones({2, 4});
  mask.at({0, 0}) = 0.0f;  // one element of block (0,0)
  const auto counts = zero_blocks_per_row(as_matrix(mask, 2, 4), g);
  EXPECT_EQ(counts[0], 0);
}

// ---------------------------------------------------------------------------
// Mask utilities.

TEST(MaskUtils, AndSparsityNnz) {
  Tensor a({2, 2}, {1, 1, 0, 1});
  Tensor b({2, 2}, {1, 0, 0, 1});
  Tensor c = mask_and(a, b);
  EXPECT_FLOAT_EQ(c[0], 1.0f);
  EXPECT_FLOAT_EQ(c[1], 0.0f);
  EXPECT_EQ(mask_nnz(as_matrix(c, 2, 2)), 2);
  EXPECT_DOUBLE_EQ(mask_sparsity(as_matrix(c, 2, 2)), 0.5);
  EXPECT_TRUE(is_binary(as_matrix(c, 2, 2)));

  Tensor bad({2, 2}, {0.5f, 1, 0, 1});
  EXPECT_FALSE(is_binary(as_matrix(bad, 2, 2)));
}

TEST(MaskUtils, ApplyMask) {
  Tensor v({1, 4}, {1, 2, 3, 4});
  Tensor m({1, 4}, {1, 0, 1, 0});
  apply_mask(as_matrix(v, 1, 4), as_matrix(m, 1, 4));
  EXPECT_FLOAT_EQ(v[0], 1.0f);
  EXPECT_FLOAT_EQ(v[1], 0.0f);
  EXPECT_FLOAT_EQ(v[2], 3.0f);
  EXPECT_FLOAT_EQ(v[3], 0.0f);
}

}  // namespace
}  // namespace crisp::sparse
