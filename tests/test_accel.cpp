// Accelerator-simulator tests: workload tables, per-model sanity, the
// qualitative bands of Fig. 8, and cross-model orderings.
#include <gtest/gtest.h>

#include "accel/report.h"

namespace crisp::accel {
namespace {

AcceleratorConfig cfg() { return AcceleratorConfig::edge_default(); }
EnergyModel nrg() { return EnergyModel::edge_default(); }

SparsityProfile profile(std::int64_t n, std::int64_t m, std::int64_t block,
                        double kappa, double act_density = 0.6) {
  SparsityProfile p;
  p.n = n;
  p.m = m;
  p.block = block;
  p.activation_density = act_density;
  p.kept_cols_fraction =
      std::min(1.0, (1.0 - kappa) * static_cast<double>(m) /
                        static_cast<double>(n));
  return p;
}

GemmWorkload find_layer(const char* name) {
  for (const auto& w : resnet50_imagenet_workloads())
    if (w.name == name) return w;
  ADD_FAILURE() << "layer not found: " << name;
  return {};
}

// ---------------------------------------------------------------------------
// Workload tables.

TEST(Workloads, ResNet50TableIsComplete) {
  const auto all = resnet50_imagenet_workloads();
  ASSERT_EQ(all.size(), 54u);  // 53 convs + fc

  // Stem: 64 out channels, K = 3*7*7 = 147, P = 112^2.
  EXPECT_EQ(all.front().name, "conv1");
  EXPECT_EQ(all.front().s, 64);
  EXPECT_EQ(all.front().k, 147);
  EXPECT_EQ(all.front().p, 112 * 112);

  // Classifier.
  EXPECT_EQ(all.back().name, "fc");
  EXPECT_EQ(all.back().s, 1000);
  EXPECT_EQ(all.back().k, 2048);

  // Total MACs of ResNet-50 at 224px ≈ 4.1 GMACs (ours omits nothing big).
  std::int64_t total = 0;
  for (const auto& w : all) total += w.macs();
  EXPECT_GT(total, 3'500'000'000);
  EXPECT_LT(total, 4'500'000'000);
}

TEST(Workloads, KnownLayerShapes) {
  const GemmWorkload early = find_layer("conv2_1.conv2");
  EXPECT_EQ(early.s, 64);
  EXPECT_EQ(early.k, 64 * 9);
  EXPECT_EQ(early.p, 56 * 56);

  const GemmWorkload late = find_layer("conv5_1.conv2");
  EXPECT_EQ(late.s, 512);
  EXPECT_EQ(late.k, 512 * 9);
  EXPECT_EQ(late.p, 7 * 7);

  const GemmWorkload proj = find_layer("conv3_1.proj");
  EXPECT_EQ(proj.s, 512);
  EXPECT_EQ(proj.k, 256);
}

TEST(Workloads, RepresentativeSubset) {
  const auto reps = resnet50_representative_workloads();
  EXPECT_EQ(reps.size(), 9u);
  EXPECT_EQ(reps.back().name, "fc");
}

TEST(Workloads, SparsityProfileMath) {
  const SparsityProfile p = profile(2, 4, 32, 0.9);
  EXPECT_NEAR(p.weight_density(), 0.1, 1e-12);
  EXPECT_NEAR(p.weight_sparsity(), 0.9, 1e-12);
  const SparsityProfile d = SparsityProfile::dense();
  EXPECT_DOUBLE_EQ(d.weight_density(), 1.0);
}

// ---------------------------------------------------------------------------
// Dense baseline.

TEST(DenseModel, ComputeBoundOnBigConvs) {
  const DenseModel dense(cfg(), nrg());
  const GemmWorkload w = find_layer("conv2_1.conv2");
  const SimResult r = dense.simulate(w, SparsityProfile::dense());
  EXPECT_DOUBLE_EQ(r.executed_macs, static_cast<double>(w.macs()));
  EXPECT_NEAR(r.compute_cycles,
              static_cast<double>(w.macs()) / cfg().total_macs(), 1.0);
  EXPECT_GE(r.cycles, r.compute_cycles);
  EXPECT_GT(r.energy_pj, 0.0);
}

TEST(DenseModel, FcIsMemoryBound) {
  const DenseModel dense(cfg(), nrg());
  const SimResult r = dense.simulate(find_layer("fc"), SparsityProfile::dense());
  EXPECT_GT(r.dram_cycles, r.compute_cycles);
  EXPECT_DOUBLE_EQ(r.cycles, r.dram_cycles);
}

// ---------------------------------------------------------------------------
// NVIDIA STC.

TEST(NvidiaStc, CapsAtTwoX) {
  const DenseModel dense(cfg(), nrg());
  const NvidiaStc stc(cfg(), nrg());
  for (const auto& w : resnet50_representative_workloads()) {
    const double base = dense.simulate(w, SparsityProfile::dense()).cycles;
    for (std::int64_t n : {1, 2}) {
      const double c = stc.simulate(w, profile(n, 4, 32, 0.875)).cycles;
      EXPECT_LE(base / c, 2.05) << w.name << " " << n << ":4";
      EXPECT_GE(base / c, 0.95) << w.name << " " << n << ":4";
    }
  }
}

TEST(NvidiaStc, CannotExploitThreeFour) {
  const DenseModel dense(cfg(), nrg());
  const NvidiaStc stc(cfg(), nrg());
  const GemmWorkload w = find_layer("conv3_2.conv2");
  const double base = dense.simulate(w, SparsityProfile::dense()).cycles;
  const double c = stc.simulate(w, profile(3, 4, 32, 0.8)).cycles;
  EXPECT_NEAR(base / c, 1.0, 0.1);
}

TEST(NvidiaStc, OneFourWastesHalfItsSlots) {
  const NvidiaStc stc(cfg(), nrg());
  const SimResult r =
      stc.simulate(find_layer("conv2_1.conv2"), profile(1, 4, 32, 0.75));
  EXPECT_NEAR(r.utilization, 0.5, 1e-9);
}

// ---------------------------------------------------------------------------
// DSTC.

TEST(Dstc, EarlyLayersBeatLateLayers) {
  const DenseModel dense(cfg(), nrg());
  const Dstc dstc(cfg(), nrg());
  const SparsityProfile p = profile(2, 4, 32, 0.875);

  const GemmWorkload early = find_layer("conv2_1.conv2");
  const GemmWorkload late = find_layer("conv5_1.conv2");
  const double early_speedup =
      dense.simulate(early, SparsityProfile::dense()).cycles /
      dstc.simulate(early, p).cycles;
  const double late_speedup =
      dense.simulate(late, SparsityProfile::dense()).cycles /
      dstc.simulate(late, p).cycles;

  EXPECT_GT(early_speedup, late_speedup * 1.5)
      << "DSTC must degrade on late (weight-heavy) layers";
  EXPECT_GE(early_speedup, 3.0);
  EXPECT_LE(early_speedup, 9.0);
  EXPECT_LE(late_speedup, 3.0);
}

TEST(Dstc, ExploitsActivationSparsity) {
  const Dstc dstc(cfg(), nrg());
  const GemmWorkload w = find_layer("conv3_2.conv2");
  const double dense_act =
      dstc.simulate(w, profile(2, 4, 32, 0.8, 1.0)).executed_macs;
  const double sparse_act =
      dstc.simulate(w, profile(2, 4, 32, 0.8, 0.6)).executed_macs;
  EXPECT_NEAR(sparse_act / dense_act, 0.6, 1e-9);
}

// ---------------------------------------------------------------------------
// CRISP-STC.

TEST(CrispStc, SpeedupBandsOfFig8) {
  const DenseModel dense(cfg(), nrg());
  const CrispStc crisp(cfg(), nrg());
  // The paper's regime: global sparsity 80-90 %, block 64.
  struct Band {
    std::int64_t n;
    double lo, hi;
  };
  const Band bands[] = {{1, 7.0, 14.0}, {2, 5.0, 12.0}, {3, 2.0, 8.0}};
  for (const Band& band : bands) {
    double min_speedup = 1e30, max_speedup = 0.0;
    for (const auto& w : resnet50_representative_workloads()) {
      for (double kappa : {0.80, 0.85, 0.90}) {
        const SparsityProfile p = profile(band.n, 4, 64, kappa);
        if (p.kept_cols_fraction >= 1.0) continue;  // κ below N:M floor
        const double base = dense.simulate(w, SparsityProfile::dense()).cycles;
        const double c = crisp.simulate(w, p).cycles;
        min_speedup = std::min(min_speedup, base / c);
        max_speedup = std::max(max_speedup, base / c);
      }
    }
    // The *band* should be reachable: peak speedups reach the paper's lower
    // band edge, stay within ~1.6x of its upper edge (block-quantization of
    // K' overshoots the target sparsity on narrow layers), and no
    // configuration is slower than dense.
    EXPECT_GE(max_speedup, band.lo) << band.n << ":4";
    EXPECT_LE(max_speedup, band.hi * 1.6) << band.n << ":4";
    EXPECT_GE(min_speedup, 1.0) << band.n << ":4";
  }
}

TEST(CrispStc, MonotoneInBlockSparsity) {
  const CrispStc crisp(cfg(), nrg());
  const GemmWorkload w = find_layer("conv4_3.conv2");
  double last = 1e30;
  for (double kappa : {0.6, 0.7, 0.8, 0.9}) {
    const double c = crisp.simulate(w, profile(2, 4, 32, kappa)).cycles;
    EXPECT_LT(c, last) << "kappa " << kappa;
    last = c;
  }
}

TEST(CrispStc, LargerBlocksDispatchCheaper) {
  const CrispStc crisp(cfg(), nrg());
  const GemmWorkload w = find_layer("conv2_1.conv2");  // K = 576
  // κ chosen so kept columns quantize identically for every block size
  // (K'/K = 2/3 → 6, 12, 24 whole blocks at B = 64, 32, 16): the remaining
  // difference is pure per-block dispatch overhead.
  const double kappa = 1.0 - (2.0 / 3.0) * 0.5;
  const double c16 = crisp.simulate(w, profile(2, 4, 16, kappa)).cycles;
  const double c32 = crisp.simulate(w, profile(2, 4, 32, kappa)).cycles;
  const double c64 = crisp.simulate(w, profile(2, 4, 64, kappa)).cycles;
  EXPECT_LE(c64, c32);
  EXPECT_LE(c32, c16);
}

TEST(CrispStc, FullUtilizationAtBaseRatio) {
  // Uniform rows: no imbalance, no padded slots — and 2:4 is within the
  // selector's throughput, so the MAC array stays fully fed.
  const CrispStc crisp(cfg(), nrg());
  const SimResult r =
      crisp.simulate(find_layer("conv3_2.conv2"), profile(2, 4, 64, 0.8));
  EXPECT_DOUBLE_EQ(r.utilization, 1.0);
}

TEST(CrispStc, TighterRatioTurnsSelectorBound) {
  // 1:4 scans 4 candidates per useful MAC — beyond the MUX network's
  // throughput, so utilization drops below 1 and the speedup over 2:4 is
  // sublinear (Fig. 8: 14x vs 12x, not 2x apart).
  const CrispStc crisp(cfg(), nrg());
  const GemmWorkload w = find_layer("conv3_2.conv2");
  const SimResult r14 = crisp.simulate(w, profile(1, 4, 64, 0.9));
  EXPECT_LT(r14.utilization, 1.0);
  // Cross-check: cycles respect the selector floor exactly.
  AcceleratorConfig generous = cfg();
  generous.mux_selects_per_mac_cycle = 4.0;  // selector never binds
  const CrispStc wide(generous, nrg());
  const SimResult r14_wide = wide.simulate(w, profile(1, 4, 64, 0.9));
  EXPECT_LE(r14_wide.compute_cycles, r14.compute_cycles);
  EXPECT_DOUBLE_EQ(r14_wide.utilization, 1.0);
}

TEST(CrispStc, EnergyEfficiencyBeatsBaselines) {
  const auto reps = resnet50_representative_workloads();
  std::vector<SparsityProfile> profiles;
  for (std::size_t i = 0; i < reps.size(); ++i)
    profiles.push_back(profile(1, 4, 64, 0.9375));
  const auto rows = compare_accelerators(reps, profiles, cfg(), nrg());

  double best_crisp = 0.0;
  double total_dense = 0.0, total_nvidia = 0.0, total_dstc = 0.0,
         total_crisp = 0.0;
  for (const auto& row : rows) {
    EXPECT_GT(row.crisp_energy_eff(), row.nvidia_energy_eff())
        << row.workload.name;
    // Against DSTC the per-layer win requires block pruning to have room:
    // layers with only a handful of block columns fall back to N:M alone
    // and can locally lose to unstructured dual-side skipping.
    if (row.workload.k >= 4 * row.profile.block)
      EXPECT_GT(row.crisp_energy_eff(), row.dstc_energy_eff())
          << row.workload.name;
    best_crisp = std::max(best_crisp, row.crisp_energy_eff());
    total_dense += row.dense.energy_pj;
    total_nvidia += row.nvidia.energy_pj;
    total_dstc += row.dstc.energy_pj;
    total_crisp += row.crisp.energy_pj;
  }
  // Aggregate over the representative layers: CRISP is the most efficient.
  EXPECT_LT(total_crisp, total_dstc);
  EXPECT_LT(total_crisp, total_nvidia);
  EXPECT_LT(total_crisp, total_dense);
  // "Up to 30x" in the paper; our model lands deep double digits.
  EXPECT_GE(best_crisp, 12.0);
  EXPECT_LE(best_crisp, 45.0);
}

TEST(CrispStc, BeatsNvidiaOnMatchedPattern) {
  const DenseModel dense(cfg(), nrg());
  const NvidiaStc nvidia(cfg(), nrg());
  const CrispStc crisp(cfg(), nrg());
  const SparsityProfile p = profile(2, 4, 64, 0.875);
  for (const auto& w : resnet50_representative_workloads()) {
    const double base = dense.simulate(w, SparsityProfile::dense()).cycles;
    const double crisp_speedup = base / crisp.simulate(w, p).cycles;
    const double nvidia_speedup = base / nvidia.simulate(w, p).cycles;
    if (w.k >= 4 * p.block) {
      EXPECT_GT(crisp_speedup, nvidia_speedup) << w.name;
    } else {
      // Narrow reduction: block pruning has no room, CRISP degenerates to
      // its N:M path and must at worst match NVIDIA within dispatch noise.
      EXPECT_GT(crisp_speedup, 0.9 * nvidia_speedup) << w.name;
    }
  }
}

// ---------------------------------------------------------------------------
// Report harness.

TEST(Report, RampProfilesSpanKappaRange) {
  const auto profiles = ramp_profiles(5, 2, 4, 32, 0.8, 0.9);
  ASSERT_EQ(profiles.size(), 5u);
  EXPECT_NEAR(profiles.front().weight_sparsity(), 0.8, 1e-9);
  EXPECT_NEAR(profiles.back().weight_sparsity(), 0.9, 1e-9);
  for (std::size_t i = 1; i < profiles.size(); ++i)
    EXPECT_LE(profiles[i].kept_cols_fraction,
              profiles[i - 1].kept_cols_fraction);
}

TEST(Report, CompareRunsAllModels) {
  const auto reps = resnet50_representative_workloads();
  const auto profiles = ramp_profiles(static_cast<std::int64_t>(reps.size()),
                                      2, 4, 32, 0.8, 0.9);
  const auto rows = compare_accelerators(reps, profiles, cfg(), nrg());
  ASSERT_EQ(rows.size(), reps.size());
  for (const auto& row : rows) {
    EXPECT_GT(row.dense.cycles, 0.0);
    EXPECT_GT(row.nvidia.cycles, 0.0);
    EXPECT_GT(row.dstc.cycles, 0.0);
    EXPECT_GT(row.crisp.cycles, 0.0);
    EXPECT_GT(row.crisp_speedup(), 1.0) << row.workload.name;
  }
  EXPECT_THROW(compare_accelerators(reps, {}, cfg(), nrg()),
               std::runtime_error);
}

}  // namespace
}  // namespace crisp::accel
